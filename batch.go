package moqo

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"moqo/internal/core"
)

// SharedMemo is a batch-scoped store of solved optimizer subproblems —
// the cross-query common-subexpression layer behind OptimizeBatch.
// Requests over the same catalog whose queries join overlapping table
// sets solve overlapping subproblems; a shared memo lets each request
// publish the Pareto archives of the table sets it completed and serve
// later requests' identical subproblems from them, bit-for-bit (the
// archive keys encode everything a subproblem's answer depends on — see
// internal/core.SharedMemo for the soundness argument).
//
// A SharedMemo is safe for concurrent use and grows monotonically; scope
// it to one batch (or one catalog generation) and drop it as a whole.
type SharedMemo struct {
	m *core.SharedMemo
}

// NewSharedMemo creates an empty shared memo.
func NewSharedMemo() *SharedMemo { return &SharedMemo{m: core.NewSharedMemo()} }

// Subproblems returns the number of solved subproblems published so far.
func (s *SharedMemo) Subproblems() int { return s.m.Len() }

// Counters reports cumulative subproblem lookup hits, misses, and
// publishes across every request the memo was attached to.
func (s *SharedMemo) Counters() (hits, misses, published int64) { return s.m.Counters() }

// BatchOptions configures OptimizeBatchContext.
type BatchOptions struct {
	// Parallel is the number of members optimized concurrently (default
	// 1). Members sharing a *Query object are serialized internally, so
	// any value is safe.
	Parallel int

	// Shared is the memo the batch publishes solved subproblems to. Nil
	// creates a fresh one for this batch; pass your own to share across
	// batches over the same catalog, or to read its Counters afterwards.
	Shared *SharedMemo

	// DisableSharing turns off the shared memo (members still dedupe by
	// cache key, and re-weights still reuse member frontiers). Intended
	// for measuring the memo's contribution; results are identical either
	// way.
	DisableSharing bool
}

// BatchItem is the outcome of one batch member.
type BatchItem struct {
	// Result is the member's optimization result, nil on error. Members
	// whose requests resolve to the same cache key share one *Result —
	// treat it as read-only, as with any cached result.
	Result *Result
	// Err is the member's error (validation, cancellation); nil on
	// success. Member errors are independent — one invalid member never
	// fails the batch.
	Err error
	// Reused reports the member was answered without running its own
	// dynamic program: either an exact duplicate (cache key) of another
	// member, or a re-weight/re-bound of one, answered from that member's
	// Pareto frontier.
	Reused bool
}

// OptimizeBatch optimizes a workload of requests as one batch, exploiting
// everything its members have in common. Compared to a loop over
// Optimize:
//
//   - members resolving to the same cache key run one dynamic program
//     (the duplicates share the leader's Result),
//   - members differing only in weights or bounds (same FrontierKey,
//     EXA/RTA) run one dynamic program; the others are answered from its
//     Pareto frontier by a SelectBest scan,
//   - all members publish solved subproblems to a shared memo, so
//     overlapping-but-distinct queries (a star sharing its core with a
//     larger star, a chain extending another) skip each other's completed
//     table sets, and
//   - distinct dynamic programs are scheduled most-expensive-first
//     (core.PredictCost), which minimizes the makespan of the parallel
//     fan-out and maximizes what cheap members find pre-published.
//
// Every member's result is bit-for-bit the result a standalone
// Optimize(req) call would return — plans, cost vectors, frontiers; only
// the effort statistics (Stats.Considered, Stats.SharedMemoHits, ...)
// reflect the sharing. The returned slice has one item per request, in
// request order.
func OptimizeBatch(reqs []Request) []BatchItem {
	return OptimizeBatchContext(context.Background(), reqs, BatchOptions{})
}

// OptimizeBatchContext is OptimizeBatch under a context and explicit
// options. Cancelling the context aborts running members and fails the
// not-yet-started ones with the context's error.
func OptimizeBatchContext(ctx context.Context, reqs []Request, opts BatchOptions) []BatchItem {
	items := make([]BatchItem, len(reqs))
	var mu sync.Mutex
	runBatch(ctx, reqs, opts, func(i int, item BatchItem) {
		mu.Lock()
		items[i] = item
		mu.Unlock()
	})
	return items
}

// OptimizeBatchStream is OptimizeBatchContext emitting each member's item
// as it completes instead of collecting them: emit(i, item) is called
// exactly once per member, in completion order (not request order), and
// never concurrently. It returns after every member was emitted.
func OptimizeBatchStream(ctx context.Context, reqs []Request, opts BatchOptions, emit func(i int, item BatchItem)) {
	var mu sync.Mutex
	runBatch(ctx, reqs, opts, func(i int, item BatchItem) {
		mu.Lock()
		emit(i, item)
		mu.Unlock()
	})
}

// batchUnit is one distinct cache key of the batch: the representative
// request that runs (or is re-weighted), and the indexes of every member
// resolving to that key.
type batchUnit struct {
	req     Request
	members []int
	cost    float64
}

// batchGroup is one scheduling unit: a set of batchUnits sharing a
// FrontierKey whose first unit runs the dynamic program and whose rest
// are answered from its frontier snapshot. Units that cannot share a
// frontier (IRA refinement is seeded, not bit-for-bit; the scalar
// baselines have no frontier) form singleton groups — for IRA the shared
// memo still carries the cross-member reuse.
type batchGroup struct {
	units []*batchUnit
}

// runBatch is the shared body of the collecting and streaming entry
// points. done is called exactly once per member index, serialized by the
// callers.
func runBatch(ctx context.Context, reqs []Request, opts BatchOptions, done func(int, BatchItem)) {
	if ctx == nil {
		ctx = context.Background()
	}
	shared := opts.Shared
	if shared == nil && !opts.DisableSharing {
		shared = NewSharedMemo()
	}
	if opts.DisableSharing {
		shared = nil
	}

	// Resolve members into distinct-cache-key units; invalid members fail
	// immediately and independently.
	byCK := make(map[string]*batchUnit)
	var units []*batchUnit
	frontierable := make(map[*batchUnit]string) // unit -> FrontierKey, EXA/RTA only
	for i, req := range reqs {
		ck, err := req.CacheKey()
		if err != nil {
			done(i, BatchItem{Err: err})
			continue
		}
		if u, ok := byCK[ck]; ok {
			u.members = append(u.members, i)
			continue
		}
		req.Shared = shared
		_, _, _, alg, _, _ := req.resolve() // already validated by CacheKey
		u := &batchUnit{
			req:     req,
			members: []int{i},
			cost:    core.PredictCost(len(req.Query.Relations), len(req.Objectives), alg.String()),
		}
		byCK[ck] = u
		units = append(units, u)
		if alg == AlgoEXA || alg == AlgoRTA {
			// Only these answer re-weights bit-for-bit from a frontier
			// snapshot (see ReoptimizeContext); IRA's seeded path refines
			// and may return a finer frontier than a cold run.
			fk, _ := u.req.FrontierKey()
			frontierable[u] = fk
		}
	}

	// Frontier groups: units sharing a FrontierKey differ only in weights
	// and bounds, so one dynamic program serves the whole group.
	byFK := make(map[string]*batchGroup)
	var groups []*batchGroup
	for _, u := range units {
		fk, ok := frontierable[u]
		if !ok {
			groups = append(groups, &batchGroup{units: []*batchUnit{u}})
			continue
		}
		if g, exists := byFK[fk]; exists {
			g.units = append(g.units, u)
			continue
		}
		g := &batchGroup{units: []*batchUnit{u}}
		byFK[fk] = g
		groups = append(groups, g)
	}

	// Most-expensive-first: long dynamic programs start immediately (the
	// classic LPT makespan heuristic), and the cheap overlapping members
	// that follow find their shared subproblems already published.
	sort.SliceStable(groups, func(i, j int) bool {
		return groups[i].units[0].cost > groups[j].units[0].cost
	})

	// Members sharing a *Query object must not optimize concurrently: the
	// query's cardinality/selectivity estimates are memoized on the Query
	// itself (the first run warms them for everyone — the batch's shared
	// warm-up), and that memo is not written under a lock.
	queryLocks := make(map[*Query]*sync.Mutex)
	for _, u := range units {
		if queryLocks[u.req.Query] == nil {
			queryLocks[u.req.Query] = new(sync.Mutex)
		}
	}

	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = 1
	}
	if parallel > len(groups) {
		parallel = len(groups)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < parallel; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1) - 1)
				if n >= len(groups) {
					return
				}
				runGroup(ctx, groups[n], queryLocks, done)
			}
		}()
	}
	wg.Wait()
}

// runGroup executes one scheduling unit: the leader's dynamic program,
// then the group's re-weights from the leader's frontier snapshot.
func runGroup(ctx context.Context, g *batchGroup, queryLocks map[*Query]*sync.Mutex, done func(int, BatchItem)) {
	leader := g.units[0]
	captureFrontier := len(g.units) > 1

	lock := queryLocks[leader.req.Query]
	lock.Lock()
	var res *Result
	var snap *FrontierSnapshot
	var err error
	if captureFrontier {
		res, snap, err = OptimizeSnapshotContext(ctx, leader.req)
	} else {
		res, err = OptimizeContext(ctx, leader.req)
	}
	lock.Unlock()
	emitUnit(leader, res, err, false, done)

	for _, u := range g.units[1:] {
		if err != nil || snap == nil {
			// Leader failed or produced no reusable frontier (degraded
			// run): fall back to each unit's own cold optimization.
			qlock := queryLocks[u.req.Query]
			qlock.Lock()
			r, e := OptimizeContext(ctx, u.req)
			qlock.Unlock()
			emitUnit(u, r, e, false, done)
			continue
		}
		// A pure SelectBest scan over the snapshot — no dynamic program,
		// bit-for-bit the cold answer at the unit's weights/bounds.
		r, _, e := ReoptimizeContext(ctx, u.req, snap)
		emitUnit(u, r, e, true, done)
	}
}

// emitUnit fans one unit's outcome out to all its members: the first
// member owns the run, the rest are cache-key duplicates sharing its
// Result.
func emitUnit(u *batchUnit, res *Result, err error, reused bool, done func(int, BatchItem)) {
	for k, i := range u.members {
		done(i, BatchItem{Result: res, Err: err, Reused: reused || k > 0})
	}
}
