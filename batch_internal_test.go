package moqo

import (
	"context"
	"testing"

	"moqo/internal/core"
)

// batchChain builds a customer–orders–lineitem chain against cat.
func batchChain(t *testing.T, cat *Catalog) *Query {
	t.Helper()
	q := NewQuery("chain3", cat)
	c := q.AddRelation("customer", "c", 0.2)
	o := q.AddRelation("orders", "o", 0.5)
	l := q.AddRelation("lineitem", "l", 0.6)
	q.AddFKJoin(o, "o_custkey", c, "c_custkey")
	q.AddFKJoin(l, "l_orderkey", o, "o_orderkey")
	return q
}

// TestBatchDuplicatesRunOneDP pins the batch dedupe contract with the
// engine's run counter: N members resolving to the same cache key — plus
// re-weights of the same frontier — execute exactly one dynamic program,
// under both sequential and parallel fan-out. Run under -race in CI, this
// also exercises the concurrent scheduling paths.
func TestBatchDuplicatesRunOneDP(t *testing.T) {
	cat := TPCHCatalog(0.1)
	q := batchChain(t, cat)
	objs := []Objective{TotalTime, BufferFootprint, Energy}
	base := Request{
		Query:      q,
		Algorithm:  AlgoRTA,
		Alpha:      1.5,
		Objectives: objs,
		Weights:    map[Objective]float64{TotalTime: 1, BufferFootprint: 0.1, Energy: 0.3},
	}
	reweight := base
	reweight.Weights = map[Objective]float64{TotalTime: 0.2, BufferFootprint: 1, Energy: 0.7}

	for _, parallel := range []int{1, 4} {
		reqs := []Request{base, base, reweight, base, reweight, base}
		before := core.EngineRuns()
		items := OptimizeBatchContext(context.Background(), reqs, BatchOptions{Parallel: parallel})
		ran := core.EngineRuns() - before
		if ran != 1 {
			t.Fatalf("parallel=%d: %d members (4 identical + 2 re-weights) ran %d DPs, want exactly 1",
				parallel, len(reqs), ran)
		}
		for i, it := range items {
			if it.Err != nil {
				t.Fatalf("parallel=%d: member %d failed: %v", parallel, i, it.Err)
			}
			if i != 0 && !it.Reused {
				t.Errorf("parallel=%d: member %d not marked reused", parallel, i)
			}
		}
		// Cache-key duplicates share the leader's Result by contract.
		if items[1].Result != items[0].Result {
			t.Error("duplicate members did not share the leader's Result")
		}
	}
}

// TestBatchSharedMemoCounters pins that overlapping-but-distinct members
// actually traffic the shared memo: a chain and its extension share every
// subproblem of the common prefix.
func TestBatchSharedMemoCounters(t *testing.T) {
	cat := TPCHCatalog(0.1)
	chain := batchChain(t, cat)
	ext := NewQuery("chain4", cat)
	c := ext.AddRelation("customer", "c", 0.2)
	o := ext.AddRelation("orders", "o", 0.5)
	l := ext.AddRelation("lineitem", "l", 0.6)
	n := ext.AddRelation("nation", "n", 1)
	ext.AddFKJoin(o, "o_custkey", c, "c_custkey")
	ext.AddFKJoin(l, "l_orderkey", o, "o_orderkey")
	ext.AddFKJoin(c, "c_nationkey", n, "n_nationkey")

	objs := []Objective{TotalTime, BufferFootprint}
	mk := func(q *Query) Request {
		// EXA prunes exactly (αi = 1 for every query size), so the chain's
		// subproblems are keyed identically inside the extension.
		return Request{
			Query:      q,
			Algorithm:  AlgoEXA,
			Objectives: objs,
			Weights:    map[Objective]float64{TotalTime: 1, BufferFootprint: 0.1},
		}
	}

	sm := NewSharedMemo()
	items := OptimizeBatchContext(context.Background(),
		[]Request{mk(chain), mk(ext)}, BatchOptions{Shared: sm})
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("member %d failed: %v", i, it.Err)
		}
	}
	hits, _, published := sm.Counters()
	if published == 0 {
		t.Fatal("batch published no subproblems")
	}
	// Whichever member ran second (the batch schedules most-expensive
	// first, so here the extension runs before the chain) must hit every
	// non-singleton connected subset of the shared prefix: {c,o}, {o,l},
	// {c,o,l}.
	if hits < 3 {
		t.Fatalf("batch hit %d shared subproblems, want >= 3", hits)
	}
	if s := items[0].Result.Stats.SharedMemoHits + items[1].Result.Stats.SharedMemoHits; s < 3 {
		t.Fatalf("members' Stats.SharedMemoHits sum to %d, want >= 3", s)
	}
}
