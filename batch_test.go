package moqo_test

import (
	"context"
	"fmt"
	"testing"

	"moqo"
)

// batchWorkload builds a mixed overlapping workload over one catalog:
// a chain, an extension of that chain (sharing its prefix subproblems),
// two TPC-H queries, an exact duplicate, a re-weight, and members across
// EXA/RTA/IRA/Selinger. The same request slice is optimized per-member
// (the baseline) and as a batch (the subject) by the differential test.
func batchWorkload(t testing.TB) []moqo.Request {
	t.Helper()
	cat := moqo.TPCHCatalog(0.1)

	chain := moqo.NewQuery("chain3", cat)
	c := chain.AddRelation("customer", "c", 0.2)
	o := chain.AddRelation("orders", "o", 0.5)
	l := chain.AddRelation("lineitem", "l", 0.6)
	chain.AddFKJoin(o, "o_custkey", c, "c_custkey")
	chain.AddFKJoin(l, "l_orderkey", o, "o_orderkey")

	star := moqo.NewQuery("star4", cat)
	c = star.AddRelation("customer", "c", 0.2)
	o = star.AddRelation("orders", "o", 0.5)
	l = star.AddRelation("lineitem", "l", 0.6)
	n := star.AddRelation("nation", "n", 1)
	star.AddFKJoin(o, "o_custkey", c, "c_custkey")
	star.AddFKJoin(l, "l_orderkey", o, "o_orderkey")
	star.AddFKJoin(c, "c_nationkey", n, "n_nationkey")

	q3, err := moqo.TPCHQuery(3, cat)
	if err != nil {
		t.Fatal(err)
	}
	q5, err := moqo.TPCHQuery(5, cat)
	if err != nil {
		t.Fatal(err)
	}

	objs := []moqo.Objective{moqo.TotalTime, moqo.BufferFootprint, moqo.Energy}
	w1 := map[moqo.Objective]float64{moqo.TotalTime: 1, moqo.BufferFootprint: 0.1, moqo.Energy: 0.3}
	w2 := map[moqo.Objective]float64{moqo.TotalTime: 0.3, moqo.BufferFootprint: 1, moqo.Energy: 0.1}

	chainEXA := moqo.Request{Query: chain, Algorithm: moqo.AlgoEXA, Objectives: objs, Weights: w1}
	starEXA := moqo.Request{Query: star, Algorithm: moqo.AlgoEXA, Objectives: objs, Weights: w1}
	starEXAw2 := starEXA
	starEXAw2.Weights = w2

	return []moqo.Request{
		chainEXA, // shares its whole DP with starEXA's prefix
		starEXA,
		chainEXA,  // exact duplicate: one DP
		starEXAw2, // re-weight: answered from starEXA's frontier
		{Query: q3, Algorithm: moqo.AlgoRTA, Alpha: 1.5, Objectives: objs, Weights: w1},
		{Query: q3, Algorithm: moqo.AlgoRTA, Alpha: 1.5, Objectives: objs, Weights: w2},
		{Query: q5, Algorithm: moqo.AlgoIRA, Alpha: 1.5, Objectives: objs, Weights: w1,
			Bounds: map[moqo.Objective]float64{moqo.BufferFootprint: 1e9}},
		{Query: q3, Algorithm: moqo.AlgoSelinger, Objectives: objs},
	}
}

// TestBatchMatchesPerMemberDifferential is the batch acceptance
// differential: over a mixed overlapping workload — chain/star/TPC-H
// shapes, duplicates, re-weights, EXA/RTA/IRA/Selinger — every batch
// member's answer is bit-for-bit the answer of a standalone Optimize
// call, for sequential and parallel fan-out and for Workers 1 and 4
// inside the dynamic programs.
func TestBatchMatchesPerMemberDifferential(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, parallel := range []int{1, 4} {
			t.Run(fmt.Sprintf("workers=%d/parallel=%d", workers, parallel), func(t *testing.T) {
				reqs := batchWorkload(t)
				for i := range reqs {
					reqs[i].Workers = workers
				}

				// Baseline: each member alone, no sharing of any kind.
				base := make([]*moqo.Result, len(reqs))
				for i, req := range reqs {
					res, err := moqo.Optimize(req)
					if err != nil {
						t.Fatalf("baseline member %d: %v", i, err)
					}
					base[i] = res
				}

				items := moqo.OptimizeBatchContext(context.Background(), reqs,
					moqo.BatchOptions{Parallel: parallel})
				if len(items) != len(reqs) {
					t.Fatalf("got %d items for %d members", len(items), len(reqs))
				}
				for i, it := range items {
					if it.Err != nil {
						t.Fatalf("batch member %d: %v", i, it.Err)
					}
					assertSameAnswer(t, fmt.Sprintf("member %d", i), it.Result, base[i])
				}
				if !items[2].Reused {
					t.Error("exact-duplicate member not marked reused")
				}
				if !items[3].Reused {
					t.Error("re-weight member not marked reused")
				}
			})
		}
	}
}

// TestBatchInvalidMemberIsIndependent pins that one invalid member fails
// alone without poisoning the batch.
func TestBatchInvalidMemberIsIndependent(t *testing.T) {
	reqs := batchWorkload(t)[:2]
	reqs = append(reqs, moqo.Request{}) // no query: invalid
	items := moqo.OptimizeBatch(reqs)
	if items[2].Err == nil {
		t.Fatal("invalid member did not fail")
	}
	for i := 0; i < 2; i++ {
		if items[i].Err != nil {
			t.Fatalf("valid member %d failed: %v", i, items[i].Err)
		}
	}
}

// TestBatchStreamEmitsEveryMemberOnce pins the streaming contract: one
// emission per member, none concurrent, all present.
func TestBatchStreamEmitsEveryMemberOnce(t *testing.T) {
	reqs := batchWorkload(t)
	seen := make(map[int]int)
	moqo.OptimizeBatchStream(context.Background(), reqs,
		moqo.BatchOptions{Parallel: 4}, func(i int, item moqo.BatchItem) {
			if item.Err != nil {
				t.Errorf("member %d: %v", i, item.Err)
			}
			seen[i]++
		})
	for i := range reqs {
		if seen[i] != 1 {
			t.Fatalf("member %d emitted %d times", i, seen[i])
		}
	}
}

// ExampleOptimizeBatch optimizes a small workload as one batch: the
// duplicate member is answered without a second dynamic program, and the
// re-weighted member is served from the first member's Pareto frontier.
func ExampleOptimizeBatch() {
	cat := moqo.TPCHCatalog(1)
	q3, _ := moqo.TPCHQuery(3, cat)

	base := moqo.Request{
		Query:      q3,
		Algorithm:  moqo.AlgoRTA,
		Alpha:      1.5,
		Objectives: []moqo.Objective{moqo.TotalTime, moqo.Energy},
		Weights:    map[moqo.Objective]float64{moqo.TotalTime: 1, moqo.Energy: 0.2},
	}
	reweight := base
	reweight.Weights = map[moqo.Objective]float64{moqo.TotalTime: 0.1, moqo.Energy: 1}

	for i, item := range moqo.OptimizeBatch([]moqo.Request{base, base, reweight}) {
		fmt.Printf("member %d: plan found=%v reused=%v\n", i, item.Result.Plan != nil, item.Reused)
	}
	// Output:
	// member 0: plan found=true reused=false
	// member 1: plan found=true reused=true
	// member 2: plan found=true reused=true
}
