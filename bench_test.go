// Benchmarks regenerating the paper's evaluation, one per table/figure.
// Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark wraps the corresponding harness function of
// internal/bench at a scaled-down configuration (short timeout, few test
// cases, representative query subset) so the full suite finishes in
// minutes; cmd/experiments regenerates the figures at configurable scale.
package moqo_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"moqo/internal/bench"
	"moqo/internal/catalog"
	"moqo/internal/core"
	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/synthetic"
	"moqo/internal/workload"
)

// benchConfig is the scaled-down harness configuration for benchmarks.
func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.ScaleFactor = 1
	cfg.Timeout = time.Second
	cfg.CasesPerConfig = 2
	return cfg
}

// BenchmarkFigure1RunningExample measures the running-example analysis of
// Figures 1-2 (frontier filtering and weighted/bounded plan selection).
func BenchmarkFigure1RunningExample(b *testing.B) {
	e := bench.NewRunningExample()
	for i := 0; i < b.N; i++ {
		_ = e.ParetoFrontier()
		_ = e.WeightedOptimum()
		_ = e.BoundedOptimum()
	}
}

// BenchmarkFigure3PlanEvolution measures the three exact optimizations of
// the Figure 3 preference-evolution experiment on TPC-H Q3.
func BenchmarkFigure3PlanEvolution(b *testing.B) {
	cfg := benchConfig()
	cfg.Timeout = 10 * time.Second
	for i := 0; i < b.N; i++ {
		steps, err := bench.Figure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(steps) != 3 {
			b.Fatal("unexpected step count")
		}
	}
}

// BenchmarkFigure4Frontier measures the RTA frontier computation of
// Figure 4 (TPC-H Q5, tuple loss x buffer x time) per precision.
func BenchmarkFigure4Frontier(b *testing.B) {
	for _, alpha := range []float64{2, 1.25} {
		b.Run(fmt.Sprintf("alpha=%.4g", alpha), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Timeout = 30 * time.Second
			for i := 0; i < b.N; i++ {
				res, err := bench.Figure4(cfg, alpha)
				if err != nil {
					b.Fatal(err)
				}
				if len(res[0].Points) == 0 {
					b.Fatal("empty frontier")
				}
			}
		})
	}
}

// BenchmarkFigure5EXA measures the exact algorithm per query size and
// objective count — the cost-explosion measurement of Figure 5.
func BenchmarkFigure5EXA(b *testing.B) {
	for _, qn := range []int{1, 12, 3, 10, 5} {
		for _, k := range []int{1, 3, 6, 9} {
			b.Run(fmt.Sprintf("q%d/objs=%d", qn, k), func(b *testing.B) {
				cfg := benchConfig()
				cfg.Queries = []int{qn}
				cfg.ObjectiveCounts = []int{k}
				cfg.CasesPerConfig = 1
				for i := 0; i < b.N; i++ {
					if _, err := bench.Figure5(cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure7Complexity measures the analytic complexity-curve
// evaluation of Figure 7.
func BenchmarkFigure7Complexity(b *testing.B) {
	p := bench.DefaultComplexityParams()
	for i := 0; i < b.N; i++ {
		if pts := bench.Figure7(p); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFigure9WeightedMOQO measures one weighted-MOQO comparison cell
// (EXA vs RTA at three precisions) per representative query.
func BenchmarkFigure9WeightedMOQO(b *testing.B) {
	for _, qn := range []int{12, 3, 10} {
		b.Run(fmt.Sprintf("q%d", qn), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Queries = []int{qn}
			cfg.ObjectiveCounts = []int{6}
			cfg.CasesPerConfig = 1
			for i := 0; i < b.N; i++ {
				if _, err := bench.Figure9(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure10BoundedMOQO measures one bounded-MOQO comparison cell
// (EXA vs IRA at three precisions) per representative query.
func BenchmarkFigure10BoundedMOQO(b *testing.B) {
	for _, qn := range []int{12, 3} {
		b.Run(fmt.Sprintf("q%d", qn), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Queries = []int{qn}
			cfg.BoundCounts = []int{6}
			cfg.CasesPerConfig = 1
			for i := 0; i < b.N; i++ {
				if _, err := bench.Figure10(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlgorithms measures the raw optimizer algorithms on TPC-H Q3
// with six objectives — the microbenchmark behind all figure measurements.
func BenchmarkAlgorithms(b *testing.B) {
	cat := benchCatalog()
	q := workload.MustQuery(3, cat)
	m := costmodel.NewDefault(q)
	objs := objective.NewSet(
		objective.TotalTime, objective.StartupTime, objective.IOLoad,
		objective.BufferFootprint, objective.Energy, objective.TupleLoss,
	)
	w := objective.UniformWeights(objs)
	opts := core.Options{Objectives: objs, Timeout: 30 * time.Second}

	b.Run("EXA", func(b *testing.B) {
		// The untimed exact run takes ~30s on this six-objective
		// instance (versus ~0.1s for RTA(1.15) — the paper's orders-of-
		// magnitude gap); cap it so the benchmark suite stays bounded.
		o := opts
		o.Timeout = 10 * time.Second
		for i := 0; i < b.N; i++ {
			if _, err := core.EXA(m, w, objective.NoBounds(), o); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, alpha := range []float64{1.15, 1.5, 2} {
		b.Run(fmt.Sprintf("RTA/alpha=%.4g", alpha), func(b *testing.B) {
			o := opts
			o.Alpha = alpha
			for i := 0; i < b.N; i++ {
				if _, err := core.RTA(m, w, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("Selinger", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Selinger(m, objective.TotalTime, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchCatalog() *catalog.Catalog { return catalog.TPCH(1) }

// BenchmarkParallelRTA measures the level-synchronized parallel engine on
// 10–14 relation synthetic queries: Workers=1 against Workers=NumCPU on
// the identical plan space. On a multi-core machine the parallel arm
// should approach a NumCPU-fold speedup on the larger queries (levels
// with many table sets shard evenly); on one core both arms coincide.
func BenchmarkParallelRTA(b *testing.B) {
	objs := objective.NewSet(objective.TotalTime, objective.BufferFootprint, objective.Energy)
	w := objective.UniformWeights(objs)
	cases := []struct {
		shape  synthetic.Shape
		tables int
	}{
		{synthetic.Chain, 10},
		{synthetic.Chain, 12},
		{synthetic.Star, 12},
		{synthetic.Chain, 14},
	}
	workerCounts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, tc := range cases {
		_, q := synthetic.MustBuild(synthetic.Spec{
			Shape: tc.shape, Tables: tc.tables, MaxRows: 1e5, Seed: 1,
		})
		m := costmodel.NewDefault(q)
		for _, workers := range workerCounts {
			b.Run(fmt.Sprintf("%s%d/workers=%d", tc.shape, tc.tables, workers), func(b *testing.B) {
				opts := core.Options{
					Objectives: objs,
					Alpha:      1.5,
					Timeout:    time.Minute,
					Workers:    workers,
				}
				for i := 0; i < b.N; i++ {
					res, err := core.RTA(m, w, opts)
					if err != nil {
						b.Fatal(err)
					}
					if res.Best == nil {
						b.Fatal("no plan")
					}
				}
			})
		}
	}
}
