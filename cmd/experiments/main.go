// Command experiments regenerates the evaluation of the paper: every
// figure of "Approximation Schemes for Many-Objective Query Optimization"
// (Trummer & Koch, SIGMOD 2014) has a corresponding section in the output.
//
// Usage:
//
//	experiments [-fig all|1|2|3|4|5|7|9|10|scaling|parallel|server|topology]
//	            [-timeout 2s] [-cases 3] [-sf 1] [-seed 1] [-queries 1,12,3]
//	            [-out dir] [-workers N] [-tables 10,12,14]
//
// The defaults are scaled down from the paper's setup (two-hour timeout,
// 20 test cases per configuration) so the full run finishes in minutes;
// raise -timeout and -cases to approach the original scale. With -out,
// machine-readable CSV files are written next to the textual report.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"moqo/internal/bench"
	"moqo/internal/objective"
	"moqo/internal/synthetic"
	"moqo/internal/viz"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: all, 1, 2, 3, 4, 5, 7, 9, 10, scaling, parallel, server, reuse, store, batch, tenant, chaos, topology (ignores -timeout; fixed 60s per-run ceiling), or hotpath (explicit only — not part of all; ignores -timeout)")
		timeout = flag.Duration("timeout", 2*time.Second, "optimizer timeout per run (paper: 2h)")
		cases   = flag.Int("cases", 3, "test cases per configuration (paper: 20)")
		sf      = flag.Float64("sf", 1, "TPC-H scale factor")
		seed    = flag.Int64("seed", 1, "workload random seed")
		queries = flag.String("queries", "", "comma-separated TPC-H query numbers (default: all 22)")
		outDir  = flag.String("out", "", "directory for CSV output (optional)")
		workers = flag.Int("workers", 1, "optimizer worker goroutines per run (default 1 keeps the figure experiments paper-faithful sequential; -fig parallel defaults its parallel arm to NumCPU)")
		tables  = flag.String("tables", "", "comma-separated query sizes for -fig parallel (default 10,12,14), -fig hotpath (default 6,8,10; the exact arm caps at 8 tables), and -fig topology (overrides the chain/cycle/star/tree arms, max 26 — the exhaustive arm scans 2^n subsets; cliques keep their 8,10 defaults)")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Timeout = *timeout
	cfg.CasesPerConfig = *cases
	cfg.ScaleFactor = *sf
	cfg.Seed = *seed
	cfg.EngineWorkers = *workers
	for _, part := range splitArg(*queries) {
		n, err := strconv.Atoi(part)
		if err != nil {
			fatalf("bad -queries entry %q: %v", part, err)
		}
		cfg.Queries = append(cfg.Queries, n)
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatalf("create output dir: %v", err)
		}
	}

	if want("1") || want("2") {
		runningExample()
	}
	if want("3") {
		figure3(cfg)
	}
	if want("4") {
		figure4(cfg, *outDir)
	}
	if want("5") {
		figure5(cfg, *outDir)
	}
	if want("7") {
		figure7()
	}
	if want("9") {
		figure9(cfg, *outDir)
	}
	if want("10") {
		figure10(cfg, *outDir)
	}
	if *fig == "scaling" || *fig == "all" {
		scaling(cfg)
	}
	if *fig == "parallel" || *fig == "all" {
		parallelScaling(cfg, *workers, *tables, *outDir)
	}
	if *fig == "server" || *fig == "all" {
		serverLoad(cfg, *outDir)
	}
	if *fig == "topology" || *fig == "all" {
		topology(cfg, *tables, *outDir)
	}
	if *fig == "reuse" || *fig == "all" {
		reuse(cfg, *tables, *outDir)
	}
	if *fig == "store" || *fig == "all" {
		storeRestart(cfg, *tables, *outDir)
	}
	if *fig == "batch" || *fig == "all" {
		batchThroughput(cfg, *tables, *outDir)
	}
	if *fig == "tenant" || *fig == "all" {
		tenantFairness(cfg, *outDir)
	}
	if *fig == "chaos" || *fig == "all" {
		chaosAvailability(cfg, *outDir)
	}
	if *fig == "quality" || *fig == "all" {
		quality(cfg)
	}
	if *fig == "hotpath" {
		// Only on explicit request: the comparison runs the pre-refactor
		// reference engine to completion and cannot honor -timeout, so it
		// would add an unbounded arm to the default -fig all invocation.
		hotpath(cfg, *tables, *outDir)
	}
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}

func runningExample() {
	header("Figures 1-2: running example (weighted vs bounded MOQO, Pareto frontier)")
	e := bench.NewRunningExample()
	toXY := func(vs []objective.Vector) [][2]float64 {
		out := make([][2]float64, len(vs))
		for i, v := range vs {
			out[i] = [2]float64{v[objective.BufferFootprint], v[objective.TotalTime]}
		}
		return out
	}
	fmt.Println("plan cost vectors (o) and Pareto frontier (*):")
	fmt.Println(bench.Scatter(toXY(e.Points), toXY(e.ParetoFrontier()), 40, 12, "buffer space", "time"))
	w := e.WeightedOptimum()
	b := e.BoundedOptimum()
	fmt.Printf("weighted optimum:        buffer=%.1f time=%.1f (weighted cost %.1f)\n",
		w[objective.BufferFootprint], w[objective.TotalTime], e.Weights.Cost(w))
	fmt.Printf("bounded optimum (B=%.1f): buffer=%.1f time=%.1f — the bound changes the optimal plan\n",
		e.Bounds[objective.BufferFootprint], b[objective.BufferFootprint], b[objective.TotalTime])
}

func figure3(cfg bench.Config) {
	header("Figure 3: optimal-plan evolution for TPC-H Q3 under changing preferences")
	steps, err := bench.Figure3(cfg)
	if err != nil {
		fatalf("figure 3: %v", err)
	}
	fmt.Print(bench.RenderEvolution(steps))
}

func figure4(cfg bench.Config, outDir string) {
	header("Figure 4: 3-D approximate Pareto frontiers for TPC-H Q5 (loss x buffer x time)")
	res, err := bench.Figure4(cfg)
	if err != nil {
		fatalf("figure 4: %v", err)
	}
	for _, r := range res {
		fmt.Println(bench.RenderFrontier(r))
		writeCSV(outDir, fmt.Sprintf("fig4_alpha%.4g.csv", r.Alpha), bench.FrontierCSV(r))
		if outDir != "" {
			vectors := make([]objective.Vector, len(r.Points))
			for i, p := range r.Points {
				vectors[i] = objective.Vector{}.
					With(objective.TupleLoss, p.TupleLoss).
					With(objective.BufferFootprint, p.Buffer).
					With(objective.TotalTime, p.Time)
			}
			title := fmt.Sprintf("TPC-H Q5 approximate Pareto frontier (alpha=%.4g)", r.Alpha)
			svg := viz.Scatter3D(vectors, objective.TupleLoss, objective.BufferFootprint,
				objective.TotalTime, viz.DefaultStyle(title))
			writeCSV(outDir, fmt.Sprintf("fig4_alpha%.4g.svg", r.Alpha), svg)
		}
	}
}

func scaling(cfg bench.Config) {
	header("Empirical scaling (companion to Figure 7): optimization time vs #tables")
	spec := bench.ScalingSpec{Timeout: cfg.Timeout, Seed: cfg.Seed, Workers: cfg.EngineWorkers}
	pts, err := bench.Scaling(spec)
	if err != nil {
		fatalf("scaling: %v", err)
	}
	fmt.Println("synthetic chain queries, m=1e5, three objectives; '>' marks timeout (lower bound):")
	fmt.Print(bench.RenderScaling(pts, spec))
}

// parallelScaling measures the level-synchronized engine's Workers=1 vs
// Workers=N speedup and always emits BENCH_parallel.json (into -out when
// set, the working directory otherwise) for the CI pipeline to archive.
// A -workers value of 1 (the flag default, chosen for the sequential
// figure experiments) means "let the parallel arm default to NumCPU".
func parallelScaling(cfg bench.Config, workers int, tables, outDir string) {
	header("Engine parallelism: RTA wall-clock, Workers=1 vs Workers=N")
	if workers <= 1 {
		workers = 0 // ParallelSpec defaults 0 to NumCPU
	}
	spec := bench.ParallelSpec{
		Workers: workers,
		Timeout: cfg.Timeout,
		Seed:    cfg.Seed,
	}
	for _, part := range splitArg(tables) {
		n, err := strconv.Atoi(part)
		if err != nil {
			fatalf("bad -tables entry %q: %v", part, err)
		}
		spec.Tables = append(spec.Tables, n)
	}
	pts, err := bench.ParallelScaling(spec)
	if err != nil {
		fatalf("parallel: %v", err)
	}
	fmt.Printf("synthetic chain queries, three objectives, alpha=1.5, NumCPU=%d; '>' marks timeout:\n", runtime.NumCPU())
	fmt.Print(bench.RenderParallel(pts))

	raw, err := bench.ParallelJSON(pts)
	if err != nil {
		fatalf("parallel: %v", err)
	}
	path := "BENCH_parallel.json"
	if outDir != "" {
		path = filepath.Join(outDir, path)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

// serverLoad measures the moqod service under closed-loop concurrent load
// at varying cache-hit ratios and always emits BENCH_server.json (into
// -out when set, the working directory otherwise) for the CI pipeline to
// archive.
func serverLoad(cfg bench.Config, outDir string) {
	header("moqod service: closed-loop load, throughput and latency vs cache-hit ratio")
	spec := bench.ServerSpec{Seed: cfg.Seed}
	pts, err := bench.ServerLoad(spec)
	if err != nil {
		fatalf("server: %v", err)
	}
	fmt.Printf("TPC-H q3, three objectives, alpha=1.5, in-process moqod over loopback HTTP, NumCPU=%d:\n",
		runtime.NumCPU())
	fmt.Print(bench.RenderServerLoad(pts))

	raw, err := bench.ServerLoadJSON(pts)
	if err != nil {
		fatalf("server: %v", err)
	}
	path := "BENCH_server.json"
	if outDir != "" {
		path = filepath.Join(outDir, path)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

// topology measures the enumeration strategies against each other across
// join-graph topologies (tables x topology x strategy: scanned sets and
// splits, candidates, wall time) and always emits BENCH_topology.json
// (into -out when set, the working directory otherwise) for the CI
// pipeline to archive. A -tables override applies to the sparse arms
// (chain, cycle, star, random tree); cliques — where every subset is
// connected and the graph-aware strategy can only match the scan — keep
// their default sizes. The -timeout flag is deliberately not plumbed in:
// its 2s default (tuned for the paper figures) would truncate the
// largest exhaustive arms into degraded lower bounds, so the experiment
// keeps TopologySpec's own 60s per-run ceiling, like hotpath.
func topology(cfg bench.Config, tables, outDir string) {
	header("Enumeration topology scaling: exhaustive subset scan vs graph-aware csg-cmp")
	spec := bench.TopologySpec{Seed: cfg.Seed, Workers: cfg.EngineWorkers}
	if sizes := splitArg(tables); len(sizes) > 0 {
		var ns []int
		for _, part := range sizes {
			n, err := strconv.Atoi(part)
			if err != nil {
				fatalf("bad -tables entry %q: %v", part, err)
			}
			if n > 26 {
				// The experiment always runs the exhaustive arm, whose level
				// materialization Gosper-scans 2^n subsets — beyond ~26
				// tables the scan cannot finish within the 60s ceiling, so
				// the arm would degrade to the chain fallback and measure
				// that instead of the scan.
				fatalf("-tables entry %d exceeds 26: the exhaustive comparison arm scans 2^n subsets", n)
			}
			ns = append(ns, n)
		}
		spec.Arms = []bench.TopologyArm{
			{Shape: synthetic.Chain, Tables: ns},
			{Shape: synthetic.Cycle, Tables: ns},
			{Shape: synthetic.Star, Tables: ns},
			{Shape: synthetic.RandomTree, Tables: ns},
			{Shape: synthetic.Clique, Tables: []int{8, 10}},
		}
	}
	pts, err := bench.TopologyScaling(spec)
	if err != nil {
		fatalf("topology: %v", err)
	}
	fmt.Println("synthetic queries, two objectives, RTA alpha=3, Workers=1; both arms construct")
	fmt.Println("identical candidates — reductions and speedups are pure enumeration overhead:")
	fmt.Print(bench.RenderTopology(pts))

	raw, err := bench.TopologyJSON(pts)
	if err != nil {
		fatalf("topology: %v", err)
	}
	path := "BENCH_topology.json"
	if outDir != "" {
		path = filepath.Join(outDir, path)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

// reuse measures the parametric frontier-reuse serving path — a weight
// change answered from a cached FrontierSnapshot (SelectBest scan) vs a
// cold full DP at the same weights, plus the snapshot serialization
// round trip — and always emits BENCH_reuse.json (into -out when set,
// the working directory otherwise) for the CI pipeline to archive. A
// -tables override replaces the synthetic arms (chain + star per size);
// the TPC-H arms always run.
func reuse(cfg bench.Config, tables, outDir string) {
	header("Frontier reuse: re-weight requests from a cached Pareto snapshot vs cold DP")
	spec := bench.ReuseSpec{Seed: cfg.Seed, Workers: cfg.EngineWorkers}
	if sizes := splitArg(tables); len(sizes) > 0 {
		spec.Arms = []bench.ReuseArm{
			{Name: "tpch-q3", TPCH: 3},
			{Name: "tpch-q8", TPCH: 8},
		}
		for _, part := range sizes {
			n, err := strconv.Atoi(part)
			if err != nil {
				fatalf("bad -tables entry %q: %v", part, err)
			}
			spec.Arms = append(spec.Arms,
				bench.ReuseArm{Name: fmt.Sprintf("chain-%d", n), Shape: synthetic.Chain, Tables: n},
				bench.ReuseArm{Name: fmt.Sprintf("star-%d", n), Shape: synthetic.Star, Tables: n},
			)
		}
	}
	pts, err := bench.ReuseScaling(spec)
	if err != nil {
		fatalf("reuse: %v", err)
	}
	fmt.Println("RTA alpha=1.5, three objectives; hits are served from a decoded (round-tripped)")
	fmt.Println("snapshot and one sweep per workload is verified bit-for-bit against a cold run:")
	fmt.Print(bench.RenderReuse(pts))

	raw, err := bench.ReuseJSON(pts)
	if err != nil {
		fatalf("reuse: %v", err)
	}
	path := "BENCH_reuse.json"
	if outDir != "" {
		path = filepath.Join(outDir, path)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

// storeRestart measures the disk-backed frontier store's warm-restart
// serving path — a restarted process answering known query shapes from
// the store (lookup + decode + SelectBest scan) vs cold dynamic programs
// — and always emits BENCH_store.json (into -out when set, the working
// directory otherwise) for the CI pipeline to archive. A -tables
// override replaces the synthetic arms (chain + star per size); the
// TPC-H arms always run.
func storeRestart(cfg bench.Config, tables, outDir string) {
	header("Frontier store: warm-restart first requests from disk vs cold DP")
	spec := bench.StoreSpec{Seed: cfg.Seed, Workers: cfg.EngineWorkers}
	if sizes := splitArg(tables); len(sizes) > 0 {
		spec.Arms = []bench.ReuseArm{
			{Name: "tpch-q3", TPCH: 3},
			{Name: "tpch-q8", TPCH: 8},
		}
		for _, part := range sizes {
			n, err := strconv.Atoi(part)
			if err != nil {
				fatalf("bad -tables entry %q: %v", part, err)
			}
			spec.Arms = append(spec.Arms,
				bench.ReuseArm{Name: fmt.Sprintf("chain-%d", n), Shape: synthetic.Chain, Tables: n},
				bench.ReuseArm{Name: fmt.Sprintf("star-%d", n), Shape: synthetic.Star, Tables: n},
			)
		}
	}
	pts, sum, err := bench.StoreWarmRestart(spec)
	if err != nil {
		fatalf("store: %v", err)
	}
	fmt.Println("RTA alpha=1.5, three objectives; every restart cycle re-opens one shared store")
	fmt.Println("holding all arms, and one warm answer per arm is verified against a cold run:")
	fmt.Print(bench.RenderStore(pts, sum))

	raw, err := bench.StoreJSON(pts, sum)
	if err != nil {
		fatalf("store: %v", err)
	}
	path := "BENCH_store.json"
	if outDir != "" {
		path = filepath.Join(outDir, path)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

// batchThroughput measures batch workload optimization — a mixed
// overlapping workload (a synthetic chain plus two prefixes over one
// catalog, TPC-H members, exact duplicates and re-weights) optimized as
// one moqo.OptimizeBatch against one standalone request at a time — and
// always emits BENCH_batch.json (into -out when set, the working
// directory otherwise) for the CI pipeline to archive. Every batch answer
// is verified bit-for-bit against its standalone counterpart. A single
// -tables entry resizes the largest chain (its prefixes follow at -2 and
// -4 relations). The -timeout flag is not plumbed in: the harness
// verifies answers bit-for-bit, and a truncating timeout would degrade
// them into incomparability, so it keeps its own 60s per-member ceiling.
func batchThroughput(cfg bench.Config, tables, outDir string) {
	header("Batch workloads: shared-memo batch optimization vs sequential standalone requests")
	spec := bench.BatchSpec{Seed: cfg.Seed, Workers: cfg.EngineWorkers}
	if sizes := splitArg(tables); len(sizes) > 0 {
		n, err := strconv.Atoi(sizes[0])
		if err != nil {
			fatalf("bad -tables entry %q: %v", sizes[0], err)
		}
		spec.Tables = n
	}
	pts, sum, err := bench.BatchThroughput(spec)
	if err != nil {
		fatalf("batch: %v", err)
	}
	fmt.Println("chain + prefixes (EXA, shared subproblems), TPC-H q3/q5 (RTA alpha=1.5), one")
	fmt.Println("duplicate and two re-weights per base; latencies are completion offsets from")
	fmt.Println("workload start, and every batch answer is verified against a standalone run:")
	fmt.Print(bench.RenderBatch(pts, sum))

	raw, err := bench.BatchJSON(pts, sum)
	if err != nil {
		fatalf("batch: %v", err)
	}
	path := "BENCH_batch.json"
	if outDir != "" {
		path = filepath.Join(outDir, path)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

// tenantFairness measures the multi-tenant serving path: a light tenant
// living on the frontier re-weight fast path while a flood tenant
// saturates the cold-DP scheduler, under the fair scheduler and the
// -fifo baseline, and always emits BENCH_tenant.json (into -out when
// set, the working directory otherwise) for the CI pipeline to archive.
func tenantFairness(cfg bench.Config, outDir string) {
	header("Multi-tenant serving: light-tenant latency under a flood, fair vs FIFO")
	pts, sum, err := bench.TenantLoad(bench.TenantSpec{Seed: cfg.Seed})
	if err != nil {
		fatalf("tenant: %v", err)
	}
	fmt.Println("flood = distinct cold EXA chains (nothing caches); light = re-weights of one")
	fmt.Println("warmed RTA chain; fair gates only cold DPs, fifo queues every request globally:")
	fmt.Print(bench.RenderTenantLoad(pts, sum))

	raw, err := bench.TenantLoadJSON(pts, sum)
	if err != nil {
		fatalf("tenant: %v", err)
	}
	path := "BENCH_tenant.json"
	if outDir != "" {
		path = filepath.Join(outDir, path)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

// chaosAvailability measures serving through a dead store disk with and
// without the circuit breaker — availability, tail latency, and device
// operations attempted — and always emits BENCH_chaos.json (into -out
// when set, the working directory otherwise) for the CI pipeline to
// archive.
func chaosAvailability(cfg bench.Config, outDir string) {
	header("Disk chaos: serving through a dead frontier-store disk, breaker vs no breaker")
	pts, sum, err := bench.ChaosAvailability(bench.ChaosSpec{Seed: cfg.Seed})
	if err != nil {
		fatalf("chaos: %v", err)
	}
	fmt.Println("the disk hangs 10ms then fails on every operation; a tiny frontier memory tier")
	fmt.Println("keeps the store on the hot path; answers are verified against a fault-free run:")
	fmt.Print(bench.RenderChaos(pts, sum))

	raw, err := bench.ChaosJSON(pts, sum)
	if err != nil {
		fatalf("chaos: %v", err)
	}
	path := "BENCH_chaos.json"
	if outDir != "" {
		path = filepath.Join(outDir, path)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

// hotpath measures the allocation-free DP hot path against the preserved
// pre-refactor engine (time, allocs/op, bytes/op per candidate) and always
// emits BENCH_hotpath.json (into -out when set, the working directory
// otherwise) for the CI pipeline to archive.
func hotpath(cfg bench.Config, tables, outDir string) {
	header("Hot path: flat (allocation-free) engine vs pre-refactor reference")
	spec := bench.HotpathSpec{Seed: cfg.Seed}
	for _, part := range splitArg(tables) {
		n, err := strconv.Atoi(part)
		if err != nil {
			fatalf("bad -tables entry %q: %v", part, err)
		}
		spec.Tables = append(spec.Tables, n)
	}
	pts, err := bench.Hotpath(spec)
	if err != nil {
		fatalf("hotpath: %v", err)
	}
	fmt.Println("synthetic chain queries, EXA and RTA (alpha=1.5), Workers=1, averages over 3 runs;")
	fmt.Println("alloc/c = heap allocations per constructed candidate plan:")
	fmt.Print(bench.RenderHotpath(pts))

	raw, err := bench.HotpathJSON(pts)
	if err != nil {
		fatalf("hotpath: %v", err)
	}
	path := "BENCH_hotpath.json"
	if outDir != "" {
		path = filepath.Join(outDir, path)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

// splitArg splits a comma-separated flag value, dropping blanks.
func splitArg(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func quality(cfg bench.Config) {
	header("Frontier quality: measured RTA cover factor vs the alpha guarantee")
	rows, err := bench.FrontierQuality(cfg)
	if err != nil {
		fatalf("quality: %v", err)
	}
	fmt.Println("(queries whose exact optimization timed out are skipped)")
	fmt.Print(bench.RenderQuality(rows))
}

func figure5(cfg bench.Config, outDir string) {
	header("Figure 5: exact algorithm (EXA) on TPC-H — time, memory, Pareto plans")
	rows, err := bench.Figure5(cfg)
	if err != nil {
		fatalf("figure 5: %v", err)
	}
	fmt.Print(bench.RenderRows(rows, "objs"))
	writeCSV(outDir, "fig5.csv", bench.RowsCSV(rows, "objs"))
}

func figure7() {
	header("Figure 7: analytic time complexity (j=6, l=3, m=1e5)")
	fmt.Print(bench.RenderComplexity(bench.Figure7(bench.DefaultComplexityParams())))
}

func figure9(cfg bench.Config, outDir string) {
	header("Figure 9: weighted MOQO — EXA vs RTA")
	rows, err := bench.Figure9(cfg)
	if err != nil {
		fatalf("figure 9: %v", err)
	}
	fmt.Print(bench.RenderRows(rows, "objs"))
	writeCSV(outDir, "fig9.csv", bench.RowsCSV(rows, "objs"))
}

func figure10(cfg bench.Config, outDir string) {
	header("Figure 10: bounded MOQO — EXA vs IRA")
	rows, err := bench.Figure10(cfg)
	if err != nil {
		fatalf("figure 10: %v", err)
	}
	fmt.Print(bench.RenderRows(rows, "bounds"))
	writeCSV(outDir, "fig10.csv", bench.RowsCSV(rows, "bounds"))
}

func writeCSV(dir, name, content string) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
