// Command moqo optimizes a single TPC-H query under user-specified
// objectives, weights and bounds, printing the selected plan, its cost
// vector, and the (approximate) Pareto frontier the optimizer produced as
// a byproduct.
//
// Usage:
//
//	moqo -query 3 [-algorithm rta] [-alpha 1.5] [-sf 1] [-timeout 10s]
//	     [-objectives total_time,energy,tuple_loss]
//	     [-weights total_time=1,energy=0.2] [-bounds tuple_loss=0]
//	     [-workers N] [-enum auto|graph|exhaustive] [-frontier]
//
// Examples:
//
//	# near-optimal time/energy tradeoff for TPC-H Q5
//	moqo -query 5 -objectives total_time,energy -weights total_time=1,energy=100
//
//	# bounded optimization: fastest plan losing at most 5% of tuples
//	moqo -query 3 -algorithm ira -objectives total_time,tuple_loss \
//	     -weights total_time=1 -bounds tuple_loss=0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"moqo"
)

func main() {
	var (
		queryNum   = flag.Int("query", 3, "TPC-H query number (1-22)")
		algorithm  = flag.String("algorithm", "", "exa, rta, ira, selinger, weightedsum (default: rta, or ira when bounds are set)")
		alpha      = flag.Float64("alpha", 1.2, "approximation precision for rta/ira (>= 1)")
		sf         = flag.Float64("sf", 1, "TPC-H scale factor")
		timeout    = flag.Duration("timeout", 30*time.Second, "optimization timeout")
		objectives = flag.String("objectives", "total_time,buffer_footprint,tuple_loss", "comma-separated objectives")
		weights    = flag.String("weights", "total_time=1", "comma-separated objective=weight pairs")
		bounds     = flag.String("bounds", "", "comma-separated objective=bound pairs")
		workers    = flag.Int("workers", runtime.NumCPU(), "optimizer worker goroutines (1 = sequential)")
		enum       = flag.String("enum", "auto", "search-space enumeration strategy: auto, graph, exhaustive (results are identical; graph avoids exponential scanning on sparse join graphs)")
		frontier   = flag.Bool("frontier", false, "print the full Pareto frontier")
		explain    = flag.Bool("explain", false, "print per-node cardinalities and costs")
		asJSON     = flag.Bool("json", false, "print the plan as JSON and exit")
	)
	flag.Parse()

	cat := moqo.TPCHCatalog(*sf)
	q, err := moqo.TPCHQuery(*queryNum, cat)
	if err != nil {
		fatalf("%v", err)
	}

	req := moqo.Request{
		Query:   q,
		Alpha:   *alpha,
		Timeout: *timeout,
		Workers: *workers,
	}
	req.Enumeration, err = moqo.ParseEnumerationStrategy(*enum)
	if err != nil {
		fatalf("%v", err)
	}
	for _, name := range splitList(*objectives) {
		o, err := parseObjective(name)
		if err != nil {
			fatalf("%v", err)
		}
		req.Objectives = append(req.Objectives, o)
	}
	req.Weights, err = parsePairs(*weights)
	if err != nil {
		fatalf("-weights: %v", err)
	}
	req.Bounds, err = parsePairs(*bounds)
	if err != nil {
		fatalf("-bounds: %v", err)
	}
	if *algorithm != "" {
		alg, err := moqo.ParseAlgorithm(*algorithm)
		if err != nil {
			fatalf("%v", err)
		}
		req.Algorithm = alg
		// Not set for "auto": HasAlgorithm with a zero Algorithm is the
		// legacy combination that forces AlgoEXA.
		req.HasAlgorithm = alg != moqo.AlgoAuto
	}

	res, err := moqo.Optimize(req)
	if err != nil {
		fatalf("%v", err)
	}

	if *asJSON {
		raw, err := res.PlanJSON()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(string(raw))
		return
	}

	fmt.Printf("query:     tpch-q%d (%d relations, scale factor %g)\n", *queryNum, q.NumRelations(), *sf)
	fmt.Printf("optimizer: %s in %s (%d plans considered, %d stored",
		algName(req), res.Stats.Duration.Round(time.Millisecond), res.Stats.Considered, res.Stats.Stored)
	if res.Stats.Iterations > 1 {
		fmt.Printf(", %d iterations", res.Stats.Iterations)
	}
	if res.Stats.TimedOut {
		fmt.Print(", TIMED OUT — result degraded")
	}
	fmt.Println(")")
	fmt.Println("\nselected plan:")
	if *explain {
		fmt.Print(indent(res.Explain()))
	} else {
		fmt.Print(indent(res.PlanText()))
	}
	fmt.Println("cost vector:")
	for _, o := range res.Objectives() {
		fmt.Printf("  %-18s %12.4g %s\n", o.String(), res.Cost(o), o.Unit())
	}
	if *frontier {
		fmt.Printf("\nPareto frontier (%d plans):\n", len(res.Frontier))
		objs := moqo.NewObjectiveSet(req.Objectives...)
		for _, v := range res.FrontierVectors() {
			fmt.Printf("  %s\n", v.FormatOn(objs))
		}
	}
}

func algName(req moqo.Request) string {
	if req.Algorithm != moqo.AlgoAuto {
		return req.Algorithm.String()
	}
	if len(req.Bounds) > 0 {
		return "ira (default for bounded requests)"
	}
	return "rta (default)"
}

func parseObjective(name string) (moqo.Objective, error) {
	for _, o := range moqo.AllObjectives() {
		if o.String() == name {
			return o, nil
		}
	}
	return 0, fmt.Errorf("unknown objective %q", name)
}

func parsePairs(s string) (map[moqo.Objective]float64, error) {
	out := map[moqo.Objective]float64{}
	for _, pair := range splitList(s) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad pair %q (want objective=value)", pair)
		}
		o, err := parseObjective(strings.TrimSpace(k))
		if err != nil {
			return nil, err
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %v", pair, err)
		}
		out[o] = x
	}
	return out, nil
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "moqo: "+format+"\n", args...)
	os.Exit(1)
}
