package main

import (
	"testing"

	"moqo"
)

func TestParseObjective(t *testing.T) {
	o, err := parseObjective("total_time")
	if err != nil || o != moqo.TotalTime {
		t.Errorf("parseObjective(total_time) = %v, %v", o, err)
	}
	if _, err := parseObjective("nope"); err == nil {
		t.Error("unknown objective accepted")
	}
}

func TestParsePairs(t *testing.T) {
	got, err := parsePairs("total_time=1, energy=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if got[moqo.TotalTime] != 1 || got[moqo.Energy] != 0.5 {
		t.Errorf("parsePairs = %v", got)
	}
	if len(got) != 2 {
		t.Errorf("parsePairs produced %d entries", len(got))
	}
	empty, err := parsePairs("")
	if err != nil || len(empty) != 0 {
		t.Errorf("empty pairs = %v, %v", empty, err)
	}
	for _, bad := range []string{"total_time", "nope=1", "total_time=abc"} {
		if _, err := parsePairs(bad); err == nil {
			t.Errorf("parsePairs(%q) accepted", bad)
		}
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("splitList = %v", got)
	}
	if splitList("  ") != nil {
		t.Error("blank list should be nil")
	}
}

func TestIndent(t *testing.T) {
	if got := indent("x\ny\n"); got != "  x\n  y\n" {
		t.Errorf("indent = %q", got)
	}
}

func TestAlgName(t *testing.T) {
	if got := algName(moqo.Request{}); got != "rta (default)" {
		t.Errorf("algName = %q", got)
	}
	if got := algName(moqo.Request{Bounds: map[moqo.Objective]float64{moqo.TotalTime: 1}}); got != "ira (default for bounded requests)" {
		t.Errorf("algName bounded = %q", got)
	}
	if got := algName(moqo.Request{HasAlgorithm: true, Algorithm: moqo.AlgoEXA}); got != "exa" {
		t.Errorf("algName explicit = %q", got)
	}
	// An explicit algorithm is honored even without HasAlgorithm — the
	// zero value of Algorithm is AlgoAuto, not AlgoEXA.
	if got := algName(moqo.Request{Algorithm: moqo.AlgoEXA}); got != "exa" {
		t.Errorf("algName explicit without HasAlgorithm = %q", got)
	}
}
