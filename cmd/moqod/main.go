// Command moqod runs the moqo optimization service: a long-running HTTP
// server that answers multi-objective query optimization requests through
// a sharded, single-flight plan cache — the paper's multi-user Cloud
// provider scenario as a daemon.
//
// Usage:
//
//	moqod [-addr :8080] [-cache 1024] [-frontier-cache 512]
//	      [-cache-shards 16] [-default-timeout 30s] [-max-timeout 2m]
//	      [-workers N] [-enum auto|graph|exhaustive]
//	      [-store DIR] [-store-max-bytes N] [-store-nosync]
//	      [-no-store-breaker] [-breaker-threshold 5] [-breaker-cooldown 250ms]
//	      [-tenants FILE] [-max-cold-dps N] [-fifo] [-max-queue N]
//
// With -store, frontier snapshots persist to a crash-consistent segment
// log under DIR: every completed (non-degraded) dynamic program writes
// its Pareto frontier through to disk, and a restarted daemon answers
// known query shapes from the store in microseconds instead of
// re-running their dynamic programs (warm restart).
//
// With -tenants, requests are served under per-tenant quotas from the
// given JSON config (see internal/tenant): callers identify themselves
// with the X-Moqo-Tenant header (batch members with a per-member tenant
// field; absent means the anonymous tenant), admission enforces each
// tenant's table ceiling, predicted-cost ceiling and token-bucket
// request budget (rejections are 429 with Retry-After), and cold
// dynamic programs are scheduled across tenants by weighted fair
// round-robin — cache and frontier hits bypass the queue entirely.
// SIGHUP re-reads the config without a restart; a config that fails to
// parse is rejected and the running one kept. Tenancy never changes
// answers: plans, costs and frontiers are identical with and without it.
//
// Endpoints:
//
//	POST /optimize            — optimize one query (JSON body; see internal/server)
//	POST /optimize/batch      — optimize a whole workload in one call: one
//	                            catalog resolution, identical members deduped
//	                            into one dynamic program, re-weights served
//	                            from cached frontiers, common subexpressions
//	                            shared across members, cost-ordered
//	                            scheduling ("stream": true for NDJSON)
//	GET  /metrics             — request, latency, cache and per-tenant
//	                            counters (JSON)
//	GET  /metrics/prometheus  — the same counters in the Prometheus text
//	                            exposition format
//	GET  /healthz             — liveness probe: 200 while the process can
//	                            answer requests, even degraded to
//	                            memory-only serving (restarting would not
//	                            fix a failed disk)
//	GET  /readyz              — readiness probe: 503 while the store
//	                            circuit breaker has quarantined a failing
//	                            disk, so balancers prefer full-capacity
//	                            replicas
//
// Resilience: store disk errors feed a circuit breaker (disable with
// -no-store-breaker) — after -breaker-threshold consecutive failures
// the disk is quarantined and serving degrades to memory-only (both
// cache tiers keep answering; nothing fails), probing recovery every
// -breaker-cooldown with exponential backoff. -max-queue bounds the
// cold-DP admission queue: arrivals past the bound are shed immediately
// with 503 + Retry-After instead of growing an unbounded latency
// cliff, and a request whose deadline budget dies while queued is shed
// the same way.
//
// Example session:
//
//	moqod -addr :8080 &
//	curl -s localhost:8080/optimize -d '{
//	  "tpch": 3,
//	  "objectives": ["total_time", "energy"],
//	  "weights": {"total_time": 1, "energy": 0.2}
//	}'
//	curl -s localhost:8080/metrics
//
// The process shuts down gracefully on SIGINT/SIGTERM: the listener
// stops accepting, in-flight requests drain (up to 30s), the
// eviction-demotion queue is flushed to the store, and the store's
// segments are synced and closed — a clean shutdown never loses an
// enqueued demotion and never tears a segment.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"moqo"
	"moqo/internal/server"
	"moqo/internal/tenant"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		cacheCap       = flag.Int("cache", 1024, "exact-result plan cache capacity in entries (negative disables caching entirely)")
		frontierCap    = flag.Int("frontier-cache", 512, "frontier snapshot cache capacity in entries (negative disables the tier); weight/bound changes on a cached frontier are served without re-optimizing")
		cacheShards    = flag.Int("cache-shards", 0, "plan cache shard count (0 = default)")
		defaultTimeout = flag.Duration("default-timeout", 30*time.Second, "optimization timeout for requests without timeout_ms")
		maxTimeout     = flag.Duration("max-timeout", 2*time.Minute, "upper clamp on per-request timeouts")
		workers        = flag.Int("workers", runtime.NumCPU(), "default optimizer worker goroutines per request")
		enum           = flag.String("enum", "auto", "default search-space enumeration strategy for requests without one: auto, graph, exhaustive")
		storePath      = flag.String("store", "", "directory for the disk-backed frontier store (empty disables persistence); a restarted daemon serves known query shapes from it without re-optimizing")
		storeMaxBytes  = flag.Int64("store-max-bytes", 0, "live-byte budget of the frontier store (0 = default 256 MiB, negative = unbounded)")
		storeNoSync    = flag.Bool("store-nosync", false, "skip fsync after store appends (faster; a crash may lose the newest snapshots)")
		noBreaker      = flag.Bool("no-store-breaker", false, "disable the store circuit breaker: every request keeps paying a failing disk's latency (chaos baseline; not for production)")
		breakThreshold = flag.Int("breaker-threshold", 0, "consecutive store failures that trip the breaker (0 = default 5)")
		breakCooldown  = flag.Duration("breaker-cooldown", 0, "first breaker open window before a recovery probe; failed probes double it (0 = default 250ms)")
		maxQueue       = flag.Int("max-queue", 0, "total cold-DP admission-queue bound; arrivals past it are shed with 503 (0 = unbounded)")
		tenantsPath    = flag.String("tenants", "", "JSON tenant-config file: per-tenant quotas, budgets and scheduling weights (empty = no quotas; SIGHUP re-reads it)")
		maxColdDPs     = flag.Int("max-cold-dps", 0, "concurrently running cold dynamic programs across all tenants (0 = NumCPU); cache hits never count")
		fifo           = flag.Bool("fifo", false, "replace fair tenant scheduling with one global FIFO queue over every request (unfairness baseline for benchmarks)")
	)
	flag.Parse()

	defaultEnum, err := moqo.ParseEnumerationStrategy(*enum)
	if err != nil {
		fatalf("%v", err)
	}
	var registry *tenant.Registry
	if *tenantsPath != "" {
		cfg, err := tenant.LoadConfig(*tenantsPath)
		if err != nil {
			fatalf("%v", err)
		}
		registry = tenant.NewRegistry(cfg)
		fmt.Printf("moqod: tenant config %s loaded (%d tenants)\n", *tenantsPath, len(cfg.Tenants))
	}
	svc, err := server.NewE(server.Options{
		CacheCapacity:         *cacheCap,
		FrontierCacheCapacity: *frontierCap,
		CacheShards:           *cacheShards,
		DefaultTimeout:        *defaultTimeout,
		MaxTimeout:            *maxTimeout,
		DefaultWorkers:        *workers,
		DefaultEnumeration:    defaultEnum,
		StorePath:             *storePath,
		StoreMaxBytes:         *storeMaxBytes,
		StoreNoSync:           *storeNoSync,
		NoStoreBreaker:        *noBreaker,
		BreakerThreshold:      *breakThreshold,
		BreakerCooldown:       *breakCooldown,
		MaxQueueDepth:         *maxQueue,
		Tenants:               registry,
		MaxColdDPs:            *maxColdDPs,
		FIFOScheduling:        *fifo,
	})
	if err != nil {
		fatalf("open frontier store: %v", err)
	}
	defer func() {
		if err := svc.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "moqod: close frontier store: %v\n", err)
		}
	}()
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	fmt.Printf("moqod: listening on %s (cache=%d workers=%d)\n", *addr, *cacheCap, *workers)

	// SIGHUP hot-reloads the tenant config in place: counters and
	// in-flight work are untouched, only quotas change. A file that no
	// longer parses keeps the running config (never degrade a live
	// service to an unvalidated one).
	if registry != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				cfg, err := tenant.LoadConfig(*tenantsPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "moqod: SIGHUP reload rejected: %v\n", err)
					continue
				}
				registry.Reload(cfg)
				fmt.Printf("moqod: tenant config %s reloaded (%d tenants)\n", *tenantsPath, len(cfg.Tenants))
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalf("%v", err)
		}
	case s := <-sig:
		fmt.Printf("moqod: %v — draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(ctx); err != nil {
			// Report but fall through: the deferred svc.Close must still
			// flush the demotion queue and close the store cleanly.
			fmt.Fprintf(os.Stderr, "moqod: shutdown: %v\n", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "moqod: "+format+"\n", args...)
	os.Exit(1)
}
