package moqo_test

import (
	"fmt"

	"moqo"
)

// Example demonstrates weighted multi-objective optimization with the RTA
// approximation scheme: a guaranteed near-optimal compromise between
// execution time and buffer footprint for TPC-H query 12.
func Example() {
	cat := moqo.TPCHCatalog(1)
	q, err := moqo.TPCHQuery(12, cat)
	if err != nil {
		panic(err)
	}
	res, err := moqo.Optimize(moqo.Request{
		Query:      q,
		Algorithm:  moqo.AlgoRTA,
		Alpha:      1.5,
		Objectives: []moqo.Objective{moqo.TotalTime, moqo.BufferFootprint},
		Weights: map[moqo.Objective]float64{
			moqo.TotalTime:       1,
			moqo.BufferFootprint: 1.0 / 1024,
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("plan operators: %d\n", res.Plan.NumOperators())
	fmt.Printf("frontier non-empty: %v\n", len(res.Frontier) > 0)
	fmt.Printf("guarantee: within factor 1.5 of the weighted optimum\n")
	// Output:
	// plan operators: 3
	// frontier non-empty: true
	// guarantee: within factor 1.5 of the weighted optimum
}

// ExampleOptimize_bounded demonstrates bounded-weighted optimization with
// the IRA: the cheapest plan (by CPU) that keeps tuple loss at zero.
func ExampleOptimize_bounded() {
	cat := moqo.TPCHCatalog(1)
	q, err := moqo.TPCHQuery(14, cat)
	if err != nil {
		panic(err)
	}
	res, err := moqo.Optimize(moqo.Request{
		Query:      q,
		Algorithm:  moqo.AlgoIRA,
		Alpha:      1.25,
		Objectives: []moqo.Objective{moqo.CPULoad, moqo.TupleLoss},
		Weights:    map[moqo.Objective]float64{moqo.CPULoad: 1},
		Bounds:     map[moqo.Objective]float64{moqo.TupleLoss: 0},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("tuple loss: %v\n", res.Cost(moqo.TupleLoss))
	fmt.Printf("bound respected: %v\n", res.Cost(moqo.TupleLoss) <= 0)
	// Output:
	// tuple loss: 0
	// bound respected: true
}
