package moqo_test

import (
	"context"
	"fmt"
	"time"

	"moqo"
)

// Example demonstrates weighted multi-objective optimization with the RTA
// approximation scheme: a guaranteed near-optimal compromise between
// execution time and buffer footprint for TPC-H query 12.
func Example() {
	cat := moqo.TPCHCatalog(1)
	q, err := moqo.TPCHQuery(12, cat)
	if err != nil {
		panic(err)
	}
	res, err := moqo.Optimize(moqo.Request{
		Query:      q,
		Algorithm:  moqo.AlgoRTA,
		Alpha:      1.5,
		Objectives: []moqo.Objective{moqo.TotalTime, moqo.BufferFootprint},
		Weights: map[moqo.Objective]float64{
			moqo.TotalTime:       1,
			moqo.BufferFootprint: 1.0 / 1024,
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("plan operators: %d\n", res.Plan.NumOperators())
	fmt.Printf("frontier non-empty: %v\n", len(res.Frontier) > 0)
	fmt.Printf("guarantee: within factor 1.5 of the weighted optimum\n")
	// Output:
	// plan operators: 3
	// frontier non-empty: true
	// guarantee: within factor 1.5 of the weighted optimum
}

// ExampleOptimize_bounded demonstrates bounded-weighted optimization with
// the IRA: the cheapest plan (by CPU) that keeps tuple loss at zero.
// ExampleOptimizeSnapshot demonstrates parametric frontier reuse — the
// paper's Figure 3 scenario, where a user iteratively re-weights the
// same query: the first optimization extracts a weight-independent
// FrontierSnapshot, and every re-weight is answered by a SelectBest scan
// over it (Reoptimize), bit-for-bit equal to a cold optimization at the
// new weights but orders of magnitude faster.
func ExampleOptimizeSnapshot() {
	cat := moqo.TPCHCatalog(1)
	q, err := moqo.TPCHQuery(5, cat)
	if err != nil {
		panic(err)
	}
	base := moqo.Request{
		Query:      q,
		Algorithm:  moqo.AlgoRTA,
		Alpha:      1.5,
		Objectives: []moqo.Objective{moqo.TotalTime, moqo.Energy},
		Weights:    map[moqo.Objective]float64{moqo.TotalTime: 1, moqo.Energy: 0.1},
	}
	_, snap, err := moqo.OptimizeSnapshot(base)
	if err != nil {
		panic(err)
	}

	// The user shifts priorities toward energy: same frontier, new scan.
	reweighted := base
	reweighted.Weights = map[moqo.Objective]float64{moqo.TotalTime: 0.2, moqo.Energy: 5}
	warm, _, err := moqo.Reoptimize(reweighted, snap)
	if err != nil {
		panic(err)
	}
	cold, err := moqo.Optimize(reweighted)
	if err != nil {
		panic(err)
	}
	fmt.Printf("reused frontier: %v\n", warm.Stats.ReusedFrontier)
	fmt.Printf("identical to cold run: %v\n", warm.PlanText() == cold.PlanText() &&
		warm.Cost(moqo.Energy) == cold.Cost(moqo.Energy))
	// Output:
	// reused frontier: true
	// identical to cold run: true
}

func ExampleOptimize_bounded() {
	cat := moqo.TPCHCatalog(1)
	q, err := moqo.TPCHQuery(14, cat)
	if err != nil {
		panic(err)
	}
	res, err := moqo.Optimize(moqo.Request{
		Query:      q,
		Algorithm:  moqo.AlgoIRA,
		Alpha:      1.25,
		Objectives: []moqo.Objective{moqo.CPULoad, moqo.TupleLoss},
		Weights:    map[moqo.Objective]float64{moqo.CPULoad: 1},
		Bounds:     map[moqo.Objective]float64{moqo.TupleLoss: 0},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("tuple loss: %v\n", res.Cost(moqo.TupleLoss))
	fmt.Printf("bound respected: %v\n", res.Cost(moqo.TupleLoss) <= 0)
	// Output:
	// tuple loss: 0
	// bound respected: true
}

// ExampleOptimizeContext demonstrates context-aware optimization: a
// context deadline degrades gracefully like Request.Timeout, while a
// cancellation (a client disconnect, an explicit cancel) aborts the
// dynamic program promptly with the context's error.
func ExampleOptimizeContext() {
	cat := moqo.TPCHCatalog(1)
	q, err := moqo.TPCHQuery(3, cat)
	if err != nil {
		panic(err)
	}
	req := moqo.Request{
		Query:      q,
		Alpha:      1.5,
		Objectives: []moqo.Objective{moqo.TotalTime, moqo.Energy},
		Weights:    map[moqo.Objective]float64{moqo.TotalTime: 1, moqo.Energy: 0.2},
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := moqo.OptimizeContext(ctx, req)
	if err != nil {
		panic(err)
	}
	fmt.Println("algorithm:", res.Algorithm)
	fmt.Println("timed out:", res.Stats.TimedOut)

	gone, disconnect := context.WithCancel(context.Background())
	disconnect() // the client went away before the optimizer started
	_, err = moqo.OptimizeContext(gone, req)
	fmt.Println("after disconnect:", err)
	// Output:
	// algorithm: rta
	// timed out: false
	// after disconnect: context canceled
}

// ExampleOptimize_largeChain optimizes a 20-table chain query — far past
// the practical ceiling of exhaustive subset scanning — with the
// graph-aware enumeration strategy: only connected table sets are
// materialized (a chain has n(n+1)/2, not 2^n) and only
// predicate-connected csg-cmp splits are tried. EnumGraph is spelled out
// here for clarity; the default (EnumAuto) already picks it for every
// connected join graph.
func ExampleOptimize_largeChain() {
	const tables = 20
	cat := moqo.NewCatalog()
	q := moqo.NewQuery("chain20", cat)
	for i := 0; i < tables; i++ {
		name := fmt.Sprintf("t%d", i)
		cat.AddTable(name, float64(1000*(i+1)), 64, "pk")
		q.AddRelation(name, name, 1)
	}
	for i := 1; i < tables; i++ {
		q.AddFKJoin(i-1, "fk", i, "pk")
	}

	res, err := moqo.Optimize(moqo.Request{
		Query:       q,
		Alpha:       4,
		Enumeration: moqo.EnumGraph,
		Objectives:  []moqo.Objective{moqo.TotalTime, moqo.BufferFootprint},
		Weights:     map[moqo.Objective]float64{moqo.TotalTime: 1},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("relations: %d\n", q.NumRelations())
	fmt.Printf("plan joins every table: %v\n", res.Plan.Tables == q.AllTables())
	fmt.Printf("plan operators: %d\n", res.Plan.NumOperators())
	fmt.Printf("connected sets materialized: %d\n", res.Stats.EnumSets)
	// Output:
	// relations: 20
	// plan joins every table: true
	// plan operators: 39
	// connected sets materialized: 210
}

// ExampleOptimize_boundedWeightedIRA demonstrates bounded-weighted MOQO
// with a *binding* bound: unconstrained, the fastest plan for TPC-H Q5
// uses ~32 MiB of buffer space; bounding the buffer footprint to 16 MiB
// forces the IRA through several refinement iterations and onto a slower
// plan that respects the bound — the tradeoff of the paper's Figure 1.
func ExampleOptimize_boundedWeightedIRA() {
	cat := moqo.TPCHCatalog(1)
	q, err := moqo.TPCHQuery(5, cat)
	if err != nil {
		panic(err)
	}
	objectives := []moqo.Objective{moqo.TotalTime, moqo.BufferFootprint, moqo.Energy}
	weights := map[moqo.Objective]float64{moqo.TotalTime: 1}

	unbounded, err := moqo.Optimize(moqo.Request{
		Query: q, Alpha: 1.5, Objectives: objectives, Weights: weights,
	})
	if err != nil {
		panic(err)
	}
	bounded, err := moqo.Optimize(moqo.Request{
		Query: q, Alpha: 1.5, Objectives: objectives, Weights: weights,
		Bounds: map[moqo.Objective]float64{moqo.BufferFootprint: 16 << 20},
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("algorithm:", bounded.Algorithm)
	fmt.Println("refinement iterations > 1:", bounded.Stats.Iterations > 1)
	fmt.Println("bound respected:", bounded.Cost(moqo.BufferFootprint) <= 16<<20)
	fmt.Println("bounded plan is slower:", bounded.Cost(moqo.TotalTime) > unbounded.Cost(moqo.TotalTime))
	// Output:
	// algorithm: ira
	// refinement iterations > 1: true
	// bound respected: true
	// bounded plan is slower: true
}
