// Cloud provider scenario (paper Scenario 1): users are billed for
// accumulated processing time across Cloud nodes, can trade result
// completeness for money via sampling, and set hard limits in their
// profiles. Upon each query the provider must find a plan that meets all
// user constraints while minimizing the weighted sum of execution time,
// monetary cost and result-quality loss.
//
// Monetary cost is CPU-load-based here (billed compute), so it maps onto
// the CPULoad objective; result quality maps onto TupleLoss. The
// bounded-weighted problem is solved with the IRA approximation scheme —
// the algorithm the paper designed exactly for this setting.
package main

import (
	"fmt"
	"log"
	"time"

	"moqo"
)

// userProfile is the per-user preference record of Scenario 1.
type userProfile struct {
	name string
	// Relative importance of response time, money, and result quality.
	timeWeight, moneyWeight, qualityWeight float64
	// Hard limits: deadline (ms) and maximal acceptable tuple loss.
	deadlineMs float64
	maxLoss    float64
}

func main() {
	cat := moqo.TPCHCatalog(1)

	profiles := []userProfile{
		{
			name:       "analyst (exact results, generous deadline)",
			timeWeight: 1, moneyWeight: 5, qualityWeight: 0,
			deadlineMs: 600_000, maxLoss: 0, // no sampling allowed
		},
		{
			name:       "dashboard (fast approximate answers)",
			timeWeight: 10, moneyWeight: 1, qualityWeight: 0,
			deadlineMs: 5_000, maxLoss: 0.99, // a sample is fine
		},
		{
			name:       "batch report (cheap, quality floor)",
			timeWeight: 0.1, moneyWeight: 20, qualityWeight: 100_000,
			deadlineMs: 3_600_000, maxLoss: 0.05, // lose at most 5%
		},
	}

	for _, qn := range []int{3, 5, 10} {
		q, err := moqo.TPCHQuery(qn, cat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== TPC-H Q%d ==\n", qn)
		for _, u := range profiles {
			res, err := moqo.Optimize(moqo.Request{
				Query:      q,
				Algorithm:  moqo.AlgoIRA,
				Alpha:      1.25,
				Timeout:    30 * time.Second,
				Objectives: []moqo.Objective{moqo.TotalTime, moqo.CPULoad, moqo.TupleLoss},
				Weights: map[moqo.Objective]float64{
					moqo.TotalTime: u.timeWeight,
					moqo.CPULoad:   u.moneyWeight,
					moqo.TupleLoss: u.qualityWeight,
				},
				Bounds: map[moqo.Objective]float64{
					moqo.TotalTime: u.deadlineMs,
					moqo.TupleLoss: u.maxLoss,
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n%s\n", u.name)
			fmt.Printf("  optimized in %s (%d iterations)\n",
				res.Stats.Duration.Round(time.Millisecond), res.Stats.Iterations)
			fmt.Printf("  est. time %.0f ms | billed compute %.2g units | tuple loss %.2g\n",
				res.Cost(moqo.TotalTime), res.Cost(moqo.CPULoad), res.Cost(moqo.TupleLoss))
			fmt.Printf("  deadline respected: %v | quality respected: %v\n",
				res.Cost(moqo.TotalTime) <= u.deadlineMs, res.Cost(moqo.TupleLoss) <= u.maxLoss)
			fmt.Print(indent(res.PlanText()))
		}
		fmt.Println()
	}
}

func indent(s string) string {
	out := ""
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out += "    " + s[:i] + "\n"
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return out
}
