// Multi-user server scenario (paper Scenario 2): a powerful server
// processes queries of many users concurrently. Every system resource a
// query plan occupies — buffer space, disk space, IO bandwidth, cores — is
// unavailable to other queries, so minimizing each resource is an
// objective of its own, conflicting with the query's own execution time.
// An administrator sets the weights and resource caps; the optimizer finds
// the best compromise per query.
//
// The example compares the resource footprint of the time-optimal plan
// (what a classical single-objective optimizer would pick) with the
// multi-objective compromise, showing how much buffer/IO/core pressure the
// administrator's policy removes for a modest slowdown.
package main

import (
	"fmt"
	"log"
	"time"

	"moqo"
)

func main() {
	cat := moqo.TPCHCatalog(1)

	resourceObjs := []moqo.Objective{
		moqo.TotalTime, moqo.IOLoad, moqo.Cores,
		moqo.DiskFootprint, moqo.BufferFootprint,
	}
	// Administrator policy: time matters, but so does staying light on
	// shared resources; at most 2 cores and 100 MB of buffer per query.
	adminWeights := map[moqo.Objective]float64{
		moqo.TotalTime:       1,
		moqo.IOLoad:          0.02,
		moqo.Cores:           500,
		moqo.DiskFootprint:   1e-6,
		moqo.BufferFootprint: 1e-5,
	}
	adminBounds := map[moqo.Objective]float64{
		moqo.Cores:           2,
		moqo.BufferFootprint: 100 << 20,
	}

	for _, qn := range []int{3, 10, 5} {
		q, err := moqo.TPCHQuery(qn, cat)
		if err != nil {
			log.Fatal(err)
		}

		// Baseline: classical single-objective optimization.
		fastest, err := moqo.Optimize(moqo.Request{
			Query:      q,
			Algorithm:  moqo.AlgoSelinger,
			Objectives: []moqo.Objective{moqo.TotalTime},
		})
		if err != nil {
			log.Fatal(err)
		}

		// Multi-objective compromise under the administrator's policy.
		shared, err := moqo.Optimize(moqo.Request{
			Query:      q,
			Algorithm:  moqo.AlgoIRA,
			Alpha:      1.2,
			Timeout:    30 * time.Second,
			Objectives: resourceObjs,
			Weights:    adminWeights,
			Bounds:     adminBounds,
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== TPC-H Q%d ==\n", qn)
		fmt.Printf("%-22s %12s %12s\n", "", "time-optimal", "compromise")
		row := func(label string, o moqo.Objective, unit string) {
			// The Selinger baseline only estimated time; recompute its
			// resource costs from the plan's cost vector, which carries
			// all nine objectives regardless of the active set.
			fmt.Printf("%-22s %12.4g %12.4g %s\n", label,
				fastest.Plan.Cost[o], shared.Plan.Cost[o], unit)
		}
		row("total time", moqo.TotalTime, "ms")
		row("IO load", moqo.IOLoad, "pages")
		row("cores", moqo.Cores, "")
		row("buffer footprint", moqo.BufferFootprint, "bytes")
		row("disk footprint", moqo.DiskFootprint, "bytes")
		fmt.Printf("\ncompromise plan (%d IRA iterations):\n%s\n",
			shared.Stats.Iterations, shared.PlanText())
	}
}
