// Pareto explorer: the paper's Figure 4 as a tool. All MOQO algorithms
// produce an (approximate) Pareto frontier as a byproduct of optimization;
// users who cannot judge what bounds and weights are realistic explore
// that frontier first. This example computes the three-dimensional
// frontier of TPC-H Q5 over tuple loss, buffer footprint and total time at
// two precisions and writes both as CSV (ready for plotting) while
// printing a 2-D projection as an ASCII scatter plot.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"moqo"
)

func main() {
	cat := moqo.TPCHCatalog(1)
	q, err := moqo.TPCHQuery(5, cat)
	if err != nil {
		log.Fatal(err)
	}
	objs := []moqo.Objective{moqo.TupleLoss, moqo.BufferFootprint, moqo.TotalTime}

	for _, alpha := range []float64{2, 1.25} {
		res, err := moqo.Optimize(moqo.Request{
			Query:      q,
			Algorithm:  moqo.AlgoRTA,
			Alpha:      alpha,
			Timeout:    60 * time.Second,
			Objectives: objs,
			Weights:    map[moqo.Objective]float64{moqo.TotalTime: 1},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("alpha=%.4g: %d frontier plans in %s\n",
			alpha, len(res.Frontier), res.Stats.Duration.Round(time.Millisecond))

		name := fmt.Sprintf("frontier_q5_alpha%.4g.csv", alpha)
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(f, "tuple_loss,buffer_bytes,time_ms")
		for _, v := range res.FrontierVectors() {
			fmt.Fprintf(f, "%.6f,%.1f,%.4f\n",
				v.Get(moqo.TupleLoss), v.Get(moqo.BufferFootprint), v.Get(moqo.TotalTime))
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", name)

		// 2-D projection: time versus tuple loss.
		fmt.Println(asciiScatter(res, 56, 14))
	}
}

// asciiScatter plots time (y) against tuple loss (x).
func asciiScatter(res *moqo.Result, w, h int) string {
	maxT := 0.0
	for _, v := range res.FrontierVectors() {
		if t := v.Get(moqo.TotalTime); t > maxT {
			maxT = t
		}
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = make([]byte, w)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	for _, v := range res.FrontierVectors() {
		x := int(v.Get(moqo.TupleLoss) * float64(w-1))
		y := h - 1 - int(v.Get(moqo.TotalTime)/maxT*float64(h-1))
		grid[y][x] = '*'
	}
	out := fmt.Sprintf("time (max %.0f ms)\n", maxT)
	for _, row := range grid {
		out += "|" + string(row) + "\n"
	}
	out += "+" + repeat('-', w) + " tuple loss (0..1)\n"
	return out
}

func repeat(ch byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = ch
	}
	return string(b)
}
