// Quickstart: optimize TPC-H query 3 for a time/energy/result-quality
// compromise with the RTA approximation scheme, then print the chosen plan
// and the full tradeoff frontier the optimizer discovered along the way.
package main

import (
	"fmt"
	"log"

	"moqo"
)

func main() {
	// The TPC-H catalog at scale factor 1 (6M-row lineitem).
	cat := moqo.TPCHCatalog(1)
	q, err := moqo.TPCHQuery(3, cat)
	if err != nil {
		log.Fatal(err)
	}

	// Find a plan within factor 1.5 of the optimal weighted cost over
	// three conflicting objectives. The weights encode that losing result
	// tuples is expensive (sampling should only win if it buys a lot of
	// time) and energy matters a little.
	res, err := moqo.Optimize(moqo.Request{
		Query:      q,
		Algorithm:  moqo.AlgoRTA,
		Alpha:      1.5,
		Objectives: []moqo.Objective{moqo.TotalTime, moqo.Energy, moqo.TupleLoss},
		Weights: map[moqo.Objective]float64{
			moqo.TotalTime: 1,
			moqo.Energy:    50,
			moqo.TupleLoss: 100_000,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("optimized in %s (%d plans considered, %d Pareto representatives kept)\n\n",
		res.Stats.Duration, res.Stats.Considered, len(res.Frontier))
	fmt.Println("selected plan:")
	fmt.Print(res.PlanText())
	fmt.Println("cost vector:")
	for _, o := range res.Objectives() {
		fmt.Printf("  %-12s %12.4g %s\n", o, res.Cost(o), o.Unit())
	}

	fmt.Println("\ndiscovered tradeoffs (time vs loss):")
	objs := moqo.NewObjectiveSet(moqo.TotalTime, moqo.Energy, moqo.TupleLoss)
	for _, v := range res.FrontierVectors() {
		fmt.Printf("  %s\n", v.FormatOn(objs))
	}
}
