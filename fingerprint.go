package moqo

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/plan"
)

// FrontierKey returns the weight- and bound-free prefix of CacheKey: a
// canonical fingerprint of everything that determines the request's
// (α-approximate) Pareto *frontier* — the catalog version, the query join
// graph, the resolved algorithm, alpha, the objectives, per-objective
// precisions, MaxDOP, the sampling decision, and the cost-model
// calibration — but not the user's weights and bounds, which the
// frontier is independent of (the paper's §3 observation that motivates
// frontier reuse: pruning compares cost vectors, never weighted costs).
//
// Two requests that differ only in weights and/or bounds therefore share
// a FrontierKey, which is what the moqod frontier cache keys its
// snapshot tier by: a weight or bound change on a cached frontier is
// answered with a SelectBest scan instead of a new dynamic program.
//
// CacheKey is, by construction, FrontierKey plus a suffix containing
// only the "|w=" and "|b=" components (the prefix-property test pins
// this), so the exact-result tier and the frontier tier always agree on
// what a request is.
//
// Note the *resolved* algorithm is part of the prefix: an AlgoAuto
// request resolves to RTA or IRA depending on whether bounds are
// present, so two AlgoAuto requests on opposite sides of that line use
// different frontiers (RTA's is reusable outright, IRA's seeds a
// refinement) and correctly get different FrontierKeys.
func (req Request) FrontierKey() (string, error) {
	fk, _, _, _, err := req.frontierKeyResolved()
	return fk, err
}

// CacheKey returns a canonical fingerprint of everything that determines
// the request's Result: FrontierKey (catalog version, join graph,
// resolved algorithm, alpha, objectives, precisions, MaxDOP, sampling,
// cost-model calibration) plus the weight/bound suffix. Two requests with
// equal cache keys produce identical plans, frontiers and cost vectors, so
// the key is safe to use as a plan-cache key (internal/cache, the moqod
// service).
//
// Deliberately excluded:
//
//   - Workers: results are identical for every worker count by the
//     engine's level-synchronization design.
//   - Timeout: a timeout changes the result only by degrading it, and
//     degraded results must never be cached (the moqod cache skips them),
//     so every cached result is a full result, valid under any timeout.
//   - Enumeration: the graph-aware and exhaustive strategies emit
//     candidates in the same canonical order (the csg-cmp loop sorts its
//     splits into the subset scan's order), so plans, frontiers and
//     statistics other than enumeration-work counters are identical for
//     every strategy — a request answered under one strategy is a valid
//     answer under any other. internal/core's differential tests pin
//     this equivalence.
//   - Shared: a batch's shared memo serves subproblems whose keys encode
//     everything their archives depend on, so attaching one (or which
//     one) changes effort statistics only, never the result — a batch
//     member's answer is interchangeable with a standalone one (the batch
//     differential tests pin this).
//
// The key is an explicit, readable string rather than a hash: distinct
// requests — e.g. differing in a single weight or bound — always map to
// distinct keys, so cache collisions are impossible by construction.
func (req Request) CacheKey() (string, error) {
	fk, objs, w, b, err := req.frontierKeyResolved()
	if err != nil {
		return "", err
	}
	buf := make([]byte, 0, len(fk)+64)
	buf = append(buf, fk...)
	buf = append(buf, "|w="...)
	first := true
	for o := objective.ID(0); o < objective.NumObjectives; o++ {
		if !objs.Contains(o) {
			continue
		}
		if !first {
			buf = append(buf, ',')
		}
		first = false
		buf = appendFloat(buf, w[o])
	}
	buf = append(buf, "|b="...)
	first = true
	for o := objective.ID(0); o < objective.NumObjectives; o++ {
		if !objs.Contains(o) {
			continue
		}
		if !first {
			buf = append(buf, ',')
		}
		first = false
		buf = appendFloat(buf, b[o])
	}
	return string(buf), nil
}

// frontierKeyResolved builds the FrontierKey and hands back the resolved
// objective set, weights and bounds so CacheKey can append its suffix
// without re-resolving.
func (req Request) frontierKeyResolved() (string, objective.Set, objective.Weights, objective.Bounds, error) {
	objs, w, b, alg, alpha, err := req.resolve()
	if err != nil {
		return "", 0, w, b, err
	}
	// Excluded from the key (see CacheKey), but still validated: the key
	// doubles as the request validator in the moqod service, and an
	// unknown strategy could never produce a result.
	if _, err := req.Enumeration.coreStrategy(); err != nil {
		return "", 0, w, b, err
	}

	// The key is built with strconv appends into one buffer rather than
	// fmt verbs: it is on the serving fast path (the moqod tiers compute
	// keys on every request, including re-weights answered in
	// microseconds), and fmt's boxing used to dominate that path's
	// allocations. The byte stream is unchanged.
	buf := make([]byte, 0, 256)
	buf = append(buf, "moqo2|cat="...)
	cat := req.Query.Catalog()
	buf = appendHex16(buf, cat.Fingerprint())

	// Join graph: relations in from-clause order (table identity via the
	// catalog-stable name, plus the filter selectivity), join edges
	// canonicalized endpoint-low-first and sorted. User-controlled strings
	// (table and column names) are length-prefixed so no choice of names
	// can make two different graphs encode identically.
	buf = append(buf, "|q="...)
	for i, r := range req.Query.Relations {
		if i > 0 {
			buf = append(buf, ',')
		}
		name := cat.Table(r.Table).Name
		buf = strconv.AppendInt(buf, int64(len(name)), 10)
		buf = append(buf, ':')
		buf = append(buf, name...)
		buf = append(buf, '=')
		buf = appendFloat(buf, r.FilterSel)
	}
	buf = append(buf, "|e="...)
	edges := make([]string, 0, len(req.Query.Edges))
	var eb []byte
	for _, e := range req.Query.Edges {
		l, r, lc, rc := e.Left, e.Right, e.LeftCol, e.RightCol
		if r < l {
			l, r, lc, rc = r, l, rc, lc
		}
		eb = eb[:0]
		eb = strconv.AppendInt(eb, int64(l), 10)
		eb = append(eb, '.')
		eb = strconv.AppendInt(eb, int64(len(lc)), 10)
		eb = append(eb, ':')
		eb = append(eb, lc...)
		eb = append(eb, '-')
		eb = strconv.AppendInt(eb, int64(r), 10)
		eb = append(eb, '.')
		eb = strconv.AppendInt(eb, int64(len(rc)), 10)
		eb = append(eb, ':')
		eb = append(eb, rc...)
		eb = append(eb, '=')
		eb = appendFloat(eb, e.Selectivity)
		edges = append(edges, string(eb))
	}
	sort.Strings(edges)
	for i, e := range edges {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, e...)
	}

	buf = append(buf, "|alg="...)
	buf = append(buf, alg.String()...)
	switch alg {
	case AlgoRTA, AlgoIRA:
		buf = append(buf, "|alpha="...)
		buf = appendFloat(buf, alpha)
	}

	// Objectives in request order: the order is semantically relevant for
	// AlgoSelinger (which optimizes the first listed objective) and cheap
	// to keep canonical for the rest.
	buf = append(buf, "|objs="...)
	for i, o := range req.Objectives {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, o.String()...)
	}
	if len(req.Precisions) > 0 {
		buf = append(buf, "|prec="...)
		first := true
		for o := objective.ID(0); o < objective.NumObjectives; o++ {
			if !objs.Contains(o) {
				continue
			}
			if !first {
				buf = append(buf, ',')
			}
			first = false
			p, ok := req.Precisions[o]
			if !ok {
				p = 1
			}
			buf = appendFloat(buf, p)
		}
	}

	maxDOP := req.MaxDOP
	if maxDOP == 0 {
		maxDOP = plan.MaxDOP
	}
	sampling := objs.Contains(objective.TupleLoss)
	if req.AllowSampling != nil {
		sampling = *req.AllowSampling
	}
	buf = append(buf, "|dop="...)
	buf = strconv.AppendInt(buf, int64(maxDOP), 10)
	buf = append(buf, "|smp="...)
	buf = strconv.AppendBool(buf, sampling)

	if req.CostParams != nil && *req.CostParams != costmodel.Default() {
		buf = fmt.Appendf(buf, "|params=%v", *req.CostParams)
	}
	return string(buf), objs, w, b, nil
}

// appendFloat appends a float in shortest round-trip form (handles +Inf,
// the bounds' "unbounded" value).
func appendFloat(b []byte, x float64) []byte {
	if math.IsInf(x, 1) {
		return append(b, "inf"...)
	}
	return strconv.AppendFloat(b, x, 'g', -1, 64)
}

// appendHex16 appends a uint64 as 16 zero-padded lowercase hex digits
// (the catalog-fingerprint field, fmt's %016x).
func appendHex16(b []byte, x uint64) []byte {
	const digits = "0123456789abcdef"
	var d [16]byte
	for i := 15; i >= 0; i-- {
		d[i] = digits[x&0xf]
		x >>= 4
	}
	return append(b, d[:]...)
}
