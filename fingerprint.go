package moqo

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/plan"
)

// CacheKey returns a canonical fingerprint of everything that determines
// the request's Result: the catalog version (a content hash of statistics
// and indexes), the query join graph, the resolved algorithm, alpha,
// the objectives, weights, bounds, per-objective precisions, MaxDOP, the
// sampling decision, and the cost-model calibration. Two requests with
// equal cache keys produce identical plans, frontiers and cost vectors, so
// the key is safe to use as a plan-cache key (internal/cache, the moqod
// service).
//
// Deliberately excluded:
//
//   - Workers: results are identical for every worker count by the
//     engine's level-synchronization design.
//   - Timeout: a timeout changes the result only by degrading it, and
//     degraded results must never be cached (the moqod cache skips them),
//     so every cached result is a full result, valid under any timeout.
//   - Enumeration: the graph-aware and exhaustive strategies emit
//     candidates in the same canonical order (the csg-cmp loop sorts its
//     splits into the subset scan's order), so plans, frontiers and
//     statistics other than enumeration-work counters are identical for
//     every strategy — a request answered under one strategy is a valid
//     answer under any other. internal/core's differential tests pin
//     this equivalence.
//
// The key is an explicit, readable string rather than a hash: distinct
// requests — e.g. differing in a single weight or bound — always map to
// distinct keys, so cache collisions are impossible by construction.
func (req Request) CacheKey() (string, error) {
	objs, w, b, alg, alpha, err := req.resolve()
	if err != nil {
		return "", err
	}
	// Excluded from the key (see above), but still validated: the key
	// doubles as the request validator in the moqod service, and an
	// unknown strategy could never produce a result.
	if _, err := req.Enumeration.coreStrategy(); err != nil {
		return "", err
	}

	var sb strings.Builder
	sb.Grow(256)
	sb.WriteString("moqo1|cat=")
	cat := req.Query.Catalog()
	fmt.Fprintf(&sb, "%016x", cat.Fingerprint())

	// Join graph: relations in from-clause order (table identity via the
	// catalog-stable name, plus the filter selectivity), join edges
	// canonicalized endpoint-low-first and sorted. User-controlled strings
	// (table and column names) are length-prefixed so no choice of names
	// can make two different graphs encode identically.
	sb.WriteString("|q=")
	for i, r := range req.Query.Relations {
		if i > 0 {
			sb.WriteByte(',')
		}
		name := cat.Table(r.Table).Name
		fmt.Fprintf(&sb, "%d:%s=%s", len(name), name, fmtFloat(r.FilterSel))
	}
	sb.WriteString("|e=")
	edges := make([]string, 0, len(req.Query.Edges))
	for _, e := range req.Query.Edges {
		l, r, lc, rc := e.Left, e.Right, e.LeftCol, e.RightCol
		if r < l {
			l, r, lc, rc = r, l, rc, lc
		}
		edges = append(edges, fmt.Sprintf("%d.%d:%s-%d.%d:%s=%s",
			l, len(lc), lc, r, len(rc), rc, fmtFloat(e.Selectivity)))
	}
	sort.Strings(edges)
	sb.WriteString(strings.Join(edges, ","))

	fmt.Fprintf(&sb, "|alg=%s", alg)
	switch alg {
	case AlgoRTA, AlgoIRA:
		fmt.Fprintf(&sb, "|alpha=%s", fmtFloat(alpha))
	}

	// Objectives in request order: the order is semantically relevant for
	// AlgoSelinger (which optimizes the first listed objective) and cheap
	// to keep canonical for the rest.
	sb.WriteString("|objs=")
	for i, o := range req.Objectives {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(o.String())
	}
	sb.WriteString("|w=")
	for i, o := range objs.IDs() {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(fmtFloat(w[o]))
	}
	sb.WriteString("|b=")
	for i, o := range objs.IDs() {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(fmtFloat(b[o]))
	}
	if len(req.Precisions) > 0 {
		sb.WriteString("|prec=")
		for i, o := range objs.IDs() {
			if i > 0 {
				sb.WriteByte(',')
			}
			p, ok := req.Precisions[o]
			if !ok {
				p = 1
			}
			sb.WriteString(fmtFloat(p))
		}
	}

	maxDOP := req.MaxDOP
	if maxDOP == 0 {
		maxDOP = plan.MaxDOP
	}
	sampling := objs.Contains(objective.TupleLoss)
	if req.AllowSampling != nil {
		sampling = *req.AllowSampling
	}
	fmt.Fprintf(&sb, "|dop=%d|smp=%t", maxDOP, sampling)

	if req.CostParams != nil && *req.CostParams != costmodel.Default() {
		fmt.Fprintf(&sb, "|params=%v", *req.CostParams)
	}
	return sb.String(), nil
}

// fmtFloat renders a float in shortest round-trip form (handles ±Inf).
func fmtFloat(x float64) string {
	if math.IsInf(x, 1) {
		return "inf"
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}
