package moqo_test

import (
	"testing"
	"time"

	"moqo"
)

// tpchRequest builds a fresh request (fresh catalog and query objects) so
// the tests exercise the structural fingerprint, not pointer identity.
func tpchRequest(t *testing.T, mutate func(*moqo.Request)) moqo.Request {
	t.Helper()
	cat := moqo.TPCHCatalog(1)
	q, err := moqo.TPCHQuery(5, cat)
	if err != nil {
		t.Fatal(err)
	}
	req := moqo.Request{
		Query:      q,
		Alpha:      1.5,
		Objectives: []moqo.Objective{moqo.TotalTime, moqo.BufferFootprint, moqo.TupleLoss},
		Weights:    map[moqo.Objective]float64{moqo.TotalTime: 1},
	}
	if mutate != nil {
		mutate(&req)
	}
	return req
}

func key(t *testing.T, req moqo.Request) string {
	t.Helper()
	k, err := req.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestCacheKeyStable: structurally identical requests, rebuilt from
// scratch, fingerprint identically.
func TestCacheKeyStable(t *testing.T) {
	a := key(t, tpchRequest(t, nil))
	b := key(t, tpchRequest(t, nil))
	if a != b {
		t.Fatalf("identical requests got different keys:\n%s\n%s", a, b)
	}
}

// TestCacheKeyDiscriminates: any input that changes the result must change
// the key — weights and bounds in particular (the cache must never serve a
// plan optimized under different preferences).
func TestCacheKeyDiscriminates(t *testing.T) {
	base := key(t, tpchRequest(t, nil))
	variants := map[string]func(*moqo.Request){
		"weight value": func(r *moqo.Request) {
			r.Weights = map[moqo.Objective]float64{moqo.TotalTime: 2}
		},
		"weight on second objective": func(r *moqo.Request) {
			r.Weights = map[moqo.Objective]float64{moqo.TotalTime: 1, moqo.BufferFootprint: 0.5}
		},
		"bound added": func(r *moqo.Request) {
			r.Bounds = map[moqo.Objective]float64{moqo.TupleLoss: 0.05}
		},
		"alpha": func(r *moqo.Request) { r.Alpha = 2 },
		"objective set": func(r *moqo.Request) {
			r.Objectives = []moqo.Objective{moqo.TotalTime, moqo.BufferFootprint}
		},
		"algorithm": func(r *moqo.Request) { r.Algorithm = moqo.AlgoEXA },
		"max dop":   func(r *moqo.Request) { r.MaxDOP = 2 },
		"precisions": func(r *moqo.Request) {
			r.Algorithm = moqo.AlgoRTA
			r.Precisions = map[moqo.Objective]float64{moqo.BufferFootprint: 2}
		},
	}
	for name, mutate := range variants {
		if got := key(t, tpchRequest(t, mutate)); got == base {
			t.Errorf("%s: key unchanged: %s", name, got)
		}
	}

	// Two different bound values must differ from each other, not only
	// from the unbounded base.
	b1 := key(t, tpchRequest(t, func(r *moqo.Request) {
		r.Bounds = map[moqo.Objective]float64{moqo.TupleLoss: 0.05}
	}))
	b2 := key(t, tpchRequest(t, func(r *moqo.Request) {
		r.Bounds = map[moqo.Objective]float64{moqo.TupleLoss: 0.1}
	}))
	if b1 == b2 {
		t.Errorf("different bound values share a key: %s", b1)
	}
}

// TestCacheKeyCanonicalizes: inputs that do NOT change the result must not
// change the key — Workers and Timeout (results are worker-invariant, and
// degraded results are never cached), and AlgoAuto resolving to the same
// algorithm an explicit request names.
func TestCacheKeyCanonicalizes(t *testing.T) {
	base := key(t, tpchRequest(t, nil)) // AlgoAuto, unbounded -> RTA
	same := map[string]func(*moqo.Request){
		"explicit RTA":  func(r *moqo.Request) { r.Algorithm = moqo.AlgoRTA },
		"workers":       func(r *moqo.Request) { r.Workers = 8 },
		"timeout":       func(r *moqo.Request) { r.Timeout = 5 * time.Second },
		"explicit dop4": func(r *moqo.Request) { r.MaxDOP = 4 },
	}
	for name, mutate := range same {
		if got := key(t, tpchRequest(t, mutate)); got != base {
			t.Errorf("%s: key changed:\n%s\n%s", name, base, got)
		}
	}
}

// TestCacheKeyRejectsInvalid: CacheKey and Optimize must agree on what a
// valid request is — a request Optimize rejects (precision on an inactive
// objective) must not produce a key, or a warm cache would answer what a
// cold one rejects.
func TestCacheKeyRejectsInvalid(t *testing.T) {
	req := tpchRequest(t, func(r *moqo.Request) {
		r.Precisions = map[moqo.Objective]float64{moqo.IOLoad: 2} // inactive objective
	})
	if _, err := req.CacheKey(); err == nil {
		t.Error("CacheKey accepted a precision on an inactive objective")
	}
	if _, err := moqo.Optimize(req); err == nil {
		t.Error("Optimize accepted a precision on an inactive objective")
	}

	bounded := tpchRequest(t, func(r *moqo.Request) {
		r.Bounds = map[moqo.Objective]float64{moqo.TupleLoss: 0.1} // auto -> IRA
		r.Precisions = map[moqo.Objective]float64{moqo.TotalTime: 2}
	})
	if _, err := bounded.CacheKey(); err == nil {
		t.Error("CacheKey accepted Precisions on a non-RTA request")
	}
	if _, err := moqo.Optimize(bounded); err == nil {
		t.Error("Optimize accepted Precisions on a non-RTA request")
	}
}

// TestCacheKeyCatalogVersion: the same query shape against a catalog with
// different statistics fingerprints differently.
func TestCacheKeyCatalogVersion(t *testing.T) {
	sf1 := key(t, tpchRequest(t, nil))

	cat := moqo.TPCHCatalog(2)
	q, err := moqo.TPCHQuery(5, cat)
	if err != nil {
		t.Fatal(err)
	}
	sf2 := key(t, moqo.Request{
		Query:      q,
		Alpha:      1.5,
		Objectives: []moqo.Objective{moqo.TotalTime, moqo.BufferFootprint, moqo.TupleLoss},
		Weights:    map[moqo.Objective]float64{moqo.TotalTime: 1},
	})
	if sf1 == sf2 {
		t.Fatal("scale factor 1 and 2 share a cache key")
	}
}

// TestCacheKeyQueryShape: different join graphs fingerprint differently.
func TestCacheKeyQueryShape(t *testing.T) {
	cat := moqo.TPCHCatalog(1)
	keys := map[string]bool{}
	for _, num := range []int{3, 5, 10} {
		q, err := moqo.TPCHQuery(num, cat)
		if err != nil {
			t.Fatal(err)
		}
		k := key(t, moqo.Request{
			Query:      q,
			Objectives: []moqo.Objective{moqo.TotalTime},
		})
		if keys[k] {
			t.Fatalf("TPC-H q%d collides with an earlier query: %s", num, k)
		}
		keys[k] = true
	}
}

// TestCacheKeyIgnoresEnumeration: the enumeration strategy is excluded
// from the key like Workers — results are identical for every strategy
// (the engine emits candidates in the same canonical order), so a cached
// answer computed under one strategy serves requests under any other.
// Invalid strategies must still be rejected, since the key doubles as
// the request validator in the moqod service.
func TestCacheKeyIgnoresEnumeration(t *testing.T) {
	base := key(t, tpchRequest(t, nil))
	for _, e := range []moqo.EnumerationStrategy{moqo.EnumAuto, moqo.EnumGraph, moqo.EnumExhaustive} {
		got := key(t, tpchRequest(t, func(r *moqo.Request) { r.Enumeration = e }))
		if got != base {
			t.Errorf("enumeration %v changed the key:\n%s\n%s", e, got, base)
		}
	}
	_, err := tpchRequest(t, func(r *moqo.Request) { r.Enumeration = moqo.EnumerationStrategy(99) }).CacheKey()
	if err == nil {
		t.Error("invalid enumeration strategy accepted by CacheKey")
	}
}
