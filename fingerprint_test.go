package moqo_test

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"time"

	"moqo"
)

// tpchRequest builds a fresh request (fresh catalog and query objects) so
// the tests exercise the structural fingerprint, not pointer identity.
func tpchRequest(t *testing.T, mutate func(*moqo.Request)) moqo.Request {
	t.Helper()
	cat := moqo.TPCHCatalog(1)
	q, err := moqo.TPCHQuery(5, cat)
	if err != nil {
		t.Fatal(err)
	}
	req := moqo.Request{
		Query:      q,
		Alpha:      1.5,
		Objectives: []moqo.Objective{moqo.TotalTime, moqo.BufferFootprint, moqo.TupleLoss},
		Weights:    map[moqo.Objective]float64{moqo.TotalTime: 1},
	}
	if mutate != nil {
		mutate(&req)
	}
	return req
}

func key(t *testing.T, req moqo.Request) string {
	t.Helper()
	k, err := req.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestCacheKeyStable: structurally identical requests, rebuilt from
// scratch, fingerprint identically.
func TestCacheKeyStable(t *testing.T) {
	a := key(t, tpchRequest(t, nil))
	b := key(t, tpchRequest(t, nil))
	if a != b {
		t.Fatalf("identical requests got different keys:\n%s\n%s", a, b)
	}
}

// TestCacheKeyDiscriminates: any input that changes the result must change
// the key — weights and bounds in particular (the cache must never serve a
// plan optimized under different preferences).
func TestCacheKeyDiscriminates(t *testing.T) {
	base := key(t, tpchRequest(t, nil))
	variants := map[string]func(*moqo.Request){
		"weight value": func(r *moqo.Request) {
			r.Weights = map[moqo.Objective]float64{moqo.TotalTime: 2}
		},
		"weight on second objective": func(r *moqo.Request) {
			r.Weights = map[moqo.Objective]float64{moqo.TotalTime: 1, moqo.BufferFootprint: 0.5}
		},
		"bound added": func(r *moqo.Request) {
			r.Bounds = map[moqo.Objective]float64{moqo.TupleLoss: 0.05}
		},
		"alpha": func(r *moqo.Request) { r.Alpha = 2 },
		"objective set": func(r *moqo.Request) {
			r.Objectives = []moqo.Objective{moqo.TotalTime, moqo.BufferFootprint}
		},
		"algorithm": func(r *moqo.Request) { r.Algorithm = moqo.AlgoEXA },
		"max dop":   func(r *moqo.Request) { r.MaxDOP = 2 },
		"precisions": func(r *moqo.Request) {
			r.Algorithm = moqo.AlgoRTA
			r.Precisions = map[moqo.Objective]float64{moqo.BufferFootprint: 2}
		},
	}
	for name, mutate := range variants {
		if got := key(t, tpchRequest(t, mutate)); got == base {
			t.Errorf("%s: key unchanged: %s", name, got)
		}
	}

	// Two different bound values must differ from each other, not only
	// from the unbounded base.
	b1 := key(t, tpchRequest(t, func(r *moqo.Request) {
		r.Bounds = map[moqo.Objective]float64{moqo.TupleLoss: 0.05}
	}))
	b2 := key(t, tpchRequest(t, func(r *moqo.Request) {
		r.Bounds = map[moqo.Objective]float64{moqo.TupleLoss: 0.1}
	}))
	if b1 == b2 {
		t.Errorf("different bound values share a key: %s", b1)
	}
}

// TestCacheKeyCanonicalizes: inputs that do NOT change the result must not
// change the key — Workers and Timeout (results are worker-invariant, and
// degraded results are never cached), and AlgoAuto resolving to the same
// algorithm an explicit request names.
func TestCacheKeyCanonicalizes(t *testing.T) {
	base := key(t, tpchRequest(t, nil)) // AlgoAuto, unbounded -> RTA
	same := map[string]func(*moqo.Request){
		"explicit RTA":  func(r *moqo.Request) { r.Algorithm = moqo.AlgoRTA },
		"workers":       func(r *moqo.Request) { r.Workers = 8 },
		"timeout":       func(r *moqo.Request) { r.Timeout = 5 * time.Second },
		"explicit dop4": func(r *moqo.Request) { r.MaxDOP = 4 },
	}
	for name, mutate := range same {
		if got := key(t, tpchRequest(t, mutate)); got != base {
			t.Errorf("%s: key changed:\n%s\n%s", name, base, got)
		}
	}
}

// TestCacheKeyRejectsInvalid: CacheKey and Optimize must agree on what a
// valid request is — a request Optimize rejects (precision on an inactive
// objective) must not produce a key, or a warm cache would answer what a
// cold one rejects.
func TestCacheKeyRejectsInvalid(t *testing.T) {
	req := tpchRequest(t, func(r *moqo.Request) {
		r.Precisions = map[moqo.Objective]float64{moqo.IOLoad: 2} // inactive objective
	})
	if _, err := req.CacheKey(); err == nil {
		t.Error("CacheKey accepted a precision on an inactive objective")
	}
	if _, err := moqo.Optimize(req); err == nil {
		t.Error("Optimize accepted a precision on an inactive objective")
	}

	bounded := tpchRequest(t, func(r *moqo.Request) {
		r.Bounds = map[moqo.Objective]float64{moqo.TupleLoss: 0.1} // auto -> IRA
		r.Precisions = map[moqo.Objective]float64{moqo.TotalTime: 2}
	})
	if _, err := bounded.CacheKey(); err == nil {
		t.Error("CacheKey accepted Precisions on a non-RTA request")
	}
	if _, err := moqo.Optimize(bounded); err == nil {
		t.Error("Optimize accepted Precisions on a non-RTA request")
	}
}

// frontierKey computes FrontierKey or fails the test.
func frontierKey(t *testing.T, req moqo.Request) string {
	t.Helper()
	k, err := req.FrontierKey()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// wbSuffix matches a weight/bound suffix: exactly one |w= and one |b=
// component, in that order, containing only float lists.
var wbSuffix = regexp.MustCompile(`^\|w=[^|]*\|b=[^|]*$`)

// randomizedRequest draws a random request over a fixed query shape:
// random objective subset, algorithm, alpha, weights, bounds, DOP,
// precisions. The boundedness pattern follows the algorithm so the
// request stays valid (bounds require EXA or IRA).
func randomizedRequest(t *testing.T, r *rand.Rand) moqo.Request {
	t.Helper()
	all := moqo.AllObjectives()
	n := 2 + r.Intn(3)
	objs := make([]moqo.Objective, 0, n)
	for _, i := range r.Perm(len(all))[:n] {
		objs = append(objs, all[i])
	}
	algs := []moqo.Algorithm{moqo.AlgoEXA, moqo.AlgoRTA, moqo.AlgoIRA}
	alg := algs[r.Intn(len(algs))]
	req := tpchRequest(t, func(q *moqo.Request) {
		q.Objectives = objs
		q.Algorithm = alg
		q.Alpha = 1 + r.Float64()
		q.MaxDOP = 1 + r.Intn(4)
		q.Weights = map[moqo.Objective]float64{objs[0]: r.Float64()}
		if alg != moqo.AlgoRTA {
			q.Bounds = map[moqo.Objective]float64{objs[r.Intn(len(objs))]: 1 + r.Float64()*1e6}
		}
		if alg == moqo.AlgoRTA && r.Intn(2) == 0 {
			q.Precisions = map[moqo.Objective]float64{objs[0]: 1 + r.Float64()}
		}
	})
	return req
}

// reweighted returns a copy of the request with fresh weight values (and
// fresh bound values on the same objectives, when bounded) — the
// perturbation the frontier tier must absorb without a key change.
func reweighted(req moqo.Request, r *rand.Rand) moqo.Request {
	w := make(map[moqo.Objective]float64, len(req.Weights))
	for o := range req.Weights {
		w[o] = r.Float64() * 10
	}
	// Sometimes weight a different active objective entirely.
	if r.Intn(2) == 0 && len(req.Objectives) > 1 {
		w[req.Objectives[1+r.Intn(len(req.Objectives)-1)]] = r.Float64()
	}
	req.Weights = w
	if len(req.Bounds) > 0 {
		b := make(map[moqo.Objective]float64, len(req.Bounds))
		for o := range req.Bounds {
			b[o] = 1 + r.Float64()*1e6
		}
		req.Bounds = b
	}
	return req
}

// TestCacheKeyPrefixProperty pins the FrontierKey/CacheKey contract the
// two-tier cache rests on: for random requests, CacheKey equals
// FrontierKey plus a suffix containing only the |w= and |b= components,
// and two requests differing only in weight/bound values share a
// FrontierKey while (almost surely) differing in CacheKey.
func TestCacheKeyPrefixProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		req := randomizedRequest(t, r)
		ck, fk := key(t, req), frontierKey(t, req)
		if !strings.HasPrefix(ck, fk) {
			t.Fatalf("trial %d: CacheKey is not prefixed by FrontierKey:\n%s\n%s", trial, ck, fk)
		}
		if suffix := ck[len(fk):]; !wbSuffix.MatchString(suffix) {
			t.Fatalf("trial %d: CacheKey suffix %q contains more than |w=/|b=", trial, suffix)
		}

		per := reweighted(req, r)
		if got := frontierKey(t, per); got != fk {
			t.Fatalf("trial %d: weight/bound perturbation changed the FrontierKey:\n%s\n%s", trial, fk, got)
		}
		if key(t, per) == ck {
			// The perturbation may collide only if it drew identical values
			// — with continuous draws that's impossible.
			t.Fatalf("trial %d: perturbed weights/bounds kept the CacheKey", trial)
		}
	}
}

// TestFrontierKeyDiscriminates: everything that determines the frontier
// must change the FrontierKey — and the resolved algorithm is part of
// it, so an AlgoAuto request crossing the bounded/unbounded line (RTA vs
// IRA) changes keys too.
func TestFrontierKeyDiscriminates(t *testing.T) {
	base := frontierKey(t, tpchRequest(t, nil))
	variants := map[string]func(*moqo.Request){
		"alpha":     func(r *moqo.Request) { r.Alpha = 2 },
		"objective": func(r *moqo.Request) { r.Objectives = []moqo.Objective{moqo.TotalTime, moqo.BufferFootprint} },
		"algorithm": func(r *moqo.Request) { r.Algorithm = moqo.AlgoEXA },
		"max dop":   func(r *moqo.Request) { r.MaxDOP = 2 },
		"precisions": func(r *moqo.Request) {
			r.Algorithm = moqo.AlgoRTA
			r.Precisions = map[moqo.Objective]float64{moqo.BufferFootprint: 2}
		},
		"auto crosses RTA/IRA": func(r *moqo.Request) {
			r.Bounds = map[moqo.Objective]float64{moqo.TupleLoss: 0.05}
		},
	}
	for name, mutate := range variants {
		if got := frontierKey(t, tpchRequest(t, mutate)); got == base {
			t.Errorf("%s: FrontierKey unchanged: %s", name, got)
		}
	}
	// Weights alone never change it.
	same := frontierKey(t, tpchRequest(t, func(r *moqo.Request) {
		r.Weights = map[moqo.Objective]float64{moqo.TotalTime: 3, moqo.TupleLoss: 7}
	}))
	if same != base {
		t.Errorf("weights changed the FrontierKey:\n%s\n%s", base, same)
	}
}

// TestCacheKeyCatalogVersion: the same query shape against a catalog with
// different statistics fingerprints differently.
func TestCacheKeyCatalogVersion(t *testing.T) {
	sf1 := key(t, tpchRequest(t, nil))

	cat := moqo.TPCHCatalog(2)
	q, err := moqo.TPCHQuery(5, cat)
	if err != nil {
		t.Fatal(err)
	}
	sf2 := key(t, moqo.Request{
		Query:      q,
		Alpha:      1.5,
		Objectives: []moqo.Objective{moqo.TotalTime, moqo.BufferFootprint, moqo.TupleLoss},
		Weights:    map[moqo.Objective]float64{moqo.TotalTime: 1},
	})
	if sf1 == sf2 {
		t.Fatal("scale factor 1 and 2 share a cache key")
	}
}

// TestCacheKeyQueryShape: different join graphs fingerprint differently.
func TestCacheKeyQueryShape(t *testing.T) {
	cat := moqo.TPCHCatalog(1)
	keys := map[string]bool{}
	for _, num := range []int{3, 5, 10} {
		q, err := moqo.TPCHQuery(num, cat)
		if err != nil {
			t.Fatal(err)
		}
		k := key(t, moqo.Request{
			Query:      q,
			Objectives: []moqo.Objective{moqo.TotalTime},
		})
		if keys[k] {
			t.Fatalf("TPC-H q%d collides with an earlier query: %s", num, k)
		}
		keys[k] = true
	}
}

// TestCacheKeyIgnoresEnumeration: the enumeration strategy is excluded
// from the key like Workers — results are identical for every strategy
// (the engine emits candidates in the same canonical order), so a cached
// answer computed under one strategy serves requests under any other.
// Invalid strategies must still be rejected, since the key doubles as
// the request validator in the moqod service.
func TestCacheKeyIgnoresEnumeration(t *testing.T) {
	base := key(t, tpchRequest(t, nil))
	for _, e := range []moqo.EnumerationStrategy{moqo.EnumAuto, moqo.EnumGraph, moqo.EnumExhaustive} {
		got := key(t, tpchRequest(t, func(r *moqo.Request) { r.Enumeration = e }))
		if got != base {
			t.Errorf("enumeration %v changed the key:\n%s\n%s", e, got, base)
		}
	}
	_, err := tpchRequest(t, func(r *moqo.Request) { r.Enumeration = moqo.EnumerationStrategy(99) }).CacheKey()
	if err == nil {
		t.Error("invalid enumeration strategy accepted by CacheKey")
	}
}
