module moqo

go 1.24
