package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"time"

	"moqo"
	"moqo/internal/core"
	"moqo/internal/workload"
)

// BatchSpec parameterizes the batch-workload experiment: the aggregate
// throughput and completion-latency distribution of a mixed overlapping
// workload optimized as one batch (moqo.OptimizeBatch — shared catalog
// warm-up, cache-key dedupe, frontier re-weights, cross-query subproblem
// sharing, cost-ordered scheduling) against the same workload optimized
// one standalone request at a time, with every batch answer verified
// bit-for-bit against its sequential counterpart.
type BatchSpec struct {
	// Tables sizes the synthetic overlap trio (workload.BatchSpec.Tables;
	// default 10).
	Tables int
	// Duplicates and Reweights per base member (defaults 1 and 2).
	Duplicates int
	Reweights  int
	// Alpha is the RTA precision of the TPC-H members (default 1.5).
	Alpha float64
	// Parallel is the batch fan-out (default 1: on one core the entire
	// speedup is sharing, not parallelism).
	Parallel int
	// Workers per dynamic program (default 1).
	Workers int
	// Timeout per member optimization (default 60s — the experiment
	// verifies answers bit-for-bit, and degraded answers are not
	// comparable).
	Timeout time.Duration
	// Seed drives the workload (default 1).
	Seed int64
}

func (s BatchSpec) withDefaults() BatchSpec {
	if s.Tables == 0 {
		s.Tables = 10
	}
	if s.Duplicates == 0 {
		s.Duplicates = 1
	}
	if s.Reweights == 0 {
		s.Reweights = 2
	}
	if s.Alpha == 0 {
		s.Alpha = 1.5
	}
	if s.Parallel == 0 {
		s.Parallel = 1
	}
	if s.Workers == 0 {
		s.Workers = 1
	}
	if s.Timeout == 0 {
		s.Timeout = 60 * time.Second
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// BatchPoint is one measured arm of the experiment. Latencies are
// completion offsets from workload start — what a client submitting the
// whole workload observes per member — so the two arms' percentiles are
// directly comparable.
type BatchPoint struct {
	Arm        string  `json:"arm"` // "sequential" or "batch"
	Members    int     `json:"members"`
	TotalMs    float64 `json:"total_ms"`
	Throughput float64 `json:"throughput_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	// DPs counts the dynamic programs the arm executed (engine runs; one
	// per member sequentially, one per distinct problem in the batch).
	DPs int64 `json:"dps"`
	// Reused counts members answered without their own dynamic program
	// (duplicates and re-weights; batch arm only).
	Reused int `json:"reused,omitempty"`
	// SharedSubproblems and SharedHits count the batch's shared-memo
	// traffic (batch arm only).
	SharedSubproblems int   `json:"shared_subproblems,omitempty"`
	SharedHits        int64 `json:"shared_hits,omitempty"`
}

// BatchSummary aggregates the comparison.
type BatchSummary struct {
	// Speedup is sequential total time over batch total time — the
	// aggregate throughput ratio.
	Speedup float64 `json:"speedup"`
	// Verified reports that every batch member's plan, cost vector and
	// frontier were bit-for-bit its standalone answer.
	Verified bool `json:"verified"`
}

// memberRequest converts one workload member into its moqo.Request.
func memberRequest(m workload.BatchMember, spec BatchSpec) moqo.Request {
	objs := m.Objectives.IDs()
	w := make(map[moqo.Objective]float64, len(objs))
	for _, o := range objs {
		w[o] = m.Weights[o]
	}
	req := moqo.Request{
		Query:      m.Query,
		Objectives: objs,
		Weights:    w,
		Workers:    spec.Workers,
		Timeout:    spec.Timeout,
	}
	switch m.Algorithm {
	case "exa":
		req.Algorithm = moqo.AlgoEXA
	default:
		req.Algorithm = moqo.AlgoRTA
		req.Alpha = spec.Alpha
	}
	return req
}

// batchWorkloadSpec maps the experiment spec onto the workload generator.
func batchWorkloadSpec(spec BatchSpec) workload.BatchSpec {
	return workload.BatchSpec{
		Tables:     spec.Tables,
		Duplicates: spec.Duplicates,
		Reweights:  spec.Reweights,
		Seed:       spec.Seed,
	}
}

// BatchThroughputWorkload exposes the experiment's resolved workload —
// the member mix BatchThroughput optimizes — for tests and inspection.
func BatchThroughputWorkload(spec BatchSpec) ([]workload.BatchMember, error) {
	return workload.MixedBatch(batchWorkloadSpec(spec.withDefaults()))
}

// BatchThroughput runs both arms and verifies the batch answers against
// the sequential ones bit-for-bit.
//
// The sequential arm rebuilds the workload for every member and optimizes
// that member alone — each request constructs its catalog and query and
// warms its own cardinality memo from scratch, mirroring one-request-at-
// a-time serving. The batch arm builds the workload once and optimizes it
// with moqo.OptimizeBatchContext. Both arms run the members in the same
// (shuffled) workload order on the same process.
func BatchThroughput(spec BatchSpec) ([]BatchPoint, BatchSummary, error) {
	spec = spec.withDefaults()
	members, err := workload.MixedBatch(batchWorkloadSpec(spec))
	if err != nil {
		return nil, BatchSummary{}, err
	}
	n := len(members)

	// Sequential arm: every member fully standalone, construction
	// included.
	baseline := make([]*moqo.Result, n)
	seqOffsets := make([]float64, n)
	dpsBefore := core.EngineRuns()
	seqStart := time.Now()
	for i := 0; i < n; i++ {
		fresh, err := workload.MixedBatch(batchWorkloadSpec(spec))
		if err != nil {
			return nil, BatchSummary{}, err
		}
		res, err := moqo.Optimize(memberRequest(fresh[i], spec))
		if err != nil {
			return nil, BatchSummary{}, fmt.Errorf("sequential member %d: %w", i, err)
		}
		baseline[i] = res
		seqOffsets[i] = float64(time.Since(seqStart)) / float64(time.Millisecond)
	}
	seqTotal := float64(time.Since(seqStart)) / float64(time.Millisecond)
	seqDPs := core.EngineRuns() - dpsBefore

	// Batch arm: one workload construction, one batch.
	reqs := make([]moqo.Request, n)
	for i, m := range members {
		reqs[i] = memberRequest(m, spec)
	}
	sm := moqo.NewSharedMemo()
	items := make([]moqo.BatchItem, n)
	batchOffsets := make([]float64, n)
	dpsBefore = core.EngineRuns()
	batchStart := time.Now()
	moqo.OptimizeBatchStream(context.Background(), reqs,
		moqo.BatchOptions{Parallel: spec.Parallel, Shared: sm},
		func(i int, item moqo.BatchItem) {
			items[i] = item
			batchOffsets[i] = float64(time.Since(batchStart)) / float64(time.Millisecond)
		})
	batchTotal := float64(time.Since(batchStart)) / float64(time.Millisecond)
	batchDPs := core.EngineRuns() - dpsBefore

	// Verification: every batch answer is bit-for-bit its standalone
	// answer.
	reused := 0
	for i, item := range items {
		if item.Err != nil {
			return nil, BatchSummary{}, fmt.Errorf("batch member %d: %w", i, item.Err)
		}
		same, err := sameAnswer(item.Result, baseline[i])
		if err != nil {
			return nil, BatchSummary{}, err
		}
		if !same {
			return nil, BatchSummary{}, fmt.Errorf("batch member %d (%s %s) differs from its standalone answer",
				i, members[i].Kind, members[i].Query.Name)
		}
		if item.Reused {
			reused++
		}
	}
	hits, _, published := sm.Counters()

	points := []BatchPoint{
		{
			Arm:        "sequential",
			Members:    n,
			TotalMs:    seqTotal,
			Throughput: float64(n) / (seqTotal / 1000),
			P50Ms:      offsetPercentile(seqOffsets, 0.50),
			P99Ms:      offsetPercentile(seqOffsets, 0.99),
			DPs:        seqDPs,
		},
		{
			Arm:               "batch",
			Members:           n,
			TotalMs:           batchTotal,
			Throughput:        float64(n) / (batchTotal / 1000),
			P50Ms:             offsetPercentile(batchOffsets, 0.50),
			P99Ms:             offsetPercentile(batchOffsets, 0.99),
			DPs:               batchDPs,
			Reused:            reused,
			SharedSubproblems: int(published),
			SharedHits:        hits,
		},
	}
	sum := BatchSummary{Verified: true}
	if batchTotal > 0 {
		sum.Speedup = seqTotal / batchTotal
	}
	return points, sum, nil
}

// offsetPercentile sorts a copy and reads the nearest-rank percentile.
func offsetPercentile(offsets []float64, p float64) float64 {
	sorted := append([]float64(nil), offsets...)
	sort.Float64s(sorted)
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// RenderBatch renders the comparison as a text table.
func RenderBatch(pts []BatchPoint, sum BatchSummary) string {
	out := fmt.Sprintf("%-12s %8s %10s %12s %10s %10s %6s %7s %8s %6s\n",
		"arm", "members", "total(ms)", "thru(req/s)", "p50(ms)", "p99(ms)", "DPs", "reused", "subprobs", "hits")
	for _, p := range pts {
		out += fmt.Sprintf("%-12s %8d %10.1f %12.1f %10.1f %10.1f %6d %7d %8d %6d\n",
			p.Arm, p.Members, p.TotalMs, p.Throughput, p.P50Ms, p.P99Ms, p.DPs, p.Reused,
			p.SharedSubproblems, p.SharedHits)
	}
	out += fmt.Sprintf("aggregate speedup: %.2fx  answers verified bit-for-bit: %v\n", sum.Speedup, sum.Verified)
	return out
}

// BatchJSON renders the experiment for the CI artifact.
func BatchJSON(pts []BatchPoint, sum BatchSummary) ([]byte, error) {
	payload := struct {
		Benchmark string       `json:"benchmark"`
		NumCPU    int          `json:"num_cpu"`
		Points    []BatchPoint `json:"points"`
		Summary   BatchSummary `json:"summary"`
	}{
		Benchmark: "batch-workload-throughput",
		NumCPU:    runtime.NumCPU(),
		Points:    pts,
		Summary:   sum,
	}
	return json.MarshalIndent(payload, "", "  ")
}
