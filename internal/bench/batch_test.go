package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestBatchThroughput runs a scaled-down batch experiment end to end: the
// harness must verify every batch answer bit-for-bit against its
// standalone counterpart, dedupe the duplicates and re-weights out of the
// batch arm's dynamic programs, and traffic the shared memo on the
// overlapping chain prefixes.
func TestBatchThroughput(t *testing.T) {
	spec := BatchSpec{Tables: 7, Seed: 3}
	pts, sum, err := BatchThroughput(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Verified {
		t.Fatal("harness did not verify the batch answers")
	}
	if len(pts) != 2 || pts[0].Arm != "sequential" || pts[1].Arm != "batch" {
		t.Fatalf("unexpected points: %+v", pts)
	}
	seq, batch := pts[0], pts[1]
	if seq.Members != batch.Members || seq.Members == 0 {
		t.Fatalf("member counts differ: %d vs %d", seq.Members, batch.Members)
	}
	// 5 distinct problems (chain + 2 prefixes + 2 TPC-H); everything else
	// is a duplicate or a re-weight answered without its own DP.
	if batch.DPs != 5 {
		t.Errorf("batch ran %d DPs, want 5", batch.DPs)
	}
	if seq.DPs != int64(seq.Members) {
		t.Errorf("sequential ran %d DPs for %d members", seq.DPs, seq.Members)
	}
	if batch.Reused != batch.Members-5 {
		t.Errorf("batch reused %d members, want %d", batch.Reused, batch.Members-5)
	}
	// The chain prefixes share every non-singleton connected subset with
	// the full chain ({t0..t1}..{t0..t4} and {t0..t1}..{t0..t2}): 4+2.
	if batch.SharedHits < 6 {
		t.Errorf("shared memo hits = %d, want >= 6", batch.SharedHits)
	}
	if batch.SharedSubproblems == 0 {
		t.Error("batch published no shared subproblems")
	}

	table := RenderBatch(pts, sum)
	if !strings.Contains(table, "sequential") || !strings.Contains(table, "speedup") {
		t.Errorf("render missing columns:\n%s", table)
	}
	raw, err := BatchJSON(pts, sum)
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Benchmark string       `json:"benchmark"`
		Points    []BatchPoint `json:"points"`
		Summary   BatchSummary `json:"summary"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Benchmark != "batch-workload-throughput" || len(payload.Points) != 2 || !payload.Summary.Verified {
		t.Errorf("unexpected payload: %s", raw)
	}
}

// TestMixedBatchDeterministic pins that the same spec generates the
// identical workload twice — the sequential arm rebuilds per member and
// depends on it.
func TestMixedBatchDeterministic(t *testing.T) {
	a, err := BatchThroughputWorkload(BatchSpec{Tables: 7, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BatchThroughputWorkload(BatchSpec{Tables: 7, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Weights != b[i].Weights ||
			a[i].Query.Name != b[i].Query.Name || a[i].Algorithm != b[i].Algorithm {
			t.Fatalf("member %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
