package bench

import (
	"fmt"
	"math/rand"
	"time"

	"moqo/internal/catalog"
	"moqo/internal/core"
	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/workload"
)

// Config parameterizes a harness run. The defaults are scaled down from
// the paper's setup (two-hour timeout, 20 test cases per configuration) so
// a full reproduction finishes in minutes on a laptop; raise Timeout and
// CasesPerConfig to approach the paper's exact setup.
type Config struct {
	// ScaleFactor of the TPC-H catalog (paper: 1).
	ScaleFactor float64
	// Timeout per optimizer run (paper: 2h; default here: 2s).
	Timeout time.Duration
	// CasesPerConfig is the number of random test cases per (query,
	// configuration) pair (paper: 20; default here: 3).
	CasesPerConfig int
	// Seed makes workloads reproducible.
	Seed int64
	// Queries restricts the TPC-H query set (numbers; nil = all 22, in
	// paper order).
	Queries []int
	// Alphas are the approximation precisions compared for RTA and IRA
	// (paper: 1.15, 1.5, 2).
	Alphas []float64
	// ObjectiveCounts for Figure 5/9 (paper: 1/3/6/9 and 3/6/9).
	ObjectiveCounts []int
	// BoundCounts for Figure 10 (paper: 3/6/9).
	BoundCounts []int
	// Workers runs (query, configuration) cells concurrently (the paper
	// ran five optimizer threads in parallel). 0 or 1 = sequential.
	// Concurrent cells contend for CPU, so per-run times are inflated
	// under load, exactly as in the paper's setup.
	Workers int
	// EngineWorkers shards each optimizer run's dynamic program across
	// this many goroutines (core.Options.Workers). 0 or 1 = sequential.
	// Unlike Workers, this parallelizes within a single optimization, so
	// measured per-run times genuinely shrink.
	EngineWorkers int
}

// DefaultConfig returns the scaled-down default setup.
func DefaultConfig() Config {
	return Config{
		ScaleFactor:     1,
		Timeout:         2 * time.Second,
		CasesPerConfig:  3,
		Seed:            1,
		Queries:         nil,
		Alphas:          []float64{1.15, 1.5, 2},
		ObjectiveCounts: []int{3, 6, 9},
		BoundCounts:     []int{3, 6, 9},
	}
}

// queries resolves the query list in paper order.
func (c Config) queries() []int {
	if len(c.Queries) > 0 {
		return c.Queries
	}
	return workload.PaperOrder
}

// Cell aggregates one algorithm's results over the test cases of one
// (query, configuration) pair — one bar of one subplot of Figures 5/9/10.
type Cell struct {
	Algorithm string
	Cases     int
	Timeouts  int
	// Arithmetic averages over the test cases, as in the paper.
	AvgTimeMs   float64
	AvgMemKB    float64
	AvgPareto   float64
	AvgIters    float64
	AvgWCostPct float64 // weighted cost as % of best-known, >= 100
	// AvgBoundViolations counts bounded objectives the plan exceeded
	// (bounded MOQO only; 0 when every returned plan was feasible or no
	// feasible plan existed).
	AvgBoundViolations float64
}

// TimeoutPct returns the percentage of test cases that hit the timeout.
func (c Cell) TimeoutPct() float64 {
	if c.Cases == 0 {
		return 0
	}
	return 100 * float64(c.Timeouts) / float64(c.Cases)
}

// add folds one run into the aggregate (avg fields hold sums until
// finalize is called).
func (c *Cell) add(st core.Stats, wcostPct float64, boundViolations int) {
	c.Cases++
	if st.TimedOut {
		c.Timeouts++
	}
	c.AvgTimeMs += float64(st.Duration) / float64(time.Millisecond)
	c.AvgMemKB += float64(st.MemoryBytes) / 1024
	c.AvgPareto += float64(st.ParetoLast)
	c.AvgIters += float64(st.Iterations)
	c.AvgWCostPct += wcostPct
	c.AvgBoundViolations += float64(boundViolations)
}

// finalize turns the accumulated sums into averages.
func (c *Cell) finalize() {
	if c.Cases == 0 {
		return
	}
	n := float64(c.Cases)
	c.AvgTimeMs /= n
	c.AvgMemKB /= n
	c.AvgPareto /= n
	c.AvgIters /= n
	c.AvgWCostPct /= n
	c.AvgBoundViolations /= n
}

// Row is one (query, parameter) group of a figure: the cells of all
// compared algorithms. Param is the number of objectives (Figures 5/9) or
// the number of bounds (Figure 10).
type Row struct {
	QueryNum  int
	NumTables int
	Param     int
	Cells     []Cell
}

// runCase runs one algorithm on one test case and returns the plan's
// weighted cost together with the run statistics.
type caseRun struct {
	name  string
	stats core.Stats
	wcost float64
	// violations counts bounded objectives the returned plan exceeds.
	violations int
}

// runAlgorithms executes every algorithm of the comparison on one test
// case. algs maps a display name to a closure running the algorithm.
func runAlgorithms(tc workload.TestCase, m *costmodel.Model, algs []namedAlgo) ([]caseRun, error) {
	runs := make([]caseRun, 0, len(algs))
	for _, a := range algs {
		res, err := a.run(m, tc)
		if err != nil {
			return nil, fmt.Errorf("bench: %s on %s: %w", a.name, tc, err)
		}
		violations := 0
		for _, o := range tc.Bounds.BoundedObjectives(tc.Objectives) {
			if res.Best.Cost[o] > tc.Bounds[o] {
				violations++
			}
		}
		runs = append(runs, caseRun{
			name:       a.name,
			stats:      res.Stats,
			wcost:      tc.Weights.Cost(res.Best.Cost),
			violations: violations,
		})
	}
	return runs, nil
}

type namedAlgo struct {
	name string
	run  func(*costmodel.Model, workload.TestCase) (core.Result, error)
}

// exaAlgo builds the EXA comparator.
func exaAlgo(cfg Config) namedAlgo {
	return namedAlgo{
		name: "EXA",
		run: func(m *costmodel.Model, tc workload.TestCase) (core.Result, error) {
			return core.EXA(m, tc.Weights, tc.Bounds, core.Options{
				Objectives: tc.Objectives, Timeout: cfg.Timeout, Workers: cfg.EngineWorkers,
			})
		},
	}
}

// rtaAlgo builds an RTA comparator at the given precision.
func rtaAlgo(alpha float64, cfg Config) namedAlgo {
	return namedAlgo{
		name: fmt.Sprintf("RTA(%.4g)", alpha),
		run: func(m *costmodel.Model, tc workload.TestCase) (core.Result, error) {
			return core.RTA(m, tc.Weights, core.Options{
				Objectives: tc.Objectives, Alpha: alpha, Timeout: cfg.Timeout, Workers: cfg.EngineWorkers,
			})
		},
	}
}

// iraAlgo builds an IRA comparator at the given precision.
func iraAlgo(alpha float64, cfg Config) namedAlgo {
	return namedAlgo{
		name: fmt.Sprintf("IRA(%.4g)", alpha),
		run: func(m *costmodel.Model, tc workload.TestCase) (core.Result, error) {
			return core.IRA(m, tc.Weights, tc.Bounds, core.Options{
				Objectives: tc.Objectives, Alpha: alpha, Timeout: cfg.Timeout, Workers: cfg.EngineWorkers,
			})
		},
	}
}

// aggregate folds per-case runs into per-algorithm cells, computing the
// weighted-cost percentage against the best plan any algorithm produced
// for the same test case (the paper's W-Cost metric).
func aggregate(cells []Cell, perCase [][]caseRun) {
	for _, runs := range perCase {
		best := runs[0].wcost
		for _, r := range runs[1:] {
			if r.wcost < best {
				best = r.wcost
			}
		}
		for i, r := range runs {
			pct := 100.0
			if best > 0 {
				pct = 100 * r.wcost / best
			}
			cells[i].add(r.stats, pct, r.violations)
		}
	}
	for i := range cells {
		cells[i].finalize()
	}
}

// runCells executes one job per (query, param) cell, sequentially or on a
// worker pool, and returns the produced rows in deterministic (input)
// order regardless of scheduling.
func runCells(workers int, jobs []func() (Row, error)) ([]Row, error) {
	rows := make([]Row, len(jobs))
	errs := make([]error, len(jobs))
	if workers <= 1 {
		for i, job := range jobs {
			rows[i], errs[i] = job()
		}
	} else {
		sem := make(chan struct{}, workers)
		done := make(chan int)
		for i := range jobs {
			go func(i int) {
				sem <- struct{}{}
				rows[i], errs[i] = jobs[i]()
				<-sem
				done <- i
			}(i)
		}
		for range jobs {
			<-done
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// newRNG derives a deterministic RNG for one (figure, query, param) cell,
// so single figures can be regenerated in isolation with identical
// workloads.
func (c Config) newRNG(figure string, queryNum, param int) *rand.Rand {
	h := int64(0)
	for _, ch := range figure {
		h = h*131 + int64(ch)
	}
	return rand.New(rand.NewSource(c.Seed + h*1_000_003 + int64(queryNum)*1009 + int64(param)*13))
}

// catalogFor builds the TPC-H catalog for the run.
func (c Config) catalog() *catalog.Catalog { return catalog.TPCH(c.ScaleFactor) }

// minimaFor computes per-objective minima (all nine objectives) for bounds
// generation; sampling availability must match the bounded runs, where all
// nine objectives (including tuple loss) are active.
func minimaFor(m *costmodel.Model, cfg Config) (objective.Vector, error) {
	return core.ObjectiveMinima(m, core.Options{
		Objectives: objective.AllSet(),
		Timeout:    cfg.Timeout,
		Workers:    cfg.EngineWorkers,
	})
}
