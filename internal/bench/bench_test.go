package bench

import (
	"strings"
	"testing"
	"time"

	"moqo/internal/objective"
	"moqo/internal/pareto"
)

// quickConfig keeps harness tests fast: a few small queries, small scale
// factor, short timeout.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.ScaleFactor = 0.05
	cfg.Timeout = 500 * time.Millisecond
	cfg.CasesPerConfig = 2
	cfg.Queries = []int{1, 12, 3}
	cfg.ObjectiveCounts = []int{3}
	cfg.BoundCounts = []int{3}
	cfg.Alphas = []float64{1.5}
	return cfg
}

func TestFigure5(t *testing.T) {
	cfg := quickConfig()
	rows, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 queries x 2 objective counts (1 is prepended to {3}).
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if len(r.Cells) != 1 || r.Cells[0].Algorithm != "EXA" {
			t.Fatalf("figure 5 compares only the EXA, got %+v", r.Cells)
		}
		c := r.Cells[0]
		if c.Cases != cfg.CasesPerConfig {
			t.Errorf("q%d: %d cases", r.QueryNum, c.Cases)
		}
		if c.AvgTimeMs < 0 || c.AvgMemKB <= 0 || c.AvgPareto < 1 {
			t.Errorf("q%d k=%d: implausible metrics %+v", r.QueryNum, r.Param, c)
		}
		if c.AvgWCostPct < 100-1e-6 {
			t.Errorf("wcost below 100%%: %v", c.AvgWCostPct)
		}
	}
	// Single-objective runs store exactly one Pareto plan per set (the
	// paper's "always one for SOQO" observation).
	for _, r := range rows {
		if r.Param == 1 && r.Cells[0].AvgPareto != 1 {
			t.Errorf("q%d: single-objective Pareto count %v, want 1", r.QueryNum, r.Cells[0].AvgPareto)
		}
	}
}

func TestFigure9(t *testing.T) {
	cfg := quickConfig()
	rows, err := Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if len(r.Cells) != 2 {
			t.Fatalf("want EXA + RTA(1.5), got %d cells", len(r.Cells))
		}
		exa, rta := r.Cells[0], r.Cells[1]
		if exa.Algorithm != "EXA" || rta.Algorithm != "RTA(1.5)" {
			t.Fatalf("unexpected algorithms %q %q", exa.Algorithm, rta.Algorithm)
		}
		// Without timeouts the EXA is exact, so its weighted cost is the
		// best known (100%) and RTA stays within the guarantee.
		if exa.Timeouts == 0 && exa.AvgWCostPct > 100+1e-6 {
			t.Errorf("q%d: exact algorithm not at 100%%: %v", r.QueryNum, exa.AvgWCostPct)
		}
		if exa.Timeouts == 0 && rta.Timeouts == 0 && rta.AvgWCostPct > 150+1e-6 {
			t.Errorf("q%d: RTA(1.5) beyond guarantee: %v%%", r.QueryNum, rta.AvgWCostPct)
		}
		if rta.AvgPareto > exa.AvgPareto+1e-9 && exa.Timeouts == 0 {
			t.Errorf("q%d: RTA stored more Pareto plans than EXA", r.QueryNum)
		}
	}
}

func TestFigure10(t *testing.T) {
	cfg := quickConfig()
	rows, err := Figure10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		exa, ira := r.Cells[0], r.Cells[1]
		if !strings.HasPrefix(ira.Algorithm, "IRA(") {
			t.Fatalf("second cell should be IRA, got %q", ira.Algorithm)
		}
		if ira.AvgIters < 1 {
			t.Errorf("q%d: IRA iterations %v", r.QueryNum, ira.AvgIters)
		}
		// When the exact run found a feasible plan, the IRA must too.
		if exa.Timeouts == 0 && exa.AvgBoundViolations == 0 && ira.Timeouts == 0 && ira.AvgBoundViolations > 0 {
			t.Errorf("q%d: IRA violates bounds the EXA satisfied", r.QueryNum)
		}
	}
}

func TestFigure7(t *testing.T) {
	pts := Figure7(DefaultComplexityParams())
	if len(pts) != 9 { // n = 2..10
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		if p.N != i+2 {
			t.Errorf("point %d has n=%d", i, p.N)
		}
		if p.Selinger <= 0 || p.EXA <= 0 {
			t.Error("non-positive complexity")
		}
		// Coarser precision => smaller archives => cheaper.
		if p.RTA[1.5] >= p.RTA[1.05] {
			t.Errorf("n=%d: RTA(1.5) %v not cheaper than RTA(1.05) %v", p.N, p.RTA[1.5], p.RTA[1.05])
		}
		if p.Selinger >= p.RTA[1.5] {
			t.Errorf("n=%d: Selinger should be cheapest", p.N)
		}
	}
	// The EXA curve must overtake the RTA curves as n grows (the paper's
	// qualitative point: EXA grows super-exponentially).
	last := pts[len(pts)-1]
	if last.EXA <= last.RTA[1.05] {
		t.Errorf("at n=%d EXA (%v) should exceed RTA(1.05) (%v)", last.N, last.EXA, last.RTA[1.05])
	}
	// At small n the approximation machinery costs more than exhaustive
	// enumeration — the crossover the paper's Figure 7 shows.
	first := pts[0]
	if first.EXA >= first.RTA[1.05] {
		t.Errorf("at n=2 EXA (%v) should still be below RTA(1.05) (%v)", first.EXA, first.RTA[1.05])
	}
}

func TestNumBushyPlans(t *testing.T) {
	// (2(n-1))!/(n-1)! join orders; j^(2n-1) operator choices.
	// n=2, j=1: 2!/1! = 2 bushy plans... with one operator: 1^3 * 2 = 2.
	if got := NumBushyPlans(1, 2); got != 2 {
		t.Errorf("NumBushyPlans(1,2) = %v, want 2", got)
	}
	// n=3, j=1: 4!/2! = 12.
	if got := NumBushyPlans(1, 3); got != 12 {
		t.Errorf("NumBushyPlans(1,3) = %v, want 12", got)
	}
	// Operator factor: j=2, n=2: 2^3 * 2 = 16.
	if got := NumBushyPlans(2, 2); got != 16 {
		t.Errorf("NumBushyPlans(2,2) = %v, want 16", got)
	}
}

func TestFigure4(t *testing.T) {
	cfg := quickConfig()
	res, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Alpha != 2 || res[1].Alpha != 1.25 {
		t.Fatalf("want alpha 2 and 1.25 results, got %+v", res)
	}
	coarse, fine := res[0], res[1]
	if len(coarse.Points) < 3 {
		t.Errorf("coarse frontier too small: %d", len(coarse.Points))
	}
	if len(fine.Points) <= len(coarse.Points) {
		t.Errorf("finer precision should resolve more tradeoffs: %d vs %d",
			len(fine.Points), len(coarse.Points))
	}
	for _, p := range append(coarse.Points, fine.Points...) {
		if p.TupleLoss < 0 || p.TupleLoss > 1 {
			t.Errorf("tuple loss out of range: %v", p.TupleLoss)
		}
		if p.Buffer <= 0 || p.Time <= 0 {
			t.Errorf("non-positive cost: %+v", p)
		}
	}
	// Sorted by tuple loss for rendering.
	for i := 1; i < len(fine.Points); i++ {
		if fine.Points[i].TupleLoss < fine.Points[i-1].TupleLoss {
			t.Error("points not sorted by tuple loss")
		}
	}
}

func TestFigure3Evolution(t *testing.T) {
	cfg := quickConfig()
	cfg.ScaleFactor = 1 // the evolution needs realistic table sizes
	cfg.Timeout = 10 * time.Second
	steps, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("got %d steps", len(steps))
	}
	q := Figure3Query(cfg)
	sigs := make([]string, 3)
	for i, s := range steps {
		if s.Plan == nil {
			t.Fatalf("step %d has no plan", i)
		}
		if err := s.Plan.Validate(q); err != nil {
			t.Errorf("step %d: %v", i, err)
		}
		if s.Plan.Cost[objective.TupleLoss] != 0 {
			t.Errorf("step %d: tuple loss bound violated", i)
		}
		sigs[i] = s.Plan.Signature(q)
	}
	// The paper's evolution: each preference change changes the plan.
	if sigs[0] == sigs[1] {
		t.Errorf("buffer weight did not change the plan:\n%s", sigs[0])
	}
	if sigs[1] == sigs[2] {
		t.Errorf("startup bound did not change the plan:\n%s", sigs[1])
	}
	// Step (a) minimizes time alone: hash joins. Step (b) must avoid
	// hash joins; step (c) must use only pipelined index-nested-loops.
	if !strings.Contains(sigs[0], "HashJ") {
		t.Errorf("step (a) should use hash joins: %s", sigs[0])
	}
	if strings.Contains(sigs[1], "HashJ") {
		t.Errorf("step (b) should avoid hash joins: %s", sigs[1])
	}
	if strings.Contains(sigs[2], "HashJ") || strings.Contains(sigs[2], "SMJ") {
		t.Errorf("step (c) should be fully pipelined: %s", sigs[2])
	}
	// Step (c) respects its startup bound.
	if !steps[2].Bounds.Respects(steps[2].Plan.Cost, Figure3Objectives) {
		t.Error("step (c) plan violates its bounds")
	}
}

func TestRunningExample(t *testing.T) {
	e := NewRunningExample()
	frontier := e.ParetoFrontier()
	if len(frontier) != 4 {
		t.Fatalf("frontier has %d points, want 4", len(frontier))
	}
	wOpt := e.WeightedOptimum()
	if wOpt[objective.BufferFootprint] != 1 || wOpt[objective.TotalTime] != 2 {
		t.Errorf("weighted optimum = %v, want (buffer=1, time=2)", wOpt.FormatOn(e.Objectives))
	}
	bOpt := e.BoundedOptimum()
	if bOpt[objective.BufferFootprint] != 0.5 || bOpt[objective.TotalTime] != 3 {
		t.Errorf("bounded optimum = %v, want (buffer=0.5, time=3)", bOpt.FormatOn(e.Objectives))
	}
	if wOpt == bOpt {
		t.Error("bounds must change the optimum (Figure 1)")
	}
	// Figure 6: approximate domination covers strictly more points.
	center := frontier[1]
	approx := e.ApproximatelyDominated(center, 2)
	if len(approx) == 0 {
		t.Error("no additional approximately dominated points at alpha=2")
	}
	for _, v := range approx {
		if center.Dominates(v, e.Objectives) {
			t.Error("approximately dominated set must exclude exactly dominated points")
		}
	}
}

func TestBoundedPathology(t *testing.T) {
	// Figure 8: the alpha-cover misses the only cheap in-bounds plan.
	alpha := 1.5
	ref, cover, bounds, objs := BoundedPathology(alpha)
	if !pareto.IsAlphaCover(cover, ref, alpha+1e-12, objs) {
		t.Fatal("cover is not an alpha-cover of the reference")
	}
	bestRef, bestCover := 1e18, 1e18
	w := objective.UniformWeights(objective.NewSet(objective.TotalTime))
	for _, v := range ref {
		if bounds.Respects(v, objs) && w.Cost(v) < bestRef {
			bestRef = w.Cost(v)
		}
	}
	for _, v := range cover {
		if bounds.Respects(v, objs) && w.Cost(v) < bestCover {
			bestCover = w.Cost(v)
		}
	}
	if bestCover <= bestRef*alpha {
		t.Errorf("pathology not exhibited: cover best %v vs ref best %v", bestCover, bestRef)
	}
}

func TestRenderers(t *testing.T) {
	cfg := quickConfig()
	cfg.Queries = []int{1}
	rows, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	txt := RenderRows(rows, "objs")
	if !strings.Contains(txt, "EXA") || !strings.Contains(txt, "q1") {
		t.Errorf("RenderRows output suspicious:\n%s", txt)
	}
	csv := RowsCSV(rows, "objs")
	if !strings.HasPrefix(csv, "query,tables,objs,algorithm") {
		t.Errorf("CSV header wrong: %s", csv[:50])
	}
	if strings.Count(csv, "\n") != len(rows)+1 {
		t.Error("CSV row count wrong")
	}

	comp := RenderComplexity(Figure7(DefaultComplexityParams()))
	if !strings.Contains(comp, "Selinger") || !strings.Contains(comp, "RTA(1.05)") {
		t.Errorf("complexity render missing columns:\n%s", comp)
	}
	if RenderComplexity(nil) != "" {
		t.Error("empty complexity render should be empty")
	}

	f4 := Figure4Result{Alpha: 2, Points: []FrontierPoint{{TupleLoss: 0.5, Buffer: 100, Time: 10}}}
	if !strings.Contains(RenderFrontier(f4), "0.5") {
		t.Error("frontier render missing point")
	}
	if !strings.HasPrefix(FrontierCSV(f4), "tuple_loss,buffer_bytes,time_ms\n") {
		t.Error("frontier CSV header wrong")
	}

	steps := []EvolutionStep{{Description: "demo", PlanText: "SeqScan x\n"}}
	if !strings.Contains(RenderEvolution(steps), "(a) demo") {
		t.Error("evolution render wrong")
	}
}

func TestScatter(t *testing.T) {
	pts := [][2]float64{{1, 1}, {2, 3}, {4, 2}}
	marked := [][2]float64{{3, 3}}
	s := Scatter(pts, marked, 20, 8, "buffer", "time")
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Errorf("scatter missing points:\n%s", s)
	}
	if !strings.Contains(s, "buffer") || !strings.Contains(s, "time") {
		t.Error("scatter missing labels")
	}
	// Degenerate inputs must not panic.
	_ = Scatter(nil, nil, 0, 0, "x", "y")
	_ = Scatter([][2]float64{{0, 0}}, nil, 10, 5, "x", "y")
}

func TestParallelWorkersMatchSequential(t *testing.T) {
	// With a generous timeout (no timeout nondeterminism), parallel cell
	// execution must produce exactly the same aggregates as sequential
	// execution, in the same order — only wall-clock durations may vary.
	cfg := quickConfig()
	cfg.Queries = []int{1, 12, 14, 13}
	cfg.Timeout = 30 * time.Second
	seq, err := Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		s, p := seq[i], par[i]
		if s.QueryNum != p.QueryNum || s.Param != p.Param {
			t.Fatalf("row %d order differs: q%d/%d vs q%d/%d", i, s.QueryNum, s.Param, p.QueryNum, p.Param)
		}
		for j := range s.Cells {
			sc, pc := s.Cells[j], p.Cells[j]
			if sc.Algorithm != pc.Algorithm || sc.Cases != pc.Cases ||
				sc.Timeouts != pc.Timeouts || sc.AvgPareto != pc.AvgPareto ||
				sc.AvgWCostPct != pc.AvgWCostPct {
				t.Errorf("row %d cell %s differs between sequential and parallel runs:\n%+v\nvs\n%+v",
					i, sc.Algorithm, sc, pc)
			}
		}
	}
}

func TestRunCellsPropagatesErrors(t *testing.T) {
	boom := func() (Row, error) { return Row{}, errTest }
	ok := func() (Row, error) { return Row{QueryNum: 1}, nil }
	if _, err := runCells(1, []func() (Row, error){ok, boom}); err == nil {
		t.Error("sequential error lost")
	}
	if _, err := runCells(3, []func() (Row, error){ok, boom, ok}); err == nil {
		t.Error("parallel error lost")
	}
	rows, err := runCells(2, []func() (Row, error){ok, ok})
	if err != nil || len(rows) != 2 {
		t.Errorf("clean parallel run failed: %v", err)
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "test error" }

func TestConfigRNGDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	a := cfg.newRNG("fig9", 5, 3).Int63()
	b := cfg.newRNG("fig9", 5, 3).Int63()
	if a != b {
		t.Error("same cell must get the same RNG stream")
	}
	if cfg.newRNG("fig9", 5, 3).Int63() == cfg.newRNG("fig5", 5, 3).Int63() {
		t.Error("different figures should get different streams")
	}
}

func TestCellAggregation(t *testing.T) {
	cells := []Cell{{Algorithm: "A"}, {Algorithm: "B"}}
	perCase := [][]caseRun{
		{{name: "A", wcost: 10}, {name: "B", wcost: 20}},
		{{name: "A", wcost: 10}, {name: "B", wcost: 10}},
	}
	aggregate(cells, perCase)
	if cells[0].AvgWCostPct != 100 {
		t.Errorf("A wcost%% = %v, want 100", cells[0].AvgWCostPct)
	}
	if cells[1].AvgWCostPct != 150 { // (200% + 100%) / 2
		t.Errorf("B wcost%% = %v, want 150", cells[1].AvgWCostPct)
	}
	if cells[0].TimeoutPct() != 0 {
		t.Error("no timeouts expected")
	}
	var empty Cell
	if empty.TimeoutPct() != 0 {
		t.Error("empty cell timeout pct")
	}
}
