package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"time"

	"moqo/internal/fault"
	"moqo/internal/server"
)

// ChaosSpec parameterizes the disk-chaos availability experiment: the
// daemon serves a stream of optimization requests while its frontier
// store's disk is dead — every device operation hangs DeadDelay and
// then fails — once with the store circuit breaker (production) and
// once without it (baseline). The workload is sized so most requests
// would touch the dead device: the frontier memory tier is tiny, so
// warmed shapes keep falling out of memory and their serves retry the
// store (a read against a known key, then a re-run DP's write-through).
// Without the breaker every such request pays the dying disk's hang;
// with it the disk is quarantined after a handful of failures and
// serving degrades to memory-only latency. Answers are verified against
// a fault-free reference either way — chaos may slow or shed requests,
// never change answers.
type ChaosSpec struct {
	// Requests is the measured request count per arm (default 60).
	Requests int
	// Tables sizes the chain query shapes (default 7).
	Tables int
	// Shapes is how many distinct query shapes the stream cycles over
	// (default 6; the frontier memory tier holds 2, so most serves
	// miss memory and hit the dead disk).
	Shapes int
	// DeadDelay is the dying disk's per-operation hang (default 10ms).
	DeadDelay time.Duration
	// Seed drives the injector (only dead-disk mode is used here, so it
	// only matters for reproducibility of the schedule metadata).
	Seed int64
}

func (s ChaosSpec) withDefaults() ChaosSpec {
	if s.Requests == 0 {
		s.Requests = 60
	}
	if s.Tables == 0 {
		s.Tables = 7
	}
	if s.Shapes == 0 {
		s.Shapes = 6
	}
	if s.DeadDelay == 0 {
		s.DeadDelay = 10 * time.Millisecond
	}
	return s
}

// ChaosPoint is one arm's measurement.
type ChaosPoint struct {
	// Arm is "breaker" or "no-breaker".
	Arm      string `json:"arm"`
	Requests int    `json:"requests"`
	// Errors counts non-200 responses; Availability is the served
	// fraction (a store-tier failure must never fail a request, so both
	// arms are expected at 1.0 — the cost of no breaker is latency).
	Errors       int     `json:"errors"`
	Availability float64 `json:"availability"`
	// Mismatches counts answers that differed from the fault-free
	// reference (must be 0 — the differential invariant).
	Mismatches int `json:"mismatches"`
	// Client-side request latency percentiles over the dead-disk window.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// DeadOps counts device operations attempted while the disk was
	// dead (each one paid DeadDelay); Skipped counts store operations
	// the breaker refused instead.
	DeadOps uint64 `json:"dead_ops"`
	Skipped uint64 `json:"skipped"`
	// BreakerTrips and BreakerState describe the breaker at the end of
	// the run (zero/empty in the no-breaker arm).
	BreakerTrips uint64 `json:"breaker_trips"`
	BreakerState string `json:"breaker_state,omitempty"`
}

// ChaosSummary carries the headline numbers: p99 under a dead disk
// with and without the breaker, and their ratio.
type ChaosSummary struct {
	BreakerP50Ms   float64 `json:"breaker_p50_ms"`
	NoBreakerP50Ms float64 `json:"no_breaker_p50_ms"`
	// P50Ratio is no-breaker over breaker at the median — the steady
	// state: post-trip the breaker serves memory-only while the baseline
	// pays the dead device on every request.
	P50Ratio       float64 `json:"p50_ratio"`
	BreakerP99Ms   float64 `json:"breaker_p99_ms"`
	NoBreakerP99Ms float64 `json:"no_breaker_p99_ms"`
	// P99Ratio is no-breaker over breaker at the tail; the breaker arm's
	// tail holds its pre-trip requests and recovery probes, so the
	// median ratio understates less.
	P99Ratio             float64 `json:"p99_ratio"`
	BreakerAvailability  float64 `json:"breaker_availability"`
	BaselineAvailability float64 `json:"no_breaker_availability"`
}

// ChaosAvailability runs the experiment: a fault-free reference pass
// computes expected answers, then each arm serves the same stream with
// the store's disk dead.
func ChaosAvailability(spec ChaosSpec) ([]ChaosPoint, ChaosSummary, error) {
	spec = spec.withDefaults()
	var sum ChaosSummary

	// Fault-free reference answers, keyed by request body.
	reference := make(map[string]chaosRefAnswer)
	refSvc, err := server.NewE(server.Options{})
	if err != nil {
		return nil, sum, err
	}
	refTS := httptest.NewServer(refSvc.Handler())
	for _, body := range chaosStream(spec) {
		if _, seen := reference[body]; seen {
			continue
		}
		ans, status, err := chaosPost(refTS, body)
		if err != nil || status != http.StatusOK {
			refTS.Close()
			return nil, sum, fmt.Errorf("bench: chaos reference request: status %d, err %v", status, err)
		}
		reference[body] = ans
	}
	refTS.Close()
	_ = refSvc.Close()

	var pts []ChaosPoint
	for _, arm := range []string{"breaker", "no-breaker"} {
		pt, err := chaosArm(spec, arm, reference)
		if err != nil {
			return nil, sum, err
		}
		pts = append(pts, pt)
		if arm == "breaker" {
			sum.BreakerP50Ms, sum.BreakerP99Ms = pt.P50Ms, pt.P99Ms
			sum.BreakerAvailability = pt.Availability
		} else {
			sum.NoBreakerP50Ms, sum.NoBreakerP99Ms = pt.P50Ms, pt.P99Ms
			sum.BaselineAvailability = pt.Availability
		}
	}
	ratio := func(num, den float64) float64 {
		if den < 0.01 {
			den = 0.01
		}
		return num / den
	}
	sum.P50Ratio = ratio(sum.NoBreakerP50Ms, sum.BreakerP50Ms)
	sum.P99Ratio = ratio(sum.NoBreakerP99Ms, sum.BreakerP99Ms)
	return pts, sum, nil
}

// chaosRefAnswer is the compared answer content (serving metadata like
// cached/duration legitimately differs under faults).
type chaosRefAnswer struct {
	Algorithm string
	Plan      json.RawMessage
	Cost      map[string]float64
}

// chaosArm measures one (breaker?) arm against a dead disk.
func chaosArm(spec ChaosSpec, arm string, reference map[string]chaosRefAnswer) (ChaosPoint, error) {
	pt := ChaosPoint{Arm: arm, Requests: spec.Requests}
	dir, err := os.MkdirTemp("", "moqo-chaos-")
	if err != nil {
		return pt, err
	}
	defer os.RemoveAll(dir)

	inj := fault.NewInjector(nil, fault.Config{
		Seed:      uint64(spec.Seed) + 1,
		DeadDelay: spec.DeadDelay,
	})
	svc, err := server.NewE(server.Options{
		StorePath: dir,
		StoreFS:   inj,
		// Tiny memory tier: warmed shapes keep getting evicted, so their
		// next serve goes back to the store — the dead disk sits on the
		// hot path instead of being hidden by memory hits. One shard
		// makes the capacity exact (a sharded cache rounds capacity up
		// per shard and evicts per shard, which would let hash luck
		// decide how many shapes stay memory-resident).
		FrontierCacheCapacity: 2,
		CacheShards:           1,
		NoStoreBreaker:        arm == "no-breaker",
		BreakerThreshold:      3,
		BreakerCooldown:       100 * time.Millisecond,
	})
	if err != nil {
		return pt, err
	}
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		_ = svc.Close()
	}()

	// Warm every shape on a healthy disk: each lands in the store, and
	// all but two fall out of the memory tier immediately.
	for i := 0; i < spec.Shapes; i++ {
		if _, status, err := chaosPost(ts, chaosBody(spec, i, 0)); err != nil || status != http.StatusOK {
			return pt, fmt.Errorf("bench: chaos warm-up: status %d, err %v", status, err)
		}
	}

	opsBefore := chaosOps(inj)
	inj.SetDead(true)
	var latency []float64
	for _, body := range chaosStream(spec) {
		start := time.Now()
		ans, status, err := chaosPost(ts, body)
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		if err != nil || status != http.StatusOK {
			pt.Errors++
			continue
		}
		latency = append(latency, ms)
		want := reference[body]
		if ans.Algorithm != want.Algorithm || !bytes.Equal(ans.Plan, want.Plan) ||
			!reflect.DeepEqual(ans.Cost, want.Cost) {
			pt.Mismatches++
		}
	}
	inj.SetDead(false)
	pt.DeadOps = chaosOps(inj) - opsBefore

	pt.Availability = float64(spec.Requests-pt.Errors) / float64(spec.Requests)
	if len(latency) > 0 {
		sort.Float64s(latency)
		pt.P50Ms = server.Percentile(latency, 0.50)
		pt.P99Ms = server.Percentile(latency, 0.99)
	}

	// Breaker/skip accounting from the public metrics surface.
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		return pt, err
	}
	var m server.MetricsResponse
	err = json.NewDecoder(res.Body).Decode(&m)
	res.Body.Close()
	if err != nil {
		return pt, err
	}
	pt.Skipped = m.FrontierStore.Skipped
	if m.FrontierStore.Breaker != nil {
		pt.BreakerTrips = m.FrontierStore.Breaker.Trips
		pt.BreakerState = m.FrontierStore.Breaker.State
	}
	return pt, nil
}

// chaosOps sums the injector's per-class device-operation counters.
func chaosOps(inj *fault.Injector) uint64 {
	var total uint64
	for _, n := range inj.Counters().Ops {
		total += n
	}
	return total
}

// chaosBody renders shape i's /optimize request: distinct filter
// selectivities are distinct query shapes (distinct FrontierKeys), and
// distinct bufferWeights are distinct re-weights of one shape — the
// same FrontierKey but a fresh exact-tier cache key.
func chaosBody(spec ChaosSpec, i int, bufferWeight float64) string {
	return tenantBody(tenantChainSpec(spec.Tables, 0.2+0.1*float64(i), "rta", 1.2,
		[]string{"total_time", "buffer_footprint"}, bufferWeight, false))
}

// chaosStream is the measured request sequence: re-weights cycling over
// the shapes, every request a fresh weight so the exact cache tier
// never answers it. Each serve must consult the frontier tier — which
// holds 2 of the Shapes snapshots — and on a memory miss retries the
// store: a read against a known key, then (when that fails) a re-run
// DP's write-through. That is what puts a dead disk on the hot path.
func chaosStream(spec ChaosSpec) []string {
	bodies := make([]string, spec.Requests)
	for i := range bodies {
		bodies[i] = chaosBody(spec, i%spec.Shapes, 1+0.01*float64(i))
	}
	return bodies
}

// chaosPost posts one request and decodes the compared answer content.
func chaosPost(ts *httptest.Server, body string) (chaosRefAnswer, int, error) {
	res, err := http.Post(ts.URL+"/optimize", "application/json", strings.NewReader(body))
	if err != nil {
		return chaosRefAnswer{}, 0, err
	}
	defer res.Body.Close()
	var wire struct {
		Algorithm string             `json:"algorithm"`
		Plan      json.RawMessage    `json:"plan"`
		Cost      map[string]float64 `json:"cost"`
	}
	if err := json.NewDecoder(res.Body).Decode(&wire); err != nil {
		return chaosRefAnswer{}, res.StatusCode, err
	}
	return chaosRefAnswer{Algorithm: wire.Algorithm, Plan: wire.Plan, Cost: wire.Cost}, res.StatusCode, nil
}

// RenderChaos renders the experiment as an aligned text table.
func RenderChaos(pts []ChaosPoint, sum ChaosSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %8s %6s %8s %9s %9s %9s %8s %6s %10s\n",
		"arm", "requests", "errors", "avail", "p50(ms)", "p99(ms)", "dead-ops", "skipped", "trips", "state")
	for _, p := range pts {
		fmt.Fprintf(&b, "%10s %8d %6d %7.0f%% %9.2f %9.2f %9d %8d %6d %10s\n",
			p.Arm, p.Requests, p.Errors, 100*p.Availability, p.P50Ms, p.P99Ms,
			p.DeadOps, p.Skipped, p.BreakerTrips, p.BreakerState)
	}
	fmt.Fprintf(&b, "dead-disk p50: no-breaker %.2fms vs breaker %.2fms (%.1fx); p99: %.2fms vs %.2fms (%.1fx)\n",
		sum.NoBreakerP50Ms, sum.BreakerP50Ms, sum.P50Ratio,
		sum.NoBreakerP99Ms, sum.BreakerP99Ms, sum.P99Ratio)
	return b.String()
}

// ChaosJSON serializes the measurements as the BENCH_chaos.json payload
// the CI pipeline archives.
func ChaosJSON(pts []ChaosPoint, sum ChaosSummary) ([]byte, error) {
	payload := struct {
		Benchmark string       `json:"benchmark"`
		NumCPU    int          `json:"num_cpu"`
		Points    []ChaosPoint `json:"points"`
		Summary   ChaosSummary `json:"summary"`
	}{
		Benchmark: "moqod-disk-chaos-availability",
		NumCPU:    runtime.NumCPU(),
		Points:    pts,
		Summary:   sum,
	}
	return json.MarshalIndent(payload, "", "  ")
}
