package bench

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestChaosAvailability runs a scaled-down disk-chaos experiment end to
// end: both arms must stay fully available through the dead disk, every
// answer must match the fault-free reference, the breaker arm must
// actually trip and quarantine the device, and the no-breaker baseline
// must keep hammering it.
func TestChaosAvailability(t *testing.T) {
	spec := ChaosSpec{
		Requests:  24,
		Tables:    6,
		Shapes:    4,
		DeadDelay: 2 * time.Millisecond,
		Seed:      3,
	}
	pts, sum, err := ChaosAvailability(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Arm != "breaker" || pts[1].Arm != "no-breaker" {
		t.Fatalf("unexpected points: %+v", pts)
	}
	breaker, baseline := pts[0], pts[1]

	for _, p := range pts {
		if p.Availability != 1 || p.Errors != 0 {
			t.Errorf("%s: availability %.2f with %d errors — store faults must never fail serving",
				p.Arm, p.Availability, p.Errors)
		}
		if p.Mismatches != 0 {
			t.Errorf("%s: %d answers differed from the fault-free reference", p.Arm, p.Mismatches)
		}
	}
	if breaker.BreakerTrips == 0 {
		t.Error("breaker arm never tripped on a dead disk")
	}
	if breaker.Skipped == 0 {
		t.Error("breaker arm skipped no store operations")
	}
	if baseline.DeadOps <= breaker.DeadOps {
		t.Errorf("baseline attempted %d dead-device ops, breaker %d — quarantine had no effect",
			baseline.DeadOps, breaker.DeadOps)
	}

	table := RenderChaos(pts, sum)
	if !strings.Contains(table, "no-breaker") {
		t.Errorf("render missing baseline arm:\n%s", table)
	}
	raw, err := ChaosJSON(pts, sum)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Benchmark string `json:"benchmark"`
		Summary   ChaosSummary
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Benchmark != "moqod-disk-chaos-availability" {
		t.Errorf("benchmark name %q", decoded.Benchmark)
	}
}
