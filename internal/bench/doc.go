// Package bench is the experiment harness that regenerates the evaluation
// of the paper and measures the beyond-paper subsystems. Every figure of
// the paper has a corresponding Figure* function returning structured
// results plus a text renderer:
//
//	Figure 1/2  — running example: weighted vs bounded optima, Pareto
//	              frontier and dominated area (conceptual illustrations).
//	Figure 3    — optimal-plan evolution for TPC-H Q3 under changing
//	              user preferences.
//	Figure 4    — three-dimensional approximate Pareto frontiers for
//	              TPC-H Q5 at two precisions.
//	Figure 5    — cost explosion of the exact algorithm (EXA) across the
//	              TPC-H queries for 1/3/6/9 objectives.
//	Figure 7    — analytic complexity curves (EXA vs RTA vs Selinger).
//	Figure 9    — weighted MOQO: EXA vs RTA at α ∈ {1.15, 1.5, 2}.
//	Figure 10   — bounded MOQO: EXA vs IRA at α ∈ {1.15, 1.5, 2}.
//
// The harness follows the paper's experimental setup (Section 8): per
// query and configuration it generates seeded random test cases (random
// objective subsets, uniform weights, bounds from the objective domain or
// [1,2]× the per-query minimum) and reports timeout percentage,
// optimization time, memory, Pareto-set size / iteration count, and the
// weighted cost of the produced plan relative to the best plan any
// algorithm produced for the same test case.
//
// Beyond the paper's figures, the harness measures the systems layers this
// reproduction adds:
//
//	Scaling          — optimization time vs table count on synthetic
//	                   queries (companion to Figure 7).
//	ParallelScaling  — Workers=1 vs Workers=N wall-clock speedup of the
//	                   level-synchronized engine (BENCH_parallel.json).
//	ServerLoad       — closed-loop throughput and p50/p99 latency of the
//	                   moqod service at varying concurrency and cache-hit
//	                   ratios (BENCH_server.json).
//	TopologyScaling  — enumeration work (scanned sets, split visits) and
//	                   wall time of the exhaustive vs the graph-aware
//	                   csg-cmp strategy across join-graph topologies and
//	                   query sizes (BENCH_topology.json).
//	Hotpath          — allocation-free flat engine vs the preserved
//	                   pre-refactor reference (BENCH_hotpath.json).
//	BatchThroughput  — aggregate throughput and completion latency of a
//	                   mixed overlapping workload optimized as one batch
//	                   (shared catalog warm-up, dedupe, frontier
//	                   re-weights, cross-query subproblem sharing,
//	                   cost-ordered scheduling) vs one request at a
//	                   time, every answer verified bit-for-bit
//	                   (BENCH_batch.json).
package bench
