package bench

import (
	"moqo/internal/objective"
	"moqo/internal/pareto"
	"moqo/internal/plan"
)

// RunningExample is the two-dimensional cost-vector set the paper uses to
// illustrate its definitions throughout (Figures 1, 2, 6 and 8): plan cost
// vectors over buffer space and time, user weights, and bounds.
type RunningExample struct {
	// Objectives is {buffer space, time}.
	Objectives objective.Set
	// Points are the plan cost vectors.
	Points []objective.Vector
	// Weights is the user's preference vector of Figure 1.
	Weights objective.Weights
	// Bounds is the bounds vector of Figure 1(b).
	Bounds objective.Bounds
}

// NewRunningExample builds the running example: eight plan cost vectors of
// which four are Pareto-optimal, equal weights on both objectives, and a
// buffer-space bound that excludes the weighted optimum — so the bounded
// variant selects a different plan, as in Figure 1(b).
func NewRunningExample() RunningExample {
	objs := objective.NewSet(objective.BufferFootprint, objective.TotalTime)
	mk := func(buf, time float64) objective.Vector {
		return objective.Vector{}.
			With(objective.BufferFootprint, buf).
			With(objective.TotalTime, time)
	}
	return RunningExample{
		Objectives: objs,
		Points: []objective.Vector{
			mk(0.5, 3), mk(1, 2), mk(2.5, 1), mk(4, 0.5), // Pareto frontier
			mk(2, 3), mk(3, 2.5), mk(1, 3.5), mk(3.5, 2), // dominated
		},
		Weights: objective.UniformWeights(objs),
		Bounds: objective.NoBounds().
			With(objective.BufferFootprint, 0.9),
	}
}

// ParetoFrontier returns the Pareto-optimal vectors of the example
// (Figure 2).
func (e RunningExample) ParetoFrontier() []objective.Vector {
	return pareto.FilterPareto(e.Points, e.Objectives)
}

// WeightedOptimum returns the vector minimizing the weighted cost — the
// optimum of the weighted MOQO variant (Figure 1(a)).
func (e RunningExample) WeightedOptimum() objective.Vector {
	return e.selectBest(objective.NoBounds())
}

// BoundedOptimum returns the optimum of the bounded-weighted variant
// (Figure 1(b)): the weighted minimum among vectors respecting the bounds.
func (e RunningExample) BoundedOptimum() objective.Vector {
	return e.selectBest(e.Bounds)
}

func (e RunningExample) selectBest(b objective.Bounds) objective.Vector {
	nodes := make([]*plan.Node, len(e.Points))
	for i, v := range e.Points {
		nodes[i] = &plan.Node{Cost: v}
	}
	return pareto.SelectBest(nodes, e.Weights, b, e.Objectives).Cost
}

// ApproximatelyDominated returns, for a given precision alpha, the example
// vectors that are approximately dominated (but not exactly dominated) by
// the given vector — the shaded extra area of Figure 6.
func (e RunningExample) ApproximatelyDominated(by objective.Vector, alpha float64) []objective.Vector {
	var out []objective.Vector
	for _, v := range e.Points {
		if by.ApproxDominates(v, alpha, e.Objectives) && !by.Dominates(v, e.Objectives) {
			out = append(out, v)
		}
	}
	return out
}

// BoundedPathology demonstrates the Figure 8 phenomenon: an α-approximate
// Pareto set that contains no near-optimal plan for a bounded problem.
// It returns a reference frontier, an α-cover of it, and bounds such that
// the cover's best bounded plan is arbitrarily worse than the reference's
// — the reason the IRA needs iterative refinement instead of a fixed
// internal precision.
func BoundedPathology(alpha float64) (reference, cover []objective.Vector, bounds objective.Bounds, objs objective.Set) {
	objs = objective.NewSet(objective.BufferFootprint, objective.TotalTime)
	mk := func(buf, time float64) objective.Vector {
		return objective.Vector{}.
			With(objective.BufferFootprint, buf).
			With(objective.TotalTime, time)
	}
	// The reference frontier holds a cheap plan just inside the buffer
	// bound and an expensive plan well inside it. The cover replaces the
	// cheap plan by a representative within factor alpha — which lands
	// just outside the bound, leaving only the expensive plan feasible.
	bounds = objective.NoBounds().With(objective.BufferFootprint, 1)
	reference = []objective.Vector{mk(1, 1), mk(0.5, 100)}
	cover = []objective.Vector{mk(1*alpha, 1), mk(0.5, 100)}
	return reference, cover, bounds, objs
}
