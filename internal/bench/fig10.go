package bench

import (
	"moqo/internal/costmodel"
	"moqo/internal/workload"
)

// Figure10 reproduces the paper's Figure 10: the bounded-MOQO comparison
// of the EXA against the IRA at α ∈ Alphas. All nine objectives are always
// active; the number of bounded objectives varies over BoundCounts (paper:
// 3, 6, 9). Bounds on unbounded-domain objectives are drawn from [1,2]
// times the per-query minimum (computed by single-objective optimization);
// bounds on tuple loss are drawn uniformly from [0,1]. Reported per
// (query, #bounds): timeout percentage, average time, memory of the last
// iteration, IRA iteration count, and weighted cost relative to the best
// compared plan.
func Figure10(cfg Config) ([]Row, error) {
	counts := cfg.BoundCounts
	if len(counts) == 0 {
		counts = []int{3, 6, 9}
	}
	algs := []namedAlgo{exaAlgo(cfg)}
	for _, a := range cfg.Alphas {
		algs = append(algs, iraAlgo(a, cfg))
	}
	var jobs []func() (Row, error)
	for _, qn := range cfg.queries() {
		for _, k := range counts {
			qn, k := qn, k
			jobs = append(jobs, func() (Row, error) {
				q := workload.MustQuery(qn, cfg.catalog())
				m := costmodel.NewDefault(q)
				minima, err := minimaFor(m, cfg)
				if err != nil {
					return Row{}, err
				}
				r := cfg.newRNG("fig10", qn, k)
				var perCase [][]caseRun
				for i := 0; i < cfg.CasesPerConfig; i++ {
					tc := workload.BoundedCase(q, k, minima, r)
					runs, err := runAlgorithms(tc, m, algs)
					if err != nil {
						return Row{}, err
					}
					perCase = append(perCase, runs)
				}
				cells := make([]Cell, len(algs))
				for i, a := range algs {
					cells[i].Algorithm = a.name
				}
				aggregate(cells, perCase)
				return Row{
					QueryNum:  qn,
					NumTables: q.NumRelations(),
					Param:     k,
					Cells:     cells,
				}, nil
			})
		}
	}
	return runCells(cfg.Workers, jobs)
}
