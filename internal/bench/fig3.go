package bench

import (
	"moqo/internal/core"
	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/plan"
	"moqo/internal/query"
	"moqo/internal/workload"
)

// EvolutionStep is one preference setting of the Figure 3 experiment and
// the optimal plan under it.
type EvolutionStep struct {
	Description string
	Weights     objective.Weights
	Bounds      objective.Bounds
	Plan        *plan.Node
	PlanText    string
}

// Figure3Objectives is the objective set of the plan-evolution experiment:
// the objectives whose weights and bounds the paper varies in Figure 3.
var Figure3Objectives = objective.NewSet(
	objective.TotalTime, objective.StartupTime,
	objective.BufferFootprint, objective.TupleLoss,
)

// Figure3 reproduces the paper's Figure 3: the evolution of the optimal
// plan for TPC-H query 3 as user preferences change. Step 1 bounds tuple
// loss to zero and minimizes total time alone (time-optimal plan without
// sampling, hash joins in the paper). Step 2 adds weight on buffer
// footprint (the paper's plan drops the memory-hungry hash joins). Step 3
// additionally bounds startup time (the paper's plan switches to pipelined
// index-nested-loop joins).
func Figure3(cfg Config) ([]EvolutionStep, error) {
	cat := cfg.catalog()
	q := workload.MustQuery(3, cat)
	m := costmodel.NewDefault(q)

	minima, err := core.ObjectiveMinima(m, core.Options{
		Objectives: Figure3Objectives, Timeout: cfg.Timeout, Workers: cfg.EngineWorkers,
	})
	if err != nil {
		return nil, err
	}

	// The buffer weight trades one kilobyte of buffer space for about one
	// millisecond — enough to push the optimizer from memory-hungry hash
	// joins to bounded-memory sort-merge joins, as in the paper's
	// Figure 3(b). The startup bound then demands a pipelined plan within
	// 10x of the minimal achievable startup time, forcing index-nested-
	// loop joins as in Figure 3(c).
	const bufferWeightPerByte = 1.0 / 1024
	startupBound := minima[objective.StartupTime] * 10

	steps := []EvolutionStep{
		{
			Description: "time-optimal plan for bounded tuple loss (= 0)",
			Weights:     objective.SingleWeight(objective.TotalTime),
			Bounds:      objective.NoBounds().With(objective.TupleLoss, 0),
		},
		{
			Description: "additional weight on buffer space",
			Weights: objective.SingleWeight(objective.TotalTime).
				With(objective.BufferFootprint, bufferWeightPerByte),
			Bounds: objective.NoBounds().With(objective.TupleLoss, 0),
		},
		{
			Description: "additional bound on startup time",
			Weights: objective.SingleWeight(objective.TotalTime).
				With(objective.BufferFootprint, bufferWeightPerByte),
			Bounds: objective.NoBounds().
				With(objective.TupleLoss, 0).
				With(objective.StartupTime, startupBound),
		},
	}
	for i := range steps {
		res, err := core.EXA(m, steps[i].Weights, steps[i].Bounds, core.Options{
			Objectives: Figure3Objectives, Timeout: cfg.Timeout, Workers: cfg.EngineWorkers,
		})
		if err != nil {
			return nil, err
		}
		steps[i].Plan = res.Best
		steps[i].PlanText = res.Best.Format(q)
	}
	return steps, nil
}

// Figure3Query returns the query of the experiment, for rendering.
func Figure3Query(cfg Config) *query.Query {
	return workload.MustQuery(3, cfg.catalog())
}
