package bench

import (
	"sort"

	"moqo/internal/core"
	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/workload"
)

// FrontierPoint is one plan of the Figure 4 Pareto surface: tuple loss,
// buffer footprint (bytes), and total time for TPC-H Q5.
type FrontierPoint struct {
	TupleLoss float64
	Buffer    float64
	Time      float64
}

// Figure4Result holds one approximate three-dimensional Pareto frontier.
type Figure4Result struct {
	Alpha  float64
	Points []FrontierPoint
	Stats  core.Stats
}

// Figure4Objectives is the objective set of the Figure 4 experiment.
var Figure4Objectives = objective.NewSet(objective.TupleLoss, objective.BufferFootprint, objective.TotalTime)

// Figure4 reproduces the paper's Figure 4: approximate Pareto frontiers of
// TPC-H query 5 over tuple loss, buffer footprint and total time, computed
// by the RTA at a coarse precision (paper: α = 2) and a fine precision
// (α = 1.25). The finer frontier resolves more tradeoff points.
func Figure4(cfg Config, alphas ...float64) ([]Figure4Result, error) {
	if len(alphas) == 0 {
		alphas = []float64{2, 1.25}
	}
	cat := cfg.catalog()
	q := workload.MustQuery(5, cat)
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(Figure4Objectives)

	var out []Figure4Result
	for _, alpha := range alphas {
		res, err := core.RTA(m, w, core.Options{
			Objectives: Figure4Objectives,
			Alpha:      alpha,
			Timeout:    cfg.Timeout,
			Workers:    cfg.EngineWorkers,
		})
		if err != nil {
			return nil, err
		}
		pts := make([]FrontierPoint, 0, res.Frontier.Len())
		for _, p := range res.Frontier.Plans() {
			pts = append(pts, FrontierPoint{
				TupleLoss: p.Cost[objective.TupleLoss],
				Buffer:    p.Cost[objective.BufferFootprint],
				Time:      p.Cost[objective.TotalTime],
			})
		}
		sort.Slice(pts, func(i, j int) bool {
			if pts[i].TupleLoss != pts[j].TupleLoss {
				return pts[i].TupleLoss < pts[j].TupleLoss
			}
			if pts[i].Buffer != pts[j].Buffer {
				return pts[i].Buffer < pts[j].Buffer
			}
			return pts[i].Time < pts[j].Time
		})
		out = append(out, Figure4Result{Alpha: alpha, Points: pts, Stats: res.Stats})
	}
	return out, nil
}
