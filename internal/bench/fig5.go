package bench

import (
	"moqo/internal/costmodel"
	"moqo/internal/workload"
)

// Figure5 reproduces the paper's Figure 5: the performance of the exact
// algorithm (EXA) on the TPC-H queries for 1, 3, 6 and 9 objectives —
// optimization time, allocated memory, and the number of Pareto plans of
// the last completely treated table set, with timeout markers. Every
// reported value is the average over CasesPerConfig random test cases.
func Figure5(cfg Config) ([]Row, error) {
	counts := cfg.ObjectiveCounts
	if len(counts) == 0 {
		counts = []int{1, 3, 6, 9}
	}
	// Figure 5 includes the single-objective baseline measurement.
	if counts[0] != 1 {
		counts = append([]int{1}, counts...)
	}
	var jobs []func() (Row, error)
	for _, qn := range cfg.queries() {
		for _, k := range counts {
			qn, k := qn, k
			jobs = append(jobs, func() (Row, error) {
				// Each job owns its query and model: the cardinality
				// estimator memoizes per query and is not safe for
				// concurrent use across cells.
				q := workload.MustQuery(qn, cfg.catalog())
				m := costmodel.NewDefault(q)
				r := cfg.newRNG("fig5", qn, k)
				var perCase [][]caseRun
				for i := 0; i < cfg.CasesPerConfig; i++ {
					tc := workload.WeightedCase(q, k, r)
					runs, err := runAlgorithms(tc, m, []namedAlgo{exaAlgo(cfg)})
					if err != nil {
						return Row{}, err
					}
					perCase = append(perCase, runs)
				}
				cells := []Cell{{Algorithm: "EXA"}}
				aggregate(cells, perCase)
				return Row{
					QueryNum:  qn,
					NumTables: q.NumRelations(),
					Param:     k,
					Cells:     cells,
				}, nil
			})
		}
	}
	return runCells(cfg.Workers, jobs)
}
