package bench

import "math"

// ComplexityPoint is one x-position of the paper's Figure 7: the analytic
// worst-case time complexity of the compared algorithms for joining n
// tables.
type ComplexityPoint struct {
	N        int
	EXA      float64             // O(Nbushy(j,n)^2), Theorem 2
	RTA      map[float64]float64 // per alpha: O(j*3^n*Nstored^3), Theorem 5
	Selinger float64             // O(j*3^n)
}

// ComplexityParams are the constants of Figure 7 (j operators, l
// objectives, m maximal table cardinality).
type ComplexityParams struct {
	J int
	L int
	M float64
	// Alphas are the RTA precisions to plot (paper: 1.05 and 1.5).
	Alphas []float64
	// MaxN is the largest table count (paper: 10).
	MaxN int
}

// DefaultComplexityParams returns the paper's Figure 7 setting: j = 6,
// l = 3, m = 1e5, α ∈ {1.05, 1.5}, n = 2..10.
func DefaultComplexityParams() ComplexityParams {
	return ComplexityParams{J: 6, L: 3, M: 1e5, Alphas: []float64{1.05, 1.5}, MaxN: 10}
}

// NumBushyPlans evaluates Nbushy(j, n) = j^(2n-1) * (2(n-1))! / (n-1)!,
// the number of possible bushy plans for joining n tables with j operators
// (paper Section 5.2).
func NumBushyPlans(j, n int) float64 {
	f := math.Pow(float64(j), float64(2*n-1))
	for i := n; i <= 2*(n-1); i++ {
		f *= float64(i)
	}
	return f
}

// NumStoredRTA evaluates Nstored(m, n) = (n * log_αi(m))^(l-1), the bound
// on the RTA's per-table-set archive size (Lemma 2), with the internal
// precision αi = α^(1/n) — so log_αi(m) = n*ln(m)/ln(α).
func NumStoredRTA(m float64, n, l int, alpha float64) float64 {
	logAlphaI := float64(n) * math.Log(m) / math.Log(alpha)
	return math.Pow(float64(n)*logAlphaI, float64(l-1))
}

// Figure7 evaluates the analytic complexity formulas the paper plots in
// Figure 7: the EXA's O(Nbushy^2), the RTA's O(j*3^n*Nstored^3) for each
// alpha, and Selinger's O(j*3^n), for n = 2..MaxN.
func Figure7(p ComplexityParams) []ComplexityPoint {
	var out []ComplexityPoint
	for n := 2; n <= p.MaxN; n++ {
		nb := NumBushyPlans(p.J, n)
		pt := ComplexityPoint{
			N:        n,
			EXA:      nb * nb,
			RTA:      make(map[float64]float64, len(p.Alphas)),
			Selinger: float64(p.J) * math.Pow(3, float64(n)),
		}
		for _, a := range p.Alphas {
			ns := NumStoredRTA(p.M, n, p.L, a)
			pt.RTA[a] = float64(p.J) * math.Pow(3, float64(n)) * ns * ns * ns
		}
		out = append(out, pt)
	}
	return out
}
