package bench

import (
	"moqo/internal/costmodel"
	"moqo/internal/workload"
)

// Figure9 reproduces the paper's Figure 9: the weighted-MOQO comparison of
// the EXA against the RTA at α ∈ Alphas over the TPC-H queries with 3, 6
// and 9 objectives. Reported per (query, #objectives): timeout percentage,
// average optimization time, memory, Pareto-plan count of the last
// completely treated table set, and the weighted cost of the produced plan
// as a percentage of the best plan produced by any compared algorithm on
// the same test case.
func Figure9(cfg Config) ([]Row, error) {
	counts := cfg.ObjectiveCounts
	if len(counts) == 0 {
		counts = []int{3, 6, 9}
	}
	algs := []namedAlgo{exaAlgo(cfg)}
	for _, a := range cfg.Alphas {
		algs = append(algs, rtaAlgo(a, cfg))
	}
	var jobs []func() (Row, error)
	for _, qn := range cfg.queries() {
		for _, k := range counts {
			qn, k := qn, k
			jobs = append(jobs, func() (Row, error) {
				q := workload.MustQuery(qn, cfg.catalog())
				m := costmodel.NewDefault(q)
				r := cfg.newRNG("fig9", qn, k)
				var perCase [][]caseRun
				for i := 0; i < cfg.CasesPerConfig; i++ {
					tc := workload.WeightedCase(q, k, r)
					runs, err := runAlgorithms(tc, m, algs)
					if err != nil {
						return Row{}, err
					}
					perCase = append(perCase, runs)
				}
				cells := make([]Cell, len(algs))
				for i, a := range algs {
					cells[i].Algorithm = a.name
				}
				aggregate(cells, perCase)
				return Row{
					QueryNum:  qn,
					NumTables: q.NumRelations(),
					Param:     k,
					Cells:     cells,
				}, nil
			})
		}
	}
	return runCells(cfg.Workers, jobs)
}
