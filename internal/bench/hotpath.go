package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"moqo/internal/core"
	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/synthetic"
)

// HotpathSpec parameterizes the hot-path representation benchmark: the
// allocation-free flat engine against the preserved pre-refactor
// (tree-allocating) reference engine, across query sizes and objective
// counts, for both exact (EXA) and approximate (RTA) pruning.
type HotpathSpec struct {
	// Shape of the synthetic join graph (default Chain).
	Shape synthetic.Shape
	// Tables lists the query sizes measured (default {6, 8, 10}).
	Tables []int
	// MaxEXATables caps the exact arm's query size (default 8): EXA's
	// archives grow exponentially, so the larger sizes are measured with
	// the RTA arm only, exactly as the paper's evaluation does.
	MaxEXATables int
	// ObjectiveCounts lists the active-objective counts (default {2, 3}).
	ObjectiveCounts []int
	// MaxRows is the maximal base-table cardinality (default 1e5).
	MaxRows float64
	// Alpha is the RTA arm's approximation precision (default 1.5).
	Alpha float64
	// Repeats averages each point over several runs (default 3).
	Repeats int
	// Seed of the synthetic workload.
	Seed int64
}

// withDefaults fills in the defaults.
func (s HotpathSpec) withDefaults() HotpathSpec {
	if len(s.Tables) == 0 {
		s.Tables = []int{6, 8, 10}
	}
	if len(s.ObjectiveCounts) == 0 {
		s.ObjectiveCounts = []int{2, 3}
	}
	if s.MaxEXATables == 0 {
		s.MaxEXATables = 8
	}
	if s.MaxRows == 0 {
		s.MaxRows = 1e5
	}
	if s.Alpha == 0 {
		s.Alpha = 1.5
	}
	if s.Repeats == 0 {
		s.Repeats = 3
	}
	return s
}

// hotpathObjectives returns the first k objectives of the benchmark
// ladder (time, buffer, energy, IO — the diverse-formula objectives the
// paper's Example 1 builds on).
func hotpathObjectives(k int) objective.Set {
	ladder := []objective.ID{
		objective.TotalTime, objective.BufferFootprint, objective.Energy, objective.IOLoad,
	}
	if k > len(ladder) {
		k = len(ladder)
	}
	return objective.NewSet(ladder[:k]...)
}

// HotpathPoint is one measured configuration of the hot-path benchmark.
// Per-candidate numbers divide each run's totals by the number of
// candidate plans the dynamic program constructed (identical between the
// arms — the engines search the same space candidate for candidate).
type HotpathPoint struct {
	Shape      string `json:"shape"`
	Tables     int    `json:"tables"`
	Objectives int    `json:"objectives"`
	Algorithm  string `json:"algorithm"` // "exa" or "rta"
	Considered int    `json:"considered_per_run"`

	FlatMs      float64 `json:"flat_ms"`
	ReferenceMs float64 `json:"reference_ms"`
	Speedup     float64 `json:"speedup"`

	FlatNsPerCandidate      float64 `json:"flat_ns_per_candidate"`
	ReferenceNsPerCandidate float64 `json:"reference_ns_per_candidate"`

	FlatAllocsPerCandidate      float64 `json:"flat_allocs_per_candidate"`
	ReferenceAllocsPerCandidate float64 `json:"reference_allocs_per_candidate"`
	FlatBytesPerCandidate       float64 `json:"flat_bytes_per_candidate"`
	ReferenceBytesPerCandidate  float64 `json:"reference_bytes_per_candidate"`

	// AllocReduction is reference allocs-per-candidate over flat
	// allocs-per-candidate. The flat denominator is floored at 0.001
	// allocs per candidate so a fully allocation-free steady state yields
	// a large finite factor instead of +Inf (see hotpathRatio).
	AllocReduction float64 `json:"alloc_reduction_factor"`
}

// measuredRun is one arm's averaged measurement.
type measuredRun struct {
	ms         float64
	allocs     float64
	bytes      float64
	considered int
}

// measure runs fn repeats times, averaging wall-clock time and heap
// allocation deltas (mallocs and bytes) around the calls. The allocation
// counters are process-global, so hot-path benchmarks must run without
// concurrent background work; the experiment driver is sequential.
func measure(repeats int, fn func() (core.Stats, error)) (measuredRun, error) {
	var out measuredRun
	var ms runtime.MemStats
	for i := 0; i < repeats; i++ {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		mallocs, bytes := ms.Mallocs, ms.TotalAlloc
		start := time.Now()
		st, err := fn()
		if err != nil {
			return out, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		out.ms += float64(elapsed) / float64(time.Millisecond) / float64(repeats)
		out.allocs += float64(ms.Mallocs-mallocs) / float64(repeats)
		out.bytes += float64(ms.TotalAlloc-bytes) / float64(repeats)
		out.considered = st.Considered
	}
	return out, nil
}

// hotpathRatio guards the reduction factor against a (near-)zero
// denominator: the flat engine's steady-state candidate loop allocates
// nothing, so the denominator is floored at 0.001 allocs per candidate.
func hotpathRatio(ref, flat float64) float64 {
	if flat < 1e-3 {
		flat = 1e-3
	}
	return ref / flat
}

// Hotpath measures the allocation-free hot path against the pre-refactor
// reference engine. Both arms run sequentially (Workers=1) so per-run
// allocation deltas are attributable, and both search the identical plan
// space — the candidate counts are recorded to prove it.
func Hotpath(spec HotpathSpec) ([]HotpathPoint, error) {
	spec = spec.withDefaults()
	var out []HotpathPoint
	for _, n := range spec.Tables {
		for _, k := range spec.ObjectiveCounts {
			_, q, err := synthetic.Build(synthetic.Spec{
				Shape:   spec.Shape,
				Tables:  n,
				MaxRows: spec.MaxRows,
				Seed:    spec.Seed,
			})
			if err != nil {
				return nil, err
			}
			m := costmodel.NewDefault(q)
			objs := hotpathObjectives(k)
			w := objective.UniformWeights(objs)
			opts := core.Options{Objectives: objs, Workers: 1}

			arms := []struct {
				algo string
				flat func() (core.Stats, error)
				ref  func() (core.Stats, error)
			}{
				{
					algo: "exa",
					flat: func() (core.Stats, error) {
						r, err := core.EXA(m, w, objective.NoBounds(), opts)
						return r.Stats, err
					},
					ref: func() (core.Stats, error) {
						r, err := core.ReferenceEXA(m, w, objective.NoBounds(), opts)
						return r.Stats, err
					},
				},
				{
					algo: "rta",
					flat: func() (core.Stats, error) {
						o := opts
						o.Alpha = spec.Alpha
						r, err := core.RTA(m, w, o)
						return r.Stats, err
					},
					ref: func() (core.Stats, error) {
						o := opts
						o.Alpha = spec.Alpha
						r, err := core.ReferenceRTA(m, w, o)
						return r.Stats, err
					},
				},
			}
			for _, arm := range arms {
				if arm.algo == "exa" && n > spec.MaxEXATables {
					continue
				}
				flat, err := measure(spec.Repeats, arm.flat)
				if err != nil {
					return nil, err
				}
				ref, err := measure(spec.Repeats, arm.ref)
				if err != nil {
					return nil, err
				}
				if flat.considered != ref.considered {
					return nil, fmt.Errorf("bench: hotpath arms diverged: flat considered %d, reference %d (n=%d k=%d %s)",
						flat.considered, ref.considered, n, k, arm.algo)
				}
				cand := float64(flat.considered)
				if cand == 0 {
					cand = 1
				}
				pt := HotpathPoint{
					Shape:      spec.Shape.String(),
					Tables:     n,
					Objectives: k,
					Algorithm:  arm.algo,
					Considered: flat.considered,

					FlatMs:      flat.ms,
					ReferenceMs: ref.ms,

					FlatNsPerCandidate:      flat.ms * 1e6 / cand,
					ReferenceNsPerCandidate: ref.ms * 1e6 / cand,

					FlatAllocsPerCandidate:      flat.allocs / cand,
					ReferenceAllocsPerCandidate: ref.allocs / cand,
					FlatBytesPerCandidate:       flat.bytes / cand,
					ReferenceBytesPerCandidate:  ref.bytes / cand,
				}
				if pt.FlatMs > 0 {
					pt.Speedup = pt.ReferenceMs / pt.FlatMs
				}
				pt.AllocReduction = hotpathRatio(pt.ReferenceAllocsPerCandidate, pt.FlatAllocsPerCandidate)
				out = append(out, pt)
			}
		}
	}
	return out, nil
}

// RenderHotpath renders the hot-path measurements as a text table.
func RenderHotpath(pts []HotpathPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %3s %5s %5s %10s %10s %8s %12s %12s %10s\n",
		"shape", "n", "objs", "algo", "ref (ms)", "flat (ms)", "speedup", "ref alloc/c", "flat alloc/c", "alloc red.")
	for _, p := range pts {
		fmt.Fprintf(&b, "%6s %3d %5d %5s %10.2f %10.2f %7.2fx %12.2f %12.4f %9.0fx\n",
			p.Shape, p.Tables, p.Objectives, p.Algorithm,
			p.ReferenceMs, p.FlatMs, p.Speedup,
			p.ReferenceAllocsPerCandidate, p.FlatAllocsPerCandidate, p.AllocReduction)
	}
	return b.String()
}

// HotpathJSON serializes the measurements as the BENCH_hotpath.json
// payload the CI pipeline archives.
func HotpathJSON(pts []HotpathPoint) ([]byte, error) {
	payload := struct {
		Benchmark string         `json:"benchmark"`
		NumCPU    int            `json:"num_cpu"`
		Points    []HotpathPoint `json:"points"`
	}{
		Benchmark: "hotpath-flat-vs-reference",
		NumCPU:    runtime.NumCPU(),
		Points:    pts,
	}
	return json.MarshalIndent(payload, "", "  ")
}
