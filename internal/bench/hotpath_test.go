package bench

import "testing"

// TestHotpathSmoke runs the hot-path comparison on a tiny configuration:
// both arms must agree on the candidate count (same plan space) and the
// points must carry consistent per-candidate numbers.
func TestHotpathSmoke(t *testing.T) {
	pts, err := Hotpath(HotpathSpec{
		Tables:          []int{4, 5},
		ObjectiveCounts: []int{2},
		Repeats:         1,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 { // 2 sizes x {exa, rta}
		t.Fatalf("got %d points, want 4", len(pts))
	}
	for _, p := range pts {
		if p.Considered <= 0 {
			t.Errorf("%+v: no candidates considered", p)
		}
		if p.FlatMs <= 0 || p.ReferenceMs <= 0 {
			t.Errorf("%+v: non-positive times", p)
		}
		if p.AllocReduction <= 0 {
			t.Errorf("%+v: non-positive alloc reduction", p)
		}
	}
	if _, err := HotpathJSON(pts); err != nil {
		t.Fatal(err)
	}
	if RenderHotpath(pts) == "" {
		t.Fatal("empty render")
	}
}

// TestHotpathEXACap: the exact arm must be skipped beyond MaxEXATables.
func TestHotpathEXACap(t *testing.T) {
	pts, err := Hotpath(HotpathSpec{
		Tables:          []int{4, 6},
		ObjectiveCounts: []int{2},
		MaxEXATables:    4,
		Repeats:         1,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Algorithm == "exa" && p.Tables > 4 {
			t.Errorf("EXA ran at %d tables despite cap 4", p.Tables)
		}
	}
}
