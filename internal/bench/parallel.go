package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"moqo/internal/core"
	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/synthetic"
)

// ParallelSpec parameterizes the engine-parallelism scaling experiment:
// the same RTA runs with Workers=1 and Workers=N, on synthetic queries
// large enough that the dynamic program dominates wall-clock time.
type ParallelSpec struct {
	// Shape of the synthetic join graph (default Chain).
	Shape synthetic.Shape
	// Tables lists the query sizes measured (default {10, 12, 14}).
	Tables []int
	// MaxRows is the maximal base-table cardinality (default 1e5).
	MaxRows float64
	// Objectives of the RTA runs (default: the three-objective set the
	// scaling experiment uses).
	Objectives objective.Set
	// Alpha is the RTA precision (default 1.5).
	Alpha float64
	// Workers is the parallel arm's worker count (default NumCPU).
	Workers int
	// Repeats averages each point over several seeds (default 3).
	Repeats int
	// Timeout per run (default 30s — generous, so both arms measure the
	// full dynamic program rather than the degraded mode).
	Timeout time.Duration
	// Seed of the synthetic workload.
	Seed int64
}

// withDefaults fills in the defaults.
func (s ParallelSpec) withDefaults() ParallelSpec {
	if len(s.Tables) == 0 {
		s.Tables = []int{10, 12, 14}
	}
	if s.MaxRows == 0 {
		s.MaxRows = 1e5
	}
	if s.Objectives.Len() == 0 {
		s.Objectives = objective.NewSet(objective.TotalTime, objective.BufferFootprint, objective.Energy)
	}
	if s.Alpha == 0 {
		s.Alpha = 1.5
	}
	if s.Workers == 0 {
		s.Workers = runtime.NumCPU()
	}
	if s.Repeats == 0 {
		s.Repeats = 3
	}
	if s.Timeout == 0 {
		s.Timeout = 30 * time.Second
	}
	return s
}

// ParallelPoint is one measured query size of the engine-parallelism
// experiment.
type ParallelPoint struct {
	Shape   string `json:"shape"`
	N       int    `json:"tables"`
	Workers int    `json:"workers"`
	// SerialMs and ParallelMs are average wall-clock optimization times
	// with Workers=1 and Workers=spec.Workers.
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	// Speedup is SerialMs / ParallelMs.
	Speedup float64 `json:"speedup"`
	// Considered plans must agree between the arms (the parallel engine
	// searches the identical plan space); both are recorded so a report
	// can show the equivalence.
	SerialConsidered   int  `json:"serial_considered"`
	ParallelConsidered int  `json:"parallel_considered"`
	TimedOut           bool `json:"timed_out"`
}

// ParallelScaling measures the wall-clock speedup of the level-
// synchronized parallel engine: for each query size it runs the RTA with
// Workers=1 and Workers=spec.Workers on identical synthetic queries and
// reports the average times of both arms. Besides the speedup itself the
// experiment double-checks the engine's determinism claim: both arms must
// consider exactly the same number of candidate plans.
func ParallelScaling(spec ParallelSpec) ([]ParallelPoint, error) {
	spec = spec.withDefaults()
	var out []ParallelPoint
	for _, n := range spec.Tables {
		pt := ParallelPoint{Shape: spec.Shape.String(), N: n, Workers: spec.Workers}
		for rep := 0; rep < spec.Repeats; rep++ {
			_, q, err := synthetic.Build(synthetic.Spec{
				Shape:   spec.Shape,
				Tables:  n,
				MaxRows: spec.MaxRows,
				Seed:    spec.Seed + int64(rep),
			})
			if err != nil {
				return nil, err
			}
			m := costmodel.NewDefault(q)
			w := objective.UniformWeights(spec.Objectives)
			opts := core.Options{
				Objectives: spec.Objectives,
				Alpha:      spec.Alpha,
				Timeout:    spec.Timeout,
			}

			opts.Workers = 1
			serial, err := core.RTA(m, w, opts)
			if err != nil {
				return nil, err
			}
			opts.Workers = spec.Workers
			parallel, err := core.RTA(m, w, opts)
			if err != nil {
				return nil, err
			}

			pt.SerialMs += float64(serial.Stats.Duration) / float64(time.Millisecond) / float64(spec.Repeats)
			pt.ParallelMs += float64(parallel.Stats.Duration) / float64(time.Millisecond) / float64(spec.Repeats)
			pt.SerialConsidered += serial.Stats.Considered
			pt.ParallelConsidered += parallel.Stats.Considered
			pt.TimedOut = pt.TimedOut || serial.Stats.TimedOut || parallel.Stats.TimedOut
		}
		if pt.ParallelMs > 0 {
			pt.Speedup = pt.SerialMs / pt.ParallelMs
		}
		out = append(out, pt)
	}
	return out, nil
}

// RenderParallel renders the engine-parallelism measurements as a text
// table.
func RenderParallel(pts []ParallelPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %3s %14s %18s %8s\n", "shape", "n", "workers=1 (ms)", "workers=N (ms)", "speedup")
	for _, p := range pts {
		mark := ""
		if p.TimedOut {
			mark = ">" // timed out: times are lower bounds
		}
		fmt.Fprintf(&b, "%8s %3d %14s %18s %7.2fx\n",
			p.Shape, p.N,
			fmt.Sprintf("%s%.2f", mark, p.SerialMs),
			fmt.Sprintf("%s%.2f (N=%d)", mark, p.ParallelMs, p.Workers),
			p.Speedup)
	}
	return b.String()
}

// ParallelJSON serializes the measurements as the BENCH_parallel.json
// payload the CI pipeline archives.
func ParallelJSON(pts []ParallelPoint) ([]byte, error) {
	payload := struct {
		Benchmark string          `json:"benchmark"`
		NumCPU    int             `json:"num_cpu"`
		Points    []ParallelPoint `json:"points"`
	}{
		Benchmark: "rta-workers-scaling",
		NumCPU:    runtime.NumCPU(),
		Points:    pts,
	}
	return json.MarshalIndent(payload, "", "  ")
}
