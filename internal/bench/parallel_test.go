package bench

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"moqo/internal/synthetic"
)

func quickParallelSpec() ParallelSpec {
	return ParallelSpec{
		Shape:   synthetic.Chain,
		Tables:  []int{6, 8},
		MaxRows: 1e4,
		Alpha:   1.5,
		Workers: 4,
		Repeats: 1,
		Timeout: 10 * time.Second,
		Seed:    11,
	}
}

func TestParallelScaling(t *testing.T) {
	pts, err := ParallelScaling(quickParallelSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, p := range pts {
		if p.Workers != 4 {
			t.Errorf("n=%d: workers = %d, want 4", p.N, p.Workers)
		}
		if p.SerialMs <= 0 || p.ParallelMs <= 0 {
			t.Errorf("n=%d: non-positive times %v / %v", p.N, p.SerialMs, p.ParallelMs)
		}
		if p.Speedup <= 0 {
			t.Errorf("n=%d: speedup %v", p.N, p.Speedup)
		}
		// Both arms search the identical plan space: the considered-plan
		// counts are the engine's determinism invariant.
		if p.SerialConsidered != p.ParallelConsidered {
			t.Errorf("n=%d: serial considered %d != parallel %d",
				p.N, p.SerialConsidered, p.ParallelConsidered)
		}
	}
}

func TestRenderParallel(t *testing.T) {
	pts := []ParallelPoint{{
		Shape: "chain", N: 12, Workers: 8,
		SerialMs: 100, ParallelMs: 25, Speedup: 4,
	}}
	out := RenderParallel(pts)
	for _, want := range []string{"chain", "12", "100.00", "25.00", "4.00x", "N=8"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestParallelJSON(t *testing.T) {
	pts, err := ParallelScaling(ParallelSpec{
		Shape: synthetic.Chain, Tables: []int{5}, MaxRows: 1e4,
		Workers: 2, Repeats: 1, Timeout: 10 * time.Second, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ParallelJSON(pts)
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Benchmark string          `json:"benchmark"`
		NumCPU    int             `json:"num_cpu"`
		Points    []ParallelPoint `json:"points"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, raw)
	}
	if payload.Benchmark != "rta-workers-scaling" || payload.NumCPU < 1 {
		t.Errorf("payload header = %q / %d", payload.Benchmark, payload.NumCPU)
	}
	if len(payload.Points) != 1 || payload.Points[0].N != 5 {
		t.Errorf("payload points = %+v", payload.Points)
	}
}
