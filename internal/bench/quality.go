package bench

import (
	"fmt"
	"strings"

	"moqo/internal/core"
	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/pareto"
	"moqo/internal/workload"
)

// QualityRow measures, for one query and one precision, how far the RTA's
// approximate Pareto frontier actually drifted from the exact frontier —
// the empirical counterpart of the Theorem 3 guarantee, and the frontier-
// level analogue of the paper's observation that measured plan quality is
// far better than the worst-case bound ("average cost overhead of below
// 1% — 100 times better than the theoretical bound").
type QualityRow struct {
	QueryNum int
	Alpha    float64
	// ExactSize and ApproxSize are the frontier cardinalities.
	ExactSize, ApproxSize int
	// CoverFactor is the smallest alpha' such that the approximate
	// frontier alpha'-covers the exact one; the guarantee is
	// CoverFactor <= Alpha.
	CoverFactor float64
	// GuaranteeHolds reports CoverFactor <= Alpha (modulo epsilon).
	GuaranteeHolds bool
}

// QualityObjectives is the objective set of the frontier-quality
// experiment (three objectives keep exact optimization tractable).
var QualityObjectives = objective.NewSet(
	objective.TotalTime, objective.BufferFootprint, objective.Energy,
)

// FrontierQuality compares RTA frontiers against exact EXA frontiers for
// the configured queries and precisions. Queries whose exact optimization
// hits the timeout are skipped (no reference frontier).
func FrontierQuality(cfg Config) ([]QualityRow, error) {
	var rows []QualityRow
	for _, qn := range cfg.queries() {
		q := workload.MustQuery(qn, cfg.catalog())
		m := costmodel.NewDefault(q)
		w := objective.UniformWeights(QualityObjectives)
		exact, err := core.EXA(m, w, objective.NoBounds(), core.Options{
			Objectives: QualityObjectives, Timeout: cfg.Timeout, Workers: cfg.EngineWorkers,
		})
		if err != nil {
			return nil, err
		}
		if exact.Stats.TimedOut {
			continue
		}
		ref := exact.Frontier.Frontier()
		for _, alpha := range cfg.Alphas {
			approx, err := core.RTA(m, w, core.Options{
				Objectives: QualityObjectives, Alpha: alpha, Timeout: cfg.Timeout, Workers: cfg.EngineWorkers,
			})
			if err != nil {
				return nil, err
			}
			cf := pareto.CoverFactor(approx.Frontier.Frontier(), ref, QualityObjectives)
			rows = append(rows, QualityRow{
				QueryNum:       qn,
				Alpha:          alpha,
				ExactSize:      len(ref),
				ApproxSize:     approx.Frontier.Len(),
				CoverFactor:    cf,
				GuaranteeHolds: cf <= alpha*(1+1e-9),
			})
		}
	}
	return rows, nil
}

// RenderQuality renders frontier-quality rows as a text table.
func RenderQuality(rows []QualityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-7s %8s %8s %12s %10s\n",
		"query", "alpha", "#exact", "#approx", "cover-factor", "guarantee")
	for _, r := range rows {
		ok := "OK"
		if !r.GuaranteeHolds {
			ok = "VIOLATED"
		}
		fmt.Fprintf(&b, "q%-4d %-7.4g %8d %8d %12.4f %10s\n",
			r.QueryNum, r.Alpha, r.ExactSize, r.ApproxSize, r.CoverFactor, ok)
	}
	return b.String()
}
