package bench

import (
	"strings"
	"testing"
	"time"
)

func TestFrontierQuality(t *testing.T) {
	cfg := quickConfig()
	cfg.Queries = []int{1, 12, 3}
	cfg.Alphas = []float64{1.25, 2}
	cfg.Timeout = 5 * time.Second
	rows, err := FrontierQuality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no quality rows (every exact run timed out?)")
	}
	byQuery := map[int]int{}
	for _, r := range rows {
		byQuery[r.QueryNum]++
		if !r.GuaranteeHolds {
			t.Errorf("q%d alpha=%v: cover factor %v exceeds guarantee",
				r.QueryNum, r.Alpha, r.CoverFactor)
		}
		if r.CoverFactor < 1 {
			t.Errorf("q%d: cover factor %v below 1", r.QueryNum, r.CoverFactor)
		}
		if r.ApproxSize > r.ExactSize {
			t.Errorf("q%d alpha=%v: approximate frontier (%d) larger than exact (%d)",
				r.QueryNum, r.Alpha, r.ApproxSize, r.ExactSize)
		}
		if r.ExactSize < 1 || r.ApproxSize < 1 {
			t.Errorf("q%d: empty frontier", r.QueryNum)
		}
	}
	// Two precisions per non-timed-out query.
	for qn, n := range byQuery {
		if n != 2 {
			t.Errorf("q%d has %d rows, want 2", qn, n)
		}
	}
}

func TestRenderQuality(t *testing.T) {
	rows := []QualityRow{
		{QueryNum: 3, Alpha: 1.5, ExactSize: 10, ApproxSize: 4, CoverFactor: 1.1, GuaranteeHolds: true},
		{QueryNum: 5, Alpha: 2, ExactSize: 20, ApproxSize: 6, CoverFactor: 3, GuaranteeHolds: false},
	}
	out := RenderQuality(rows)
	if !strings.Contains(out, "OK") || !strings.Contains(out, "VIOLATED") {
		t.Errorf("render missing statuses:\n%s", out)
	}
	if !strings.Contains(out, "q3") || !strings.Contains(out, "q5") {
		t.Errorf("render missing queries:\n%s", out)
	}
}
