package bench

import (
	"fmt"
	"sort"
	"strings"
)

// RenderRows renders Figure 5/9/10 results as an aligned text table with
// one line per (query, parameter, algorithm). paramName labels the Param
// column ("objs" for Figures 5/9, "bounds" for Figure 10).
func RenderRows(rows []Row, paramName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-7s %-7s %-10s %9s %12s %12s %9s %8s %8s %7s\n",
		"query", "tables", paramName, "algorithm", "t-out(%)", "time(ms)", "mem(KB)", "#pareto", "#iter", "wcost(%)", "b-viol")
	b.WriteString(strings.Repeat("-", 110) + "\n")
	for _, r := range rows {
		for _, c := range r.Cells {
			fmt.Fprintf(&b, "q%-4d %-7d %-7d %-10s %9.0f %12.1f %12.1f %9.1f %8.1f %8.2f %7.2f\n",
				r.QueryNum, r.NumTables, r.Param, c.Algorithm,
				c.TimeoutPct(), c.AvgTimeMs, c.AvgMemKB, c.AvgPareto, c.AvgIters, c.AvgWCostPct,
				c.AvgBoundViolations)
		}
	}
	return b.String()
}

// RowsCSV renders Figure 5/9/10 results as CSV.
func RowsCSV(rows []Row, paramName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "query,tables,%s,algorithm,timeout_pct,time_ms,mem_kb,pareto,iterations,wcost_pct,bound_violations\n", paramName)
	for _, r := range rows {
		for _, c := range r.Cells {
			fmt.Fprintf(&b, "%d,%d,%d,%s,%.1f,%.3f,%.3f,%.2f,%.2f,%.4f,%.2f\n",
				r.QueryNum, r.NumTables, r.Param, c.Algorithm,
				c.TimeoutPct(), c.AvgTimeMs, c.AvgMemKB, c.AvgPareto, c.AvgIters, c.AvgWCostPct, c.AvgBoundViolations)
		}
	}
	return b.String()
}

// RenderComplexity renders the Figure 7 curves as a text table.
func RenderComplexity(pts []ComplexityPoint) string {
	if len(pts) == 0 {
		return ""
	}
	alphas := make([]float64, 0, len(pts[0].RTA))
	for a := range pts[0].RTA {
		alphas = append(alphas, a)
	}
	sort.Float64s(alphas)
	var b strings.Builder
	fmt.Fprintf(&b, "%3s %14s", "n", "EXA")
	for _, a := range alphas {
		fmt.Fprintf(&b, " %14s", fmt.Sprintf("RTA(%.4g)", a))
	}
	fmt.Fprintf(&b, " %14s\n", "Selinger")
	for _, p := range pts {
		fmt.Fprintf(&b, "%3d %14.4g", p.N, p.EXA)
		for _, a := range alphas {
			fmt.Fprintf(&b, " %14.4g", p.RTA[a])
		}
		fmt.Fprintf(&b, " %14.4g\n", p.Selinger)
	}
	return b.String()
}

// RenderFrontier renders a Figure 4 frontier as a text table.
func RenderFrontier(r Figure4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "alpha=%.4g: %d frontier plans (time %.0fms, %d considered)\n",
		r.Alpha, len(r.Points), float64(r.Stats.Duration.Milliseconds()), r.Stats.Considered)
	fmt.Fprintf(&b, "%10s %14s %12s\n", "tuple_loss", "buffer(bytes)", "time(ms)")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10.4f %14.0f %12.2f\n", p.TupleLoss, p.Buffer, p.Time)
	}
	return b.String()
}

// FrontierCSV renders a Figure 4 frontier as CSV.
func FrontierCSV(r Figure4Result) string {
	var b strings.Builder
	b.WriteString("tuple_loss,buffer_bytes,time_ms\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%.6f,%.1f,%.4f\n", p.TupleLoss, p.Buffer, p.Time)
	}
	return b.String()
}

// RenderEvolution renders the Figure 3 plan-evolution steps.
func RenderEvolution(steps []EvolutionStep) string {
	var b strings.Builder
	for i, s := range steps {
		fmt.Fprintf(&b, "(%c) %s\n%s\n", 'a'+i, s.Description, s.PlanText)
	}
	return b.String()
}

// Scatter renders a two-dimensional ASCII scatter plot of cost vectors,
// used to visualize the running example (Figures 1-2). Marked points are
// drawn with '*', others with 'o'.
func Scatter(points, marked [][2]float64, width, height int, xLabel, yLabel string) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	maxX, maxY := 0.0, 0.0
	for _, p := range append(append([][2]float64{}, points...), marked...) {
		if p[0] > maxX {
			maxX = p[0]
		}
		if p[1] > maxY {
			maxY = p[1]
		}
	}
	if maxX == 0 {
		maxX = 1
	}
	if maxY == 0 {
		maxY = 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	put := func(p [2]float64, ch byte) {
		x := int(p[0] / maxX * float64(width-1))
		y := height - 1 - int(p[1]/maxY*float64(height-1))
		grid[y][x] = ch
	}
	for _, p := range points {
		put(p, 'o')
	}
	for _, p := range marked {
		put(p, '*')
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", yLabel)
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s\n", string(row))
	}
	fmt.Fprintf(&b, "+%s %s\n", strings.Repeat("-", width), xLabel)
	return b.String()
}
