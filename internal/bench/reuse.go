package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"moqo"
	"moqo/internal/synthetic"
)

// ReuseSpec parameterizes the frontier-reuse experiment: the serving
// latency of a weight change answered from a cached FrontierSnapshot (a
// SelectBest scan plus one plan materialization) against a cold dynamic
// program at the same weights — the paper's Figure 3 scenario (users
// iteratively re-weighting one query during plan negotiation) as served
// by moqod's frontier tier. The experiment also measures the snapshot
// serialization round trip (encode + decode), since cached snapshots may
// persist to disk or ship between replicas; the re-weight sweep is
// served from the *decoded* snapshot, so the measured fast path includes
// everything a remote replica would do after receiving one.
type ReuseSpec struct {
	// Arms lists the workloads. Defaults to TPC-H q3 and q8 plus
	// synthetic chain and star queries up to 12 tables (the ≥10-table
	// sizes are where cold DP latency makes reuse matter most).
	Arms []ReuseArm
	// Objectives of the runs (default: time, buffer footprint, energy).
	Objectives []moqo.Objective
	// Alpha is the RTA precision (default 1.5).
	Alpha float64
	// Sweeps is the number of random re-weight requests served from the
	// snapshot (default 64).
	Sweeps int
	// ColdRuns is the number of cold optimizations for the baseline
	// percentile (default 5).
	ColdRuns int
	// Workers per optimizer run (default 1).
	Workers int
	// MaxRows is the maximal synthetic base-table cardinality (1e5).
	MaxRows float64
	// Seed drives the workload and the weight sweep.
	Seed int64
}

// ReuseArm is one workload of the experiment: a TPC-H query (TPCH > 0)
// or a synthetic topology.
type ReuseArm struct {
	Name   string
	TPCH   int
	Shape  synthetic.Shape
	Tables int
}

// withDefaults fills in the defaults.
func (s ReuseSpec) withDefaults() ReuseSpec {
	if len(s.Arms) == 0 {
		s.Arms = []ReuseArm{
			{Name: "tpch-q3", TPCH: 3},
			{Name: "tpch-q8", TPCH: 8},
			{Name: "chain-10", Shape: synthetic.Chain, Tables: 10},
			{Name: "chain-12", Shape: synthetic.Chain, Tables: 12},
			{Name: "star-12", Shape: synthetic.Star, Tables: 12},
		}
	}
	if len(s.Objectives) == 0 {
		s.Objectives = []moqo.Objective{moqo.TotalTime, moqo.BufferFootprint, moqo.Energy}
	}
	if s.Alpha == 0 {
		s.Alpha = 1.5
	}
	if s.Sweeps == 0 {
		s.Sweeps = 64
	}
	if s.ColdRuns == 0 {
		s.ColdRuns = 5
	}
	if s.Workers == 0 {
		s.Workers = 1
	}
	if s.MaxRows == 0 {
		s.MaxRows = 1e5
	}
	return s
}

// ReusePoint is one measured workload of the experiment.
type ReusePoint struct {
	Workload  string  `json:"workload"`
	Tables    int     `json:"tables"`
	Algorithm string  `json:"algorithm"`
	Alpha     float64 `json:"alpha"`
	// Frontier is the snapshot's plan count; SnapshotBytes its estimated
	// in-memory size (EncodedBytes the serialized size).
	Frontier      int `json:"frontier"`
	SnapshotBytes int `json:"snapshot_bytes"`
	EncodedBytes  int `json:"encoded_bytes"`
	// ColdP50Ms is the cold full-DP latency (median over ColdRuns).
	ColdP50Ms float64 `json:"cold_p50_ms"`
	// HitP50Us/HitP99Us are frontier-hit latencies over the re-weight
	// sweep: moqo.ReoptimizeContext on the decoded snapshot.
	HitP50Us float64 `json:"hit_p50_us"`
	HitP99Us float64 `json:"hit_p99_us"`
	// EncodeUs/DecodeUs measure the serialization round trip.
	EncodeUs float64 `json:"encode_us"`
	DecodeUs float64 `json:"decode_us"`
	// Speedup is cold p50 over hit p50 — the headline metric.
	Speedup float64 `json:"speedup"`
	// Verified: one sweep was checked bit-for-bit (plan and frontier
	// JSON) against a cold run at the same weights.
	Verified bool `json:"verified"`
}

// ReuseScaling measures the frontier-reuse serving path across the
// spec's workloads. Each workload runs RTA cold (baseline percentile and
// snapshot extraction), round-trips the snapshot through the binary
// format, then serves a random re-weight sweep from the decoded
// snapshot, verifying one sweep bit-for-bit against a cold run.
func ReuseScaling(spec ReuseSpec) ([]ReusePoint, error) {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	var out []ReusePoint
	for _, arm := range spec.Arms {
		pt, err := reuseArm(spec, arm, rng)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", arm.Name, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// reuseArm measures one workload.
func reuseArm(spec ReuseSpec, arm ReuseArm, rng *rand.Rand) (ReusePoint, error) {
	var q *moqo.Query
	switch {
	case arm.TPCH > 0:
		cat := moqo.TPCHCatalog(1)
		var err error
		q, err = moqo.TPCHQuery(arm.TPCH, cat)
		if err != nil {
			return ReusePoint{}, err
		}
	default:
		_, sq, err := synthetic.Build(synthetic.Spec{
			Shape:   arm.Shape,
			Tables:  arm.Tables,
			MaxRows: spec.MaxRows,
			Seed:    spec.Seed,
		})
		if err != nil {
			return ReusePoint{}, err
		}
		q = sq
	}

	weights := func() map[moqo.Objective]float64 {
		w := make(map[moqo.Objective]float64, len(spec.Objectives))
		for _, o := range spec.Objectives {
			w[o] = 0.05 + rng.Float64()
		}
		return w
	}
	request := func(w map[moqo.Objective]float64) moqo.Request {
		return moqo.Request{
			Query:      q,
			Algorithm:  moqo.AlgoRTA,
			Alpha:      spec.Alpha,
			Objectives: spec.Objectives,
			Weights:    w,
			Workers:    spec.Workers,
		}
	}

	pt := ReusePoint{
		Workload:  arm.Name,
		Tables:    q.NumRelations(),
		Algorithm: moqo.AlgoRTA.String(),
		Alpha:     spec.Alpha,
	}

	// Cold baseline: full DP at fresh weights each run.
	cold := make([]float64, spec.ColdRuns)
	for i := range cold {
		start := time.Now()
		if _, err := moqo.Optimize(request(weights())); err != nil {
			return ReusePoint{}, err
		}
		cold[i] = float64(time.Since(start)) / float64(time.Millisecond)
	}
	sort.Float64s(cold)
	pt.ColdP50Ms = cold[len(cold)/2]

	// Snapshot extraction and serialization round trip.
	_, snap, err := moqo.OptimizeSnapshot(request(weights()))
	if err != nil {
		return ReusePoint{}, err
	}
	if snap == nil {
		return ReusePoint{}, fmt.Errorf("no frontier snapshot extracted")
	}
	pt.Frontier = snap.Len()
	pt.SnapshotBytes = snap.SizeBytes()
	start := time.Now()
	encoded, err := snap.MarshalBinary()
	pt.EncodeUs = float64(time.Since(start)) / float64(time.Microsecond)
	if err != nil {
		return ReusePoint{}, err
	}
	pt.EncodedBytes = len(encoded)
	start = time.Now()
	decoded, err := moqo.UnmarshalFrontierSnapshot(encoded)
	pt.DecodeUs = float64(time.Since(start)) / float64(time.Microsecond)
	if err != nil {
		return ReusePoint{}, err
	}

	// Re-weight sweep served from the decoded snapshot.
	hits := make([]float64, spec.Sweeps)
	for i := range hits {
		req := request(weights())
		start := time.Now()
		res, _, err := moqo.Reoptimize(req, decoded)
		hits[i] = float64(time.Since(start)) / float64(time.Microsecond)
		if err != nil {
			return ReusePoint{}, err
		}
		if i == 0 {
			// One sweep is verified bit-for-bit against a cold run.
			coldRes, err := moqo.Optimize(req)
			if err != nil {
				return ReusePoint{}, err
			}
			same, err := sameAnswer(res, coldRes)
			if err != nil {
				return ReusePoint{}, err
			}
			if !same {
				return ReusePoint{}, fmt.Errorf("frontier-hit answer differs from cold DP")
			}
			pt.Verified = true
		}
	}
	sort.Float64s(hits)
	pt.HitP50Us = hits[len(hits)/2]
	pt.HitP99Us = hits[int(float64(len(hits))*0.99)]
	if pt.HitP50Us > 0 {
		pt.Speedup = pt.ColdP50Ms * 1000 / pt.HitP50Us
	}
	return pt, nil
}

// sameAnswer compares two results bit-for-bit on plan and frontier.
func sameAnswer(a, b *moqo.Result) (bool, error) {
	aj, err := a.PlanJSON()
	if err != nil {
		return false, err
	}
	bj, err := b.PlanJSON()
	if err != nil {
		return false, err
	}
	if !bytes.Equal(aj, bj) {
		return false, nil
	}
	av, bv := a.FrontierVectors(), b.FrontierVectors()
	if len(av) != len(bv) {
		return false, nil
	}
	for i := range av {
		if av[i] != bv[i] {
			return false, nil
		}
	}
	return true, nil
}

// RenderReuse renders the reuse measurements as a text table.
func RenderReuse(pts []ReusePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %3s %9s %12s %12s %12s %9s %9s %7s\n",
		"workload", "n", "frontier", "cold p50", "hit p50", "hit p99", "enc", "dec", "speedup")
	for _, p := range pts {
		fmt.Fprintf(&b, "%10s %3d %9d %10.2fms %10.1fus %10.1fus %7.1fus %7.1fus %6.0fx\n",
			p.Workload, p.Tables, p.Frontier, p.ColdP50Ms, p.HitP50Us, p.HitP99Us,
			p.EncodeUs, p.DecodeUs, p.Speedup)
	}
	return b.String()
}

// ReuseJSON serializes the measurements as the BENCH_reuse.json payload
// the CI pipeline archives (and the README serving-latency table cites).
func ReuseJSON(pts []ReusePoint) ([]byte, error) {
	payload := struct {
		Benchmark string       `json:"benchmark"`
		NumCPU    int          `json:"num_cpu"`
		Points    []ReusePoint `json:"points"`
	}{
		Benchmark: "frontier-reuse-scaling",
		NumCPU:    runtime.NumCPU(),
		Points:    pts,
	}
	return json.MarshalIndent(payload, "", "  ")
}
