package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"moqo/internal/synthetic"
)

// smallReuseSpec keeps the experiment harness test fast.
func smallReuseSpec() ReuseSpec {
	return ReuseSpec{
		Arms: []ReuseArm{
			{Name: "tpch-q3", TPCH: 3},
			{Name: "chain-8", Shape: synthetic.Chain, Tables: 8},
		},
		Sweeps:   8,
		ColdRuns: 3,
		Seed:     1,
	}
}

func TestReuseScaling(t *testing.T) {
	pts, err := ReuseScaling(smallReuseSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, p := range pts {
		if !p.Verified {
			t.Errorf("%s: frontier-hit answer was not verified against a cold run", p.Workload)
		}
		if p.Frontier == 0 {
			t.Errorf("%s: empty frontier", p.Workload)
		}
		if p.EncodedBytes == 0 {
			t.Errorf("%s: empty serialization", p.Workload)
		}
		if p.HitP50Us <= 0 || p.ColdP50Ms <= 0 {
			t.Errorf("%s: degenerate latencies: cold %.3fms hit %.1fus", p.Workload, p.ColdP50Ms, p.HitP50Us)
		}
		if p.Speedup <= 1 {
			t.Errorf("%s: frontier hit not faster than cold DP (%.1fx)", p.Workload, p.Speedup)
		}
	}
}

func TestReuseRenderAndJSON(t *testing.T) {
	pts, err := ReuseScaling(smallReuseSpec())
	if err != nil {
		t.Fatal(err)
	}
	table := RenderReuse(pts)
	if !strings.Contains(table, "speedup") || !strings.Contains(table, "tpch-q3") {
		t.Errorf("render missing columns:\n%s", table)
	}
	raw, err := ReuseJSON(pts)
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Benchmark string       `json:"benchmark"`
		Points    []ReusePoint `json:"points"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Benchmark != "frontier-reuse-scaling" || len(payload.Points) != 2 {
		t.Errorf("unexpected payload: %s", raw)
	}
}
