package bench

import (
	"fmt"
	"strings"
	"time"

	"moqo/internal/core"
	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/synthetic"
	"moqo/internal/workload"
)

// ScalingPoint is one measured x-position of the empirical scaling
// experiment: wall-clock optimization time per algorithm for joining n
// tables.
type ScalingPoint struct {
	N int
	// TimeMs maps algorithm name to average optimization time.
	TimeMs map[string]float64
	// TimedOut maps algorithm name to whether any run hit the timeout
	// (its time is then a lower bound, as in the paper's figures).
	TimedOut map[string]bool
	// Pareto maps algorithm name to the average final frontier size.
	Pareto map[string]float64
}

// ScalingSpec parameterizes the empirical scaling experiment.
type ScalingSpec struct {
	// Shape of the synthetic join graph (default Chain).
	Shape synthetic.Shape
	// MinTables and MaxTables bound the x-axis (defaults 2 and 7).
	MinTables, MaxTables int
	// MaxRows is the maximal base-table cardinality m (default 1e5).
	MaxRows float64
	// Objectives used by the multi-objective algorithms (default: a
	// three-objective set, matching Figure 7's l = 3).
	Objectives objective.Set
	// Alphas are the RTA precisions (default {1.05, 1.5}, as Figure 7).
	Alphas []float64
	// Repeats averages each point over several seeds (default 3).
	Repeats int
	// Timeout per run.
	Timeout time.Duration
	// Seed of the synthetic workload.
	Seed int64
	// Workers shards each optimizer run's dynamic program across this
	// many goroutines (core.Options.Workers). 0 or 1 = sequential.
	Workers int
}

// withDefaults fills in the Figure 7 defaults.
func (s ScalingSpec) withDefaults() ScalingSpec {
	if s.MinTables == 0 {
		s.MinTables = 2
	}
	if s.MaxTables == 0 {
		s.MaxTables = 7
	}
	if s.MaxRows == 0 {
		s.MaxRows = 1e5
	}
	if s.Objectives.Len() == 0 {
		s.Objectives = objective.NewSet(objective.TotalTime, objective.BufferFootprint, objective.Energy)
	}
	if len(s.Alphas) == 0 {
		s.Alphas = []float64{1.05, 1.5}
	}
	if s.Repeats == 0 {
		s.Repeats = 3
	}
	if s.Timeout == 0 {
		s.Timeout = 2 * time.Second
	}
	return s
}

// Scaling measures optimization time against the number of joined tables
// for the EXA, the RTA at the spec's precisions, and the single-objective
// Selinger baseline, on synthetic queries — the empirical counterpart of
// the paper's analytic Figure 7. The qualitative expectations are that
// Selinger stays negligible, the RTA grows like the single-objective
// algorithm times a polynomial factor, and the EXA leaves both behind
// (hitting the timeout first).
func Scaling(spec ScalingSpec) ([]ScalingPoint, error) {
	spec = spec.withDefaults()
	if spec.MinTables < 1 || spec.MaxTables < spec.MinTables {
		return nil, fmt.Errorf("bench: bad scaling range [%d, %d]", spec.MinTables, spec.MaxTables)
	}
	var out []ScalingPoint
	for n := spec.MinTables; n <= spec.MaxTables; n++ {
		pt := ScalingPoint{
			N:        n,
			TimeMs:   map[string]float64{},
			TimedOut: map[string]bool{},
			Pareto:   map[string]float64{},
		}
		for rep := 0; rep < spec.Repeats; rep++ {
			_, q, err := synthetic.Build(synthetic.Spec{
				Shape:   spec.Shape,
				Tables:  n,
				MaxRows: spec.MaxRows,
				Seed:    spec.Seed + int64(rep),
			})
			if err != nil {
				return nil, err
			}
			m := costmodel.NewDefault(q)
			w := objective.UniformWeights(spec.Objectives)
			opts := core.Options{Objectives: spec.Objectives, Timeout: spec.Timeout, Workers: spec.Workers}

			record := func(name string, res core.Result, err error) error {
				if err != nil {
					return err
				}
				pt.TimeMs[name] += float64(res.Stats.Duration) / float64(time.Millisecond) / float64(spec.Repeats)
				pt.TimedOut[name] = pt.TimedOut[name] || res.Stats.TimedOut
				pt.Pareto[name] += float64(res.Frontier.Len()) / float64(spec.Repeats)
				return nil
			}

			res, err := core.EXA(m, w, objective.NoBounds(), opts)
			if err := record("EXA", res, err); err != nil {
				return nil, err
			}
			for _, alpha := range spec.Alphas {
				ro := opts
				ro.Alpha = alpha
				res, err := core.RTA(m, w, ro)
				if err := record(fmt.Sprintf("RTA(%.4g)", alpha), res, err); err != nil {
					return nil, err
				}
			}
			res, err = core.Selinger(m, objective.TotalTime, opts)
			if err := record("Selinger", res, err); err != nil {
				return nil, err
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// RenderScaling renders scaling measurements as a text table. Algorithm
// columns follow the order of the spec that produced the points.
func RenderScaling(pts []ScalingPoint, spec ScalingSpec) string {
	spec = spec.withDefaults()
	names := []string{"EXA"}
	for _, a := range spec.Alphas {
		names = append(names, fmt.Sprintf("RTA(%.4g)", a))
	}
	names = append(names, "Selinger")

	var b strings.Builder
	fmt.Fprintf(&b, "%3s", "n")
	for _, n := range names {
		fmt.Fprintf(&b, " %16s", n+" (ms)")
	}
	b.WriteString("\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%3d", p.N)
		for _, n := range names {
			mark := ""
			if p.TimedOut[n] {
				mark = ">" // timed out: lower bound
			}
			fmt.Fprintf(&b, " %16s", fmt.Sprintf("%s%.2f", mark, p.TimeMs[n]))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ScalingTPCHReference returns, for context in reports, the paper-order
// TPC-H query numbers with their table counts — useful when relating the
// synthetic x-axis to the TPC-H x-axis of Figures 5/9/10.
func ScalingTPCHReference(cfg Config) map[int]int {
	cat := cfg.catalog()
	out := make(map[int]int, workload.NumQueries)
	for _, qn := range workload.PaperOrder {
		out[qn] = workload.MustQuery(qn, cat).NumRelations()
	}
	return out
}
