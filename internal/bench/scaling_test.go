package bench

import (
	"strings"
	"testing"
	"time"

	"moqo/internal/synthetic"
)

func quickScalingSpec() ScalingSpec {
	return ScalingSpec{
		Shape:     synthetic.Chain,
		MinTables: 2,
		MaxTables: 4,
		MaxRows:   1e4,
		Alphas:    []float64{1.5},
		Repeats:   1,
		Timeout:   2 * time.Second,
		Seed:      11,
	}
}

func TestScaling(t *testing.T) {
	spec := quickScalingSpec()
	pts, err := Scaling(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3 (n=2..4)", len(pts))
	}
	for _, p := range pts {
		for _, name := range []string{"EXA", "RTA(1.5)", "Selinger"} {
			if _, ok := p.TimeMs[name]; !ok {
				t.Fatalf("n=%d: missing algorithm %q", p.N, name)
			}
			if p.TimeMs[name] < 0 {
				t.Errorf("n=%d %s: negative time", p.N, name)
			}
		}
		// The exact Pareto set is at least as large as the approximate
		// one, and the single-objective DP keeps exactly one plan.
		if !p.TimedOut["EXA"] && p.Pareto["EXA"] < p.Pareto["RTA(1.5)"] {
			t.Errorf("n=%d: EXA frontier %v smaller than RTA's %v", p.N, p.Pareto["EXA"], p.Pareto["RTA(1.5)"])
		}
		if p.Pareto["Selinger"] != 1 {
			t.Errorf("n=%d: Selinger frontier %v, want 1", p.N, p.Pareto["Selinger"])
		}
	}
	// At the largest n, multi-objective optimization must cost more than
	// the single-objective baseline.
	last := pts[len(pts)-1]
	if last.TimeMs["EXA"] < last.TimeMs["Selinger"] {
		t.Errorf("n=%d: EXA (%vms) cheaper than Selinger (%vms)", last.N,
			last.TimeMs["EXA"], last.TimeMs["Selinger"])
	}
}

func TestScalingErrors(t *testing.T) {
	if _, err := Scaling(ScalingSpec{MinTables: 5, MaxTables: 3}); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestRenderScaling(t *testing.T) {
	spec := quickScalingSpec()
	pts := []ScalingPoint{
		{
			N:        2,
			TimeMs:   map[string]float64{"EXA": 1.5, "RTA(1.5)": 0.5, "Selinger": 0.1},
			TimedOut: map[string]bool{"EXA": true},
			Pareto:   map[string]float64{},
		},
	}
	out := RenderScaling(pts, spec)
	for _, want := range []string{"EXA", "RTA(1.5)", "Selinger", ">1.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestScalingTPCHReference(t *testing.T) {
	ref := ScalingTPCHReference(DefaultConfig())
	if len(ref) != 22 {
		t.Fatalf("got %d entries", len(ref))
	}
	if ref[8] != 8 || ref[1] != 1 {
		t.Errorf("q8=%d q1=%d, want 8 and 1", ref[8], ref[1])
	}
}
