package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"moqo/internal/server"
)

// ServerSpec parameterizes the moqod closed-loop load experiment: C
// concurrent clients issue back-to-back /optimize requests against an
// in-process service instance, at a controlled cache-hit ratio, and the
// experiment reports client-side throughput and latency percentiles.
//
// The hit ratio is controlled by the workload mix: a pool of Variants
// distinct requests is warmed into the cache up front, and each
// measurement request draws a warm variant with probability TargetHit (a
// guaranteed hit) or invents a fresh weight vector otherwise (a guaranteed
// miss) — the paper's multi-user scenario of recurring query shapes under
// drifting preferences.
type ServerSpec struct {
	// Concurrency lists the measured client counts (default {1, 4, 8}).
	Concurrency []int
	// TargetHits lists the measured cache-hit fractions in [0,1]
	// (default {0, 0.95}).
	TargetHits []float64
	// RequestsPerClient is the closed-loop request count per client
	// (default 40).
	RequestsPerClient int
	// Variants is the warm-pool size (default 8).
	Variants int
	// TPCHQuery is the recurring query shape (default 3).
	TPCHQuery int
	// Alpha is the RTA precision of every request (default 1.5).
	Alpha float64
	// Seed drives the per-client workload draws.
	Seed int64
}

// withDefaults fills in the defaults.
func (s ServerSpec) withDefaults() ServerSpec {
	if len(s.Concurrency) == 0 {
		s.Concurrency = []int{1, 4, 8}
	}
	if len(s.TargetHits) == 0 {
		s.TargetHits = []float64{0, 0.95}
	}
	if s.RequestsPerClient == 0 {
		s.RequestsPerClient = 40
	}
	if s.Variants == 0 {
		s.Variants = 8
	}
	if s.TPCHQuery == 0 {
		s.TPCHQuery = 3
	}
	if s.Alpha == 0 {
		s.Alpha = 1.5
	}
	return s
}

// ServerPoint is one measured (concurrency, target hit ratio) cell.
type ServerPoint struct {
	Concurrency  int     `json:"concurrency"`
	TargetHitPct float64 `json:"target_hit_pct"`
	// Requests and Errors count the measurement phase (warmup excluded).
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	// HitPct is the server-measured cache-hit percentage over the
	// measurement phase (hits + coalesced waits, from /metrics deltas).
	HitPct float64 `json:"hit_pct"`
	// ThroughputRPS is completed requests per wall-clock second.
	ThroughputRPS float64 `json:"throughput_rps"`
	// Client-side latency statistics in milliseconds.
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// ServerLoad runs the closed-loop load experiment. Every cell gets a
// fresh in-process service (clean cache and counters) exercised over real
// HTTP on the loopback interface.
func ServerLoad(spec ServerSpec) ([]ServerPoint, error) {
	spec = spec.withDefaults()
	var out []ServerPoint
	for _, conc := range spec.Concurrency {
		for _, target := range spec.TargetHits {
			pt, err := serverLoadCell(spec, conc, target)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// requestBody renders the workload request for one weight variant.
func (s ServerSpec) requestBody(bufferWeight float64) string {
	return fmt.Sprintf(`{
		"tpch": %d,
		"alpha": %g,
		"objectives": ["total_time", "buffer_footprint", "energy"],
		"weights": {"total_time": 1, "buffer_footprint": %.9f}
	}`, s.TPCHQuery, s.Alpha, bufferWeight)
}

// serverLoadCell measures one (concurrency, target) cell.
func serverLoadCell(spec ServerSpec, conc int, target float64) (ServerPoint, error) {
	svc := httptest.NewServer(server.New(server.Options{}).Handler())
	defer svc.Close()
	client := svc.Client()

	post := func(body string) (int, error) {
		res, err := client.Post(svc.URL+"/optimize", "application/json", bytes.NewBufferString(body))
		if err != nil {
			return 0, err
		}
		defer res.Body.Close()
		var sink json.RawMessage
		if err := json.NewDecoder(res.Body).Decode(&sink); err != nil {
			return 0, err
		}
		return res.StatusCode, nil
	}

	// Warm the variant pool: one miss per variant, outside the
	// measurement.
	for k := 0; k < spec.Variants; k++ {
		if status, err := post(spec.requestBody(warmWeight(k))); err != nil || status != http.StatusOK {
			return ServerPoint{}, fmt.Errorf("bench: warmup variant %d: status %d, err %v", k, status, err)
		}
	}
	before, err := fetchCacheMetrics(client, svc.URL)
	if err != nil {
		return ServerPoint{}, err
	}

	// Closed loop: conc clients issue back-to-back requests.
	var (
		fresh   atomic.Int64 // distinct weights for guaranteed misses
		errs    atomic.Int64
		latMu   sync.Mutex
		latency []float64
	)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(spec.Seed + int64(c)*7919))
			for i := 0; i < spec.RequestsPerClient; i++ {
				var weight float64
				if rng.Float64() < target {
					weight = warmWeight(rng.Intn(spec.Variants))
				} else {
					weight = missWeight(fresh.Add(1))
				}
				reqStart := time.Now()
				status, err := post(spec.requestBody(weight))
				ms := float64(time.Since(reqStart)) / float64(time.Millisecond)
				if err != nil || status != http.StatusOK {
					errs.Add(1)
					continue
				}
				latMu.Lock()
				latency = append(latency, ms)
				latMu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	after, err := fetchCacheMetrics(client, svc.URL)
	if err != nil {
		return ServerPoint{}, err
	}

	pt := ServerPoint{
		Concurrency:  conc,
		TargetHitPct: 100 * target,
		Requests:     conc * spec.RequestsPerClient,
		Errors:       int(errs.Load()),
	}
	lookups := (after.Hits + after.Coalesced + after.Misses) - (before.Hits + before.Coalesced + before.Misses)
	if lookups > 0 {
		pt.HitPct = 100 * float64((after.Hits+after.Coalesced)-(before.Hits+before.Coalesced)) / float64(lookups)
	}
	if wall > 0 {
		pt.ThroughputRPS = float64(len(latency)) / wall.Seconds()
	}
	if len(latency) > 0 {
		sum := 0.0
		for _, ms := range latency {
			sum += ms
		}
		pt.MeanMs = sum / float64(len(latency))
		sort.Float64s(latency)
		pt.P50Ms = server.Percentile(latency, 0.50)
		pt.P99Ms = server.Percentile(latency, 0.99)
	}
	return pt, nil
}

// warmWeight is the buffer-footprint weight of warm-pool variant k.
func warmWeight(k int) float64 { return 0.001 * float64(k+1) }

// missWeight is a weight no warm variant (and no earlier miss) ever used,
// guaranteeing a distinct cache key.
func missWeight(n int64) float64 { return 1000 + 0.001*float64(n) }

// fetchCacheMetrics reads the cache counters from /metrics.
func fetchCacheMetrics(client *http.Client, base string) (server.CacheMetrics, error) {
	res, err := client.Get(base + "/metrics")
	if err != nil {
		return server.CacheMetrics{}, err
	}
	defer res.Body.Close()
	var m server.MetricsResponse
	if err := json.NewDecoder(res.Body).Decode(&m); err != nil {
		return server.CacheMetrics{}, err
	}
	return m.Cache, nil
}

// RenderServerLoad renders the load measurements as a text table.
func RenderServerLoad(pts []ServerPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5s %10s %8s %8s %10s %9s %9s %9s\n",
		"conc", "target-hit", "requests", "hit%", "thru (r/s)", "mean (ms)", "p50 (ms)", "p99 (ms)")
	for _, p := range pts {
		fmt.Fprintf(&b, "%5d %9.0f%% %8d %7.1f%% %10.1f %9.2f %9.2f %9.2f\n",
			p.Concurrency, p.TargetHitPct, p.Requests, p.HitPct,
			p.ThroughputRPS, p.MeanMs, p.P50Ms, p.P99Ms)
	}
	return b.String()
}

// ServerLoadJSON serializes the measurements as the BENCH_server.json
// payload the CI pipeline archives.
func ServerLoadJSON(pts []ServerPoint) ([]byte, error) {
	payload := struct {
		Benchmark string        `json:"benchmark"`
		NumCPU    int           `json:"num_cpu"`
		Points    []ServerPoint `json:"points"`
	}{
		Benchmark: "moqod-closed-loop",
		NumCPU:    runtime.NumCPU(),
		Points:    pts,
	}
	return json.MarshalIndent(payload, "", "  ")
}
