package bench

import (
	"encoding/json"
	"testing"
)

// TestServerLoadSmoke: a scaled-down closed-loop run produces plausible
// measurements — every requested cell, no errors, hit ratios tracking the
// targets, and a valid JSON payload.
func TestServerLoadSmoke(t *testing.T) {
	spec := ServerSpec{
		Concurrency:       []int{1, 2, 4},
		TargetHits:        []float64{0, 0.95},
		RequestsPerClient: 12,
		Variants:          4,
		Seed:              1,
	}
	pts, err := ServerLoad(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6 (3 concurrency x 2 hit targets)", len(pts))
	}
	for _, p := range pts {
		if p.Errors > 0 {
			t.Errorf("cell conc=%d target=%.0f%%: %d errors", p.Concurrency, p.TargetHitPct, p.Errors)
		}
		if p.ThroughputRPS <= 0 || p.P50Ms <= 0 || p.P99Ms < p.P50Ms {
			t.Errorf("cell conc=%d target=%.0f%%: implausible stats %+v", p.Concurrency, p.TargetHitPct, p)
		}
		// The workload mix controls the hit ratio; allow sampling noise
		// around the target.
		switch p.TargetHitPct {
		case 0:
			if p.HitPct > 1 {
				t.Errorf("cell conc=%d: hit ratio %.1f%% on an all-miss workload", p.Concurrency, p.HitPct)
			}
		case 95:
			if p.HitPct < 75 {
				t.Errorf("cell conc=%d: hit ratio %.1f%%, want near 95%%", p.Concurrency, p.HitPct)
			}
		}
	}

	raw, err := ServerLoadJSON(pts)
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Benchmark string        `json:"benchmark"`
		Points    []ServerPoint `json:"points"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Benchmark != "moqod-closed-loop" || len(payload.Points) != 6 {
		t.Fatalf("bad payload: %s", raw)
	}
	if RenderServerLoad(pts) == "" {
		t.Fatal("empty render")
	}
}
