package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"moqo"
	"moqo/internal/store"
	"moqo/internal/synthetic"
)

// StoreSpec parameterizes the warm-restart experiment: the first-request
// latency of a freshly started process answering a known query shape
// from the disk-backed frontier store (store lookup + snapshot decode +
// SelectBest scan) against a cold dynamic program at the same weights —
// what a moqod restart costs per shape with and without -store. Every
// arm's snapshot is written into ONE shared store directory, and every
// measured restart re-opens that store (log replay included, reported
// separately as the open latency), so the numbers reflect a store
// holding the whole workload rather than a single pampered entry.
type StoreSpec struct {
	// Arms lists the workloads (shared with the reuse experiment).
	// Defaults to TPC-H q3 and q8 plus synthetic chain and star queries
	// up to 12 tables.
	Arms []ReuseArm
	// Objectives of the runs (default: time, buffer footprint, energy).
	Objectives []moqo.Objective
	// Alpha is the RTA precision (default 1.5).
	Alpha float64
	// ColdRuns is the number of cold optimizations for the baseline
	// percentile (default 5).
	ColdRuns int
	// WarmRuns is the number of measured restart cycles per arm — each
	// one re-opens the store and serves one first request (default 16).
	WarmRuns int
	// Workers per optimizer run (default 1).
	Workers int
	// MaxRows is the maximal synthetic base-table cardinality (1e5).
	MaxRows float64
	// Seed drives the workload and the weight draws.
	Seed int64
}

// withDefaults fills in the defaults.
func (s StoreSpec) withDefaults() StoreSpec {
	if len(s.Arms) == 0 {
		s.Arms = []ReuseArm{
			{Name: "tpch-q3", TPCH: 3},
			{Name: "tpch-q8", TPCH: 8},
			{Name: "chain-10", Shape: synthetic.Chain, Tables: 10},
			{Name: "chain-12", Shape: synthetic.Chain, Tables: 12},
			{Name: "star-12", Shape: synthetic.Star, Tables: 12},
		}
	}
	if len(s.Objectives) == 0 {
		s.Objectives = []moqo.Objective{moqo.TotalTime, moqo.BufferFootprint, moqo.Energy}
	}
	if s.Alpha == 0 {
		s.Alpha = 1.5
	}
	if s.ColdRuns == 0 {
		s.ColdRuns = 5
	}
	if s.WarmRuns == 0 {
		s.WarmRuns = 16
	}
	if s.Workers == 0 {
		s.Workers = 1
	}
	if s.MaxRows == 0 {
		s.MaxRows = 1e5
	}
	return s
}

// StorePoint is one measured workload of the experiment.
type StorePoint struct {
	Workload  string  `json:"workload"`
	Tables    int     `json:"tables"`
	Algorithm string  `json:"algorithm"`
	Alpha     float64 `json:"alpha"`
	// Frontier is the snapshot's plan count; EncodedBytes the size of
	// its record payload in the store.
	Frontier     int `json:"frontier"`
	EncodedBytes int `json:"encoded_bytes"`
	// ColdP50Ms is the cold full-DP latency (median over ColdRuns) — what
	// the first request costs a restarted server WITHOUT the store.
	ColdP50Ms float64 `json:"cold_p50_ms"`
	// OpenP50Us is the store-open latency (segment replay over the whole
	// workload's entries), paid once per restart, not per request.
	OpenP50Us float64 `json:"open_p50_us"`
	// FirstP50Us/FirstP99Us are warm first-request latencies over the
	// restart cycles: store lookup + snapshot decode + moqo.Reoptimize.
	FirstP50Us float64 `json:"first_request_p50_us"`
	FirstP99Us float64 `json:"first_request_p99_us"`
	// Speedup is cold p50 over warm first-request p50 — the headline
	// warm-restart metric.
	Speedup float64 `json:"speedup"`
	// Verified: one warm first request was checked bit-for-bit (plan and
	// frontier) against a cold run at the same weights.
	Verified bool `json:"verified"`
}

// StoreSummary describes the shared store after all arms wrote through.
type StoreSummary struct {
	Entries   int   `json:"entries"`
	DiskBytes int64 `json:"disk_bytes"`
}

// storeArm holds one arm's prepared state between the write and restart
// phases of the experiment.
type storeArm struct {
	arm  ReuseArm
	q    *moqo.Query
	key  string
	pt   StorePoint
	cold *moqo.Result // cold run at the verification weights
	w0   map[moqo.Objective]float64
}

// StoreWarmRestart measures the warm-restart serving path. Phase one
// runs every arm cold (baseline percentile, snapshot extraction) and
// writes all snapshots through one shared store. Phase two repeatedly
// re-opens that store — a simulated process restart — and serves each
// arm's first request from disk, verifying one request per arm
// bit-for-bit against a cold run at the same weights.
func StoreWarmRestart(spec StoreSpec) ([]StorePoint, StoreSummary, error) {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	dir, err := os.MkdirTemp("", "moqo-store-bench-*")
	if err != nil {
		return nil, StoreSummary{}, err
	}
	defer os.RemoveAll(dir)

	weights := func() map[moqo.Objective]float64 {
		w := make(map[moqo.Objective]float64, len(spec.Objectives))
		for _, o := range spec.Objectives {
			w[o] = 0.05 + rng.Float64()
		}
		return w
	}
	request := func(q *moqo.Query, w map[moqo.Objective]float64) moqo.Request {
		return moqo.Request{
			Query:      q,
			Algorithm:  moqo.AlgoRTA,
			Alpha:      spec.Alpha,
			Objectives: spec.Objectives,
			Weights:    w,
			Workers:    spec.Workers,
		}
	}

	// Phase one: cold baselines, snapshot extraction, write-through.
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		return nil, StoreSummary{}, err
	}
	arms := make([]*storeArm, 0, len(spec.Arms))
	for _, arm := range spec.Arms {
		a, err := prepareStoreArm(spec, arm, st, weights, request)
		if err != nil {
			st.Close()
			return nil, StoreSummary{}, fmt.Errorf("%s: %w", arm.Name, err)
		}
		arms = append(arms, a)
	}
	sum := StoreSummary{Entries: st.Len(), DiskBytes: st.Stats().Bytes}
	if err := st.Close(); err != nil {
		return nil, StoreSummary{}, err
	}

	// Phase two: restart cycles. Each cycle re-opens the store (replaying
	// the log over every arm's entry) and serves one first request per
	// arm from disk.
	opens := make([]float64, spec.WarmRuns)
	firsts := make(map[string][]float64, len(arms))
	for cycle := 0; cycle < spec.WarmRuns; cycle++ {
		start := time.Now()
		st, err := store.Open(store.Options{Dir: dir})
		if err != nil {
			return nil, StoreSummary{}, err
		}
		opens[cycle] = float64(time.Since(start)) / float64(time.Microsecond)
		for _, a := range arms {
			// The last cycle re-serves the verification weights so one
			// measured warm answer is checked against the cold run.
			verify := cycle == spec.WarmRuns-1
			w := weights()
			if verify {
				w = a.w0
			}
			req := request(a.q, w)
			start := time.Now()
			data, ok := st.Get(a.key)
			if !ok {
				st.Close()
				return nil, StoreSummary{}, fmt.Errorf("%s: snapshot missing from the store after restart", a.arm.Name)
			}
			snap, err := moqo.UnmarshalFrontierSnapshot(data)
			if err != nil {
				st.Close()
				return nil, StoreSummary{}, fmt.Errorf("%s: decode: %w", a.arm.Name, err)
			}
			res, _, err := moqo.Reoptimize(req, snap)
			us := float64(time.Since(start)) / float64(time.Microsecond)
			if err != nil {
				st.Close()
				return nil, StoreSummary{}, fmt.Errorf("%s: reoptimize: %w", a.arm.Name, err)
			}
			firsts[a.arm.Name] = append(firsts[a.arm.Name], us)
			if verify {
				same, err := sameAnswer(res, a.cold)
				if err != nil {
					st.Close()
					return nil, StoreSummary{}, err
				}
				if !same {
					st.Close()
					return nil, StoreSummary{}, fmt.Errorf("%s: warm-restart answer differs from cold DP", a.arm.Name)
				}
				a.pt.Verified = true
			}
		}
		if err := st.Close(); err != nil {
			return nil, StoreSummary{}, err
		}
	}

	sort.Float64s(opens)
	openP50 := opens[len(opens)/2]
	out := make([]StorePoint, 0, len(arms))
	for _, a := range arms {
		lat := firsts[a.arm.Name]
		sort.Float64s(lat)
		a.pt.OpenP50Us = openP50
		a.pt.FirstP50Us = lat[len(lat)/2]
		a.pt.FirstP99Us = lat[int(float64(len(lat))*0.99)]
		if a.pt.FirstP50Us > 0 {
			a.pt.Speedup = a.pt.ColdP50Ms * 1000 / a.pt.FirstP50Us
		}
		out = append(out, a.pt)
	}
	return out, sum, nil
}

// prepareStoreArm runs one arm's cold phase: baseline percentile,
// snapshot extraction at the verification weights, write-through.
func prepareStoreArm(spec StoreSpec, arm ReuseArm, st *store.Store,
	weights func() map[moqo.Objective]float64,
	request func(*moqo.Query, map[moqo.Objective]float64) moqo.Request) (*storeArm, error) {
	var q *moqo.Query
	switch {
	case arm.TPCH > 0:
		cat := moqo.TPCHCatalog(1)
		var err error
		q, err = moqo.TPCHQuery(arm.TPCH, cat)
		if err != nil {
			return nil, err
		}
	default:
		_, sq, err := synthetic.Build(synthetic.Spec{
			Shape:   arm.Shape,
			Tables:  arm.Tables,
			MaxRows: spec.MaxRows,
			Seed:    spec.Seed,
		})
		if err != nil {
			return nil, err
		}
		q = sq
	}

	a := &storeArm{arm: arm, q: q, w0: weights()}
	a.pt = StorePoint{
		Workload:  arm.Name,
		Tables:    q.NumRelations(),
		Algorithm: moqo.AlgoRTA.String(),
		Alpha:     spec.Alpha,
	}

	cold := make([]float64, spec.ColdRuns)
	for i := range cold {
		start := time.Now()
		if _, err := moqo.Optimize(request(q, weights())); err != nil {
			return nil, err
		}
		cold[i] = float64(time.Since(start)) / float64(time.Millisecond)
	}
	sort.Float64s(cold)
	a.pt.ColdP50Ms = cold[len(cold)/2]

	res, snap, err := moqo.OptimizeSnapshot(request(q, a.w0))
	if err != nil {
		return nil, err
	}
	if snap == nil {
		return nil, fmt.Errorf("no frontier snapshot extracted")
	}
	a.cold = res
	a.key = snap.Key()
	a.pt.Frontier = snap.Len()
	data, err := snap.MarshalBinary()
	if err != nil {
		return nil, err
	}
	a.pt.EncodedBytes = len(data)
	if err := st.Put(a.key, data); err != nil {
		return nil, err
	}
	return a, nil
}

// RenderStore renders the warm-restart measurements as a text table.
func RenderStore(pts []StorePoint, sum StoreSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %3s %9s %9s %12s %12s %12s %7s\n",
		"workload", "n", "frontier", "bytes", "cold p50", "first p50", "first p99", "speedup")
	for _, p := range pts {
		fmt.Fprintf(&b, "%10s %3d %9d %9d %10.2fms %10.1fus %10.1fus %6.0fx\n",
			p.Workload, p.Tables, p.Frontier, p.EncodedBytes, p.ColdP50Ms,
			p.FirstP50Us, p.FirstP99Us, p.Speedup)
	}
	if len(pts) > 0 {
		fmt.Fprintf(&b, "store: %d entries, %d bytes on disk; open (log replay) p50 %.1fus per restart\n",
			sum.Entries, sum.DiskBytes, pts[0].OpenP50Us)
	}
	return b.String()
}

// StoreJSON serializes the measurements as the BENCH_store.json payload
// the CI pipeline archives (and the README warm-restart table cites).
func StoreJSON(pts []StorePoint, sum StoreSummary) ([]byte, error) {
	payload := struct {
		Benchmark string       `json:"benchmark"`
		NumCPU    int          `json:"num_cpu"`
		Store     StoreSummary `json:"store"`
		Points    []StorePoint `json:"points"`
	}{
		Benchmark: "frontier-store-warm-restart",
		NumCPU:    runtime.NumCPU(),
		Store:     sum,
		Points:    pts,
	}
	return json.MarshalIndent(payload, "", "  ")
}
