package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"moqo/internal/server"
	"moqo/internal/tenant"
)

// TenantSpec parameterizes the multi-tenant fairness experiment: one
// "flood" tenant hammers the service with a stream of distinct cold
// EXA dynamic programs (every request a different query shape, so
// nothing caches) while one "light" tenant lives on the frontier
// re-weight fast path of a single warmed shape. The experiment measures
// the light tenant's latency unloaded and under flood, once per
// scheduling policy:
//
//   - fair: the default weighted fair scheduler gates only cold dynamic
//     programs, so the light tenant's frontier hits never queue behind
//     the flood;
//   - fifo: the unfairness baseline (moqod -fifo) pushes every request
//     through one global arrival-order queue, so the light tenant waits
//     behind whatever the flood queued first.
//
// The headline number is the flooded/unloaded p99 ratio per policy.
type TenantSpec struct {
	// LightRequests is the light tenant's measured request count per
	// scenario (default 30).
	LightRequests int
	// FloodClients is the flood tenant's closed-loop client count
	// (default 3).
	FloodClients int
	// FloodTables sizes the flood's chain queries (default 8; EXA).
	FloodTables int
	// LightTables sizes the light tenant's warmed chain shape (default 11;
	// RTA alpha 1.1, four objectives, frontier included in the response —
	// a few-millisecond re-weight serve, so the percentiles measure real
	// work rather than scheduler noise).
	LightTables int
	// MaxColdDPs is the scheduler's slot count (default 1).
	MaxColdDPs int
	// Seed is accepted for interface symmetry with the other specs; the
	// workload is deterministic.
	Seed int64
}

func (s TenantSpec) withDefaults() TenantSpec {
	if s.LightRequests == 0 {
		s.LightRequests = 100
	}
	if s.FloodClients == 0 {
		s.FloodClients = 3
	}
	if s.FloodTables == 0 {
		s.FloodTables = 8
	}
	if s.LightTables == 0 {
		s.LightTables = 11
	}
	if s.MaxColdDPs == 0 {
		s.MaxColdDPs = 1
	}
	return s
}

// TenantPoint is one measured (policy, scenario) cell.
type TenantPoint struct {
	// Policy is "fair" or "fifo"; Scenario is "unloaded" or "flooded".
	Policy   string `json:"policy"`
	Scenario string `json:"scenario"`
	// LightRequests and Errors count the light tenant's measurement
	// stream.
	LightRequests int `json:"light_requests"`
	Errors        int `json:"errors"`
	// FloodServed counts flood requests completed during the scenario
	// (0 when unloaded).
	FloodServed int `json:"flood_served"`
	// Light-tenant client-side latency percentiles in milliseconds.
	LightP50Ms float64 `json:"light_p50_ms"`
	LightP99Ms float64 `json:"light_p99_ms"`
}

// TenantSummary carries the headline ratios the CI gate reads: the
// light tenant's flooded p99 over its unloaded p99, per policy.
type TenantSummary struct {
	FairP99Ratio float64 `json:"fair_p99_ratio"`
	FIFOP99Ratio float64 `json:"fifo_p99_ratio"`
}

// TenantLoad runs the fairness experiment: for each policy, the light
// tenant is measured alone and then under flood, against a fresh
// in-process service each time.
func TenantLoad(spec TenantSpec) ([]TenantPoint, TenantSummary, error) {
	spec = spec.withDefaults()
	// Interactive latency needs runtime headroom: with GOMAXPROCS=1 (a
	// single-core host), a woken serving goroutine waits out the running
	// dynamic program's whole scheduling slice — tens of milliseconds —
	// regardless of admission policy. Giving the runtime a few Ps lets the
	// kernel time-share the core instead, which preempts the CPU-bound DP
	// thread for the waking handler within microseconds. Multi-core hosts
	// are unaffected (NumCPU already exceeds the floor).
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	// The flood's EXA dynamic programs allocate heavily, and on a small
	// host the resulting GC cycles stall every goroutine — tail noise that
	// has nothing to do with the scheduling policy under test. Trade heap
	// for fewer cycles while the experiment runs.
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	var pts []TenantPoint
	var sum TenantSummary
	for _, policy := range []string{"fair", "fifo"} {
		unloaded, err := tenantScenario(spec, policy, false)
		if err != nil {
			return nil, sum, err
		}
		flooded, err := tenantScenario(spec, policy, true)
		if err != nil {
			return nil, sum, err
		}
		pts = append(pts, unloaded, flooded)
		base := unloaded.LightP99Ms
		if base < 0.01 {
			base = 0.01 // sub-10µs baselines would make the ratio noise
		}
		ratio := flooded.LightP99Ms / base
		if policy == "fair" {
			sum.FairP99Ratio = ratio
		} else {
			sum.FIFOP99Ratio = ratio
		}
	}
	return pts, sum, nil
}

// tenantScenario measures one (policy, flooded?) cell.
func tenantScenario(spec TenantSpec, policy string, flooded bool) (TenantPoint, error) {
	cfg, err := tenant.ParseConfig([]byte(`{
		"tenants": {"flood": {"weight": 1}, "light": {"weight": 3}}
	}`))
	if err != nil {
		return TenantPoint{}, err
	}
	svc, err := server.NewE(server.Options{
		Tenants:        tenant.NewRegistry(cfg),
		MaxColdDPs:     spec.MaxColdDPs,
		FIFOScheduling: policy == "fifo",
	})
	if err != nil {
		return TenantPoint{}, err
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Close()
	client := ts.Client()

	post := func(ten, body string) (int, error) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/optimize", bytes.NewBufferString(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(server.TenantHeader, ten)
		res, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		defer res.Body.Close()
		var sink json.RawMessage
		if err := json.NewDecoder(res.Body).Decode(&sink); err != nil {
			return 0, err
		}
		return res.StatusCode, nil
	}

	// The light tenant's request: a re-weight of one warmed RTA shape,
	// asking for the frontier (473 points at these parameters), so each
	// serve is a SelectBest scan plus real response rendering.
	lightBody := func(bufferWeight float64) string {
		return tenantBody(tenantChainSpec(spec.LightTables, 0.25, "rta", 1.1,
			[]string{"total_time", "buffer_footprint", "tuple_loss", "io_load"},
			bufferWeight, true))
	}
	// Warm the light tenant's shape: one cold DP, after which each
	// re-weight is a frontier hit.
	if status, err := post("light", lightBody(1)); err != nil || status != http.StatusOK {
		return TenantPoint{}, fmt.Errorf("bench: tenant warm-up: status %d, err %v", status, err)
	}

	pt := TenantPoint{
		Policy:        policy,
		Scenario:      "unloaded",
		LightRequests: spec.LightRequests,
	}

	var (
		stop         atomic.Bool
		floodStarted atomic.Int64
		floodServed  atomic.Int64
		floodErrs    atomic.Int64
		wg           sync.WaitGroup
	)
	if flooded {
		pt.Scenario = "flooded"
		// Each flood request is a distinct query shape (a fresh filter
		// selectivity), i.e. a genuinely cold dynamic program; the clients
		// keep the queue saturated until the light stream completes.
		var seq atomic.Int64
		for c := 0; c < spec.FloodClients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					sel := 0.1 + 0.0001*float64(seq.Add(1)%8000)
					floodStarted.Add(1)
					status, err := post("flood", tenantBody(tenantChainSpec(spec.FloodTables, sel, "exa", 0,
						[]string{"total_time", "buffer_footprint"}, 0, false)))
					if err != nil || status != http.StatusOK {
						floodErrs.Add(1)
						continue
					}
					floodServed.Add(1)
				}
			}()
		}
		// Wait until every flood client is in flight before measuring.
		for floodStarted.Load() < int64(spec.FloodClients) {
			time.Sleep(time.Millisecond)
		}
	}

	var latency []float64
	for i := 0; i < spec.LightRequests; i++ {
		// Pace the light stream: it represents an interactive user, and
		// back-to-back requests would end the flooded window before the
		// flood got to queue anything.
		time.Sleep(time.Millisecond)
		body := lightBody(2 + 0.01*float64(i))
		start := time.Now()
		status, err := post("light", body)
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		if err != nil || status != http.StatusOK {
			pt.Errors++
			continue
		}
		latency = append(latency, ms)
	}
	if flooded {
		stop.Store(true)
		wg.Wait()
		pt.FloodServed = int(floodServed.Load())
		pt.Errors += int(floodErrs.Load())
	}

	if len(latency) > 0 {
		sort.Float64s(latency)
		pt.LightP50Ms = server.Percentile(latency, 0.50)
		pt.LightP99Ms = server.Percentile(latency, 0.99)
	}
	return pt, nil
}

// tenantChainSpec builds the /optimize request for an n-table chain
// over an inline catalog. sel distinguishes query shapes; bufferWeight
// distinguishes re-weights of one shape (0 omits weights).
func tenantChainSpec(n int, sel float64, alg string, alpha float64, objectives []string, bufferWeight float64, frontier bool) server.OptimizeRequest {
	cat := server.CatalogSpec{}
	q := server.QuerySpec{Name: "tenant-chain"}
	for i := 0; i < n; i++ {
		cat.Tables = append(cat.Tables, server.TableSpec{
			Name:  fmt.Sprintf("t%d", i),
			Rows:  float64(1000 * (i + 1)),
			Width: 16,
			PK:    "id",
		})
		fs := 1.0
		if i == 0 {
			fs = sel
		}
		q.Relations = append(q.Relations, server.RelationSpec{Table: fmt.Sprintf("t%d", i), FilterSel: fs})
	}
	for i := 0; i+1 < n; i++ {
		q.Joins = append(q.Joins, server.JoinSpec{Left: i, Right: i + 1, LeftCol: "id", RightCol: "id", Selectivity: 0.01})
	}
	spec := server.OptimizeRequest{
		Catalog:    &cat,
		Query:      &q,
		Algorithm:  alg,
		Alpha:      alpha,
		Objectives: objectives,
		Workers:    1,
		Frontier:   frontier,
	}
	if bufferWeight != 0 {
		spec.Weights = map[string]float64{"total_time": 1, "buffer_footprint": bufferWeight}
	}
	return spec
}

func tenantBody(spec server.OptimizeRequest) string {
	b, err := json.Marshal(spec)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// RenderTenantLoad renders the fairness measurements as a text table.
func RenderTenantLoad(pts []TenantPoint, sum TenantSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %9s %7s %7s %12s %13s %13s\n",
		"policy", "scenario", "light", "errors", "flood-served", "light-p50(ms)", "light-p99(ms)")
	for _, p := range pts {
		fmt.Fprintf(&b, "%6s %9s %7d %7d %12d %13.2f %13.2f\n",
			p.Policy, p.Scenario, p.LightRequests, p.Errors, p.FloodServed, p.LightP50Ms, p.LightP99Ms)
	}
	fmt.Fprintf(&b, "light-tenant p99 inflation under flood: fair %.1fx, fifo %.1fx\n",
		sum.FairP99Ratio, sum.FIFOP99Ratio)
	return b.String()
}

// TenantLoadJSON serializes the measurements as the BENCH_tenant.json
// payload the CI pipeline archives.
func TenantLoadJSON(pts []TenantPoint, sum TenantSummary) ([]byte, error) {
	payload := struct {
		Benchmark string        `json:"benchmark"`
		NumCPU    int           `json:"num_cpu"`
		Points    []TenantPoint `json:"points"`
		Summary   TenantSummary `json:"summary"`
	}{
		Benchmark: "moqod-tenant-fairness",
		NumCPU:    runtime.NumCPU(),
		Points:    pts,
		Summary:   sum,
	}
	return json.MarshalIndent(payload, "", "  ")
}
