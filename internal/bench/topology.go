package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"moqo/internal/core"
	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/synthetic"
)

// TopologySpec parameterizes the topology-scaling experiment: the same
// RTA run once with the exhaustive subset-scanning enumeration and once
// with the graph-aware csg-cmp enumeration, across join-graph
// topologies and query sizes. The point of the experiment is the
// asymptotic enumeration win — candidate construction is identical
// between the arms (the strategies visit the same splits in the same
// order), so every difference in scanned sets/splits and wall time is
// enumeration overhead.
//
// Keep arm sizes at or below ~26 tables: the exhaustive arm's level
// materialization Gosper-scans all 2^n subsets on one goroutine, and
// past that size the scan cannot finish within any reasonable Timeout —
// it now degrades to the chain fallback instead of running for hours,
// but a degraded arm measures the fallback, not the scan, and the
// strategy comparison loses its meaning (cmd/experiments enforces the
// cap on its -tables override).
type TopologySpec struct {
	// Arms lists the (topology, sizes) grid. Defaults to chains and
	// cycles up to 24 tables (past the old 20-table practical ceiling),
	// stars to 14 (their DP is inherently exponential in the number of
	// sets, not a scan artifact), random trees to 18, and cliques to 10
	// (on a clique every subset is connected, so the graph-aware arm can
	// only match, not beat, the scan — the honest baseline case).
	Arms []TopologyArm
	// Objectives of the RTA runs (default: time and buffer footprint —
	// two objectives keep archives small so enumeration, not candidate
	// costing, dominates).
	Objectives objective.Set
	// Alpha is the RTA precision (default 3; coarse pruning for the same
	// reason).
	Alpha float64
	// MaxRows is the maximal base-table cardinality (default 1e5).
	MaxRows float64
	// Workers per run (default 1: the experiment measures enumeration,
	// not parallel speedup).
	Workers int
	// Timeout per run (default 60s; a timed-out arm is reported as a
	// lower bound).
	Timeout time.Duration
	// Seed of the synthetic workload.
	Seed int64
}

// TopologyArm is one topology of the experiment with its query sizes.
type TopologyArm struct {
	Shape  synthetic.Shape
	Tables []int
}

// withDefaults fills in the defaults.
func (s TopologySpec) withDefaults() TopologySpec {
	if len(s.Arms) == 0 {
		s.Arms = []TopologyArm{
			{synthetic.Chain, []int{16, 20, 24}},
			{synthetic.Cycle, []int{16, 20, 24}},
			{synthetic.Star, []int{10, 12, 14}},
			{synthetic.RandomTree, []int{14, 16, 18}},
			{synthetic.Clique, []int{8, 10}},
		}
	}
	if s.Objectives.Len() == 0 {
		s.Objectives = objective.NewSet(objective.TotalTime, objective.BufferFootprint)
	}
	if s.Alpha == 0 {
		s.Alpha = 3
	}
	if s.MaxRows == 0 {
		s.MaxRows = 1e5
	}
	if s.Workers == 0 {
		s.Workers = 1
	}
	if s.Timeout == 0 {
		s.Timeout = 60 * time.Second
	}
	return s
}

// TopologyRun is one measured enumeration arm of a topology point.
type TopologyRun struct {
	// Ms is the wall-clock optimization time.
	Ms float64 `json:"ms"`
	// EnumSets counts table sets scanned while materializing the levels
	// (2^n - 1 for the exhaustive scan, the connected count for graph).
	EnumSets int `json:"enum_sets"`
	// EnumSplits counts ordered split pairs visited by the candidate
	// loops, including pairs discarded before costing.
	EnumSplits int `json:"enum_splits"`
	// Considered counts constructed candidate plans — identical between
	// the arms by the order-preserving csg-cmp emission.
	Considered int  `json:"considered"`
	Frontier   int  `json:"frontier"`
	TimedOut   bool `json:"timed_out"`
}

// TopologyPoint is one (topology, size) cell of the experiment.
type TopologyPoint struct {
	Shape  string  `json:"shape"`
	N      int     `json:"tables"`
	Alpha  float64 `json:"alpha"`
	Ntotal int     `json:"connected_sets"` // materialized table sets

	Exhaustive TopologyRun `json:"exhaustive"`
	Graph      TopologyRun `json:"graph"`
	// Auto is the density-adaptive arm (EnumAuto): per table set it picks
	// subset scan, tree edge-cut enumeration, or complement-pruned
	// traversal — the arm a caller gets by default.
	Auto TopologyRun `json:"auto"`

	// SplitReduction is Exhaustive.EnumSplits / Graph.EnumSplits — the
	// headline metric: how much split-scanning work the join graph's
	// structure saves.
	SplitReduction float64 `json:"split_reduction"`
	// SetScanReduction is the same ratio for level materialization.
	SetScanReduction float64 `json:"set_scan_reduction"`
	// Speedup is Exhaustive.Ms / Graph.Ms.
	Speedup float64 `json:"speedup"`
	// AutoSpeedup is Exhaustive.Ms / Auto.Ms — what the adaptive
	// enumeration delivers end to end, including the mid-density cells
	// where pure traversal loses to the scan.
	AutoSpeedup float64 `json:"auto_speedup"`
}

// TopologyScaling measures enumeration work and wall time across
// join-graph topologies and sizes, with the exhaustive and the
// graph-aware strategy on identical queries. Besides the reductions it
// double-checks the strategy-equivalence claim: both arms must
// construct exactly the same number of candidate plans.
func TopologyScaling(spec TopologySpec) ([]TopologyPoint, error) {
	spec = spec.withDefaults()
	var out []TopologyPoint
	for _, arm := range spec.Arms {
		for _, n := range arm.Tables {
			_, q, err := synthetic.Build(synthetic.Spec{
				Shape:   arm.Shape,
				Tables:  n,
				MaxRows: spec.MaxRows,
				Seed:    spec.Seed,
			})
			if err != nil {
				return nil, err
			}
			w := objective.UniformWeights(spec.Objectives)
			pt := TopologyPoint{Shape: arm.Shape.String(), N: n, Alpha: spec.Alpha}

			run := func(strategy core.EnumerationStrategy) (TopologyRun, error) {
				m := costmodel.NewDefault(q)
				start := time.Now()
				res, err := core.RTA(m, w, core.Options{
					Objectives:  spec.Objectives,
					Alpha:       spec.Alpha,
					Workers:     spec.Workers,
					Timeout:     spec.Timeout,
					Enumeration: strategy,
				})
				if err != nil {
					return TopologyRun{}, err
				}
				return TopologyRun{
					Ms:         float64(time.Since(start)) / float64(time.Millisecond),
					EnumSets:   res.Stats.EnumSets,
					EnumSplits: res.Stats.EnumSplits,
					Considered: res.Stats.Considered,
					Frontier:   res.Stats.ParetoLast,
					TimedOut:   res.Stats.TimedOut,
				}, nil
			}
			if pt.Exhaustive, err = run(core.EnumExhaustive); err != nil {
				return nil, fmt.Errorf("%s-%d exhaustive: %w", arm.Shape, n, err)
			}
			if pt.Graph, err = run(core.EnumGraph); err != nil {
				return nil, fmt.Errorf("%s-%d graph: %w", arm.Shape, n, err)
			}
			if pt.Auto, err = run(core.EnumAuto); err != nil {
				return nil, fmt.Errorf("%s-%d auto: %w", arm.Shape, n, err)
			}
			pt.Ntotal = pt.Graph.EnumSets
			if pt.Graph.EnumSplits > 0 {
				pt.SplitReduction = float64(pt.Exhaustive.EnumSplits) / float64(pt.Graph.EnumSplits)
			}
			if pt.Graph.EnumSets > 0 {
				pt.SetScanReduction = float64(pt.Exhaustive.EnumSets) / float64(pt.Graph.EnumSets)
			}
			if pt.Graph.Ms > 0 {
				pt.Speedup = pt.Exhaustive.Ms / pt.Graph.Ms
			}
			if pt.Auto.Ms > 0 {
				pt.AutoSpeedup = pt.Exhaustive.Ms / pt.Auto.Ms
			}
			if !pt.Exhaustive.TimedOut && !pt.Graph.TimedOut &&
				pt.Exhaustive.Considered != pt.Graph.Considered {
				return nil, fmt.Errorf("%s-%d: strategies considered %d vs %d candidates — equivalence broken",
					arm.Shape, n, pt.Exhaustive.Considered, pt.Graph.Considered)
			}
			if !pt.Exhaustive.TimedOut && !pt.Auto.TimedOut &&
				pt.Exhaustive.Considered != pt.Auto.Considered {
				return nil, fmt.Errorf("%s-%d: auto considered %d vs exhaustive %d candidates — equivalence broken",
					arm.Shape, n, pt.Auto.Considered, pt.Exhaustive.Considered)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// RenderTopology renders the topology measurements as a text table.
func RenderTopology(pts []TopologyPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %3s %12s %12s %9s %12s %12s %12s %8s %8s\n",
		"shape", "n", "scan splits", "graph splits", "reduction", "scan (ms)", "graph (ms)", "auto (ms)", "speedup", "auto spd")
	for _, p := range pts {
		mark := ""
		if p.Exhaustive.TimedOut || p.Graph.TimedOut || p.Auto.TimedOut {
			mark = ">" // timed out: numbers are lower bounds
		}
		fmt.Fprintf(&b, "%10s %3d %12d %12d %8.0fx %12s %12s %12s %7.2fx %7.2fx\n",
			p.Shape, p.N, p.Exhaustive.EnumSplits, p.Graph.EnumSplits, p.SplitReduction,
			fmt.Sprintf("%s%.1f", mark, p.Exhaustive.Ms),
			fmt.Sprintf("%s%.1f", mark, p.Graph.Ms),
			fmt.Sprintf("%s%.1f", mark, p.Auto.Ms),
			p.Speedup, p.AutoSpeedup)
	}
	return b.String()
}

// TopologyJSON serializes the measurements as the BENCH_topology.json
// payload the CI pipeline archives.
func TopologyJSON(pts []TopologyPoint) ([]byte, error) {
	payload := struct {
		Benchmark string          `json:"benchmark"`
		NumCPU    int             `json:"num_cpu"`
		Points    []TopologyPoint `json:"points"`
	}{
		Benchmark: "enumeration-topology-scaling",
		NumCPU:    runtime.NumCPU(),
		Points:    pts,
	}
	return json.MarshalIndent(payload, "", "  ")
}
