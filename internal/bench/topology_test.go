package bench

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"moqo/internal/synthetic"
)

// smallTopologySpec keeps the experiment harness test fast.
func smallTopologySpec() TopologySpec {
	return TopologySpec{
		Arms: []TopologyArm{
			{synthetic.Chain, []int{8}},
			{synthetic.Cycle, []int{7}},
			{synthetic.Clique, []int{4}},
		},
		Timeout: 30 * time.Second,
		Seed:    1,
	}
}

func TestTopologyScaling(t *testing.T) {
	pts, err := TopologyScaling(smallTopologySpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	for _, p := range pts {
		if p.Exhaustive.Considered != p.Graph.Considered {
			t.Errorf("%s-%d: candidate counts differ: %d vs %d",
				p.Shape, p.N, p.Exhaustive.Considered, p.Graph.Considered)
		}
		if p.Graph.EnumSplits > p.Exhaustive.EnumSplits {
			t.Errorf("%s-%d: graph arm scanned more splits", p.Shape, p.N)
		}
		if p.Shape != "clique" && p.SplitReduction <= 1 {
			t.Errorf("%s-%d: split reduction %.2f, want > 1", p.Shape, p.N, p.SplitReduction)
		}
		if p.Graph.Frontier == 0 {
			t.Errorf("%s-%d: empty frontier", p.Shape, p.N)
		}
	}
}

func TestTopologyRenderAndJSON(t *testing.T) {
	pts, err := TopologyScaling(smallTopologySpec())
	if err != nil {
		t.Fatal(err)
	}
	text := RenderTopology(pts)
	for _, want := range []string{"chain", "cycle", "clique", "reduction", "speedup"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered table missing %q:\n%s", want, text)
		}
	}
	raw, err := TopologyJSON(pts)
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Benchmark string          `json:"benchmark"`
		Points    []TopologyPoint `json:"points"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatalf("BENCH_topology.json payload does not round-trip: %v", err)
	}
	if payload.Benchmark != "enumeration-topology-scaling" || len(payload.Points) != len(pts) {
		t.Errorf("payload = %q with %d points", payload.Benchmark, len(payload.Points))
	}
}
