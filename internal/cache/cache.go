// Package cache provides the sharded, bounded, concurrency-safe plan cache
// that the moqod optimization service puts in front of the optimizer
// engine. The paper's Cloud-provider scenario (Trummer & Koch, SIGMOD
// 2014, Section 1) has the optimizer invoked over and over with varying
// weights and bounds on recurring query shapes; a cache keyed by the
// canonical request fingerprint (moqo.Request.CacheKey) turns every
// repetition into a lookup.
//
// moqod composes two instances of this cache into a two-tier plan cache:
// an exact-result tier keyed by moqo.Request.CacheKey, and a frontier
// tier keyed by the weight/bound-free moqo.Request.FrontierKey whose
// FrontierSnapshot values answer weight and bound changes with a
// SelectBest scan instead of a new optimization (the paper's Figure 3
// re-weighting scenario). The OnEvict hook feeds the frontier tier's
// snapshot-bytes gauge.
//
// Design:
//
//   - Sharding: keys hash onto 2^k independently locked shards, so
//     concurrent lookups contend only when they land on the same shard.
//   - Bounded LRU: each shard holds at most capacity/shards entries and
//     evicts its least-recently-used entry on overflow.
//   - Counters: hits, misses, evictions and coalesced waits are served
//     from atomics (see Stats) and feed the service's /metrics endpoint.
//   - Single-flight: Do coalesces concurrent lookups of the same key — the
//     first caller computes, the rest wait for its result — so a burst of
//     identical requests runs the optimizer engine exactly once.
//
// The cache stores immutable values: callers must not mutate what they Put
// or get back, since the same value is shared by every subsequent hit.
package cache

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Source says where a Do result came from.
type Source int

const (
	// Miss: this caller computed the value.
	Miss Source = iota
	// Hit: the value was already cached.
	Hit
	// Coalesced: another caller was computing the same key; this caller
	// waited for that in-flight computation instead of starting its own.
	Coalesced
)

func (s Source) String() string {
	switch s {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "source(?)"
	}
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// HitRatio returns hits (including coalesced waits, which also avoided a
// computation) over all lookups, or 0 before the first lookup.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(total)
}

// entry is one cached key/value pair; it lives in a shard's LRU list.
type entry[V any] struct {
	key string
	val V
}

// shard is one independently locked LRU segment.
type shard[V any] struct {
	mu  sync.Mutex
	lru *list.List // front = most recently used; stores *entry[V]
	m   map[string]*list.Element
	cap int
}

// call is one in-flight computation other callers may wait on.
type call[V any] struct {
	done  chan struct{}
	val   V
	store bool
	err   error
}

// Cache is a sharded, bounded, concurrency-safe LRU cache with
// single-flight coalescing. The zero value is not usable; construct with
// New.
type Cache[V any] struct {
	shards []shard[V]
	mask   uint64

	flightMu sync.Mutex
	flights  map[string]*call[V]

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
	capacity  int

	onEvict []func(key string, v V, reason EvictReason)
}

// New builds a cache holding about capacity entries across the given
// number of shards (rounded up to a power of two; 0 picks 16). A
// capacity < 1 is raised to 1 per shard.
func New[V any](capacity, shards int) *Cache[V] {
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache[V]{
		shards:   make([]shard[V], n),
		mask:     uint64(n - 1),
		flights:  make(map[string]*call[V]),
		capacity: perShard * n,
	}
	for i := range c.shards {
		c.shards[i] = shard[V]{lru: list.New(), m: make(map[string]*list.Element), cap: perShard}
	}
	return c
}

// EvictReason says why a stored value left the cache.
type EvictReason int

const (
	// Replaced: a Put overwrote the key with a fresh value.
	Replaced EvictReason = iota
	// Evicted: the shard was full and the value was its least recently
	// used entry. Eviction victims are the natural candidates for
	// demotion to a colder tier (the moqod frontier tier demotes them to
	// the disk-backed store).
	Evicted
)

// OnEvict registers a callback invoked whenever a stored value leaves
// the cache — an LRU eviction, or replacement of an existing key by Put
// (the reason distinguishes the two). It lets a tier keep gauge-style
// accounting of what it currently holds (e.g. the moqod frontier tier's
// snapshot-bytes gauge) and react to capacity pressure (demotion), and a
// second registration lets an orthogonal concern — the per-tenant
// cache-partition attribution — observe the same departures without the
// tiers threading one composite closure around. Callbacks run in
// registration order, with the value's shard locked: they must be fast
// and must not call back into the cache. Register them before the cache
// is shared.
func (c *Cache[V]) OnEvict(fn func(key string, v V, reason EvictReason)) {
	c.onEvict = append(c.onEvict, fn)
}

// notifyEvict runs the eviction callbacks in registration order. Caller
// holds the entry's shard lock.
func (c *Cache[V]) notifyEvict(key string, v V, reason EvictReason) {
	for _, fn := range c.onEvict {
		fn(key, v, reason)
	}
}

// shardFor hashes the key onto its shard: an inlined FNV-1a over the
// string, so the hot path (every Get/Put/Do touches it up to three times)
// allocates nothing.
func (c *Cache[V]) shardFor(key string) *shard[V] {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h&c.mask]
}

// Get looks the key up, marking the entry most recently used. The counters
// are updated, making Get equivalent to a Do that never computes.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.m[key]
	if ok {
		s.lru.MoveToFront(el)
		v := el.Value.(*entry[V]).val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, true
	}
	s.mu.Unlock()
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Put stores the value, evicting the shard's least-recently-used entry if
// the shard is full. Storing an existing key refreshes its value and
// recency.
func (c *Cache[V]) Put(key string, v V) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		e := el.Value.(*entry[V])
		c.notifyEvict(e.key, e.val, Replaced)
		e.val = v
		s.lru.MoveToFront(el)
		return
	}
	if s.lru.Len() >= s.cap {
		oldest := s.lru.Back()
		if oldest != nil {
			s.lru.Remove(oldest)
			e := oldest.Value.(*entry[V])
			delete(s.m, e.key)
			c.evictions.Add(1)
			c.notifyEvict(e.key, e.val, Evicted)
		}
	}
	s.m[key] = s.lru.PushFront(&entry[V]{key: key, val: v})
}

// Do returns the cached value for key, or computes it exactly once even
// under concurrent identical calls: the first caller runs compute (under
// its own ctx), every concurrent caller for the same key waits for that
// result (Coalesced). A waiter whose ctx ends stops waiting and returns
// ctx's error.
//
// compute reports whether its value may be stored (store=false results —
// e.g. timeout-degraded optimizations — are returned to the caller that
// computed them but not cached). Errors are never cached: the next Do for
// the key retries.
//
// Waiters only share *cacheable* outcomes. Two leader outcomes are
// per-caller: a store=false value, which may reflect the leader's private
// constraints (its shorter deadline degraded the result), and a context
// error, which means the leader went away — neither may leak to a healthy
// waiter whose own constraints differ. A waiter observing such an outcome
// stops coalescing and computes for itself (all such waiters in parallel:
// serializing them behind a chain of new leaders would multiply tail
// latency on exactly the keys whose results keep degrading). Plain errors
// (validation and the like) are deterministic and shared.
func (c *Cache[V]) Do(ctx context.Context, key string, compute func(context.Context) (V, bool, error)) (V, Source, error) {
	var zero V
	coalesce := true
	for {
		if v, ok := c.peek(key); ok {
			c.hits.Add(1)
			return v, Hit, nil
		}

		c.flightMu.Lock()
		if fl, inFlight := c.flights[key]; inFlight && coalesce {
			c.flightMu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return zero, Coalesced, ctx.Err()
			}
			if fl.err == nil && !fl.store {
				coalesce = false // leader's result was private (e.g. degraded)
				continue
			}
			if fl.err != nil && isContextErr(fl.err) {
				if err := ctx.Err(); err != nil {
					return zero, Coalesced, err
				}
				coalesce = false // the leader was cancelled, not this caller
				continue
			}
			c.coalesced.Add(1)
			return fl.val, Coalesced, fl.err
		} else if inFlight {
			// Retrying after a private/cancelled outcome: compute without
			// joining (or becoming) a flight, so every such retrier runs
			// concurrently under its own constraints.
			c.flightMu.Unlock()
			c.misses.Add(1)
			v, store, err := compute(ctx)
			if err == nil && store {
				c.Put(key, v)
			}
			return v, Miss, err
		}
		// Re-check under the flight lock: a flight that completed between
		// the first peek and here has already stored its value.
		if v, ok := c.peek(key); ok {
			c.flightMu.Unlock()
			c.hits.Add(1)
			return v, Hit, nil
		}
		fl := &call[V]{done: make(chan struct{})}
		c.flights[key] = fl
		c.flightMu.Unlock()

		c.misses.Add(1)
		fl.val, fl.store, fl.err = compute(ctx)
		if fl.err == nil && fl.store {
			c.Put(key, fl.val)
		}
		c.flightMu.Lock()
		delete(c.flights, key)
		c.flightMu.Unlock()
		close(fl.done)
		return fl.val, Miss, fl.err
	}
}

// isContextErr reports whether err is a cancellation/deadline error of
// whoever computed — an outcome tied to that caller, not to the key.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// peek is Get without counter updates, used by Do to keep its own
// accounting.
func (c *Cache[V]) peek(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		s.lru.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Len returns the current number of cached entries.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
		Capacity:  c.capacity,
	}
}
