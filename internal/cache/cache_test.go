package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEvictionOrder: a full shard evicts strictly least-recently-used,
// where both Get and Put refresh recency.
func TestEvictionOrder(t *testing.T) {
	c := New[int](2, 1) // one shard, two entries
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a: b is now LRU
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b

	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (was least recently used)")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
}

// TestPutRefresh: re-putting an existing key must not evict anything and
// must refresh both value and recency.
// TestOnEvict: the eviction hook fires for LRU evictions and for Put
// replacements — exactly once per value leaving the cache, with the
// reason telling the two apart — so a gauge-style accounting (the moqod
// snapshot-bytes gauge) balances and demotion only sees true evictions.
func TestOnEvict(t *testing.T) {
	c := New[int](2, 1)
	var gone []string
	c.OnEvict(func(key string, v int, reason EvictReason) {
		gone = append(gone, fmt.Sprintf("%s=%d/%d", key, v, reason))
	})

	c.Put("a", 1)
	c.Put("b", 2)
	if len(gone) != 0 {
		t.Fatalf("hook fired with the cache under capacity: %v", gone)
	}
	c.Put("a", 10) // replacement: old value leaves
	c.Put("c", 3)  // eviction: b is LRU
	want := []string{fmt.Sprintf("a=1/%d", Replaced), fmt.Sprintf("b=2/%d", Evicted)}
	if len(gone) != len(want) || gone[0] != want[0] || gone[1] != want[1] {
		t.Fatalf("hook calls %v, want %v", gone, want)
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
}

// TestOnEvictMultiple: independently registered hooks all observe every
// departure, in registration order — the contract the moqod frontier
// tier (gauge + demotion) and the tenant cache-attribution hook rely on
// to coexist without knowing about each other.
func TestOnEvictMultiple(t *testing.T) {
	c := New[int](1, 1)
	var order []string
	c.OnEvict(func(key string, _ int, reason EvictReason) {
		order = append(order, fmt.Sprintf("first:%s/%d", key, reason))
	})
	c.OnEvict(func(key string, _ int, reason EvictReason) {
		order = append(order, fmt.Sprintf("second:%s/%d", key, reason))
	})
	c.Put("a", 1)
	c.Put("a", 2) // replacement
	c.Put("b", 3) // evicts a
	want := []string{
		fmt.Sprintf("first:a/%d", Replaced), fmt.Sprintf("second:a/%d", Replaced),
		fmt.Sprintf("first:a/%d", Evicted), fmt.Sprintf("second:a/%d", Evicted),
	}
	if len(order) != len(want) {
		t.Fatalf("hook calls %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("hook calls %v, want %v", order, want)
		}
	}
}

func TestPutRefresh(t *testing.T) {
	c := New[int](2, 1)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not insert
	c.Put("c", 3)  // evicts b, not a

	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Fatalf("a = %d,%t; want 10", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

// TestCapacityBound: the cache never holds more than its capacity.
func TestCapacityBound(t *testing.T) {
	c := New[int](64, 8)
	for i := 0; i < 10_000; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if n := c.Len(); n > 64 {
		t.Fatalf("cache holds %d entries, capacity 64", n)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("expected evictions")
	}
}

// TestSingleFlight: N concurrent Do calls for one key run compute exactly
// once; everyone gets the same value. Run with -race.
func TestSingleFlight(t *testing.T) {
	c := New[int](16, 4)
	var computes atomic.Int32
	release := make(chan struct{})

	const n = 32
	var wg sync.WaitGroup
	sources := make([]Source, n)
	values := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, src, err := c.Do(context.Background(), "key", func(context.Context) (int, bool, error) {
				computes.Add(1)
				<-release // hold every other caller in the coalesced wait
				return 42, true, nil
			})
			if err != nil {
				t.Error(err)
			}
			sources[i], values[i] = src, v
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let all callers reach Do
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	misses := 0
	for i := range sources {
		if values[i] != 42 {
			t.Fatalf("caller %d got %d", i, values[i])
		}
		if sources[i] == Miss {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d callers report Miss, want exactly 1", misses)
	}
	if _, src, _ := c.Do(context.Background(), "key", func(context.Context) (int, bool, error) {
		t.Error("compute ran after the value was cached")
		return 0, false, nil
	}); src != Hit {
		t.Fatalf("post-flight Do source = %v, want Hit", src)
	}
}

// TestWaiterRetriesOnPrivateResult: a store=false result (e.g. a
// timeout-degraded optimization under the leader's shorter deadline) goes
// only to the leader; a coalesced waiter retries and computes under its
// own constraints instead of inheriting the degraded value.
func TestWaiterRetriesOnPrivateResult(t *testing.T) {
	c := New[string](16, 4)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan string, 1)
	go func() {
		v, _, _ := c.Do(context.Background(), "k", func(context.Context) (string, bool, error) {
			close(leaderIn)
			<-release
			return "degraded", false, nil
		})
		leaderDone <- v
	}()
	<-leaderIn

	waiterDone := make(chan string, 1)
	go func() {
		v, _, err := c.Do(context.Background(), "k", func(context.Context) (string, bool, error) {
			return "full", true, nil
		})
		if err != nil {
			t.Error(err)
		}
		waiterDone <- v
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter coalesce
	close(release)

	if v := <-leaderDone; v != "degraded" {
		t.Fatalf("leader got %q, want its own degraded result", v)
	}
	if v := <-waiterDone; v != "full" {
		t.Fatalf("waiter got %q, want to have recomputed (full)", v)
	}
	if v, ok := c.Get("k"); !ok || v != "full" {
		t.Fatalf("cache holds %q,%t; want the waiter's full result", v, ok)
	}
}

// TestWaiterRetriesOnLeaderCancel: the leader disconnecting (its compute
// returning its ctx error) must not surface as an error to a healthy
// coalesced waiter — the waiter retries.
func TestWaiterRetriesOnLeaderCancel(t *testing.T) {
	c := New[string](16, 4)
	leaderIn := make(chan struct{})
	leaderCtx, disconnect := context.WithCancel(context.Background())
	go func() {
		_, _, _ = c.Do(leaderCtx, "k", func(ctx context.Context) (string, bool, error) {
			close(leaderIn)
			<-ctx.Done()
			return "", false, ctx.Err()
		})
	}()
	<-leaderIn

	waiterDone := make(chan error, 1)
	go func() {
		v, _, err := c.Do(context.Background(), "k", func(context.Context) (string, bool, error) {
			return "fresh", true, nil
		})
		if err == nil && v != "fresh" {
			t.Errorf("waiter got %q", v)
		}
		waiterDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter coalesce
	disconnect()

	if err := <-waiterDone; err != nil {
		t.Fatalf("healthy waiter inherited the leader's cancellation: %v", err)
	}
}

// TestDoNoStore: compute can decline caching (store=false) — the value is
// returned but the next Do recomputes.
func TestDoNoStore(t *testing.T) {
	c := New[int](16, 4)
	var computes atomic.Int32
	compute := func(context.Context) (int, bool, error) {
		return int(computes.Add(1)), false, nil
	}
	for want := 1; want <= 3; want++ {
		v, src, err := c.Do(context.Background(), "k", compute)
		if err != nil || v != want || src != Miss {
			t.Fatalf("round %d: v=%d src=%v err=%v", want, v, src, err)
		}
	}
}

// TestDoErrorNotCached: errors propagate and are never cached.
func TestDoErrorNotCached(t *testing.T) {
	c := New[int](16, 4)
	boom := errors.New("boom")
	if _, _, err := c.Do(context.Background(), "k", func(context.Context) (int, bool, error) {
		return 0, true, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, src, err := c.Do(context.Background(), "k", func(context.Context) (int, bool, error) {
		return 7, true, nil
	})
	if err != nil || v != 7 || src != Miss {
		t.Fatalf("after error: v=%d src=%v err=%v, want fresh compute", v, src, err)
	}
}

// TestWaiterContext: a coalesced waiter whose context ends stops waiting
// with the context error while the leader's computation proceeds.
func TestWaiterContext(t *testing.T) {
	c := New[int](16, 4)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = c.Do(context.Background(), "k", func(context.Context) (int, bool, error) {
			close(started)
			<-release
			return 1, true, nil
		})
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := c.Do(ctx, "k", func(context.Context) (int, bool, error) {
		t.Error("waiter must not compute")
		return 0, false, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter err = %v, want DeadlineExceeded", err)
	}
	close(release)
}

// TestConcurrentMixed: hammer the cache from many goroutines over a small
// key space; the race detector checks the locking, this test the bound.
func TestConcurrentMixed(t *testing.T) {
	c := New[string](32, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%100)
				switch i % 3 {
				case 0:
					c.Put(k, k)
				case 1:
					c.Get(k)
				default:
					_, _, _ = c.Do(context.Background(), k, func(context.Context) (string, bool, error) {
						return k, true, nil
					})
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 32 {
		t.Fatalf("capacity exceeded: %d > 32", n)
	}
	st := c.Stats()
	if st.Hits+st.Misses+st.Coalesced == 0 {
		t.Fatal("no lookups counted")
	}
}

// TestHitRatio: the snapshot arithmetic.
func TestHitRatio(t *testing.T) {
	c := New[int](8, 1)
	c.Put("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("miss")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if r := st.HitRatio(); r < 0.66 || r > 0.67 {
		t.Fatalf("hit ratio = %v, want 2/3", r)
	}
}
