package catalog

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync/atomic"
)

// PageSize is the buffer/disk page size in bytes (Postgres default).
const PageSize = 8192

// TableID identifies a base table of the catalog.
type TableID int

// Table describes a base table's statistics.
type Table struct {
	ID       TableID
	Name     string
	Rows     float64 // cardinality
	Width    int     // average tuple width in bytes
	PKColumn string  // primary-key column (always indexed)
}

// Pages returns the number of pages the table occupies.
func (t *Table) Pages() float64 {
	p := t.Rows * float64(t.Width) / PageSize
	if p < 1 {
		return 1
	}
	return p
}

// Index describes a secondary or primary index on a single column.
type Index struct {
	Table  TableID
	Column string
	Unique bool
}

// Catalog is a collection of tables and indexes with lookup helpers.
type Catalog struct {
	tables  []Table
	byName  map[string]TableID
	indexes map[TableID]map[string]Index
	// fp caches Fingerprint (0 = not yet computed; the sentinel only
	// costs a recompute in the astronomically unlikely case the hash is
	// exactly 0). AddTable/AddIndex reset it. Atomic because finished
	// catalogs are shared across request goroutines, each of which may
	// fingerprint concurrently.
	fp atomic.Uint64
}

// New builds an empty catalog.
func New() *Catalog {
	return &Catalog{
		byName:  make(map[string]TableID),
		indexes: make(map[TableID]map[string]Index),
	}
}

// AddTable registers a table and returns its ID. The primary-key column, if
// non-empty, is automatically indexed (unique).
func (c *Catalog) AddTable(name string, rows float64, width int, pkColumn string) TableID {
	if _, dup := c.byName[name]; dup {
		panic(fmt.Sprintf("catalog: duplicate table %q", name))
	}
	if rows < 0 || width <= 0 {
		panic(fmt.Sprintf("catalog: invalid statistics for table %q", name))
	}
	id := TableID(len(c.tables))
	c.tables = append(c.tables, Table{ID: id, Name: name, Rows: rows, Width: width, PKColumn: pkColumn})
	c.byName[name] = id
	c.fp.Store(0)
	if pkColumn != "" {
		c.AddIndex(id, pkColumn, true)
	}
	return id
}

// AddIndex registers an index on a table column.
func (c *Catalog) AddIndex(t TableID, column string, unique bool) {
	if int(t) >= len(c.tables) {
		panic("catalog: index on unknown table")
	}
	m := c.indexes[t]
	if m == nil {
		m = make(map[string]Index)
		c.indexes[t] = m
	}
	m[column] = Index{Table: t, Column: column, Unique: unique}
	c.fp.Store(0)
}

// Table returns the statistics of table t.
func (c *Catalog) Table(t TableID) *Table {
	if int(t) >= len(c.tables) {
		panic(fmt.Sprintf("catalog: unknown table id %d", t))
	}
	return &c.tables[t]
}

// Lookup resolves a table by name.
func (c *Catalog) Lookup(name string) (TableID, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// MustLookup resolves a table by name and panics if absent.
func (c *Catalog) MustLookup(name string) TableID {
	id, ok := c.byName[name]
	if !ok {
		panic(fmt.Sprintf("catalog: unknown table %q", name))
	}
	return id
}

// HasIndex reports whether table t has an index on the given column.
func (c *Catalog) HasIndex(t TableID, column string) bool {
	_, ok := c.indexes[t][column]
	return ok
}

// Indexes returns the indexes of table t sorted by column name.
func (c *Catalog) Indexes(t TableID) []Index {
	m := c.indexes[t]
	out := make([]Index, 0, len(m))
	for _, ix := range m {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Column < out[j].Column })
	return out
}

// NumTables returns the number of tables in the catalog.
func (c *Catalog) NumTables() int { return len(c.tables) }

// Fingerprint returns a stable content hash of the catalog — every table's
// name, statistics and primary key plus every index, in canonical order.
// Two catalogs built the same way (e.g. TPCH(1) in two processes) hash
// identically, and any statistics change yields a new fingerprint, which is
// what versions cached optimization results: the cost model reads nothing
// of a catalog beyond the hashed fields. User-controlled strings (table
// and column names) are length-prefixed, so no choice of names can make
// two different catalogs encode — and therefore hash — identically.
//
// The hash is computed on first use and cached — a long-lived catalog
// serves every request's cache-key build without rehashing. AddTable and
// AddIndex invalidate the cache; editing statistics in place through the
// Table pointer after the first Fingerprint call is not tracked (build a
// fresh catalog for a new statistics version, as the tests do).
func (c *Catalog) Fingerprint() uint64 {
	if fp := c.fp.Load(); fp != 0 {
		return fp
	}
	h := fnv.New64a()
	for i := range c.tables {
		t := &c.tables[i]
		fmt.Fprintf(h, "t|%d:%s|%s|%d|%d:%s;", len(t.Name), t.Name,
			strconv.FormatFloat(t.Rows, 'g', -1, 64), t.Width, len(t.PKColumn), t.PKColumn)
		for _, ix := range c.Indexes(t.ID) {
			fmt.Fprintf(h, "i|%d:%s|%t;", len(ix.Column), ix.Column, ix.Unique)
		}
	}
	fp := h.Sum64()
	c.fp.Store(fp)
	return fp
}

// MaxRows returns the maximal cardinality over all base tables — the
// parameter m of the paper's complexity analysis.
func (c *Catalog) MaxRows() float64 {
	var m float64
	for i := range c.tables {
		if c.tables[i].Rows > m {
			m = c.tables[i].Rows
		}
	}
	return m
}

// TPC-H table name constants.
const (
	Region   = "region"
	Nation   = "nation"
	Supplier = "supplier"
	Customer = "customer"
	Part     = "part"
	PartSupp = "partsupp"
	Orders   = "orders"
	Lineitem = "lineitem"
)

// TPCH builds the TPC-H catalog at the given scale factor. Cardinalities
// follow the TPC-H specification; widths are representative average tuple
// sizes in bytes. Primary keys and the standard foreign-key columns are
// indexed, which is what makes index-nested-loop joins applicable.
func TPCH(scaleFactor float64) *Catalog {
	if scaleFactor <= 0 {
		panic("catalog: scale factor must be positive")
	}
	sf := scaleFactor
	c := New()
	region := c.AddTable(Region, 5, 124, "r_regionkey")
	nation := c.AddTable(Nation, 25, 128, "n_nationkey")
	supplier := c.AddTable(Supplier, 10_000*sf, 159, "s_suppkey")
	customer := c.AddTable(Customer, 150_000*sf, 179, "c_custkey")
	c.AddTable(Part, 200_000*sf, 155, "p_partkey")
	partsupp := c.AddTable(PartSupp, 800_000*sf, 144, "ps_partkey")
	orders := c.AddTable(Orders, 1_500_000*sf, 104, "o_orderkey")
	lineitem := c.AddTable(Lineitem, 6_000_000*sf, 112, "l_orderkey")

	// Foreign-key indexes (standard physical design for TPC-H).
	c.AddIndex(nation, "n_regionkey", false)
	c.AddIndex(supplier, "s_nationkey", false)
	c.AddIndex(customer, "c_nationkey", false)
	c.AddIndex(partsupp, "ps_suppkey", false)
	c.AddIndex(orders, "o_custkey", false)
	c.AddIndex(lineitem, "l_partkey", false)
	c.AddIndex(lineitem, "l_suppkey", false)
	// Composite FK of lineitem into partsupp, modeled on the leading column.
	c.AddIndex(lineitem, "l_partsuppkey", false)

	_ = region
	return c
}
