package catalog

import (
	"math"
	"testing"
)

func TestTPCHScaleFactor1(t *testing.T) {
	c := TPCH(1)
	want := map[string]float64{
		Region:   5,
		Nation:   25,
		Supplier: 10_000,
		Customer: 150_000,
		Part:     200_000,
		PartSupp: 800_000,
		Orders:   1_500_000,
		Lineitem: 6_000_000,
	}
	if c.NumTables() != len(want) {
		t.Fatalf("NumTables = %d, want %d", c.NumTables(), len(want))
	}
	for name, rows := range want {
		id, ok := c.Lookup(name)
		if !ok {
			t.Fatalf("table %q missing", name)
		}
		if got := c.Table(id).Rows; got != rows {
			t.Errorf("%s rows = %v, want %v", name, got, rows)
		}
	}
	if got := c.MaxRows(); got != 6_000_000 {
		t.Errorf("MaxRows = %v, want lineitem's 6e6", got)
	}
}

func TestTPCHScaling(t *testing.T) {
	c10 := TPCH(10)
	id := c10.MustLookup(Lineitem)
	if got := c10.Table(id).Rows; got != 60_000_000 {
		t.Errorf("SF10 lineitem rows = %v, want 6e7", got)
	}
	// Fixed-size tables do not scale.
	if got := c10.Table(c10.MustLookup(Nation)).Rows; got != 25 {
		t.Errorf("SF10 nation rows = %v, want 25", got)
	}
}

func TestTPCHIndexes(t *testing.T) {
	c := TPCH(1)
	pk := map[string]string{
		Region:   "r_regionkey",
		Nation:   "n_nationkey",
		Supplier: "s_suppkey",
		Customer: "c_custkey",
		Part:     "p_partkey",
		PartSupp: "ps_partkey",
		Orders:   "o_orderkey",
		Lineitem: "l_orderkey",
	}
	for name, col := range pk {
		id := c.MustLookup(name)
		if !c.HasIndex(id, col) {
			t.Errorf("%s: missing PK index on %s", name, col)
		}
	}
	// Foreign-key indexes.
	fk := [][2]string{
		{Nation, "n_regionkey"},
		{Supplier, "s_nationkey"},
		{Customer, "c_nationkey"},
		{Orders, "o_custkey"},
		{Lineitem, "l_partkey"},
		{Lineitem, "l_suppkey"},
		{PartSupp, "ps_suppkey"},
	}
	for _, e := range fk {
		id := c.MustLookup(e[0])
		if !c.HasIndex(id, e[1]) {
			t.Errorf("%s: missing FK index on %s", e[0], e[1])
		}
	}
	if c.HasIndex(c.MustLookup(Lineitem), "l_comment") {
		t.Error("unexpected index on l_comment")
	}
}

func TestPages(t *testing.T) {
	c := TPCH(1)
	li := c.Table(c.MustLookup(Lineitem))
	wantPages := li.Rows * float64(li.Width) / PageSize
	if got := li.Pages(); math.Abs(got-wantPages) > 1e-9 {
		t.Errorf("lineitem pages = %v, want %v", got, wantPages)
	}
	// Tiny tables still occupy at least one page.
	tiny := New()
	id := tiny.AddTable("t", 1, 8, "c")
	if got := tiny.Table(id).Pages(); got != 1 {
		t.Errorf("tiny table pages = %v, want 1", got)
	}
}

func TestIndexesSorted(t *testing.T) {
	c := TPCH(1)
	li := c.MustLookup(Lineitem)
	idx := c.Indexes(li)
	if len(idx) < 3 {
		t.Fatalf("lineitem should have several indexes, got %d", len(idx))
	}
	for i := 1; i < len(idx); i++ {
		if idx[i-1].Column >= idx[i].Column {
			t.Errorf("indexes not sorted: %s >= %s", idx[i-1].Column, idx[i].Column)
		}
	}
}

func TestLookupMissing(t *testing.T) {
	c := TPCH(1)
	if _, ok := c.Lookup("nonexistent"); ok {
		t.Error("Lookup(nonexistent) succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLookup(nonexistent) did not panic")
		}
	}()
	c.MustLookup("nonexistent")
}

func TestAddTableValidation(t *testing.T) {
	c := New()
	c.AddTable("a", 10, 8, "pk")
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() { c.AddTable("a", 10, 8, "pk") })
	mustPanic("negative rows", func() { c.AddTable("b", -1, 8, "pk") })
	mustPanic("zero width", func() { c.AddTable("c", 10, 0, "pk") })
	mustPanic("bad scale factor", func() { TPCH(0) })
	mustPanic("index unknown table", func() { c.AddIndex(TableID(99), "x", false) })
	mustPanic("unknown table id", func() { c.Table(TableID(99)) })
}

// TestFingerprint: equal contents hash equally; any statistics or index
// change yields a new version.
func TestFingerprint(t *testing.T) {
	if TPCH(1).Fingerprint() != TPCH(1).Fingerprint() {
		t.Fatal("identical catalogs got different fingerprints")
	}
	base := TPCH(1).Fingerprint()
	if TPCH(2).Fingerprint() == base {
		t.Fatal("different scale factors share a fingerprint")
	}
	c := TPCH(1)
	c.AddIndex(c.MustLookup(Orders), "o_orderdate", false)
	if c.Fingerprint() == base {
		t.Fatal("adding an index did not change the fingerprint")
	}
	c2 := TPCH(1)
	c2.AddTable("extra", 42, 16, "e_id")
	if c2.Fingerprint() == base {
		t.Fatal("adding a table did not change the fingerprint")
	}
}

// TestFingerprintInjection: table names are user-controlled in the moqod
// service, so a name embedding the encoding's delimiters must not make
// two different catalogs hash identically (length-prefixing prevents it).
func TestFingerprintInjection(t *testing.T) {
	honest := New()
	honest.AddTable("a", 1, 4, "p")
	honest.AddTable("b", 2, 4, "")

	forged := New()
	forged.AddTable("a|1|4|p;i|p|true;t|b", 2, 4, "")

	if honest.Fingerprint() == forged.Fingerprint() {
		t.Fatal("delimiter-injecting table name forged another catalog's fingerprint")
	}
}
