// Package catalog provides the database schema and statistics substrate
// that the optimizer's cost model consumes: base-table cardinalities,
// tuple widths, page counts, available indexes, and join selectivities.
//
// The shipped catalog models the TPC-H schema — the workload the paper
// evaluates on (Section 8) — at a configurable scale factor. The catalog
// is purely statistical; no data is stored, because the optimizer only
// needs estimates, exactly like the Postgres statistics the paper's
// prototype relied on. The maximal base-table cardinality doubles as the
// parameter m of the paper's complexity analysis (Theorems 1-5).
//
// Catalog.Fingerprint hashes the full contents into a stable version
// identifier; the moqod plan cache keys on it, so cached plans are
// invalidated the moment statistics change.
package catalog
