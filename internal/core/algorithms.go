package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/pareto"
	"moqo/internal/plan"
)

// Result is the outcome of one optimization run.
type Result struct {
	// Best is the selected plan (nil only for queries with no plans,
	// which cannot occur for validated queries).
	Best *plan.Node
	// Frontier is the (approximate) Pareto archive of the full table set
	// — the paper's "Pareto frontier as byproduct of optimization".
	Frontier *pareto.Archive
	// Stats reports the optimization effort.
	Stats Stats
	// Snapshot is the compact, weight/bound-free frontier extraction, set
	// only when Options.CaptureSnapshot was on and the run completed
	// without degrading (see FrontierSnapshot).
	Snapshot *FrontierSnapshot
}

// EXA runs the exact multi-objective dynamic program of Ganguly et al.
// (paper Algorithm 1): it computes the Pareto plan set of the query and
// selects the best plan for the given weights and bounds. Exponential in
// the number of possible plans (Theorems 1-2); use the timeout.
func EXA(m *costmodel.Model, w objective.Weights, b objective.Bounds, opts Options) (Result, error) {
	return EXAContext(context.Background(), m, w, b, opts)
}

// EXAContext is EXA under a context: cancellation aborts the dynamic
// program promptly and returns ctx's error, while a context deadline folds
// into the timeout/degrade path of Options.Timeout (the run still returns
// a — degraded — plan with Stats.TimedOut set).
func EXAContext(ctx context.Context, m *costmodel.Model, w objective.Weights, b objective.Bounds, opts Options) (Result, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return Result{}, err
	}
	if !w.Valid() || !b.Valid() {
		return Result{}, fmt.Errorf("core: invalid weights or bounds")
	}
	if err := startErr(ctx); err != nil {
		return Result{}, err
	}
	start := time.Now()
	e := newEngine(ctx, m, opts, 1, w)
	flat := e.run()
	if err := e.cancelErr(); err != nil {
		return Result{}, err
	}
	final := e.materializeFrontier(flat)
	st := e.stats(start)
	res := Result{Best: final.SelectBest(w, b), Frontier: final, Stats: st}
	if opts.CaptureSnapshot && !st.TimedOut {
		res.Snapshot = e.snapshot(flat, 1, st)
	}
	return res, nil
}

// startErr rejects a context that is already cancelled before any work
// starts. A context whose *deadline* has passed is let through: the run
// enters degraded mode immediately and still returns a plan, mirroring a
// pre-expired Options.Timeout.
func startErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		if cause := context.Cause(ctx); cause != nil {
			return cause
		}
		return err
	}
	return nil
}

// RTA runs the representative-tradeoffs algorithm (paper Algorithm 2), an
// approximation scheme for weighted MOQO: it computes an αU-approximate
// Pareto set using internal pruning precision αi = αU^(1/|Q|) and selects
// the plan with minimal weighted cost. The returned plan's weighted cost is
// within factor αU of the optimum (Theorem 3 + Corollary 1). Bounds are not
// supported — use IRA for bounded-weighted MOQO.
func RTA(m *costmodel.Model, w objective.Weights, opts Options) (Result, error) {
	return RTAContext(context.Background(), m, w, opts)
}

// RTAContext is RTA under a context (see EXAContext for the cancellation
// and deadline semantics).
func RTAContext(ctx context.Context, m *costmodel.Model, w objective.Weights, opts Options) (Result, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return Result{}, err
	}
	if !w.Valid() {
		return Result{}, fmt.Errorf("core: invalid weights")
	}
	if err := startErr(ctx); err != nil {
		return Result{}, err
	}
	start := time.Now()
	flat, e := rtaParetoPlans(ctx, m, w, opts, opts.Alpha)
	if err := e.cancelErr(); err != nil {
		return Result{}, err
	}
	final := e.materializeFrontier(flat)
	st := e.stats(start)
	res := Result{Best: final.SelectBest(w, objective.NoBounds()), Frontier: final, Stats: st}
	if opts.CaptureSnapshot && !st.TimedOut {
		res.Snapshot = e.snapshot(flat, opts.Alpha, st)
	}
	return res, nil
}

// rtaParetoPlans is FindParetoPlans of Algorithm 2: it derives the internal
// pruning precision αi = setAlpha^(1/|Q|) from the requested Pareto-set
// precision and runs the shared engine. The returned archive is the flat
// (unmaterialized) representation: IRA evaluates its stopping condition
// on it directly and materializes plan trees only for the iteration it
// actually returns.
func rtaParetoPlans(ctx context.Context, m *costmodel.Model, w objective.Weights, opts Options, setAlpha float64) (*pareto.FlatArchive, *engine) {
	n := m.Query().NumRelations()
	alphaInternal := math.Pow(setAlpha, 1/float64(n))
	if alphaInternal < 1 {
		alphaInternal = 1
	}
	e := newEngine(ctx, m, opts, alphaInternal, w)
	return e.run(), e
}

// maxIRAIterations caps the refinement loop. Theorem 8 guarantees
// termination for exact arithmetic; the cap guards against the iteration
// precision underflowing to exactly 1 without the stopping condition
// having been re-evaluated, and is far above the iteration counts the
// paper reports (< 100).
const maxIRAIterations = 256

// IRA runs the iterative-refinement algorithm (paper Algorithm 3), an
// approximation scheme for bounded-weighted MOQO. Every iteration runs the
// RTA's FindParetoPlans at precision α(i) = αU^(2^(-i/(3l-3))) and the loop
// stops once no plan within the relaxed bounds α·B could improve on the
// incumbent by more than the approximation slack — which certifies the
// incumbent αU-approximate (Theorem 6).
func IRA(m *costmodel.Model, w objective.Weights, b objective.Bounds, opts Options) (Result, error) {
	return IRAContext(context.Background(), m, w, b, opts)
}

// IRAContext is IRA under a context: cancellation aborts the current
// refinement iteration and returns ctx's error; a context deadline bounds
// the whole refinement loop exactly like Options.Timeout (the incumbent of
// the last completed iteration is returned with Stats.TimedOut set).
func IRAContext(ctx context.Context, m *costmodel.Model, w objective.Weights, b objective.Bounds, opts Options) (Result, error) {
	return iraRun(ctx, m, w, b, opts, nil)
}

// IRASeededContext runs IRA seeded from a cached frontier snapshot of the
// same weight/bound-free request (the frontier cache's re-weight path for
// bounded MOQO). Seeding is sound because the snapshot records its own
// set-level precision: if the Theorem 6 stopping condition already holds
// over the snapshot at that precision — or the snapshot is exact — the
// answer is a SelectBest scan and no dynamic program runs at all.
// Otherwise the refinement loop starts at the first iteration strictly
// finer than the snapshot instead of starting cold, skipping the coarse
// iterations the snapshot already subsumes. Either way the returned plan
// carries the same guarantee as cold IRA: it is certified αU-approximate
// by the same stopping condition (or by an exact final iteration).
func IRASeededContext(ctx context.Context, m *costmodel.Model, w objective.Weights, b objective.Bounds, opts Options, seed *FrontierSnapshot) (Result, error) {
	if seed == nil {
		return Result{}, fmt.Errorf("core: nil frontier seed")
	}
	return iraRun(ctx, m, w, b, opts, seed)
}

// iraRun is the shared body of IRAContext (seed == nil: cold) and
// IRASeededContext.
func iraRun(ctx context.Context, m *costmodel.Model, w objective.Weights, b objective.Bounds, opts Options, seed *FrontierSnapshot) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts, err := opts.Normalize()
	if err != nil {
		return Result{}, err
	}
	if !w.Valid() || !b.Valid() {
		return Result{}, fmt.Errorf("core: invalid weights or bounds")
	}
	if seed != nil && seed.Objectives() != opts.Objectives {
		return Result{}, fmt.Errorf("core: frontier seed objectives %v do not match request %v", seed.Objectives(), opts.Objectives)
	}
	if err := startErr(ctx); err != nil {
		return Result{}, err
	}
	start := time.Now()
	alphaU := opts.Alpha

	if seed != nil && (seed.setAlpha <= 1 || iraStop(seed, w, b, opts.Objectives, seed.setAlpha, alphaU)) {
		// The seed alone certifies an αU-approximate answer: it is exact,
		// or the stopping condition holds over it at its own precision.
		res, err := SelectFromSnapshot(seed, w, b)
		if err != nil {
			return Result{}, err
		}
		res.Stats.Duration = time.Since(start)
		return res, nil
	}
	l := opts.Objectives.Len()
	denom := float64(3*l - 3)
	if denom < 1 {
		denom = 1
	}

	var total Stats
	// The refinement loop works entirely on the flat representation; plan
	// trees are materialized once, for the iteration actually returned.
	var finalFlat *pareto.FlatArchive
	var finalEngine *engine
	lastAlpha := alphaU
	deadline := time.Time{}
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}

	for i := 1; ; i++ {
		// Precision refinement policy: exponent halves every 3l-3
		// iterations, so per-iteration cost roughly doubles (Theorem 7)
		// and redundant work across iterations stays negligible.
		alpha := math.Pow(alphaU, math.Exp2(-float64(i)/denom))
		if alpha < 1 {
			alpha = 1
		}
		if seed != nil && alpha >= seed.setAlpha && alpha > 1 && i < maxIRAIterations {
			// The seed's precision already subsumes this iteration (and its
			// stopping condition was evaluated above): skip straight to the
			// strictly finer iterations. The i-cap keeps a pathological
			// near-1 seed precision from skipping forever.
			continue
		}
		lastAlpha = alpha

		iterOpts := opts
		if !deadline.IsZero() {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				if finalFlat != nil {
					total.TimedOut = true
					break
				}
				// The deadline expired before the first iteration could
				// run (a pre-expired context deadline, or a sub-
				// microsecond Timeout). Run one iteration anyway with an
				// immediately-expiring budget: the engine's degraded mode
				// still produces a plan, honoring the contract that
				// deadlines degrade rather than fail.
				remaining = time.Nanosecond
			}
			iterOpts.Timeout = remaining
		}
		iterStart := time.Now()
		flat, e := rtaParetoPlans(ctx, m, w, iterOpts, alpha)
		if err := e.cancelErr(); err != nil {
			return Result{}, err
		}
		iterStats := e.stats(iterStart)
		total.merge(iterStats)
		total.IterationDetail = append(total.IterationDetail, IterationInfo{
			Alpha:        alpha,
			Duration:     iterStats.Duration,
			Considered:   iterStats.Considered,
			FrontierSize: flat.Len(),
		})
		finalFlat, finalEngine = flat, e

		if iraStop(flat, w, b, opts.Objectives, alpha, alphaU) {
			break
		}
		if alpha == 1 || i >= maxIRAIterations || total.TimedOut {
			// alpha == 1 means the iteration was exact: the incumbent of
			// this iteration is optimal.
			break
		}
	}
	total.Duration = time.Since(start)
	// A seeded run that had to refine still reused the frontier: the seed
	// absorbed every iteration at or above its precision, and the wire
	// contract (stats.reused_frontier) covers seeded refinements too.
	total.ReusedFrontier = seed != nil
	final := finalEngine.materializeFrontier(finalFlat)
	res := Result{Best: final.SelectBest(w, b), Frontier: final, Stats: total}
	if opts.CaptureSnapshot && !total.TimedOut {
		res.Snapshot = finalEngine.snapshot(finalFlat, lastAlpha, total)
	}
	return res, nil
}

// frontierView is read-only access to a frontier's cost rows, satisfied
// by both pareto.FlatArchive (the running iteration) and FrontierSnapshot
// (the cached seed).
type frontierView interface {
	Len() int
	CostAt(i int32) objective.Vector
}

// iraStop evaluates the termination condition of Algorithm 3:
//
//	¬∃ p ∈ P : c(p) ⪯ αB  ∧  C_W(c(p))/α < C_W(c(popt))/αU
//
// where popt is the incumbent: the best plan of P that respects the strict
// bounds. If no plan within the *relaxed* bounds αB has a weighted cost low
// enough that a true Pareto plan hiding behind it (at most factor α
// cheaper and at most factor α over the bounds) could beat the incumbent's
// αU-slack, the incumbent is certifiably αU-approximate (Theorem 6).
//
// The archive is any frontier view at precision alpha — a flat archive of
// the running iteration, or a cached FrontierSnapshot at its recorded
// precision (the seeded path).
//
// When P holds no strictly-in-bounds plan the incumbent's weighted cost is
// taken as +Inf: any plan within the relaxed bounds then forces another
// refinement iteration, because a bound-respecting true optimum may still
// be hiding behind it. (Reading the incumbent through SelectBest's
// infeasible *fallback* instead would let the loop stop with an
// out-of-bounds plan while feasible plans exist, voiding the guarantee of
// Definition 3, under which any bound-violating plan has relative cost
// infinity whenever some plan respects the bounds.) If additionally no
// plan respects even the relaxed bounds, no feasible plan can exist at all
// — the α-approximate Pareto set would contain a within-αB representative
// of it — and stopping with the weighted-cost fallback is sound.
func iraStop(archive frontierView, w objective.Weights, b objective.Bounds,
	objs objective.Set, alpha, alphaU float64) bool {
	threshold := math.Inf(1)
	n := int32(archive.Len())
	for i := int32(0); i < n; i++ {
		v := archive.CostAt(i)
		if b.Respects(v, objs) {
			if c := w.Cost(v) / alphaU; c < threshold {
				threshold = c
			}
		}
	}
	for i := int32(0); i < n; i++ {
		v := archive.CostAt(i)
		if b.RespectsRelaxed(v, alpha, objs) && w.Cost(v)/alpha < threshold {
			return false
		}
	}
	return true
}

// Selinger runs a single-objective Selinger-style bushy dynamic program
// minimizing one objective. It is the paper's single-objective baseline
// (Figure 5's 1-objective measurements, Figure 7's complexity comparison)
// and the tool used to derive per-objective minima for bounds generation.
func Selinger(m *costmodel.Model, obj objective.ID, opts Options) (Result, error) {
	return SelingerContext(context.Background(), m, obj, opts)
}

// SelingerContext is Selinger under a context (see WeightedSumDPContext).
func SelingerContext(ctx context.Context, m *costmodel.Model, obj objective.ID, opts Options) (Result, error) {
	opts.Objectives = objective.NewSet(obj)
	return WeightedSumDPContext(ctx, m, objective.SingleWeight(obj), opts)
}

// WeightedSumDP runs a dynamic program that prunes on the scalar weighted
// cost alone. For a single objective this is exactly Selinger's algorithm.
// For multiple objectives with diverse cost formulas it is UNSOUND — the
// paper's Example 1 shows the single-objective principle of optimality
// breaks — and it is included as the ablation baseline demonstrating that
// unsoundness (see the package tests).
func WeightedSumDP(m *costmodel.Model, w objective.Weights, opts Options) (Result, error) {
	return WeightedSumDPContext(context.Background(), m, w, opts)
}

// WeightedSumDPContext is WeightedSumDP under a context. The scalar
// dynamic program has no degraded mode, so only cancellation interrupts
// it (aborting with ctx's error); deadlines are observed solely between
// its enumeration steps via the shared latch and never truncate the
// candidate enumeration.
func WeightedSumDPContext(ctx context.Context, m *costmodel.Model, w objective.Weights, opts Options) (Result, error) {
	if opts.Objectives.Len() == 0 {
		opts.Objectives = w.Active()
	}
	opts, err := opts.Normalize()
	if err != nil {
		return Result{}, err
	}
	if !w.Valid() {
		return Result{}, fmt.Errorf("core: invalid weights")
	}
	if err := startErr(ctx); err != nil {
		return Result{}, err
	}
	start := time.Now()
	e := newEngine(ctx, m, opts, 1, w)
	best := e.runScalar(func(v objective.Vector) float64 { return w.Cost(v) })
	if err := e.cancelErr(); err != nil {
		return Result{}, err
	}
	st := e.stats(start)
	a := pareto.NewArchive(opts.Objectives, 1)
	if best != nil {
		a.Insert(best)
	}
	return Result{Best: best, Frontier: a, Stats: st}, nil
}

// ObjectiveMinima returns, for every active objective, the minimal
// achievable cost over the plan space, computed by one single-objective DP
// per objective. The paper's test-case generator draws bounds for
// unbounded-domain objectives from [1,2] times these minima.
func ObjectiveMinima(m *costmodel.Model, opts Options) (objective.Vector, error) {
	return ObjectiveMinimaContext(context.Background(), m, opts)
}

// ObjectiveMinimaContext is ObjectiveMinima under a context; cancellation
// aborts between (and within) the per-objective dynamic programs.
func ObjectiveMinimaContext(ctx context.Context, m *costmodel.Model, opts Options) (objective.Vector, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return objective.Vector{}, err
	}
	var minima objective.Vector
	for _, o := range opts.Objectives.IDs() {
		sopts := opts
		sopts.Objectives = opts.Objectives // keep sampling decision stable
		res, err := singleObjectiveMin(ctx, m, o, sopts)
		if err != nil {
			return objective.Vector{}, err
		}
		minima[o] = res
	}
	return minima, nil
}

// singleObjectiveMin minimizes one objective over the plan space defined
// by opts (including its sampling decision, which must match the main
// run's plan space for the minima to be meaningful bounds).
func singleObjectiveMin(ctx context.Context, m *costmodel.Model, o objective.ID, opts Options) (float64, error) {
	if err := startErr(ctx); err != nil {
		return 0, err
	}
	start := time.Now()
	e := newEngine(ctx, m, opts, 1, objective.SingleWeight(o))
	best := e.runScalar(func(v objective.Vector) float64 { return v[o] })
	if err := e.cancelErr(); err != nil {
		return 0, err
	}
	_ = e.stats(start)
	if best == nil {
		return 0, fmt.Errorf("core: no plan found for objective %v", o)
	}
	return best.Cost[o], nil
}
