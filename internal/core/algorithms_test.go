package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"moqo/internal/catalog"
	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/pareto"
	"moqo/internal/query"
)

// chainQuery builds a customer–orders–lineitem chain (TPC-H Q3 shape).
func chainQuery(t testing.TB) *query.Query {
	t.Helper()
	cat := catalog.TPCH(0.01) // small scale keeps the oracle fast
	q := query.New("chain3", cat)
	c := q.AddRelation(catalog.Customer, "c", 0.2)
	o := q.AddRelation(catalog.Orders, "o", 0.5)
	l := q.AddRelation(catalog.Lineitem, "l", 0.6)
	q.AddFKJoin(o, "o_custkey", c, "c_custkey")
	q.AddFKJoin(l, "l_orderkey", o, "o_orderkey")
	return q
}

// starQuery builds a 4-relation star around orders.
func starQuery(t testing.TB) *query.Query {
	t.Helper()
	cat := catalog.TPCH(0.01)
	q := query.New("star4", cat)
	c := q.AddRelation(catalog.Customer, "c", 0.3)
	o := q.AddRelation(catalog.Orders, "o", 0.4)
	l := q.AddRelation(catalog.Lineitem, "l", 0.5)
	n := q.AddRelation(catalog.Nation, "n", 1)
	q.AddFKJoin(o, "o_custkey", c, "c_custkey")
	q.AddFKJoin(l, "l_orderkey", o, "o_orderkey")
	q.AddFKJoin(c, "c_nationkey", n, "n_nationkey")
	return q
}

var threeObjs = objective.NewSet(objective.TotalTime, objective.BufferFootprint, objective.TupleLoss)

// smallOpts keeps oracle comparisons tractable.
func smallOpts(objs objective.Set) Options {
	return Options{Objectives: objs, MaxDOP: 2}
}

func randomWeights(r *rand.Rand, objs objective.Set) objective.Weights {
	var w objective.Weights
	for _, o := range objs.IDs() {
		w[o] = r.Float64()
	}
	return w
}

func TestEXAMatchesOracle(t *testing.T) {
	q := chainQuery(t)
	m := costmodel.NewDefault(q)
	opts := smallOpts(threeObjs)
	oracle := allPlans(m, mustNormalize(t, opts), q.AllTables())
	if len(oracle) == 0 {
		t.Fatal("oracle found no plans")
	}
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		w := randomWeights(r, threeObjs)
		res, err := EXA(m, w, objective.NoBounds(), opts)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for _, p := range oracle {
			best = math.Min(best, w.Cost(p.Cost))
		}
		got := w.Cost(res.Best.Cost)
		if math.Abs(got-best) > 1e-9*math.Max(1, best) {
			t.Fatalf("trial %d: EXA weighted cost %v, oracle optimum %v", trial, got, best)
		}
	}
}

func TestEXAFrontierIsParetoSetOfOracle(t *testing.T) {
	q := chainQuery(t)
	m := costmodel.NewDefault(q)
	opts := smallOpts(threeObjs)
	res, err := EXA(m, objective.UniformWeights(threeObjs), objective.NoBounds(), opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := allPlans(m, mustNormalize(t, opts), q.AllTables())
	frontier := res.Frontier.Frontier()
	// (a) Every oracle plan is dominated by some frontier vector, so the
	// frontier covers the whole plan space; (b) no oracle plan strictly
	// dominates a frontier vector, so every frontier vector is Pareto-
	// optimal. Together these make the frontier exactly a Pareto set of
	// the oracle's plan space (checked linearly; a full FilterPareto over
	// the oracle would be quadratic in ~50k plans).
	for _, p := range oracle {
		covered := false
		for _, f := range frontier {
			if f.Dominates(p.Cost, threeObjs) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("oracle plan %v not dominated by any frontier vector", p.Cost.FormatOn(threeObjs))
		}
		for _, f := range frontier {
			if p.Cost.StrictlyDominates(f, threeObjs) {
				t.Fatalf("frontier vector %v is dominated by oracle plan %v",
					f.FormatOn(threeObjs), p.Cost.FormatOn(threeObjs))
			}
		}
	}
}

func TestRTAGuarantee(t *testing.T) {
	// Corollary 1: RTA's weighted cost is within factor alphaU of optimal.
	for _, q := range []*query.Query{chainQuery(t), starQuery(t)} {
		m := costmodel.NewDefault(q)
		opts := smallOpts(threeObjs)
		r := rand.New(rand.NewSource(33))
		for _, alpha := range []float64{1.05, 1.15, 1.5, 2, 4} {
			for trial := 0; trial < 10; trial++ {
				w := randomWeights(r, threeObjs)
				exact, err := EXA(m, w, objective.NoBounds(), opts)
				if err != nil {
					t.Fatal(err)
				}
				ropts := opts
				ropts.Alpha = alpha
				approx, err := RTA(m, w, ropts)
				if err != nil {
					t.Fatal(err)
				}
				optC := w.Cost(exact.Best.Cost)
				gotC := w.Cost(approx.Best.Cost)
				if gotC > optC*alpha*(1+1e-9) {
					t.Fatalf("%s alpha=%v trial=%d: RTA cost %v exceeds %v * optimum %v",
						q.Name, alpha, trial, gotC, alpha, optC)
				}
				if gotC < optC*(1-1e-9) {
					t.Fatalf("%s: RTA beat the exact optimum (%v < %v) — EXA must be broken", q.Name, gotC, optC)
				}
			}
		}
	}
}

func TestRTAFrontierIsAlphaCover(t *testing.T) {
	// Theorem 3: RTA generates an alphaU-approximate Pareto set.
	q := chainQuery(t)
	m := costmodel.NewDefault(q)
	opts := smallOpts(threeObjs)
	exact, err := EXA(m, objective.UniformWeights(threeObjs), objective.NoBounds(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{1.15, 1.5, 2} {
		ropts := opts
		ropts.Alpha = alpha
		approx, err := RTA(m, objective.UniformWeights(threeObjs), ropts)
		if err != nil {
			t.Fatal(err)
		}
		if !pareto.IsAlphaCover(approx.Frontier.Frontier(), exact.Frontier.Frontier(), alpha*(1+1e-9), threeObjs) {
			cf := pareto.CoverFactor(approx.Frontier.Frontier(), exact.Frontier.Frontier(), threeObjs)
			t.Errorf("alpha=%v: RTA frontier is only a %v-cover", alpha, cf)
		}
		if approx.Frontier.Len() > exact.Frontier.Len() {
			t.Errorf("alpha=%v: approximate frontier larger than exact (%d > %d)",
				alpha, approx.Frontier.Len(), exact.Frontier.Len())
		}
	}
}

func TestRTAPrunesMoreWithLargerAlpha(t *testing.T) {
	q := starQuery(t)
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	prev := math.MaxInt
	for _, alpha := range []float64{1.01, 1.5, 4} {
		opts := smallOpts(threeObjs)
		opts.Alpha = alpha
		res, err := RTA(m, w, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Stored > prev {
			t.Errorf("alpha=%v stored %d plans, more than finer precision (%d)", alpha, res.Stats.Stored, prev)
		}
		prev = res.Stats.Stored
	}
}

func TestIRARespectsBoundsAndGuarantee(t *testing.T) {
	// Theorem 6: if a plan respecting the bounds exists, IRA returns a
	// bound-respecting plan with weighted cost within alphaU of the best
	// bound-respecting plan.
	q := chainQuery(t)
	m := costmodel.NewDefault(q)
	opts := smallOpts(threeObjs)
	r := rand.New(rand.NewSource(55))

	minima, err := ObjectiveMinima(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 15; trial++ {
		w := randomWeights(r, threeObjs)
		b := objective.NoBounds().
			With(objective.TotalTime, minima[objective.TotalTime]*(1+r.Float64())).
			With(objective.TupleLoss, r.Float64())
		exact, err := EXA(m, w, b, opts)
		if err != nil {
			t.Fatal(err)
		}
		exactRespects := b.Respects(exact.Best.Cost, threeObjs)

		for _, alpha := range []float64{1.15, 1.5, 2} {
			iopts := opts
			iopts.Alpha = alpha
			res, err := IRA(m, w, b, iopts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Iterations < 1 {
				t.Fatalf("IRA reported %d iterations", res.Stats.Iterations)
			}
			if exactRespects {
				if !b.Respects(res.Best.Cost, threeObjs) {
					t.Fatalf("trial %d alpha %v: feasible instance but IRA plan violates bounds\nplan=%v\nbounds respected by EXA plan %v",
						trial, alpha, res.Best.Cost.FormatOn(threeObjs), exact.Best.Cost.FormatOn(threeObjs))
				}
				if got, opt := w.Cost(res.Best.Cost), w.Cost(exact.Best.Cost); got > opt*alpha*(1+1e-9) {
					t.Fatalf("trial %d alpha %v: IRA cost %v exceeds %v * bounded optimum %v", trial, alpha, got, alpha, opt)
				}
			} else {
				// Infeasible: weighted cost is the only criterion.
				if got, opt := w.Cost(res.Best.Cost), w.Cost(exact.Best.Cost); got > opt*alpha*(1+1e-9) {
					t.Fatalf("trial %d alpha %v (infeasible): IRA cost %v exceeds %v * optimum %v", trial, alpha, got, alpha, opt)
				}
			}
		}
	}
}

func TestIRAUnboundedBehavesLikeRTA(t *testing.T) {
	// Paper Section 8: "the IRA behaves exactly like the RTA if no bounds
	// are specified" — it must terminate after one iteration.
	q := chainQuery(t)
	m := costmodel.NewDefault(q)
	opts := smallOpts(threeObjs)
	opts.Alpha = 1.5
	w := objective.UniformWeights(threeObjs)
	res, err := IRA(m, w, objective.NoBounds(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations != 1 {
		t.Errorf("unbounded IRA ran %d iterations, want 1", res.Stats.Iterations)
	}
	rta, err := RTA(m, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if w.Cost(res.Best.Cost) > w.Cost(rta.Best.Cost)*opts.Alpha {
		t.Error("unbounded IRA result far from RTA result")
	}
}

func TestIRATightBoundsForceRefinement(t *testing.T) {
	// A bound squeezed to the exact minimum forces the IRA through
	// several refinement iterations before it can certify the incumbent.
	q := chainQuery(t)
	m := costmodel.NewDefault(q)
	opts := smallOpts(threeObjs)
	minima, err := ObjectiveMinima(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	b := objective.NoBounds().With(objective.TotalTime, minima[objective.TotalTime]*1.001)
	opts.Alpha = 2
	res, err := IRA(m, objective.UniformWeights(threeObjs), b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations < 2 {
		t.Errorf("tight bound resolved in %d iterations; expected refinement", res.Stats.Iterations)
	}
	if !b.Respects(res.Best.Cost, threeObjs) {
		t.Errorf("IRA plan violates the feasible tight bound: %v vs bound %v",
			res.Best.Cost[objective.TotalTime], b[objective.TotalTime])
	}
	// Per-iteration detail: one entry per iteration, precision strictly
	// refined toward 1, frontier monotonically growing (finer precision
	// keeps more representatives).
	detail := res.Stats.IterationDetail
	if len(detail) != res.Stats.Iterations {
		t.Fatalf("detail entries %d != iterations %d", len(detail), res.Stats.Iterations)
	}
	for i := 1; i < len(detail); i++ {
		if detail[i].Alpha >= detail[i-1].Alpha {
			t.Errorf("iteration %d precision %v did not refine from %v", i, detail[i].Alpha, detail[i-1].Alpha)
		}
		if detail[i].FrontierSize < detail[i-1].FrontierSize {
			t.Errorf("iteration %d frontier shrank: %d -> %d", i, detail[i-1].FrontierSize, detail[i].FrontierSize)
		}
	}
	for _, d := range detail {
		if d.Alpha < 1 || d.Alpha > 2 {
			t.Errorf("iteration precision %v outside (1, alphaU]", d.Alpha)
		}
		if d.Considered <= 0 {
			t.Error("iteration considered no plans")
		}
	}
}

func TestSelingerMatchesEXASingleObjective(t *testing.T) {
	q := starQuery(t)
	m := costmodel.NewDefault(q)
	for _, o := range []objective.ID{objective.TotalTime, objective.Energy, objective.IOLoad} {
		sres, err := Selinger(m, o, Options{MaxDOP: 2})
		if err != nil {
			t.Fatal(err)
		}
		eres, err := EXA(m, objective.SingleWeight(o), objective.NoBounds(),
			Options{Objectives: objective.NewSet(o), MaxDOP: 2})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sres.Best.Cost[o]-eres.Best.Cost[o]) > 1e-9*eres.Best.Cost[o] {
			t.Errorf("%v: Selinger %v != EXA %v", o, sres.Best.Cost[o], eres.Best.Cost[o])
		}
		if sres.Stats.Stored >= eres.Stats.Stored && eres.Stats.Stored > q.NumRelations() {
			// Single-objective DP stores one plan per set.
			t.Logf("note: Selinger stored %d vs EXA %d", sres.Stats.Stored, eres.Stats.Stored)
		}
	}
}

func TestWeightedSumDPNeverBeatsEXA(t *testing.T) {
	// The weighted-sum DP searches a subset of combinations with unsound
	// pruning; it can never find a better plan than the exact algorithm,
	// and (Example 1) it can find worse ones.
	q := starQuery(t)
	m := costmodel.NewDefault(q)
	objs := objective.NewSet(objective.TotalTime, objective.Energy)
	r := rand.New(rand.NewSource(77))
	sawSuboptimal := false
	for trial := 0; trial < 30; trial++ {
		var w objective.Weights
		w[objective.TotalTime] = r.Float64()
		w[objective.Energy] = r.Float64() * 100 // energy in J is tiny; amplify
		exact, err := EXA(m, w, objective.NoBounds(), Options{Objectives: objs, MaxDOP: 4})
		if err != nil {
			t.Fatal(err)
		}
		ws, err := WeightedSumDP(m, w, Options{Objectives: objs, MaxDOP: 4})
		if err != nil {
			t.Fatal(err)
		}
		ec, wc := w.Cost(exact.Best.Cost), w.Cost(ws.Best.Cost)
		if wc < ec*(1-1e-9) {
			t.Fatalf("trial %d: weighted-sum DP beat EXA (%v < %v) — EXA broken", trial, wc, ec)
		}
		if wc > ec*(1+1e-9) {
			sawSuboptimal = true
		}
	}
	t.Logf("weighted-sum DP suboptimal in at least one of 30 trials: %v", sawSuboptimal)
}

func TestTimeoutDegradation(t *testing.T) {
	// With an absurdly small timeout the EXA must still terminate quickly
	// and produce a plan, flagged as timed out (paper Section 5.1).
	q := starQuery(t)
	m := costmodel.NewDefault(q)
	opts := Options{Objectives: threeObjs, Timeout: time.Nanosecond}
	start := time.Now()
	res, err := EXA(m, objective.UniformWeights(threeObjs), objective.NoBounds(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 10*time.Second {
		t.Error("degraded run took too long")
	}
	if !res.Stats.TimedOut {
		t.Error("run should report a timeout")
	}
	if res.Best == nil {
		t.Error("degraded run must still produce a plan")
	}
	if err := res.Best.Validate(q); err != nil {
		t.Errorf("degraded plan invalid: %v", err)
	}
}

func TestObjectiveMinimaAreLowerBounds(t *testing.T) {
	q := chainQuery(t)
	m := costmodel.NewDefault(q)
	opts := smallOpts(threeObjs)
	minima, err := ObjectiveMinima(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := allPlans(m, mustNormalize(t, opts), q.AllTables())
	for _, o := range threeObjs.IDs() {
		best := math.Inf(1)
		for _, p := range oracle {
			best = math.Min(best, p.Cost[o])
		}
		if math.Abs(minima[o]-best) > 1e-9*math.Max(1, best) {
			t.Errorf("%v: minimum %v != oracle best %v", o, minima[o], best)
		}
	}
}

func TestSingleRelationQuery(t *testing.T) {
	cat := catalog.TPCH(0.01)
	q := query.New("single", cat)
	q.AddRelation(catalog.Lineitem, "l", 0.9)
	m := costmodel.NewDefault(q)
	res, err := EXA(m, objective.UniformWeights(threeObjs), objective.NoBounds(), smallOpts(threeObjs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || !res.Best.IsScan() {
		t.Fatal("single-relation plan must be a scan")
	}
	if res.Frontier.Len() < 2 {
		t.Errorf("expected several Pareto scan alternatives, got %d", res.Frontier.Len())
	}
}

func TestOptionsValidation(t *testing.T) {
	q := chainQuery(t)
	m := costmodel.NewDefault(q)
	if _, err := EXA(m, objective.Weights{}, objective.NoBounds(), Options{}); err == nil {
		t.Error("empty objectives must be rejected")
	}
	if _, err := RTA(m, objective.Weights{}, Options{Objectives: threeObjs, Alpha: 0.5}); err == nil {
		t.Error("alpha < 1 must be rejected")
	}
	if _, err := EXA(m, objective.Weights{}, objective.NoBounds(), Options{Objectives: threeObjs, MaxDOP: 9}); err == nil {
		t.Error("MaxDOP out of range must be rejected")
	}
	var w objective.Weights
	w[objective.TotalTime] = -1
	if _, err := EXA(m, w, objective.NoBounds(), Options{Objectives: threeObjs}); err == nil {
		t.Error("negative weights must be rejected")
	}
}

func TestSamplingDefaultFollowsTupleLoss(t *testing.T) {
	q := chainQuery(t)
	m := costmodel.NewDefault(q)
	// Without tuple loss in the objective set, no plan may sample.
	objs := objective.NewSet(objective.TotalTime, objective.BufferFootprint)
	res, err := EXA(m, objective.UniformWeights(objs), objective.NoBounds(), Options{Objectives: objs})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Frontier.Plans() {
		for _, s := range p.Scans() {
			if s.Scan == 2 { // plan.SampleScan
				t.Fatal("sampling scan in plan space without tuple-loss objective")
			}
		}
	}
	// With tuple loss active, the frontier should include sampled plans.
	res2, err := EXA(m, objective.UniformWeights(threeObjs), objective.NoBounds(), smallOpts(threeObjs))
	if err != nil {
		t.Fatal(err)
	}
	sampled := false
	for _, p := range res2.Frontier.Plans() {
		if p.Cost[objective.TupleLoss] > 0 {
			sampled = true
		}
	}
	if !sampled {
		t.Error("tuple-loss frontier contains no sampled plan")
	}
}

func TestStatsPlausible(t *testing.T) {
	q := starQuery(t)
	m := costmodel.NewDefault(q)
	res, err := EXA(m, objective.UniformWeights(threeObjs), objective.NoBounds(), smallOpts(threeObjs))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Considered <= 0 || st.Stored <= 0 || st.ParetoLast <= 0 {
		t.Errorf("implausible stats: %+v", st)
	}
	if st.Stored < res.Frontier.Len() {
		t.Error("total stored below final archive size")
	}
	if st.MemoryBytes != int64(st.Stored)*storedPlanBytes {
		t.Error("memory estimate inconsistent with stored plans")
	}
	if st.ParetoLast != res.Frontier.Len() {
		t.Errorf("ParetoLast %d != final frontier %d", st.ParetoLast, res.Frontier.Len())
	}
	if st.Iterations != 1 {
		t.Errorf("EXA iterations = %d", st.Iterations)
	}
}

func mustNormalize(t testing.TB, o Options) Options {
	t.Helper()
	n, err := o.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return n
}
