package core

import (
	"context"
	"fmt"
	"time"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
)

// RTAVector runs the representative-tradeoffs algorithm with
// *per-objective* approximation precisions — a beyond-paper extension the
// paper's conclusion invites ("we believe that our findings can be
// exploited for design and analysis of future MOQO algorithms").
//
// Users rarely need uniform accuracy across objectives: a Cloud tenant
// may insist on near-exact monetary cost while tolerating a 2x slack on
// buffer estimates. Pruning coarsely on the tolerant objectives shrinks
// the archives — Lemma 2's bound is a product of per-objective bucket
// counts, each proportional to 1/log(precision) — without weakening the
// guarantee on the strict ones.
//
// Correctness carries over from the uniform RTA verbatim: the PONO holds
// per objective, so the induction of Theorem 3 applied component-wise
// yields a frontier whose vectors approximately dominate every Pareto
// vector with the per-objective plan-level factors, and the argument of
// Corollary 1 bounds the weighted cost by max over the weighted
// objectives of their precisions. The internal per-level precision is the
// component-wise |Q|-th root, exactly as in Algorithm 2.
func RTAVector(m *costmodel.Model, w objective.Weights, prec objective.Precision, opts Options) (Result, error) {
	return RTAVectorContext(context.Background(), m, w, prec, opts)
}

// RTAVectorContext is RTAVector under a context (see EXAContext for the
// cancellation and deadline semantics).
func RTAVectorContext(ctx context.Context, m *costmodel.Model, w objective.Weights, prec objective.Precision, opts Options) (Result, error) {
	if !prec.Valid() {
		return Result{}, fmt.Errorf("core: invalid precision vector (every entry must be >= 1)")
	}
	if opts.Alpha == 0 {
		opts.Alpha = prec.Max(opts.Objectives)
	}
	opts, err := opts.Normalize()
	if err != nil {
		return Result{}, err
	}
	if !w.Valid() {
		return Result{}, fmt.Errorf("core: invalid weights")
	}
	if err := startErr(ctx); err != nil {
		return Result{}, err
	}
	start := time.Now()
	alphaI := prec.Root(m.Query().NumRelations())
	e := newEngine(ctx, m, opts, prec.Max(opts.Objectives), w)
	e.precInternal = &alphaI
	flat := e.run()
	if err := e.cancelErr(); err != nil {
		return Result{}, err
	}
	final := e.materializeFrontier(flat)
	st := e.stats(start)
	res := Result{Best: final.SelectBest(w, objective.NoBounds()), Frontier: final, Stats: st}
	if opts.CaptureSnapshot && !st.TimedOut {
		res.Snapshot = e.snapshot(flat, prec.Max(opts.Objectives), st)
	}
	return res, nil
}
