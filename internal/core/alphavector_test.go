package core

import (
	"math/rand"
	"testing"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
)

func TestRTAVectorUniformMatchesRTA(t *testing.T) {
	// A uniform precision vector must behave exactly like the scalar RTA.
	q := chainQuery(t)
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	opts := smallOpts(threeObjs)
	opts.Alpha = 1.5
	scalar, err := RTA(m, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	vec, err := RTAVector(m, w, objective.UniformPrecision(1.5, threeObjs), smallOpts(threeObjs))
	if err != nil {
		t.Fatal(err)
	}
	if scalar.Best.Signature(q) != vec.Best.Signature(q) {
		t.Errorf("uniform RTAVector differs from RTA:\n%s\nvs\n%s",
			vec.Best.Signature(q), scalar.Best.Signature(q))
	}
	if scalar.Frontier.Len() != vec.Frontier.Len() {
		t.Errorf("frontier sizes differ: %d vs %d", vec.Frontier.Len(), scalar.Frontier.Len())
	}
}

func TestRTAVectorGuarantee(t *testing.T) {
	// The weighted cost stays within max precision over the weighted
	// objectives, and exactly-tracked objectives (precision 1) are never
	// worse than the exact frontier's best on that objective... the
	// per-objective guarantee: for every exact Pareto vector there is a
	// frontier vector within the per-objective factors.
	q := starQuery(t)
	m := costmodel.NewDefault(q)
	r := rand.New(rand.NewSource(91))
	opts := smallOpts(threeObjs)
	exact, err := EXA(m, objective.UniformWeights(threeObjs), objective.NoBounds(), opts)
	if err != nil {
		t.Fatal(err)
	}
	prec := objective.UniformPrecision(1, threeObjs).
		With(objective.TotalTime, 1.2).
		With(objective.BufferFootprint, 3) // coarse where tolerant
	for trial := 0; trial < 10; trial++ {
		w := randomWeights(r, threeObjs)
		res, err := RTAVector(m, w, prec, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Per-objective cover of the exact frontier.
		for _, ev := range exact.Frontier.Frontier() {
			covered := false
			for _, av := range res.Frontier.Frontier() {
				if av.ApproxDominatesBy(ev, prec, threeObjs) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("exact vector %v not covered within per-objective precisions",
					ev.FormatOn(threeObjs))
			}
		}
		// Scalar guarantee with the max precision over weighted objectives.
		bound := prec.Max(w.Active())
		exactBest, err := EXA(m, w, objective.NoBounds(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if got, opt := w.Cost(res.Best.Cost), w.Cost(exactBest.Best.Cost); got > opt*bound*(1+1e-9) {
			t.Fatalf("trial %d: cost %v beyond %v * optimum %v", trial, got, bound, opt)
		}
	}
}

func TestRTAVectorCoarserObjectivesShrinkArchives(t *testing.T) {
	q := starQuery(t)
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	opts := smallOpts(threeObjs)

	tight, err := RTAVector(m, w, objective.UniformPrecision(1.1, threeObjs), opts)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := RTAVector(m, w,
		objective.UniformPrecision(1.1, threeObjs).With(objective.BufferFootprint, 4), opts)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Stats.Stored >= tight.Stats.Stored {
		t.Errorf("coarsening one objective should shrink storage: %d vs %d",
			loose.Stats.Stored, tight.Stats.Stored)
	}
}

func TestRTAVectorValidation(t *testing.T) {
	q := chainQuery(t)
	m := costmodel.NewDefault(q)
	bad := objective.UniformPrecision(1.5, threeObjs).With(objective.TotalTime, 0.5)
	if _, err := RTAVector(m, objective.Weights{}, bad, smallOpts(threeObjs)); err == nil {
		t.Error("precision < 1 accepted")
	}
	var w objective.Weights
	w[objective.TotalTime] = -1
	if _, err := RTAVector(m, w, objective.UniformPrecision(1.5, threeObjs), smallOpts(threeObjs)); err == nil {
		t.Error("negative weights accepted")
	}
}
