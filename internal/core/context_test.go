package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/synthetic"
)

// bigModel builds a query large enough that its dynamic program runs for
// hundreds of milliseconds, leaving a window to cancel mid-level.
func bigModel(t testing.TB) *costmodel.Model {
	t.Helper()
	_, q := synthetic.MustBuild(synthetic.Spec{
		Shape: synthetic.Chain, Tables: 13, MaxRows: 1e5, Seed: 3,
	})
	return costmodel.NewDefault(q)
}

// TestCancelPrompt: cancelling mid-run must abort the dynamic program well
// before it would finish, return the context's error, and leave no pool
// goroutine behind (the level barrier drains every worker).
func TestCancelPrompt(t *testing.T) {
	m := bigModel(t)
	w := objective.UniformWeights(threeObjs)
	opts := Options{Objectives: threeObjs, Alpha: 1.2, Workers: 4}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RTAContext(ctx, m, w, opts)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RTAContext after cancel: err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
	// All pool goroutines must have drained through the level barrier.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancel", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelScalar: the scalar dynamic program (Selinger/WeightedSum) has
// no degraded mode, so cancellation must abort it with an error rather
// than returning a partially enumerated (possibly non-optimal) plan.
func TestCancelScalar(t *testing.T) {
	// A clique keeps every split predicate-connected, so the scalar DP —
	// much cheaper per set than the Pareto DP — still runs long enough to
	// observe the cancellation.
	_, q := synthetic.MustBuild(synthetic.Spec{
		Shape: synthetic.Clique, Tables: 13, MaxRows: 1e5, Seed: 3,
	})
	m := costmodel.NewDefault(q)
	opts := Options{Objectives: threeObjs, Workers: 2}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, err := SelingerContext(ctx, m, objective.TotalTime, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SelingerContext after cancel: err = %v, want context.Canceled", err)
	}
}

// TestCancelBeforeStart: an already-cancelled context aborts before any
// dynamic programming happens, for every algorithm entry point.
func TestCancelBeforeStart(t *testing.T) {
	_, q := synthetic.MustBuild(synthetic.Spec{
		Shape: synthetic.Chain, Tables: 5, MaxRows: 1e4, Seed: 1,
	})
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	opts := Options{Objectives: threeObjs, Alpha: 1.2}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	calls := map[string]func() error{
		"EXA": func() error { _, err := EXAContext(ctx, m, w, objective.NoBounds(), opts); return err },
		"RTA": func() error { _, err := RTAContext(ctx, m, w, opts); return err },
		"IRA": func() error { _, err := IRAContext(ctx, m, w, objective.NoBounds(), opts); return err },
		"RTAVector": func() error {
			_, err := RTAVectorContext(ctx, m, w, objective.UniformPrecision(1.2, threeObjs), opts)
			return err
		},
		"Selinger":    func() error { _, err := SelingerContext(ctx, m, objective.TotalTime, opts); return err },
		"WeightedSum": func() error { _, err := WeightedSumDPContext(ctx, m, w, opts); return err },
		"Minima":      func() error { _, err := ObjectiveMinimaContext(ctx, m, opts); return err },
	}
	for name, call := range calls {
		if err := call(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with pre-cancelled ctx: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestContextDeadlineDegrades: a context deadline must behave exactly like
// Options.Timeout — the run degrades (paper Section 5.1) and still returns
// a plan with Stats.TimedOut set, instead of erroring out.
func TestContextDeadlineDegrades(t *testing.T) {
	m := bigModel(t)
	w := objective.UniformWeights(threeObjs)
	opts := Options{Objectives: threeObjs, Alpha: 1.2, Workers: 2}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	res, err := RTAContext(ctx, m, w, opts)
	if err != nil {
		t.Fatalf("RTAContext with deadline: %v (a deadline should degrade, not error)", err)
	}
	if !res.Stats.TimedOut {
		t.Fatalf("Stats.TimedOut = false after context deadline; run took %v", res.Stats.Duration)
	}
	if res.Best == nil {
		t.Fatal("degraded run returned no plan")
	}
}

// TestContextDeadlineMatchesTimeout: with both a context deadline and an
// Options.Timeout set, the earlier one governs degradation.
func TestContextDeadlineMatchesTimeout(t *testing.T) {
	m := bigModel(t)
	w := objective.UniformWeights(threeObjs)
	opts := Options{Objectives: threeObjs, Alpha: 1.2, Timeout: time.Hour}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := RTAContext(ctx, m, w, opts)
	if err != nil {
		t.Fatalf("RTAContext: %v", err)
	}
	if !res.Stats.TimedOut {
		t.Fatal("the earlier context deadline should have fired despite the 1h Options.Timeout")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("degradation after %v, want well under the 1h Options.Timeout", elapsed)
	}
}

// TestPreExpiredDeadlineDegrades: a deadline that expired before the call
// even started must still degrade into a plan — for the IRA in
// particular, whose refinement loop used to break before its first
// iteration and return no frontier at all.
func TestPreExpiredDeadlineDegrades(t *testing.T) {
	_, q := synthetic.MustBuild(synthetic.Spec{
		Shape: synthetic.Chain, Tables: 6, MaxRows: 1e4, Seed: 1,
	})
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	b := objective.NoBounds().With(objective.BufferFootprint, 1e12)
	opts := Options{Objectives: threeObjs, Alpha: 1.5}

	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	res, err := IRAContext(ctx, m, w, b, opts)
	if err != nil {
		t.Fatalf("IRAContext under pre-expired deadline: %v (should degrade, not fail)", err)
	}
	if res.Best == nil || res.Frontier == nil {
		t.Fatalf("degraded IRA returned Best=%v Frontier=%v, want a plan and a frontier", res.Best, res.Frontier)
	}
	if !res.Stats.TimedOut {
		t.Error("Stats.TimedOut not set")
	}

	// Same guarantee for a sub-microsecond plain Timeout.
	opts.Timeout = time.Nanosecond
	res, err = IRA(m, w, b, opts)
	if err != nil || res.Best == nil || res.Frontier == nil {
		t.Fatalf("IRA with 1ns timeout: res=%+v err=%v", res, err)
	}
}

// TestCancelCause: a cancellation cause set via WithCancelCause surfaces
// through the engine.
func TestCancelCause(t *testing.T) {
	m := bigModel(t)
	w := objective.UniformWeights(threeObjs)
	opts := Options{Objectives: threeObjs, Alpha: 1.2, Workers: 2}

	sentinel := errors.New("client went away")
	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel(sentinel)
	}()
	_, err := RTAContext(ctx, m, w, opts)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the cancellation cause %v", err, sentinel)
	}
}
