// Package core implements the multi-objective query optimization
// algorithms the paper studies (Trummer & Koch, "Approximation Schemes for
// Many-Objective Query Optimization", SIGMOD 2014):
//
//   - EXA — the exact multi-objective dynamic program of Ganguly et al.
//     (paper Algorithm 1): Selinger-style bushy DP with Pareto-set pruning.
//   - RTA — the representative-tradeoffs algorithm (Algorithm 2): the same
//     DP with approximate-dominance pruning at internal precision
//     αi = αU^(1/|Q|); an approximation scheme for weighted MOQO
//     (Theorem 3, Corollary 1).
//   - IRA — the iterative-refinement algorithm (Algorithm 3): repeated RTA
//     runs at geometrically refined precision with a stopping condition
//     that certifies αU-approximation for bounded-weighted MOQO
//     (Theorems 6-8).
//   - RTAVector — a beyond-paper extension of the RTA with per-objective
//     precisions (coarse on tolerant objectives, exact on strict ones).
//   - Single-objective baselines: a Selinger-style DP (used for the
//     paper's single-objective measurements and for deriving per-objective
//     minima when generating bounds) and the unsound weighted-sum DP that
//     the paper's Example 1 rules out.
//
// All algorithms share one enumeration engine (engine.go) that implements
// the Postgres search-space heuristic the paper kept in place: Cartesian
// products are considered only when no predicate-connected split exists.
// The engine is layered into four pieces:
//
//   - an enumerator (enumerator.go): level-by-level table-set
//     materialization with dense integer ids, pre-warming the cost
//     model's cardinality and width memos on one goroutine. Under
//     Options.Enumeration's graph-aware strategy (the default for
//     connected join graphs) the levels are built by connected-subgraph
//     traversal (query.EachConnectedSubset) and the candidate loops
//     visit only predicate-connected csg-cmp splits, so sparse
//     topologies pay polynomial enumeration work instead of the
//     exhaustive Gosper scan's 2^n; the graph-aware loop emits its
//     splits in the scan's canonical order, making results bit-for-bit
//     identical across strategies (the differential tests pin this);
//   - a slice-backed memo table of flat Pareto archives
//     (pareto.FlatArchive) indexed by those ids — the candidate loops
//     never hash;
//   - a level-synchronized worker pool (pool.go) that shards each
//     cardinality level across Options.Workers goroutines without
//     weakening any approximation guarantee;
//   - a deferred materializer (internal/plan) that rebuilds *plan.Node
//     trees from the memo's compact entries only at frontier extraction.
//
// The candidate loop is allocation-free: a candidate is a (cost vector,
// plan.Entry) pair on the stack, costed directly from the operand sets
// and cost rows (costmodel.JoinCostVec), and offered to a flat archive
// whose insert allocates nothing after warm-up. Extracted frontiers are
// canonically sorted, so results are byte-for-byte reproducible across
// worker counts and schedules. The pre-refactor tree-allocating engine is
// preserved (reference.go: ReferenceEXA, ReferenceRTA) as the
// differential-testing oracle and as the baseline arm of the hotpath
// benchmark (internal/bench, cmd/experiments -fig hotpath).
//
// Every algorithm has a Context variant (EXAContext, RTAContext, ...):
// cancelling the context aborts the dynamic program promptly with the
// context's error, while a context deadline folds into the paper's
// timeout/degradation path (Section 5.1) — untreated table sets get a
// single best-weighted plan and the run still returns a usable Result
// with Stats.TimedOut set. The deadline is observed from the very first
// phase: if it expires while the enumerator is still materializing
// levels (the exhaustive strategy's 2^n Gosper scan on 30+ relation
// queries, or an exponential connected-subset walk), the enumeration
// falls back to a minimal left-deep chain and the degraded path still
// returns a plan in O(n) work.
//
// Because archive pruning never reads the user's weights or bounds, the
// final frontier of a completed run is reusable across weight and bound
// changes. Options.CaptureSnapshot extracts it as a FrontierSnapshot —
// the frontier's cost rows and compact entries in canonical order plus
// the closed sub-memo they reference, with a versioned binary
// serialization — and Result.Snapshot returns it. SelectFromSnapshot
// answers a re-weighted request from a snapshot with a SelectBest scan
// (bit-for-bit the cold EXA/RTA answer), and IRASeededContext seeds the
// bounded refinement loop from one (the Theorem 6 stopping condition
// evaluated at the snapshot's recorded precision). The moqo package and
// the moqod service build their frontier-cache tier on these.
package core
