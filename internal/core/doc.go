// Package core implements the multi-objective query optimization
// algorithms the paper studies (Trummer & Koch, "Approximation Schemes for
// Many-Objective Query Optimization", SIGMOD 2014):
//
//   - EXA — the exact multi-objective dynamic program of Ganguly et al.
//     (paper Algorithm 1): Selinger-style bushy DP with Pareto-set pruning.
//   - RTA — the representative-tradeoffs algorithm (Algorithm 2): the same
//     DP with approximate-dominance pruning at internal precision
//     αi = αU^(1/|Q|); an approximation scheme for weighted MOQO
//     (Theorem 3, Corollary 1).
//   - IRA — the iterative-refinement algorithm (Algorithm 3): repeated RTA
//     runs at geometrically refined precision with a stopping condition
//     that certifies αU-approximation for bounded-weighted MOQO
//     (Theorems 6-8).
//   - RTAVector — a beyond-paper extension of the RTA with per-objective
//     precisions (coarse on tolerant objectives, exact on strict ones).
//   - Single-objective baselines: a Selinger-style DP (used for the
//     paper's single-objective measurements and for deriving per-objective
//     minima when generating bounds) and the unsound weighted-sum DP that
//     the paper's Example 1 rules out.
//
// All algorithms share one enumeration engine (engine.go) that implements
// the Postgres search-space heuristic the paper kept in place: Cartesian
// products are considered only when no predicate-connected split exists.
// The engine is layered into an enumerator (enumerator.go: level-by-level
// table-set materialization with dense integer ids), a slice-backed memo
// table, and a level-synchronized worker pool (pool.go) that shards each
// cardinality level across Options.Workers goroutines without weakening
// any approximation guarantee.
//
// Every algorithm has a Context variant (EXAContext, RTAContext, ...):
// cancelling the context aborts the dynamic program promptly with the
// context's error, while a context deadline folds into the paper's
// timeout/degradation path (Section 5.1) — untreated table sets get a
// single best-weighted plan and the run still returns a usable Result
// with Stats.TimedOut set.
package core
