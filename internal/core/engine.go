package core

import (
	"math"

	"time"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/pareto"
	"moqo/internal/plan"
	"moqo/internal/query"
)

// engine is the shared bushy dynamic program over table-set bitsets. It
// implements FindParetoPlans of Algorithms 1 and 2: archives with pruning
// precision 1 yield the EXA, precision > 1 the RTA.
type engine struct {
	q    *query.Query
	m    *costmodel.Model
	opts Options

	// alphaInternal is the pruning precision αi used by the archives.
	alphaInternal float64

	// precInternal, when non-nil, replaces alphaInternal with a
	// per-objective internal precision vector (RTAVector extension).
	precInternal *objective.Precision

	// weights steer the degraded single-plan mode after a timeout.
	weights objective.Weights

	archives map[query.TableSet]*pareto.Archive

	deadline   time.Time
	hasTimeout bool
	timedOut   bool

	considered int
	paretoLast int
	checkTick  int
}

// newEngine prepares an engine run. alphaInternal >= 1 is the archive
// pruning precision (1 = exact).
func newEngine(m *costmodel.Model, opts Options, alphaInternal float64, w objective.Weights) *engine {
	e := &engine{
		q:             m.Query(),
		m:             m,
		opts:          opts,
		alphaInternal: alphaInternal,
		weights:       w,
		archives:      make(map[query.TableSet]*pareto.Archive),
	}
	if opts.Timeout > 0 {
		e.deadline = time.Now().Add(opts.Timeout)
		e.hasTimeout = true
	}
	return e
}

// newArchive constructs an archive with the engine's pruning precision.
func (e *engine) newArchive() *pareto.Archive {
	if e.precInternal != nil {
		return pareto.NewPrecisionArchive(e.opts.Objectives, *e.precInternal)
	}
	return pareto.NewArchive(e.opts.Objectives, e.alphaInternal)
}

// expired checks the deadline (amortized: every 1024 calls).
func (e *engine) expired() bool {
	if !e.hasTimeout || e.timedOut {
		return e.timedOut
	}
	e.checkTick++
	if e.checkTick&1023 != 0 {
		return false
	}
	if time.Now().After(e.deadline) {
		e.timedOut = true
	}
	return e.timedOut
}

// run executes the dynamic program and returns the archive of the full
// table set. It mirrors FindParetoPlans of Algorithm 1/2: plans for
// singleton sets first, then table sets of increasing cardinality.
func (e *engine) run() *pareto.Archive {
	n := e.q.NumRelations()
	all := e.q.AllTables()
	graphConnected := e.q.Connected(all)

	// Access paths for single tables.
	for r := 0; r < n; r++ {
		s := query.Singleton(r)
		a := e.newArchive()
		for _, p := range e.m.ScanAlternatives(r, e.opts.sampling()) {
			e.considered++
			a.Insert(p)
		}
		e.archives[s] = a
		e.paretoLast = a.Len()
	}

	// Table sets of increasing cardinality. Subsets of each cardinality
	// are enumerated with Gosper's hack.
	for k := 2; k <= n; k++ {
		first := query.TableSet(1)<<uint(k) - 1
		for s := first; s < query.TableSet(1)<<uint(n); s = nextSameCard(s) {
			if graphConnected && !e.q.Connected(s) {
				// Standard connected-subgraph restriction: with a
				// connected join graph, optimal plans never join
				// disconnected intermediate results (Postgres
				// heuristic (i) never takes Cartesian products then).
				continue
			}
			if e.expired() {
				e.degradedSet(s)
			} else {
				e.fullSet(s)
			}
			if s == all {
				break
			}
		}
	}
	return e.archives[all]
}

// fullSet treats one table set exhaustively, inserting every candidate
// into its archive. If the timeout fires mid-set, the set's archive is
// kept as-is and completion is not recorded.
func (e *engine) fullSet(s query.TableSet) {
	a := e.newArchive()
	e.archives[s] = a
	complete := e.forEachCandidate(s, func(p *plan.Node) bool {
		a.Insert(p)
		return !e.expired()
	})
	if complete {
		e.paretoLast = a.Len()
	}
}

// degradedSet implements the paper's timeout handling (Section 5.1): table
// sets not treated before the timeout get only one plan — the best by
// weighted cost — so that optimization finishes quickly. To keep the
// degraded mode cheap even when the pre-timeout archives are large, each
// split only combines the weighted-best plan of either side rather than
// every stored pair. Degraded sets do not update the "last table set
// treated completely" metric.
func (e *engine) degradedSet(s query.TableSet) {
	scalar := func(v objective.Vector) float64 { return e.weights.Cost(v) }
	reduced := e.reducedArchives(s, scalar)
	var best *plan.Node
	bestCost := math.Inf(1)
	e.forEachCandidateFrom(s, reduced, func(p *plan.Node) bool {
		if c := scalar(p.Cost); c < bestCost {
			best, bestCost = p, c
		}
		return true
	})
	a := e.newArchive()
	if best != nil {
		a.Insert(best)
	}
	e.archives[s] = a
}

// reducedArchives builds a one-plan-per-subset view of the stored archives
// (keeping the scalar-best plan of each), used by the degraded mode.
func (e *engine) reducedArchives(s query.TableSet, scalar func(objective.Vector) float64) map[query.TableSet]*pareto.Archive {
	reduced := make(map[query.TableSet]*pareto.Archive)
	s.EachSubset(func(sub, _ query.TableSet) bool {
		if _, done := reduced[sub]; done {
			return true
		}
		full := e.archives[sub]
		if full == nil || full.Len() == 0 {
			return true
		}
		var best *plan.Node
		bestCost := math.Inf(1)
		for _, p := range full.Plans() {
			if c := scalar(p.Cost); c < bestCost {
				best, bestCost = p, c
			}
		}
		a := e.newArchive()
		a.Insert(best)
		reduced[sub] = a
		return true
	})
	return reduced
}

// bestOnlySet stores a single plan for table set s: the candidate
// minimizing the given scalar metric. Used by the scalar (single-
// objective) dynamic program, whose archives already hold one plan each.
func (e *engine) bestOnlySet(s query.TableSet, scalar func(objective.Vector) float64) {
	var best *plan.Node
	bestCost := math.Inf(1)
	e.forEachCandidate(s, func(p *plan.Node) bool {
		if c := scalar(p.Cost); c < bestCost {
			best, bestCost = p, c
		}
		return true
	})
	a := e.newArchive()
	if best != nil {
		a.Insert(best)
	}
	e.archives[s] = a
}

// runScalar executes a single-objective (scalar-pruned) dynamic program:
// every table set keeps exactly one plan, the one minimizing the scalar
// metric. With a scalar that reads one objective this is Selinger's
// algorithm generalized to bushy plans; with a weighted sum over multiple
// diverse objectives it is the unsound baseline of the paper's Example 1.
// Returns the best plan for the full table set.
func (e *engine) runScalar(scalar func(objective.Vector) float64) *plan.Node {
	n := e.q.NumRelations()
	all := e.q.AllTables()
	graphConnected := e.q.Connected(all)

	for r := 0; r < n; r++ {
		s := query.Singleton(r)
		var best *plan.Node
		bestCost := math.Inf(1)
		for _, p := range e.m.ScanAlternatives(r, e.opts.sampling()) {
			e.considered++
			if c := scalar(p.Cost); c < bestCost {
				best, bestCost = p, c
			}
		}
		a := pareto.NewArchive(e.opts.Objectives, 1)
		if best != nil {
			a.Insert(best)
		}
		e.archives[s] = a
		e.paretoLast = a.Len()
	}
	for k := 2; k <= n; k++ {
		first := query.TableSet(1)<<uint(k) - 1
		for s := first; s < query.TableSet(1)<<uint(n); s = nextSameCard(s) {
			if !graphConnected || e.q.Connected(s) {
				e.bestOnlySet(s, scalar)
				e.paretoLast = e.archives[s].Len()
			}
			if s == all {
				break
			}
		}
	}
	a := e.archives[all]
	if a == nil || a.Len() == 0 {
		return nil
	}
	return a.Plans()[0]
}

// forEachCandidate constructs every candidate plan for table set s —
// all splits into two non-empty subsets, all join operators and DOPs, all
// combinations of stored sub-plans — and yields each to fn. It returns
// false if fn aborted the enumeration.
//
// Cartesian-product splits are considered only when s has no
// predicate-connected split (Postgres heuristic (i), kept in place by the
// paper); in that fallback case only nested-loop joins apply, since hash
// and sort-merge joins need an equi-join predicate.
func (e *engine) forEachCandidate(s query.TableSet, fn func(*plan.Node) bool) bool {
	return e.forEachCandidateFrom(s, e.archives, fn)
}

// forEachCandidateFrom is forEachCandidate over an explicit sub-plan store
// (the degraded mode passes a reduced one-plan-per-subset view).
func (e *engine) forEachCandidateFrom(s query.TableSet, store map[query.TableSet]*pareto.Archive, fn func(*plan.Node) bool) bool {
	hasEdgeSplit := false
	abort := false
	s.EachSubset(func(left, right query.TableSet) bool {
		if e.opts.LeftDeepOnly && !right.Single() {
			return true
		}
		if !splitStored(store, left, right) {
			return true
		}
		if len(e.q.CrossingEdges(left, right)) > 0 {
			hasEdgeSplit = true
			if !e.edgeSplit(store, left, right, fn) {
				abort = true
				return false
			}
		}
		return true
	})
	if abort {
		return false
	}
	if hasEdgeSplit {
		return true
	}
	// Cartesian fallback: no predicate-connected split exists.
	s.EachSubset(func(left, right query.TableSet) bool {
		if e.opts.LeftDeepOnly && !right.Single() {
			return true
		}
		if !splitStored(store, left, right) {
			return true
		}
		for _, pl := range store[left].Plans() {
			for _, pr := range store[right].Plans() {
				for dop := 1; dop <= e.opts.MaxDOP; dop++ {
					e.considered++
					if !fn(e.m.NewJoin(plan.BlockNLJoin, dop, pl, pr)) {
						abort = true
						return false
					}
				}
			}
		}
		return true
	})
	return !abort
}

// splitStored reports whether both sides of a split have stored plans.
func splitStored(store map[query.TableSet]*pareto.Archive, left, right query.TableSet) bool {
	al, ar := store[left], store[right]
	return al != nil && ar != nil && al.Len() > 0 && ar.Len() > 0
}

// edgeSplit enumerates the candidates of one predicate-connected split.
func (e *engine) edgeSplit(store map[query.TableSet]*pareto.Archive, left, right query.TableSet, fn func(*plan.Node) bool) bool {
	// Index-nested-loop: inner side must be a single base relation with an
	// index on the join column; the inner lookup replaces a stored inner
	// plan, so it is generated once per outer plan.
	if right.Single() {
		if rel := right.First(); e.m.InnerIndexColumn(left, rel) != "" {
			for _, pl := range store[left].Plans() {
				e.considered++
				if !fn(e.m.NewIndexNL(pl, rel)) {
					return false
				}
			}
		}
	}
	for _, pl := range store[left].Plans() {
		for _, pr := range store[right].Plans() {
			for _, alg := range []plan.JoinAlg{plan.HashJoin, plan.SortMergeJoin, plan.BlockNLJoin} {
				for dop := 1; dop <= e.opts.MaxDOP; dop++ {
					e.considered++
					if !fn(e.m.NewJoin(alg, dop, pl, pr)) {
						return false
					}
				}
			}
		}
	}
	return true
}

// stats summarizes the run.
func (e *engine) stats(start time.Time) Stats {
	stored := 0
	for _, a := range e.archives {
		stored += a.Len()
	}
	return Stats{
		Duration:    time.Since(start),
		Considered:  e.considered,
		Stored:      stored,
		MemoryBytes: int64(stored) * planBytes,
		ParetoLast:  e.paretoLast,
		TimedOut:    e.timedOut,
		Iterations:  1,
	}
}

// nextSameCard returns the next larger bitset with the same population
// count (Gosper's hack).
func nextSameCard(s query.TableSet) query.TableSet {
	v := uint64(s)
	c := v & (^v + 1)
	r := v + c
	return query.TableSet(r | (((v ^ r) >> 2) / c))
}
