package core

import (
	"context"
	"math"
	"sync/atomic"
	"time"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/pareto"
	"moqo/internal/plan"
	"moqo/internal/query"
)

// engine is the shared bushy dynamic program over table-set bitsets. It
// implements FindParetoPlans of Algorithms 1 and 2: archives with pruning
// precision 1 yield the EXA, precision > 1 the RTA.
//
// The engine is layered into three decoupled pieces:
//
//   - an enumerator (enumerator.go) that materializes the table sets of
//     each cardinality level and assigns dense integer ids,
//   - a slice-backed memo table (memoTable) indexed by those ids, and
//   - a level-synchronized worker pool (pool.go) that shards each level
//     across Options.Workers goroutines.
//
// All table sets of cardinality k depend only on sets of cardinality
// < k, so levels parallelize without locks: workers write disjoint memo
// slots and read only lower levels, which the level barrier has made
// immutable. With Workers=1 the engine is exactly the sequential dynamic
// program of the paper, candidate for candidate.
type engine struct {
	q    *query.Query
	m    *costmodel.Model
	opts Options

	// alphaInternal is the pruning precision αi used by the archives.
	alphaInternal float64

	// precInternal, when non-nil, replaces alphaInternal with a
	// per-objective internal precision vector (RTAVector extension).
	precInternal *objective.Precision

	// weights steer the degraded single-plan mode after a timeout.
	weights objective.Weights

	enum *enumeration
	memo *memoTable
	// lookupMemo is memo.lookup bound once, so the hot path does not
	// re-create the method value per table set.
	lookupMemo func(query.TableSet) *pareto.Archive

	workers []worker

	// ctx carries the caller's cancellation signal into the dynamic
	// program; ctxDone is ctx.Done() bound once (nil for background
	// contexts, keeping the amortized check free when no cancellation is
	// possible).
	ctx     context.Context
	ctxDone <-chan struct{}

	deadline   time.Time
	hasTimeout bool
	// timedOut is shared across workers: the first worker to observe the
	// deadline latches it, switching every worker to degraded mode. A
	// context *deadline* folds into the same latch — the run degrades
	// gracefully and still returns a plan, exactly as with Options.Timeout.
	timedOut atomic.Bool
	// cancelled is latched when the context is cancelled for any reason
	// other than a deadline (client disconnect, explicit cancel). Unlike a
	// timeout there is no caller left to serve, so workers abandon their
	// remaining sets instead of degrading, and the run reports ctx.Err().
	cancelled atomic.Bool
}

// newEngine prepares an engine run. alphaInternal >= 1 is the archive
// pruning precision (1 = exact). opts must be normalized (Workers >= 1).
// ctx cancellation aborts the run; a ctx deadline is folded into the
// timeout/degrade machinery (the earlier of ctx deadline and Options.
// Timeout wins).
func newEngine(ctx context.Context, m *costmodel.Model, opts Options, alphaInternal float64, w objective.Weights) *engine {
	if ctx == nil {
		ctx = context.Background()
	}
	e := &engine{
		q:             m.Query(),
		m:             m,
		opts:          opts,
		alphaInternal: alphaInternal,
		weights:       w,
		ctx:           ctx,
		ctxDone:       ctx.Done(),
	}
	e.enum = enumerate(e.q)
	e.memo = newMemoTable(e.enum)
	e.lookupMemo = e.memo.lookup
	nw := opts.Workers
	if nw < 1 {
		nw = 1
	}
	e.workers = make([]worker, nw)
	for i := range e.workers {
		e.workers[i] = worker{e: e, maxDoneID: -1}
	}
	if opts.Timeout > 0 {
		e.deadline = time.Now().Add(opts.Timeout)
		e.hasTimeout = true
	}
	if d, ok := ctx.Deadline(); ok && (!e.hasTimeout || d.Before(e.deadline)) {
		e.deadline = d
		e.hasTimeout = true
	}
	return e
}

// cancelErr returns the context's error if the run was abandoned because
// of a cancellation (not a deadline — deadlines degrade and still produce
// a result). Called by the algorithms after run()/runScalar() return.
func (e *engine) cancelErr() error {
	if !e.cancelled.Load() {
		return nil
	}
	if err := context.Cause(e.ctx); err != nil {
		return err
	}
	return context.Canceled
}

// newArchive constructs an archive with the engine's pruning precision.
func (e *engine) newArchive() *pareto.Archive {
	if e.precInternal != nil {
		return pareto.NewPrecisionArchive(e.opts.Objectives, *e.precInternal)
	}
	return pareto.NewArchive(e.opts.Objectives, e.alphaInternal)
}

// run executes the dynamic program and returns the archive of the full
// table set. It mirrors FindParetoPlans of Algorithm 1/2: plans for
// singleton sets first, then table sets of increasing cardinality.
func (e *engine) run() *pareto.Archive {
	e.runLevels(func(w *worker, id int32, s query.TableSet) {
		if s.Single() {
			w.scanSet(id, s)
		} else if w.expired() {
			// Timeout: degrade to a single best-weighted plan (paper
			// Section 5.1). Cancellation: there is no caller left to serve,
			// so skip the set entirely — the run reports ctx.Err().
			if !e.cancelled.Load() {
				w.degradedSet(id, s)
			}
		} else {
			w.fullSet(id, s)
		}
	})
	return e.memo.lookup(e.enum.all)
}

// runScalar executes a single-objective (scalar-pruned) dynamic program:
// every table set keeps exactly one plan, the one minimizing the scalar
// metric. With a scalar that reads one objective this is Selinger's
// algorithm generalized to bushy plans; with a weighted sum over multiple
// diverse objectives it is the unsound baseline of the paper's Example 1.
// Returns the best plan for the full table set.
func (e *engine) runScalar(scalar func(objective.Vector) float64) *plan.Node {
	e.runLevels(func(w *worker, id int32, s query.TableSet) {
		if s.Single() {
			w.scanBestSet(id, s, scalar)
		} else {
			w.bestOnlySet(id, s, scalar)
		}
	})
	a := e.memo.lookup(e.enum.all)
	if a == nil || a.Len() == 0 {
		return nil
	}
	return a.Plans()[0]
}

// scanSet fills the archive of a singleton set with all access paths.
func (w *worker) scanSet(id int32, s query.TableSet) {
	e := w.e
	a := e.newArchive()
	for _, p := range e.m.ScanAlternatives(s.First(), e.opts.sampling()) {
		w.considered++
		a.Insert(p)
	}
	e.memo.archives[id] = a
	w.markDone(id, a.Len())
}

// scanBestSet is scanSet for the scalar dynamic program: it keeps only
// the access path minimizing the scalar metric.
func (w *worker) scanBestSet(id int32, s query.TableSet, scalar func(objective.Vector) float64) {
	e := w.e
	var best *plan.Node
	bestCost := math.Inf(1)
	for _, p := range e.m.ScanAlternatives(s.First(), e.opts.sampling()) {
		w.considered++
		if c := scalar(p.Cost); c < bestCost {
			best, bestCost = p, c
		}
	}
	a := e.newArchive()
	if best != nil {
		a.Insert(best)
	}
	e.memo.archives[id] = a
	w.markDone(id, a.Len())
}

// fullSet treats one table set exhaustively, inserting every candidate
// into its archive. If the timeout fires mid-set, the set's archive is
// kept as-is and completion is not recorded.
func (w *worker) fullSet(id int32, s query.TableSet) {
	a := w.e.newArchive()
	w.e.memo.archives[id] = a
	complete := w.forEachCandidate(s, func(p *plan.Node) bool {
		a.Insert(p)
		return !w.expired()
	})
	if complete {
		w.markDone(id, a.Len())
	}
}

// degradedSet implements the paper's timeout handling (Section 5.1): table
// sets not treated before the timeout get only one plan — the best by
// weighted cost — so that optimization finishes quickly. To keep the
// degraded mode cheap even when the pre-timeout archives are large, each
// split only combines the weighted-best plan of either side rather than
// every stored pair. Degraded sets do not update the "last table set
// treated completely" metric.
func (w *worker) degradedSet(id int32, s query.TableSet) {
	e := w.e
	scalar := func(v objective.Vector) float64 { return e.weights.Cost(v) }
	reduced := w.reducedArchives(s, scalar)
	var best *plan.Node
	bestCost := math.Inf(1)
	lookup := func(t query.TableSet) *pareto.Archive { return reduced[t] }
	w.forEachCandidateFrom(s, lookup, func(p *plan.Node) bool {
		if c := scalar(p.Cost); c < bestCost {
			best, bestCost = p, c
		}
		return true
	})
	a := e.newArchive()
	if best != nil {
		a.Insert(best)
	}
	e.memo.archives[id] = a
}

// reducedArchives builds a one-plan-per-subset view of the stored archives
// (keeping the scalar-best plan of each), used by the degraded mode.
func (w *worker) reducedArchives(s query.TableSet, scalar func(objective.Vector) float64) map[query.TableSet]*pareto.Archive {
	e := w.e
	reduced := make(map[query.TableSet]*pareto.Archive)
	s.EachSubset(func(sub, _ query.TableSet) bool {
		if _, done := reduced[sub]; done {
			return true
		}
		full := e.memo.lookup(sub)
		if full == nil || full.Len() == 0 {
			return true
		}
		var best *plan.Node
		bestCost := math.Inf(1)
		for _, p := range full.Plans() {
			if c := scalar(p.Cost); c < bestCost {
				best, bestCost = p, c
			}
		}
		a := e.newArchive()
		a.Insert(best)
		reduced[sub] = a
		return true
	})
	return reduced
}

// bestOnlySet stores a single plan for table set s: the candidate
// minimizing the given scalar metric. Used by the scalar (single-
// objective) dynamic program, whose archives already hold one plan each.
// Only cancellation aborts the enumeration (see worker.interrupted): the
// scalar DP has no degraded mode, so the timeout is ignored here.
func (w *worker) bestOnlySet(id int32, s query.TableSet, scalar func(objective.Vector) float64) {
	var best *plan.Node
	bestCost := math.Inf(1)
	w.forEachCandidate(s, func(p *plan.Node) bool {
		if c := scalar(p.Cost); c < bestCost {
			best, bestCost = p, c
		}
		return !w.interrupted()
	})
	a := w.e.newArchive()
	if best != nil {
		a.Insert(best)
	}
	w.e.memo.archives[id] = a
	w.markDone(id, a.Len())
}

// forEachCandidate constructs every candidate plan for table set s —
// all splits into two non-empty subsets, all join operators and DOPs, all
// combinations of stored sub-plans — and yields each to fn. It returns
// false if fn aborted the enumeration.
//
// Cartesian-product splits are considered only when s has no
// predicate-connected split (Postgres heuristic (i), kept in place by the
// paper); in that fallback case only nested-loop joins apply, since hash
// and sort-merge joins need an equi-join predicate.
func (w *worker) forEachCandidate(s query.TableSet, fn func(*plan.Node) bool) bool {
	return w.forEachCandidateFrom(s, w.e.lookupMemo, fn)
}

// forEachCandidateFrom is forEachCandidate over an explicit sub-plan store
// (the degraded mode passes a reduced one-plan-per-subset view; the full
// mode passes the slice-backed memo, so no split lookup ever hashes).
func (w *worker) forEachCandidateFrom(s query.TableSet, lookup func(query.TableSet) *pareto.Archive, fn func(*plan.Node) bool) bool {
	e := w.e
	hasEdgeSplit := false
	abort := false
	s.EachSubset(func(left, right query.TableSet) bool {
		if e.opts.LeftDeepOnly && !right.Single() {
			return true
		}
		al, ar := lookup(left), lookup(right)
		if !splitStored(al, ar) {
			return true
		}
		if len(e.q.CrossingEdges(left, right)) > 0 {
			hasEdgeSplit = true
			if !w.edgeSplit(al, ar, left, right, fn) {
				abort = true
				return false
			}
		}
		return true
	})
	if abort {
		return false
	}
	if hasEdgeSplit {
		return true
	}
	// Cartesian fallback: no predicate-connected split exists.
	s.EachSubset(func(left, right query.TableSet) bool {
		if e.opts.LeftDeepOnly && !right.Single() {
			return true
		}
		al, ar := lookup(left), lookup(right)
		if !splitStored(al, ar) {
			return true
		}
		for _, pl := range al.Plans() {
			for _, pr := range ar.Plans() {
				for dop := 1; dop <= e.opts.MaxDOP; dop++ {
					w.considered++
					if !fn(e.m.NewJoin(plan.BlockNLJoin, dop, pl, pr)) {
						abort = true
						return false
					}
				}
			}
		}
		return true
	})
	return !abort
}

// splitStored reports whether both sides of a split have stored plans.
func splitStored(al, ar *pareto.Archive) bool {
	return al != nil && ar != nil && al.Len() > 0 && ar.Len() > 0
}

// edgeSplit enumerates the candidates of one predicate-connected split.
func (w *worker) edgeSplit(al, ar *pareto.Archive, left, right query.TableSet, fn func(*plan.Node) bool) bool {
	e := w.e
	// Index-nested-loop: inner side must be a single base relation with an
	// index on the join column; the inner lookup replaces a stored inner
	// plan, so it is generated once per outer plan.
	if right.Single() {
		if rel := right.First(); e.m.InnerIndexColumn(left, rel) != "" {
			for _, pl := range al.Plans() {
				w.considered++
				if !fn(e.m.NewIndexNL(pl, rel)) {
					return false
				}
			}
		}
	}
	for _, pl := range al.Plans() {
		for _, pr := range ar.Plans() {
			for _, alg := range []plan.JoinAlg{plan.HashJoin, plan.SortMergeJoin, plan.BlockNLJoin} {
				for dop := 1; dop <= e.opts.MaxDOP; dop++ {
					w.considered++
					if !fn(e.m.NewJoin(alg, dop, pl, pr)) {
						return false
					}
				}
			}
		}
	}
	return true
}

// stats summarizes the run, folding the worker-private counters together.
func (e *engine) stats(start time.Time) Stats {
	stored := 0
	for _, a := range e.memo.archives {
		if a != nil {
			stored += a.Len()
		}
	}
	considered := 0
	maxDoneID := int32(-1)
	paretoLast := 0
	for i := range e.workers {
		w := &e.workers[i]
		considered += w.considered
		if w.maxDoneID > maxDoneID {
			maxDoneID = w.maxDoneID
			paretoLast = w.maxDoneLen
		}
	}
	return Stats{
		Duration:    time.Since(start),
		Considered:  considered,
		Stored:      stored,
		MemoryBytes: int64(stored) * planBytes,
		ParetoLast:  paretoLast,
		TimedOut:    e.timedOut.Load(),
		Iterations:  1,
	}
}
