package core

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"slices"
	"sort"
	"sync/atomic"
	"time"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/pareto"
	"moqo/internal/plan"
	"moqo/internal/query"
)

// engine is the shared bushy dynamic program over table-set bitsets. It
// implements FindParetoPlans of Algorithms 1 and 2: archives with pruning
// precision 1 yield the EXA, precision > 1 the RTA.
//
// The engine is layered into four decoupled pieces:
//
//   - an enumerator (enumerator.go) that materializes the table sets of
//     each cardinality level and assigns dense integer ids,
//   - a slice-backed memo table (memoTable) of flat Pareto archives
//     indexed by those ids,
//   - a level-synchronized worker pool (pool.go) that shards each level
//     across Options.Workers goroutines, and
//   - a deferred materializer (internal/plan) that rebuilds plan trees
//     from the memo's compact entries at frontier extraction.
//
// The hot path is allocation-free: candidates are (cost vector, compact
// entry) pairs on the stack, archives store cost rows in one contiguous
// backing array (pareto.FlatArchive), and *plan.Node trees exist only for
// the ≤ frontier-size plans the caller extracts at the end of the run.
//
// All table sets of cardinality k depend only on sets of cardinality
// < k, so levels parallelize without locks: workers write disjoint memo
// slots and read only lower levels, which the level barrier has made
// immutable. With Workers=1 the engine is exactly the sequential dynamic
// program of the paper, candidate for candidate.
type engine struct {
	q    *query.Query
	m    *costmodel.Model
	opts Options

	// alphaInternal is the pruning precision αi used by the archives.
	alphaInternal float64

	// precInternal, when non-nil, replaces alphaInternal with a
	// per-objective internal precision vector (RTAVector extension).
	precInternal *objective.Precision

	// cfg is the pruning configuration shared by every archive of the run
	// (active-objective ids and precisions resolved once, so archive
	// inserts never allocate).
	cfg *pareto.FlatConfig

	// weights steer the degraded single-plan mode after a timeout.
	weights objective.Weights

	// shared, when non-nil, is the batch's cross-query archive store.
	// sharedPrefix/sharedRels/sharedEdges are the precomputed key pieces
	// (prepareShared) the per-set key builder assembles from.
	shared       *SharedMemo
	sharedPrefix []byte
	sharedRels   [][]byte
	sharedEdges  []sharedEdge

	enum *enumeration
	memo *memoTable
	// viewMemo is the split-side lookup of the full (non-degraded) mode,
	// bound once so the hot path does not re-create the closure per set.
	viewMemo func(query.TableSet) splitView

	workers []worker

	// ctx carries the caller's cancellation signal into the dynamic
	// program; ctxDone is ctx.Done() bound once (nil for background
	// contexts, keeping the amortized check free when no cancellation is
	// possible).
	ctx     context.Context
	ctxDone <-chan struct{}

	deadline   time.Time
	hasTimeout bool
	// timedOut is shared across workers: the first worker to observe the
	// deadline latches it, switching every worker to degraded mode. A
	// context *deadline* folds into the same latch — the run degrades
	// gracefully and still returns a plan, exactly as with Options.Timeout.
	timedOut atomic.Bool
	// cancelled is latched when the context is cancelled for any reason
	// other than a deadline (client disconnect, explicit cancel). Unlike a
	// timeout there is no caller left to serve, so workers abandon their
	// remaining sets instead of degrading, and the run reports ctx.Err().
	cancelled atomic.Bool
	// panicInfo holds the first panic recovered inside a worker. A panic
	// latches cancelled (so every worker parks at the level boundary and
	// the pool winds down normally) and cancelErr reports it as
	// ErrEnginePanic instead of a context error.
	panicInfo atomic.Pointer[enginePanic]
}

// enginePanic captures one recovered worker panic.
type enginePanic struct {
	val   any
	stack []byte
}

// ErrEnginePanic marks a run abandoned because a worker panicked. The
// wrapped error text carries the panic value and stack; callers match
// with errors.Is and must treat the run's result as void.
var ErrEnginePanic = errors.New("core: panic during optimization")

// recordPanic latches the first recovered panic and cancels the run.
// The cancelled latch is what makes containment safe: every other
// worker parks at its next poll, the level barrier completes, and the
// pool shuts down through the normal path — no goroutine is left
// holding a poisoned deque.
func (e *engine) recordPanic(r any) {
	e.panicInfo.CompareAndSwap(nil, &enginePanic{val: r, stack: debug.Stack()})
	e.cancelled.Store(true)
}

// containPanic is deferred around every treated set.
func (e *engine) containPanic() {
	if r := recover(); r != nil {
		e.recordPanic(r)
	}
}

// panicHook is a chaos-test seam: when set, it is called with each
// treated set's memo id before the set is treated, from whichever
// worker goroutine claims the set. Install via SetPanicHook.
var panicHook atomic.Pointer[func(id int32)]

// SetPanicHook installs (nil clears) a function invoked for every
// treated table set — a seam for panic-containment and chaos tests to
// crash a worker mid-run. Not for production use.
func SetPanicHook(h func(id int32)) {
	if h == nil {
		panicHook.Store(nil)
		return
	}
	panicHook.Store(&h)
}

// joinAlgs are the join operators of a predicate-connected split, in the
// engine's canonical enumeration order. Hoisted to package level so the
// candidate loops do not rebuild the slice per split.
var joinAlgs = []plan.JoinAlg{plan.HashJoin, plan.SortMergeJoin, plan.BlockNLJoin}

// newEngine prepares an engine run. alphaInternal >= 1 is the archive
// pruning precision (1 = exact). opts must be normalized (Workers >= 1).
// ctx cancellation aborts the run; a ctx deadline is folded into the
// timeout/degrade machinery (the earlier of ctx deadline and Options.
// Timeout wins).
func newEngine(ctx context.Context, m *costmodel.Model, opts Options, alphaInternal float64, w objective.Weights) *engine {
	if ctx == nil {
		ctx = context.Background()
	}
	e := &engine{
		q:             m.Query(),
		m:             m,
		opts:          opts,
		alphaInternal: alphaInternal,
		weights:       w,
		ctx:           ctx,
		ctxDone:       ctx.Done(),
	}
	// The deadline is resolved before the search space is materialized:
	// level materialization itself observes it (the exhaustive strategy's
	// 2^n Gosper scan used to run to completion oblivious of any timeout)
	// and falls back to the chain enumeration of the §5.1 degraded path.
	if opts.Timeout > 0 {
		e.deadline = time.Now().Add(opts.Timeout)
		e.hasTimeout = true
	}
	if d, ok := ctx.Deadline(); ok && (!e.hasTimeout || d.Before(e.deadline)) {
		e.deadline = d
		e.hasTimeout = true
	}
	e.enum = enumerate(e.q, opts.Enumeration, e.enumStop)
	if e.enum.cancelled {
		e.cancelled.Store(true)
	}
	if e.enum.chainFallback {
		e.timedOut.Store(true)
	}
	e.memo = newMemoTable(e.enum)
	e.viewMemo = func(s query.TableSet) splitView {
		return splitView{arch: e.memo.lookup(s), only: -1}
	}
	nw := opts.Workers
	if nw < 1 {
		nw = 1
	}
	e.workers = make([]worker, nw)
	for i := range e.workers {
		e.workers[i] = worker{e: e, maxDoneID: -1}
	}
	return e
}

// enumStop is the enumerator's stop poll (amortized by the enumerator):
// a context cancellation abandons the run, a passed deadline — from
// Options.Timeout or the context — triggers the chain fallback.
func (e *engine) enumStop() enumSignal {
	if e.ctxDone != nil {
		select {
		case <-e.ctxDone:
			if errors.Is(e.ctx.Err(), context.DeadlineExceeded) {
				return enumTimeout
			}
			return enumCancel
		default:
		}
	}
	if e.hasTimeout && time.Now().After(e.deadline) {
		return enumTimeout
	}
	return enumGo
}

// cancelErr returns the context's error if the run was abandoned because
// of a cancellation (not a deadline — deadlines degrade and still produce
// a result). Called by the algorithms after run()/runScalar() return.
// A recovered worker panic is checked first: it latches the same
// cancelled flag, but the context has no error to report — without the
// ordering the caller would see a spurious context.Canceled and the
// panic would vanish.
func (e *engine) cancelErr() error {
	if p := e.panicInfo.Load(); p != nil {
		return fmt.Errorf("%w: %v\n%s", ErrEnginePanic, p.val, p.stack)
	}
	if !e.cancelled.Load() {
		return nil
	}
	if err := context.Cause(e.ctx); err != nil {
		return err
	}
	return context.Canceled
}

// flatConfig lazily builds the run's shared archive configuration. It is
// resolved at run start (not in newEngine) because RTAVector installs
// precInternal after construction.
func (e *engine) flatConfig() *pareto.FlatConfig {
	if e.cfg == nil {
		if e.precInternal != nil {
			e.cfg = pareto.NewFlatPrecisionConfig(e.opts.Objectives, *e.precInternal)
		} else {
			e.cfg = pareto.NewFlatConfig(e.opts.Objectives, e.alphaInternal)
		}
	}
	return e.cfg
}

// newArchive constructs an archive with the engine's pruning precision.
func (e *engine) newArchive() *pareto.FlatArchive {
	return pareto.NewFlat(e.cfg)
}

// run executes the dynamic program and returns the flat archive of the
// full table set. It mirrors FindParetoPlans of Algorithm 1/2: plans for
// singleton sets first, then table sets of increasing cardinality. The
// caller extracts plan trees with materializeFrontier.
func (e *engine) run() *pareto.FlatArchive {
	engineRuns.Add(1)
	e.flatConfig()
	if e.opts.Shared != nil {
		e.shared = e.opts.Shared
		e.prepareShared()
	}
	e.runLevels(func(w *worker, id int32, s query.TableSet) {
		if s.Single() {
			w.scanSet(id, s)
		} else if w.expired() {
			// Timeout: degrade to a single best-weighted plan (paper
			// Section 5.1). Cancellation: there is no caller left to serve,
			// so skip the set entirely — the run reports ctx.Err().
			if !e.cancelled.Load() {
				w.degradedSet(id, s)
			}
		} else {
			w.fullSet(id, s)
		}
	})
	return e.memo.lookup(e.enum.all)
}

// runScalar executes a single-objective (scalar-pruned) dynamic program:
// every table set keeps exactly one plan, the one minimizing the scalar
// metric. With a scalar that reads one objective this is Selinger's
// algorithm generalized to bushy plans; with a weighted sum over multiple
// diverse objectives it is the unsound baseline of the paper's Example 1.
// Returns the best plan for the full table set, materialized.
func (e *engine) runScalar(scalar func(objective.Vector) float64) *plan.Node {
	engineRuns.Add(1)
	e.flatConfig()
	e.runLevels(func(w *worker, id int32, s query.TableSet) {
		if s.Single() {
			w.scanBestSet(id, s, scalar)
		} else {
			w.bestOnlySet(id, s, scalar)
		}
	})
	a := e.memo.lookup(e.enum.all)
	if a == nil || a.Len() == 0 {
		return nil
	}
	return plan.NewMaterializer(e.memo).Plan(e.enum.all, 0)
}

// materializeFrontier rebuilds the plan trees of the full table set's
// archive — the only point of the run where *plan.Node trees are
// allocated — and rehydrates them into a legacy pareto.Archive with the
// flat archive's counters. The extracted frontier is canonically sorted,
// so results are reproducible byte for byte regardless of Options.Workers
// or any internal scheduling.
func (e *engine) materializeFrontier(a *pareto.FlatArchive) *pareto.Archive {
	cfg := e.flatConfig()
	if a == nil {
		return pareto.NewMaterialized(cfg.Objectives(), cfg.Alpha(), cfg.Precision(), nil, 0, 0, 0)
	}
	mt := plan.NewMaterializer(e.memo)
	plans := make([]*plan.Node, a.Len())
	for i := range plans {
		plans[i] = mt.Plan(e.enum.all, int32(i))
	}
	sortPlansCanonically(plans)
	ins, rej, ev := a.Stats()
	return pareto.NewMaterialized(cfg.Objectives(), cfg.Alpha(), cfg.Precision(), plans, ins, rej, ev)
}

// sortPlansCanonically orders extracted frontier plans by their full cost
// vectors, lexicographically over all nine objectives. The sort is stable,
// so plans with identical cost vectors keep the archive's (deterministic)
// insertion order. The canonical order makes the extracted frontier — and
// the tie-breaking of SelectBest over it — independent of how the run was
// scheduled.
func sortPlansCanonically(plans []*plan.Node) {
	sort.SliceStable(plans, func(i, j int) bool {
		a, b := &plans[i].Cost, &plans[j].Cost
		for o := 0; o < int(objective.NumObjectives); o++ {
			if a[o] != b[o] {
				return a[o] < b[o]
			}
		}
		return false
	})
}

// bestTracker tracks the scalar-minimal candidate of one enumeration —
// the shared min-tracking state of the scalar dynamic program and the
// degraded mode. Ties break toward the earliest candidate (strict <),
// keeping results deterministic.
type bestTracker struct {
	cost  objective.Vector
	ent   plan.Entry
	best  float64
	found bool
}

func newBestTracker() bestTracker { return bestTracker{best: math.Inf(1)} }

// offer keeps the candidate if it strictly improves the tracked scalar.
func (t *bestTracker) offer(c objective.Vector, e plan.Entry, scalar float64) {
	if scalar < t.best {
		t.cost, t.ent, t.best, t.found = c, e, scalar, true
	}
}

// archive stores the tracked best (if any) into a fresh archive of e.
func (t *bestTracker) archive(e *engine) *pareto.FlatArchive {
	a := e.newArchive()
	if t.found {
		a.Insert(t.cost, t.ent)
	}
	return a
}

// scanSet fills the archive of a singleton set with all access paths.
func (w *worker) scanSet(id int32, s query.TableSet) {
	e := w.e
	a := e.newArchive()
	e.m.EachScanAlternative(s.First(), e.opts.sampling(), func(alg plan.ScanAlg, rate float64, cost objective.Vector) bool {
		w.considered++
		a.Insert(cost, plan.ScanEntry(alg, rate))
		return true
	})
	e.memo.archives[id] = a
	w.markDone(id, a.Len())
}

// scanBestSet is scanSet for the scalar dynamic program: it keeps only
// the access path minimizing the scalar metric.
func (w *worker) scanBestSet(id int32, s query.TableSet, scalar func(objective.Vector) float64) {
	e := w.e
	t := newBestTracker()
	e.m.EachScanAlternative(s.First(), e.opts.sampling(), func(alg plan.ScanAlg, rate float64, cost objective.Vector) bool {
		w.considered++
		t.offer(cost, plan.ScanEntry(alg, rate), scalar(cost))
		return true
	})
	a := t.archive(e)
	e.memo.archives[id] = a
	w.markDone(id, a.Len())
}

// fullSet treats one table set exhaustively, inserting every candidate
// into its archive. If the timeout fires mid-set, the set's archive is
// kept as-is and completion is not recorded.
//
// With a shared memo attached, the set is first looked up by its
// canonical subproblem key: a hit installs the published archive
// verbatim — bit-for-bit what the enumeration below would have built
// (see SharedMemo) — and skips the candidate loop. A miss runs the loop
// and publishes the archive, but only when the set completed and the run
// is neither timed out nor cancelled: degraded runs may hold truncated
// lower-level archives, and the timeout latch is set before the level
// barrier that precedes this set, so observing it unlatched here proves
// every lower level was treated in full. Only fullSet touches the shared
// memo — the degraded and scalar modes keep weight-dependent archives
// that must never be shared.
func (w *worker) fullSet(id int32, s query.TableSet) {
	e := w.e
	if e.shared != nil {
		if a := e.shared.get(w.sharedKey(s)); a != nil {
			e.memo.archives[id] = a
			w.sharedHits++
			w.markDone(id, a.Len())
			return
		}
	}
	a := e.newArchive()
	e.memo.archives[id] = a
	complete := w.forEachCandidate(s, func(cost objective.Vector, ent plan.Entry) bool {
		a.Insert(cost, ent)
		return !w.expired()
	})
	if complete {
		w.markDone(id, a.Len())
		// w.keyBuf still holds this set's key from the lookup above.
		if e.shared != nil && !e.timedOut.Load() && !e.cancelled.Load() {
			e.shared.put(w.keyBuf, a)
		}
	}
}

// degradedSet implements the paper's timeout handling (Section 5.1): table
// sets not treated before the timeout get only one plan — the best by
// weighted cost — so that optimization finishes quickly. To keep the
// degraded mode cheap even when the pre-timeout archives are large, each
// split only combines the weighted-best plan of either side rather than
// every stored pair: the per-worker reduced scratch map narrows a
// subset's archive to its single weighted-best entry the first time a
// split touches it (-1 when the subset has nothing stored). Narrowing
// lazily keeps the degraded mode proportional to the splits the strategy
// actually enumerates — under the graph-aware strategy that is far fewer
// than the 2^|s| subsets an eager pre-pass would have to scan, which
// matters precisely here: the timeout path must finish fast on the large
// queries that triggered it. Degraded sets do not update the "last table
// set treated completely" metric.
func (w *worker) degradedSet(id int32, s query.TableSet) {
	e := w.e
	scalar := func(v objective.Vector) float64 { return e.weights.Cost(v) }
	if w.reduced == nil {
		w.reduced = make(map[query.TableSet]int32)
	} else {
		clear(w.reduced)
	}
	lookup := func(t query.TableSet) splitView {
		idx, ok := w.reduced[t]
		if !ok {
			idx = -1
			if full := e.memo.lookup(t); full != nil && full.Len() > 0 {
				idx = full.BestBy(scalar)
			}
			w.reduced[t] = idx
		}
		if idx < 0 {
			return splitView{}
		}
		return splitView{arch: e.memo.lookup(t), only: idx}
	}
	t := newBestTracker()
	// The degraded scan still visits every split of s (2^|s| under the
	// exhaustive strategy), so let a cancellation escape mid-set — there
	// is no caller left to serve. A plain timeout keeps going: degraded
	// mode exists to still produce a plan.
	w.forEachCandidateFrom(s, lookup, func(cost objective.Vector, ent plan.Entry) bool {
		t.offer(cost, ent, scalar(cost))
		return !w.interrupted()
	})
	e.memo.archives[id] = t.archive(e)
}

// bestOnlySet stores a single plan for table set s: the candidate
// minimizing the given scalar metric. Used by the scalar (single-
// objective) dynamic program, whose archives already hold one plan each.
// Only cancellation aborts the enumeration (see worker.interrupted): the
// scalar DP has no degraded mode, so the timeout is ignored here.
func (w *worker) bestOnlySet(id int32, s query.TableSet, scalar func(objective.Vector) float64) {
	t := newBestTracker()
	w.forEachCandidate(s, func(cost objective.Vector, ent plan.Entry) bool {
		t.offer(cost, ent, scalar(cost))
		return !w.interrupted()
	})
	a := t.archive(w.e)
	w.e.memo.archives[id] = a
	w.markDone(id, a.Len())
}

// splitView is one side of a split during candidate enumeration: the flat
// archive of a table set, optionally narrowed to a single entry (the
// degraded mode's one-plan-per-subset view).
type splitView struct {
	arch *pareto.FlatArchive
	only int32 // -1 = all entries
}

// stored reports whether the view has at least one plan.
func (v splitView) stored() bool {
	return v.arch != nil && (v.only >= 0 || v.arch.Len() > 0)
}

// each yields the view's (index, cost) pairs; indexes are always positions
// in the underlying archive, so entries built from them materialize
// against the memo regardless of the view's narrowing.
func (v splitView) each(fn func(idx int32, c objective.Vector) bool) bool {
	if v.only >= 0 {
		return fn(v.only, v.arch.CostAt(v.only))
	}
	n := int32(v.arch.Len())
	for i := int32(0); i < n; i++ {
		if !fn(i, v.arch.CostAt(i)) {
			return false
		}
	}
	return true
}

// candidateFn receives one candidate of the enumeration: its cost vector
// and its compact encoding. Both live on the stack — a candidate that the
// archive rejects costs no allocation at all.
type candidateFn func(cost objective.Vector, ent plan.Entry) bool

// forEachCandidate constructs every candidate plan for table set s —
// all splits into two non-empty subsets, all join operators and DOPs, all
// combinations of stored sub-plans — and yields each to fn as a (cost,
// entry) pair. It returns false if fn aborted the enumeration.
//
// Cartesian-product splits are considered only when s has no
// predicate-connected split (Postgres heuristic (i), kept in place by the
// paper); in that fallback case only nested-loop joins apply, since hash
// and sort-merge joins need an equi-join predicate.
func (w *worker) forEachCandidate(s query.TableSet, fn candidateFn) bool {
	return w.forEachCandidateFrom(s, w.e.viewMemo, fn)
}

// forEachCandidateFrom is forEachCandidate over an explicit sub-plan view
// (the degraded mode passes a reduced one-plan-per-subset view; the full
// mode passes the slice-backed memo, so no split lookup ever hashes).
// Under the graph-aware strategy the split loop is the csg-cmp
// enumeration of forEachCandidateGraph; otherwise it is the exhaustive
// scan over all 2^|s| - 2 ordered subsets. Both visit the same candidate
// set whenever both apply — only the visiting order (and the scanning
// work, Stats.EnumSplits) differs.
func (w *worker) forEachCandidateFrom(s query.TableSet, lookup func(query.TableSet) splitView, fn candidateFn) bool {
	if w.e.enum.chainFallback {
		return w.forEachCandidateChain(s, lookup, fn)
	}
	if w.e.enum.graphAware {
		if w.e.enum.adaptive {
			return w.forEachCandidateAuto(s, lookup, fn)
		}
		return w.forEachCandidateGraph(s, lookup, fn)
	}
	e := w.e
	hasEdgeSplit := false
	abort := false
	s.EachSubset(func(left, right query.TableSet) bool {
		w.splits++
		if e.opts.LeftDeepOnly && !right.Single() {
			return true
		}
		vl, vr := lookup(left), lookup(right)
		if !vl.stored() || !vr.stored() {
			return true
		}
		if e.q.ConnectedTo(left, right) {
			hasEdgeSplit = true
			if !w.edgeSplit(vl, vr, left, right, fn) {
				abort = true
				return false
			}
		}
		return true
	})
	if abort {
		return false
	}
	if hasEdgeSplit {
		return true
	}
	// Cartesian fallback: no predicate-connected split exists.
	s.EachSubset(func(left, right query.TableSet) bool {
		w.splits++
		if e.opts.LeftDeepOnly && !right.Single() {
			return true
		}
		vl, vr := lookup(left), lookup(right)
		if !vl.stored() || !vr.stored() {
			return true
		}
		vl.each(func(li int32, cl objective.Vector) bool {
			return vr.each(func(ri int32, cr objective.Vector) bool {
				for dop := 1; dop <= e.opts.MaxDOP; dop++ {
					w.considered++
					cost := e.m.JoinCostVec(plan.BlockNLJoin, dop, left, right, &cl, &cr)
					if !fn(cost, plan.JoinEntry(plan.BlockNLJoin, dop, left, li, right, ri)) {
						abort = true
						return false
					}
				}
				return true
			})
		})
		return !abort
	})
	return !abort
}

// splitPair is one ordered csg-cmp split buffered by the graph-aware
// candidate loop before emission.
type splitPair struct {
	left, right query.TableSet
}

// forEachCandidateGraph is the graph-aware candidate loop — the fused
// form of query.EachConnectedSplit (keep the two in sync; see its
// comment): instead of scanning every 2-split of s, it enumerates the
// connected subsets of s minus its anchor relation
// (query.EachConnectedSubset) and keeps a split only when the anchored
// complement is stored — which, with the graph-aware enumeration
// materializing connected sets exclusively, is the csg-cmp condition
// "both halves connected" as one slice lookup, no per-split BFS. s itself is connected (only connected sets are
// materialized), so every such split carries a crossing join edge: the
// ConnectedTo test and the Cartesian fallback of the exhaustive loop
// cannot apply and are dropped.
//
// The surviving ordered pairs (each unordered split in both operand
// orders, like the exhaustive scan) are buffered in per-worker scratch
// and emitted in descending left-operand order — exactly the order in
// which TableSet.EachSubset would have visited them. Candidate order is
// therefore identical to the exhaustive strategy's, which makes every
// archive (including approximately pruned ones, whose contents depend
// on insertion order) bit-for-bit identical across strategies: the
// enumeration knob changes how fast the answer is found, never the
// answer. The differential tests pin this equivalence.
func (w *worker) forEachCandidateGraph(s query.TableSet, lookup func(query.TableSet) splitView, fn candidateFn) bool {
	e := w.e
	anchorV := e.q.MaxDegreeVertex(s)
	anchor := query.Singleton(anchorV)
	u := s.Minus(anchor)
	nbr := e.q.Adjacent(anchorV).Intersect(s)
	w.pairs = w.pairs[:0]
	e.q.EachConnectedSubset(u, func(rest query.TableSet) bool {
		w.splits += 2
		if nbr.SubsetOf(rest) && rest != u {
			// DPhyp-style complement prune (see query.EachConnectedSplit):
			// rest swallowed the anchor's whole neighborhood without taking
			// everything, so the complement strands the anchor — it is
			// disconnected, and its memo lookup would come back unstored.
			return true
		}
		sub := s.Minus(rest)
		if !lookup(sub).stored() || !lookup(rest).stored() {
			// sub is disconnected (never enumerated, memo id -1) or a half
			// was skipped after a cancellation; nothing to combine.
			return true
		}
		w.pairs = append(w.pairs, splitPair{sub, rest}, splitPair{rest, sub})
		return true
	})
	return w.emitPairs(lookup, fn)
}

// emitPairs sorts the buffered ordered splits into the exhaustive scan's
// canonical order (left operand descending) and feeds them to edgeSplit,
// applying the left-deep filter. Shared tail of the graph-aware and
// edge-cut candidate loops.
func (w *worker) emitPairs(lookup func(query.TableSet) splitView, fn candidateFn) bool {
	e := w.e
	slices.SortFunc(w.pairs, func(a, b splitPair) int {
		return cmp.Compare(b.left, a.left) // EachSubset order: left descending
	})
	for _, p := range w.pairs {
		if e.opts.LeftDeepOnly && !p.right.Single() {
			continue
		}
		if !w.edgeSplit(lookup(p.left), lookup(p.right), p.left, p.right, fn) {
			return false
		}
	}
	return true
}

// autoScanMaxLen is the set size up to which the adaptive strategy always
// takes the subset scan: below it, the 2^|s|-2 ordered subsets are fewer
// than the bookkeeping of a traversal.
const autoScanMaxLen = 5

// forEachCandidateAuto is the density-adaptive candidate loop behind
// EnumAuto: per table set it inspects size and internal edge count and
// routes to the cheapest of three equivalent split enumerations —
//
//	|s| <= autoScanMaxLen        -> subset scan (forEachCandidateScan)
//	edges == |s|-1 (tree)        -> edge-cut enumeration (forEachCandidateTree)
//	density >= 1/2               -> subset scan
//	otherwise                    -> anchored csg-cmp traversal (forEachCandidateGraph)
//
// All three emit the identical ordered splits in the identical canonical
// order (each loop's comment argues its case), so the heuristic changes
// Stats.EnumSplits — the scanning work — and nothing else. EnumGraph pins
// the pure traversal precisely so the differential tests can hold this
// loop against it set for set.
func (w *worker) forEachCandidateAuto(s query.TableSet, lookup func(query.TableSet) splitView, fn candidateFn) bool {
	k := s.Len()
	if k <= autoScanMaxLen {
		return w.forEachCandidateScan(s, lookup, fn)
	}
	edges := w.e.q.EdgeCount(s)
	switch {
	case edges == k-1:
		return w.forEachCandidateTree(s, lookup, fn)
	case 4*edges >= k*(k-1): // density 2E/(k(k-1)) >= 1/2
		return w.forEachCandidateScan(s, lookup, fn)
	default:
		return w.forEachCandidateGraph(s, lookup, fn)
	}
}

// forEachCandidateScan is the subset scan over a graph-aware memo: every
// ordered 2-split of s in EachSubset order, kept when both halves are
// stored. Because the graph-aware enumeration materializes exactly the
// connected sets, "both stored" is "both connected", and s itself being
// connected guarantees every surviving split carries a crossing join edge
// — the exhaustive loop's ConnectedTo test and Cartesian fallback cannot
// fire and are dropped (a connected s always has at least one valid
// split, so the fallback is unreachable too). Emission order is literally
// EachSubset order: canonical by construction, no buffering or sort.
//
// On dense sets this beats the traversal: nearly every subset is
// connected, so the traversal enumerates as many rests as the scan visits
// subsets but pays neighborhood expansion, pair buffering, and the
// canonical sort on top.
func (w *worker) forEachCandidateScan(s query.TableSet, lookup func(query.TableSet) splitView, fn candidateFn) bool {
	e := w.e
	abort := false
	s.EachSubset(func(left, right query.TableSet) bool {
		w.splits++
		if e.opts.LeftDeepOnly && !right.Single() {
			return true
		}
		vl, vr := lookup(left), lookup(right)
		if !vl.stored() || !vr.stored() {
			return true
		}
		if !w.edgeSplit(vl, vr, left, right, fn) {
			abort = true
			return false
		}
		return true
	})
	return !abort
}

// forEachCandidateTree is the edge-cut candidate loop for tree-shaped
// table sets (edges == |s|-1): in a tree, a split with both halves
// connected has exactly one crossing edge — fewer is disconnected, two or
// more closes a cycle — so the valid splits are precisely the |s|-1 edge
// cuts. One DFS from the set's first relation records pre-order and
// parents; a reverse pre-order sweep accumulates each vertex's subtree;
// every non-root vertex then yields the cut (its subtree, the rest), both
// halves connected by construction. Total work O(|s|) against the
// traversal's O(|s|) enumerated rests per valid split — the strongest
// form of complement pruning: no enumerated candidate is ever discarded.
// The stored() checks remain only for halves skipped after a
// cancellation. Emission goes through the same canonical sort as the
// traversal, so candidate order is unchanged.
func (w *worker) forEachCandidateTree(s query.TableSet, lookup func(query.TableSet) splitView, fn candidateFn) bool {
	e := w.e
	root := int8(s.First())
	w.treeStack[0] = root
	sp, n := 1, 0
	visited := query.Singleton(int(root))
	for sp > 0 {
		sp--
		v := w.treeStack[sp]
		w.treeOrder[n] = v
		n++
		w.treeSub[v] = query.Singleton(int(v))
		for nb := e.q.Adjacent(int(v)).Intersect(s).Minus(visited); !nb.Empty(); {
			u := nb.First()
			nb = nb.Minus(query.Singleton(u))
			visited = visited.Add(u)
			w.treeParent[u] = v
			w.treeStack[sp] = int8(u)
			sp++
		}
	}
	for i := n - 1; i >= 1; i-- {
		v := w.treeOrder[i]
		w.treeSub[w.treeParent[v]] = w.treeSub[w.treeParent[v]].Union(w.treeSub[v])
	}
	w.pairs = w.pairs[:0]
	for i := 1; i < n; i++ {
		cut := w.treeSub[w.treeOrder[i]]
		rest := s.Minus(cut)
		w.splits += 2
		if !lookup(cut).stored() || !lookup(rest).stored() {
			continue
		}
		w.pairs = append(w.pairs, splitPair{cut, rest}, splitPair{rest, cut})
	}
	return w.emitPairs(lookup, fn)
}

// forEachCandidateChain is the candidate loop of the enumeration's chain
// fallback (the deadline expired while the search space was still being
// materialized): every non-singleton set is a left-deep prefix {r0..rk},
// and its only split peels the highest relation off — O(1) splits per set
// where the exhaustive scan would visit 2^|s| - 2, which is what lets the
// degraded path finish promptly on the 30+ relation queries that trigger
// it. Predicate-connected splits get the full join-operator menu; a
// prefix with no edge to the peeled relation falls back to Cartesian
// nested loops, so a plan always exists. Both operand orders are emitted
// in the canonical descending-left order.
func (w *worker) forEachCandidateChain(s query.TableSet, lookup func(query.TableSet) splitView, fn candidateFn) bool {
	e := w.e
	peel := query.Singleton(s.Top())
	left := s.Minus(peel)
	vl, vr := lookup(left), lookup(peel)
	w.splits += 2
	if !vl.stored() || !vr.stored() {
		return true
	}
	if e.q.ConnectedTo(left, peel) {
		// peel holds the highest bit of s, so peel > left: the canonical
		// (descending-left) order is (peel, left) then (left, peel).
		if !e.opts.LeftDeepOnly || left.Single() {
			if !w.edgeSplit(vr, vl, peel, left, fn) {
				return false
			}
		}
		return w.edgeSplit(vl, vr, left, peel, fn)
	}
	cartesian := func(va, vb splitView, a, b query.TableSet) bool {
		if e.opts.LeftDeepOnly && !b.Single() {
			return true
		}
		return va.each(func(ai int32, ca objective.Vector) bool {
			return vb.each(func(bi int32, cb objective.Vector) bool {
				for dop := 1; dop <= e.opts.MaxDOP; dop++ {
					w.considered++
					cost := e.m.JoinCostVec(plan.BlockNLJoin, dop, a, b, &ca, &cb)
					if !fn(cost, plan.JoinEntry(plan.BlockNLJoin, dop, a, ai, b, bi)) {
						return false
					}
				}
				return true
			})
		})
	}
	if !cartesian(vr, vl, peel, left) {
		return false
	}
	return cartesian(vl, vr, left, peel)
}

// edgeSplit enumerates the candidates of one predicate-connected split.
func (w *worker) edgeSplit(vl, vr splitView, left, right query.TableSet, fn candidateFn) bool {
	e := w.e
	// Index-nested-loop: inner side must be a single base relation with an
	// index on the join column; the inner lookup replaces a stored inner
	// plan, so it is generated once per outer plan.
	if right.Single() {
		if rel := right.First(); e.m.InnerIndexColumn(left, rel) != "" {
			ok := vl.each(func(li int32, cl objective.Vector) bool {
				w.considered++
				cost := e.m.IndexNLCostVec(left, &cl, rel)
				return fn(cost, plan.IndexNLEntry(left, li, rel))
			})
			if !ok {
				return false
			}
		}
	}
	abort := false
	vl.each(func(li int32, cl objective.Vector) bool {
		return vr.each(func(ri int32, cr objective.Vector) bool {
			for _, alg := range joinAlgs {
				for dop := 1; dop <= e.opts.MaxDOP; dop++ {
					w.considered++
					cost := e.m.JoinCostVec(alg, dop, left, right, &cl, &cr)
					if !fn(cost, plan.JoinEntry(alg, dop, left, li, right, ri)) {
						abort = true
						return false
					}
				}
			}
			return true
		})
	})
	return !abort
}

// stats summarizes the run, folding the worker-private counters together.
func (e *engine) stats(start time.Time) Stats {
	stored := 0
	for _, a := range e.memo.archives {
		if a != nil {
			stored += a.Len()
		}
	}
	considered := 0
	splits := 0
	sharedHits := 0
	maxDoneID := int32(-1)
	paretoLast := 0
	for i := range e.workers {
		w := &e.workers[i]
		considered += w.considered
		splits += w.splits
		sharedHits += w.sharedHits
		if w.maxDoneID > maxDoneID {
			maxDoneID = w.maxDoneID
			paretoLast = w.maxDoneLen
		}
	}
	return Stats{
		Duration:       time.Since(start),
		Considered:     considered,
		Stored:         stored,
		MemoryBytes:    int64(stored) * storedPlanBytes,
		ParetoLast:     paretoLast,
		EnumSets:       e.enum.scanned,
		EnumSplits:     splits,
		SharedMemoHits: sharedHits,
		TimedOut:       e.timedOut.Load(),
		Iterations:     1,
	}
}
