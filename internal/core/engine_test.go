package core

import (
	"testing"

	"moqo/internal/catalog"
	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/plan"
	"moqo/internal/query"
)

// TestCartesianFallback: a query whose join graph is disconnected forces
// Cartesian products, which the engine supports via block-nested-loop
// joins only (Postgres heuristic (i): products only when no other join
// applies). query.Validate rejects such queries for the public API, but
// the engine must handle them for generality.
func TestCartesianFallback(t *testing.T) {
	cat := catalog.TPCH(0.01)
	q := query.New("cross", cat)
	q.AddRelation(catalog.Region, "r", 1)
	q.AddRelation(catalog.Nation, "n", 1)
	// No join edge: the only way to combine is a Cartesian product.
	m := costmodel.NewDefault(q)
	objs := objective.NewSet(objective.TotalTime, objective.BufferFootprint)
	res, err := EXA(m, objective.UniformWeights(objs), objective.NoBounds(), Options{Objectives: objs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no plan for Cartesian query")
	}
	if res.Best.IsScan() {
		t.Fatal("expected a join plan")
	}
	if res.Best.Join != plan.BlockNLJoin {
		t.Errorf("Cartesian product should use nested loops, got %v", res.Best.Join)
	}
	for _, p := range res.Frontier.Plans() {
		if !p.IsScan() && p.Join != plan.BlockNLJoin {
			t.Errorf("non-NL operator %v on a Cartesian product", p.Join)
		}
	}
}

// TestMixedCartesian: a three-relation query where two relations are
// joined by a predicate and the third is disconnected. Plans must join
// the connected pair with any operator but attach the third via nested
// loops only.
func TestMixedCartesian(t *testing.T) {
	cat := catalog.TPCH(0.01)
	q := query.New("mixed", cat)
	a := q.AddRelation(catalog.Customer, "c", 0.1)
	b := q.AddRelation(catalog.Orders, "o", 0.1)
	q.AddRelation(catalog.Region, "r", 1)
	q.AddFKJoin(b, "o_custkey", a, "c_custkey")
	m := costmodel.NewDefault(q)
	objs := objective.NewSet(objective.TotalTime, objective.BufferFootprint)
	res, err := EXA(m, objective.UniformWeights(objs), objective.NoBounds(), Options{Objectives: objs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no plan")
	}
	if res.Best.Tables != q.AllTables() {
		t.Fatalf("plan covers %v, want all tables", res.Best.Tables)
	}
	if err := res.Best.Validate(q); err != nil {
		t.Error(err)
	}
}

// TestDeterminism: the dynamic program must be fully deterministic — same
// query, same options, same plan and stats (modulo wall-clock duration).
func TestDeterminism(t *testing.T) {
	q := starQuery(t)
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	opts := smallOpts(threeObjs)
	opts.Alpha = 1.3

	var sigs []string
	var considered []int
	for i := 0; i < 3; i++ {
		res, err := RTA(m, w, opts)
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, res.Best.Signature(q))
		considered = append(considered, res.Stats.Considered)
	}
	for i := 1; i < 3; i++ {
		if sigs[i] != sigs[0] {
			t.Errorf("run %d produced different plan:\n%s\nvs\n%s", i, sigs[i], sigs[0])
		}
		if considered[i] != considered[0] {
			t.Errorf("run %d considered %d plans vs %d", i, considered[i], considered[0])
		}
	}
}

// TestFrontierPlansAreValid: every plan the optimizer stores must pass
// structural validation and cover exactly the query's tables.
func TestFrontierPlansAreValid(t *testing.T) {
	q := starQuery(t)
	m := costmodel.NewDefault(q)
	res, err := EXA(m, objective.UniformWeights(threeObjs), objective.NoBounds(), smallOpts(threeObjs))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Frontier.Plans() {
		if p.Tables != q.AllTables() {
			t.Errorf("frontier plan covers %v", p.Tables)
		}
		if err := p.Validate(q); err != nil {
			t.Errorf("invalid frontier plan: %v", err)
		}
	}
}

// TestConsideredCountsGrowWithDOP: widening the operator space must
// enlarge the number of considered plans.
func TestConsideredCountsGrowWithDOP(t *testing.T) {
	q := chainQuery(t)
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	prev := 0
	for _, dop := range []int{1, 2, 4} {
		opts := Options{Objectives: threeObjs, MaxDOP: dop}
		res, err := EXA(m, w, objective.NoBounds(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Considered <= prev {
			t.Errorf("MaxDOP=%d considered %d plans, not more than %d", dop, res.Stats.Considered, prev)
		}
		prev = res.Stats.Considered
	}
}

// TestGosperEnumeration: nextSameCard visits every subset of each
// cardinality exactly once, in increasing order.
func TestGosperEnumeration(t *testing.T) {
	n := 6
	for k := 1; k <= n; k++ {
		seen := map[query.TableSet]bool{}
		first := query.TableSet(1)<<uint(k) - 1
		count := 0
		for s := first; s < query.TableSet(1)<<uint(n); s = nextSameCard(s) {
			if s.Len() != k {
				t.Fatalf("k=%d: set %v has wrong cardinality", k, s)
			}
			if seen[s] {
				t.Fatalf("k=%d: set %v visited twice", k, s)
			}
			seen[s] = true
			count++
			if s == query.TableSet(1)<<uint(n)-1 {
				break
			}
		}
		want := binomial(n, k)
		if count != want {
			t.Errorf("k=%d: visited %d sets, want C(%d,%d)=%d", k, count, n, k, want)
		}
	}
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}
