package core

import (
	"sort"

	"moqo/internal/objective"
	"moqo/internal/pareto"
	"moqo/internal/plan"
	"moqo/internal/query"
)

// enumeration materializes the search space of the dynamic program: the
// table sets treated at each cardinality level, in the engine's canonical
// order (Gosper order within a level), each with a dense integer id.
//
// Materializing levels up front replaces the seed engine's inline Gosper
// iteration and is what enables the level-synchronized parallel schedule:
// all sets of cardinality k depend only on sets of cardinality < k, so a
// level can be sharded across workers once the previous level is complete.
//
// Ids are assigned level-major (all sets of cardinality 1 first, then
// cardinality 2, ...), so a set's id is always larger than the ids of the
// sub-plans it combines, and the memo table can be a plain slice.
type enumeration struct {
	all    query.TableSet
	n      int
	levels [][]query.TableSet // levels[k]: sets of cardinality k (k in 1..n)
	total  int                // number of enumerated sets
	// scanned counts the table sets visited to build the levels: 2^n - 1
	// under the exhaustive Gosper scan, exactly `total` under the
	// graph-aware traversal (Stats.EnumSets).
	scanned int
	// graphAware records which strategy the run resolved to; it also
	// selects the engine's split enumeration (csg-cmp vs all subsets).
	graphAware bool
	// adaptive additionally enables the density-adaptive split enumeration
	// (forEachCandidateAuto): per table set, scan vs edge-cut vs traversal.
	// Set only for EnumAuto, so EnumGraph pins the pure traversal as the
	// differential baseline.
	adaptive bool
	// chainFallback records that the run's deadline expired while the
	// levels were still being materialized (the 2^n Gosper scan, or an
	// exponentially large connected-subset walk). The levels were rebuilt
	// as the minimal left-deep chain — all singletons plus the prefix
	// sets {r0..rk} — and the engine's candidate loops peel one relation
	// per split, so the §5.1 degraded path still produces a plan in O(n)
	// work instead of ignoring the timeout until workers start.
	chainFallback bool
	// cancelled records that the run's context was cancelled (not a
	// deadline) mid-materialization: there is no caller left to serve, so
	// the levels are abandoned and the engine reports ctx.Err().
	cancelled bool
}

// enumSignal is the enumerator's amortized stop poll: keep scanning, fall
// back to the degraded chain enumeration (deadline), or abandon the run
// (cancellation).
type enumSignal int

const (
	enumGo enumSignal = iota
	enumTimeout
	enumCancel
)

// enumCheckMask amortizes the stop poll to one check per 4096 scanned
// sets — cheap against the per-set work, yet a pre-expired deadline stops
// a 2^40 scan within microseconds.
const enumCheckMask = 4095

// enumerate builds the enumeration for a query. With a connected join
// graph only connected table sets are materialized (the standard
// connected-subgraph restriction: optimal plans never join disconnected
// intermediate results when a predicate-connected split exists); with a
// disconnected graph every non-empty subset is treated, since Cartesian
// products are then unavoidable.
//
// How the connected sets are found depends on the strategy. The
// graph-aware strategy (EnumGraph, and EnumAuto on a connected graph)
// walks the join graph via query.EachConnectedSubset and touches only
// the sets it materializes — for an n-table chain that is n(n+1)/2 sets
// instead of the 2^n - 1 subsets the exhaustive Gosper scan visits and
// connectivity-checks one by one. Each level is then sorted ascending,
// which is exactly Gosper order, so the two strategies produce
// identical levels, identical dense ids, and identical per-set
// treatment order whenever both apply.
//
// As a side effect, every enumerated set's cardinality and width
// estimates are computed here, on one goroutine. query.EstimateRows and
// query.EstimateWidth memoize into plain maps, so this warm-up is what
// makes the cost model safe to call from concurrent workers: during the
// parallel phases the memos are only ever read.
//
// stop is polled (amortized, every enumCheckMask+1 scanned sets) during
// materialization. An expired deadline switches to the chain-fallback
// levels — the open-item fix for hand-built 30+ relation queries under
// the exhaustive strategy, whose 2^n scan used to run to completion
// before the timeout machinery could see it. A cancellation abandons the
// enumeration entirely.
func enumerate(q *query.Query, strategy EnumerationStrategy, stop func() enumSignal) *enumeration {
	n := q.NumRelations()
	all := q.AllTables()
	connectedOnly := q.Connected(all)
	e := &enumeration{all: all, n: n, levels: make([][]query.TableSet, n+1)}
	if stop == nil {
		stop = func() enumSignal { return enumGo }
	}
	interrupted := enumGo
	check := func() bool {
		if e.scanned&enumCheckMask != 0 {
			return true
		}
		interrupted = stop()
		return interrupted == enumGo
	}

	if strategy != EnumExhaustive && connectedOnly {
		e.graphAware = true
		e.adaptive = strategy == EnumAuto
		q.EachConnectedSubset(all, func(s query.TableSet) bool {
			e.scanned++
			k := s.Len()
			e.levels[k] = append(e.levels[k], s)
			q.EstimateRows(s)
			q.EstimateWidth(s)
			return check()
		})
		if e.interrupt(q, interrupted) {
			return e
		}
		for k := 1; k <= n; k++ {
			sets := e.levels[k]
			sort.Slice(sets, func(i, j int) bool { return sets[i] < sets[j] })
			e.total += len(sets)
		}
		return e
	}

	for k := 1; k <= n; k++ {
		var sets []query.TableSet
		first := query.TableSet(1)<<uint(k) - 1
		for s := first; s < query.TableSet(1)<<uint(n); s = nextSameCard(s) {
			e.scanned++
			if !connectedOnly || q.Connected(s) {
				sets = append(sets, s)
				q.EstimateRows(s)
				q.EstimateWidth(s)
			}
			if !check() {
				if e.interrupt(q, interrupted) {
					return e
				}
			}
			if s == all {
				break // Gosper past the full set would overflow the range
			}
		}
		e.levels[k] = sets
		e.total += len(sets)
	}
	return e
}

// interrupt applies a non-go stop signal: chain fallback on timeout,
// abandonment on cancellation. Reports whether materialization is over.
func (e *enumeration) interrupt(q *query.Query, sig enumSignal) bool {
	switch sig {
	case enumTimeout:
		e.buildChainFallback(q)
		return true
	case enumCancel:
		e.cancelled = true
		e.levels = make([][]query.TableSet, e.n+1)
		e.total = 0
		return true
	}
	return false
}

// buildChainFallback replaces the partially materialized levels with the
// minimal left-deep chain over the from-clause order: all n singletons at
// level 1, then exactly one prefix set {r0..rk} per higher level. Every
// prefix splits into (previous prefix, next relation), so the degraded
// candidate loop (forEachCandidateChain) treats the whole query in O(n)
// splits and the §5.1 path still returns a plan — where the old behavior
// ground through the rest of a 2^n scan first.
func (e *enumeration) buildChainFallback(q *query.Query) {
	e.chainFallback = true
	e.graphAware = false
	e.adaptive = false
	e.levels = make([][]query.TableSet, e.n+1)
	for r := 0; r < e.n; r++ {
		s := query.Singleton(r)
		e.levels[1] = append(e.levels[1], s)
		q.EstimateRows(s)
		q.EstimateWidth(s)
	}
	for k := 2; k <= e.n; k++ {
		s := query.FullSet(k)
		e.levels[k] = []query.TableSet{s}
		q.EstimateRows(s)
		q.EstimateWidth(s)
	}
	e.total = 2*e.n - 1
	if e.n == 1 {
		e.total = 1
	}
}

// memoDenseMaxRelations bounds the direct bitset->id index: up to this
// many relations the index is a slice of 2^n int32 ids (16 MiB at the
// cap), beyond it a map keeps memory bounded. Every workload the repo
// ships stays far below the cap (TPC-H <= 8 relations, synthetic <= 20),
// so the hot path never hashes.
const memoDenseMaxRelations = 22

// memoTable is the slice-backed plan-archive store of one engine run. It
// replaces the seed's map[TableSet]*Archive: flat archives are indexed by
// the enumeration's dense ids, and the bitset->id translation is a slice
// lookup, so the innermost candidate loops never hash.
//
// Workers of one level write disjoint ids and only read archives of lower
// levels, which are immutable after the level barrier — the memo needs no
// locking. The memo also implements plan.Memo, so the materializer can
// rebuild plan trees from the stored compact entries at extraction time.
type memoTable struct {
	archives []*pareto.FlatArchive // indexed by dense id
	dense    []int32               // bitset -> id (+1; 0 = not enumerated); nil when sparse
	sparse   map[query.TableSet]int32
}

// newMemoTable allocates the memo for an enumeration.
func newMemoTable(e *enumeration) *memoTable {
	t := &memoTable{archives: make([]*pareto.FlatArchive, e.total)}
	if e.n <= memoDenseMaxRelations {
		t.dense = make([]int32, 1<<uint(e.n))
	} else {
		t.sparse = make(map[query.TableSet]int32, e.total)
	}
	id := int32(0)
	for k := 1; k <= e.n; k++ {
		for _, s := range e.levels[k] {
			if t.dense != nil {
				t.dense[s] = id + 1
			} else {
				t.sparse[s] = id + 1
			}
			id++
		}
	}
	return t
}

// id returns the dense id of a table set, or -1 when the set is not part
// of the enumeration (e.g. a disconnected subset of a connected query).
func (t *memoTable) id(s query.TableSet) int32 {
	if t.dense != nil {
		return t.dense[s] - 1
	}
	return t.sparse[s] - 1
}

// lookup returns the archive stored for a table set, or nil when the set
// is not enumerated or not yet treated.
func (t *memoTable) lookup(s query.TableSet) *pareto.FlatArchive {
	id := t.id(s)
	if id < 0 {
		return nil
	}
	return t.archives[id]
}

// EntryAt implements plan.Memo: the idx-th compact entry stored for s.
func (t *memoTable) EntryAt(s query.TableSet, idx int32) plan.Entry {
	return t.archives[t.id(s)].EntryAt(idx)
}

// CostAt implements plan.Memo: the idx-th stored cost vector for s.
func (t *memoTable) CostAt(s query.TableSet, idx int32) objective.Vector {
	return t.archives[t.id(s)].CostAt(idx)
}

// nextSameCard returns the next larger bitset with the same population
// count (Gosper's hack).
func nextSameCard(s query.TableSet) query.TableSet {
	v := uint64(s)
	c := v & (^v + 1)
	r := v + c
	return query.TableSet(r | (((v ^ r) >> 2) / c))
}
