package core

import (
	"testing"

	"moqo/internal/catalog"
	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/query"
)

// singleRelationQuery builds a one-relation query (n = 1: no joins at all).
func singleRelationQuery(t testing.TB) *query.Query {
	t.Helper()
	cat := catalog.TPCH(0.01)
	q := query.New("single", cat)
	q.AddRelation(catalog.Region, "r", 1)
	return q
}

// twoRelationQuery builds the minimal join query (n = 2).
func twoRelationQuery(t testing.TB) *query.Query {
	t.Helper()
	cat := catalog.TPCH(0.01)
	q := query.New("pair", cat)
	a := q.AddRelation(catalog.Nation, "n", 1)
	b := q.AddRelation(catalog.Region, "r", 1)
	q.AddFKJoin(a, "n_regionkey", b, "r_regionkey")
	return q
}

// disconnectedQuery builds a three-relation query whose join graph has two
// components, so the enumeration must keep every subset (Cartesian
// products are unavoidable).
func disconnectedQuery(t testing.TB) *query.Query {
	t.Helper()
	cat := catalog.TPCH(0.01)
	q := query.New("split", cat)
	a := q.AddRelation(catalog.Customer, "c", 0.5)
	b := q.AddRelation(catalog.Orders, "o", 0.5)
	q.AddRelation(catalog.Region, "r", 1)
	q.AddFKJoin(b, "o_custkey", a, "c_custkey")
	return q
}

func TestEnumerateSingleRelation(t *testing.T) {
	q := singleRelationQuery(t)
	e := enumerate(q, EnumExhaustive, nil)
	if e.n != 1 || e.total != 1 {
		t.Fatalf("n=%d total=%d, want 1 and 1", e.n, e.total)
	}
	if len(e.levels[1]) != 1 || e.levels[1][0] != query.Singleton(0) {
		t.Fatalf("level 1 = %v, want [{0}]", e.levels[1])
	}
	if e.all != query.Singleton(0) {
		t.Fatalf("all = %v", e.all)
	}
}

func TestEnumerateTwoRelations(t *testing.T) {
	q := twoRelationQuery(t)
	e := enumerate(q, EnumExhaustive, nil)
	if e.total != 3 {
		t.Fatalf("total = %d, want 3 (two singletons + the pair)", e.total)
	}
	if len(e.levels[1]) != 2 || len(e.levels[2]) != 1 {
		t.Fatalf("level sizes = %d/%d, want 2/1", len(e.levels[1]), len(e.levels[2]))
	}
	if e.levels[2][0] != e.all {
		t.Fatalf("level 2 = %v, want the full set %v", e.levels[2], e.all)
	}
}

// TestEnumerateConnectedOnly: for a connected chain, only connected
// subsets are materialized — a chain of n relations has exactly
// n*(n+1)/2 connected subpaths.
func TestEnumerateConnectedOnly(t *testing.T) {
	q := chainQuery(t) // customer–orders–lineitem chain, n = 3
	e := enumerate(q, EnumExhaustive, nil)
	if want := 3 * 4 / 2; e.total != want {
		t.Fatalf("total = %d, want %d connected subpaths", e.total, want)
	}
	for k := 1; k <= e.n; k++ {
		for _, s := range e.levels[k] {
			if s.Len() != k {
				t.Errorf("level %d holds %v of cardinality %d", k, s, s.Len())
			}
			if !q.Connected(s) {
				t.Errorf("level %d holds disconnected set %v", k, s)
			}
		}
	}
}

// TestEnumerateDisconnectedKeepsAllSubsets: with a disconnected join
// graph every non-empty subset must be enumerated (2^n - 1 sets), since
// plans have to cross component boundaries via Cartesian products.
func TestEnumerateDisconnectedKeepsAllSubsets(t *testing.T) {
	q := disconnectedQuery(t)
	e := enumerate(q, EnumExhaustive, nil)
	if want := 1<<3 - 1; e.total != want {
		t.Fatalf("total = %d, want %d (all non-empty subsets)", e.total, want)
	}
}

// TestEnumerateFullSetEarlyBreak: the top level contains exactly the full
// set, once — the Gosper iteration must stop there rather than run past
// the range (clique: every subset is connected, so every level is full).
func TestEnumerateFullSetEarlyBreak(t *testing.T) {
	q := starQuery(t) // n = 4, star: subsets containing the center + singletons
	e := enumerate(q, EnumExhaustive, nil)
	top := e.levels[e.n]
	if len(top) != 1 || top[0] != e.all {
		t.Fatalf("top level = %v, want exactly [%v]", top, e.all)
	}
	count := 0
	for _, s := range top {
		if s == e.all {
			count++
		}
	}
	for k := 1; k < e.n; k++ {
		for _, s := range e.levels[k] {
			if s == e.all {
				count++
			}
		}
	}
	if count != 1 {
		t.Fatalf("full set enumerated %d times", count)
	}
}

// TestMemoTableIDs: ids are dense (0..total-1), level-major, and -1 for
// sets outside the enumeration.
func TestMemoTableIDs(t *testing.T) {
	q := chainQuery(t)
	e := enumerate(q, EnumExhaustive, nil)
	m := newMemoTable(e)

	seen := make(map[int32]bool)
	prev := int32(-1)
	for k := 1; k <= e.n; k++ {
		for _, s := range e.levels[k] {
			id := m.id(s)
			if id < 0 || int(id) >= e.total {
				t.Fatalf("id(%v) = %d out of range", s, id)
			}
			if seen[id] {
				t.Fatalf("id %d assigned twice", id)
			}
			seen[id] = true
			if id != prev+1 {
				t.Fatalf("ids not level-major dense: %d after %d", id, prev)
			}
			prev = id
		}
	}
	// The chain 0-1-2 has no edge 0-2: {0,2} is disconnected and must not
	// be enumerated.
	if id := m.id(query.NewTableSet(0, 2)); id != -1 {
		t.Errorf("disconnected set got id %d, want -1", id)
	}
	if a := m.lookup(query.NewTableSet(0, 2)); a != nil {
		t.Errorf("lookup of unenumerated set = %v, want nil", a)
	}
}

// TestMemoTableSparseFallback: beyond memoDenseMaxRelations the memo
// falls back to the map index; id semantics must be identical.
func TestMemoTableSparseFallback(t *testing.T) {
	e := &enumeration{
		n:      memoDenseMaxRelations + 1,
		levels: make([][]query.TableSet, memoDenseMaxRelations+2),
	}
	e.levels[1] = []query.TableSet{query.Singleton(0), query.Singleton(memoDenseMaxRelations)}
	e.total = 2
	m := newMemoTable(e)
	if m.dense != nil {
		t.Fatal("expected sparse index above the dense cap")
	}
	if m.id(query.Singleton(0)) != 0 || m.id(query.Singleton(memoDenseMaxRelations)) != 1 {
		t.Errorf("sparse ids = %d, %d", m.id(query.Singleton(0)), m.id(query.Singleton(memoDenseMaxRelations)))
	}
	if m.id(query.Singleton(1)) != -1 {
		t.Errorf("unenumerated sparse id = %d, want -1", m.id(query.Singleton(1)))
	}
}

// TestEngineSingleRelation: the degenerate n = 1 dynamic program must
// return the best access path.
func TestEngineSingleRelation(t *testing.T) {
	q := singleRelationQuery(t)
	m := costmodel.NewDefault(q)
	res, err := EXA(m, objective.UniformWeights(threeObjs), objective.NoBounds(), smallOpts(threeObjs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || !res.Best.IsScan() {
		t.Fatalf("n=1 best plan = %v, want a scan", res.Best)
	}
	if res.Best.Tables != q.AllTables() {
		t.Errorf("plan covers %v", res.Best.Tables)
	}
}

// TestEngineTwoRelations: n = 2 must produce a single join of two scans.
func TestEngineTwoRelations(t *testing.T) {
	q := twoRelationQuery(t)
	m := costmodel.NewDefault(q)
	res, err := EXA(m, objective.UniformWeights(threeObjs), objective.NoBounds(), smallOpts(threeObjs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Best.IsScan() {
		t.Fatalf("n=2 best plan = %v, want a join", res.Best)
	}
	if err := res.Best.Validate(q); err != nil {
		t.Error(err)
	}
}
