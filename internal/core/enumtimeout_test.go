package core

import (
	"context"
	"testing"
	"time"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/synthetic"
)

// TestExhaustiveEnumerationObservesDeadline: the exhaustive strategy's
// 2^n level materialization must observe the timeout (ROADMAP open item:
// it used to Gosper-scan all subsets before the degraded path could
// fire) and fall back to the §5.1 degraded chain — still returning a
// valid plan, promptly.
func TestExhaustiveEnumerationObservesDeadline(t *testing.T) {
	q := buildShape(t, synthetic.Chain, 24, 1)
	m := costmodel.NewDefault(q)
	two := objective.NewSet(objective.TotalTime, objective.BufferFootprint)
	opts := Options{
		Objectives:  two,
		Alpha:       3,
		Enumeration: EnumExhaustive,
		Timeout:     time.Millisecond,
	}
	start := time.Now()
	res, err := RTA(m, objective.UniformWeights(two), opts)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.TimedOut {
		t.Fatal("run with a 1ms timeout on a 24-table exhaustive scan did not report TimedOut")
	}
	if res.Best == nil {
		t.Fatal("degraded run returned no plan")
	}
	if res.Best.Tables != q.AllTables() {
		t.Fatalf("degraded plan covers %v, want all tables", res.Best.Tables)
	}
	// The scan must have been cut short: well under the 2^24 - 1 sets the
	// old behavior ground through (the amortized check fires every 4096).
	if res.Stats.EnumSets >= 1<<22 {
		t.Fatalf("enumeration scanned %d sets; the deadline was ignored", res.Stats.EnumSets)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("degraded run took %v; the fallback is not prompt", elapsed)
	}
}

// TestExhaustiveEnumerationChainFallbackDisconnected: the chain fallback
// must also produce a plan when the peeled relation has no predicate to
// the prefix (Cartesian nested loops fill the gap). A star query peeled
// from the highest relation hits that case for every prefix that skips
// the hub-adjacent order.
func TestExhaustiveEnumerationChainFallbackDisconnected(t *testing.T) {
	// Relations 0..n-1 with the hub at index n-1: every prefix {r0..rk}
	// for k < n-1 is predicate-disconnected internally, so the fallback
	// must survive Cartesian-only prefixes.
	q := buildShape(t, synthetic.Star, 16, 2)
	m := costmodel.NewDefault(q)
	two := objective.NewSet(objective.TotalTime, objective.BufferFootprint)
	opts := Options{
		Objectives:  two,
		Alpha:       3,
		Enumeration: EnumExhaustive,
		Timeout:     time.Millisecond,
	}
	res, err := RTA(m, objective.UniformWeights(two), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Best.Tables != q.AllTables() {
		t.Fatal("star chain-fallback did not produce a full plan")
	}
	if !res.Stats.TimedOut {
		t.Skip("enumeration finished before the timeout; fallback not exercised")
	}
}

// TestEnumerationCancelDuringScan: a context cancellation during level
// materialization abandons the run promptly with the context's error
// instead of degrading.
func TestEnumerationCancelDuringScan(t *testing.T) {
	q := buildShape(t, synthetic.Chain, 26, 1)
	m := costmodel.NewDefault(q)
	two := objective.NewSet(objective.TotalTime, objective.BufferFootprint)
	opts := Options{Objectives: two, Alpha: 3, Enumeration: EnumExhaustive}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RTAContext(ctx, m, objective.UniformWeights(two), opts)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
}

// TestEnumerationDeadlineGraphWalk: the graph-aware walk observes the
// deadline too — a clique's connected-subset walk is as exponential as
// the Gosper scan.
func TestEnumerationDeadlineGraphWalk(t *testing.T) {
	q := buildShape(t, synthetic.Clique, 20, 1)
	m := costmodel.NewDefault(q)
	two := objective.NewSet(objective.TotalTime, objective.BufferFootprint)
	opts := Options{
		Objectives:  two,
		Alpha:       3,
		Enumeration: EnumGraph,
		Timeout:     time.Millisecond,
	}
	res, err := RTA(m, objective.UniformWeights(two), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Best.Tables != q.AllTables() {
		t.Fatal("clique graph-walk fallback did not produce a full plan")
	}
	if !res.Stats.TimedOut {
		t.Fatal("run with a 1ms timeout on a 20-clique walk did not report TimedOut")
	}
}
