package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/plan"
)

// corpusDir holds the committed seed corpus of valid marshaled snapshots
// for FuzzFrontierSnapshotUnmarshal. Regenerate with
//
//	MOQO_REGEN_CORPUS=1 go test -run TestRegenerateFuzzCorpus ./internal/core
//
// after a format version bump (the fuzzer needs valid current-version
// seeds to mutate its way past the magic/version checks).
const corpusDir = "testdata/snapshots"

// corpusSnapshots produces one snapshot per algorithm family the capture
// path supports: exact (EXA), uniform-α (RTA), per-objective precision
// (RTAVector), and iterative refinement (IRA).
func corpusSnapshots(t testing.TB) map[string]*FrontierSnapshot {
	t.Helper()
	w := objective.UniformWeights(threeObjs)
	out := map[string]*FrontierSnapshot{}
	capture := func(name string, res Result, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Snapshot == nil {
			t.Fatalf("%s: no snapshot captured", name)
		}
		out[name] = res.Snapshot
	}

	exaOpts := smallOpts(threeObjs)
	exaOpts.CaptureSnapshot = true
	res, err := EXA(costmodel.NewDefault(starQuery(t)), w, objective.NoBounds(), exaOpts)
	capture("exa-star", res, err)

	rtaOpts := smallOpts(threeObjs)
	rtaOpts.Alpha = 1.5
	rtaOpts.CaptureSnapshot = true
	res, err = RTA(costmodel.NewDefault(chainQuery(t)), w, rtaOpts)
	capture("rta-chain", res, err)

	vecOpts := smallOpts(threeObjs)
	vecOpts.CaptureSnapshot = true
	prec := objective.UniformPrecision(2, threeObjs).With(objective.TotalTime, 1.2)
	res, err = RTAVector(costmodel.NewDefault(starQuery(t)), w, prec, vecOpts)
	capture("rtavector-star", res, err)

	iraOpts := smallOpts(threeObjs)
	iraOpts.Alpha = 1.5
	iraOpts.CaptureSnapshot = true
	res, err = IRA(costmodel.NewDefault(chainQuery(t)), w, objective.NoBounds(), iraOpts)
	capture("ira-chain", res, err)

	return out
}

// TestRegenerateFuzzCorpus rewrites the committed seed corpus. Gated
// behind MOQO_REGEN_CORPUS so a normal test run never touches testdata.
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("MOQO_REGEN_CORPUS") == "" {
		t.Skip("set MOQO_REGEN_CORPUS=1 to rewrite the committed corpus")
	}
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, snap := range corpusSnapshots(t) {
		data, err := snap.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(corpusDir, name+".bin"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorpusSeedsDecode pins the committed corpus to the current format:
// every seed must decode cleanly and re-encode to the identical bytes.
// If this fails after a format change, regenerate the corpus.
func TestCorpusSeedsDecode(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("committed corpus has %d seeds; want at least 4 (one per algorithm family)", len(files))
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := UnmarshalFrontierSnapshot(data)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		again, err := snap.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", path, err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("%s: decode/encode is not an identity", path)
		}
	}
}

// TestUnmarshalRejectsCraftedCorruption pins the decoder's validation
// against specific crafted inputs the fuzzer's guarantees rest on: each
// mutation of a valid encoding must come back as an error — never a
// panic, never a snapshot that would blow up during materialization.
func TestUnmarshalRejectsCraftedCorruption(t *testing.T) {
	_, snap := snapRTA(t, costmodel.NewDefault(chainQuery(t)),
		objective.UniformWeights(threeObjs), smallOpts(threeObjs))
	valid, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Offsets into the fixed prefix: magic(4) ver(2) objs(2) setAlpha(8)
	// pruneAlpha(8) precFlag(1).
	const (
		objsOff     = 6
		setAlphaOff = 8
		precFlagOff = 24
	)
	patch := func(off int, b []byte) []byte {
		out := append([]byte(nil), valid...)
		copy(out[off:], b)
		return out
	}
	nan := make([]byte, 8)
	for i := range nan {
		nan[i] = 0xff // a quiet NaN bit pattern
	}
	cases := map[string][]byte{
		"empty objective set":   patch(objsOff, []byte{0, 0}),
		"objs beyond AllSet":    patch(objsOff, []byte{0xff, 0xff}),
		"NaN set alpha":         patch(setAlphaOff, nan),
		"precision flag 2":      patch(precFlagOff, []byte{2}),
		"truncated mid-section": valid[:len(valid)-10],
		"trailing garbage":      append(append([]byte(nil), valid...), 0xAB),
	}
	for name, data := range cases {
		if _, err := UnmarshalFrontierSnapshot(data); err == nil {
			t.Errorf("%s: decode succeeded; want error", name)
		}
	}

	// Structurally corrupt snapshots (built in memory, then marshaled —
	// Marshal does not validate): out-of-range op codes and non-split
	// operand sets, each a latent materializer panic or infinite
	// recursion before validate() learned to reject them.
	reenc := func(mutate func(*FrontierSnapshot)) []byte {
		s2, err := UnmarshalFrontierSnapshot(valid)
		if err != nil {
			t.Fatal(err)
		}
		mutate(s2)
		data, err := s2.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	findScanSub := func(s *FrontierSnapshot) int {
		for i := range s.subs {
			if s.subs[i].set.Single() && len(s.subs[i].entries) > 0 {
				return i
			}
		}
		t.Fatal("no singleton sub in corpus snapshot")
		return -1
	}
	structural := map[string][]byte{
		"sample rate index out of range": reenc(func(s *FrontierSnapshot) {
			i := findScanSub(s)
			s.subs[i].entries[0].Op = int32(plan.SampleScan)<<8 | 9
		}),
		"unknown scan algorithm": reenc(func(s *FrontierSnapshot) {
			i := findScanSub(s)
			s.subs[i].entries[0].Op = 7 << 8
		}),
		"join operands not a split": reenc(func(s *FrontierSnapshot) {
			// Self-referential operand set: without the split invariant
			// this is an unbounded materializer recursion.
			s.entries[0].LeftSet = s.all
		}),
		"join DOP out of range": reenc(func(s *FrontierSnapshot) {
			s.entries[0].Op = int32(plan.HashJoin)<<8 | 200
		}),
	}
	for name, data := range structural {
		if _, err := UnmarshalFrontierSnapshot(data); err == nil {
			t.Errorf("%s: decode succeeded; want error", name)
		}
	}
}

// FuzzFrontierSnapshotUnmarshal hammers the snapshot decoder with corrupt
// inputs. The contract under test: decode either returns an error or a
// snapshot every downstream consumer can use safely — no panics, no
// unbounded allocation from corrupt counts, no reference cycles that
// would hang plan materialization, and Marshal∘Unmarshal as the identity
// on whatever decodes successfully.
func FuzzFrontierSnapshotUnmarshal(f *testing.F) {
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.bin"))
	if err != nil {
		f.Fatal(err)
	}
	if len(files) == 0 {
		f.Fatal("no seed corpus under " + corpusDir)
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := UnmarshalFrontierSnapshot(data)
		if err != nil {
			return
		}
		// A successful decode must yield a fully servable snapshot.
		again, err := snap.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of decoded snapshot failed: %v", err)
		}
		if !bytes.Equal(data, again) {
			t.Fatal("Marshal(Unmarshal(data)) != data for a successful decode")
		}
		plans := snap.Plans()
		if len(plans) != snap.Len() {
			t.Fatalf("materialized %d plans; snapshot reports %d", len(plans), snap.Len())
		}
		for i := range plans {
			if plans[i] == nil {
				t.Fatalf("plan %d materialized to nil", i)
			}
			snap.CostAt(int32(i))
		}
		w := objective.UniformWeights(snap.Objectives())
		if best := snap.SelectBest(w, objective.NoBounds()); best < 0 || int(best) >= snap.Len() {
			t.Fatalf("SelectBest returned out-of-range index %d", best)
		}
	})
}
