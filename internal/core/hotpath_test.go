package core

import (
	"fmt"
	"testing"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/synthetic"
)

// hotpath_test.go certifies the allocation-free engine against the
// preserved pre-refactor implementation (reference.go) and pins down the
// determinism of extracted frontiers across worker counts.

// TestEngineMatchesReference: the flat engine must reproduce the
// tree-allocating reference engine's results exactly — same candidate
// count, same frontier cost vectors in the same canonical order, same
// frontier counters, same selected plan — for both exact (EXA) and
// approximate (RTA) pruning, on several topologies.
func TestEngineMatchesReference(t *testing.T) {
	shapes := []synthetic.Shape{synthetic.Chain, synthetic.Star, synthetic.Clique}
	for _, shape := range shapes {
		t.Run(shape.String(), func(t *testing.T) {
			_, q := synthetic.MustBuild(synthetic.Spec{
				Shape: shape, Tables: 6, MaxRows: 1e4, Seed: 11,
			})
			m := costmodel.NewDefault(q)
			w := objective.UniformWeights(threeObjs)
			opts := Options{Objectives: threeObjs, MaxDOP: 2}

			exa, err := EXA(m, w, objective.NoBounds(), opts)
			if err != nil {
				t.Fatal(err)
			}
			refEXA, err := ReferenceEXA(m, w, objective.NoBounds(), opts)
			if err != nil {
				t.Fatal(err)
			}
			compareRuns(t, "EXA", exa, refEXA)

			rtaOpts := opts
			rtaOpts.Alpha = 1.5
			rta, err := RTA(m, w, rtaOpts)
			if err != nil {
				t.Fatal(err)
			}
			refRTA, err := ReferenceRTA(m, w, rtaOpts)
			if err != nil {
				t.Fatal(err)
			}
			compareRuns(t, "RTA", rta, refRTA)
		})
	}
}

func compareRuns(t *testing.T, name string, got, want Result) {
	t.Helper()
	if got.Stats.Considered != want.Stats.Considered {
		t.Errorf("%s considered %d != reference %d", name, got.Stats.Considered, want.Stats.Considered)
	}
	if got.Stats.Stored != want.Stats.Stored {
		t.Errorf("%s stored %d != reference %d", name, got.Stats.Stored, want.Stats.Stored)
	}
	if got.Best.Cost != want.Best.Cost {
		t.Errorf("%s best cost %v != reference %v", name, got.Best.Cost, want.Best.Cost)
	}
	gi, gr, ge := got.Frontier.Stats()
	wi, wr, we := want.Frontier.Stats()
	if gi != wi || gr != wr || ge != we {
		t.Errorf("%s frontier counters (ins=%d rej=%d ev=%d) != reference (ins=%d rej=%d ev=%d)", name, gi, gr, ge, wi, wr, we)
	}
	gf, wf := got.Frontier.Frontier(), want.Frontier.Frontier()
	if len(gf) != len(wf) {
		t.Fatalf("%s frontier size %d != reference %d", name, len(gf), len(wf))
	}
	for i := range gf {
		if gf[i] != wf[i] {
			t.Errorf("%s frontier[%d] %v != reference %v", name, i, gf[i], wf[i])
		}
	}
}

// TestMaterializedPlansValid: materialized frontier plans must be
// structurally valid trees covering the full query — including plans with
// index-nested-loop joins and sampling scans, whose entries carry
// synthetic operands and rate codes.
func TestMaterializedPlansValid(t *testing.T) {
	_, q := synthetic.MustBuild(synthetic.Spec{
		Shape: synthetic.Star, Tables: 6, MaxRows: 1e5, Seed: 4,
	})
	m := costmodel.NewDefault(q)
	objs := objective.NewSet(objective.TotalTime, objective.BufferFootprint, objective.TupleLoss)
	res, err := EXA(m, objective.UniformWeights(objs), objective.NoBounds(), Options{Objectives: objs})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier.Plans()) == 0 {
		t.Fatal("empty frontier")
	}
	for _, p := range res.Frontier.Plans() {
		if p.Tables != q.AllTables() {
			t.Errorf("frontier plan covers %v, want all tables", p.Tables)
		}
		if err := p.Validate(q); err != nil {
			t.Errorf("invalid materialized plan: %v", err)
		}
	}
}

// TestFrontierDeterministicAcrossWorkers: the extracted Result must be
// identical — best plan signature, canonical frontier order, and all
// counters — for Workers ∈ {1, 4, 8}, on every algorithm that extracts a
// frontier.
func TestFrontierDeterministicAcrossWorkers(t *testing.T) {
	_, q := synthetic.MustBuild(synthetic.Spec{
		Shape: synthetic.Chain, Tables: 7, MaxRows: 1e5, Seed: 9,
	})
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	b := objective.NoBounds().With(objective.TotalTime, 1e7)

	type runner struct {
		name string
		run  func(workers int) (Result, error)
	}
	runners := []runner{
		{"EXA", func(workers int) (Result, error) {
			return EXA(m, w, objective.NoBounds(), Options{Objectives: threeObjs, Workers: workers})
		}},
		{"RTA", func(workers int) (Result, error) {
			return RTA(m, w, Options{Objectives: threeObjs, Alpha: 1.4, Workers: workers})
		}},
		{"IRA", func(workers int) (Result, error) {
			return IRA(m, w, b, Options{Objectives: threeObjs, Alpha: 1.4, Workers: workers})
		}},
	}
	for _, rn := range runners {
		t.Run(rn.name, func(t *testing.T) {
			base, err := rn.run(1)
			if err != nil {
				t.Fatal(err)
			}
			baseSig := base.Best.Signature(q)
			baseFrontier := frontierSignature(t, base, threeObjs)
			for _, workers := range []int{4, 8} {
				res, err := rn.run(workers)
				if err != nil {
					t.Fatal(err)
				}
				if sig := res.Best.Signature(q); sig != baseSig {
					t.Errorf("workers=%d best plan %s != workers=1 %s", workers, sig, baseSig)
				}
				if fs := frontierSignature(t, res, threeObjs); fs != baseFrontier {
					t.Errorf("workers=%d frontier differs:\n%s\nvs workers=1:\n%s", workers, fs, baseFrontier)
				}
				if res.Stats.Considered != base.Stats.Considered {
					t.Errorf("workers=%d considered %d != workers=1 %d", workers, res.Stats.Considered, base.Stats.Considered)
				}
				if res.Stats.Stored != base.Stats.Stored {
					t.Errorf("workers=%d stored %d != workers=1 %d", workers, res.Stats.Stored, base.Stats.Stored)
				}
			}
		})
	}
}

// benchQuery builds the benchmark query once per size.
func benchQuery(b *testing.B, tables int) *costmodel.Model {
	b.Helper()
	_, q := synthetic.MustBuild(synthetic.Spec{
		Shape: synthetic.Chain, Tables: tables, MaxRows: 1e5, Seed: 1,
	})
	return costmodel.NewDefault(q)
}

// BenchmarkEXA measures the end-to-end exact dynamic program on the flat
// engine; run with -benchmem to see per-run allocation totals.
func BenchmarkEXA(b *testing.B) {
	for _, tables := range []int{6, 8} {
		b.Run(fmt.Sprintf("tables=%d", tables), func(b *testing.B) {
			m := benchQuery(b, tables)
			w := objective.UniformWeights(threeObjs)
			opts := Options{Objectives: threeObjs}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := EXA(m, w, objective.NoBounds(), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReferenceEXA is the pre-refactor arm of BenchmarkEXA: the same
// dynamic program with per-candidate *plan.Node allocation and the
// pointer-backed legacy archives.
func BenchmarkReferenceEXA(b *testing.B) {
	for _, tables := range []int{6, 8} {
		b.Run(fmt.Sprintf("tables=%d", tables), func(b *testing.B) {
			m := benchQuery(b, tables)
			w := objective.UniformWeights(threeObjs)
			opts := Options{Objectives: threeObjs}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ReferenceEXA(m, w, objective.NoBounds(), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
