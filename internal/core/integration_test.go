package core

import (
	"math/rand"
	"testing"
	"time"

	"moqo/internal/catalog"
	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/synthetic"
	"moqo/internal/workload"
)

// TestAllTPCHQueriesRTA runs the RTA with all nine objectives over the
// complete TPC-H workload — the integration path of the Figure 9
// experiments — and validates every produced plan.
func TestAllTPCHQueriesRTA(t *testing.T) {
	cat := catalog.TPCH(0.1)
	objs := objective.AllSet()
	w := objective.UniformWeights(objs)
	for _, qn := range workload.PaperOrder {
		q := workload.MustQuery(qn, cat)
		m := costmodel.NewDefault(q)
		res, err := RTA(m, w, Options{
			Objectives: objs,
			Alpha:      1.5,
			Timeout:    2 * time.Second,
		})
		if err != nil {
			t.Fatalf("q%d: %v", qn, err)
		}
		if res.Best == nil {
			t.Fatalf("q%d: no plan", qn)
		}
		if err := res.Best.Validate(q); err != nil {
			t.Errorf("q%d: invalid plan: %v", qn, err)
		}
		if res.Best.Tables != q.AllTables() {
			t.Errorf("q%d: plan covers %v", qn, res.Best.Tables)
		}
		for _, p := range res.Frontier.Plans() {
			if err := p.Validate(q); err != nil {
				t.Errorf("q%d frontier: %v", qn, err)
				break
			}
		}
	}
}

// TestAllTPCHQueriesIRABounded runs the IRA with a satisfiable deadline
// over the complete workload and checks the bound is respected whenever
// the optimizer did not time out.
func TestAllTPCHQueriesIRABounded(t *testing.T) {
	cat := catalog.TPCH(0.1)
	objs := objective.NewSet(objective.TotalTime, objective.IOLoad, objective.TupleLoss)
	w := objective.SingleWeight(objective.IOLoad)
	for _, qn := range workload.PaperOrder {
		q := workload.MustQuery(qn, cat)
		m := costmodel.NewDefault(q)
		minima, err := ObjectiveMinima(m, Options{Objectives: objs, Timeout: 2 * time.Second})
		if err != nil {
			t.Fatalf("q%d minima: %v", qn, err)
		}
		b := objective.NoBounds().With(objective.TotalTime, minima[objective.TotalTime]*3)
		res, err := IRA(m, w, b, Options{Objectives: objs, Alpha: 1.5, Timeout: 2 * time.Second})
		if err != nil {
			t.Fatalf("q%d: %v", qn, err)
		}
		if !res.Stats.TimedOut && !b.Respects(res.Best.Cost, objs) {
			t.Errorf("q%d: satisfiable deadline violated: time %v > bound %v",
				qn, res.Best.Cost[objective.TotalTime], b[objective.TotalTime])
		}
	}
}

// TestRandomSyntheticCrossCheck stresses the approximation guarantee on
// random join-graph shapes beyond TPC-H: for every random tree/chain/star
// query, RTA's weighted cost stays within alpha of the exact optimum.
func TestRandomSyntheticCrossCheck(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	objs := objective.NewSet(objective.TotalTime, objective.BufferFootprint, objective.Energy)
	shapes := []synthetic.Shape{synthetic.Chain, synthetic.Star, synthetic.RandomTree, synthetic.Clique}
	for trial := 0; trial < 12; trial++ {
		spec := synthetic.Spec{
			Shape:   shapes[trial%len(shapes)],
			Tables:  2 + r.Intn(4),
			MaxRows: 1e4,
			Seed:    int64(trial),
		}
		_, q, err := synthetic.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		m := costmodel.NewDefault(q)
		var w objective.Weights
		for _, o := range objs.IDs() {
			w[o] = r.Float64()
		}
		exact, err := EXA(m, w, objective.NoBounds(), Options{Objectives: objs, MaxDOP: 2})
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		for _, alpha := range []float64{1.1, 1.5, 3} {
			approx, err := RTA(m, w, Options{Objectives: objs, Alpha: alpha, MaxDOP: 2})
			if err != nil {
				t.Fatalf("%v: %v", spec, err)
			}
			got, opt := w.Cost(approx.Best.Cost), w.Cost(exact.Best.Cost)
			if got > opt*alpha*(1+1e-9) {
				t.Errorf("%s n=%d seed=%d alpha=%v: RTA %v > %v * EXA %v",
					spec.Shape, spec.Tables, spec.Seed, alpha, got, alpha, opt)
			}
			if got < opt*(1-1e-9) {
				t.Errorf("%s n=%d: RTA beat EXA (%v < %v)", spec.Shape, spec.Tables, got, opt)
			}
		}
	}
}

// TestSelingerAcrossObjectives: the single-objective DP must produce, for
// every objective, a plan whose cost in that objective is minimal among
// all algorithms' results.
func TestSelingerAcrossObjectives(t *testing.T) {
	q := chainQuery(t)
	m := costmodel.NewDefault(q)
	for _, o := range objective.All() {
		res, err := Selinger(m, o, Options{MaxDOP: 2})
		if err != nil {
			t.Fatalf("%v: %v", o, err)
		}
		// Compare against the EXA frontier over a superset of objectives
		// in the SAME plan space (tuple loss in the objective set would
		// otherwise enable sampling scans that Selinger's space lacks):
		// no frontier plan can undercut the single-objective minimum.
		objs := objective.NewSet(o, objective.TotalTime, objective.TupleLoss)
		exact, err := EXA(m, objective.SingleWeight(o), objective.NoBounds(),
			Options{Objectives: objs, MaxDOP: 2, AllowSampling: Bool(false)})
		if err != nil {
			t.Fatalf("%v: %v", o, err)
		}
		for _, p := range exact.Frontier.Plans() {
			if p.Cost[o] < res.Best.Cost[o]*(1-1e-9) {
				t.Errorf("%v: frontier plan %v undercuts Selinger minimum %v",
					o, p.Cost[o], res.Best.Cost[o])
			}
		}
	}
}
