package core

import (
	"testing"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
)

func TestLeftDeepOnlyProducesLeftDeepPlans(t *testing.T) {
	q := starQuery(t)
	m := costmodel.NewDefault(q)
	opts := smallOpts(threeObjs)
	opts.LeftDeepOnly = true
	res, err := EXA(m, objective.UniformWeights(threeObjs), objective.NoBounds(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Frontier.Plans() {
		if !p.LeftDeep() {
			t.Fatalf("left-deep search produced bushy plan:\n%s", p.Signature(q))
		}
	}
}

func TestLeftDeepSearchesStrictSubspace(t *testing.T) {
	// The left-deep optimum can never beat the bushy optimum (it searches
	// a subset of the plan space), and it considers fewer plans.
	q := starQuery(t)
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)

	bushy, err := EXA(m, w, objective.NoBounds(), smallOpts(threeObjs))
	if err != nil {
		t.Fatal(err)
	}
	ldOpts := smallOpts(threeObjs)
	ldOpts.LeftDeepOnly = true
	ld, err := EXA(m, w, objective.NoBounds(), ldOpts)
	if err != nil {
		t.Fatal(err)
	}
	if w.Cost(ld.Best.Cost) < w.Cost(bushy.Best.Cost)*(1-1e-9) {
		t.Errorf("left-deep optimum %v beats bushy optimum %v",
			w.Cost(ld.Best.Cost), w.Cost(bushy.Best.Cost))
	}
	if ld.Stats.Considered >= bushy.Stats.Considered {
		t.Errorf("left-deep considered %d plans, bushy %d — not a smaller space",
			ld.Stats.Considered, bushy.Stats.Considered)
	}
	// Every left-deep frontier vector is dominated-or-covered by the
	// bushy frontier (the bushy space is a superset).
	for _, p := range ld.Frontier.Plans() {
		covered := false
		for _, bp := range bushy.Frontier.Plans() {
			if bp.Cost.Dominates(p.Cost, threeObjs) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("left-deep frontier vector %v not covered by bushy frontier",
				p.Cost.FormatOn(threeObjs))
		}
	}
}

func TestLeftDeepRTAGuaranteeStillHolds(t *testing.T) {
	// Within the restricted space, the RTA guarantee is preserved: the
	// left-deep RTA is within alpha of the left-deep EXA.
	q := chainQuery(t)
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	opts := smallOpts(threeObjs)
	opts.LeftDeepOnly = true
	exact, err := EXA(m, w, objective.NoBounds(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Alpha = 1.5
	approx, err := RTA(m, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, opt := w.Cost(approx.Best.Cost), w.Cost(exact.Best.Cost); got > opt*1.5*(1+1e-9) {
		t.Errorf("left-deep RTA cost %v beyond guarantee vs %v", got, opt)
	}
}
