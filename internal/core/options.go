package core

import (
	"fmt"
	"time"

	"moqo/internal/objective"
	"moqo/internal/plan"
)

// EnumerationStrategy selects how the engine materializes and splits
// the join search space.
type EnumerationStrategy int

// Available enumeration strategies. The zero value is EnumAuto, so an
// Options that does not mention enumeration gets the graph-aware
// strategy exactly when the join graph supports it.
const (
	// EnumAuto (the zero value) resolves to EnumGraph for connected join
	// graphs and to EnumExhaustive otherwise.
	EnumAuto EnumerationStrategy = iota
	// EnumGraph enumerates connected subgraphs and predicate-connected
	// csg-cmp splits by neighborhood expansion over the join graph
	// (query.EachConnectedSubset): levels materialize only connected
	// table sets and the candidate loop visits only splits whose halves
	// are both connected, so chains, cycles, stars and trees pay
	// polynomial enumeration work instead of 2^n. Falls back to
	// EnumExhaustive when the join graph is disconnected (Cartesian
	// products are then unavoidable and every subset must be treated).
	EnumGraph
	// EnumExhaustive Gosper-scans all 2^n subsets when materializing
	// levels and tries every 2-split of every set, filtering by
	// connectivity afterwards — the pre-graph-aware behavior, kept as
	// the differential-testing baseline and for disconnected graphs.
	EnumExhaustive
)

func (s EnumerationStrategy) String() string {
	switch s {
	case EnumAuto:
		return "auto"
	case EnumGraph:
		return "graph"
	case EnumExhaustive:
		return "exhaustive"
	default:
		return fmt.Sprintf("enumeration(%d)", int(s))
	}
}

// Options configures an optimization run.
type Options struct {
	// Objectives is the set of active cost objectives (required).
	Objectives objective.Set

	// Alpha is the user-defined approximation precision αU for RTA and
	// IRA (>= 1). Ignored by the exact algorithms.
	Alpha float64

	// Timeout bounds the optimization time; zero means no timeout. When
	// the timeout fires, the optimizer degrades as described in paper
	// Section 5.1: every table set not yet treated gets only a single
	// (best-weighted) plan, so optimization finishes quickly.
	Timeout time.Duration

	// AllowSampling includes the sampling scan operators in the plan
	// space. Defaults (via Normalize) to whether tuple loss is an active
	// objective: without loss as an objective nothing penalizes sampling,
	// and a result-discarding plan would trivially win every other
	// objective.
	AllowSampling *bool

	// MaxDOP caps the degree of parallelism of parallel operators.
	// Defaults to plan.MaxDOP (4 cores, as in the paper).
	MaxDOP int

	// LeftDeepOnly restricts the search to left-deep trees (every join's
	// inner operand is a base relation). The original algorithm of
	// Ganguly et al. generated left-deep plans; the paper extended it to
	// bushy plans (Section 5). This option is the corresponding ablation:
	// a smaller search space that can miss better bushy plans.
	LeftDeepOnly bool

	// Workers shards each cardinality level of the dynamic program across
	// this many goroutines. All table sets of cardinality k depend only on
	// sets of cardinality < k, so levels parallelize without weakening any
	// approximation guarantee, and results are identical for every Workers
	// value (modulo timeout timing). 0 defaults to 1 (sequential); pass
	// runtime.NumCPU() to use the whole machine.
	Workers int

	// Enumeration selects the search-space enumeration strategy. The
	// zero value (EnumAuto) uses the graph-aware csg-cmp enumeration
	// whenever the join graph is connected; EnumExhaustive forces the
	// subset-scanning baseline. Results are bit-for-bit identical under
	// every strategy — the graph-aware loop emits its splits in the
	// subset scan's canonical order, so even approximately pruned
	// (alpha > 1) archives keep the same representatives (the
	// differential tests pin this, and the plan cache relies on it to
	// ignore the knob). Only the enumeration work differs
	// (Stats.EnumSets, Stats.EnumSplits).
	Enumeration EnumerationStrategy

	// Shared, when non-nil, attaches a cross-query shared memo: completed
	// Pareto archives are looked up and published under canonical
	// subproblem keys, so runs over the same catalog that join overlapping
	// table sets skip each other's solved subproblems. Results are
	// bit-for-bit unchanged (see SharedMemo); only the effort stats
	// (Considered, EnumSplits — and SharedMemoHits, which reports the
	// sets served from the memo) reflect the skipped work. Like Workers
	// and Enumeration, this knob is excluded from every cache key.
	Shared *SharedMemo

	// CaptureSnapshot asks the multi-objective algorithms (EXA, RTA,
	// RTAVector, IRA) to extract a FrontierSnapshot of the final frontier
	// into Result.Snapshot — the compact, weight/bound-free form the
	// frontier cache stores. Degraded (timed-out) runs never produce a
	// snapshot: their frontiers are truncated and must not be reused.
	// The extraction is a post-pass over the finished memo; the hot path
	// is unaffected when the flag is off.
	CaptureSnapshot bool
}

// Normalize validates the options and fills in defaults.
func (o Options) Normalize() (Options, error) {
	if o.Objectives.Len() == 0 {
		return o, fmt.Errorf("core: no active objectives")
	}
	if o.Alpha == 0 {
		o.Alpha = 1
	}
	if o.Alpha < 1 {
		return o, fmt.Errorf("core: approximation precision %v < 1", o.Alpha)
	}
	if o.MaxDOP == 0 {
		o.MaxDOP = plan.MaxDOP
	}
	if o.MaxDOP < 1 || o.MaxDOP > plan.MaxDOP {
		return o, fmt.Errorf("core: MaxDOP %d out of range [1,%d]", o.MaxDOP, plan.MaxDOP)
	}
	if o.AllowSampling == nil {
		v := o.Objectives.Contains(objective.TupleLoss)
		o.AllowSampling = &v
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.Workers < 1 {
		return o, fmt.Errorf("core: Workers %d out of range (must be >= 1, or 0 for the default)", o.Workers)
	}
	if o.Enumeration < EnumAuto || o.Enumeration > EnumExhaustive {
		return o, fmt.Errorf("core: unknown enumeration strategy %v", o.Enumeration)
	}
	return o, nil
}

// sampling reports whether sampling scans are in the plan space.
func (o Options) sampling() bool { return o.AllowSampling != nil && *o.AllowSampling }

// Bool returns a pointer to b, for filling Options.AllowSampling.
func Bool(b bool) *bool { return &b }

// storedPlanBytes is the estimated memory footprint of one stored plan,
// used for the paper's memory-consumption metric: a compact entry record
// (operator code plus two (table set, index) sub-plan references) plus the
// nine-dimensional cost row in the archive's flat backing array — O(1)
// space, as in the proof of Theorem 1.
const storedPlanBytes = 104

// Stats reports the effort of one optimization run, mirroring the metrics
// of the paper's Figures 5, 9 and 10.
type Stats struct {
	// Duration is the wall-clock optimization time.
	Duration time.Duration
	// Considered counts constructed candidate plans (Combine calls).
	Considered int
	// Stored counts plans stored in archives at the end of the run,
	// summed over all table sets.
	Stored int
	// MemoryBytes estimates the memory allocated for stored plans.
	MemoryBytes int64
	// ParetoLast is the archive size of the last table set that was
	// treated completely (the full query's set when no timeout fired) —
	// the "number of Pareto plans" metric of Figures 5 and 9.
	ParetoLast int
	// EnumSets counts the table sets scanned while materializing the
	// search space: 2^n - 1 for the exhaustive Gosper scan, exactly the
	// number of connected sets for the graph-aware strategy.
	EnumSets int
	// EnumSplits counts the ordered split pairs visited by the candidate
	// loops, including pairs discarded before any candidate plan was
	// costed (disconnected or unstored halves). This is the work metric
	// the enumeration strategy changes: Considered — candidates actually
	// constructed — is strategy-invariant for exact runs, while the
	// exhaustive scan visits 2^|s| - 2 split pairs per table set against
	// the graph-aware strategy's connected splits only.
	EnumSplits int
	// SharedMemoHits counts the table sets served from an attached
	// Options.Shared memo instead of being enumerated (0 when no memo is
	// attached). Each hit removes that set's share of Considered and
	// EnumSplits from the run.
	SharedMemoHits int
	// TimedOut reports whether the run hit its timeout and degraded.
	TimedOut bool
	// ReusedFrontier reports that the result was served from a cached
	// FrontierSnapshot (a SelectBest scan, or an IRA refinement seeded
	// from one) instead of a cold dynamic program. The effort counters
	// (Considered, Stored, EnumSets, ...) then describe the originating
	// run; Duration is the serve time of the reuse path itself.
	ReusedFrontier bool
	// Iterations counts IRA iterations (1 for non-iterative algorithms).
	Iterations int
	// IterationDetail records one entry per IRA iteration (empty for
	// non-iterative algorithms): the precision used, the iteration's
	// duration, and the size of the approximate Pareto set it produced.
	// It documents the geometric refinement policy of Theorem 7 — each
	// iteration should dominate the cost of all previous ones.
	IterationDetail []IterationInfo
}

// IterationInfo describes one IRA refinement iteration.
type IterationInfo struct {
	// Alpha is the Pareto-set precision α(i) of the iteration.
	Alpha float64
	// Duration is the iteration's wall-clock time.
	Duration time.Duration
	// Considered counts the plans constructed in this iteration.
	Considered int
	// FrontierSize is the approximate Pareto set size for the full query.
	FrontierSize int
}

// merge folds the stats of one IRA iteration into the accumulated stats.
func (s *Stats) merge(it Stats) {
	s.Duration += it.Duration
	s.Considered += it.Considered
	s.EnumSets += it.EnumSets
	s.EnumSplits += it.EnumSplits
	s.SharedMemoHits += it.SharedMemoHits
	// Memory is reported for the last iteration only: earlier iterations'
	// memory is reused (paper Section 8: "the reported numbers for memory
	// consumption refer to the memory reserved in the last iteration").
	s.Stored = it.Stored
	s.MemoryBytes = it.MemoryBytes
	s.ParetoLast = it.ParetoLast
	s.TimedOut = s.TimedOut || it.TimedOut
	s.Iterations++
}
