package core

import (
	"moqo/internal/costmodel"
	"moqo/internal/plan"
	"moqo/internal/query"
)

// allPlans enumerates, without any pruning, every plan for table set s in
// exactly the plan space the engine searches: edge-connected splits (with
// the Cartesian fallback), hash/sort-merge/block-nested-loop joins at every
// DOP, index-nested-loop joins where an inner index applies, and all scan
// alternatives at the leaves. It is the exponential oracle the tests
// compare the dynamic programs against.
func allPlans(m *costmodel.Model, opts Options, s query.TableSet) []*plan.Node {
	q := m.Query()
	if s.Single() {
		return m.ScanAlternatives(s.First(), opts.sampling())
	}
	graphConnected := q.Connected(q.AllTables())
	var out []*plan.Node
	hasEdgeSplit := false

	splitPlans := func(left, right query.TableSet, cartesian bool) {
		if graphConnected && (!q.Connected(left) || !q.Connected(right)) {
			return
		}
		lps := allPlans(m, opts, left)
		rps := allPlans(m, opts, right)
		if cartesian {
			for _, pl := range lps {
				for _, pr := range rps {
					for dop := 1; dop <= opts.MaxDOP; dop++ {
						out = append(out, m.NewJoin(plan.BlockNLJoin, dop, pl, pr))
					}
				}
			}
			return
		}
		if right.Single() {
			if rel := right.First(); m.InnerIndexColumn(left, rel) != "" {
				for _, pl := range lps {
					out = append(out, m.NewIndexNL(pl, rel))
				}
			}
		}
		for _, pl := range lps {
			for _, pr := range rps {
				for _, alg := range []plan.JoinAlg{plan.HashJoin, plan.SortMergeJoin, plan.BlockNLJoin} {
					for dop := 1; dop <= opts.MaxDOP; dop++ {
						out = append(out, m.NewJoin(alg, dop, pl, pr))
					}
				}
			}
		}
	}

	s.EachSubset(func(left, right query.TableSet) bool {
		if len(q.CrossingEdges(left, right)) > 0 {
			hasEdgeSplit = true
			splitPlans(left, right, false)
		}
		return true
	})
	if !hasEdgeSplit {
		s.EachSubset(func(left, right query.TableSet) bool {
			splitPlans(left, right, true)
			return true
		})
	}
	return out
}
