package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/synthetic"
)

// TestWorkerPanicContained: a panic inside a worker must not kill the
// process or deadlock the level barrier — the run returns
// ErrEnginePanic (with the panic value and stack in the message), the
// spawned pool goroutines retire, and the engine stays usable for the
// next run.
func TestWorkerPanicContained(t *testing.T) {
	_, q := synthetic.MustBuild(synthetic.Spec{
		Shape: synthetic.Chain, Tables: 10, MaxRows: 1e4, Seed: 2,
	})
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	opts := Options{Objectives: threeObjs, Alpha: 1.2, Workers: 4}

	before := runtime.NumGoroutine()
	SetPanicHook(func(id int32) {
		if id == 17 {
			panic("chaos: worker crash on set 17")
		}
	})
	defer SetPanicHook(nil)

	_, err := RTAContext(context.Background(), m, w, opts)
	if !errors.Is(err, ErrEnginePanic) {
		t.Fatalf("err = %v, want ErrEnginePanic", err)
	}
	if !strings.Contains(err.Error(), "chaos: worker crash on set 17") {
		t.Fatalf("panic value lost from error: %v", err)
	}

	// Pool goroutines must have drained through the level barrier.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after panic: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The crash poisoned nothing shared: the same optimization succeeds
	// once the hook is gone.
	SetPanicHook(nil)
	res, err := RTAContext(context.Background(), m, w, opts)
	if err != nil || res.Best == nil {
		t.Fatalf("run after contained panic: res.Best=%v err=%v", res.Best, err)
	}
}

// TestWorkerPanicSingleWorker: the inline (Workers==1) path contains
// panics through the same wrapper.
func TestWorkerPanicSingleWorker(t *testing.T) {
	_, q := synthetic.MustBuild(synthetic.Spec{
		Shape: synthetic.Chain, Tables: 6, MaxRows: 1e4, Seed: 1,
	})
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	opts := Options{Objectives: threeObjs, Alpha: 1.2, Workers: 1}

	SetPanicHook(func(id int32) {
		if id == 3 {
			panic("chaos: inline crash")
		}
	})
	defer SetPanicHook(nil)
	_, err := RTAContext(context.Background(), m, w, opts)
	if !errors.Is(err, ErrEnginePanic) {
		t.Fatalf("err = %v, want ErrEnginePanic", err)
	}
}

// TestScalarPanicContained: the scalar DP (Selinger) shares the
// containment, and reports the panic rather than a bogus cancellation.
func TestScalarPanicContained(t *testing.T) {
	_, q := synthetic.MustBuild(synthetic.Spec{
		Shape: synthetic.Clique, Tables: 8, MaxRows: 1e4, Seed: 3,
	})
	m := costmodel.NewDefault(q)
	opts := Options{Objectives: threeObjs, Workers: 2}

	SetPanicHook(func(id int32) {
		if id == 9 {
			panic("chaos: scalar crash")
		}
	})
	defer SetPanicHook(nil)
	_, err := SelingerContext(context.Background(), m, objective.TotalTime, opts)
	if !errors.Is(err, ErrEnginePanic) {
		t.Fatalf("err = %v, want ErrEnginePanic (not a context error)", err)
	}
}
