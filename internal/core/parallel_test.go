package core

import (
	"fmt"
	"testing"
	"time"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/synthetic"
)

// frontierSignature renders an archive's cost vectors for equality checks.
func frontierSignature(t testing.TB, res Result, objs objective.Set) string {
	t.Helper()
	sig := ""
	for _, v := range res.Frontier.Frontier() {
		sig += v.FormatOn(objs) + "\n"
	}
	return sig
}

// TestParallelMatchesSerial: the level-synchronized pool must produce
// exactly the serial engine's results — same best plan, same frontier
// vectors, same candidate counts — for every worker count, on every
// topology, for both the Pareto and the scalar dynamic programs.
func TestParallelMatchesSerial(t *testing.T) {
	shapes := []synthetic.Shape{synthetic.Chain, synthetic.Star, synthetic.Clique}
	for _, shape := range shapes {
		t.Run(shape.String(), func(t *testing.T) {
			_, q := synthetic.MustBuild(synthetic.Spec{
				Shape: shape, Tables: 6, MaxRows: 1e4, Seed: 7,
			})
			m := costmodel.NewDefault(q)
			w := objective.UniformWeights(threeObjs)

			run := func(workers int) (Result, Result, Result) {
				opts := Options{Objectives: threeObjs, Alpha: 1.3, MaxDOP: 2, Workers: workers}
				rta, err := RTA(m, w, opts)
				if err != nil {
					t.Fatal(err)
				}
				exaOpts := opts
				exaOpts.Alpha = 1
				exa, err := EXA(m, w, objective.NoBounds(), exaOpts)
				if err != nil {
					t.Fatal(err)
				}
				sel, err := Selinger(m, objective.TotalTime, opts)
				if err != nil {
					t.Fatal(err)
				}
				return rta, exa, sel
			}

			rta1, exa1, sel1 := run(1)
			for _, workers := range []int{2, 4, 8} {
				rtaN, exaN, selN := run(workers)
				for _, pair := range []struct {
					name             string
					serial, parallel Result
				}{
					{"RTA", rta1, rtaN},
					{"EXA", exa1, exaN},
					{"Selinger", sel1, selN},
				} {
					if got, want := pair.parallel.Best.Cost, pair.serial.Best.Cost; got != want {
						t.Errorf("%s workers=%d best cost %v != serial %v", pair.name, workers, got, want)
					}
					if got, want := pair.parallel.Stats.Considered, pair.serial.Stats.Considered; got != want {
						t.Errorf("%s workers=%d considered %d != serial %d", pair.name, workers, got, want)
					}
					if got, want := pair.parallel.Stats.Stored, pair.serial.Stats.Stored; got != want {
						t.Errorf("%s workers=%d stored %d != serial %d", pair.name, workers, got, want)
					}
					if got, want := pair.parallel.Stats.ParetoLast, pair.serial.Stats.ParetoLast; got != want {
						t.Errorf("%s workers=%d paretoLast %d != serial %d", pair.name, workers, got, want)
					}
					gotSig := frontierSignature(t, pair.parallel, threeObjs)
					wantSig := frontierSignature(t, pair.serial, threeObjs)
					if gotSig != wantSig {
						t.Errorf("%s workers=%d frontier differs:\n%s\nvs serial:\n%s", pair.name, workers, gotSig, wantSig)
					}
				}
			}
		})
	}
}

// TestParallelIRAMatchesSerial: the iterative algorithm runs every
// refinement iteration on the pool; results must not depend on Workers.
func TestParallelIRAMatchesSerial(t *testing.T) {
	q := starQuery(t)
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	b := objective.NoBounds().With(objective.TotalTime, 1e7)

	opts := smallOpts(threeObjs)
	opts.Alpha = 1.5
	serial, err := IRA(m, w, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	parallel, err := IRA(m, w, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Best.Cost != parallel.Best.Cost {
		t.Errorf("IRA workers=4 best cost %v != serial %v", parallel.Best.Cost, serial.Best.Cost)
	}
	if serial.Stats.Iterations != parallel.Stats.Iterations {
		t.Errorf("IRA workers=4 iterations %d != serial %d", parallel.Stats.Iterations, serial.Stats.Iterations)
	}
	if serial.Stats.Considered != parallel.Stats.Considered {
		t.Errorf("IRA workers=4 considered %d != serial %d", parallel.Stats.Considered, serial.Stats.Considered)
	}
}

// TestParallelRace exercises the pool with many workers on a query large
// enough that every level is sharded; run under -race this is the
// regression test for the lock-free memo discipline (satisfying it also
// depends on the enumerator's cardinality pre-warming — without it, the
// cost model would write the query's estimate memo concurrently).
func TestParallelRace(t *testing.T) {
	_, q := synthetic.MustBuild(synthetic.Spec{
		Shape: synthetic.Chain, Tables: 10, MaxRows: 1e5, Seed: 3,
	})
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	res, err := RTA(m, w, Options{Objectives: threeObjs, Alpha: 1.5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no plan")
	}
	if err := res.Best.Validate(q); err != nil {
		t.Error(err)
	}
}

// TestTimeoutDegradesGracefully: with an immediately-expiring timeout the
// run must still produce a full-cover plan (single-plan degraded mode,
// paper Section 5.1) and flag the timeout, for both serial and parallel
// engines.
func TestTimeoutDegradesGracefully(t *testing.T) {
	_, q := synthetic.MustBuild(synthetic.Spec{
		Shape: synthetic.Chain, Tables: 8, MaxRows: 1e5, Seed: 5,
	})
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			res, err := RTA(m, w, Options{
				Objectives: threeObjs,
				Alpha:      1.5,
				Timeout:    time.Nanosecond,
				Workers:    workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Stats.TimedOut {
				t.Error("expired timeout not flagged")
			}
			if res.Best == nil {
				t.Fatal("degraded mode produced no plan")
			}
			if res.Best.Tables != q.AllTables() {
				t.Errorf("degraded plan covers %v, want all tables", res.Best.Tables)
			}
			if err := res.Best.Validate(q); err != nil {
				t.Error(err)
			}
			// Degraded sets hold exactly one plan; the frontier of the
			// full set can therefore not exceed one entry.
			if res.Frontier.Len() > 1 {
				t.Errorf("degraded frontier holds %d plans", res.Frontier.Len())
			}
		})
	}
}

// TestTimeoutDegradedWeightsSteer: the degraded mode picks per table set
// the single plan minimizing the *weighted* cost, so with an expired
// timeout different weight vectors may pick different plans but every
// result must remain a valid full cover.
func TestTimeoutDegradedWeightsSteer(t *testing.T) {
	q := starQuery(t)
	m := costmodel.NewDefault(q)
	for _, o := range []objective.ID{objective.TotalTime, objective.BufferFootprint} {
		res, err := RTA(m, objective.SingleWeight(o), Options{
			Objectives: threeObjs,
			Alpha:      1.2,
			Timeout:    time.Nanosecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.TimedOut || res.Best == nil {
			t.Fatalf("objective %v: timedOut=%v best=%v", o, res.Stats.TimedOut, res.Best)
		}
		if err := res.Best.Validate(q); err != nil {
			t.Error(err)
		}
	}
}

// TestWorkersValidation: Options.Normalize must default Workers to 1 and
// reject negative values.
func TestWorkersValidation(t *testing.T) {
	opts, err := Options{Objectives: threeObjs}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Workers != 1 {
		t.Errorf("default Workers = %d, want 1", opts.Workers)
	}
	if _, err := (Options{Objectives: threeObjs, Workers: -2}).Normalize(); err == nil {
		t.Error("negative Workers accepted")
	}
}

// TestWorkersBeyondSets: more workers than table sets per level must not
// deadlock or change results (the pool clamps to the level size).
func TestWorkersBeyondSets(t *testing.T) {
	q := chainQuery(t)
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	serial, err := RTA(m, w, Options{Objectives: threeObjs, Alpha: 1.3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RTA(m, w, Options{Objectives: threeObjs, Alpha: 1.3, Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Best.Cost != wide.Best.Cost {
		t.Errorf("workers=64 best cost %v != serial %v", wide.Best.Cost, serial.Best.Cost)
	}
	if serial.Stats.Considered != wide.Stats.Considered {
		t.Errorf("workers=64 considered %d != serial %d", wide.Stats.Considered, serial.Stats.Considered)
	}
}
