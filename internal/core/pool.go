package core

import (
	"sync"
	"sync/atomic"
	"time"

	"moqo/internal/query"
)

// worker holds the goroutine-private state of one DP worker: candidate
// counters, the amortized deadline tick, and the largest-id table set it
// treated completely. Workers never share mutable state on the hot path —
// each builds the archives of its own sets against the immutable archives
// of lower levels — so the only synchronization is the level barrier and
// the engine's shared timeout flag.
type worker struct {
	e          *engine
	considered int
	checkTick  int
	// maxDoneID/maxDoneLen track the last (largest-id) set this worker
	// treated completely, feeding the "Pareto plans of the last table set
	// treated completely" metric. Ids are handed out in ascending order,
	// so plain assignment keeps the maximum.
	maxDoneID  int32
	maxDoneLen int
}

// expired checks the run's deadline (amortized: every 1024 calls per
// worker) and latches the engine-wide timeout flag once it fires, so
// every other worker degrades promptly as well.
func (w *worker) expired() bool {
	e := w.e
	if !e.hasTimeout {
		return false
	}
	if e.timedOut.Load() {
		return true
	}
	w.checkTick++
	if w.checkTick&1023 != 0 {
		return false
	}
	if time.Now().After(e.deadline) {
		e.timedOut.Store(true)
		return true
	}
	return false
}

// markDone records a completely treated set.
func (w *worker) markDone(id int32, archiveLen int) {
	w.maxDoneID = id
	w.maxDoneLen = archiveLen
}

// runLevels drives the level-synchronized dynamic program: for each
// cardinality level in turn, the level's table sets are distributed to
// the engine's workers, and the next level starts only after the barrier.
// treat handles one table set (exhaustively, degraded, or scalar-pruned,
// depending on the engine mode).
//
// Within a level, workers claim sets via an atomic cursor (dynamic load
// balancing: split counts vary wildly across the sets of one level).
// Results are deterministic regardless of the schedule, because each
// set's archive depends only on the immutable lower levels.
func (e *engine) runLevels(treat func(w *worker, id int32, s query.TableSet)) {
	nextID := int32(0)
	for k := 1; k <= e.enum.n; k++ {
		sets := e.enum.levels[k]
		base := nextID
		nextID += int32(len(sets))

		nw := len(e.workers)
		if nw > len(sets) {
			nw = len(sets)
		}
		if nw <= 1 {
			w := &e.workers[0]
			for i, s := range sets {
				treat(w, base+int32(i), s)
			}
			continue
		}

		var cursor atomic.Int32
		var wg sync.WaitGroup
		for wi := 0; wi < nw; wi++ {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				for {
					i := cursor.Add(1) - 1
					if int(i) >= len(sets) {
						return
					}
					treat(w, base+i, sets[i])
				}
			}(&e.workers[wi])
		}
		wg.Wait()
	}
}
