package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"moqo/internal/query"
)

// worker holds the goroutine-private state of one DP worker: candidate
// counters, the amortized deadline tick, and the largest-id table set it
// treated completely. Workers never share mutable state on the hot path —
// each builds the archives of its own sets against the immutable archives
// of lower levels — so the only synchronization is the level barrier and
// the engine's shared timeout flag.
type worker struct {
	e          *engine
	considered int
	// splits counts the ordered split pairs this worker's candidate
	// loops visited, including pairs filtered out before costing
	// (Stats.EnumSplits) — the scanning work the enumeration strategy
	// changes.
	splits    int
	checkTick int
	// maxDoneID/maxDoneLen track the last (largest-id) set this worker
	// treated completely, feeding the "Pareto plans of the last table set
	// treated completely" metric. Ids are handed out in ascending order,
	// so plain assignment keeps the maximum.
	maxDoneID  int32
	maxDoneLen int
	// reduced is the degraded mode's per-worker scratch: the weighted-best
	// entry index of every stored subset, rebuilt (capacity reused) for
	// each degraded table set instead of allocating a fresh map.
	reduced map[query.TableSet]int32
	// pairs is the graph-aware candidate loop's per-worker scratch: the
	// valid ordered splits of the current table set, buffered so they can
	// be emitted in the exhaustive scan's canonical order (capacity
	// reused across sets).
	pairs []splitPair
}

// observe polls the run's stop signals (amortized by the caller): the
// context first — a cancellation latches the engine-wide cancelled flag, a
// context deadline latches the timeout flag — then the wall-clock deadline.
// Latching makes every other worker react promptly without re-polling.
func (w *worker) observe() {
	e := w.e
	if e.ctxDone != nil {
		select {
		case <-e.ctxDone:
			if errors.Is(e.ctx.Err(), context.DeadlineExceeded) {
				e.timedOut.Store(true)
			} else {
				e.cancelled.Store(true)
			}
			return
		default:
		}
	}
	if e.hasTimeout && time.Now().After(e.deadline) {
		e.timedOut.Store(true)
	}
}

// expired checks the run's deadline and context (amortized: every 1024
// calls per worker) and reports whether this worker should stop exhaustive
// work — either to degrade (timeout) or to abandon the run (cancellation;
// the engine's cancelled latch tells the two apart).
func (w *worker) expired() bool {
	e := w.e
	if e.cancelled.Load() || e.timedOut.Load() {
		return true
	}
	if !e.hasTimeout && e.ctxDone == nil {
		return false
	}
	w.checkTick++
	if w.checkTick&1023 != 0 {
		return false
	}
	w.observe()
	return e.cancelled.Load() || e.timedOut.Load()
}

// interrupted reports whether the run's context was cancelled. Unlike
// expired it never reports a plain timeout: the scalar dynamic program has
// no degraded mode — it must either enumerate every candidate or abort with
// an error, since a partial enumeration would silently return a
// non-optimal plan.
func (w *worker) interrupted() bool {
	e := w.e
	if e.cancelled.Load() {
		return true
	}
	if e.ctxDone == nil {
		return false
	}
	w.checkTick++
	if w.checkTick&1023 != 0 {
		return false
	}
	w.observe()
	return e.cancelled.Load()
}

// markDone records a completely treated set.
func (w *worker) markDone(id int32, archiveLen int) {
	w.maxDoneID = id
	w.maxDoneLen = archiveLen
}

// runLevels drives the level-synchronized dynamic program: for each
// cardinality level in turn, the level's table sets are distributed to
// the engine's workers, and the next level starts only after the barrier.
// treat handles one table set (exhaustively, degraded, or scalar-pruned,
// depending on the engine mode).
//
// Within a level, workers claim sets via an atomic cursor (dynamic load
// balancing: split counts vary wildly across the sets of one level).
// Results are deterministic regardless of the schedule, because each
// set's archive depends only on the immutable lower levels.
// A cancelled context short-circuits the remaining levels: every worker
// goroutine drains through the barrier (no goroutine outlives the run) and
// the loop returns without touching the remaining sets.
func (e *engine) runLevels(treat func(w *worker, id int32, s query.TableSet)) {
	nextID := int32(0)
	for k := 1; k <= e.enum.n; k++ {
		if e.cancelled.Load() {
			return
		}
		sets := e.enum.levels[k]
		base := nextID
		nextID += int32(len(sets))

		nw := len(e.workers)
		if nw > len(sets) {
			nw = len(sets)
		}
		if nw <= 1 {
			w := &e.workers[0]
			for i, s := range sets {
				if e.cancelled.Load() {
					return
				}
				treat(w, base+int32(i), s)
			}
			continue
		}

		var cursor atomic.Int32
		var wg sync.WaitGroup
		for wi := 0; wi < nw; wi++ {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				for {
					i := cursor.Add(1) - 1
					if int(i) >= len(sets) || e.cancelled.Load() {
						return
					}
					treat(w, base+i, sets[i])
				}
			}(&e.workers[wi])
		}
		wg.Wait()
	}
}
