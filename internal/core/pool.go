package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"moqo/internal/query"
)

// worker holds the goroutine-private state of one DP worker: candidate
// counters, the amortized deadline tick, and the largest-id table set it
// treated completely. Workers never share mutable state on the hot path —
// each builds the archives of its own sets against the immutable archives
// of lower levels — so the only synchronization is the level barrier and
// the engine's shared timeout flag.
type worker struct {
	e          *engine
	considered int
	// splits counts the ordered split pairs this worker's candidate
	// loops visited, including pairs filtered out before costing
	// (Stats.EnumSplits) — the scanning work the enumeration strategy
	// changes.
	splits    int
	checkTick int
	// maxDoneID/maxDoneLen track the last (largest-id) set this worker
	// treated completely, feeding the "Pareto plans of the last table set
	// treated completely" metric. Ids are handed out in ascending order,
	// so plain assignment keeps the maximum.
	maxDoneID  int32
	maxDoneLen int
	// reduced is the degraded mode's per-worker scratch: the weighted-best
	// entry index of every stored subset, rebuilt (capacity reused) for
	// each degraded table set instead of allocating a fresh map.
	reduced map[query.TableSet]int32
	// pairs is the graph-aware candidate loop's per-worker scratch: the
	// valid ordered splits of the current table set, buffered so they can
	// be emitted in the exhaustive scan's canonical order (capacity
	// reused across sets).
	pairs []splitPair
	// treeStack/treeOrder/treeParent/treeSub are the edge-cut candidate
	// loop's per-worker scratch (forEachCandidateTree): DFS stack,
	// pre-order, parent links, and accumulated subtree sets, indexed by
	// relation (at most 64).
	treeStack  [64]int8
	treeOrder  [64]int8
	treeParent [64]int8
	treeSub    [64]query.TableSet
	// keyBuf is the shared-memo key scratch (sharedKey); sharedHits counts
	// table sets this worker served from the batch's shared memo.
	keyBuf     []byte
	sharedHits int
}

// observe polls the run's stop signals (amortized by the caller): the
// context first — a cancellation latches the engine-wide cancelled flag, a
// context deadline latches the timeout flag — then the wall-clock deadline.
// Latching makes every other worker react promptly without re-polling.
func (w *worker) observe() {
	e := w.e
	if e.ctxDone != nil {
		select {
		case <-e.ctxDone:
			if errors.Is(e.ctx.Err(), context.DeadlineExceeded) {
				e.timedOut.Store(true)
			} else {
				e.cancelled.Store(true)
			}
			return
		default:
		}
	}
	if e.hasTimeout && time.Now().After(e.deadline) {
		e.timedOut.Store(true)
	}
}

// expired checks the run's deadline and context (amortized: every 1024
// calls per worker) and reports whether this worker should stop exhaustive
// work — either to degrade (timeout) or to abandon the run (cancellation;
// the engine's cancelled latch tells the two apart).
func (w *worker) expired() bool {
	e := w.e
	if e.cancelled.Load() || e.timedOut.Load() {
		return true
	}
	if !e.hasTimeout && e.ctxDone == nil {
		return false
	}
	w.checkTick++
	if w.checkTick&1023 != 0 {
		return false
	}
	w.observe()
	return e.cancelled.Load() || e.timedOut.Load()
}

// interrupted reports whether the run's context was cancelled. Unlike
// expired it never reports a plain timeout: the scalar dynamic program has
// no degraded mode — it must either enumerate every candidate or abort with
// an error, since a partial enumeration would silently return a
// non-optimal plan.
func (w *worker) interrupted() bool {
	e := w.e
	if e.cancelled.Load() {
		return true
	}
	if e.ctxDone == nil {
		return false
	}
	w.checkTick++
	if w.checkTick&1023 != 0 {
		return false
	}
	w.observe()
	return e.cancelled.Load()
}

// markDone records a completely treated set.
func (w *worker) markDone(id int32, archiveLen int) {
	w.maxDoneID = id
	w.maxDoneLen = archiveLen
}

// poolSpawned counts worker-goroutine launches process-wide. The
// scheduler-churn regression benchmark reads it to show the persistent
// pool spawns once per run, where the old per-level barrier respawned the
// whole pool at every cardinality level.
var poolSpawned atomic.Int64

// deque is one worker's bounded work queue for the current level: a
// contiguous index range [head, tail) into the level's set slice, packed
// as head<<32|tail in a single atomic word. The owning worker claims from
// the head, thieves claim from the tail; both sides CAS the same word, so
// every index is claimed exactly once and the queue needs no lock and no
// backing storage. Padded so neighboring deques don't share a cache line.
type deque struct {
	pos atomic.Uint64
	_   [56]byte
}

func (d *deque) reset(head, tail int32) {
	d.pos.Store(uint64(uint32(head))<<32 | uint64(uint32(tail)))
}

// popFront claims the next index for the owner; -1 when drained.
func (d *deque) popFront() int32 {
	for {
		p := d.pos.Load()
		h, t := int32(uint32(p>>32)), int32(uint32(p))
		if h >= t {
			return -1
		}
		if d.pos.CompareAndSwap(p, uint64(uint32(h+1))<<32|uint64(uint32(t))) {
			return h
		}
	}
}

// popBack steals the last index from a victim; -1 when drained.
func (d *deque) popBack() int32 {
	for {
		p := d.pos.Load()
		h, t := int32(uint32(p>>32)), int32(uint32(p))
		if h >= t {
			return -1
		}
		if d.pos.CompareAndSwap(p, uint64(uint32(h))<<32|uint64(uint32(t-1))) {
			return t - 1
		}
	}
}

// levelPool is the engine's persistent worker pool: nw-1 goroutines are
// spawned once per run (the coordinator doubles as worker 0) and parked on
// per-worker wake channels between levels. For each level the coordinator
// partitions the level's set slice into contiguous per-worker chunks
// (deques), wakes the pool, and participates; a worker that drains its own
// deque steals from the tails of the others, so a straggler set no longer
// idles the rest of the pool for the remainder of the level.
type levelPool struct {
	e     *engine
	treat func(w *worker, id int32, s query.TableSet)

	// Per-level inputs, published before the wake-channel sends (the
	// send/receive pair orders the writes for the woken workers).
	sets   []query.TableSet
	base   int32
	active int // workers participating in the current level

	deques []deque
	wake   []chan struct{} // one per spawned worker (indices 1..nw-1)
	wg     sync.WaitGroup
}

func newLevelPool(e *engine, treat func(w *worker, id int32, s query.TableSet)) *levelPool {
	nw := len(e.workers)
	p := &levelPool{
		e:      e,
		treat:  treat,
		deques: make([]deque, nw),
		wake:   make([]chan struct{}, nw-1),
	}
	for i := range p.wake {
		p.wake[i] = make(chan struct{}, 1)
	}
	for wi := 1; wi < nw; wi++ {
		poolSpawned.Add(1)
		go p.loop(wi)
	}
	return p
}

// loop parks worker wi between levels; a closed wake channel retires it.
func (p *levelPool) loop(wi int) {
	for range p.wake[wi-1] {
		p.drain(wi)
		p.wg.Done()
	}
}

// shutdown retires the spawned workers. Called only after the last level's
// wg.Wait, so every worker is parked on its wake channel.
func (p *levelPool) shutdown() {
	for _, c := range p.wake {
		close(c)
	}
}

// runLevel distributes one level across the pool and blocks until every
// set of the level is treated (or the run is cancelled).
func (p *levelPool) runLevel(sets []query.TableSet, base int32) {
	active := len(p.deques)
	if active > len(sets) {
		active = len(sets)
	}
	p.sets, p.base, p.active = sets, base, active
	// Contiguous chunks, balanced to within one set: deque i owns
	// [lo_i, hi_i). Contiguity keeps an owner's claims sequential over the
	// level slice (and over memo ids), which the prefetcher likes.
	q, r := len(sets)/active, len(sets)%active
	lo := 0
	for i := 0; i < active; i++ {
		hi := lo + q
		if i < r {
			hi++
		}
		p.deques[i].reset(int32(lo), int32(hi))
		lo = hi
	}
	p.wg.Add(active - 1)
	for i := 1; i < active; i++ {
		p.wake[i-1] <- struct{}{}
	}
	p.drain(0)
	p.wg.Wait()
}

// drain runs worker wi's share of the current level: its own deque from
// the head, then — once empty — the other active deques from their tails
// (stealing). Deques only shrink within a level, so one pass over every
// victim leaves all queues empty when drain returns; sets claimed by other
// workers may still be in flight, which runLevel's wg.Wait covers.
func (p *levelPool) drain(wi int) {
	e := p.e
	w := &e.workers[wi]
	own := &p.deques[wi]
	for {
		i := own.popFront()
		if i < 0 {
			break
		}
		if e.cancelled.Load() {
			return
		}
		p.treat(w, p.base+i, p.sets[i])
	}
	for v := 1; v < p.active; v++ {
		victim := &p.deques[(wi+v)%p.active]
		for {
			i := victim.popBack()
			if i < 0 {
				break
			}
			if e.cancelled.Load() {
				return
			}
			p.treat(w, p.base+i, p.sets[i])
		}
	}
}

// runLevels drives the level-synchronized dynamic program: for each
// cardinality level in turn, the level's table sets are distributed to
// the engine's workers, and the next level starts only after every set of
// the level is treated. treat handles one table set (exhaustively,
// degraded, or scalar-pruned, depending on the engine mode).
//
// Parallel runs go through the persistent levelPool (spawned once here,
// retired on return); single-set levels and Workers==1 runs stay inline on
// the coordinator, where waking the pool would cost more than the work.
// Results are deterministic regardless of the schedule, because each
// set's archive depends only on the immutable lower levels.
// A cancelled context short-circuits the remaining levels: every worker
// parks at the level boundary (no goroutine outlives the run) and the
// loop returns without touching the remaining sets.
func (e *engine) runLevels(treat func(w *worker, id int32, s query.TableSet)) {
	// Panic containment: a panic while treating one set is recovered
	// here, latches the run as cancelled (cancelErr reports
	// ErrEnginePanic), and every worker — including the spawned pool
	// goroutines, whose panics would otherwise kill the process — parks
	// at the next poll. One wrapper covers the pool, the inline path,
	// and runScalar, since all of them go through this treat.
	inner := treat
	treat = func(w *worker, id int32, s query.TableSet) {
		defer e.containPanic()
		if hp := panicHook.Load(); hp != nil {
			(*hp)(id)
		}
		inner(w, id, s)
	}
	nextID := int32(0)
	var pool *levelPool
	if len(e.workers) > 1 {
		pool = newLevelPool(e, treat)
		defer pool.shutdown()
	}
	for k := 1; k <= e.enum.n; k++ {
		if e.cancelled.Load() {
			return
		}
		sets := e.enum.levels[k]
		base := nextID
		nextID += int32(len(sets))

		if pool == nil || len(sets) <= 1 {
			w := &e.workers[0]
			for i, s := range sets {
				if e.cancelled.Load() {
					return
				}
				treat(w, base+int32(i), s)
			}
			continue
		}
		pool.runLevel(sets, base)
	}
}
