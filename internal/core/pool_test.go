package core

import (
	"fmt"
	"sync"
	"testing"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/synthetic"
)

// TestDequeClaimsEachIndexOnce hammers one deque from an owner (popFront)
// and several thieves (popBack) and checks every index is claimed exactly
// once — the work-stealing scheduler's single invariant.
func TestDequeClaimsEachIndexOnce(t *testing.T) {
	const n = 10000
	var d deque
	d.reset(0, n)
	var claimed [n]int32
	var wg sync.WaitGroup
	grab := func(pop func() int32) {
		defer wg.Done()
		for {
			i := pop()
			if i < 0 {
				return
			}
			claimed[i]++
		}
	}
	wg.Add(4)
	go grab(d.popFront)
	for i := 0; i < 3; i++ {
		go grab(d.popBack)
	}
	wg.Wait()
	for i, c := range claimed {
		if c != 1 {
			t.Fatalf("index %d claimed %d times", i, c)
		}
	}
}

// invarianceShapes exercises the three split enumerations the adaptive
// strategy routes between: tree-shaped sets (chain, star, random tree),
// mid-density cycle sets, and dense clique sets.
var invarianceShapes = []struct {
	shape  synthetic.Shape
	tables int
}{
	{synthetic.Chain, 9},
	{synthetic.Star, 7},
	{synthetic.Cycle, 8},
	{synthetic.Clique, 6},
	{synthetic.RandomTree, 9},
}

// TestScheduleInvariance is the work-stealing scheduler's differential
// gate: for every enumeration strategy, runs with Workers 2, 4 and 8 must
// be bit-identical to the serial run — same canonical frontier, same best
// plan, and same Stats counters (EnumSets, EnumSplits, Considered,
// Stored). Under -race this also exercises the persistent pool's wake,
// steal, and park transitions for data races.
func TestScheduleInvariance(t *testing.T) {
	w := objective.UniformWeights(threeObjs)
	for _, tc := range invarianceShapes {
		q := buildShape(t, tc.shape, tc.tables, 3)
		m := costmodel.NewDefault(q)
		for _, strat := range []EnumerationStrategy{EnumAuto, EnumGraph, EnumExhaustive} {
			opts := Options{Objectives: threeObjs, Alpha: 1.5, MaxDOP: 2, Workers: 1, Enumeration: strat}
			base, err := RTA(m, w, opts)
			if err != nil {
				t.Fatal(err)
			}
			baseJSON, err := base.Best.JSON(q, threeObjs)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				opts.Workers = workers
				got, err := RTA(m, w, opts)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s/%v/workers=%d", tc.shape, strat, workers)
				sameFrontier(t, label, got.Frontier, base.Frontier)
				gotJSON, err := got.Best.JSON(q, threeObjs)
				if err != nil {
					t.Fatal(err)
				}
				if string(gotJSON) != string(baseJSON) {
					t.Errorf("%s: best plan differs from serial run:\n%s\nvs\n%s", label, gotJSON, baseJSON)
				}
				if got.Stats.EnumSets != base.Stats.EnumSets || got.Stats.EnumSplits != base.Stats.EnumSplits {
					t.Errorf("%s: EnumSets/EnumSplits %d/%d vs serial %d/%d",
						label, got.Stats.EnumSets, got.Stats.EnumSplits, base.Stats.EnumSets, base.Stats.EnumSplits)
				}
				if got.Stats.Considered != base.Stats.Considered || got.Stats.Stored != base.Stats.Stored {
					t.Errorf("%s: Considered/Stored %d/%d vs serial %d/%d",
						label, got.Stats.Considered, got.Stats.Stored, base.Stats.Considered, base.Stats.Stored)
				}
			}
		}
	}
}

// TestPoolSpawnsOncePerRun pins the scheduler fix: a parallel run spawns
// exactly Workers-1 goroutines total, not Workers per cardinality level.
func TestPoolSpawnsOncePerRun(t *testing.T) {
	q := buildShape(t, synthetic.Chain, 12, 1)
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	const workers = 4
	before := poolSpawned.Load()
	if _, err := RTA(m, w, Options{Objectives: threeObjs, Alpha: 1.5, Workers: workers, Enumeration: EnumGraph}); err != nil {
		t.Fatal(err)
	}
	if got := poolSpawned.Load() - before; got != workers-1 {
		t.Fatalf("run spawned %d worker goroutines, want %d (once per run, not per level)", got, workers-1)
	}
}

// BenchmarkSchedulerChurn is the goroutine-churn regression benchmark on a
// 20-table chain: spawns/op must stay at Workers-1 (the old per-level
// barrier spawned ~Workers per level, i.e. ~20x more) and allocs/op must
// not regress toward per-level WaitGroup/closure garbage.
func BenchmarkSchedulerChurn(b *testing.B) {
	_, q := synthetic.MustBuild(synthetic.Spec{Shape: synthetic.Chain, Tables: 20, MaxRows: 1e5, Seed: 1})
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	opts := Options{Objectives: threeObjs, Alpha: 1.5, Workers: 4, Enumeration: EnumGraph}
	if _, err := RTA(m, w, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	before := poolSpawned.Load()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RTA(m, w, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(poolSpawned.Load()-before)/float64(b.N), "spawns/op")
}
