package core

import (
	"math"
	"strings"
)

// PredictCost estimates the relative optimization effort of one query —
// the scheduling priority the batch path sorts members by, not a cost in
// any physical unit. The shape follows the engine's complexity bounds:
// the bushy dynamic program visits O(3^n) ordered splits over n tables
// (each table is in the left half, the right half, or neither), archive
// sizes — and with them the candidate combinations per split — grow
// roughly geometrically with the number of competing objectives, and the
// algorithm scales the whole search: EXA prunes nothing, IRA re-runs the
// program over a geometric precision schedule, RTA runs it once with
// approximate pruning, and the scalar baselines keep one plan per set.
//
// The estimate is deliberately coarse: scheduling only needs the ranking,
// and the ranking only needs monotonicity — more tables or more
// objectives never predicts cheaper, for every algorithm (pinned by
// TestPredictCostMonotone).
func PredictCost(tables, objectives int, algorithm string) float64 {
	if tables < 1 {
		tables = 1
	}
	if objectives < 1 {
		objectives = 1
	}
	return math.Pow(3, float64(tables)) *
		math.Pow(2, float64(objectives-1)) *
		algorithmFactor(algorithm)
}

// algorithmFactor scales the predicted effort by algorithm, relative to a
// single approximate (RTA) run. Unknown names get the RTA factor — a
// middle-of-the-road default beats failing for a knob that only orders
// work.
func algorithmFactor(algorithm string) float64 {
	switch strings.ToLower(algorithm) {
	case "exa":
		return 8
	case "ira":
		return 3
	case "selinger", "weightedsum":
		return 1.0 / 16
	default: // "rta", "auto", ""
		return 1
	}
}
