package core

import (
	"testing"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
)

// predictAlgs spans the named algorithms, the auto default, and an
// unknown name (which must fall back, not fail).
var predictAlgs = []string{"exa", "rta", "ira", "selinger", "weightedsum", "auto", "", "EXA", "nonsense"}

// TestPredictCostMonotone pins the property batch scheduling relies on:
// for every algorithm, adding tables or objectives never predicts a
// cheaper optimization.
func TestPredictCostMonotone(t *testing.T) {
	for _, alg := range predictAlgs {
		for tables := 1; tables <= 20; tables++ {
			for objs := 1; objs <= 9; objs++ {
				c := PredictCost(tables, objs, alg)
				if c <= 0 {
					t.Fatalf("PredictCost(%d, %d, %q) = %v, want > 0", tables, objs, alg, c)
				}
				if ct := PredictCost(tables+1, objs, alg); ct < c {
					t.Errorf("%q: %d->%d tables at %d objs predicts cheaper (%v < %v)",
						alg, tables, tables+1, objs, ct, c)
				}
				if co := PredictCost(tables, objs+1, alg); co < c {
					t.Errorf("%q: %d->%d objs at %d tables predicts cheaper (%v < %v)",
						alg, objs, objs+1, tables, co, c)
				}
			}
		}
	}
}

// TestPredictCostRanksAlgorithms pins the coarse algorithm ordering: the
// exact algorithm is the most expensive, the scalar baselines the
// cheapest, with IRA between EXA and RTA.
func TestPredictCostRanksAlgorithms(t *testing.T) {
	exa := PredictCost(8, 3, "exa")
	ira := PredictCost(8, 3, "ira")
	rta := PredictCost(8, 3, "rta")
	sel := PredictCost(8, 3, "selinger")
	if !(exa > ira && ira > rta && rta > sel) {
		t.Fatalf("algorithm ranking broken: exa=%v ira=%v rta=%v selinger=%v", exa, ira, rta, sel)
	}
	if PredictCost(8, 3, "") != rta || PredictCost(8, 3, "auto") != rta {
		t.Fatal("auto/empty algorithm must predict like rta")
	}
	if PredictCost(8, 3, "nonsense") != rta {
		t.Fatal("unknown algorithm must fall back to the rta factor")
	}
	if PredictCost(0, 0, "rta") != PredictCost(1, 1, "rta") {
		t.Fatal("out-of-range inputs must clamp to 1")
	}
}

// TestSharedMemoAcrossRuns pins the core sharing contract at the engine
// level: two runs of the same configuration over the same query share
// every table set, and the borrowing run's frontier is bit-for-bit the
// lender's.
func TestSharedMemoAcrossRuns(t *testing.T) {
	m := costmodel.NewDefault(starQuery(t))
	opts := smallOpts(threeObjs)
	w, b := objective.UniformWeights(threeObjs), objective.NoBounds()

	base, err := EXA(m, w, b, opts)
	if err != nil {
		t.Fatal(err)
	}

	sm := NewSharedMemo()
	opts.Shared = sm
	lend, err := EXA(m, w, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if lend.Stats.SharedMemoHits != 0 {
		t.Fatalf("first shared run reported %d hits, want 0", lend.Stats.SharedMemoHits)
	}
	if sm.Len() == 0 {
		t.Fatal("first shared run published nothing")
	}

	borrow, err := EXA(m, w, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Every non-singleton set must be served from the memo (singleton scans
	// stay unshared — they are cheaper than a lookup), so the only
	// remaining candidates are the access paths.
	if borrow.Stats.SharedMemoHits != sm.Len() {
		t.Fatalf("borrow hit %d sets, want all %d published", borrow.Stats.SharedMemoHits, sm.Len())
	}
	if borrow.Stats.Considered >= lend.Stats.Considered {
		t.Fatalf("full-overlap borrow considered %d candidates, lender %d — nothing was skipped",
			borrow.Stats.Considered, lend.Stats.Considered)
	}

	q := m.Query()
	for _, got := range []Result{lend, borrow} {
		if got.Frontier.Len() != base.Frontier.Len() {
			t.Fatalf("frontier size %d, want %d", got.Frontier.Len(), base.Frontier.Len())
		}
		for i, p := range got.Frontier.Plans() {
			bp := base.Frontier.Plans()[i]
			if p.Cost != bp.Cost {
				t.Fatalf("plan %d cost %v, want %v", i, p.Cost, bp.Cost)
			}
			if p.Format(q) != bp.Format(q) {
				t.Fatalf("plan %d tree:\n%s\nwant:\n%s", i, p.Format(q), bp.Format(q))
			}
		}
	}
}
