package core

import (
	"fmt"
	"math"
	"time"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/pareto"
	"moqo/internal/plan"
	"moqo/internal/query"
)

// This file preserves the pre-refactor, tree-allocating dynamic program:
// every candidate heap-allocates a full *plan.Node and archives are the
// legacy pointer-backed pareto.Archive. It exists for two reasons:
//
//   - differential testing: the flat engine must produce frontiers
//     identical to this implementation, candidate for candidate;
//   - the hotpath benchmark (internal/bench, cmd/experiments -fig
//     hotpath): the "before" arm the allocation-free engine is measured
//     against.
//
// It is sequential and supports no timeout, cancellation or degraded
// mode — it measures and certifies the exhaustive candidate loop only.

// ReferenceEXA runs the exact multi-objective dynamic program in the
// pre-refactor representation (see the file comment). The result's
// frontier is canonically sorted like the flat engine's, so the two are
// directly comparable.
func ReferenceEXA(m *costmodel.Model, w objective.Weights, b objective.Bounds, opts Options) (Result, error) {
	return referenceRun(m, w, b, opts, 1, nil)
}

// ReferenceRTA runs the representative-tradeoffs algorithm in the
// pre-refactor representation: internal pruning precision
// αi = Alpha^(1/|Q|), exactly as RTA.
func ReferenceRTA(m *costmodel.Model, w objective.Weights, opts Options) (Result, error) {
	opts2, err := opts.Normalize()
	if err != nil {
		return Result{}, err
	}
	n := m.Query().NumRelations()
	alphaI := math.Pow(opts2.Alpha, 1/float64(n))
	if alphaI < 1 {
		alphaI = 1
	}
	return referenceRun(m, w, objective.NoBounds(), opts, alphaI, nil)
}

func referenceRun(m *costmodel.Model, w objective.Weights, b objective.Bounds, opts Options, alphaInternal float64, prec *objective.Precision) (Result, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return Result{}, err
	}
	if !w.Valid() || !b.Valid() {
		return Result{}, fmt.Errorf("core: invalid weights or bounds")
	}
	start := time.Now()
	q := m.Query()
	enum := enumerate(q, EnumExhaustive, nil)
	memo := make(map[query.TableSet]*pareto.Archive, enum.total)
	newArchive := func() *pareto.Archive {
		if prec != nil {
			return pareto.NewPrecisionArchive(opts.Objectives, *prec)
		}
		return pareto.NewArchive(opts.Objectives, alphaInternal)
	}

	considered := 0
	for k := 1; k <= enum.n; k++ {
		for _, s := range enum.levels[k] {
			a := newArchive()
			if s.Single() {
				for _, p := range m.ScanAlternatives(s.First(), opts.sampling()) {
					considered++
					a.Insert(p)
				}
			} else {
				referenceCandidates(m, opts, memo, s, func(p *plan.Node) {
					considered++
					a.Insert(p)
				})
			}
			memo[s] = a
		}
	}

	final := memo[enum.all]
	stored := 0
	for _, a := range memo {
		stored += a.Len()
	}
	plans := append([]*plan.Node(nil), final.Plans()...)
	sortPlansCanonically(plans)
	ins, rej, ev := final.Stats()
	sorted := pareto.NewMaterialized(opts.Objectives, final.Alpha(), prec, plans, ins, rej, ev)
	return Result{
		Best:     sorted.SelectBest(w, b),
		Frontier: sorted,
		Stats: Stats{
			Duration:    time.Since(start),
			Considered:  considered,
			Stored:      stored,
			MemoryBytes: int64(stored) * storedPlanBytes,
			ParetoLast:  final.Len(),
			Iterations:  1,
		},
	}, nil
}

// referenceCandidates is the pre-refactor candidate loop: every split of s
// with stored sub-plans, every join operator and DOP, every pair of stored
// sub-plans — each candidate built as a fresh *plan.Node.
func referenceCandidates(m *costmodel.Model, opts Options, memo map[query.TableSet]*pareto.Archive, s query.TableSet, fn func(*plan.Node)) {
	hasEdgeSplit := false
	q := m.Query()
	s.EachSubset(func(left, right query.TableSet) bool {
		if opts.LeftDeepOnly && !right.Single() {
			return true
		}
		al, ar := memo[left], memo[right]
		if al == nil || ar == nil || al.Len() == 0 || ar.Len() == 0 {
			return true
		}
		// The pre-refactor loop tested splits via the edge-list
		// materialization; kept as-is so the reference arm measures the
		// original cost profile.
		if len(q.CrossingEdges(left, right)) == 0 {
			return true
		}
		hasEdgeSplit = true
		if right.Single() {
			if rel := right.First(); m.InnerIndexColumn(left, rel) != "" {
				for _, pl := range al.Plans() {
					fn(m.NewIndexNL(pl, rel))
				}
			}
		}
		for _, pl := range al.Plans() {
			for _, pr := range ar.Plans() {
				for _, alg := range joinAlgs {
					for dop := 1; dop <= opts.MaxDOP; dop++ {
						fn(m.NewJoin(alg, dop, pl, pr))
					}
				}
			}
		}
		return true
	})
	if hasEdgeSplit {
		return
	}
	s.EachSubset(func(left, right query.TableSet) bool {
		if opts.LeftDeepOnly && !right.Single() {
			return true
		}
		al, ar := memo[left], memo[right]
		if al == nil || ar == nil || al.Len() == 0 || ar.Len() == 0 {
			return true
		}
		for _, pl := range al.Plans() {
			for _, pr := range ar.Plans() {
				for dop := 1; dop <= opts.MaxDOP; dop++ {
					fn(m.NewJoin(plan.BlockNLJoin, dop, pl, pr))
				}
			}
		}
		return true
	})
}
