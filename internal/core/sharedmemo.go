package core

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"moqo/internal/costmodel"
	"moqo/internal/pareto"
	"moqo/internal/query"
)

// SharedMemo is a cross-query store of completed Pareto archives — the
// batch path's common-subexpression layer. Queries of one workload that
// join overlapping table sets solve overlapping subproblems: the paper's
// dynamic program memoizes per table set *within* one run, and the shared
// memo extends that memoization *across* runs whose subproblems provably
// coincide.
//
// An archive for table set s is a pure function of
//
//   - the induced subquery on s: the relations of s at their local
//     indexes (table identity and filter selectivity) and the join edges
//     internal to s — query.EstimateRows, EstimateWidth, connectivity and
//     index applicability never read anything outside s,
//   - the catalog statistics (fingerprinted),
//   - the run configuration: active objectives, per-objective internal
//     pruning precisions (exact float bits — this is what keeps RTA runs
//     of different query sizes apart, since αi = α^(1/n) depends on n),
//     MaxDOP, the sampling decision, the left-deep restriction, and the
//     cost-model calibration,
//
// and of nothing else: the candidate enumeration order is canonical
// across enumeration strategies, worker counts and split anchors (the
// engine's standing invariant, pinned by the differential tests). The
// memo key encodes exactly those inputs, so a hit substitutes an archive
// that is bit-for-bit the one the engine would have computed — plans,
// cost rows, insertion order, and the (table set, row index) sub-plan
// references its entries carry, which resolve identically in the
// borrowing run because its lower levels are bit-identical too.
//
// Entries are published only for completely treated sets of runs that
// neither timed out nor were cancelled (a degraded run's lower levels may
// hold truncated archives; see engine.fullSet), and published archives
// are immutable from then on. All methods are safe for concurrent use by
// any number of engine runs.
type SharedMemo struct {
	mu sync.RWMutex
	m  map[string]*pareto.FlatArchive

	hits      atomic.Int64
	misses    atomic.Int64
	published atomic.Int64
}

// NewSharedMemo creates an empty shared memo. Scope it to one batch (one
// catalog generation): the memo grows monotonically and is dropped as a
// whole when the batch completes.
func NewSharedMemo() *SharedMemo {
	return &SharedMemo{m: make(map[string]*pareto.FlatArchive)}
}

// get returns the archive published under key, or nil. The []byte key
// avoids allocating on the (frequent) lookup path.
func (sm *SharedMemo) get(key []byte) *pareto.FlatArchive {
	sm.mu.RLock()
	a := sm.m[string(key)]
	sm.mu.RUnlock()
	if a != nil {
		sm.hits.Add(1)
	} else {
		sm.misses.Add(1)
	}
	return a
}

// put publishes a completed archive under key. First publisher wins;
// concurrent publishers of one key computed bit-identical archives, so
// dropping the loser changes nothing.
func (sm *SharedMemo) put(key []byte, a *pareto.FlatArchive) {
	sm.mu.Lock()
	if _, ok := sm.m[string(key)]; !ok {
		sm.m[string(key)] = a
		sm.published.Add(1)
	}
	sm.mu.Unlock()
}

// Len returns the number of published archives.
func (sm *SharedMemo) Len() int {
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	return len(sm.m)
}

// Counters reports cumulative lookup hits, lookup misses, and published
// archives.
func (sm *SharedMemo) Counters() (hits, misses, published int64) {
	return sm.hits.Load(), sm.misses.Load(), sm.published.Load()
}

// sharedEdge is one join edge prepared for subproblem-key building: the
// edge's endpoint pair as a table set (for the "internal to s" test) and
// its canonical fragment. The engine sorts its edges by fragment once, so
// the fragments selected for any s stream out in an order that depends
// only on the induced edge set — never on the order edges were added to
// the query.
type sharedEdge struct {
	both query.TableSet
	frag []byte
}

// prepareShared precomputes the run-configuration key prefix and the
// per-relation/per-edge fragments, so the per-set key of the hot path is
// a few appends into per-worker scratch. Called once per run, after the
// archive configuration is resolved.
func (e *engine) prepareShared() {
	cat := e.q.Catalog()

	b := make([]byte, 0, 256)
	b = append(b, "sm1|cat="...)
	b = appendHex64(b, cat.Fingerprint())
	// Active objectives with their internal pruning precisions, exact to
	// the float bit: RTA's αi = α^(1/n) folds the member's relation count
	// into the precision, so only same-precision runs (EXA always; RTA/IRA
	// iterations of equal α and n) ever share.
	b = append(b, "|cfg="...)
	ids := e.opts.Objectives.IDs()
	for i, o := range ids {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(o), 10)
		b = append(b, ':')
		alpha := e.alphaInternal
		if e.precInternal != nil {
			alpha = e.precInternal[o]
		}
		b = appendHex64(b, math.Float64bits(alpha))
	}
	b = append(b, "|dop="...)
	b = strconv.AppendInt(b, int64(e.opts.MaxDOP), 10)
	b = append(b, "|smp="...)
	b = strconv.AppendBool(b, e.opts.sampling())
	if e.opts.LeftDeepOnly {
		b = append(b, "|ld"...)
	}
	if p := e.m.Params(); p != costmodel.Default() {
		b = fmt.Appendf(b, "|params=%v", p)
	}
	e.sharedPrefix = b

	// Relation fragments: local index, catalog-stable table name
	// (length-prefixed, so no choice of names can alias), filter
	// selectivity bits. The local index matters — compact plan entries
	// address relations by query-local index, so archives are shared only
	// between queries that agree on the mapping.
	e.sharedRels = make([][]byte, len(e.q.Relations))
	for i, r := range e.q.Relations {
		name := cat.Table(r.Table).Name
		rb := make([]byte, 0, len(name)+24)
		rb = strconv.AppendInt(rb, int64(i), 10)
		rb = append(rb, ':')
		rb = strconv.AppendInt(rb, int64(len(name)), 10)
		rb = append(rb, ':')
		rb = append(rb, name...)
		rb = append(rb, '=')
		rb = appendHex64(rb, math.Float64bits(r.FilterSel))
		rb = append(rb, ';')
		e.sharedRels[i] = rb
	}

	// Edge fragments, canonicalized endpoint-low-first and sorted by
	// content (like the public fingerprint's edge encoding).
	e.sharedEdges = make([]sharedEdge, 0, len(e.q.Edges))
	for _, ed := range e.q.Edges {
		l, r, lc, rc := ed.Left, ed.Right, ed.LeftCol, ed.RightCol
		if r < l {
			l, r, lc, rc = r, l, rc, lc
		}
		eb := make([]byte, 0, len(lc)+len(rc)+32)
		eb = strconv.AppendInt(eb, int64(l), 10)
		eb = append(eb, '.')
		eb = strconv.AppendInt(eb, int64(len(lc)), 10)
		eb = append(eb, ':')
		eb = append(eb, lc...)
		eb = append(eb, '-')
		eb = strconv.AppendInt(eb, int64(r), 10)
		eb = append(eb, '.')
		eb = strconv.AppendInt(eb, int64(len(rc)), 10)
		eb = append(eb, ':')
		eb = append(eb, rc...)
		eb = append(eb, '=')
		eb = appendHex64(eb, math.Float64bits(ed.Selectivity))
		eb = append(eb, ';')
		e.sharedEdges = append(e.sharedEdges, sharedEdge{
			both: query.Singleton(l).Add(r),
			frag: eb,
		})
	}
	sort.Slice(e.sharedEdges, func(i, j int) bool {
		return bytes.Compare(e.sharedEdges[i].frag, e.sharedEdges[j].frag) < 0
	})
}

// sharedKey builds the canonical subproblem key for table set s into this
// worker's scratch buffer: run prefix, the set's relation fragments in
// ascending local-index order, and its internal edges in the canonical
// sorted order. The returned slice aliases w.keyBuf and stays valid until
// the worker's next sharedKey call.
func (w *worker) sharedKey(s query.TableSet) []byte {
	e := w.e
	b := append(w.keyBuf[:0], e.sharedPrefix...)
	b = append(b, "|s="...)
	b = appendHex64(b, uint64(s))
	b = append(b, "|r="...)
	for t := s; !t.Empty(); {
		i := t.First()
		t = t.Minus(query.Singleton(i))
		b = append(b, e.sharedRels[i]...)
	}
	b = append(b, "|e="...)
	for i := range e.sharedEdges {
		if e.sharedEdges[i].both.SubsetOf(s) {
			b = append(b, e.sharedEdges[i].frag...)
		}
	}
	w.keyBuf = b
	return b
}

// appendHex64 appends a uint64 as 16 zero-padded lowercase hex digits.
func appendHex64(b []byte, x uint64) []byte {
	const digits = "0123456789abcdef"
	var d [16]byte
	for i := 15; i >= 0; i-- {
		d[i] = digits[x&0xf]
		x >>= 4
	}
	return append(b, d[:]...)
}

// engineRuns counts dynamic-program executions process-wide (one per
// engine.run/runScalar, one per IRA iteration). The batch tests read it
// to assert that duplicate batch members run exactly one DP.
var engineRuns atomic.Int64

// EngineRuns returns the process-wide count of dynamic-program
// executions started so far.
func EngineRuns() int64 { return engineRuns.Load() }
