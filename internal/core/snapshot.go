package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"time"

	"moqo/internal/objective"
	"moqo/internal/pareto"
	"moqo/internal/plan"
	"moqo/internal/query"
)

// costStride is the size of one cost row in a snapshot's backing arrays
// (full nine-dimensional vectors, like pareto.FlatArchive).
const costStride = int(objective.NumObjectives)

// FrontierSnapshot is a compact, immutable, self-contained copy of the
// (α-approximate) Pareto frontier of one finished optimization run — the
// unit the frontier cache stores and ships. The frontier itself is
// independent of the user's weights and bounds (the paper's central
// observation, §3: pruning compares cost vectors, never weighted costs),
// so a snapshot computed under one preference vector answers any later
// weight or bound change with a SelectBest scan plus a single plan
// materialization — microseconds instead of a dynamic program.
//
// A snapshot holds the frontier's cost rows and compact plan entries in
// canonical order, plus the closed sub-memo those entries transitively
// reference, re-indexed densely. Materialization is deferred exactly as
// in the engine's hot path: *plan.Node trees are rebuilt from the entry
// chains only for the plans a caller extracts, with shared subtrees
// cached (plan.Materializer). Because the sub-memo is closed, a snapshot
// survives serialization (MarshalBinary) and can persist to disk or ship
// between moqod replicas.
//
// Snapshots are never built from degraded (timed-out) runs: a truncated
// frontier carries no reuse guarantee.
type FrontierSnapshot struct {
	objs objective.Set
	// setAlpha is the set-level approximation precision of the frontier:
	// 1 for EXA (exact Pareto set), the requested αU for RTA, the final
	// iteration's α(i) for IRA. It is what the seeded-IRA stopping
	// condition may assume about the snapshot.
	setAlpha float64
	// pruneAlpha and prec mirror the originating run's per-level pruning
	// configuration (internal precision), so rehydrated archives report
	// the same Alpha()/Precision() as the cold run's.
	pruneAlpha float64
	prec       *objective.Precision
	all        query.TableSet

	// costs/entries are the frontier rows in canonical order (sorted by
	// pareto.CompareCanonical, stable over insertion order) — the same
	// permutation materializeFrontier applies, so SelectBest over the
	// snapshot picks the same plan as SelectBest over a cold run.
	costs   []float64
	entries []plan.Entry
	// subs is the closed sub-memo: every (table set, index) reachable
	// from the frontier entries, sets ascending, densely re-indexed.
	subs []snapshotSet

	// inserted/rejected/evicted are the originating archive's counters.
	inserted, rejected, evicted int
	// stats is the originating run's effort (reuse answers report it
	// with ReusedFrontier set).
	stats Stats

	// rehydrate memoizes archive(): a cached snapshot answers many
	// re-weight requests, and materializing every frontier plan tree per
	// request would put O(frontier) work back on the fast path. The trees
	// and the archive are immutable once built, so one materialization
	// serves all subsequent selections (and concurrent ones: sync.Once
	// publishes the fully built archive).
	rehydrate  sync.Once
	rehydrated *pareto.Archive
}

// snapshotSet is the retained slice of one table set's archive.
type snapshotSet struct {
	set     query.TableSet
	costs   []float64
	entries []plan.Entry
}

// Len returns the number of frontier plans.
func (s *FrontierSnapshot) Len() int { return len(s.entries) }

// CostAt returns the i-th frontier cost vector (canonical order).
func (s *FrontierSnapshot) CostAt(i int32) objective.Vector {
	var v objective.Vector
	copy(v[:], s.costs[int(i)*costStride:(int(i)+1)*costStride])
	return v
}

// Objectives returns the active objective set of the originating run.
func (s *FrontierSnapshot) Objectives() objective.Set { return s.objs }

// SetAlpha returns the set-level approximation precision of the frontier
// (1 = exact Pareto set).
func (s *FrontierSnapshot) SetAlpha() float64 { return s.setAlpha }

// Stats returns the originating run's effort statistics.
func (s *FrontierSnapshot) Stats() Stats { return s.stats }

// SelectBest implements the paper's SelectBest(P, W, B) over the snapshot
// rows: the index of the frontier plan with minimal weighted cost among
// those respecting the bounds, falling back to the overall minimum. Ties
// break toward the earliest (canonical-order) plan, exactly as in the
// cold path.
func (s *FrontierSnapshot) SelectBest(w objective.Weights, b objective.Bounds) int32 {
	return pareto.SelectBestRows(s.costs, w, b, s.objs)
}

// snapshotMemo adapts a snapshot to plan.Memo for materialization (the
// frontier-accessor CostAt(i) and the memo CostAt(set, i) differ in
// signature, so the adapter is a separate type).
type snapshotMemo struct{ s *FrontierSnapshot }

// find returns the retained slice for a table set (nil for the full set,
// which lives in the frontier arrays).
func (m snapshotMemo) find(t query.TableSet) *snapshotSet {
	subs := m.s.subs
	i := sort.Search(len(subs), func(i int) bool { return subs[i].set >= t })
	if i < len(subs) && subs[i].set == t {
		return &subs[i]
	}
	return nil
}

// EntryAt implements plan.Memo over the snapshot's closed sub-memo.
func (m snapshotMemo) EntryAt(t query.TableSet, idx int32) plan.Entry {
	if t == m.s.all {
		return m.s.entries[idx]
	}
	return m.find(t).entries[idx]
}

// CostAt implements plan.Memo over the snapshot's closed sub-memo.
func (m snapshotMemo) CostAt(t query.TableSet, idx int32) objective.Vector {
	if t == m.s.all {
		return m.s.CostAt(idx)
	}
	sub := m.find(t)
	var v objective.Vector
	copy(v[:], sub.costs[int(idx)*costStride:(int(idx)+1)*costStride])
	return v
}

// Plans materializes all frontier plans, in canonical order, sharing
// common subtrees — the snapshot counterpart of materializeFrontier.
func (s *FrontierSnapshot) Plans() []*plan.Node {
	mt := plan.NewMaterializer(snapshotMemo{s})
	out := make([]*plan.Node, s.Len())
	for i := range out {
		out[i] = mt.Plan(s.all, int32(i))
	}
	return out
}

// archive rehydrates the snapshot into the legacy tree-backed archive,
// with the originating run's pruning configuration and counters. The
// rehydration is memoized: the first selection after a snapshot is cached
// (or deserialized) pays the plan materialization, every later re-weight
// against the same snapshot reuses the archive and allocates nothing here.
func (s *FrontierSnapshot) archive() *pareto.Archive {
	s.rehydrate.Do(func() {
		s.rehydrated = pareto.NewMaterialized(s.objs, s.pruneAlpha, s.prec, s.Plans(), s.inserted, s.rejected, s.evicted)
	})
	return s.rehydrated
}

// SizeBytes estimates the snapshot's in-memory footprint (cost rows plus
// entry records across the frontier and the sub-memo) — the figure behind
// the moqod snapshot-bytes gauge. It tracks the serialized size closely:
// both are dominated by the same rows and entries.
func (s *FrontierSnapshot) SizeBytes() int {
	const entryBytes = 32 // op + 2 idx (int32) + 2 table sets (uint64), padded
	n := 8*len(s.costs) + entryBytes*len(s.entries)
	for i := range s.subs {
		n += 16 + 8*len(s.subs[i].costs) + entryBytes*len(s.subs[i].entries)
	}
	return n + 128
}

// SelectFromSnapshot answers a weighted (and, for exact snapshots,
// bounded) request from a cached frontier: a SelectBest scan over the
// snapshot rows plus plan materialization. This is the re-weight fast
// path — no dynamic program runs. The returned result is bit-for-bit the
// one a cold run at the same weights and bounds would produce (plan,
// cost vector, frontier); its Stats carry the originating run's effort
// counters with ReusedFrontier set and Duration measuring the scan.
func SelectFromSnapshot(snap *FrontierSnapshot, w objective.Weights, b objective.Bounds) (Result, error) {
	if snap == nil || snap.Len() == 0 {
		return Result{}, fmt.Errorf("core: empty frontier snapshot")
	}
	if !w.Valid() || !b.Valid() {
		return Result{}, fmt.Errorf("core: invalid weights or bounds")
	}
	start := time.Now()
	final := snap.archive()
	best := final.Plans()[snap.SelectBest(w, b)]
	st := snap.stats
	st.ReusedFrontier = true
	st.Duration = time.Since(start)
	return Result{Best: best, Frontier: final, Stats: st, Snapshot: snap}, nil
}

// planRef identifies one stored sub-plan during snapshot extraction.
type planRef struct {
	set query.TableSet
	idx int32
}

// snapshot extracts a FrontierSnapshot from a finished run: the full
// set's frontier in canonical order plus the transitively reachable
// sub-plans, densely re-indexed. Returns nil for an empty archive.
func (e *engine) snapshot(flat *pareto.FlatArchive, setAlpha float64, st Stats) *FrontierSnapshot {
	if flat == nil || flat.Len() == 0 {
		return nil
	}
	cfg := e.flatConfig()
	n := flat.Len()

	// Canonical frontier order: the permutation materializeFrontier's
	// stable sort applies to the extracted plans.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return pareto.CompareCanonical(flat.CostAt(order[i]), flat.CostAt(order[j])) < 0
	})

	s := &FrontierSnapshot{
		objs:       cfg.Objectives(),
		setAlpha:   setAlpha,
		pruneAlpha: cfg.Alpha(),
		prec:       cfg.Precision(),
		all:        e.enum.all,
		stats:      st,
	}
	s.inserted, s.rejected, s.evicted = flat.Stats()

	// Transitive reachability over the memo, from the frontier entries
	// down. Index-nested-loop inners (SyntheticInner) are synthetic index
	// probes, not stored sub-plans, and carry no reference.
	needed := make(map[query.TableSet]map[int32]bool)
	var stack []planRef
	push := func(ent plan.Entry) {
		if ent.IsScan() {
			return
		}
		stack = append(stack, planRef{ent.LeftSet, ent.LeftIdx})
		if ent.RightIdx != plan.SyntheticInner {
			stack = append(stack, planRef{ent.RightSet, ent.RightIdx})
		}
	}
	for _, i := range order {
		push(flat.EntryAt(i))
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		m := needed[r.set]
		if m == nil {
			m = make(map[int32]bool)
			needed[r.set] = m
		}
		if m[r.idx] {
			continue
		}
		m[r.idx] = true
		push(e.memo.EntryAt(r.set, r.idx))
	}

	// Dense re-indexing: sets ascending, retained indices ascending.
	sets := make([]query.TableSet, 0, len(needed))
	for t := range needed {
		sets = append(sets, t)
	}
	slices.Sort(sets)
	remap := make(map[planRef]int32, len(needed))
	s.subs = make([]snapshotSet, len(sets))
	for si, t := range sets {
		idxs := make([]int32, 0, len(needed[t]))
		for idx := range needed[t] {
			idxs = append(idxs, idx)
		}
		slices.Sort(idxs)
		sub := snapshotSet{
			set:     t,
			entries: make([]plan.Entry, len(idxs)),
			costs:   make([]float64, 0, len(idxs)*costStride),
		}
		for ni, oi := range idxs {
			remap[planRef{t, oi}] = int32(ni)
			sub.entries[ni] = e.memo.EntryAt(t, oi)
			v := e.memo.CostAt(t, oi)
			sub.costs = append(sub.costs, v[:]...)
		}
		s.subs[si] = sub
	}
	rewrite := func(ent plan.Entry) plan.Entry {
		if ent.IsScan() {
			return ent
		}
		ent.LeftIdx = remap[planRef{ent.LeftSet, ent.LeftIdx}]
		if ent.RightIdx != plan.SyntheticInner {
			ent.RightIdx = remap[planRef{ent.RightSet, ent.RightIdx}]
		}
		return ent
	}
	for i := range s.subs {
		for j := range s.subs[i].entries {
			s.subs[i].entries[j] = rewrite(s.subs[i].entries[j])
		}
	}
	s.entries = make([]plan.Entry, n)
	s.costs = make([]float64, 0, n*costStride)
	for ni, oi := range order {
		s.entries[ni] = rewrite(flat.EntryAt(oi))
		v := flat.CostAt(oi)
		s.costs = append(s.costs, v[:]...)
	}
	return s
}

// Serialization: a versioned little-endian binary format, so snapshots
// can persist to disk or ship between moqod replicas. The format is
// self-contained (closed sub-memo included) and validated on decode.
const (
	snapshotMagic   = "MOQF"
	snapshotVersion = 1
)

// MarshalBinary encodes the snapshot in the versioned binary format.
func (s *FrontierSnapshot) MarshalBinary() ([]byte, error) {
	w := binWriter{buf: make([]byte, 0, s.SizeBytes()+256)}
	w.raw([]byte(snapshotMagic))
	w.u16(snapshotVersion)
	w.u16(uint16(s.objs))
	w.f64(s.setAlpha)
	w.f64(s.pruneAlpha)
	if s.prec != nil {
		w.u8(1)
		for _, x := range s.prec {
			w.f64(x)
		}
	} else {
		w.u8(0)
	}
	w.u64(uint64(s.all))
	w.u64(uint64(s.inserted))
	w.u64(uint64(s.rejected))
	w.u64(uint64(s.evicted))
	w.u64(uint64(s.stats.Duration))
	w.u64(uint64(s.stats.Considered))
	w.u64(uint64(s.stats.Stored))
	w.u64(uint64(s.stats.MemoryBytes))
	w.u64(uint64(s.stats.ParetoLast))
	w.u64(uint64(s.stats.EnumSets))
	w.u64(uint64(s.stats.EnumSplits))
	w.u64(uint64(s.stats.Iterations))
	w.section(s.entries, s.costs)
	w.u32(uint32(len(s.subs)))
	for i := range s.subs {
		w.u64(uint64(s.subs[i].set))
		w.section(s.subs[i].entries, s.subs[i].costs)
	}
	return w.buf, nil
}

// UnmarshalFrontierSnapshot decodes a snapshot encoded by MarshalBinary,
// validating the format version, all array lengths, and that every entry
// reference resolves within the snapshot's closed sub-memo.
func UnmarshalFrontierSnapshot(data []byte) (*FrontierSnapshot, error) {
	r := binReader{buf: data}
	if string(r.raw(4)) != snapshotMagic {
		return nil, fmt.Errorf("core: not a frontier snapshot (bad magic)")
	}
	if v := r.u16(); v != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported frontier snapshot version %d", v)
	}
	s := &FrontierSnapshot{}
	s.objs = objective.Set(r.u16())
	s.setAlpha = r.f64()
	s.pruneAlpha = r.f64()
	switch flag := r.u8(); flag {
	case 0:
	case 1:
		var p objective.Precision
		for i := range p {
			p[i] = r.f64()
		}
		s.prec = &p
	default:
		if r.err == nil {
			return nil, fmt.Errorf("core: corrupt frontier snapshot: precision flag %d", flag)
		}
	}
	s.all = query.TableSet(r.u64())
	s.inserted = int(r.u64())
	s.rejected = int(r.u64())
	s.evicted = int(r.u64())
	s.stats.Duration = time.Duration(r.u64())
	s.stats.Considered = int(r.u64())
	s.stats.Stored = int(r.u64())
	s.stats.MemoryBytes = int64(r.u64())
	s.stats.ParetoLast = int(r.u64())
	s.stats.EnumSets = int(r.u64())
	s.stats.EnumSplits = int(r.u64())
	s.stats.Iterations = int(r.u64())
	s.entries, s.costs = r.section()
	nsubs := int(r.u32())
	if r.err == nil && nsubs > r.remaining()/8 {
		return nil, fmt.Errorf("core: corrupt frontier snapshot: sub-memo count %d exceeds payload", nsubs)
	}
	if r.err == nil {
		s.subs = make([]snapshotSet, nsubs)
		for i := 0; i < nsubs && r.err == nil; i++ {
			s.subs[i].set = query.TableSet(r.u64())
			s.subs[i].entries, s.subs[i].costs = r.section()
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("core: corrupt frontier snapshot: %w", r.err)
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("core: corrupt frontier snapshot: %d trailing bytes", len(r.buf)-r.off)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// validate checks structural invariants after decode: sets sorted and
// unique, every cost slice row-aligned with its entries, every entry
// reference resolvable, every cost finite and non-negative, every
// operator code within the engine's plan space, and every join a proper
// split of its containing set. The split invariant (operands disjoint,
// non-empty, and unioning exactly to the container) forces strict
// cardinality descent along entry chains, so a decoded snapshot can
// never send the materializer into a reference cycle.
func (s *FrontierSnapshot) validate() error {
	if len(s.entries) == 0 {
		return fmt.Errorf("core: frontier snapshot with empty frontier")
	}
	if s.objs == 0 || s.objs&^objective.AllSet() != 0 {
		return fmt.Errorf("core: corrupt frontier snapshot: objective set %#x", uint16(s.objs))
	}
	if !alphaValid(s.setAlpha) || !alphaValid(s.pruneAlpha) {
		return fmt.Errorf("core: corrupt frontier snapshot: invalid alpha")
	}
	if s.prec != nil {
		for _, x := range s.prec {
			if !alphaValid(x) {
				return fmt.Errorf("core: corrupt frontier snapshot: invalid precision")
			}
		}
	}
	if s.all.Empty() {
		return fmt.Errorf("core: corrupt frontier snapshot: empty table set")
	}
	lenOf := func(t query.TableSet) (int, bool) {
		if sub := (snapshotMemo{s}).find(t); sub != nil {
			return len(sub.entries), true
		}
		return 0, false
	}
	for i := range s.subs {
		if i > 0 && s.subs[i-1].set >= s.subs[i].set {
			return fmt.Errorf("core: corrupt frontier snapshot: sub-memo sets out of order")
		}
		if s.subs[i].set == s.all {
			return fmt.Errorf("core: corrupt frontier snapshot: full set in sub-memo")
		}
	}
	check := func(container query.TableSet, ents []plan.Entry, costs []float64) error {
		if len(costs) != len(ents)*costStride {
			return fmt.Errorf("core: corrupt frontier snapshot: cost rows misaligned")
		}
		for _, x := range costs {
			if math.IsNaN(x) || x < 0 {
				return fmt.Errorf("core: corrupt frontier snapshot: invalid cost value")
			}
		}
		for _, ent := range ents {
			if ent.IsScan() {
				if err := validScanEntry(container, ent); err != nil {
					return err
				}
				continue
			}
			if err := validJoinEntry(container, ent); err != nil {
				return err
			}
			if n, ok := lenOf(ent.LeftSet); !ok || int(ent.LeftIdx) >= n || ent.LeftIdx < 0 {
				return fmt.Errorf("core: corrupt frontier snapshot: dangling left reference %v[%d]", ent.LeftSet, ent.LeftIdx)
			}
			if ent.RightIdx == plan.SyntheticInner {
				if !ent.RightSet.Single() {
					return fmt.Errorf("core: corrupt frontier snapshot: non-singleton index-probe inner")
				}
				continue
			}
			if n, ok := lenOf(ent.RightSet); !ok || int(ent.RightIdx) >= n || ent.RightIdx < 0 {
				return fmt.Errorf("core: corrupt frontier snapshot: dangling right reference %v[%d]", ent.RightSet, ent.RightIdx)
			}
		}
		return nil
	}
	if err := check(s.all, s.entries, s.costs); err != nil {
		return err
	}
	for i := range s.subs {
		if err := check(s.subs[i].set, s.subs[i].entries, s.subs[i].costs); err != nil {
			return err
		}
	}
	return nil
}

// alphaValid reports whether x is a usable approximation precision: a
// finite value of at least 1 (also rejecting NaN).
func alphaValid(x float64) bool { return x >= 1 && !math.IsInf(x, 1) }

// validScanEntry checks a scan entry against the engine's plan space:
// scans are stored only for singleton sets, carry no operand references,
// and their op code must decode to a known algorithm (with a rate index
// inside SampleRates for sampling scans — an out-of-range index would
// panic in Entry.ScanOp during materialization).
func validScanEntry(container query.TableSet, ent plan.Entry) error {
	if !container.Single() {
		return fmt.Errorf("core: corrupt frontier snapshot: scan of non-singleton set %v", container)
	}
	if ent.RightSet != 0 || ent.LeftIdx != 0 || ent.RightIdx != 0 {
		return fmt.Errorf("core: corrupt frontier snapshot: scan entry with operand references")
	}
	alg, param := plan.ScanAlg(ent.Op>>8), ent.Op&0xff
	if ent.Op < 0 || ent.Op&^0xffff != 0 {
		return fmt.Errorf("core: corrupt frontier snapshot: scan op %#x out of range", ent.Op)
	}
	switch alg {
	case plan.SeqScan, plan.IndexScan:
		if param != 0 {
			return fmt.Errorf("core: corrupt frontier snapshot: scan op %#x has spurious rate index", ent.Op)
		}
	case plan.SampleScan:
		if int(param) >= len(plan.SampleRates) {
			return fmt.Errorf("core: corrupt frontier snapshot: sample rate index %d out of range", param)
		}
	default:
		return fmt.Errorf("core: corrupt frontier snapshot: unknown scan algorithm %d", alg)
	}
	return nil
}

// validJoinEntry checks a join entry's op code and split shape: known
// algorithm, DOP within [1, MaxDOP], operands disjoint and non-empty,
// unioning exactly to the containing set.
func validJoinEntry(container query.TableSet, ent plan.Entry) error {
	alg, dop := plan.JoinAlg(ent.Op>>8), ent.Op&0xff
	if ent.Op < 0 || ent.Op&^0xffff != 0 || alg < plan.HashJoin || alg > plan.BlockNLJoin {
		return fmt.Errorf("core: corrupt frontier snapshot: join op %#x out of range", ent.Op)
	}
	if dop < 1 || int(dop) > plan.MaxDOP {
		return fmt.Errorf("core: corrupt frontier snapshot: join DOP %d out of range", dop)
	}
	if ent.RightSet.Empty() {
		return fmt.Errorf("core: corrupt frontier snapshot: join with empty inner set")
	}
	if !ent.LeftSet.Disjoint(ent.RightSet) || ent.LeftSet.Union(ent.RightSet) != container {
		return fmt.Errorf("core: corrupt frontier snapshot: entry operands %v ⋈ %v are not a split of %v",
			ent.LeftSet, ent.RightSet, container)
	}
	return nil
}

// binWriter appends little-endian primitives to a growing buffer.
type binWriter struct{ buf []byte }

func (w *binWriter) raw(p []byte) { w.buf = append(w.buf, p...) }
func (w *binWriter) u8(x uint8)   { w.buf = append(w.buf, x) }
func (w *binWriter) u16(x uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, x) }
func (w *binWriter) u32(x uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, x) }
func (w *binWriter) u64(x uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, x) }
func (w *binWriter) f64(x float64) {
	w.u64(math.Float64bits(x))
}

// section writes one (entries, costs) archive slice.
func (w *binWriter) section(ents []plan.Entry, costs []float64) {
	w.u32(uint32(len(ents)))
	for _, e := range ents {
		w.u32(uint32(e.Op))
		w.u32(uint32(e.LeftIdx))
		w.u32(uint32(e.RightIdx))
		w.u64(uint64(e.LeftSet))
		w.u64(uint64(e.RightSet))
	}
	for _, c := range costs {
		w.f64(c)
	}
}

// binReader reads little-endian primitives, latching the first error.
type binReader struct {
	buf []byte
	off int
	err error
}

func (r *binReader) remaining() int { return len(r.buf) - r.off }

func (r *binReader) raw(n int) []byte {
	if r.err != nil || r.remaining() < n {
		r.err = fmt.Errorf("truncated at offset %d", r.off)
		return make([]byte, n)
	}
	p := r.buf[r.off : r.off+n]
	r.off += n
	return p
}

func (r *binReader) u8() uint8    { return r.raw(1)[0] }
func (r *binReader) u16() uint16  { return binary.LittleEndian.Uint16(r.raw(2)) }
func (r *binReader) u32() uint32  { return binary.LittleEndian.Uint32(r.raw(4)) }
func (r *binReader) u64() uint64  { return binary.LittleEndian.Uint64(r.raw(8)) }
func (r *binReader) f64() float64 { return math.Float64frombits(r.u64()) }

// section reads one (entries, costs) archive slice.
func (r *binReader) section() ([]plan.Entry, []float64) {
	n := int(r.u32())
	const perEntry = 28 + 8*costStride // encoded bytes per stored plan
	if r.err != nil || n > r.remaining()/perEntry+1 {
		if r.err == nil {
			r.err = fmt.Errorf("entry count %d exceeds payload at offset %d", n, r.off)
		}
		return nil, nil
	}
	ents := make([]plan.Entry, n)
	for i := range ents {
		ents[i].Op = int32(r.u32())
		ents[i].LeftIdx = int32(r.u32())
		ents[i].RightIdx = int32(r.u32())
		ents[i].LeftSet = query.TableSet(r.u64())
		ents[i].RightSet = query.TableSet(r.u64())
	}
	costs := make([]float64, n*costStride)
	for i := range costs {
		costs[i] = r.f64()
	}
	return ents, costs
}
