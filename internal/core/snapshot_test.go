package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
)

// snapRTA runs RTA with snapshot capture and returns both.
func snapRTA(t *testing.T, m *costmodel.Model, w objective.Weights, opts Options) (Result, *FrontierSnapshot) {
	t.Helper()
	opts.CaptureSnapshot = true
	res, err := RTA(m, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot == nil {
		t.Fatal("RTA with CaptureSnapshot returned no snapshot")
	}
	return res, res.Snapshot
}

// TestSnapshotMatchesRun: the snapshot's frontier is exactly the run's
// materialized frontier — same length, same canonical order, same cost
// vectors, same plan trees.
func TestSnapshotMatchesRun(t *testing.T) {
	for _, alpha := range []float64{1, 1.5, 3} {
		m := costmodel.NewDefault(starQuery(t))
		opts := smallOpts(threeObjs)
		opts.Alpha = alpha
		w := objective.UniformWeights(threeObjs)
		res, snap := snapRTA(t, m, w, opts)

		if snap.Len() != res.Frontier.Len() {
			t.Fatalf("alpha %v: snapshot has %d plans, frontier %d", alpha, snap.Len(), res.Frontier.Len())
		}
		plans := snap.Plans()
		for i, p := range res.Frontier.Plans() {
			if snap.CostAt(int32(i)) != p.Cost {
				t.Fatalf("alpha %v: cost %d differs: %v vs %v", alpha, i, snap.CostAt(int32(i)), p.Cost)
			}
			if plans[i].Format(m.Query()) != p.Format(m.Query()) {
				t.Fatalf("alpha %v: plan %d differs:\n%s\nvs\n%s", alpha, i,
					plans[i].Format(m.Query()), p.Format(m.Query()))
			}
		}
	}
}

// TestSelectFromSnapshotMatchesCold: for random re-weights (and, for
// exact snapshots, re-bounds) the snapshot-served result is bit-for-bit
// the cold run's — plan, cost vector, frontier.
func TestSelectFromSnapshotMatchesCold(t *testing.T) {
	q := starQuery(t)
	m := costmodel.NewDefault(q)
	opts := smallOpts(threeObjs)
	opts.Alpha = 1.5
	r := rand.New(rand.NewSource(7))
	_, snap := snapRTA(t, m, objective.UniformWeights(threeObjs), opts)

	for trial := 0; trial < 25; trial++ {
		w := randomWeights(r, threeObjs)
		cold, err := RTA(m, w, opts)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := SelectFromSnapshot(snap, w, objective.NoBounds())
		if err != nil {
			t.Fatal(err)
		}
		if !warm.Stats.ReusedFrontier {
			t.Fatal("reuse result not flagged ReusedFrontier")
		}
		if warm.Best.Cost != cold.Best.Cost {
			t.Fatalf("trial %d: best cost differs: %v vs %v", trial, warm.Best.Cost, cold.Best.Cost)
		}
		if warm.Best.Format(q) != cold.Best.Format(q) {
			t.Fatalf("trial %d: best plan differs:\n%s\nvs\n%s", trial, warm.Best.Format(q), cold.Best.Format(q))
		}
		if !reflect.DeepEqual(warm.Frontier.Frontier(), cold.Frontier.Frontier()) {
			t.Fatalf("trial %d: frontier vectors differ", trial)
		}
	}
}

// TestSnapshotRoundTrip: MarshalBinary/UnmarshalFrontierSnapshot is an
// exact round trip — the decoded snapshot is deep-equal and serves the
// same SelectBest answers.
func TestSnapshotRoundTrip(t *testing.T) {
	q := starQuery(t)
	m := costmodel.NewDefault(q)
	opts := smallOpts(threeObjs)
	opts.Alpha = 1.5
	_, snap := snapRTA(t, m, objective.UniformWeights(threeObjs), opts)

	data, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalFrontierSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatal("decoded snapshot is not deep-equal to the original")
	}
	data2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("re-encoding the decoded snapshot changed the bytes")
	}

	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		w := randomWeights(r, threeObjs)
		a, err := SelectFromSnapshot(snap, w, objective.NoBounds())
		if err != nil {
			t.Fatal(err)
		}
		b, err := SelectFromSnapshot(back, w, objective.NoBounds())
		if err != nil {
			t.Fatal(err)
		}
		if a.Best.Cost != b.Best.Cost || a.Best.Format(q) != b.Best.Format(q) {
			t.Fatalf("trial %d: decoded snapshot serves a different plan", trial)
		}
	}
}

// TestSnapshotDecodeRejectsCorruption: truncations, trailing garbage,
// bad magic/version and dangling references are all rejected.
func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	m := costmodel.NewDefault(chainQuery(t))
	opts := smallOpts(threeObjs)
	opts.Alpha = 1.5
	_, snap := snapRTA(t, m, objective.UniformWeights(threeObjs), opts)
	data, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := UnmarshalFrontierSnapshot(data[:len(data)/2]); err == nil {
		t.Error("truncated snapshot accepted")
	}
	if _, err := UnmarshalFrontierSnapshot(append(append([]byte{}, data...), 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
	bad := append([]byte{}, data...)
	bad[0] = 'X'
	if _, err := UnmarshalFrontierSnapshot(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte{}, data...)
	bad[4] = 0xFF // version
	if _, err := UnmarshalFrontierSnapshot(bad); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := UnmarshalFrontierSnapshot(nil); err == nil {
		t.Error("empty payload accepted")
	}
}

// TestSnapshotNotCapturedWhenDegraded: a timed-out run never yields a
// snapshot — truncated frontiers must not enter the frontier cache.
func TestSnapshotNotCapturedWhenDegraded(t *testing.T) {
	m := costmodel.NewDefault(starQuery(t))
	opts := smallOpts(threeObjs)
	opts.Alpha = 1.5
	opts.Timeout = 1 // nanosecond: degrade immediately
	opts.CaptureSnapshot = true
	res, err := RTA(m, objective.UniformWeights(threeObjs), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.TimedOut {
		t.Skip("run finished within a nanosecond; cannot exercise the degraded path")
	}
	if res.Snapshot != nil {
		t.Fatal("degraded run produced a frontier snapshot")
	}
}

// TestIRASeededGuarantee: IRA seeded from a snapshot of the same
// weight/bound-free request meets the same Theorem 6 guarantee as cold
// IRA, across random weights and bounds.
func TestIRASeededGuarantee(t *testing.T) {
	q := chainQuery(t)
	m := costmodel.NewDefault(q)
	opts := smallOpts(threeObjs)
	r := rand.New(rand.NewSource(99))

	minima, err := ObjectiveMinima(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, alphaU := range []float64{1.15, 1.5, 2} {
		iopts := opts
		iopts.Alpha = alphaU
		iopts.CaptureSnapshot = true

		// Seed: one cold IRA run under arbitrary weights/bounds.
		seedW := randomWeights(r, threeObjs)
		seedB := objective.NoBounds().
			With(objective.TotalTime, minima[objective.TotalTime]*(1+r.Float64()))
		seedRes, err := IRA(m, seedW, seedB, iopts)
		if err != nil {
			t.Fatal(err)
		}
		if seedRes.Snapshot == nil {
			t.Fatal("IRA with CaptureSnapshot returned no snapshot")
		}

		for trial := 0; trial < 10; trial++ {
			w := randomWeights(r, threeObjs)
			b := objective.NoBounds().
				With(objective.TotalTime, minima[objective.TotalTime]*(1+r.Float64())).
				With(objective.TupleLoss, r.Float64())
			exact, err := EXA(m, w, b, opts)
			if err != nil {
				t.Fatal(err)
			}
			exactRespects := b.Respects(exact.Best.Cost, threeObjs)

			res, err := IRASeededContext(nil, m, w, b, iopts, seedRes.Snapshot)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Stats.ReusedFrontier {
				t.Fatalf("alphaU %v trial %d: seeded IRA result not flagged ReusedFrontier", alphaU, trial)
			}
			if exactRespects && !b.Respects(res.Best.Cost, threeObjs) {
				t.Fatalf("alphaU %v trial %d: feasible instance but seeded IRA plan violates bounds", alphaU, trial)
			}
			if got, opt := w.Cost(res.Best.Cost), w.Cost(exact.Best.Cost); got > opt*alphaU*(1+1e-9) {
				t.Fatalf("alphaU %v trial %d: seeded IRA cost %v exceeds %v * optimum %v", alphaU, trial, got, alphaU, opt)
			}
		}
	}
}

// TestIRASeededRejectsMismatch: a seed over different objectives is
// rejected rather than silently serving a wrong frontier.
func TestIRASeededRejectsMismatch(t *testing.T) {
	m := costmodel.NewDefault(chainQuery(t))
	opts := smallOpts(threeObjs)
	opts.Alpha = 1.5
	opts.CaptureSnapshot = true
	res, err := IRA(m, objective.UniformWeights(threeObjs), objective.NoBounds(), opts)
	if err != nil {
		t.Fatal(err)
	}
	two := objective.NewSet(objective.TotalTime, objective.BufferFootprint)
	bad := smallOpts(two)
	bad.Alpha = 1.5
	if _, err := IRASeededContext(nil, m, objective.UniformWeights(two), objective.NoBounds(), bad, res.Snapshot); err == nil {
		t.Fatal("seed with mismatched objectives accepted")
	}
	if _, err := IRASeededContext(nil, m, objective.UniformWeights(two), objective.NoBounds(), bad, nil); err == nil {
		t.Fatal("nil seed accepted")
	}
}
