package core

import (
	"testing"
	"time"

	"moqo/internal/costmodel"
	"moqo/internal/objective"
	"moqo/internal/pareto"
	"moqo/internal/query"
	"moqo/internal/synthetic"
)

// differentialShapes are the topologies the graph-aware enumeration is
// pinned against the exhaustive scan on, at sizes where the exhaustive
// arm is still cheap.
var differentialShapes = []struct {
	shape  synthetic.Shape
	tables int
}{
	{synthetic.Chain, 7},
	{synthetic.Star, 6},
	{synthetic.Cycle, 7},
	{synthetic.Clique, 5},
	{synthetic.RandomTree, 7},
}

// buildShape materializes one synthetic query.
func buildShape(t testing.TB, shape synthetic.Shape, n int, seed int64) *query.Query {
	t.Helper()
	_, q, err := synthetic.Build(synthetic.Spec{Shape: shape, Tables: n, MaxRows: 1e5, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// sameFrontier asserts two canonically sorted frontiers carry identical
// cost vectors.
func sameFrontier(t *testing.T, label string, a, b *pareto.Archive) {
	t.Helper()
	pa, pb := a.Plans(), b.Plans()
	if len(pa) != len(pb) {
		t.Fatalf("%s: frontier sizes differ: %d vs %d", label, len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].Cost != pb[i].Cost {
			t.Fatalf("%s: frontier[%d] cost vectors differ:\n  %v\n  %v", label, i, pa[i].Cost, pb[i].Cost)
		}
	}
}

// TestEnumerateGraphMatchesExhaustiveLevels: on connected graphs both
// strategies must materialize identical levels (same sets, same order,
// hence same dense ids), while the graph-aware traversal scans only the
// sets it keeps.
func TestEnumerateGraphMatchesExhaustiveLevels(t *testing.T) {
	for _, tc := range differentialShapes {
		for seed := int64(1); seed <= 3; seed++ {
			q := buildShape(t, tc.shape, tc.tables, seed)
			ex := enumerate(q, EnumExhaustive, nil)
			gr := enumerate(q, EnumGraph, nil)
			if !gr.graphAware || ex.graphAware {
				t.Fatalf("%s: strategies resolved to graphAware=%v/%v", tc.shape, gr.graphAware, ex.graphAware)
			}
			if gr.total != ex.total {
				t.Fatalf("%s-%d: totals differ: %d vs %d", tc.shape, tc.tables, gr.total, ex.total)
			}
			for k := 1; k <= ex.n; k++ {
				if len(gr.levels[k]) != len(ex.levels[k]) {
					t.Fatalf("%s-%d level %d: %d vs %d sets", tc.shape, tc.tables, k, len(gr.levels[k]), len(ex.levels[k]))
				}
				for i := range ex.levels[k] {
					if gr.levels[k][i] != ex.levels[k][i] {
						t.Fatalf("%s-%d level %d[%d]: %v vs %v (order must be Gosper-identical)",
							tc.shape, tc.tables, k, i, gr.levels[k][i], ex.levels[k][i])
					}
				}
			}
			if gr.scanned != gr.total {
				t.Errorf("%s-%d: graph traversal scanned %d sets, materialized %d — must touch only what it keeps",
					tc.shape, tc.tables, gr.scanned, gr.total)
			}
			if ex.scanned != (1<<uint(ex.n))-1 {
				t.Errorf("%s-%d: exhaustive scan visited %d sets, want 2^n-1 = %d",
					tc.shape, tc.tables, ex.scanned, (1<<uint(ex.n))-1)
			}
		}
	}
}

// TestEnumerateGraphFallsBackWhenDisconnected: an explicitly requested
// graph strategy must fall back to the exhaustive scan on a disconnected
// join graph — Cartesian products are unavoidable there and every subset
// has to be treated.
func TestEnumerateGraphFallsBackWhenDisconnected(t *testing.T) {
	q := disconnectedQuery(t)
	e := enumerate(q, EnumGraph, nil)
	if e.graphAware {
		t.Fatal("graph strategy did not fall back on a disconnected join graph")
	}
	if want := 1<<3 - 1; e.total != want {
		t.Fatalf("fallback enumerated %d sets, want %d (all non-empty subsets)", e.total, want)
	}
}

// TestGraphEnumerationMatchesExhaustiveEXA is the differential proof of
// the acceptance criterion: on random chain, star, cycle, clique and
// tree graphs the graph-aware and exhaustive strategies produce
// identical exact Pareto frontiers (canonical order), identical
// candidate and stored counts — while the graph-aware arm scans strictly
// fewer split pairs on every non-clique topology.
func TestGraphEnumerationMatchesExhaustiveEXA(t *testing.T) {
	objs := objective.NewSet(objective.TotalTime, objective.BufferFootprint, objective.TupleLoss)
	w := objective.UniformWeights(objs)
	for _, tc := range differentialShapes {
		for seed := int64(1); seed <= 3; seed++ {
			q := buildShape(t, tc.shape, tc.tables, seed)
			m := costmodel.NewDefault(q)

			opts := Options{Objectives: objs, MaxDOP: 2, Enumeration: EnumExhaustive}
			ex, err := EXA(m, w, objective.NoBounds(), opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Enumeration = EnumGraph
			gr, err := EXA(m, w, objective.NoBounds(), opts)
			if err != nil {
				t.Fatal(err)
			}

			label := tc.shape.String()
			sameFrontier(t, label, gr.Frontier, ex.Frontier)
			if gr.Stats.Considered != ex.Stats.Considered {
				t.Errorf("%s seed %d: considered %d (graph) vs %d (exhaustive) — candidate sets must match",
					label, seed, gr.Stats.Considered, ex.Stats.Considered)
			}
			if gr.Stats.Stored != ex.Stats.Stored {
				t.Errorf("%s seed %d: stored %d vs %d", label, seed, gr.Stats.Stored, ex.Stats.Stored)
			}
			if gr.Best.Cost != ex.Best.Cost {
				t.Errorf("%s seed %d: best plan costs differ", label, seed)
			}
			if gr.Stats.EnumSplits > ex.Stats.EnumSplits {
				t.Errorf("%s seed %d: graph strategy scanned MORE splits (%d) than exhaustive (%d)",
					label, seed, gr.Stats.EnumSplits, ex.Stats.EnumSplits)
			}
			if tc.shape != synthetic.Clique && gr.Stats.EnumSplits >= ex.Stats.EnumSplits {
				t.Errorf("%s seed %d: expected a strict split-scan reduction, got %d vs %d",
					label, seed, gr.Stats.EnumSplits, ex.Stats.EnumSplits)
			}
		}
	}
}

// TestGraphEnumerationMatchesExhaustiveRTA: approximately pruned
// archives depend on candidate insertion order, so this pins the
// stronger property the graph-aware loop provides by emitting its
// splits in the exhaustive scan's canonical order — RTA results are
// bit-for-bit identical across strategies, representatives included.
// (That order-equivalence is also why the plan cache key can ignore
// the enumeration knob, like Workers.)
func TestGraphEnumerationMatchesExhaustiveRTA(t *testing.T) {
	w := objective.UniformWeights(threeObjs)
	for _, tc := range differentialShapes {
		for seed := int64(1); seed <= 2; seed++ {
			q := buildShape(t, tc.shape, tc.tables, seed)
			m := costmodel.NewDefault(q)
			opts := Options{Objectives: threeObjs, MaxDOP: 2, Alpha: 1.5, Enumeration: EnumExhaustive}
			ex, err := RTA(m, w, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Enumeration = EnumGraph
			gr, err := RTA(m, w, opts)
			if err != nil {
				t.Fatal(err)
			}
			label := tc.shape.String()
			sameFrontier(t, label, gr.Frontier, ex.Frontier)
			if gr.Best.Cost != ex.Best.Cost {
				t.Errorf("%s seed %d: RTA best plans differ", label, seed)
			}
			if gr.Stats.Considered != ex.Stats.Considered || gr.Stats.Stored != ex.Stats.Stored {
				t.Errorf("%s seed %d: RTA considered/stored %d/%d vs %d/%d — candidate order must match",
					label, seed, gr.Stats.Considered, gr.Stats.Stored, ex.Stats.Considered, ex.Stats.Stored)
			}
			gi, grj, gev := gr.Frontier.Stats()
			ei, erj, eev := ex.Frontier.Stats()
			if gi != ei || grj != erj || gev != eev {
				t.Errorf("%s seed %d: archive counters (ins=%d rej=%d ev=%d) vs (ins=%d rej=%d ev=%d)",
					label, seed, gi, grj, gev, ei, erj, eev)
			}
		}
	}
}

// TestAutoEnumerationMatchesExhaustive pins the density-adaptive strategy
// (EnumAuto: per-set scan vs edge-cut vs traversal) bit-for-bit against
// the exhaustive scan under approximate pruning — the most order-sensitive
// setting, since RTA archives depend on candidate insertion order. The
// heuristic may only change the scanning work (EnumSplits), never the
// candidates: frontiers, representatives, archive counters and
// considered/stored counts must all match.
func TestAutoEnumerationMatchesExhaustive(t *testing.T) {
	w := objective.UniformWeights(threeObjs)
	for _, tc := range differentialShapes {
		for seed := int64(1); seed <= 2; seed++ {
			q := buildShape(t, tc.shape, tc.tables, seed)
			m := costmodel.NewDefault(q)
			opts := Options{Objectives: threeObjs, MaxDOP: 2, Alpha: 1.5, Enumeration: EnumExhaustive}
			ex, err := RTA(m, w, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Enumeration = EnumAuto
			au, err := RTA(m, w, opts)
			if err != nil {
				t.Fatal(err)
			}
			label := "auto-" + tc.shape.String()
			sameFrontier(t, label, au.Frontier, ex.Frontier)
			if au.Best.Cost != ex.Best.Cost {
				t.Errorf("%s seed %d: best plans differ", label, seed)
			}
			if au.Stats.Considered != ex.Stats.Considered || au.Stats.Stored != ex.Stats.Stored {
				t.Errorf("%s seed %d: considered/stored %d/%d vs %d/%d — candidate order must match",
					label, seed, au.Stats.Considered, au.Stats.Stored, ex.Stats.Considered, ex.Stats.Stored)
			}
			ai, arj, aev := au.Frontier.Stats()
			ei, erj, eev := ex.Frontier.Stats()
			if ai != ei || arj != erj || aev != eev {
				t.Errorf("%s seed %d: archive counters (ins=%d rej=%d ev=%d) vs (ins=%d rej=%d ev=%d)",
					label, seed, ai, arj, aev, ei, erj, eev)
			}
			if au.Stats.EnumSplits > ex.Stats.EnumSplits {
				t.Errorf("%s seed %d: adaptive strategy scanned MORE splits (%d) than exhaustive (%d)",
					label, seed, au.Stats.EnumSplits, ex.Stats.EnumSplits)
			}
		}
	}
}

// TestGraphEnumerationMatchesReference pins the graph-aware engine
// against the preserved pre-refactor engine, closing the loop oracle →
// exhaustive flat engine → graph-aware flat engine.
func TestGraphEnumerationMatchesReference(t *testing.T) {
	objs := threeObjs
	w := objective.UniformWeights(objs)
	for _, shape := range []synthetic.Shape{synthetic.Chain, synthetic.Cycle} {
		q := buildShape(t, shape, 6, 5)
		m := costmodel.NewDefault(q)
		opts := Options{Objectives: objs, MaxDOP: 2, Enumeration: EnumGraph}
		got, err := EXA(m, w, objective.NoBounds(), opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ReferenceEXA(m, w, objective.NoBounds(), Options{Objectives: objs, MaxDOP: 2})
		if err != nil {
			t.Fatal(err)
		}
		sameFrontier(t, shape.String(), got.Frontier, want.Frontier)
		if got.Stats.Considered != want.Stats.Considered {
			t.Errorf("%s: considered %d vs reference %d", shape, got.Stats.Considered, want.Stats.Considered)
		}
	}
}

// TestGraphEnumerationLeftDeep: the LeftDeepOnly ablation must restrict
// both strategies to the same (left-deep) plan space.
func TestGraphEnumerationLeftDeep(t *testing.T) {
	q := buildShape(t, synthetic.Cycle, 6, 2)
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	opts := Options{Objectives: threeObjs, MaxDOP: 2, LeftDeepOnly: true, Enumeration: EnumExhaustive}
	ex, err := EXA(m, w, objective.NoBounds(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Enumeration = EnumGraph
	gr, err := EXA(m, w, objective.NoBounds(), opts)
	if err != nil {
		t.Fatal(err)
	}
	sameFrontier(t, "leftdeep", gr.Frontier, ex.Frontier)
	if gr.Stats.Considered != ex.Stats.Considered {
		t.Errorf("considered %d vs %d under LeftDeepOnly", gr.Stats.Considered, ex.Stats.Considered)
	}
}

// TestGraphEnumerationParallelDeterminism: the graph-aware strategy must
// keep the engine's determinism guarantee — identical frontiers for any
// Workers value (this test doubles as the -race exercise of the csg-cmp
// loops under the concurrent level schedule).
func TestGraphEnumerationParallelDeterminism(t *testing.T) {
	q := buildShape(t, synthetic.Cycle, 8, 3)
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	base, err := RTA(m, w, Options{Objectives: threeObjs, Alpha: 1.5, Workers: 1, Enumeration: EnumGraph})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		got, err := RTA(m, w, Options{Objectives: threeObjs, Alpha: 1.5, Workers: workers, Enumeration: EnumGraph})
		if err != nil {
			t.Fatal(err)
		}
		sameFrontier(t, "workers", got.Frontier, base.Frontier)
		if got.Stats.Considered != base.Stats.Considered || got.Stats.EnumSplits != base.Stats.EnumSplits {
			t.Errorf("workers=%d: considered/splits %d/%d vs %d/%d",
				workers, got.Stats.Considered, got.Stats.EnumSplits, base.Stats.Considered, base.Stats.EnumSplits)
		}
	}
}

// TestGraphEnumerationRTAGuarantee: the RTA's weighted-cost guarantee
// must hold under the graph-aware strategy even though approximate
// pruning may keep different representatives than the exhaustive order.
func TestGraphEnumerationRTAGuarantee(t *testing.T) {
	const alpha = 1.5
	for _, tc := range differentialShapes {
		q := buildShape(t, tc.shape, tc.tables, 11)
		m := costmodel.NewDefault(q)
		w := objective.UniformWeights(threeObjs)
		exact, err := EXA(m, w, objective.NoBounds(), Options{Objectives: threeObjs, MaxDOP: 2})
		if err != nil {
			t.Fatal(err)
		}
		approx, err := RTA(m, w, Options{Objectives: threeObjs, MaxDOP: 2, Alpha: alpha, Enumeration: EnumGraph})
		if err != nil {
			t.Fatal(err)
		}
		best, guarantee := w.Cost(approx.Best.Cost), alpha*w.Cost(exact.Best.Cost)
		if best > guarantee*(1+1e-9) {
			t.Errorf("%s: graph-aware RTA weighted cost %g exceeds alpha*optimum %g", tc.shape, best, guarantee)
		}
	}
}

// TestGraphEnumerationDegradedTimeout: an immediately expiring timeout
// must still produce a plan through the degraded path on a query large
// enough that the lazy reduced-view narrowing matters.
func TestGraphEnumerationDegradedTimeout(t *testing.T) {
	q := buildShape(t, synthetic.Chain, 14, 1)
	m := costmodel.NewDefault(q)
	w := objective.UniformWeights(threeObjs)
	res, err := RTA(m, w, Options{Objectives: threeObjs, Alpha: 2, Timeout: time.Nanosecond, Enumeration: EnumGraph})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.TimedOut {
		t.Fatal("expected the run to report a timeout")
	}
	if res.Best == nil || res.Best.Tables != q.AllTables() {
		t.Fatalf("degraded run returned no full plan: %v", res.Best)
	}
}
