package costmodel

import (
	"moqo/internal/objective"
	"moqo/internal/plan"
	"moqo/internal/query"
)

// NewScan builds a costed scan node for relation rel. rate is the sampling
// rate for SampleScan and ignored otherwise.
func (m *Model) NewScan(rel int, alg plan.ScanAlg, rate float64) *plan.Node {
	n := &plan.Node{
		Tables:   query.Singleton(rel),
		Scan:     alg,
		Relation: rel,
	}
	if alg == plan.SampleScan {
		n.SampleRate = rate
	}
	n.Cost = m.ScanCost(rel, alg, rate)
	return n
}

// NewJoin builds a costed join node combining two sub-plans. It corresponds
// to the paper's Combine(j, p1, p2). IndexNLJoin must be built with
// NewIndexNL instead.
func (m *Model) NewJoin(alg plan.JoinAlg, dop int, left, right *plan.Node) *plan.Node {
	n := &plan.Node{
		Tables: left.Tables.Union(right.Tables),
		Join:   alg,
		Left:   left,
		Right:  right,
		DOP:    dop,
	}
	n.Cost = m.JoinCost(alg, dop, left, right)
	return n
}

// NewIndexNL builds a costed index-nested-loop join of an outer sub-plan
// with an indexed inner base relation. The inner child node is a plain
// index-scan marker for plan rendering; its cost is folded into the join's
// lookup costs rather than costed as a standalone scan.
func (m *Model) NewIndexNL(left *plan.Node, innerRel int) *plan.Node {
	inner := &plan.Node{
		Tables:   query.Singleton(innerRel),
		Scan:     plan.IndexScan,
		Relation: innerRel,
	}
	n := &plan.Node{
		Tables: left.Tables.Add(innerRel),
		Join:   plan.IndexNLJoin,
		Left:   left,
		Right:  inner,
		DOP:    1,
	}
	n.Cost = m.IndexNLCost(left, innerRel)
	return n
}

// ScanAlternatives returns every scan plan for relation rel that the plan
// space admits: a sequential scan, an index scan (when the base table has
// any index), and — when sampling is allowed — one sampling scan per
// available rate. This is the paper's "over 10 different configurations …
// for the scan" search-space extension.
func (m *Model) ScanAlternatives(rel int, allowSampling bool) []*plan.Node {
	out := []*plan.Node{m.NewScan(rel, plan.SeqScan, 0)}
	t := m.baseTable(rel)
	if len(m.q.Catalog().Indexes(t.ID)) > 0 {
		out = append(out, m.NewScan(rel, plan.IndexScan, 0))
	}
	if allowSampling {
		for _, rate := range plan.SampleRates {
			out = append(out, m.NewScan(rel, plan.SampleScan, rate))
		}
	}
	return out
}

// EachScanAlternative yields every scan operator for relation rel that the
// plan space admits — the same alternatives as ScanAlternatives, but as
// (algorithm, rate, cost) triples without building Nodes. It is the
// allocation-free engine's leaf-level counterpart of JoinCostVec. Returns
// false if fn aborted the enumeration.
func (m *Model) EachScanAlternative(rel int, allowSampling bool, fn func(alg plan.ScanAlg, rate float64, cost objective.Vector) bool) bool {
	if !fn(plan.SeqScan, 0, m.ScanCost(rel, plan.SeqScan, 0)) {
		return false
	}
	t := m.baseTable(rel)
	if len(m.q.Catalog().Indexes(t.ID)) > 0 {
		if !fn(plan.IndexScan, 0, m.ScanCost(rel, plan.IndexScan, 0)) {
			return false
		}
	}
	if allowSampling {
		for _, rate := range plan.SampleRates {
			if !fn(plan.SampleScan, rate, m.ScanCost(rel, plan.SampleScan, rate)) {
				return false
			}
		}
	}
	return true
}

// InnerIndexColumn returns the join column on which an index-nested-loop
// join can probe relation innerRel when joining it to the tables of outer,
// or "" if no crossing equi-join edge has an index on the inner side.
func (m *Model) InnerIndexColumn(outer query.TableSet, innerRel int) string {
	cat := m.q.Catalog()
	tbl := m.q.Relations[innerRel].Table
	for _, e := range m.q.CrossingEdges(outer, query.Singleton(innerRel)) {
		var col string
		switch {
		case e.Left == innerRel:
			col = e.LeftCol
		case e.Right == innerRel:
			col = e.RightCol
		default:
			continue
		}
		if cat.HasIndex(tbl, col) {
			return col
		}
	}
	return ""
}
