package costmodel

import (
	"math"

	"moqo/internal/catalog"
	"moqo/internal/objective"
	"moqo/internal/plan"
	"moqo/internal/query"
)

// Params holds the calibration constants of the cost model. The absolute
// values are representative, not measured — the paper's conclusions depend
// on the formulas' structure, not on Postgres's calibration (DESIGN.md §2).
type Params struct {
	SeqPageMs  float64 // sequential page read (ms)
	RandPageMs float64 // random page read (ms)
	CPUTupleMs float64 // per-tuple processing (ms per work unit)

	TupleWork  float64 // CPU work units per emitted/filtered tuple
	HashBuild  float64 // CPU work units per build tuple
	HashProbe  float64 // CPU work units per probe tuple
	SortFactor float64 // CPU work units per tuple per log2(tuples)
	MergeWork  float64 // CPU work units per merged tuple
	PairWork   float64 // CPU work units per tuple pair (block nested loop)
	LookupWork float64 // CPU work units per index lookup

	WorkMemBytes  float64 // hash-table memory budget before spilling
	SortMemBytes  float64 // sort memory budget (external merge beyond it)
	ScanBufBytes  float64 // buffer pages pinned by a sequential scan
	IndexBufBytes float64 // buffer pinned by an index (re)scan
	BNLBufBytes   float64 // block buffer of a block-nested-loop join

	CPUCoordination    float64 // extra CPU fraction per additional core
	EnergyCoordination float64 // extra energy fraction per additional core
	CPUEnergyJ         float64 // Joule per CPU work unit
	IOEnergyJ          float64 // Joule per page access

	StartupMs float64 // fixed operator startup latency (ms)
}

// Default returns the default calibration.
func Default() Params {
	return Params{
		SeqPageMs:  0.05,
		RandPageMs: 0.5,
		CPUTupleMs: 0.0005,

		TupleWork:  1,
		HashBuild:  2.0,
		HashProbe:  1.2,
		SortFactor: 0.35,
		MergeWork:  0.6,
		PairWork:   0.01,
		LookupWork: 3.0,

		WorkMemBytes:  64 << 20, // 64 MB work_mem for hash tables
		SortMemBytes:  4 << 20,  // 4 MB sort memory (external merge beyond)
		ScanBufBytes:  32 * catalog.PageSize,
		IndexBufBytes: 8 * catalog.PageSize,
		BNLBufBytes:   64 * catalog.PageSize,

		CPUCoordination:    0.25,
		EnergyCoordination: 0.20,
		CPUEnergyJ:         0.000002,
		IOEnergyJ:          0.0002,

		StartupMs: 0.1,
	}
}

// Model computes cost vectors for plan operators over one query.
type Model struct {
	q *query.Query
	p Params
}

// New creates a cost model for the given query with the given calibration.
func New(q *query.Query, p Params) *Model {
	return &Model{q: q, p: p}
}

// NewDefault creates a cost model with the default calibration.
func NewDefault(q *query.Query) *Model { return New(q, Default()) }

// Query returns the query the model estimates for.
func (m *Model) Query() *query.Query { return m.q }

// Params returns the model's calibration constants. Anything that caches
// or shares results across models (the plan cache's fingerprints, the
// batch path's shared memo) folds them into its keys, since two models
// with different calibrations cost the same plan differently.
func (m *Model) Params() Params { return m.p }

// rows returns the estimated output cardinality of a table set.
func (m *Model) rows(s query.TableSet) float64 { return m.q.EstimateRows(s) }

// bytes returns the estimated output size in bytes of a table set.
func (m *Model) bytes(s query.TableSet) float64 {
	return m.rows(s) * float64(m.q.EstimateWidth(s))
}

// pages returns the estimated output size in pages of a table set.
func (m *Model) pages(s query.TableSet) float64 {
	p := m.bytes(s) / catalog.PageSize
	if p < 1 {
		p = 1
	}
	return p
}

// baseTable returns the catalog statistics of a relation's base table.
func (m *Model) baseTable(rel int) *catalog.Table {
	return m.q.Catalog().Table(m.q.Relations[rel].Table)
}

// coordCPU returns the CPU work for w units at the given DOP, including the
// coordination overhead that makes more cores cost more total work.
func (m *Model) coordCPU(w float64, dop int) float64 {
	return w * (1 + m.p.CPUCoordination*float64(dop-1))
}

// ScanCost returns the cost vector of scanning relation rel with the given
// algorithm; rate is the sampling rate for SampleScan and ignored otherwise.
func (m *Model) ScanCost(rel int, alg plan.ScanAlg, rate float64) objective.Vector {
	t := m.baseTable(rel)
	sel := m.q.Relations[rel].FilterSel
	outRows := t.Rows * sel
	tuplesPerPage := math.Max(1, catalog.PageSize/float64(t.Width))

	var v objective.Vector
	switch alg {
	case plan.SeqScan:
		io := t.Pages()
		cpu := t.Rows * m.p.TupleWork
		v[objective.IOLoad] = io
		v[objective.CPULoad] = cpu
		v[objective.TotalTime] = io*m.p.SeqPageMs + cpu*m.p.CPUTupleMs + m.p.StartupMs
		v[objective.StartupTime] = m.p.StartupMs + m.p.SeqPageMs
		v[objective.BufferFootprint] = m.p.ScanBufBytes
	case plan.IndexScan:
		// Range scan over the qualifying fraction; random page accesses.
		matchPages := math.Max(1, outRows/tuplesPerPage)
		io := 2 + matchPages // descent + leaf/heap pages
		cpu := outRows*m.p.TupleWork + m.p.LookupWork
		v[objective.IOLoad] = io
		v[objective.CPULoad] = cpu
		v[objective.TotalTime] = io*m.p.RandPageMs + cpu*m.p.CPUTupleMs + m.p.StartupMs
		v[objective.StartupTime] = m.p.StartupMs + 3*m.p.RandPageMs
		v[objective.BufferFootprint] = m.p.IndexBufBytes
	case plan.SampleScan:
		// Block sampling: read and process a fraction of the table.
		io := math.Max(1, t.Pages()*rate)
		cpu := t.Rows * rate * m.p.TupleWork
		v[objective.IOLoad] = io
		v[objective.CPULoad] = cpu
		v[objective.TotalTime] = io*m.p.SeqPageMs + cpu*m.p.CPUTupleMs + m.p.StartupMs
		v[objective.StartupTime] = m.p.StartupMs + m.p.SeqPageMs
		v[objective.BufferFootprint] = m.p.ScanBufBytes
		v[objective.TupleLoss] = 1 - rate
	default:
		panic("costmodel: unknown scan algorithm")
	}
	v[objective.Cores] = 1
	v[objective.Energy] = v[objective.CPULoad]*m.p.CPUEnergyJ + v[objective.IOLoad]*m.p.IOEnergyJ
	return v
}

// JoinCost returns the cost vector of joining the results of left and right
// with the given algorithm and degree of parallelism. For IndexNLJoin use
// IndexNLCost instead (its inner operand is an index lookup, not a stored
// sub-plan).
func (m *Model) JoinCost(alg plan.JoinAlg, dop int, left, right *plan.Node) objective.Vector {
	return m.JoinCostVec(alg, dop, left.Tables, right.Tables, &left.Cost, &right.Cost)
}

// JoinCostVec is JoinCost over raw operand table sets and cost vectors. It
// is the hot-path entry point of the allocation-free engine, which carries
// candidates as compact entries rather than plan trees; cl and cr point
// into caller-owned scratch and are not retained.
func (m *Model) JoinCostVec(alg plan.JoinAlg, dop int, lt, rt query.TableSet, cl, cr *objective.Vector) objective.Vector {
	out := lt.Union(rt)
	lRows, rRows := m.rows(lt), m.rows(rt)
	oRows := m.rows(out)
	d := float64(dop)

	var v objective.Vector
	switch alg {
	case plan.HashJoin:
		build := rRows * m.p.HashBuild
		probe := lRows*m.p.HashProbe + oRows*m.p.TupleWork
		spillPages := math.Max(0, (m.bytes(rt)-m.p.WorkMemBytes)/catalog.PageSize)
		ownIO := 2 * spillPages // write + read spilled partitions
		buildTime := m.coordCPU(build, dop) / d * m.p.CPUTupleMs
		probeTime := (m.coordCPU(probe, dop)/d)*m.p.CPUTupleMs + ownIO*m.p.SeqPageMs

		v[objective.TotalTime] = math.Max(cl[objective.TotalTime], cr[objective.TotalTime]+buildTime) + probeTime + m.p.StartupMs
		v[objective.StartupTime] = math.Max(cl[objective.StartupTime], cr[objective.TotalTime]+buildTime) + m.p.StartupMs
		v[objective.IOLoad] = cl[objective.IOLoad] + cr[objective.IOLoad] + ownIO
		v[objective.CPULoad] = cl[objective.CPULoad] + cr[objective.CPULoad] + m.coordCPU(build+probe, dop)
		v[objective.Cores] = math.Max(d, cl[objective.Cores]+cr[objective.Cores])
		v[objective.DiskFootprint] = cl[objective.DiskFootprint] + cr[objective.DiskFootprint] + spillPages*catalog.PageSize
		v[objective.BufferFootprint] = cl[objective.BufferFootprint] + cr[objective.BufferFootprint] +
			math.Min(m.bytes(rt), m.p.WorkMemBytes)
		v[objective.Energy] = cl[objective.Energy] + cr[objective.Energy] + m.ownEnergy(build+probe, ownIO, dop)

	case plan.SortMergeJoin:
		sortL := m.sortWork(lRows)
		sortR := m.sortWork(rRows)
		merge := (lRows+rRows)*m.p.MergeWork + oRows*m.p.TupleWork
		spillL := math.Max(0, (m.bytes(lt)-m.p.SortMemBytes)/catalog.PageSize)
		spillR := math.Max(0, (m.bytes(rt)-m.p.SortMemBytes)/catalog.PageSize)
		ownIO := 2 * (spillL + spillR) // external sort run write + read
		sortLTime := m.coordCPU(sortL, dop)/d*m.p.CPUTupleMs + 2*spillL*m.p.SeqPageMs
		sortRTime := m.coordCPU(sortR, dop)/d*m.p.CPUTupleMs + 2*spillR*m.p.SeqPageMs
		mergeTime := m.coordCPU(merge, dop) / d * m.p.CPUTupleMs
		sortedBy := math.Max(cl[objective.TotalTime]+sortLTime, cr[objective.TotalTime]+sortRTime)

		v[objective.TotalTime] = sortedBy + mergeTime + m.p.StartupMs
		v[objective.StartupTime] = sortedBy + m.p.StartupMs
		v[objective.IOLoad] = cl[objective.IOLoad] + cr[objective.IOLoad] + ownIO
		v[objective.CPULoad] = cl[objective.CPULoad] + cr[objective.CPULoad] + m.coordCPU(sortL+sortR+merge, dop)
		v[objective.Cores] = math.Max(d, cl[objective.Cores]+cr[objective.Cores])
		v[objective.DiskFootprint] = cl[objective.DiskFootprint] + cr[objective.DiskFootprint] +
			(spillL+spillR)*catalog.PageSize
		v[objective.BufferFootprint] = cl[objective.BufferFootprint] + cr[objective.BufferFootprint] +
			math.Min(m.bytes(lt), m.p.SortMemBytes) + math.Min(m.bytes(rt), m.p.SortMemBytes)
		v[objective.Energy] = cl[objective.Energy] + cr[objective.Energy] + m.ownEnergy(sortL+sortR+merge, ownIO, dop)

	case plan.BlockNLJoin:
		// The inner sub-plan is re-evaluated once per block of the outer —
		// a child cost multiplied by a per-table-set constant, the t_L*c_R
		// term of the paper's Observation 2.
		blocks := math.Max(1, math.Ceil(m.bytes(lt)/m.p.BNLBufBytes))
		pairs := lRows*rRows*m.p.PairWork + oRows*m.p.TupleWork
		pairTime := m.coordCPU(pairs, dop) / d * m.p.CPUTupleMs

		v[objective.TotalTime] = cl[objective.TotalTime] + blocks*cr[objective.TotalTime] + pairTime + m.p.StartupMs
		v[objective.StartupTime] = cl[objective.StartupTime] + cr[objective.StartupTime] + m.p.StartupMs
		v[objective.IOLoad] = cl[objective.IOLoad] + blocks*cr[objective.IOLoad]
		v[objective.CPULoad] = cl[objective.CPULoad] + blocks*cr[objective.CPULoad] + m.coordCPU(pairs, dop)
		v[objective.Cores] = math.Max(d, math.Max(cl[objective.Cores], cr[objective.Cores]))
		v[objective.DiskFootprint] = cl[objective.DiskFootprint] + cr[objective.DiskFootprint]
		v[objective.BufferFootprint] = math.Max(cl[objective.BufferFootprint], cr[objective.BufferFootprint]) +
			m.p.BNLBufBytes
		v[objective.Energy] = cl[objective.Energy] + blocks*cr[objective.Energy] + m.ownEnergy(pairs, 0, dop)

	default:
		panic("costmodel: JoinCost does not handle " + alg.String())
	}
	// Tuple loss composes multiplicatively: 1-(1-a)(1-b).
	a, b := cl[objective.TupleLoss], cr[objective.TupleLoss]
	v[objective.TupleLoss] = 1 - (1-a)*(1-b)
	return v
}

// IndexNLCost returns the cost vector of an index-nested-loop join: for
// every outer tuple from left, one index lookup on the inner base relation
// innerRel. The inner side is never sampled, so it contributes no tuple
// loss; the join is inherently sequential (DOP 1).
func (m *Model) IndexNLCost(left *plan.Node, innerRel int) objective.Vector {
	return m.IndexNLCostVec(left.Tables, &left.Cost, innerRel)
}

// IndexNLCostVec is IndexNLCost over a raw outer table set and cost vector
// (see JoinCostVec).
func (m *Model) IndexNLCostVec(lt query.TableSet, cl *objective.Vector, innerRel int) objective.Vector {
	out := lt.Add(innerRel)
	lRows := m.rows(lt)
	oRows := m.rows(out)
	t := m.baseTable(innerRel)
	tuplesPerPage := math.Max(1, catalog.PageSize/float64(t.Width))
	// Matching inner tuples per outer tuple determine pages per lookup.
	matchPerLookup := oRows / math.Max(1, lRows)
	pagesPerLookup := 1 + matchPerLookup/tuplesPerPage // descent amortized into 1

	lookupIO := lRows * pagesPerLookup
	lookupCPU := lRows*m.p.LookupWork + oRows*m.p.TupleWork
	lookupTime := lookupIO*m.p.RandPageMs + lookupCPU*m.p.CPUTupleMs

	var v objective.Vector
	v[objective.TotalTime] = cl[objective.TotalTime] + lookupTime + m.p.StartupMs
	v[objective.StartupTime] = cl[objective.StartupTime] + pagesPerLookup*m.p.RandPageMs +
		m.p.LookupWork*m.p.CPUTupleMs + m.p.StartupMs
	v[objective.IOLoad] = cl[objective.IOLoad] + lookupIO
	v[objective.CPULoad] = cl[objective.CPULoad] + lookupCPU
	v[objective.Cores] = math.Max(1, cl[objective.Cores])
	v[objective.DiskFootprint] = cl[objective.DiskFootprint]
	v[objective.BufferFootprint] = cl[objective.BufferFootprint] + m.p.IndexBufBytes
	v[objective.Energy] = cl[objective.Energy] + m.ownEnergy(lookupCPU, lookupIO, 1)
	v[objective.TupleLoss] = cl[objective.TupleLoss] // inner side is loss-free
	return v
}

// sortWork returns the CPU work units to sort n tuples.
func (m *Model) sortWork(n float64) float64 {
	if n < 2 {
		return m.p.SortFactor
	}
	return m.p.SortFactor * n * math.Log2(n)
}

// ownEnergy returns the energy of an operator's own work at the given DOP.
// Energy grows with DOP (coordination overhead) while time shrinks — the
// time/energy anti-correlation the paper points out in Section 4.
func (m *Model) ownEnergy(cpu, io float64, dop int) float64 {
	return cpu*(1+m.p.EnergyCoordination*float64(dop-1))*m.p.CPUEnergyJ + io*m.p.IOEnergyJ
}
