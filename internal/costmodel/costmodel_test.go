package costmodel

import (
	"math"
	"testing"

	"moqo/internal/catalog"
	"moqo/internal/objective"
	"moqo/internal/plan"
	"moqo/internal/query"
)

func testQuery(t testing.TB) *query.Query {
	t.Helper()
	cat := catalog.TPCH(1)
	q := query.New("cm_test", cat)
	c := q.AddRelation(catalog.Customer, "c", 0.2)
	o := q.AddRelation(catalog.Orders, "o", 0.5)
	l := q.AddRelation(catalog.Lineitem, "l", 0.6)
	q.AddFKJoin(o, "o_custkey", c, "c_custkey")
	q.AddFKJoin(l, "l_orderkey", o, "o_orderkey")
	return q
}

func TestScanCostBasics(t *testing.T) {
	q := testQuery(t)
	m := NewDefault(q)
	for _, alg := range []plan.ScanAlg{plan.SeqScan, plan.IndexScan} {
		v := m.ScanCost(2, alg, 0)
		if !v.Valid() {
			t.Fatalf("%v: invalid cost %v", alg, v)
		}
		if v[objective.TotalTime] <= 0 || v[objective.IOLoad] <= 0 || v[objective.CPULoad] <= 0 {
			t.Errorf("%v: non-positive core costs %v", alg, v)
		}
		if v[objective.Cores] != 1 {
			t.Errorf("%v: scan must use one core", alg)
		}
		if v[objective.TupleLoss] != 0 {
			t.Errorf("%v: unsampled scan must have zero loss", alg)
		}
		if v[objective.StartupTime] > v[objective.TotalTime] {
			t.Errorf("%v: startup exceeds total time", alg)
		}
	}
}

func TestSampleScanTradeoff(t *testing.T) {
	q := testQuery(t)
	m := NewDefault(q)
	full := m.ScanCost(2, plan.SeqScan, 0)
	sampled := m.ScanCost(2, plan.SampleScan, 0.02)
	if sampled[objective.TupleLoss] != 0.98 {
		t.Errorf("loss = %v, want 0.98", sampled[objective.TupleLoss])
	}
	for _, o := range []objective.ID{objective.TotalTime, objective.IOLoad, objective.CPULoad, objective.Energy} {
		if sampled[o] >= full[o] {
			t.Errorf("sampling should reduce %v: %v >= %v", o, sampled[o], full[o])
		}
	}
	// Higher rate => more cost, less loss.
	s5 := m.ScanCost(2, plan.SampleScan, 0.05)
	if s5[objective.TotalTime] <= sampled[objective.TotalTime] {
		t.Error("5% sample should cost more time than 2%")
	}
	if s5[objective.TupleLoss] >= sampled[objective.TupleLoss] {
		t.Error("5% sample should lose fewer tuples than 2%")
	}
}

func TestIndexScanSelective(t *testing.T) {
	// With a very selective filter the index scan must beat the sequential
	// scan on time; with no filter it must lose (random IO penalty).
	cat := catalog.TPCH(1)
	q := query.New("sel", cat)
	q.AddRelation(catalog.Lineitem, "sel", 0.001)
	q.AddRelation(catalog.Lineitem, "all", 1.0)
	m := NewDefault(q)
	if idx, seq := m.ScanCost(0, plan.IndexScan, 0), m.ScanCost(0, plan.SeqScan, 0); idx[objective.TotalTime] >= seq[objective.TotalTime] {
		t.Errorf("selective index scan should win: idx=%v seq=%v", idx[objective.TotalTime], seq[objective.TotalTime])
	}
	if idx, seq := m.ScanCost(1, plan.IndexScan, 0), m.ScanCost(1, plan.SeqScan, 0); idx[objective.TotalTime] <= seq[objective.TotalTime] {
		t.Errorf("unselective index scan should lose: idx=%v seq=%v", idx[objective.TotalTime], seq[objective.TotalTime])
	}
}

func TestJoinCostValidAllOperators(t *testing.T) {
	q := testQuery(t)
	m := NewDefault(q)
	left := m.NewScan(0, plan.SeqScan, 0)
	right := m.NewScan(1, plan.SeqScan, 0)
	for _, alg := range []plan.JoinAlg{plan.HashJoin, plan.SortMergeJoin, plan.BlockNLJoin} {
		for dop := 1; dop <= plan.MaxDOP; dop++ {
			n := m.NewJoin(alg, dop, left, right)
			if !n.Cost.Valid() {
				t.Fatalf("%v dop=%d: invalid cost", alg, dop)
			}
			if n.Cost[objective.StartupTime] > n.Cost[objective.TotalTime]+1e-9 {
				t.Errorf("%v dop=%d: startup %v exceeds total %v", alg, dop,
					n.Cost[objective.StartupTime], n.Cost[objective.TotalTime])
			}
			if n.Cost[objective.Cores] < float64(dop) {
				t.Errorf("%v dop=%d: cores %v below dop", alg, dop, n.Cost[objective.Cores])
			}
			if err := n.Validate(q); err != nil {
				t.Errorf("%v dop=%d: %v", alg, dop, err)
			}
		}
	}
}

func TestParallelismTimeEnergyTradeoff(t *testing.T) {
	// More cores => less time, more energy and CPU (coordination overhead):
	// the anti-correlation motivating energy as a separate objective.
	q := testQuery(t)
	m := NewDefault(q)
	left := m.NewScan(1, plan.SeqScan, 0)
	right := m.NewScan(2, plan.SeqScan, 0)
	j1 := m.NewJoin(plan.HashJoin, 1, left, right)
	j4 := m.NewJoin(plan.HashJoin, 4, left, right)
	if j4.Cost[objective.TotalTime] >= j1.Cost[objective.TotalTime] {
		t.Errorf("dop=4 should be faster: %v >= %v", j4.Cost[objective.TotalTime], j1.Cost[objective.TotalTime])
	}
	if j4.Cost[objective.Energy] <= j1.Cost[objective.Energy] {
		t.Errorf("dop=4 should use more energy: %v <= %v", j4.Cost[objective.Energy], j1.Cost[objective.Energy])
	}
	if j4.Cost[objective.CPULoad] <= j1.Cost[objective.CPULoad] {
		t.Errorf("dop=4 should use more CPU: %v <= %v", j4.Cost[objective.CPULoad], j1.Cost[objective.CPULoad])
	}
	if j4.Cost[objective.Cores] != 4 {
		t.Errorf("cores = %v, want 4", j4.Cost[objective.Cores])
	}
}

func TestTupleLossComposition(t *testing.T) {
	q := testQuery(t)
	m := NewDefault(q)
	l := m.NewScan(1, plan.SampleScan, 0.05) // loss 0.95
	r := m.NewScan(2, plan.SampleScan, 0.02) // loss 0.98
	j := m.NewJoin(plan.HashJoin, 1, l, r)
	want := 1 - (1-0.95)*(1-0.98)
	if got := j.Cost[objective.TupleLoss]; math.Abs(got-want) > 1e-12 {
		t.Errorf("loss = %v, want %v", got, want)
	}
	if j.Cost[objective.TupleLoss] < 0 || j.Cost[objective.TupleLoss] > 1 {
		t.Error("loss out of [0,1]")
	}
}

func TestIndexNLCost(t *testing.T) {
	q := testQuery(t)
	m := NewDefault(q)
	outer := m.NewScan(0, plan.SeqScan, 0) // customers
	// orders has index o_custkey (FK) — joinable via IdxNL.
	if col := m.InnerIndexColumn(outer.Tables, 1); col != "o_custkey" {
		t.Fatalf("InnerIndexColumn = %q, want o_custkey", col)
	}
	j := m.NewIndexNL(outer, 1)
	if !j.Cost.Valid() {
		t.Fatal("invalid IdxNL cost")
	}
	if j.DOP != 1 {
		t.Error("IdxNL must be sequential")
	}
	if j.Cost[objective.TupleLoss] != 0 {
		t.Error("IdxNL over unsampled operands must have zero loss")
	}
	if err := j.Validate(q); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Sampled outer propagates its loss; indexed inner adds none.
	sampled := m.NewScan(0, plan.SampleScan, 0.01)
	j2 := m.NewIndexNL(sampled, 1)
	if j2.Cost[objective.TupleLoss] != 0.99 {
		t.Errorf("loss = %v, want outer's 0.99", j2.Cost[objective.TupleLoss])
	}
}

func TestInnerIndexColumnAbsent(t *testing.T) {
	cat := catalog.TPCH(1)
	q := query.New("noidx", cat)
	a := q.AddRelation(catalog.Part, "p", 1)
	b := q.AddRelation(catalog.Lineitem, "l", 1)
	// Join on a non-indexed inner column.
	q.AddJoin(a, b, "p_partkey", "l_comment", 0.001)
	m := NewDefault(q)
	outer := m.NewScan(a, plan.SeqScan, 0)
	if col := m.InnerIndexColumn(outer.Tables, b); col != "" {
		t.Errorf("InnerIndexColumn = %q, want none", col)
	}
}

func TestScanAlternatives(t *testing.T) {
	q := testQuery(t)
	m := NewDefault(q)
	with := m.ScanAlternatives(2, true)
	if len(with) != 7 { // seq + index + 5 sample rates
		t.Fatalf("alternatives = %d, want 7", len(with))
	}
	without := m.ScanAlternatives(2, false)
	if len(without) != 2 {
		t.Fatalf("alternatives without sampling = %d, want 2", len(without))
	}
	for _, n := range with {
		if err := n.Validate(q); err != nil {
			t.Errorf("%s: %v", n.OperatorLabel(), err)
		}
	}
}

func TestBNLInnerReexecution(t *testing.T) {
	// Block-nested-loop must charge the inner sub-plan once per outer
	// block (the t_L * c_R term of Observation 2).
	q := testQuery(t)
	m := NewDefault(q)
	outerBig := m.NewScan(2, plan.SeqScan, 0)  // lineitem: many blocks
	outerTiny := m.NewScan(0, plan.SeqScan, 0) // customer
	inner := m.NewScan(1, plan.SeqScan, 0)
	big := m.NewJoin(plan.BlockNLJoin, 1, outerBig, inner)
	tiny := m.NewJoin(plan.BlockNLJoin, 1, outerTiny, inner)
	// IO of the big-outer join must contain many inner rescans.
	bigRescans := (big.Cost[objective.IOLoad] - outerBig.Cost[objective.IOLoad]) / inner.Cost[objective.IOLoad]
	tinyRescans := (tiny.Cost[objective.IOLoad] - outerTiny.Cost[objective.IOLoad]) / inner.Cost[objective.IOLoad]
	if bigRescans <= tinyRescans {
		t.Errorf("bigger outer must force more inner rescans: %v <= %v", bigRescans, tinyRescans)
	}
	if tinyRescans < 1 {
		t.Errorf("at least one inner pass required, got %v", tinyRescans)
	}
}

func TestHashJoinSpill(t *testing.T) {
	// A build side larger than work_mem must spill (disk footprint, IO).
	q := testQuery(t)
	m := NewDefault(q)
	l := m.NewScan(0, plan.SeqScan, 0)
	r := m.NewScan(2, plan.SeqScan, 0) // lineitem >> work_mem
	j := m.NewJoin(plan.HashJoin, 1, l, r)
	if j.Cost[objective.DiskFootprint] <= 0 {
		t.Error("oversized build side should spill to disk")
	}
	// Small build side stays in memory.
	small := m.NewJoin(plan.HashJoin, 1, r, l)
	if small.Cost[objective.DiskFootprint] != l.Cost[objective.DiskFootprint]+r.Cost[objective.DiskFootprint] {
		t.Error("small build side should not spill")
	}
}

func TestJoinCostPanicsOnIndexNL(t *testing.T) {
	q := testQuery(t)
	m := NewDefault(q)
	l := m.NewScan(0, plan.SeqScan, 0)
	r := m.NewScan(1, plan.SeqScan, 0)
	defer func() {
		if recover() == nil {
			t.Error("JoinCost(IndexNLJoin) did not panic")
		}
	}()
	m.JoinCost(plan.IndexNLJoin, 1, l, r)
}

func TestScanCostPanicsOnUnknownAlg(t *testing.T) {
	q := testQuery(t)
	m := NewDefault(q)
	defer func() {
		if recover() == nil {
			t.Error("ScanCost(unknown) did not panic")
		}
	}()
	m.ScanCost(0, plan.ScanAlg(99), 0)
}
