// Package costmodel implements the nine-objective cost model of the
// reproduction (paper Section 4): total execution time, startup time, IO
// load, CPU load, number of used cores, hard-disk footprint, buffer
// footprint, energy consumption, and tuple loss ratio.
//
// Every recursive cost formula is composed exclusively of the function
// family the paper's PONO analysis covers (Section 6.1): sums, maxima,
// minima, multiplication by per-table-set constants, and the tuple-loss
// formula 1-(1-a)(1-b). Structural induction over these formulas yields
// the principle of near-optimality, which the RTA's correctness proof
// (Theorem 3) rests on; the property-based tests of this package verify
// PONO empirically for every operator.
//
// Cardinalities entering the formulas are table-set constants supplied by
// the query's estimator, never plan-dependent values — the premise of the
// paper's Observation 2 (see DESIGN.md §2 for why sampling must not change
// downstream cardinality estimates if the approximation guarantee is to
// hold).
package costmodel
