package costmodel

import (
	"math"
	"testing"

	"moqo/internal/catalog"
	"moqo/internal/objective"
	"moqo/internal/plan"
	"moqo/internal/query"
)

// These tests pin the growth properties the paper's complexity analysis
// assumes about cost formulas (Section 6.3, Observations 1-3 and Lemma 1).
// The RTA's archive-size bound (Lemma 2) — and with it Theorems 4-5 —
// only holds if the cost model actually satisfies them.

// Observation 1: the cost of a single-table plan grows at most
// quadratically in the table cardinality.
func TestObservation1ScanGrowth(t *testing.T) {
	for _, alg := range []plan.ScanAlg{plan.SeqScan, plan.IndexScan, plan.SampleScan} {
		var prev objective.Vector
		prevRows := 0.0
		for _, rows := range []float64{1e3, 1e4, 1e5, 1e6} {
			cat := catalog.New()
			cat.AddTable("t", rows, 100, "pk")
			q := query.New("obs1", cat)
			q.AddRelation("t", "t", 0.5)
			m := NewDefault(q)
			v := m.ScanCost(0, alg, 0.03)
			if prevRows > 0 {
				factor := rows / prevRows
				for _, o := range objective.All() {
					if prev[o] <= 0 {
						continue
					}
					growth := v[o] / prev[o]
					if growth > factor*factor*(1+1e-9) {
						t.Errorf("%v/%v: cost grew %vx for a %vx cardinality increase (super-quadratic)",
							alg, o, growth, factor)
					}
				}
			}
			prev, prevRows = v, rows
		}
	}
}

// Observation 3: every objective's cost is either zero or bounded below
// by an intrinsic constant — the property that lets Lemma 2 bucket costs
// into O(log(max)/log(alpha)) classes per objective.
func TestObservation3IntrinsicLowerBound(t *testing.T) {
	cat := catalog.TPCH(0.001) // tiny scale: the smallest realistic costs
	q := query.New("obs3", cat)
	q.AddRelation(catalog.Nation, "n", 0.04)
	q.AddRelation(catalog.Region, "r", 0.2)
	q.AddJoin(0, 1, "n_regionkey", "r_regionkey", 0.2)
	m := NewDefault(q)
	const intrinsic = 1e-12
	check := func(v objective.Vector, label string) {
		t.Helper()
		for _, o := range objective.All() {
			if v[o] != 0 && v[o] < intrinsic {
				t.Errorf("%s/%v: cost %v below any plausible intrinsic constant", label, o, v[o])
			}
		}
	}
	for _, n := range m.ScanAlternatives(0, true) {
		check(n.Cost, n.OperatorLabel())
	}
	l := m.NewScan(0, plan.SeqScan, 0)
	r := m.NewScan(1, plan.SeqScan, 0)
	for _, alg := range []plan.JoinAlg{plan.HashJoin, plan.SortMergeJoin, plan.BlockNLJoin} {
		check(m.NewJoin(alg, 1, l, r).Cost, alg.String())
	}
}

// Lemma 1: the cost of a plan joining n tables of cardinality <= m is
// bounded by O(m^(2n)) in every objective. We check a generous concrete
// instantiation: cost <= C * m^(2n) with C = 1e6, far looser than the
// lemma needs but tight enough to catch super-polynomial blowups.
func TestLemma1CostUpperBound(t *testing.T) {
	m := 1000.0
	for n := 1; n <= 4; n++ {
		cat := catalog.New()
		q := query.New("lemma1", cat)
		for i := 0; i < n; i++ {
			cat.AddTable(tname(i), m, 100, "pk")
			cat.AddIndex(catalog.TableID(i), "fk", false)
			q.AddRelation(tname(i), tname(i), 1)
		}
		for i := 1; i < n; i++ {
			q.AddFKJoin(i-1, "fk", i, "pk")
		}
		model := NewDefault(q)
		// Build a worst-ish-case left-deep plan of block-nested loops
		// (the most expensive operator family).
		p := model.NewScan(0, plan.SeqScan, 0)
		for i := 1; i < n; i++ {
			p = model.NewJoin(plan.BlockNLJoin, 1, p, model.NewScan(i, plan.SeqScan, 0))
		}
		bound := 1e6 * math.Pow(m, float64(2*n))
		for _, o := range objective.All() {
			if p.Cost[o] > bound {
				t.Errorf("n=%d %v: cost %v exceeds C*m^(2n) = %v", n, o, p.Cost[o], bound)
			}
		}
	}
}

func tname(i int) string { return string(rune('a' + i)) }

// Observation 2 (structure): the join formulas' own terms depend only on
// table-set constants, so combining identical-cost children over
// different physical child operators yields identical join costs.
func TestObservation2CostsDependOnlyOnChildCostAndSets(t *testing.T) {
	q := testQuery(t)
	m := NewDefault(q)
	c := m.ScanCost(0, plan.SeqScan, 0)
	// Two children with identical table sets and cost vectors but
	// different operator labels.
	a := &plan.Node{Tables: query.Singleton(0), Scan: plan.SeqScan, Relation: 0, Cost: c}
	b := &plan.Node{Tables: query.Singleton(0), Scan: plan.IndexScan, Relation: 0, Cost: c}
	r := m.NewScan(1, plan.SeqScan, 0)
	for _, alg := range []plan.JoinAlg{plan.HashJoin, plan.SortMergeJoin, plan.BlockNLJoin} {
		va := m.JoinCost(alg, 2, a, r)
		vb := m.JoinCost(alg, 2, b, r)
		if va != vb {
			t.Errorf("%v: join cost depends on child identity beyond cost/tables:\n%v\nvs\n%v", alg, va, vb)
		}
	}
}
