package costmodel

import (
	"math/rand"
	"testing"

	"moqo/internal/objective"
	"moqo/internal/plan"
	"moqo/internal/query"
)

// These tests verify the Principle of Near-Optimality (paper Definition 7)
// for every join operator of the cost model: if each sub-plan's cost vector
// is degraded by at most factor alpha in every objective, the combined
// plan's cost vector is degraded by at most factor alpha too. PONO is the
// property Theorem 3 (RTA near-optimality) rests on, so the cost model must
// uphold it by construction.

// perturb returns a random cost vector that c* such that c* approximately
// dominates c with the given alpha: every entry scaled by a random factor
// in [lo, alpha] (tuple loss clamped into its [0,1] domain, as the PONO
// proof for the loss formula requires).
func perturb(r *rand.Rand, c objective.Vector, alpha float64) objective.Vector {
	var out objective.Vector
	for i := range c {
		f := alpha * (0.2 + 0.8*r.Float64()) // in [0.2*alpha, alpha]
		if f > alpha {
			f = alpha
		}
		out[i] = c[i] * f
	}
	if out[objective.TupleLoss] > 1 {
		out[objective.TupleLoss] = 1
	}
	return out
}

// fakeNode builds a plan node with the given table set and cost vector; the
// join cost formulas only look at Tables and Cost of their children.
func fakeNode(s query.TableSet, c objective.Vector) *plan.Node {
	return &plan.Node{Tables: s, Scan: plan.SeqScan, Relation: s.First(), Cost: c}
}

func TestPONOJoinOperators(t *testing.T) {
	q := testQuery(t)
	m := NewDefault(q)
	r := rand.New(rand.NewSource(42))
	objs := objective.AllSet()

	baseL := m.ScanCost(0, plan.SeqScan, 0)
	baseR := m.ScanCost(1, plan.SeqScan, 0)

	for trial := 0; trial < 2000; trial++ {
		alpha := 1 + 2*r.Float64()
		// Random baseline children costs (scaled scans keep magnitudes
		// realistic), with random loss in [0,1].
		cl := perturb(r, baseL, 1+r.Float64())
		cr := perturb(r, baseR, 1+r.Float64())
		cl[objective.TupleLoss] = r.Float64()
		cr[objective.TupleLoss] = r.Float64()
		clStar := perturb(r, cl, alpha)
		crStar := perturb(r, cr, alpha)

		l, lStar := fakeNode(query.Singleton(0), cl), fakeNode(query.Singleton(0), clStar)
		rn, rStar := fakeNode(query.Singleton(1), cr), fakeNode(query.Singleton(1), crStar)

		for _, alg := range []plan.JoinAlg{plan.HashJoin, plan.SortMergeJoin, plan.BlockNLJoin} {
			for _, dop := range []int{1, 2, 4} {
				c := m.JoinCost(alg, dop, l, rn)
				cStar := m.JoinCost(alg, dop, lStar, rStar)
				if !cStar.ApproxDominates(c, alpha*(1+1e-12), objs) {
					t.Fatalf("PONO violated for %v dop=%d alpha=%v:\n child degradation leads to %v\n vs baseline %v",
						alg, dop, alpha, cStar, c)
				}
			}
		}

		// Index-nested-loop: only the outer child varies.
		c := m.IndexNLCost(l, 1)
		cStar := m.IndexNLCost(lStar, 1)
		if !cStar.ApproxDominates(c, alpha*(1+1e-12), objs) {
			t.Fatalf("PONO violated for IdxNL alpha=%v:\n %v\n vs %v", alpha, cStar, c)
		}
	}
}

// TestPONOTupleLossFormula checks the paper's algebraic argument for the
// loss formula directly: F(a*,b*) <= alpha*F(a,b) whenever a* <= alpha*a,
// b* <= alpha*b and all values stay in [0,1].
func TestPONOTupleLossFormula(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	F := func(a, b float64) float64 { return 1 - (1-a)*(1-b) }
	for trial := 0; trial < 100000; trial++ {
		a, b := r.Float64(), r.Float64()
		alpha := 1 + 3*r.Float64()
		aStar := a * alpha * r.Float64()
		bStar := b * alpha * r.Float64()
		if aStar > 1 {
			aStar = 1
		}
		if bStar > 1 {
			bStar = 1
		}
		if F(aStar, bStar) > alpha*F(a, b)+1e-12 {
			t.Fatalf("loss PONO violated: a=%v b=%v alpha=%v a*=%v b*=%v F*=%v alphaF=%v",
				a, b, alpha, aStar, bStar, F(aStar, bStar), alpha*F(a, b))
		}
	}
}

// TestPOOJoinOperators checks the plain principle of optimality (paper
// Definition 6): improving sub-plans never worsens the combined plan. This
// is the property the EXA's exactness rests on (alpha = 1 special case).
func TestPOOJoinOperators(t *testing.T) {
	q := testQuery(t)
	m := NewDefault(q)
	r := rand.New(rand.NewSource(11))
	objs := objective.AllSet()
	baseL := m.ScanCost(0, plan.SeqScan, 0)
	baseR := m.ScanCost(1, plan.SeqScan, 0)

	for trial := 0; trial < 2000; trial++ {
		cl := perturb(r, baseL, 1+r.Float64())
		cr := perturb(r, baseR, 1+r.Float64())
		cl[objective.TupleLoss] = r.Float64()
		cr[objective.TupleLoss] = r.Float64()
		// Improved children: scaled down.
		clBetter := cl.Scale(r.Float64())
		crBetter := cr.Scale(r.Float64())

		l, lB := fakeNode(query.Singleton(0), cl), fakeNode(query.Singleton(0), clBetter)
		rn, rB := fakeNode(query.Singleton(1), cr), fakeNode(query.Singleton(1), crBetter)
		for _, alg := range []plan.JoinAlg{plan.HashJoin, plan.SortMergeJoin, plan.BlockNLJoin} {
			c := m.JoinCost(alg, 2, l, rn)
			cBetter := m.JoinCost(alg, 2, lB, rB)
			if !cBetter.Dominates(c, objs) {
				t.Fatalf("POO violated for %v:\n better children give %v\n vs %v", alg, cBetter, c)
			}
		}
	}
}
