package fault

import (
	"sync"
	"time"
)

// State is a breaker state.
type State int32

const (
	// Closed: the protected resource is believed healthy; all
	// operations pass through.
	Closed State = iota
	// Open: the resource is believed down; operations are skipped
	// until the backoff window elapses.
	Open
	// HalfOpen: the backoff window elapsed; exactly one probe
	// operation is allowed through to test the resource.
	HalfOpen
)

// String renders the state for metrics and logs.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker. The zero value gets the documented
// defaults.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that trips the
	// breaker (default 5).
	Threshold int
	// Cooldown is the first open window; each successive trip without
	// an intervening success doubles it up to MaxCooldown (default
	// 250ms, capped at 30s).
	Cooldown    time.Duration
	MaxCooldown time.Duration
	// Jitter is the fraction of the cooldown randomized (default 0.2):
	// the effective window is cooldown * (1 ± Jitter/2), deterministic
	// from Seed so tests replay.
	Jitter float64
	// Seed drives the jitter sequence.
	Seed uint64
	// Now is the clock (default time.Now); injectable for tests.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 250 * time.Millisecond
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 30 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a circuit breaker: consecutive failures trip it Open,
// operations are skipped for an exponentially growing (jittered)
// window, then a single HalfOpen probe decides between recovery
// (Closed) and another window (Open). Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	failures int           // consecutive failures while Closed
	cooldown time.Duration // next open window
	retryAt  time.Time     // when Open may transition to HalfOpen
	probing  bool          // a HalfOpen probe is in flight
	trips    uint64
	rolls    uint64 // jitter sequence position
}

// NewBreaker builds a breaker from cfg.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, cooldown: cfg.Cooldown}
}

// Allow reports whether the caller may attempt the protected
// operation. While Open it returns false until the backoff window
// elapses; the first Allow after that becomes the HalfOpen probe
// (concurrent callers are refused until the probe resolves via
// Success or Failure).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Now().Before(b.retryAt) {
			return false
		}
		b.state = HalfOpen
		b.probing = true
		return true
	default: // HalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful operation: a HalfOpen probe closes the
// breaker and resets the backoff; in Closed it clears the failure
// streak.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	b.state = Closed
	b.cooldown = b.cfg.Cooldown
}

// Cancel releases an allowed operation that turned out to perform no
// meaningful I/O (e.g. an in-memory miss that never touched the
// device): it proves nothing about the resource, so a HalfOpen probe
// is returned for the next caller and no state changes. In Closed and
// Open it is a no-op.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		b.probing = false
	}
}

// Failure records a failed operation: in Closed it may trip the
// breaker; a failed HalfOpen probe reopens it with a doubled window.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.trip()
		}
	case HalfOpen:
		b.probing = false
		b.cooldown *= 2
		if b.cooldown > b.cfg.MaxCooldown {
			b.cooldown = b.cfg.MaxCooldown
		}
		b.trip()
	case Open:
		// A straggler from before the trip; nothing to update.
	}
}

// trip moves to Open and schedules the next probe window with
// deterministic jitter. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.failures = 0
	b.trips++
	b.rolls++
	// window = cooldown * (1 - Jitter/2 + Jitter*u), u in [0,1).
	u := float64(mix(b.cfg.Seed^b.rolls)>>11) / (1 << 53)
	scale := 1 - b.cfg.Jitter/2 + b.cfg.Jitter*u
	b.retryAt = b.cfg.Now().Add(time.Duration(float64(b.cooldown) * scale))
}

// State returns the current state (Open is reported even if the
// window has elapsed; the transition happens on the next Allow).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerStats is a point-in-time snapshot for metrics.
type BreakerStats struct {
	State    string `json:"state"`
	Trips    uint64 `json:"trips"`
	Failures int    `json:"consecutive_failures"`
	// RetryInMs is how long until the next HalfOpen probe window
	// opens (0 unless Open).
	RetryInMs int64 `json:"retry_in_ms"`
}

// Stats snapshots the breaker for metrics export.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStats{State: b.state.String(), Trips: b.trips, Failures: b.failures}
	if b.state == Open {
		if d := b.retryAt.Sub(b.cfg.Now()); d > 0 {
			st.RetryInMs = d.Milliseconds()
		}
	}
	return st
}
