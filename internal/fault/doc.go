// Package fault is a deterministic, seed-driven fault-injection
// framework plus the circuit breaker that consumes its failures.
//
// The package has three parts:
//
//   - FS/File: a small filesystem seam mirroring exactly the os calls
//     the segment-log store performs. Production code passes OS()
//     (a zero-cost passthrough to the os package); tests and chaos
//     harnesses pass an *Injector.
//
//   - Injector: wraps an inner FS and injects write/fsync/rename/open
//     errors, ENOSPC, short writes, and latency. Every decision is a
//     pure function of (seed, operation class, per-class operation
//     index), so a schedule replays identically regardless of
//     goroutine interleaving — the property the chaos differential
//     tests depend on. FailAt pins a fault to exactly the Nth
//     operation; SetDead flips the whole disk into a fail-everything
//     mode (optionally after a per-op delay, modelling a dying disk
//     that times out rather than errors fast).
//
//   - Breaker: a Closed/Open/HalfOpen circuit breaker with a
//     consecutive-failure trip threshold, exponential backoff with
//     deterministic jitter between probe windows, and an injectable
//     clock. The serving layer wraps every store operation in
//     Allow/Success/Failure so repeated disk errors degrade the
//     service to memory-only instead of paying a dead disk's latency
//     on every request.
package fault
