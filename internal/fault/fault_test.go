package fault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// openTemp opens a scratch file through fs for the write/read/sync
// tests.
func openTemp(t *testing.T, fsys FS) File {
	t.Helper()
	f, err := fsys.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestInjectorDeterministic(t *testing.T) {
	// The same seed must produce the same fault schedule across two
	// independent runs, op by op.
	run := func() []bool {
		in := NewInjector(OS(), Config{Seed: 42, PWriteErr: 0.3})
		f := openTemp(t, in)
		outcomes := make([]bool, 200)
		for i := range outcomes {
			_, err := f.WriteAt([]byte("x"), 0)
			outcomes[i] = err != nil
		}
		return outcomes
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at op %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("degenerate schedule: %d/%d faults", fired, len(a))
	}
}

func TestFailWriteAtPinsENOSPC(t *testing.T) {
	in := NewInjector(OS(), Config{Seed: 1, FailWriteAt: 3})
	f := openTemp(t, in)
	for i := 1; i <= 5; i++ {
		_, err := f.WriteAt([]byte("abc"), int64(3*(i-1)))
		if i == 3 {
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("op 3: want ENOSPC, got %v", err)
			}
			if !IsInjected(err) {
				t.Fatalf("op 3: error not marked injected: %v", err)
			}
		} else if err != nil {
			t.Fatalf("op %d: unexpected error %v", i, err)
		}
	}
}

func TestShortWritePersistsPrefix(t *testing.T) {
	in := NewInjector(OS(), Config{Seed: 1, ShortWriteAt: 1})
	f := openTemp(t, in)
	n, err := f.WriteAt([]byte("abcdefgh"), 0)
	if err == nil {
		t.Fatal("short write returned nil error")
	}
	if n != 4 {
		t.Fatalf("short write persisted %d bytes, want 4", n)
	}
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if string(buf) != "abcd" {
		t.Fatalf("prefix on disk = %q, want \"abcd\"", buf)
	}
}

func TestDeadDiskFailsEverything(t *testing.T) {
	in := NewInjector(OS(), Config{Seed: 1})
	f := openTemp(t, in)
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("healthy write failed: %v", err)
	}
	in.SetDead(true)
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, syscall.EIO) {
		t.Fatalf("dead write: want EIO, got %v", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("dead sync: want EIO, got %v", err)
	}
	if _, err := in.OpenFile("/nonexistent", os.O_RDONLY, 0); !IsInjected(err) {
		t.Fatalf("dead open: want injected error, got %v", err)
	}
	in.SetDead(false)
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("revived write failed: %v", err)
	}
	c := in.Counters()
	if c.Injected["write"] == 0 || c.Injected["sync"] == 0 {
		t.Fatalf("counters missed injections: %+v", c)
	}
}

func TestBreakerTripAndRecover(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second, Now: clock, Seed: 7})

	if !b.Allow() || b.State() != Closed {
		t.Fatal("new breaker should be closed")
	}
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("tripped below threshold")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatal("did not trip at threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker allowed an op inside the window")
	}

	// Past the window (jitter keeps it within [0.9s, 1.1s]): one probe
	// allowed, concurrent callers refused.
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("no probe after window elapsed")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second probe allowed while first in flight")
	}

	// Failed probe: reopen with doubled window.
	b.Failure()
	if b.State() != Open {
		t.Fatal("failed probe did not reopen")
	}
	now = now.Add(1500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("doubled window did not hold") // 2s ± jitter > 1.5s
	}
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("no probe after doubled window")
	}

	// Successful probe: closed, backoff reset.
	b.Success()
	if b.State() != Closed || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
	st := b.Stats()
	if st.Trips != 2 || st.State != "closed" {
		t.Fatalf("stats = %+v, want 2 trips, closed", st)
	}
}

func TestBreakerJitterDeterministic(t *testing.T) {
	windows := func(seed uint64) []time.Duration {
		now := time.Unix(0, 0)
		b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second, Now: func() time.Time { return now }, Seed: seed})
		var out []time.Duration
		for i := 0; i < 4; i++ {
			b.Failure()
			out = append(out, time.Duration(b.Stats().RetryInMs)*time.Millisecond)
			now = now.Add(time.Hour)
			if !b.Allow() {
				t.Fatal("probe refused after an hour")
			}
		}
		return out
	}
	a, b := windows(11), windows(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter diverged at trip %d: %v vs %v", i, a[i], b[i])
		}
	}
}
