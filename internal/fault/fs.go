package fault

import (
	"io/fs"
	"os"
)

// File is the subset of *os.File the segment log uses. Implementations
// must keep the *os.File contract: WriteAt and ReadAt return a non-nil
// error whenever n < len(p).
type File interface {
	WriteAt(p []byte, off int64) (int, error)
	ReadAt(p []byte, off int64) (int, error)
	Truncate(size int64) error
	Sync() error
	Close() error
}

// FS is the filesystem seam the store writes through. It mirrors the
// exact set of os-package calls the segment log performs — nothing
// more, so a fake stays small.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	MkdirAll(path string, perm fs.FileMode) error
	Remove(name string) error
	Rename(oldpath, newpath string) error
	// SyncDir fsyncs a directory, making creates and renames durable.
	SyncDir(name string) error
}

// osFS is the passthrough FS backed by the real os package.
type osFS struct{}

// OS returns the production FS: a zero-state passthrough to the os
// package.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		// Return a typed nil-free interface: a non-nil File wrapping a
		// nil *os.File would defeat `if f != nil` checks upstream.
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
