package fault

import (
	"errors"
	"fmt"
	"io/fs"
	"sync/atomic"
	"syscall"
	"time"
)

// Operation classes. Each class keeps its own operation counter, so a
// fault pinned to "the 3rd write" is independent of how many reads or
// syncs interleave with it.
const (
	opWrite = iota
	opRead
	opSync
	opOpen
	opRename
	numOps
)

var opNames = [numOps]string{"write", "read", "sync", "open", "rename"}

// InjectedError marks an error as injected (never a real disk fault).
// It unwraps to the modelled errno — syscall.ENOSPC or syscall.EIO —
// so errors.Is sees the same thing it would on real hardware.
type InjectedError struct {
	Op  string // operation class ("write", "sync", ...)
	N   uint64 // 1-based index of the operation within its class
	Err error  // the modelled errno
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected %s error at op %d: %v", e.Op, e.N, e.Err)
}

func (e *InjectedError) Unwrap() error { return e.Err }

// IsInjected reports whether err (or anything it wraps) was produced
// by an Injector. Chaos tests use it to tell injected faults apart
// from real bugs.
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}

// Config describes a deterministic fault schedule. All probabilities
// are in [0,1] and are evaluated independently per operation from
// (Seed, class, per-class op index) — never from a shared RNG stream —
// so the schedule is identical under any goroutine interleaving.
type Config struct {
	// Seed drives every injection decision.
	Seed uint64

	// Per-class fault probabilities.
	PWriteErr  float64
	PReadErr   float64
	PSyncErr   float64
	POpenErr   float64
	PRenameErr float64

	// Of the injected write faults, the fraction modelled as ENOSPC
	// (the rest are EIO).
	PENOSPC float64
	// Of the injected write faults, the fraction that persist a prefix
	// of the buffer before failing (a short write).
	PShortWrite float64

	// With probability PDelay an operation sleeps Delay before running.
	PDelay float64
	Delay  time.Duration

	// FailWriteAt fails exactly the Nth WriteAt (1-based) with ENOSPC;
	// ShortWriteAt persists half the buffer of the Nth WriteAt and then
	// fails with EIO. 0 disables. These override the probabilistic
	// schedule for that operation.
	FailWriteAt  uint64
	ShortWriteAt uint64

	// FailTruncate fails every Truncate with EIO, so a caller's
	// best-effort cleanup after a failed write leaves the partial
	// bytes on disk — the state a crash would expose.
	FailTruncate bool

	// DeadDelay is slept before every operation while the injector is
	// dead (SetDead), modelling a dying disk that hangs before erroring
	// rather than failing fast.
	DeadDelay time.Duration
}

// Injector wraps an inner FS and injects faults per its Config.
// Safe for concurrent use.
type Injector struct {
	inner FS
	cfg   Config

	dead     atomic.Bool
	ops      [numOps]atomic.Uint64 // operations seen per class
	injected [numOps]atomic.Uint64 // faults injected per class
}

// NewInjector wraps inner (nil means the real OS) with the fault
// schedule in cfg.
func NewInjector(inner FS, cfg Config) *Injector {
	if inner == nil {
		inner = OS()
	}
	return &Injector{inner: inner, cfg: cfg}
}

// SetDead flips the whole disk into (or out of) a fail-everything
// mode: every subsequent operation sleeps cfg.DeadDelay and returns
// EIO. Models a fully failed device.
func (in *Injector) SetDead(dead bool) { in.dead.Store(dead) }

// Dead reports whether the injector is in fail-everything mode.
func (in *Injector) Dead() bool { return in.dead.Load() }

// Counters is a snapshot of per-class operation and injection counts.
type Counters struct {
	Ops      map[string]uint64 `json:"ops"`
	Injected map[string]uint64 `json:"injected"`
}

// Counters snapshots how many operations ran and how many faults were
// injected, per class.
func (in *Injector) Counters() Counters {
	c := Counters{Ops: make(map[string]uint64, numOps), Injected: make(map[string]uint64, numOps)}
	for i := 0; i < numOps; i++ {
		c.Ops[opNames[i]] = in.ops[i].Load()
		c.Injected[opNames[i]] = in.injected[i].Load()
	}
	return c
}

// mix is splitmix64's finalizer: a high-quality 64-bit mixing function.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// roll answers the deterministic question "does fault `salt` fire on
// the nth operation of class `class`?" as a pure function of the seed.
func (in *Injector) roll(class, salt, n uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	r := mix(in.cfg.Seed ^ mix(class<<32|salt<<24|n))
	return float64(r>>11)/(1<<53) < p
}

// begin records one operation of class c, applies dead-disk and
// latency handling, and returns the op's 1-based index plus a non-nil
// error if the op must fail before reaching the inner FS.
func (in *Injector) begin(c int) (uint64, error) {
	n := in.ops[c].Add(1)
	if in.dead.Load() {
		if in.cfg.DeadDelay > 0 {
			time.Sleep(in.cfg.DeadDelay)
		}
		in.injected[c].Add(1)
		return n, &InjectedError{Op: opNames[c], N: n, Err: syscall.EIO}
	}
	if in.roll(uint64(c), 7, n, in.cfg.PDelay) {
		time.Sleep(in.cfg.Delay)
	}
	return n, nil
}

// fail constructs the injected error for class c, op n.
func (in *Injector) fail(c int, n uint64, errno error) error {
	in.injected[c].Add(1)
	return &InjectedError{Op: opNames[c], N: n, Err: errno}
}

// classP returns the configured probability for class c.
func (in *Injector) classP(c int) float64 {
	switch c {
	case opWrite:
		return in.cfg.PWriteErr
	case opRead:
		return in.cfg.PReadErr
	case opSync:
		return in.cfg.PSyncErr
	case opOpen:
		return in.cfg.POpenErr
	case opRename:
		return in.cfg.PRenameErr
	}
	return 0
}

// simple runs the common pre-check for a non-write class: dead disk,
// latency, then the class's probabilistic fault.
func (in *Injector) simple(c int) error {
	n, err := in.begin(c)
	if err != nil {
		return err
	}
	if in.roll(uint64(c), 1, n, in.classP(c)) {
		return in.fail(c, n, syscall.EIO)
	}
	return nil
}

// --- FS implementation ---

func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := in.simple(opOpen); err != nil {
		return nil, err
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{inner: f, in: in}, nil
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	if err := in.simple(opRead); err != nil {
		return nil, err
	}
	return in.inner.ReadFile(name)
}

func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	// Directory listing only happens at recovery; dead-disk still
	// applies, the probabilistic schedule does not.
	if in.dead.Load() {
		return nil, &InjectedError{Op: "read", N: 0, Err: syscall.EIO}
	}
	return in.inner.ReadDir(name)
}

func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if in.dead.Load() {
		return &InjectedError{Op: "write", N: 0, Err: syscall.EIO}
	}
	return in.inner.MkdirAll(path, perm)
}

func (in *Injector) Remove(name string) error {
	if in.dead.Load() {
		return &InjectedError{Op: "write", N: 0, Err: syscall.EIO}
	}
	return in.inner.Remove(name)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.simple(opRename); err != nil {
		return err
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) SyncDir(name string) error {
	if err := in.simple(opSync); err != nil {
		return err
	}
	return in.inner.SyncDir(name)
}

// injFile wraps one open file with the injector's write/read/sync
// schedule.
type injFile struct {
	inner File
	in    *Injector
}

func (f *injFile) WriteAt(p []byte, off int64) (int, error) {
	in := f.in
	n, err := in.begin(opWrite)
	if err != nil {
		return 0, err
	}
	// Pinned faults take precedence over the probabilistic schedule.
	if in.cfg.FailWriteAt != 0 && n == in.cfg.FailWriteAt {
		return 0, in.fail(opWrite, n, syscall.ENOSPC)
	}
	if in.cfg.ShortWriteAt != 0 && n == in.cfg.ShortWriteAt {
		return f.short(p, off, n)
	}
	if in.roll(opWrite, 1, n, in.cfg.PWriteErr) {
		if in.roll(opWrite, 2, n, in.cfg.PShortWrite) {
			return f.short(p, off, n)
		}
		errno := error(syscall.EIO)
		if in.roll(opWrite, 3, n, in.cfg.PENOSPC) {
			errno = syscall.ENOSPC
		}
		return 0, in.fail(opWrite, n, errno)
	}
	return f.inner.WriteAt(p, off)
}

// short persists a prefix of p and then fails, modelling a write torn
// by a full or failing device.
func (f *injFile) short(p []byte, off int64, n uint64) (int, error) {
	k := len(p) / 2
	written, err := f.inner.WriteAt(p[:k], off)
	if err != nil {
		return written, err
	}
	return written, f.in.fail(opWrite, n, syscall.ENOSPC)
}

func (f *injFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.in.begin(opRead)
	if err != nil {
		return 0, err
	}
	if f.in.roll(opRead, 1, n, f.in.cfg.PReadErr) {
		return 0, f.in.fail(opRead, n, syscall.EIO)
	}
	return f.inner.ReadAt(p, off)
}

func (f *injFile) Truncate(size int64) error {
	if f.in.dead.Load() {
		if f.in.cfg.DeadDelay > 0 {
			time.Sleep(f.in.cfg.DeadDelay)
		}
		return &InjectedError{Op: "write", N: 0, Err: syscall.EIO}
	}
	if f.in.cfg.FailTruncate {
		return &InjectedError{Op: "write", N: 0, Err: syscall.EIO}
	}
	return f.inner.Truncate(size)
}

func (f *injFile) Sync() error {
	n, err := f.in.begin(opSync)
	if err != nil {
		return err
	}
	if f.in.roll(opSync, 1, n, f.in.cfg.PSyncErr) {
		return f.in.fail(opSync, n, syscall.EIO)
	}
	return f.inner.Sync()
}

func (f *injFile) Close() error { return f.inner.Close() }
