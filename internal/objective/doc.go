// Package objective defines the cost objectives of the many-objective
// query optimizer, multi-dimensional cost vectors, user preference vectors
// (weights and bounds), and the dominance relations between cost vectors
// that drive Pareto pruning.
//
// The nine objectives are the ones implemented in the paper's extended
// Postgres cost model (Trummer & Koch, SIGMOD 2014, Section 4): total
// execution time, startup time, IO load, CPU load, number of used cores,
// hard-disk footprint, buffer footprint, energy consumption, and tuple
// loss ratio.
//
// The comparison operations mirror the paper's formal machinery
// (Sections 3 and 6): Dominates is the c1 ⪯ c2 relation, ApproxDominates
// the α-relaxed variant that the RTA's Prune uses, Weights.Cost the
// weighted cost function C_W of weighted MOQO, and Bounds.Respects /
// RespectsRelaxed the (relaxed) bound checks of bounded-weighted MOQO and
// the IRA stopping condition. The Precision vector type generalizes the
// scalar α to per-objective precisions for the RTAVector extension.
package objective
