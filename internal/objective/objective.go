package objective

import (
	"fmt"
	"math"
	"strings"
)

// ID identifies one cost objective.
type ID int

// The nine cost objectives of the extended cost model.
const (
	TotalTime ID = iota // time until all result tuples are produced (ms)
	StartupTime
	IOLoad          // page accesses
	CPULoad         // abstract CPU work units
	Cores           // number of cores used by the plan
	DiskFootprint   // bytes of temporary disk space
	BufferFootprint // bytes of buffer memory
	Energy          // Joule
	TupleLoss       // expected fraction of lost result tuples, in [0,1]
	NumObjectives   // number of objectives; not itself an objective
)

var names = [NumObjectives]string{
	"total_time",
	"startup_time",
	"io_load",
	"cpu_load",
	"cores",
	"disk_footprint",
	"buffer_footprint",
	"energy",
	"tuple_loss",
}

var units = [NumObjectives]string{
	"ms", "ms", "pages", "units", "cores", "bytes", "bytes", "J", "fraction",
}

// String returns the snake_case name of the objective.
func (o ID) String() string {
	if o < 0 || o >= NumObjectives {
		return fmt.Sprintf("objective(%d)", int(o))
	}
	return names[o]
}

// Unit returns the measurement unit of the objective.
func (o ID) Unit() string {
	if o < 0 || o >= NumObjectives {
		return "?"
	}
	return units[o]
}

// Bounded reports whether the objective has an a-priori bounded value domain
// (currently only tuple loss, with domain [0,1]). Bounded-domain objectives
// get bounds drawn uniformly from their domain in the paper's test-case
// generator, while unbounded ones get bounds relative to the per-query
// minimum.
func (o ID) Bounded() bool { return o == TupleLoss }

// DomainMax returns the maximal value of a bounded-domain objective.
// It panics for unbounded objectives.
func (o ID) DomainMax() float64 {
	if !o.Bounded() {
		panic("objective: DomainMax on unbounded objective " + o.String())
	}
	return 1
}

// ParseID converts an objective name (as produced by String) back to its ID.
func ParseID(s string) (ID, error) {
	for i, n := range names {
		if n == s {
			return ID(i), nil
		}
	}
	return 0, fmt.Errorf("objective: unknown objective %q", s)
}

// All returns the identifiers of all nine objectives in declaration order.
func All() []ID {
	ids := make([]ID, NumObjectives)
	for i := range ids {
		ids[i] = ID(i)
	}
	return ids
}

// Set is a bitmask selecting a subset of the nine objectives. The optimizer
// compares plans only on the objectives of the active set.
type Set uint16

// NewSet builds a Set containing the given objectives.
func NewSet(ids ...ID) Set {
	var s Set
	for _, id := range ids {
		s |= 1 << uint(id)
	}
	return s
}

// AllSet is the set of all nine objectives.
func AllSet() Set { return Set(1<<uint(NumObjectives)) - 1 }

// Contains reports whether objective o is in the set.
func (s Set) Contains(o ID) bool { return s&(1<<uint(o)) != 0 }

// Add returns the set with objective o added.
func (s Set) Add(o ID) Set { return s | 1<<uint(o) }

// Remove returns the set with objective o removed.
func (s Set) Remove(o ID) Set { return s &^ (1 << uint(o)) }

// Len returns the number of objectives in the set.
func (s Set) Len() int {
	n := 0
	for v := s; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// IDs returns the objectives of the set in declaration order.
func (s Set) IDs() []ID {
	ids := make([]ID, 0, s.Len())
	for o := ID(0); o < NumObjectives; o++ {
		if s.Contains(o) {
			ids = append(ids, o)
		}
	}
	return ids
}

// String renders the set as a comma-separated list of objective names.
func (s Set) String() string {
	parts := make([]string, 0, s.Len())
	for _, o := range s.IDs() {
		parts = append(parts, o.String())
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Vector is a cost vector with one non-negative entry per objective.
// Entries for objectives outside the active set are ignored by the
// comparison operations, which all take the active Set explicitly.
type Vector [NumObjectives]float64

// Get returns the cost for objective o.
func (v Vector) Get(o ID) float64 { return v[o] }

// With returns a copy of the vector with objective o set to x.
func (v Vector) With(o ID, x float64) Vector {
	v[o] = x
	return v
}

// Add returns the component-wise sum of two vectors.
func (v Vector) Add(w Vector) Vector {
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// Max returns the component-wise maximum of two vectors.
func (v Vector) Max(w Vector) Vector {
	for i := range v {
		v[i] = math.Max(v[i], w[i])
	}
	return v
}

// Scale returns the vector multiplied by a non-negative constant.
func (v Vector) Scale(c float64) Vector {
	for i := range v {
		v[i] *= c
	}
	return v
}

// Valid reports whether every entry is finite and non-negative, as the
// formal model requires ("cost values are real-valued and non-negative").
func (v Vector) Valid() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return false
		}
	}
	return true
}

// Dominates reports whether v has lower or equal cost than w in every
// objective of the active set (the relation written c1 <= c2 in the paper).
func (v Vector) Dominates(w Vector, objs Set) bool {
	for _, o := range objs.IDs() {
		if v[o] > w[o] {
			return false
		}
	}
	return true
}

// StrictlyDominates reports whether v dominates w and the two vectors are
// not equivalent on the active set.
func (v Vector) StrictlyDominates(w Vector, objs Set) bool {
	return v.Dominates(w, objs) && !v.EqualOn(w, objs)
}

// ApproxDominates reports whether v approximately dominates w with
// precision alpha >= 1: for every active objective, v's cost exceeds w's by
// at most factor alpha.
func (v Vector) ApproxDominates(w Vector, alpha float64, objs Set) bool {
	for _, o := range objs.IDs() {
		if v[o] > w[o]*alpha {
			return false
		}
	}
	return true
}

// EqualOn reports whether v and w agree on every active objective.
func (v Vector) EqualOn(w Vector, objs Set) bool {
	for _, o := range objs.IDs() {
		if v[o] != w[o] {
			return false
		}
	}
	return true
}

// String renders the vector (all nine entries) compactly.
func (v Vector) String() string {
	parts := make([]string, NumObjectives)
	for i, x := range v {
		parts[i] = fmt.Sprintf("%s=%.4g", ID(i), x)
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// FormatOn renders only the active objectives of the vector.
func (v Vector) FormatOn(objs Set) string {
	parts := make([]string, 0, objs.Len())
	for _, o := range objs.IDs() {
		parts = append(parts, fmt.Sprintf("%s=%.4g", o, v[o]))
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// Precision is a per-objective approximation precision vector (every
// entry >= 1; 1 means exact). It generalizes the scalar precision of the
// paper's RTA: pruning may be coarse on tolerant objectives and exact on
// strict ones, shrinking archives without weakening the guarantee where
// it matters.
type Precision [NumObjectives]float64

// UniformPrecision returns precision alpha on the objectives of the set
// and exact precision (1) elsewhere.
func UniformPrecision(alpha float64, objs Set) Precision {
	var p Precision
	for i := range p {
		p[i] = 1
	}
	for _, o := range objs.IDs() {
		p[o] = alpha
	}
	return p
}

// With returns a copy with the precision for objective o set to alpha.
func (p Precision) With(o ID, alpha float64) Precision {
	p[o] = alpha
	return p
}

// Valid reports whether every precision is at least 1 (rejects NaN).
func (p Precision) Valid() bool {
	for _, x := range p {
		if !(x >= 1) {
			return false
		}
	}
	return true
}

// Max returns the largest precision over the given objectives.
func (p Precision) Max(objs Set) float64 {
	m := 1.0
	for _, o := range objs.IDs() {
		m = math.Max(m, p[o])
	}
	return m
}

// Root returns the component-wise n-th root — the internal per-level
// pruning precision derived from a plan-level precision, mirroring
// αi = αU^(1/|Q|) of the paper's Algorithm 2.
func (p Precision) Root(n int) Precision {
	var out Precision
	for i, x := range p {
		out[i] = math.Pow(x, 1/float64(n))
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}

// ApproxDominatesBy reports whether v approximately dominates w with the
// per-objective precisions of p: for every active objective o,
// v_o <= w_o * p_o.
func (v Vector) ApproxDominatesBy(w Vector, p Precision, objs Set) bool {
	for _, o := range objs.IDs() {
		if v[o] > w[o]*p[o] {
			return false
		}
	}
	return true
}

// Weights assigns a non-negative relative importance to every objective.
type Weights [NumObjectives]float64

// UniformWeights returns weight 1 on every objective of the set and 0
// elsewhere.
func UniformWeights(objs Set) Weights {
	var w Weights
	for _, o := range objs.IDs() {
		w[o] = 1
	}
	return w
}

// SingleWeight returns weight 1 on objective o alone.
func SingleWeight(o ID) Weights {
	var w Weights
	w[o] = 1
	return w
}

// With returns a copy of the weights with objective o set to x.
func (w Weights) With(o ID, x float64) Weights {
	w[o] = x
	return w
}

// Cost returns the weighted cost C_W(c) = sum_o c_o * W_o of a vector.
func (w Weights) Cost(v Vector) float64 {
	var c float64
	for i := range w {
		c += w[i] * v[i]
	}
	return c
}

// Valid reports whether every weight is finite and non-negative.
func (w Weights) Valid() bool {
	for _, x := range w {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return false
		}
	}
	return true
}

// Active returns the set of objectives with non-zero weight.
func (w Weights) Active() Set {
	var s Set
	for i, x := range w {
		if x > 0 {
			s = s.Add(ID(i))
		}
	}
	return s
}

// Bounds holds a non-negative upper bound per objective; +Inf means
// unbounded (the paper's B_o = infinity convention).
type Bounds [NumObjectives]float64

// NoBounds returns a Bounds vector with every objective unbounded.
func NoBounds() Bounds {
	var b Bounds
	for i := range b {
		b[i] = math.Inf(1)
	}
	return b
}

// With returns a copy with the bound for objective o set to x.
func (b Bounds) With(o ID, x float64) Bounds {
	b[o] = x
	return b
}

// Unbounded reports whether no finite bound is set on any active objective.
func (b Bounds) Unbounded(objs Set) bool {
	for _, o := range objs.IDs() {
		if !math.IsInf(b[o], 1) {
			return false
		}
	}
	return true
}

// BoundedObjectives returns the active objectives that carry a finite bound.
func (b Bounds) BoundedObjectives(objs Set) []ID {
	var ids []ID
	for _, o := range objs.IDs() {
		if !math.IsInf(b[o], 1) {
			ids = append(ids, o)
		}
	}
	return ids
}

// Respects reports whether cost vector v respects the bounds on every
// active objective (v_o <= B_o for all o).
func (b Bounds) Respects(v Vector, objs Set) bool {
	for _, o := range objs.IDs() {
		if v[o] > b[o] {
			return false
		}
	}
	return true
}

// RespectsRelaxed reports whether v respects the bounds relaxed by factor
// alpha (v <= alpha*B), the relation used in the IRA stopping condition.
func (b Bounds) RespectsRelaxed(v Vector, alpha float64, objs Set) bool {
	for _, o := range objs.IDs() {
		if v[o] > b[o]*alpha {
			return false
		}
	}
	return true
}

// Valid reports whether every bound is non-negative (possibly +Inf).
func (b Bounds) Valid() bool {
	for _, x := range b {
		if math.IsNaN(x) || x < 0 {
			return false
		}
	}
	return true
}
