package objective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIDString(t *testing.T) {
	cases := map[ID]string{
		TotalTime:       "total_time",
		StartupTime:     "startup_time",
		IOLoad:          "io_load",
		CPULoad:         "cpu_load",
		Cores:           "cores",
		DiskFootprint:   "disk_footprint",
		BufferFootprint: "buffer_footprint",
		Energy:          "energy",
		TupleLoss:       "tuple_loss",
	}
	for id, want := range cases {
		if got := id.String(); got != want {
			t.Errorf("ID(%d).String() = %q, want %q", id, got, want)
		}
	}
	if got := ID(42).String(); got != "objective(42)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestParseIDRoundTrip(t *testing.T) {
	for _, o := range All() {
		got, err := ParseID(o.String())
		if err != nil {
			t.Fatalf("ParseID(%q): %v", o.String(), err)
		}
		if got != o {
			t.Errorf("ParseID(%q) = %v, want %v", o.String(), got, o)
		}
	}
	if _, err := ParseID("bogus"); err == nil {
		t.Error("ParseID(bogus) succeeded, want error")
	}
}

func TestBoundedDomain(t *testing.T) {
	if !TupleLoss.Bounded() {
		t.Error("TupleLoss must have a bounded domain")
	}
	if got := TupleLoss.DomainMax(); got != 1 {
		t.Errorf("TupleLoss.DomainMax() = %v, want 1", got)
	}
	for _, o := range All() {
		if o == TupleLoss {
			continue
		}
		if o.Bounded() {
			t.Errorf("%v reported bounded, want unbounded", o)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("DomainMax on unbounded objective did not panic")
		}
	}()
	_ = TotalTime.DomainMax()
}

func TestUnitNonEmpty(t *testing.T) {
	for _, o := range All() {
		if o.Unit() == "" || o.Unit() == "?" {
			t.Errorf("%v has no unit", o)
		}
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(TotalTime, Energy, TupleLoss)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, o := range []ID{TotalTime, Energy, TupleLoss} {
		if !s.Contains(o) {
			t.Errorf("set should contain %v", o)
		}
	}
	if s.Contains(IOLoad) {
		t.Error("set should not contain io_load")
	}
	s2 := s.Add(IOLoad)
	if !s2.Contains(IOLoad) || s2.Len() != 4 {
		t.Error("Add failed")
	}
	s3 := s2.Remove(Energy)
	if s3.Contains(Energy) || s3.Len() != 3 {
		t.Error("Remove failed")
	}
	if AllSet().Len() != int(NumObjectives) {
		t.Errorf("AllSet().Len() = %d, want %d", AllSet().Len(), NumObjectives)
	}
	ids := NewSet(Energy, TotalTime).IDs()
	if len(ids) != 2 || ids[0] != TotalTime || ids[1] != Energy {
		t.Errorf("IDs() = %v, want declaration order [total_time energy]", ids)
	}
}

func TestSetString(t *testing.T) {
	s := NewSet(TotalTime, TupleLoss)
	if got := s.String(); got != "{total_time,tuple_loss}" {
		t.Errorf("String() = %q", got)
	}
}

func TestVectorOps(t *testing.T) {
	var v Vector
	v = v.With(TotalTime, 2).With(Energy, 3)
	w := Vector{}.With(TotalTime, 5).With(IOLoad, 1)
	sum := v.Add(w)
	if sum.Get(TotalTime) != 7 || sum.Get(Energy) != 3 || sum.Get(IOLoad) != 1 {
		t.Errorf("Add wrong: %v", sum)
	}
	mx := v.Max(w)
	if mx.Get(TotalTime) != 5 || mx.Get(Energy) != 3 || mx.Get(IOLoad) != 1 {
		t.Errorf("Max wrong: %v", mx)
	}
	sc := v.Scale(2)
	if sc.Get(TotalTime) != 4 || sc.Get(Energy) != 6 {
		t.Errorf("Scale wrong: %v", sc)
	}
}

func TestVectorValid(t *testing.T) {
	if !(Vector{}).Valid() {
		t.Error("zero vector must be valid")
	}
	if (Vector{}.With(TotalTime, -1)).Valid() {
		t.Error("negative entry must be invalid")
	}
	if (Vector{}.With(TotalTime, math.NaN())).Valid() {
		t.Error("NaN entry must be invalid")
	}
	if (Vector{}.With(TotalTime, math.Inf(1))).Valid() {
		t.Error("Inf entry must be invalid")
	}
}

// The running example of the paper (Example 1): plan p combines subplans
// with cost (7,1) and (6,2) into (7,3) using max for time and sum for
// energy; replacing the (7,1) subplan by (1,3) yields (6,5), which worsens
// the weighted cost even though the subplan's weighted cost improved.
func TestExample1WeightedSumNotOptimal(t *testing.T) {
	objs := NewSet(TotalTime, Energy)
	var w Weights
	w[TotalTime] = 1
	w[Energy] = 2

	p1 := Vector{}.With(TotalTime, 7).With(Energy, 1)
	p1alt := Vector{}.With(TotalTime, 1).With(Energy, 3)
	p2 := Vector{}.With(TotalTime, 6).With(Energy, 2)

	combine := func(a, b Vector) Vector {
		return Vector{}.
			With(TotalTime, math.Max(a.Get(TotalTime), b.Get(TotalTime))).
			With(Energy, a.Get(Energy)+b.Get(Energy))
	}
	p := combine(p1, p2)
	pAlt := combine(p1alt, p2)

	if got := w.Cost(p); got != 13 {
		t.Fatalf("C_W(p) = %v, want 13", got)
	}
	if got := w.Cost(pAlt); got != 16 {
		t.Fatalf("C_W(p*) = %v, want 16", got)
	}
	if !(w.Cost(p1alt) < w.Cost(p1)) {
		t.Fatal("subplan replacement should improve subplan weighted cost")
	}
	if !(w.Cost(pAlt) > w.Cost(p)) {
		t.Fatal("plan weighted cost should worsen (single-objective POO breaks)")
	}
	_ = objs
}

func TestDominance(t *testing.T) {
	objs := NewSet(TotalTime, BufferFootprint)
	a := Vector{}.With(TotalTime, 1).With(BufferFootprint, 2)
	b := Vector{}.With(TotalTime, 2).With(BufferFootprint, 2)
	c := Vector{}.With(TotalTime, 2).With(BufferFootprint, 1)

	if !a.Dominates(b, objs) {
		t.Error("a should dominate b")
	}
	if !a.StrictlyDominates(b, objs) {
		t.Error("a should strictly dominate b")
	}
	if a.Dominates(c, objs) || c.Dominates(a, objs) {
		t.Error("a and c must be incomparable")
	}
	if !a.Dominates(a, objs) {
		t.Error("dominance must be reflexive")
	}
	if a.StrictlyDominates(a, objs) {
		t.Error("strict dominance must be irreflexive")
	}
	// Entries outside the active set must be ignored.
	aBig := a.With(Energy, 1e9)
	if !aBig.Dominates(b, objs) {
		t.Error("inactive objectives must not affect dominance")
	}
}

func TestApproxDominates(t *testing.T) {
	objs := NewSet(TotalTime, BufferFootprint)
	a := Vector{}.With(TotalTime, 3).With(BufferFootprint, 3)
	b := Vector{}.With(TotalTime, 2).With(BufferFootprint, 2)
	if a.Dominates(b, objs) {
		t.Fatal("a must not dominate b exactly")
	}
	if !a.ApproxDominates(b, 1.5, objs) {
		t.Error("a should 1.5-approximately dominate b")
	}
	if a.ApproxDominates(b, 1.4, objs) {
		t.Error("a should not 1.4-approximately dominate b")
	}
	// alpha = 1 reduces approximate dominance to plain dominance.
	if a.ApproxDominates(b, 1, objs) != a.Dominates(b, objs) {
		t.Error("alpha=1 approx dominance must equal dominance")
	}
}

func TestWeightsCost(t *testing.T) {
	var w Weights
	w[TotalTime] = 2
	w[Energy] = 0.5
	v := Vector{}.With(TotalTime, 10).With(Energy, 4).With(IOLoad, 100)
	if got := w.Cost(v); got != 22 {
		t.Errorf("Cost = %v, want 22", got)
	}
	if w.Active() != NewSet(TotalTime, Energy) {
		t.Errorf("Active = %v", w.Active())
	}
}

func TestUniformAndSingleWeights(t *testing.T) {
	objs := NewSet(TotalTime, Energy, TupleLoss)
	u := UniformWeights(objs)
	if u.Active() != objs {
		t.Errorf("UniformWeights active = %v, want %v", u.Active(), objs)
	}
	s := SingleWeight(Energy)
	if s.Active() != NewSet(Energy) {
		t.Errorf("SingleWeight active = %v", s.Active())
	}
}

func TestWeightsValid(t *testing.T) {
	var w Weights
	if !w.Valid() {
		t.Error("zero weights must be valid")
	}
	w[Energy] = -1
	if w.Valid() {
		t.Error("negative weight must be invalid")
	}
}

func TestBounds(t *testing.T) {
	objs := NewSet(TotalTime, TupleLoss)
	b := NoBounds()
	if !b.Unbounded(objs) {
		t.Error("NoBounds must be unbounded")
	}
	v := Vector{}.With(TotalTime, 100).With(TupleLoss, 0.5)
	if !b.Respects(v, objs) {
		t.Error("every vector respects NoBounds")
	}
	b = b.With(TotalTime, 50)
	if b.Unbounded(objs) {
		t.Error("bounds no longer unbounded")
	}
	if b.Respects(v, objs) {
		t.Error("v exceeds the time bound")
	}
	if !b.RespectsRelaxed(v, 2, objs) {
		t.Error("v respects the bounds relaxed by factor 2")
	}
	got := b.BoundedObjectives(objs)
	if len(got) != 1 || got[0] != TotalTime {
		t.Errorf("BoundedObjectives = %v", got)
	}
	if !b.Valid() {
		t.Error("bounds should be valid")
	}
	if b.With(Energy, -3).Valid() {
		t.Error("negative bound must be invalid")
	}
}

// randomVector produces a bounded random cost vector for property tests.
func randomVector(r *rand.Rand) Vector {
	var v Vector
	for i := range v {
		v[i] = r.Float64() * 100
	}
	return v
}

func TestPropertyDominanceTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	objs := AllSet()
	f := func() bool {
		a, b, c := randomVector(r), randomVector(r), randomVector(r)
		// Force chains sometimes, otherwise the premise rarely holds.
		b = a.Add(randomVector(r).Scale(0.1))
		c = b.Add(randomVector(r).Scale(0.1))
		if a.Dominates(b, objs) && b.Dominates(c, objs) {
			return a.Dominates(c, objs)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyApproxDominanceComposition(t *testing.T) {
	// If a approx-dominates b with alpha1 and b approx-dominates c with
	// alpha2, then a approx-dominates c with alpha1*alpha2.
	r := rand.New(rand.NewSource(2))
	objs := AllSet()
	f := func() bool {
		c := randomVector(r)
		a1 := 1 + r.Float64()
		a2 := 1 + r.Float64()
		b := c.Scale(a2 * (0.9 + 0.1*r.Float64())) // within alpha2 of c
		a := b.Scale(a1 * (0.9 + 0.1*r.Float64())) // within alpha1 of b
		if a.ApproxDominates(b, a1, objs) && b.ApproxDominates(c, a2, objs) {
			return a.ApproxDominates(c, a1*a2, objs)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDominanceImpliesWeightedOrder(t *testing.T) {
	// Dominance implies lower-or-equal weighted cost for any non-negative
	// weights: the property that makes SelectBest on a Pareto set sound.
	r := rand.New(rand.NewSource(3))
	objs := AllSet()
	f := func() bool {
		a := randomVector(r)
		b := a.Add(randomVector(r)) // b >= a componentwise, so a dominates b
		var w Weights
		for i := range w {
			w[i] = r.Float64()
		}
		if !a.Dominates(b, objs) {
			return false
		}
		return w.Cost(a) <= w.Cost(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyApproxDominanceImpliesWeightedFactor(t *testing.T) {
	// c(a) approx-dominates c(b) with alpha implies C_W(a) <= alpha*C_W(b):
	// the inequality behind Corollary 1.
	r := rand.New(rand.NewSource(4))
	objs := AllSet()
	f := func() bool {
		b := randomVector(r)
		alpha := 1 + r.Float64()
		a := b.Scale(alpha * r.Float64()) // scaled by at most alpha
		if !a.ApproxDominates(b, alpha, objs) {
			return true
		}
		var w Weights
		for i := range w {
			w[i] = r.Float64()
		}
		return w.Cost(a) <= alpha*w.Cost(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFormatOn(t *testing.T) {
	v := Vector{}.With(TotalTime, 1.5)
	got := v.FormatOn(NewSet(TotalTime))
	if got != "(total_time=1.5)" {
		t.Errorf("FormatOn = %q", got)
	}
	if v.String() == "" {
		t.Error("String must not be empty")
	}
}
