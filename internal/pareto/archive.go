package pareto

import (
	"moqo/internal/objective"
	"moqo/internal/plan"
)

// Archive holds a set of mutually non-dominating plans for one table set.
// Alpha >= 1 is the pruning precision: 1 yields exact Pareto pruning (EXA),
// larger values yield the RTA's approximate pruning.
type Archive struct {
	objs  objective.Set
	alpha float64
	// prec, when non-nil, replaces the scalar alpha with a per-objective
	// precision vector (the beyond-paper RTAVector extension).
	prec  *objective.Precision
	plans []*plan.Node

	// inserted and rejected count Insert outcomes for the experiment
	// harness ("number of considered plans").
	inserted, rejected, evicted int
}

// NewArchive creates an archive over the given active objectives with the
// given pruning precision (alpha >= 1; alpha == 1 is exact pruning).
func NewArchive(objs objective.Set, alpha float64) *Archive {
	if alpha < 1 {
		panic("pareto: pruning precision must be >= 1")
	}
	return &Archive{objs: objs, alpha: alpha}
}

// NewPrecisionArchive creates an archive pruning with a per-objective
// precision vector.
func NewPrecisionArchive(objs objective.Set, prec objective.Precision) *Archive {
	if !prec.Valid() {
		panic("pareto: pruning precisions must be >= 1")
	}
	return &Archive{objs: objs, alpha: prec.Max(objs), prec: &prec}
}

// NewMaterialized builds an archive directly from already mutually
// non-dominating plans and their pre-computed counters. It is the bridge
// from the flat hot-path representation back to the legacy tree-backed
// archive: the engine materializes a FlatArchive's frontier into plan
// trees once per run and rehydrates it here, preserving the counters the
// experiment harness reports. The plans are stored as given — no pruning
// is re-run.
func NewMaterialized(objs objective.Set, alpha float64, prec *objective.Precision, plans []*plan.Node, inserted, rejected, evicted int) *Archive {
	return &Archive{
		objs: objs, alpha: alpha, prec: prec, plans: plans,
		inserted: inserted, rejected: rejected, evicted: evicted,
	}
}

// Insert offers a new plan to the archive, implementing the paper's
// Prune(P, pN, αi): if some stored plan approximately dominates the new
// plan it is discarded; otherwise plans that the new plan (exactly)
// dominates are evicted and the new plan is stored. Returns whether the
// plan was stored.
func (a *Archive) Insert(p *plan.Node) bool {
	for _, q := range a.plans {
		if a.approxDominates(q.Cost, p.Cost) {
			a.rejected++
			return false
		}
	}
	keep := a.plans[:0]
	for _, q := range a.plans {
		if p.Cost.Dominates(q.Cost, a.objs) {
			a.evicted++
			continue
		}
		keep = append(keep, q)
	}
	a.plans = append(keep, p)
	a.inserted++
	return true
}

// approxDominates applies the archive's pruning relation: scalar-alpha
// approximate dominance, or per-objective precision when configured.
func (a *Archive) approxDominates(q, p objective.Vector) bool {
	if a.prec != nil {
		return q.ApproxDominatesBy(p, *a.prec, a.objs)
	}
	return q.ApproxDominates(p, a.alpha, a.objs)
}

// Plans returns the stored plans. The returned slice is owned by the
// archive and must not be modified.
func (a *Archive) Plans() []*plan.Node { return a.plans }

// Len returns the number of stored plans.
func (a *Archive) Len() int { return len(a.plans) }

// Alpha returns the archive's pruning precision.
func (a *Archive) Alpha() float64 { return a.alpha }

// Objectives returns the archive's active objective set.
func (a *Archive) Objectives() objective.Set { return a.objs }

// Stats returns cumulative insert/reject/evict counters.
func (a *Archive) Stats() (inserted, rejected, evicted int) {
	return a.inserted, a.rejected, a.evicted
}

// SelectBest implements the paper's SelectBest(P, W, B): the plan with the
// minimal weighted cost among the stored plans respecting the bounds, or —
// if no stored plan respects the bounds — the minimal weighted cost
// overall. Returns nil only for an empty archive.
func (a *Archive) SelectBest(w objective.Weights, b objective.Bounds) *plan.Node {
	return SelectBest(a.plans, w, b, a.objs)
}

// SelectBest returns the plan minimizing weighted cost among those
// respecting the bounds, falling back to the overall weighted minimum when
// no plan is within bounds (paper Definition 2). Ties break toward the
// earliest plan, keeping results deterministic.
func SelectBest(plans []*plan.Node, w objective.Weights, b objective.Bounds, objs objective.Set) *plan.Node {
	var bestIn, bestAny *plan.Node
	bestInCost, bestAnyCost := 0.0, 0.0
	for _, p := range plans {
		c := w.Cost(p.Cost)
		if bestAny == nil || c < bestAnyCost {
			bestAny, bestAnyCost = p, c
		}
		if b.Respects(p.Cost, objs) && (bestIn == nil || c < bestInCost) {
			bestIn, bestInCost = p, c
		}
	}
	if bestIn != nil {
		return bestIn
	}
	return bestAny
}

// Frontier returns the cost vectors of the stored plans.
func (a *Archive) Frontier() []objective.Vector {
	out := make([]objective.Vector, len(a.plans))
	for i, p := range a.plans {
		out[i] = p.Cost
	}
	return out
}
