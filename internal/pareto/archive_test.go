package pareto

import (
	"math/rand"
	"testing"

	"moqo/internal/objective"
	"moqo/internal/plan"
)

var testObjs = objective.NewSet(objective.TotalTime, objective.BufferFootprint)

// node wraps a cost vector in a minimal plan node (archives only inspect
// the Cost field).
func node(time, buf float64) *plan.Node {
	return &plan.Node{
		Cost: objective.Vector{}.
			With(objective.TotalTime, time).
			With(objective.BufferFootprint, buf),
	}
}

// runningExample returns plan cost vectors shaped like the paper's running
// example (Figures 1-2): a (buffer space, time) frontier of four Pareto
// points plus dominated points.
func runningExample() []*plan.Node {
	return []*plan.Node{
		node(3, 0.5), // Pareto
		node(2, 1),   // Pareto
		node(1, 2.5), // Pareto
		node(0.5, 4), // Pareto
		node(3, 2),   // dominated by (2,1)
		node(2.5, 3), // dominated by (1,2.5)
		node(3.5, 1), // dominated by (3,0.5) and (2,1)
		node(2, 1),   // duplicate of a Pareto point
	}
}

func TestExactArchiveKeepsParetoSet(t *testing.T) {
	a := NewArchive(testObjs, 1)
	for _, p := range runningExample() {
		a.Insert(p)
	}
	if a.Len() != 4 {
		t.Fatalf("archive holds %d plans, want the 4 Pareto plans", a.Len())
	}
	// No stored plan may dominate another (mutual non-domination).
	for _, p := range a.Plans() {
		for _, q := range a.Plans() {
			if p != q && p.Cost.StrictlyDominates(q.Cost, testObjs) {
				t.Errorf("stored plan %v strictly dominates stored plan %v", p.Cost, q.Cost)
			}
		}
	}
}

func TestExactArchiveOrderIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	want := map[[2]float64]bool{
		{3, 0.5}: true, {2, 1}: true, {1, 2.5}: true, {0.5, 4}: true,
	}
	for trial := 0; trial < 50; trial++ {
		ps := runningExample()
		r.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
		a := NewArchive(testObjs, 1)
		for _, p := range ps {
			a.Insert(p)
		}
		if a.Len() != 4 {
			t.Fatalf("trial %d: %d plans, want 4", trial, a.Len())
		}
		for _, p := range a.Plans() {
			key := [2]float64{p.Cost[objective.TotalTime], p.Cost[objective.BufferFootprint]}
			if !want[key] {
				t.Errorf("trial %d: unexpected stored vector %v", trial, key)
			}
		}
	}
}

func TestApproximateArchiveRejectsNearDuplicates(t *testing.T) {
	a := NewArchive(testObjs, 1.5)
	if !a.Insert(node(2, 2)) {
		t.Fatal("first plan must be stored")
	}
	// (1.6, 1.6) is NOT approximately dominated... check: stored (2,2)
	// approx-dominates (1.6,1.6) iff 2 <= 1.6*1.5 = 2.4 — yes. Rejected.
	if a.Insert(node(1.6, 1.6)) {
		t.Error("near-duplicate within factor 1.5 must be rejected")
	}
	// (1.2, 1.2): 2 <= 1.8 fails, so it is inserted and evicts nothing
	// ((1.2,1.2) dominates (2,2), so (2,2) is evicted).
	if !a.Insert(node(1.2, 1.2)) {
		t.Error("clearly better plan must be stored")
	}
	if a.Len() != 1 {
		t.Errorf("dominated plan should have been evicted; len = %d", a.Len())
	}
}

func TestApproximateArchiveIsAlphaCover(t *testing.T) {
	// Stream random vectors into an approximate archive and verify the
	// result approximately dominates the exact Pareto set of the stream —
	// the invariant behind Theorem 3's base case.
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		alpha := 1 + r.Float64()
		a := NewArchive(testObjs, alpha)
		var all []objective.Vector
		for i := 0; i < 200; i++ {
			p := node(0.1+10*r.Float64(), 0.1+10*r.Float64())
			all = append(all, p.Cost)
			a.Insert(p)
		}
		exact := FilterPareto(all, testObjs)
		if !IsAlphaCover(a.Frontier(), exact, alpha, testObjs) {
			t.Fatalf("trial %d: archive (alpha=%v) is not an alpha-cover", trial, alpha)
		}
	}
}

// TestApproximateEvictionWouldDrift demonstrates why the RTA must evict
// only exactly dominated plans (paper, end of Section 6.2): with
// approximate eviction, a chain of mutually incomparable inserts — each
// within alpha of the last in one objective, much better in the other —
// evicts its predecessor at every step, and after a few steps the archive
// no longer alpha-covers the earlier Pareto points. The correct archive
// keeps every incomparable plan and its cover never drifts.
func TestApproximateEvictionWouldDrift(t *testing.T) {
	alpha := 1.5

	// Broken variant: evicts approximately dominated plans too.
	var brokenPlans []*plan.Node
	insertBroken := func(p *plan.Node) {
		for _, q := range brokenPlans {
			if q.Cost.ApproxDominates(p.Cost, alpha, testObjs) {
				return
			}
		}
		keep := brokenPlans[:0]
		for _, q := range brokenPlans {
			if p.Cost.ApproxDominates(q.Cost, alpha, testObjs) { // WRONG: approximate eviction
				continue
			}
			keep = append(keep, q)
		}
		brokenPlans = append(keep, p)
	}

	good := NewArchive(testObjs, alpha)
	var seen []objective.Vector
	// Chain p_i = (1.4^i, 10 * 0.6^i): each step trades a 1.4x time
	// increase (within alpha) for a big buffer win, so each insert
	// approx-dominates — and under the broken rule evicts — the previous.
	x, y := 1.0, 10.0
	for i := 0; i < 10; i++ {
		p := node(x, y)
		seen = append(seen, p.Cost)
		good.Insert(p)
		insertBroken(p)
		x *= 1.4
		y *= 0.6
	}
	exact := FilterPareto(seen, testObjs)
	if len(exact) != 10 {
		t.Fatalf("chain points should be mutually incomparable, got %d Pareto points", len(exact))
	}
	if !IsAlphaCover(good.Frontier(), exact, alpha, testObjs) {
		t.Error("correct archive lost its alpha-cover")
	}
	var brokenFrontier []objective.Vector
	for _, p := range brokenPlans {
		brokenFrontier = append(brokenFrontier, p.Cost)
	}
	if IsAlphaCover(brokenFrontier, exact, alpha, testObjs) {
		t.Error("broken archive still alpha-covers; the test no longer demonstrates the drift failure mode")
	}
	if cf := CoverFactor(brokenFrontier, exact, testObjs); cf < 2*alpha {
		t.Errorf("broken archive drifted only to %v, expected far beyond alpha=%v", cf, alpha)
	}
}

func TestSelectBestRespectsBounds(t *testing.T) {
	// Figure 1(b): with bounds, a different plan becomes optimal.
	a := NewArchive(testObjs, 1)
	for _, p := range runningExample() {
		a.Insert(p)
	}
	var w objective.Weights
	w[objective.TotalTime] = 1
	w[objective.BufferFootprint] = 1

	unbounded := a.SelectBest(w, objective.NoBounds())
	if unbounded == nil {
		t.Fatal("no plan selected")
	}
	// Weighted costs: (3,.5)=3.5 (2,1)=3 (1,2.5)=3.5 (.5,4)=4.5 → (2,1).
	if unbounded.Cost[objective.TotalTime] != 2 {
		t.Errorf("unbounded optimum = %v, want the (2,1) plan", unbounded.Cost.FormatOn(testObjs))
	}
	// Bound buffer space below 1 → only (3,0.5) qualifies.
	b := objective.NoBounds().With(objective.BufferFootprint, 0.9)
	bounded := a.SelectBest(w, b)
	if bounded.Cost[objective.BufferFootprint] != 0.5 {
		t.Errorf("bounded optimum = %v, want the (3,0.5) plan", bounded.Cost.FormatOn(testObjs))
	}
}

func TestSelectBestFallbackWhenInfeasible(t *testing.T) {
	// Definition 2: if no plan respects the bounds, minimize weighted cost
	// over all plans.
	plans := []*plan.Node{node(5, 5), node(4, 6)}
	var w objective.Weights
	w[objective.TotalTime] = 1
	b := objective.NoBounds().With(objective.TotalTime, 1)
	got := SelectBest(plans, w, b, testObjs)
	if got.Cost[objective.TotalTime] != 4 {
		t.Errorf("fallback selected %v, want the weighted minimum", got.Cost.FormatOn(testObjs))
	}
	if SelectBest(nil, w, b, testObjs) != nil {
		t.Error("empty plan list must select nil")
	}
}

func TestArchiveStats(t *testing.T) {
	a := NewArchive(testObjs, 1)
	a.Insert(node(2, 2))
	a.Insert(node(3, 3)) // rejected (dominated)
	a.Insert(node(1, 1)) // inserted, evicts (2,2)
	ins, rej, ev := a.Stats()
	if ins != 2 || rej != 1 || ev != 1 {
		t.Errorf("stats = (%d,%d,%d), want (2,1,1)", ins, rej, ev)
	}
}

func TestNewArchivePanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("alpha < 1 did not panic")
		}
	}()
	NewArchive(testObjs, 0.5)
}
