package pareto

import (
	"fmt"
	"math/rand"
	"testing"

	"moqo/internal/objective"
	"moqo/internal/plan"
)

// differential_test.go proves the flat struct-of-arrays archive a drop-in
// replacement for the legacy tree-backed archive: over random cost
// streams, both must make identical insert decisions (stored/rejected),
// keep identical frontiers in identical order, and report identical
// inserted/rejected/evicted counters — for exact pruning (alpha 1),
// approximate pruning (alpha 1.5), and per-objective precision vectors.

// randomStream draws cost vectors whose active objectives lie in
// [lo, lo*spread]; a narrow spread produces many dominance interactions.
func randomStream(r *rand.Rand, n int, objs objective.Set) []objective.Vector {
	ids := objs.IDs()
	out := make([]objective.Vector, n)
	for i := range out {
		for _, o := range ids {
			out[i][o] = 1 + 3*r.Float64()
		}
		// Duplicates and exact repeats exercise the tie handling.
		if i > 0 && r.Intn(10) == 0 {
			out[i] = out[r.Intn(i)]
		}
	}
	return out
}

// runDifferential feeds one stream to both representations and compares
// every observable after every insert.
func runDifferential(t *testing.T, legacy *Archive, flat *FlatArchive, stream []objective.Vector, objs objective.Set) {
	t.Helper()
	for i, v := range stream {
		lp := &plan.Node{Cost: v}
		gotL := legacy.Insert(lp)
		gotF := flat.Insert(v, plan.Entry{Op: int32(i)})
		if gotL != gotF {
			t.Fatalf("insert %d (%v): legacy stored=%v, flat stored=%v", i, v.FormatOn(objs), gotL, gotF)
		}
		if legacy.Len() != flat.Len() {
			t.Fatalf("insert %d: legacy len %d != flat len %d", i, legacy.Len(), flat.Len())
		}
	}
	li, lr, le := legacy.Stats()
	fi, fr, fe := flat.Stats()
	if li != fi || lr != fr || le != fe {
		t.Fatalf("counters differ: legacy (ins=%d rej=%d ev=%d), flat (ins=%d rej=%d ev=%d)", li, lr, le, fi, fr, fe)
	}
	lf, ff := legacy.Frontier(), flat.Frontier()
	for i := range lf {
		if lf[i] != ff[i] {
			t.Fatalf("frontier entry %d differs:\nlegacy %v\nflat   %v", i, lf[i], ff[i])
		}
	}
}

// TestFlatMatchesLegacyScalarAlpha: scalar-alpha pruning, exact and
// approximate, over many random streams and objective sets.
func TestFlatMatchesLegacyScalarAlpha(t *testing.T) {
	objSets := []objective.Set{
		objective.NewSet(objective.TotalTime, objective.BufferFootprint),
		objective.NewSet(objective.TotalTime, objective.BufferFootprint, objective.Energy),
		objective.AllSet(),
	}
	for _, alpha := range []float64{1, 1.5} {
		for oi, objs := range objSets {
			for seed := int64(0); seed < 20; seed++ {
				t.Run(fmt.Sprintf("alpha=%v/objs=%d/seed=%d", alpha, oi, seed), func(t *testing.T) {
					r := rand.New(rand.NewSource(seed))
					stream := randomStream(r, 300, objs)
					legacy := NewArchive(objs, alpha)
					flat := NewFlat(NewFlatConfig(objs, alpha))
					runDifferential(t, legacy, flat, stream, objs)
				})
			}
		}
	}
}

// TestFlatMatchesLegacyPrecisionVector: per-objective precision pruning
// (the RTAVector extension) must also agree decision for decision.
func TestFlatMatchesLegacyPrecisionVector(t *testing.T) {
	objs := objective.NewSet(objective.TotalTime, objective.BufferFootprint, objective.Energy)
	precs := []objective.Precision{
		objective.UniformPrecision(1.5, objs).With(objective.TotalTime, 1),
		objective.UniformPrecision(1, objs).With(objective.Energy, 2),
		objective.UniformPrecision(1.25, objs),
	}
	for pi, prec := range precs {
		for seed := int64(0); seed < 20; seed++ {
			t.Run(fmt.Sprintf("prec=%d/seed=%d", pi, seed), func(t *testing.T) {
				r := rand.New(rand.NewSource(1000 + seed))
				stream := randomStream(r, 300, objs)
				legacy := NewPrecisionArchive(objs, prec)
				flat := NewFlat(NewFlatPrecisionConfig(objs, prec))
				runDifferential(t, legacy, flat, stream, objs)
			})
		}
	}
}

// TestFlatSelectBestMatchesLegacy: the flat SelectBest must pick the same
// plan (by cost vector) as the legacy implementation, including the
// bounds-infeasible fallback and earliest-index tie-breaking.
func TestFlatSelectBestMatchesLegacy(t *testing.T) {
	objs := objective.NewSet(objective.TotalTime, objective.BufferFootprint)
	w := objective.UniformWeights(objs)
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(2000 + seed))
		stream := randomStream(r, 100, objs)
		legacy := NewArchive(objs, 1)
		flat := NewFlat(NewFlatConfig(objs, 1))
		for i, v := range stream {
			legacy.Insert(&plan.Node{Cost: v})
			flat.Insert(v, plan.Entry{Op: int32(i)})
		}
		bounds := []objective.Bounds{
			objective.NoBounds(),
			objective.NoBounds().With(objective.TotalTime, 2),
			objective.NoBounds().With(objective.TotalTime, 0.5), // infeasible
		}
		for bi, b := range bounds {
			lp := legacy.SelectBest(w, b)
			fi := flat.SelectBest(w, b)
			if lp == nil || fi < 0 {
				t.Fatalf("seed %d bounds %d: empty selection", seed, bi)
			}
			if lp.Cost != flat.CostAt(fi) {
				t.Errorf("seed %d bounds %d: legacy best %v != flat best %v", seed, bi, lp.Cost, flat.CostAt(fi))
			}
		}
	}
}
