// Package pareto implements the plan archives that drive the pruning of
// the multi-objective dynamic programs: the exact Pareto archive of the
// EXA (paper Algorithm 1, procedure Prune) and the approximate archive of
// the RTA (Algorithm 2, procedure Prune with internal precision αi). An
// archive holds, per table set, the plans whose cost vectors no stored
// plan (approximately) dominates, and selects the final plan by weighted
// cost under optional bounds (the paper's Definition 3 semantics: a
// bound-violating plan is chosen only when no plan respects the bounds).
//
// The RTA archive intentionally mixes two relations: a new plan is
// *rejected* if an already-stored plan approximately dominates it, but
// stored plans are *evicted* only if the new plan dominates them exactly.
// The paper points out (end of Section 6.2) that evicting approximately
// dominated plans as well would let stored vectors drift arbitrarily far
// from the true Pareto frontier and destroy the near-optimality guarantee;
// package tests demonstrate that failure mode.
//
// A precision-vector variant (NewPrecisionArchive) supports the
// per-objective RTA extension of internal/core.RTAVector.
package pareto
