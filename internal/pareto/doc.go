// Package pareto implements the plan archives that drive the pruning of
// the multi-objective dynamic programs: the exact Pareto archive of the
// EXA (paper Algorithm 1, procedure Prune) and the approximate archive of
// the RTA (Algorithm 2, procedure Prune with internal precision αi). An
// archive holds, per table set, the plans whose cost vectors no stored
// plan (approximately) dominates, and selects the final plan by weighted
// cost under optional bounds (the paper's Definition 3 semantics: a
// bound-violating plan is chosen only when no plan respects the bounds).
//
// Two representations implement the same pruning semantics:
//
//   - FlatArchive is the hot-path representation the engine runs on: a
//     struct-of-arrays archive whose cost vectors live in one contiguous
//     []float64 backing array and whose plans are compact plan.Entry
//     records (operator code plus sub-plan references) instead of
//     *plan.Node trees. Insert is allocation-free after warm-up — the
//     active-objective ids and per-objective pruning precisions are
//     resolved once per run into the shared FlatConfig — and dominance
//     checks walk contiguous cost rows instead of chasing pointers.
//   - Archive is the legacy tree-backed representation, kept as the
//     frontier container callers see: the engine materializes the final
//     FlatArchive into plan trees at extraction time and rehydrates it
//     via NewMaterialized, counters preserved. It also serves as the
//     differential-testing oracle for FlatArchive (the package's
//     differential tests drive both with identical random cost streams
//     and require identical frontiers and counters).
//
// Both archives intentionally mix two relations: a new plan is
// *rejected* if an already-stored plan approximately dominates it, but
// stored plans are *evicted* only if the new plan dominates them exactly.
// The paper points out (end of Section 6.2) that evicting approximately
// dominated plans as well would let stored vectors drift arbitrarily far
// from the true Pareto frontier and destroy the near-optimality guarantee;
// package tests demonstrate that failure mode.
//
// Precision-vector variants (NewPrecisionArchive, NewFlatPrecisionConfig)
// support the per-objective RTA extension of internal/core.RTAVector.
//
// CompareCanonical and SelectBestRows are the shared row-level
// primitives behind result reproducibility and frontier reuse: the
// engine's extracted frontiers and core.FrontierSnapshot both sort by
// CompareCanonical and select with SelectBestRows' tie-breaking, which
// is what makes a snapshot-served re-weight answer bit-for-bit equal to
// a cold run's.
package pareto
