package pareto

import (
	"math"

	"moqo/internal/objective"
	"moqo/internal/plan"
)

// FlatConfig is the pruning configuration shared by all flat archives of
// one engine run: the active objectives resolved to a plain ID slice and
// the per-objective pruning precisions aligned with it. Resolving both
// once per run is what makes FlatArchive.Insert allocation-free — the
// legacy Archive re-derived objs.IDs() (a fresh slice) inside every
// dominance check.
type FlatConfig struct {
	objs   objective.Set
	ids    []objective.ID
	alpha  float64
	alphas []float64 // pruning precision per ids entry
	prec   *objective.Precision

	// kind dispatches Insert to a width-specialized dominance kernel
	// (see kernels.go); o0..o5 are ids resolved to plain ints for the
	// two- through six-wide kernels.
	kind                   kernelKind
	o0, o1, o2, o3, o4, o5 int
}

// resolve fills the kernel-dispatch fields from ids; called by both
// constructors after ids/alphas are set.
func (c *FlatConfig) resolve() {
	c.kind = resolveKernel(c.ids)
	switch c.kind {
	case kernel2:
		c.o0, c.o1 = int(c.ids[0]), int(c.ids[1])
	case kernel3:
		c.o0, c.o1, c.o2 = int(c.ids[0]), int(c.ids[1]), int(c.ids[2])
	case kernel4:
		c.o0, c.o1, c.o2, c.o3 = int(c.ids[0]), int(c.ids[1]), int(c.ids[2]), int(c.ids[3])
	case kernel5:
		c.o0, c.o1, c.o2, c.o3, c.o4 = int(c.ids[0]), int(c.ids[1]), int(c.ids[2]), int(c.ids[3]), int(c.ids[4])
	case kernel6:
		c.o0, c.o1, c.o2, c.o3, c.o4, c.o5 = int(c.ids[0]), int(c.ids[1]), int(c.ids[2]), int(c.ids[3]), int(c.ids[4]), int(c.ids[5])
	}
}

// NewFlatConfig builds the shared configuration for scalar-alpha pruning
// (alpha >= 1; alpha == 1 is exact Pareto pruning).
func NewFlatConfig(objs objective.Set, alpha float64) *FlatConfig {
	if alpha < 1 {
		panic("pareto: pruning precision must be >= 1")
	}
	ids := objs.IDs()
	alphas := make([]float64, len(ids))
	for i := range alphas {
		alphas[i] = alpha
	}
	c := &FlatConfig{objs: objs, ids: ids, alpha: alpha, alphas: alphas}
	c.resolve()
	return c
}

// NewFlatPrecisionConfig builds the shared configuration for per-objective
// precision pruning (the RTAVector extension).
func NewFlatPrecisionConfig(objs objective.Set, prec objective.Precision) *FlatConfig {
	if !prec.Valid() {
		panic("pareto: pruning precisions must be >= 1")
	}
	ids := objs.IDs()
	alphas := make([]float64, len(ids))
	for i, o := range ids {
		alphas[i] = prec[o]
	}
	p := prec
	c := &FlatConfig{objs: objs, ids: ids, alpha: prec.Max(objs), alphas: alphas, prec: &p}
	c.resolve()
	return c
}

// Objectives returns the configuration's active objective set.
func (c *FlatConfig) Objectives() objective.Set { return c.objs }

// Alpha returns the scalar pruning precision (the maximum per-objective
// precision when a precision vector is configured).
func (c *FlatConfig) Alpha() float64 { return c.alpha }

// Precision returns the per-objective precision vector, or nil when the
// configuration prunes with a scalar alpha.
func (c *FlatConfig) Precision() *objective.Precision { return c.prec }

// stride is the size of one cost row in the flat backing array. Full
// nine-dimensional vectors are stored (not just the active objectives):
// the inactive entries are needed intact at materialization, and a fixed
// stride keeps row addressing a shift-free multiplication.
const stride = int(objective.NumObjectives)

// FlatArchive is the struct-of-arrays representation of a Pareto archive:
// cost vectors live in one contiguous []float64 backing array and plans
// are compact entry records instead of *plan.Node trees. Insert performs
// no allocation beyond amortized slice growth, and dominance checks walk
// a contiguous row instead of chasing node pointers.
//
// Pruning semantics are bit-for-bit those of the legacy Archive:
// approximate-dominance rejection first, then exact-dominance eviction
// with stable compaction, then append — with identical counters.
type FlatArchive struct {
	cfg     *FlatConfig
	costs   []float64 // len = len(entries) * stride
	entries []plan.Entry

	// inserted and rejected count Insert outcomes for the experiment
	// harness ("number of considered plans").
	inserted, rejected, evicted int
}

// NewFlat creates an empty flat archive sharing the run's configuration.
func NewFlat(cfg *FlatConfig) *FlatArchive { return &FlatArchive{cfg: cfg} }

// Insert offers a candidate to the archive, implementing the paper's
// Prune(P, pN, αi): if some stored plan approximately dominates the new
// cost vector the candidate is discarded; otherwise stored plans that the
// new vector (exactly) dominates are evicted and the candidate is stored.
// Returns whether the candidate was stored.
//
// The scans dispatch to a width-specialized, branch-reduced kernel picked
// once per configuration (kernels.go); every path computes the exact same
// comparisons as insertGeneric, so results and counters are bit-identical
// regardless of the kernel taken.
func (a *FlatArchive) Insert(c objective.Vector, e plan.Entry) bool {
	cfg := a.cfg
	var rejected bool
	switch cfg.kind {
	case kernel2:
		rejected = anyRowLeq2(a.costs, cfg.o0, cfg.o1,
			c[cfg.o0]*cfg.alphas[0], c[cfg.o1]*cfg.alphas[1])
	case kernel3:
		rejected = anyRowLeq3(a.costs, cfg.o0, cfg.o1, cfg.o2,
			c[cfg.o0]*cfg.alphas[0], c[cfg.o1]*cfg.alphas[1], c[cfg.o2]*cfg.alphas[2])
	case kernel4:
		rejected = anyRowLeq4(a.costs, cfg.o0, cfg.o1, cfg.o2, cfg.o3,
			c[cfg.o0]*cfg.alphas[0], c[cfg.o1]*cfg.alphas[1], c[cfg.o2]*cfg.alphas[2], c[cfg.o3]*cfg.alphas[3])
	case kernel5:
		rejected = anyRowLeq5(a.costs, cfg.o0, cfg.o1, cfg.o2, cfg.o3, cfg.o4,
			c[cfg.o0]*cfg.alphas[0], c[cfg.o1]*cfg.alphas[1], c[cfg.o2]*cfg.alphas[2],
			c[cfg.o3]*cfg.alphas[3], c[cfg.o4]*cfg.alphas[4])
	case kernel6:
		rejected = anyRowLeq6(a.costs, cfg.o0, cfg.o1, cfg.o2, cfg.o3, cfg.o4, cfg.o5,
			c[cfg.o0]*cfg.alphas[0], c[cfg.o1]*cfg.alphas[1], c[cfg.o2]*cfg.alphas[2],
			c[cfg.o3]*cfg.alphas[3], c[cfg.o4]*cfg.alphas[4], c[cfg.o5]*cfg.alphas[5])
	case kernelFull:
		var t [stride]float64
		for o := 0; o < stride; o++ {
			t[o] = c[o] * cfg.alphas[o]
		}
		rejected = anyRowLeqFull(a.costs, &t)
	default:
		var t [stride]float64
		for k, o := range cfg.ids {
			t[k] = c[o] * cfg.alphas[k]
		}
		rejected = anyRowLeqGeneric(a.costs, cfg.ids, &t)
	}
	if rejected {
		a.rejected++
		return false
	}
	switch cfg.kind {
	case kernel2:
		a.evict2(cfg.o0, cfg.o1, c[cfg.o0], c[cfg.o1])
	case kernel3:
		a.evict3(cfg.o0, cfg.o1, cfg.o2, c[cfg.o0], c[cfg.o1], c[cfg.o2])
	case kernel4:
		a.evict4(cfg.o0, cfg.o1, cfg.o2, cfg.o3, c[cfg.o0], c[cfg.o1], c[cfg.o2], c[cfg.o3])
	case kernel5:
		a.evict5(cfg.o0, cfg.o1, cfg.o2, cfg.o3, cfg.o4,
			c[cfg.o0], c[cfg.o1], c[cfg.o2], c[cfg.o3], c[cfg.o4])
	case kernel6:
		a.evict6(cfg.o0, cfg.o1, cfg.o2, cfg.o3, cfg.o4, cfg.o5,
			c[cfg.o0], c[cfg.o1], c[cfg.o2], c[cfg.o3], c[cfg.o4], c[cfg.o5])
	case kernelFull:
		a.evictFull(&c)
	default:
		a.evictGeneric(cfg.ids, &c)
	}
	a.entries = append(a.entries, e)
	a.costs = append(a.costs, c[:]...)
	a.inserted++
	return true
}

// insertGeneric is Insert restricted to the original early-exit scalar
// loops, regardless of the configured kernel — the differential oracle the
// specialized paths are tested against.
func (a *FlatArchive) insertGeneric(c objective.Vector, e plan.Entry) bool {
	var t [stride]float64
	for k, o := range a.cfg.ids {
		t[k] = c[o] * a.cfg.alphas[k]
	}
	if anyRowLeqGeneric(a.costs, a.cfg.ids, &t) {
		a.rejected++
		return false
	}
	a.evictGeneric(a.cfg.ids, &c)
	a.entries = append(a.entries, e)
	a.costs = append(a.costs, c[:]...)
	a.inserted++
	return true
}

// Len returns the number of stored plans.
func (a *FlatArchive) Len() int { return len(a.entries) }

// EntryAt returns the i-th stored entry.
func (a *FlatArchive) EntryAt(i int32) plan.Entry { return a.entries[i] }

// CostAt returns a copy of the i-th stored cost vector.
func (a *FlatArchive) CostAt(i int32) objective.Vector {
	var v objective.Vector
	copy(v[:], a.costs[int(i)*stride:int(i)*stride+stride])
	return v
}

// Alpha returns the archive's pruning precision.
func (a *FlatArchive) Alpha() float64 { return a.cfg.alpha }

// Objectives returns the archive's active objective set.
func (a *FlatArchive) Objectives() objective.Set { return a.cfg.objs }

// Stats returns cumulative insert/reject/evict counters.
func (a *FlatArchive) Stats() (inserted, rejected, evicted int) {
	return a.inserted, a.rejected, a.evicted
}

// Frontier returns the cost vectors of the stored plans.
func (a *FlatArchive) Frontier() []objective.Vector {
	out := make([]objective.Vector, a.Len())
	for i := range out {
		out[i] = a.CostAt(int32(i))
	}
	return out
}

// CompareCanonical orders two cost vectors lexicographically over all nine
// objectives — the canonical frontier order shared by the engine's
// materialized frontiers and the frontier snapshots of the reuse path.
// Sorting by it (stably, so insertion order breaks ties) makes an
// extracted frontier independent of how the run was scheduled, which is
// what lets a snapshot-served answer match a cold run bit for bit.
func CompareCanonical(a, b objective.Vector) int {
	for o := 0; o < stride; o++ {
		switch {
		case a[o] < b[o]:
			return -1
		case a[o] > b[o]:
			return 1
		}
	}
	return 0
}

// SelectBestRows is the paper's SelectBest(P, W, B) over a contiguous
// cost-row slice (stride nine, as stored by FlatArchive and by frontier
// snapshots): the index of the row with minimal weighted cost among those
// respecting the bounds, falling back to the minimal weighted cost overall
// when no row is within bounds. Ties break toward the earliest row, so the
// choice is deterministic and — over canonically sorted rows — identical
// to SelectBest over the materialized plans. Returns -1 for no rows.
func SelectBestRows(costs []float64, w objective.Weights, b objective.Bounds, objs objective.Set) int32 {
	bestIn, bestAny := int32(-1), int32(-1)
	bestInCost, bestAnyCost := 0.0, 0.0
	n := len(costs) / stride
	for i := 0; i < n; i++ {
		var v objective.Vector
		copy(v[:], costs[i*stride:(i+1)*stride])
		c := w.Cost(v)
		if bestAny < 0 || c < bestAnyCost {
			bestAny, bestAnyCost = int32(i), c
		}
		if b.Respects(v, objs) && (bestIn < 0 || c < bestInCost) {
			bestIn, bestInCost = int32(i), c
		}
	}
	if bestIn >= 0 {
		return bestIn
	}
	return bestAny
}

// BestBy returns the index of the stored plan minimizing the given scalar
// metric (-1 for an empty archive). Ties break toward the earliest plan,
// keeping results deterministic.
func (a *FlatArchive) BestBy(scalar func(objective.Vector) float64) int32 {
	best := int32(-1)
	bestCost := math.Inf(1)
	for i := 0; i < a.Len(); i++ {
		if c := scalar(a.CostAt(int32(i))); best < 0 || c < bestCost {
			best, bestCost = int32(i), c
		}
	}
	return best
}

// SelectBest implements the paper's SelectBest(P, W, B) over the flat
// representation: the index of the plan with minimal weighted cost among
// those respecting the bounds, or — if none respects the bounds — the
// minimal weighted cost overall. Returns -1 only for an empty archive.
func (a *FlatArchive) SelectBest(w objective.Weights, b objective.Bounds) int32 {
	return SelectBestRows(a.costs, w, b, a.cfg.objs)
}

// Reset empties the archive, keeping the backing arrays (and counters at
// zero) for reuse — the warm-up discipline of the zero-allocation
// benchmarks, and the engine's per-worker scratch reuse.
func (a *FlatArchive) Reset() {
	a.costs = a.costs[:0]
	a.entries = a.entries[:0]
	a.inserted, a.rejected, a.evicted = 0, 0, 0
}
