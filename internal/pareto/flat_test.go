package pareto

import (
	"math/rand"
	"testing"

	"moqo/internal/objective"
	"moqo/internal/plan"
)

// benchObjs is the three-objective set the scaling experiments use.
var benchObjs = objective.NewSet(objective.TotalTime, objective.BufferFootprint, objective.Energy)

// benchStream is a fixed candidate stream with a realistic mix of stored,
// rejected, and evicting inserts.
func benchStream(n int) []objective.Vector {
	return randomStream(rand.New(rand.NewSource(42)), n, benchObjs)
}

// TestArchiveInsertZeroAlloc is the CI smoke gate of the allocation-free
// hot path: after warm-up (backing arrays grown to steady-state capacity),
// offering candidates to a flat archive must perform zero heap
// allocations per insert — stored, rejected, or evicting alike.
func TestArchiveInsertZeroAlloc(t *testing.T) {
	stream := benchStream(512)
	a := NewFlat(NewFlatConfig(benchObjs, 1.2))
	ent := plan.Entry{}
	// Warm-up: grow the backing arrays once.
	for _, v := range stream {
		a.Insert(v, ent)
	}
	allocs := testing.AllocsPerRun(50, func() {
		a.Reset()
		for _, v := range stream {
			a.Insert(v, ent)
		}
	})
	if allocs > 0 {
		t.Fatalf("FlatArchive.Insert allocates after warm-up: %.2f allocs per %d-insert stream", allocs, len(stream))
	}
}

// TestFlatReset: Reset must empty the archive and zero the counters while
// subsequent inserts still behave correctly.
func TestFlatReset(t *testing.T) {
	a := NewFlat(NewFlatConfig(benchObjs, 1))
	for _, v := range benchStream(64) {
		a.Insert(v, plan.Entry{})
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatalf("Len after Reset = %d", a.Len())
	}
	if i, r, e := a.Stats(); i != 0 || r != 0 || e != 0 {
		t.Fatalf("counters after Reset = %d/%d/%d", i, r, e)
	}
	v := objective.Vector{}.With(objective.TotalTime, 1)
	if !a.Insert(v, plan.Entry{}) {
		t.Fatal("insert into reset archive failed")
	}
	if a.CostAt(0) != v {
		t.Fatalf("CostAt(0) = %v, want %v", a.CostAt(0), v)
	}
}

// BenchmarkArchiveInsert measures the hot-path insert of both archive
// representations over an identical candidate stream; run with -benchmem
// to see the allocation gap the refactor closes.
func BenchmarkArchiveInsert(b *testing.B) {
	stream := benchStream(512)
	b.Run("flat", func(b *testing.B) {
		cfg := NewFlatConfig(benchObjs, 1.2)
		a := NewFlat(cfg)
		ent := plan.Entry{}
		for _, v := range stream {
			a.Insert(v, ent)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.Reset()
			for _, v := range stream {
				a.Insert(v, ent)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(stream)), "ns/insert")
	})
	b.Run("legacy", func(b *testing.B) {
		// The legacy archive has no Reset; rebuilding it each round is the
		// representation's natural usage (one archive per table set). Node
		// allocation is part of the measured legacy cost: the old hot path
		// built a *plan.Node per candidate before offering it.
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := NewArchive(benchObjs, 1.2)
			for _, v := range stream {
				a.Insert(&plan.Node{Cost: v})
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(stream)), "ns/insert")
	})
}
