package pareto

import (
	"math"
	"sort"

	"moqo/internal/objective"
)

// FilterPareto returns the Pareto-optimal vectors of a set: those not
// strictly dominated by any other vector. Duplicate cost vectors are kept
// once. Useful as an oracle in tests and for frontier exports.
func FilterPareto(vs []objective.Vector, objs objective.Set) []objective.Vector {
	var out []objective.Vector
	for i, v := range vs {
		dominated := false
		duplicate := false
		for j, w := range vs {
			if w.StrictlyDominates(v, objs) {
				dominated = true
				break
			}
			if j < i && w.EqualOn(v, objs) {
				duplicate = true
				break
			}
		}
		if !dominated && !duplicate {
			out = append(out, v)
		}
	}
	return out
}

// IsAlphaCover reports whether the candidate frontier is an α-approximate
// Pareto frontier for the reference set: for every reference vector some
// candidate approximately dominates it with precision alpha (paper's
// definition of an α-approximate Pareto set).
func IsAlphaCover(candidate, reference []objective.Vector, alpha float64, objs objective.Set) bool {
	for _, ref := range reference {
		covered := false
		for _, c := range candidate {
			if c.ApproxDominates(ref, alpha, objs) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// CoverFactor returns the smallest alpha such that candidate is an
// alpha-cover of reference (infinity when some reference vector has a zero
// component that no candidate matches). It quantifies how far an
// approximate frontier drifted from the exact one.
func CoverFactor(candidate, reference []objective.Vector, objs objective.Set) float64 {
	worst := 1.0
	for _, ref := range reference {
		best := math.Inf(1)
		for _, c := range candidate {
			f := 1.0
			ok := true
			for _, o := range objs.IDs() {
				switch {
				case c[o] <= ref[o]:
					// no degradation on this objective
				case ref[o] == 0:
					ok = false
				default:
					f = math.Max(f, c[o]/ref[o])
				}
				if !ok {
					break
				}
			}
			if ok && f < best {
				best = f
			}
		}
		worst = math.Max(worst, best)
	}
	return worst
}

// Hypervolume computes the dominated hypervolume of a two-dimensional
// frontier with respect to a reference point (larger is better). Only the
// two given objectives are considered. It is the standard quality
// indicator for Pareto approximations and is used by tests to compare the
// RTA frontier against the exact one.
func Hypervolume(vs []objective.Vector, o1, o2 objective.ID, ref [2]float64) float64 {
	type pt struct{ x, y float64 }
	var pts []pt
	for _, v := range vs {
		if v[o1] <= ref[0] && v[o2] <= ref[1] {
			pts = append(pts, pt{v[o1], v[o2]})
		}
	}
	if len(pts) == 0 {
		return 0
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].x != pts[j].x {
			return pts[i].x < pts[j].x
		}
		return pts[i].y < pts[j].y
	})
	// Build the non-dominated staircase (x ascending, y strictly
	// decreasing), then integrate the strip under each step.
	var stair []pt
	bestY := math.Inf(1)
	for _, p := range pts {
		if p.y < bestY {
			stair = append(stair, p)
			bestY = p.y
		}
	}
	vol := 0.0
	for i, p := range stair {
		xRight := ref[0]
		if i+1 < len(stair) {
			xRight = stair[i+1].x
		}
		vol += (xRight - p.x) * (ref[1] - p.y)
	}
	return vol
}
