package pareto

import (
	"math"
	"math/rand"
	"testing"

	"moqo/internal/objective"
)

func vec(time, buf float64) objective.Vector {
	return objective.Vector{}.
		With(objective.TotalTime, time).
		With(objective.BufferFootprint, buf)
}

func TestFilterPareto(t *testing.T) {
	vs := []objective.Vector{
		vec(3, 0.5), vec(2, 1), vec(1, 2.5), vec(0.5, 4),
		vec(3, 2), vec(2.5, 3), vec(3.5, 1), vec(2, 1), // dominated + dup
	}
	got := FilterPareto(vs, testObjs)
	if len(got) != 4 {
		t.Fatalf("Pareto frontier has %d points, want 4: %v", len(got), got)
	}
	for _, v := range got {
		for _, w := range vs {
			if w.StrictlyDominates(v, testObjs) {
				t.Errorf("%v is dominated by %v", v, w)
			}
		}
	}
	if FilterPareto(nil, testObjs) != nil {
		t.Error("empty input should give empty frontier")
	}
}

func TestIsAlphaCover(t *testing.T) {
	ref := []objective.Vector{vec(1, 4), vec(2, 2), vec(4, 1)}
	// The reference covers itself at alpha 1.
	if !IsAlphaCover(ref, ref, 1, testObjs) {
		t.Error("a frontier must cover itself")
	}
	cand := []objective.Vector{vec(1.2, 4.8), vec(4.8, 1.2)}
	if !IsAlphaCover(cand, ref, 2.4, testObjs) {
		t.Error("candidate should cover at alpha 2.4 (vec(2,2) covered by (1.2,4.8)? 1.2<=2*2.4 and 4.8<=2*2.4)")
	}
	if IsAlphaCover(cand, ref, 1.1, testObjs) {
		t.Error("candidate should not cover at alpha 1.1")
	}
	if !IsAlphaCover(cand, nil, 1, testObjs) {
		t.Error("empty reference is always covered")
	}
	if IsAlphaCover(nil, ref, 100, testObjs) {
		t.Error("empty candidate covers nothing")
	}
}

func TestCoverFactor(t *testing.T) {
	ref := []objective.Vector{vec(1, 4), vec(4, 1)}
	cand := []objective.Vector{vec(1.5, 4), vec(4, 1)}
	got := CoverFactor(cand, ref, testObjs)
	if math.Abs(got-1.5) > 1e-12 {
		t.Errorf("CoverFactor = %v, want 1.5", got)
	}
	// Self-cover has factor 1.
	if got := CoverFactor(ref, ref, testObjs); got != 1 {
		t.Errorf("self CoverFactor = %v, want 1", got)
	}
	// Consistency with IsAlphaCover.
	if !IsAlphaCover(cand, ref, 1.5+1e-9, testObjs) {
		t.Error("cover factor inconsistent with IsAlphaCover")
	}
	if IsAlphaCover(cand, ref, 1.5-1e-3, testObjs) {
		t.Error("cover factor not tight")
	}
}

func TestCoverFactorZeroComponent(t *testing.T) {
	ref := []objective.Vector{vec(0, 1)}
	cand := []objective.Vector{vec(1, 1)}
	if got := CoverFactor(cand, ref, testObjs); !math.IsInf(got, 1) {
		t.Errorf("zero component not matchable: CoverFactor = %v, want +Inf", got)
	}
	// A candidate that matches the zero exactly works.
	cand2 := []objective.Vector{vec(0, 2)}
	if got := CoverFactor(cand2, ref, testObjs); got != 2 {
		t.Errorf("CoverFactor = %v, want 2", got)
	}
}

func TestHypervolumeKnownValues(t *testing.T) {
	// Single point (1,1) with reference (3,3): area 2x2 = 4.
	vs := []objective.Vector{vec(1, 1)}
	if got := Hypervolume(vs, objective.TotalTime, objective.BufferFootprint, [2]float64{3, 3}); got != 4 {
		t.Errorf("hypervolume = %v, want 4", got)
	}
	// Staircase (1,2),(2,1) with ref (3,3): 2x1 + 1x2 - overlap... compute:
	// strip for (1,2): width (2-1)=1 * height (3-2)=1 => 1
	// strip for (2,1): width (3-2)=1 * height (3-1)=2 => 2
	// plus (1,2) strip from x=1..2 only, total = 1 + 2 = 3... but area
	// dominated by (1,2) alone is (3-1)*(3-2)=2; union = 2+ (3-2)*(2-1)=1
	// => 3. Wait union of both rectangles: rect1 = [1,3]x[2,3] area 2;
	// rect2 = [2,3]x[1,3] area 2; overlap [2,3]x[2,3] = 1 → union 3.
	vs = []objective.Vector{vec(1, 2), vec(2, 1)}
	if got := Hypervolume(vs, objective.TotalTime, objective.BufferFootprint, [2]float64{3, 3}); got != 3 {
		t.Errorf("hypervolume = %v, want 3", got)
	}
	// Points outside the reference box contribute nothing.
	vs = []objective.Vector{vec(5, 5)}
	if got := Hypervolume(vs, objective.TotalTime, objective.BufferFootprint, [2]float64{3, 3}); got != 0 {
		t.Errorf("hypervolume = %v, want 0", got)
	}
	if got := Hypervolume(nil, objective.TotalTime, objective.BufferFootprint, [2]float64{3, 3}); got != 0 {
		t.Errorf("empty hypervolume = %v, want 0", got)
	}
}

func TestHypervolumeDominatedPointsIrrelevant(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		var vs []objective.Vector
		for i := 0; i < 20; i++ {
			vs = append(vs, vec(r.Float64()*3, r.Float64()*3))
		}
		ref := [2]float64{3, 3}
		all := Hypervolume(vs, objective.TotalTime, objective.BufferFootprint, ref)
		frontier := Hypervolume(FilterPareto(vs, testObjs), objective.TotalTime, objective.BufferFootprint, ref)
		if math.Abs(all-frontier) > 1e-9 {
			t.Fatalf("trial %d: hypervolume differs with dominated points: %v vs %v", trial, all, frontier)
		}
	}
}

func TestHypervolumeMonotoneInPoints(t *testing.T) {
	// Adding a point never decreases the hypervolume.
	r := rand.New(rand.NewSource(17))
	ref := [2]float64{10, 10}
	var vs []objective.Vector
	prev := 0.0
	for i := 0; i < 100; i++ {
		vs = append(vs, vec(r.Float64()*10, r.Float64()*10))
		hv := Hypervolume(vs, objective.TotalTime, objective.BufferFootprint, ref)
		if hv < prev-1e-9 {
			t.Fatalf("hypervolume decreased: %v -> %v", prev, hv)
		}
		prev = hv
	}
}
