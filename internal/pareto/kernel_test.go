package pareto

import (
	"fmt"
	"math/rand"
	"testing"

	"moqo/internal/objective"
	"moqo/internal/plan"
)

// kernelObjSets spans every Insert dispatch path: the two- through
// six-wide specialized kernels, the generic path (7 active objectives),
// and the full nine-objective kernel.
var kernelObjSets = []struct {
	name string
	objs objective.Set
}{
	{"w2", objective.NewSet(objective.TotalTime, objective.BufferFootprint)},
	{"w3", objective.NewSet(objective.TotalTime, objective.BufferFootprint, objective.Energy)},
	{"w4", objective.NewSet(objective.TotalTime, objective.IOLoad, objective.CPULoad, objective.Energy)},
	{"w5", objective.NewSet(objective.TotalTime, objective.StartupTime, objective.IOLoad,
		objective.CPULoad, objective.Energy)},
	{"w6", objective.NewSet(objective.TotalTime, objective.StartupTime, objective.IOLoad,
		objective.CPULoad, objective.BufferFootprint, objective.Energy)},
	{"w7", objective.NewSet(objective.TotalTime, objective.StartupTime, objective.IOLoad,
		objective.CPULoad, objective.DiskFootprint, objective.BufferFootprint, objective.Energy)},
	{"w9", objective.AllSet()},
}

// TestKernelDispatch pins the kernel each objective width resolves to.
func TestKernelDispatch(t *testing.T) {
	want := map[string]kernelKind{
		"w2": kernel2, "w3": kernel3, "w4": kernel4, "w5": kernel5,
		"w6": kernel6, "w7": kernelGeneric, "w9": kernelFull,
	}
	for _, tc := range kernelObjSets {
		if got := NewFlatConfig(tc.objs, 1.2).kind; got != want[tc.name] {
			t.Errorf("%s: kernel kind %d, want %d", tc.name, got, want[tc.name])
		}
	}
}

// TestKernelMatchesGenericOracle drives random cost streams through the
// specialized Insert and through insertGeneric (the retained early-exit
// scalar loops) on twin archives, demanding identical decisions, frontiers,
// and counters after every insert — the differential guarantee that the
// branch-reduced kernels are bit-for-bit the generic loops.
func TestKernelMatchesGenericOracle(t *testing.T) {
	for _, tc := range kernelObjSets {
		for _, alpha := range []float64{1, 1.3} {
			for seed := int64(0); seed < 10; seed++ {
				t.Run(fmt.Sprintf("%s/alpha=%v/seed=%d", tc.name, alpha, seed), func(t *testing.T) {
					r := rand.New(rand.NewSource(9000 + seed))
					stream := randomStream(r, 400, tc.objs)
					fast := NewFlat(NewFlatConfig(tc.objs, alpha))
					oracle := NewFlat(NewFlatConfig(tc.objs, alpha))
					for i, v := range stream {
						gotF := fast.Insert(v, plan.Entry{Op: int32(i)})
						gotO := oracle.insertGeneric(v, plan.Entry{Op: int32(i)})
						if gotF != gotO {
							t.Fatalf("insert %d: kernel stored=%v, oracle stored=%v", i, gotF, gotO)
						}
						if fast.Len() != oracle.Len() {
							t.Fatalf("insert %d: kernel len %d != oracle len %d", i, fast.Len(), oracle.Len())
						}
					}
					fi, fr, fe := fast.Stats()
					oi, or, oe := oracle.Stats()
					if fi != oi || fr != or || fe != oe {
						t.Fatalf("counters differ: kernel (ins=%d rej=%d ev=%d), oracle (ins=%d rej=%d ev=%d)",
							fi, fr, fe, oi, or, oe)
					}
					ff, of := fast.Frontier(), oracle.Frontier()
					for i := range ff {
						if ff[i] != of[i] {
							t.Fatalf("frontier entry %d differs:\nkernel %v\noracle %v", i, ff[i], of[i])
						}
					}
					for i := 0; i < fast.Len(); i++ {
						if fast.EntryAt(int32(i)) != oracle.EntryAt(int32(i)) {
							t.Fatalf("entry %d differs", i)
						}
					}
				})
			}
		}
	}
}

// kernelStream pre-generates a stream for benchmarking one objective set.
func kernelStream(objs objective.Set, n int) []objective.Vector {
	return randomStream(rand.New(rand.NewSource(77)), n, objs)
}

// BenchmarkDominanceKernel measures the rejection scan alone — the archive
// is frozen at a fixed size and every probe is approximately dominated, so
// the scan runs to a hit (or the full archive) with no mutation. Sweeps the
// specialized widths and the generic path across archive sizes.
func BenchmarkDominanceKernel(b *testing.B) {
	for _, tc := range kernelObjSets {
		for _, size := range []int{16, 64, 256} {
			b.Run(fmt.Sprintf("%s/n=%d", tc.name, size), func(b *testing.B) {
				cfg := NewFlatConfig(tc.objs, 1.2)
				a := NewFlat(cfg)
				// Mutually non-dominating rows: row i trades objective ids[0]
				// against the rest, so the archive stays exactly size long.
				ids := tc.objs.IDs()
				for i := 0; i < size; i++ {
					var v objective.Vector
					for k, o := range ids {
						if k == 0 {
							v[o] = float64(1 + i)
						} else {
							v[o] = float64(1 + size - i)
						}
					}
					a.Insert(v, plan.Entry{Op: int32(i)})
				}
				if a.Len() != size {
					b.Fatalf("archive size %d, want %d", a.Len(), size)
				}
				// A probe dominated by the middle row: the scan hits halfway.
				var probe objective.Vector
				for k, o := range ids {
					if k == 0 {
						probe[o] = float64(1 + size/2)
					} else {
						probe[o] = float64(1 + size - size/2)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if a.Insert(probe, plan.Entry{}) {
						b.Fatal("probe must be rejected")
					}
				}
			})
		}
	}
}

// BenchmarkFlatInsert measures the full Insert cycle (rejection scan,
// eviction compaction, append) over replayed random streams, across
// active-objective widths and stream lengths. Reset keeps the backing
// arrays, so steady-state iterations are allocation-free.
func BenchmarkFlatInsert(b *testing.B) {
	for _, tc := range kernelObjSets {
		for _, n := range []int{100, 1000} {
			b.Run(fmt.Sprintf("%s/stream=%d", tc.name, n), func(b *testing.B) {
				stream := kernelStream(tc.objs, n)
				cfg := NewFlatConfig(tc.objs, 1.2)
				a := NewFlat(cfg)
				for i, v := range stream { // warm-up sizes the backing arrays
					a.Insert(v, plan.Entry{Op: int32(i)})
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					a.Reset()
					for j, v := range stream {
						a.Insert(v, plan.Entry{Op: int32(j)})
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/insert")
			})
		}
	}
}
