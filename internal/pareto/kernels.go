package pareto

import "moqo/internal/objective"

// Branch-reduced dominance kernels for FlatArchive.Insert.
//
// Insert spends its time in two scans over the stride-9 cost rows: the
// approximate-dominance rejection scan (does any stored row r satisfy
// r[o] <= c[o]*alpha[o] on every active objective?) and the exact-dominance
// eviction scan (which stored rows satisfy c[o] <= r[o] on every active
// objective?). The generic loops branch per objective per row, which stalls
// the pipeline on unpredictable comparisons and blocks vectorization.
//
// The kernels below restructure both scans for the common active-objective
// widths — 2 (the bench default), 3 (the TPC-H triple), 4 through 6 (the
// remaining workload widths), and full 9 — so that
// each row contributes one flag computed without data-dependent branches:
// every comparison becomes a SETcc-style 0/1 value (b2u) and the per-
// objective results are combined with integer AND. The only branch left per
// row (or per unrolled row group) tests the combined flag, which is highly
// predictable (almost always "keep scanning"). Per-candidate thresholds
// t[k] = c[o_k]*alpha[k] are hoisted out of the row loop; the generic path
// computed the identical product per row, so hoisting cannot change results
// (same inputs, same operation, same rounding).
//
// The generic early-exit loops survive as insertGeneric, the differential
// oracle: TestKernelMatchesGenericOracle drives random streams through both
// paths and demands bit-identical archives and counters.

// kernelKind selects the specialized Insert path, resolved once per
// FlatConfig so the hot loop dispatches on a plain switch.
type kernelKind uint8

const (
	kernelGeneric kernelKind = iota // any objective subset; early-exit scalar loops
	kernel2                         // exactly two active objectives
	kernel3                         // exactly three active objectives
	kernel4                         // exactly four active objectives
	kernel5                         // exactly five active objectives
	kernel6                         // exactly six active objectives
	kernelFull                      // all nine objectives active
)

// resolveKernel picks the widest specialized kernel that matches the
// active-objective layout.
func resolveKernel(ids []objective.ID) kernelKind {
	switch len(ids) {
	case 2:
		return kernel2
	case 3:
		return kernel3
	case 4:
		return kernel4
	case 5:
		return kernel5
	case 6:
		return kernel6
	case stride:
		return kernelFull
	default:
		return kernelGeneric
	}
}

// b2u converts a comparison result to 0/1 without a data-dependent branch
// (the compiler lowers this to a flag-materializing SETcc when inlined).
func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// anyRowLeq2 reports whether any stride-9 row in costs is <= the two
// thresholds on both active objectives — the rejection scan for two-wide
// configurations. Rows are processed four at a time; each row folds into a
// branch-free flag, and one predictable branch tests the group.
func anyRowLeq2(costs []float64, o0, o1 int, t0, t1 float64) bool {
	n := len(costs)
	i := 0
	for ; i+4*stride <= n; i += 4 * stride {
		f0 := b2u(costs[i+o0] <= t0) & b2u(costs[i+o1] <= t1)
		f1 := b2u(costs[i+stride+o0] <= t0) & b2u(costs[i+stride+o1] <= t1)
		f2 := b2u(costs[i+2*stride+o0] <= t0) & b2u(costs[i+2*stride+o1] <= t1)
		f3 := b2u(costs[i+3*stride+o0] <= t0) & b2u(costs[i+3*stride+o1] <= t1)
		if f0|f1|f2|f3 != 0 {
			return true
		}
	}
	for ; i < n; i += stride {
		if b2u(costs[i+o0] <= t0)&b2u(costs[i+o1] <= t1) != 0 {
			return true
		}
	}
	return false
}

// anyRowLeq3 is anyRowLeq2 for three active objectives.
func anyRowLeq3(costs []float64, o0, o1, o2 int, t0, t1, t2 float64) bool {
	n := len(costs)
	i := 0
	for ; i+4*stride <= n; i += 4 * stride {
		f0 := b2u(costs[i+o0] <= t0) & b2u(costs[i+o1] <= t1) & b2u(costs[i+o2] <= t2)
		f1 := b2u(costs[i+stride+o0] <= t0) & b2u(costs[i+stride+o1] <= t1) & b2u(costs[i+stride+o2] <= t2)
		f2 := b2u(costs[i+2*stride+o0] <= t0) & b2u(costs[i+2*stride+o1] <= t1) & b2u(costs[i+2*stride+o2] <= t2)
		f3 := b2u(costs[i+3*stride+o0] <= t0) & b2u(costs[i+3*stride+o1] <= t1) & b2u(costs[i+3*stride+o2] <= t2)
		if f0|f1|f2|f3 != 0 {
			return true
		}
	}
	for ; i < n; i += stride {
		if b2u(costs[i+o0] <= t0)&b2u(costs[i+o1] <= t1)&b2u(costs[i+o2] <= t2) != 0 {
			return true
		}
	}
	return false
}

// anyRowLeq4 is anyRowLeq2 for four active objectives.
func anyRowLeq4(costs []float64, o0, o1, o2, o3 int, t0, t1, t2, t3 float64) bool {
	n := len(costs)
	i := 0
	for ; i+4*stride <= n; i += 4 * stride {
		f0 := b2u(costs[i+o0] <= t0) & b2u(costs[i+o1] <= t1) & b2u(costs[i+o2] <= t2) & b2u(costs[i+o3] <= t3)
		f1 := b2u(costs[i+stride+o0] <= t0) & b2u(costs[i+stride+o1] <= t1) & b2u(costs[i+stride+o2] <= t2) & b2u(costs[i+stride+o3] <= t3)
		f2 := b2u(costs[i+2*stride+o0] <= t0) & b2u(costs[i+2*stride+o1] <= t1) & b2u(costs[i+2*stride+o2] <= t2) & b2u(costs[i+2*stride+o3] <= t3)
		f3 := b2u(costs[i+3*stride+o0] <= t0) & b2u(costs[i+3*stride+o1] <= t1) & b2u(costs[i+3*stride+o2] <= t2) & b2u(costs[i+3*stride+o3] <= t3)
		if f0|f1|f2|f3 != 0 {
			return true
		}
	}
	for ; i < n; i += stride {
		if b2u(costs[i+o0] <= t0)&b2u(costs[i+o1] <= t1)&b2u(costs[i+o2] <= t2)&b2u(costs[i+o3] <= t3) != 0 {
			return true
		}
	}
	return false
}

// anyRowLeq5 is anyRowLeq2 for five active objectives. From this width on
// the per-row flag already costs five comparisons, so rows are processed
// two at a time rather than four — the wider unroll stops paying for its
// register pressure.
func anyRowLeq5(costs []float64, o0, o1, o2, o3, o4 int, t0, t1, t2, t3, t4 float64) bool {
	n := len(costs)
	i := 0
	for ; i+2*stride <= n; i += 2 * stride {
		f0 := b2u(costs[i+o0] <= t0) & b2u(costs[i+o1] <= t1) & b2u(costs[i+o2] <= t2) &
			b2u(costs[i+o3] <= t3) & b2u(costs[i+o4] <= t4)
		f1 := b2u(costs[i+stride+o0] <= t0) & b2u(costs[i+stride+o1] <= t1) & b2u(costs[i+stride+o2] <= t2) &
			b2u(costs[i+stride+o3] <= t3) & b2u(costs[i+stride+o4] <= t4)
		if f0|f1 != 0 {
			return true
		}
	}
	for ; i < n; i += stride {
		if b2u(costs[i+o0] <= t0)&b2u(costs[i+o1] <= t1)&b2u(costs[i+o2] <= t2)&
			b2u(costs[i+o3] <= t3)&b2u(costs[i+o4] <= t4) != 0 {
			return true
		}
	}
	return false
}

// anyRowLeq6 is anyRowLeq5 for six active objectives.
func anyRowLeq6(costs []float64, o0, o1, o2, o3, o4, o5 int, t0, t1, t2, t3, t4, t5 float64) bool {
	n := len(costs)
	i := 0
	for ; i+2*stride <= n; i += 2 * stride {
		f0 := b2u(costs[i+o0] <= t0) & b2u(costs[i+o1] <= t1) & b2u(costs[i+o2] <= t2) &
			b2u(costs[i+o3] <= t3) & b2u(costs[i+o4] <= t4) & b2u(costs[i+o5] <= t5)
		f1 := b2u(costs[i+stride+o0] <= t0) & b2u(costs[i+stride+o1] <= t1) & b2u(costs[i+stride+o2] <= t2) &
			b2u(costs[i+stride+o3] <= t3) & b2u(costs[i+stride+o4] <= t4) & b2u(costs[i+stride+o5] <= t5)
		if f0|f1 != 0 {
			return true
		}
	}
	for ; i < n; i += stride {
		if b2u(costs[i+o0] <= t0)&b2u(costs[i+o1] <= t1)&b2u(costs[i+o2] <= t2)&
			b2u(costs[i+o3] <= t3)&b2u(costs[i+o4] <= t4)&b2u(costs[i+o5] <= t5) != 0 {
			return true
		}
	}
	return false
}

// anyRowLeqFull is the rejection scan with all nine objectives active: the
// thresholds array is indexed directly by objective, and a row folds its
// nine comparisons into one flag with no early exit inside the row.
func anyRowLeqFull(costs []float64, t *[stride]float64) bool {
	for i := 0; i < len(costs); i += stride {
		f := b2u(costs[i] <= t[0]) & b2u(costs[i+1] <= t[1]) & b2u(costs[i+2] <= t[2]) &
			b2u(costs[i+3] <= t[3]) & b2u(costs[i+4] <= t[4]) & b2u(costs[i+5] <= t[5]) &
			b2u(costs[i+6] <= t[6]) & b2u(costs[i+7] <= t[7]) & b2u(costs[i+8] <= t[8])
		if f != 0 {
			return true
		}
	}
	return false
}

// anyRowLeqGeneric is the rejection scan for arbitrary objective subsets —
// the original early-exit loop, also serving as the differential oracle for
// the specialized kernels above.
func anyRowLeqGeneric(costs []float64, ids []objective.ID, t *[stride]float64) bool {
	for i := 0; i < len(costs); i += stride {
		dominates := true
		for k, o := range ids {
			if costs[i+int(o)] > t[k] {
				dominates = false
				break
			}
		}
		if dominates {
			return true
		}
	}
	return false
}

// evict2 is the eviction-and-compaction scan for two-wide configurations:
// rows the candidate dominates (c <= row on both active objectives) are
// dropped, survivors are compacted in place preserving order. The per-row
// dominance flag is branch-free; the compaction branch on it remains, since
// compaction is inherently sequential.
func (a *FlatArchive) evict2(o0, o1 int, c0, c1 float64) {
	out := 0
	n := len(a.entries)
	for i := 0; i < n; i++ {
		base := i * stride
		if b2u(c0 <= a.costs[base+o0])&b2u(c1 <= a.costs[base+o1]) != 0 {
			a.evicted++
			continue
		}
		if out != i {
			copy(a.costs[out*stride:(out+1)*stride], a.costs[base:base+stride])
			a.entries[out] = a.entries[i]
		}
		out++
	}
	a.entries = a.entries[:out]
	a.costs = a.costs[:out*stride]
}

// evict3 is evict2 for three active objectives.
func (a *FlatArchive) evict3(o0, o1, o2 int, c0, c1, c2 float64) {
	out := 0
	n := len(a.entries)
	for i := 0; i < n; i++ {
		base := i * stride
		if b2u(c0 <= a.costs[base+o0])&b2u(c1 <= a.costs[base+o1])&b2u(c2 <= a.costs[base+o2]) != 0 {
			a.evicted++
			continue
		}
		if out != i {
			copy(a.costs[out*stride:(out+1)*stride], a.costs[base:base+stride])
			a.entries[out] = a.entries[i]
		}
		out++
	}
	a.entries = a.entries[:out]
	a.costs = a.costs[:out*stride]
}

// evict4 is evict2 for four active objectives.
func (a *FlatArchive) evict4(o0, o1, o2, o3 int, c0, c1, c2, c3 float64) {
	out := 0
	n := len(a.entries)
	for i := 0; i < n; i++ {
		base := i * stride
		if b2u(c0 <= a.costs[base+o0])&b2u(c1 <= a.costs[base+o1])&
			b2u(c2 <= a.costs[base+o2])&b2u(c3 <= a.costs[base+o3]) != 0 {
			a.evicted++
			continue
		}
		if out != i {
			copy(a.costs[out*stride:(out+1)*stride], a.costs[base:base+stride])
			a.entries[out] = a.entries[i]
		}
		out++
	}
	a.entries = a.entries[:out]
	a.costs = a.costs[:out*stride]
}

// evict5 is evict2 for five active objectives.
func (a *FlatArchive) evict5(o0, o1, o2, o3, o4 int, c0, c1, c2, c3, c4 float64) {
	out := 0
	n := len(a.entries)
	for i := 0; i < n; i++ {
		base := i * stride
		if b2u(c0 <= a.costs[base+o0])&b2u(c1 <= a.costs[base+o1])&b2u(c2 <= a.costs[base+o2])&
			b2u(c3 <= a.costs[base+o3])&b2u(c4 <= a.costs[base+o4]) != 0 {
			a.evicted++
			continue
		}
		if out != i {
			copy(a.costs[out*stride:(out+1)*stride], a.costs[base:base+stride])
			a.entries[out] = a.entries[i]
		}
		out++
	}
	a.entries = a.entries[:out]
	a.costs = a.costs[:out*stride]
}

// evict6 is evict2 for six active objectives.
func (a *FlatArchive) evict6(o0, o1, o2, o3, o4, o5 int, c0, c1, c2, c3, c4, c5 float64) {
	out := 0
	n := len(a.entries)
	for i := 0; i < n; i++ {
		base := i * stride
		if b2u(c0 <= a.costs[base+o0])&b2u(c1 <= a.costs[base+o1])&b2u(c2 <= a.costs[base+o2])&
			b2u(c3 <= a.costs[base+o3])&b2u(c4 <= a.costs[base+o4])&b2u(c5 <= a.costs[base+o5]) != 0 {
			a.evicted++
			continue
		}
		if out != i {
			copy(a.costs[out*stride:(out+1)*stride], a.costs[base:base+stride])
			a.entries[out] = a.entries[i]
		}
		out++
	}
	a.entries = a.entries[:out]
	a.costs = a.costs[:out*stride]
}

// evictFull is the eviction scan with all nine objectives active.
func (a *FlatArchive) evictFull(c *objective.Vector) {
	out := 0
	n := len(a.entries)
	for i := 0; i < n; i++ {
		base := i * stride
		f := b2u(c[0] <= a.costs[base]) & b2u(c[1] <= a.costs[base+1]) & b2u(c[2] <= a.costs[base+2]) &
			b2u(c[3] <= a.costs[base+3]) & b2u(c[4] <= a.costs[base+4]) & b2u(c[5] <= a.costs[base+5]) &
			b2u(c[6] <= a.costs[base+6]) & b2u(c[7] <= a.costs[base+7]) & b2u(c[8] <= a.costs[base+8])
		if f != 0 {
			a.evicted++
			continue
		}
		if out != i {
			copy(a.costs[out*stride:(out+1)*stride], a.costs[base:base+stride])
			a.entries[out] = a.entries[i]
		}
		out++
	}
	a.entries = a.entries[:out]
	a.costs = a.costs[:out*stride]
}

// evictGeneric is the eviction scan for arbitrary objective subsets — the
// original early-exit loop, also the oracle for the specialized kernels.
func (a *FlatArchive) evictGeneric(ids []objective.ID, c *objective.Vector) {
	out := 0
	n := len(a.entries)
	for i := 0; i < n; i++ {
		base := i * stride
		dominated := true
		for _, o := range ids {
			if c[o] > a.costs[base+int(o)] {
				dominated = false
				break
			}
		}
		if dominated {
			a.evicted++
			continue
		}
		if out != i {
			copy(a.costs[out*stride:(out+1)*stride], a.costs[base:base+stride])
			a.entries[out] = a.entries[i]
		}
		out++
	}
	a.entries = a.entries[:out]
	a.costs = a.costs[:out*stride]
}
