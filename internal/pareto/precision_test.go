package pareto

import (
	"math/rand"
	"testing"

	"moqo/internal/objective"
)

func TestPrecisionArchiveAsymmetricPruning(t *testing.T) {
	// Exact on time, coarse (x4) on buffer: a plan slightly better on
	// buffer but equal on time is rejected; a plan better on time is
	// always kept.
	prec := objective.UniformPrecision(1, testObjs).
		With(objective.BufferFootprint, 4)
	a := NewPrecisionArchive(testObjs, prec)
	if !a.Insert(node(10, 100)) {
		t.Fatal("first insert rejected")
	}
	// Buffer 30 is within factor 4 of 100... stored (10,100) approx-
	// dominates (10,30): time 10<=10, buffer 100<=30*4=120. Rejected.
	if a.Insert(node(10, 30)) {
		t.Error("buffer-only improvement within slack should be rejected")
	}
	// Buffer 20: 100 <= 80 fails — kept.
	if !a.Insert(node(10, 20)) {
		t.Error("buffer improvement beyond slack should be kept")
	}
	// Any strict time improvement is kept (exact precision on time).
	if !a.Insert(node(9.99, 100)) {
		t.Error("time improvement should always be kept")
	}
}

func TestPrecisionArchiveUniformMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		alpha := 1 + r.Float64()
		scalar := NewArchive(testObjs, alpha)
		vector := NewPrecisionArchive(testObjs, objective.UniformPrecision(alpha, testObjs))
		for i := 0; i < 100; i++ {
			p := node(0.1+10*r.Float64(), 0.1+10*r.Float64())
			if scalar.Insert(p) != vector.Insert(p) {
				t.Fatalf("trial %d: uniform precision archive diverged from scalar archive", trial)
			}
		}
		if scalar.Len() != vector.Len() {
			t.Fatalf("trial %d: sizes diverged: %d vs %d", trial, scalar.Len(), vector.Len())
		}
	}
}

func TestPrecisionArchiveCover(t *testing.T) {
	// The archive must cover every seen Pareto point within the
	// per-objective precisions.
	r := rand.New(rand.NewSource(37))
	prec := objective.UniformPrecision(1.2, testObjs).
		With(objective.BufferFootprint, 3)
	a := NewPrecisionArchive(testObjs, prec)
	var seen []objective.Vector
	for i := 0; i < 300; i++ {
		p := node(0.1+10*r.Float64(), 0.1+10*r.Float64())
		seen = append(seen, p.Cost)
		a.Insert(p)
	}
	for _, ref := range FilterPareto(seen, testObjs) {
		covered := false
		for _, v := range a.Frontier() {
			if v.ApproxDominatesBy(ref, prec, testObjs) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("Pareto point %v not covered within per-objective precisions",
				ref.FormatOn(testObjs))
		}
	}
}

func TestPrecisionArchivePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("precision < 1 did not panic")
		}
	}()
	NewPrecisionArchive(testObjs, objective.UniformPrecision(0.9, testObjs))
}

func TestPrecisionHelpers(t *testing.T) {
	p := objective.UniformPrecision(2, testObjs)
	if p.Max(testObjs) != 2 {
		t.Errorf("Max = %v", p.Max(testObjs))
	}
	if !p.Valid() {
		t.Error("valid precision rejected")
	}
	r := p.Root(2)
	for _, o := range testObjs.IDs() {
		if r[o] < 1.41 || r[o] > 1.42 {
			t.Errorf("Root(2) = %v", r[o])
		}
	}
	// Root never dips below 1 for exact entries.
	exact := objective.UniformPrecision(1, testObjs).Root(5)
	for _, o := range testObjs.IDs() {
		if exact[o] != 1 {
			t.Errorf("Root of exact precision = %v", exact[o])
		}
	}
	if p.With(objective.TotalTime, 0.5).Valid() {
		t.Error("precision below 1 accepted")
	}
}
