package plan

import (
	"fmt"

	"moqo/internal/objective"
	"moqo/internal/query"
)

// Entry is the compact candidate encoding of the dynamic program's hot
// path. Instead of heap-allocating a *Node tree per candidate, the engine
// describes a candidate by its operator code plus references to the two
// sub-plans it combines: the operand table sets and the sub-plans' indexes
// within the flat archives of those sets. A full Node tree is reconstructed
// from an Entry chain only at frontier extraction (see Materializer), so
// trees exist only for the handful of plans a caller actually sees.
//
// A scan entry has LeftSet == 0 (and no operand references); a join entry
// references both operands, except for index-nested-loop joins whose inner
// side is a synthetic index probe (RightIdx == SyntheticInner) rather than
// a stored sub-plan.
type Entry struct {
	// Op encodes the operator and its parameters: the scan algorithm and
	// sample-rate index for scans, the join algorithm and DOP for joins.
	Op int32
	// LeftIdx/RightIdx are the operand plans' indexes within the archives
	// of LeftSet/RightSet.
	LeftIdx, RightIdx int32
	// LeftSet/RightSet are the operand table sets (both zero for scans).
	LeftSet, RightSet query.TableSet
}

// SyntheticInner marks the inner side of an index-nested-loop join: the
// operand is an index probe of the base relation RightSet, not a stored
// sub-plan, so it carries no archive index.
const SyntheticInner int32 = -1

// opShift separates the algorithm bits of an op code from its parameter
// (sample-rate index or DOP).
const opShift = 8

// ScanEntry encodes a scan operator. rate must be zero or one of
// SampleRates (the engine's plan space admits no other rates).
func ScanEntry(alg ScanAlg, rate float64) Entry {
	return Entry{Op: int32(alg)<<opShift | int32(rateIndex(alg, rate))}
}

// JoinEntry encodes a join of two stored sub-plans.
func JoinEntry(alg JoinAlg, dop int, leftSet query.TableSet, leftIdx int32, rightSet query.TableSet, rightIdx int32) Entry {
	return Entry{
		Op:       int32(alg)<<opShift | int32(dop),
		LeftSet:  leftSet,
		LeftIdx:  leftIdx,
		RightSet: rightSet,
		RightIdx: rightIdx,
	}
}

// IndexNLEntry encodes an index-nested-loop join of a stored outer
// sub-plan with an index probe of the inner base relation.
func IndexNLEntry(leftSet query.TableSet, leftIdx int32, innerRel int) Entry {
	return Entry{
		Op:       int32(IndexNLJoin)<<opShift | 1,
		LeftSet:  leftSet,
		LeftIdx:  leftIdx,
		RightSet: query.Singleton(innerRel),
		RightIdx: SyntheticInner,
	}
}

// rateIndex maps a sampling rate to its index in SampleRates (0 for
// non-sampling scans, whose op code carries no rate).
func rateIndex(alg ScanAlg, rate float64) int {
	if alg != SampleScan {
		return 0
	}
	for i, r := range SampleRates {
		if r == rate {
			return i
		}
	}
	panic(fmt.Sprintf("plan: sample rate %v not in SampleRates", rate))
}

// IsScan reports whether the entry encodes a scan operator.
func (e Entry) IsScan() bool { return e.LeftSet == 0 }

// ScanOp decodes a scan entry's algorithm and sampling rate.
func (e Entry) ScanOp() (ScanAlg, float64) {
	alg := ScanAlg(e.Op >> opShift)
	if alg == SampleScan {
		return alg, SampleRates[e.Op&(1<<opShift-1)]
	}
	return alg, 0
}

// JoinOp decodes a join entry's algorithm and degree of parallelism.
func (e Entry) JoinOp() (JoinAlg, int) {
	return JoinAlg(e.Op >> opShift), int(e.Op & (1<<opShift - 1))
}

// Memo gives the materializer access to the entries and cost vectors an
// engine run stored per table set. It is implemented by the engine's memo
// table over its flat archives.
type Memo interface {
	// EntryAt returns the idx-th entry stored for table set s.
	EntryAt(s query.TableSet, idx int32) Entry
	// CostAt returns the idx-th stored cost vector for table set s.
	CostAt(s query.TableSet, idx int32) objective.Vector
}

// Materializer reconstructs Node trees from compact entries. Sub-plans are
// cached by (table set, index), so plans extracted from the same memo share
// their common subtrees bottom-up — the O(1)-space-per-stored-plan sharing
// of the dynamic program (proof of Theorem 1) survives materialization.
type Materializer struct {
	memo  Memo
	cache map[planRef]*Node
}

type planRef struct {
	set query.TableSet
	idx int32
}

// NewMaterializer creates a materializer over one run's memo.
func NewMaterializer(m Memo) *Materializer {
	return &Materializer{memo: m, cache: make(map[planRef]*Node)}
}

// Plan reconstructs the Node tree of the idx-th plan stored for table set s.
func (mt *Materializer) Plan(s query.TableSet, idx int32) *Node {
	ref := planRef{s, idx}
	if n, ok := mt.cache[ref]; ok {
		return n
	}
	e := mt.memo.EntryAt(s, idx)
	var n *Node
	if e.IsScan() {
		alg, rate := e.ScanOp()
		n = &Node{
			Tables:     s,
			Scan:       alg,
			Relation:   s.First(),
			SampleRate: rate,
			Cost:       mt.memo.CostAt(s, idx),
		}
	} else {
		alg, dop := e.JoinOp()
		var right *Node
		if e.RightIdx == SyntheticInner {
			// Index-nested-loop inner: a plain index-probe marker whose
			// cost is folded into the join (see costmodel.NewIndexNL).
			right = &Node{
				Tables:   e.RightSet,
				Scan:     IndexScan,
				Relation: e.RightSet.First(),
			}
		} else {
			right = mt.Plan(e.RightSet, e.RightIdx)
		}
		n = &Node{
			Tables: s,
			Join:   alg,
			Left:   mt.Plan(e.LeftSet, e.LeftIdx),
			Right:  right,
			DOP:    dop,
			Cost:   mt.memo.CostAt(s, idx),
		}
	}
	mt.cache[ref] = n
	return n
}
