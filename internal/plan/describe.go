package plan

import (
	"encoding/json"
	"fmt"
	"strings"

	"moqo/internal/objective"
	"moqo/internal/query"
)

// Description is a serialization-friendly view of a plan node, produced by
// Describe. It is the stable machine-readable plan format of the library
// (CLI -json output, tooling integrations).
type Description struct {
	Operator string  `json:"operator"`
	Relation string  `json:"relation,omitempty"`
	Sample   float64 `json:"sample_rate,omitempty"`
	DOP      int     `json:"dop,omitempty"`
	// Rows is the estimated output cardinality of the node.
	Rows float64 `json:"rows"`
	// Cost maps objective names to estimated costs.
	Cost map[string]float64 `json:"cost"`
	// Children are the operand sub-plans (empty for scans).
	Children []*Description `json:"children,omitempty"`
}

// Describe converts the plan into its serialization-friendly form. Only
// the objectives of objs appear in the per-node cost maps.
func (n *Node) Describe(q *query.Query, objs objective.Set) *Description {
	d := &Description{
		Operator: n.OperatorLabel(),
		Rows:     q.EstimateRows(n.Tables),
		Cost:     make(map[string]float64, objs.Len()),
	}
	for _, o := range objs.IDs() {
		d.Cost[o.String()] = n.Cost[o]
	}
	if n.IsScan() {
		d.Relation = q.Relations[n.Relation].Alias
		if n.Scan == SampleScan {
			d.Sample = n.SampleRate
		}
		return d
	}
	if n.DOP > 1 {
		d.DOP = n.DOP
	}
	d.Children = []*Description{
		n.Left.Describe(q, objs),
		n.Right.Describe(q, objs),
	}
	return d
}

// JSON renders the plan as indented JSON.
func (n *Node) JSON(q *query.Query, objs objective.Set) ([]byte, error) {
	return json.MarshalIndent(n.Describe(q, objs), "", "  ")
}

// Explain renders the plan as an EXPLAIN-style indented tree with
// estimated cardinalities and per-node costs for the active objectives —
// the human-facing counterpart of JSON.
func (n *Node) Explain(q *query.Query, objs objective.Set) string {
	var b strings.Builder
	n.explain(q, objs, &b, 0)
	return b.String()
}

func (n *Node) explain(q *query.Query, objs objective.Set, b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if n.IsScan() {
		fmt.Fprintf(b, "%s %s", n.OperatorLabel(), q.Relations[n.Relation].Alias)
	} else {
		b.WriteString(n.OperatorLabel())
	}
	fmt.Fprintf(b, "  (rows=%.4g)", q.EstimateRows(n.Tables))
	fmt.Fprintf(b, " %s\n", n.Cost.FormatOn(objs))
	if !n.IsScan() {
		n.Left.explain(q, objs, b, depth+1)
		n.Right.explain(q, objs, b, depth+1)
	}
}
