package plan

import (
	"encoding/json"
	"strings"
	"testing"

	"moqo/internal/objective"
	"moqo/internal/query"
)

var describeObjs = objective.NewSet(objective.TotalTime, objective.TupleLoss)

func describedPlan(t *testing.T) (*Node, *query.Query) {
	t.Helper()
	q := testQuery(t)
	sample := &Node{Tables: query.Singleton(2), Scan: SampleScan, Relation: 2, SampleRate: 0.03}
	sample.Cost = objective.Vector{}.With(objective.TupleLoss, 0.97)
	inner := join(HashJoin, 2, scan(0, SeqScan), scan(1, IndexScan))
	inner.Cost = objective.Vector{}.With(objective.TotalTime, 40)
	root := join(SortMergeJoin, 1, inner, sample)
	root.Cost = objective.Vector{}.With(objective.TotalTime, 123.5).With(objective.TupleLoss, 0.97)
	return root, q
}

func TestDescribe(t *testing.T) {
	p, q := describedPlan(t)
	d := p.Describe(q, describeObjs)
	if d.Operator != "SMJ" {
		t.Errorf("root operator = %q", d.Operator)
	}
	if d.Cost["total_time"] != 123.5 || d.Cost["tuple_loss"] != 0.97 {
		t.Errorf("root cost map wrong: %v", d.Cost)
	}
	if _, present := d.Cost["energy"]; present {
		t.Error("inactive objective leaked into cost map")
	}
	if len(d.Children) != 2 {
		t.Fatalf("root children = %d", len(d.Children))
	}
	hash := d.Children[0]
	if hash.Operator != "HashJ(dop=2)" || hash.DOP != 2 {
		t.Errorf("hash child = %+v", hash)
	}
	smp := d.Children[1]
	if smp.Relation != "l" || smp.Sample != 0.03 {
		t.Errorf("sample child = %+v", smp)
	}
	if d.Rows <= 0 || smp.Rows <= 0 {
		t.Error("estimated rows missing")
	}
}

func TestJSONRoundTrips(t *testing.T) {
	p, q := describedPlan(t)
	raw, err := p.JSON(q, describeObjs)
	if err != nil {
		t.Fatal(err)
	}
	var back Description
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if back.Operator != "SMJ" || len(back.Children) != 2 {
		t.Errorf("round trip lost structure: %+v", back)
	}
	if !strings.Contains(string(raw), "\"sample_rate\": 0.03") {
		t.Errorf("JSON missing sample rate:\n%s", raw)
	}
}

func TestExplain(t *testing.T) {
	p, q := describedPlan(t)
	out := p.Explain(q, describeObjs)
	for _, want := range []string{"SMJ", "HashJ(dop=2)", "SampleScan(3%)", "rows=", "total_time=123.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// Children indented below parents.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[1], "  ") {
		t.Error("child not indented")
	}
}
