// Package plan defines query plans and the physical operator space the
// optimizer searches. Mirroring the paper's extended Postgres plan space
// (Section 4), scans come in three flavors — sequential, index, and a
// sampling scan parameterized by a rate between 1% and 5% (the operator
// that makes tuple loss a real tradeoff) — and joins come in four flavors
// — hash, sort-merge, and block-nested-loop joins parameterized by a
// degree of parallelism up to four cores (MaxDOP), plus the inherently
// sequential index-nested-loop join.
//
// A plan node carries its nine-dimensional cost vector (objective.Vector)
// in O(1) space — an operator descriptor, two child pointers and the
// vector — which is what the memory accounting of the paper's Theorem 1
// assumes. The package also renders plans: indented operator trees,
// EXPLAIN-style trees with per-node cardinalities and costs, and a JSON
// encoding used by the cmd/moqo CLI and the moqod service.
package plan
