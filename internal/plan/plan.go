package plan

import (
	"fmt"
	"strings"

	"moqo/internal/objective"
	"moqo/internal/query"
)

// ScanAlg enumerates scan operator algorithms.
type ScanAlg int

// Scan algorithms.
const (
	SeqScan ScanAlg = iota
	IndexScan
	SampleScan
)

func (a ScanAlg) String() string {
	switch a {
	case SeqScan:
		return "SeqScan"
	case IndexScan:
		return "IdxScan"
	case SampleScan:
		return "SampleScan"
	default:
		return fmt.Sprintf("ScanAlg(%d)", int(a))
	}
}

// JoinAlg enumerates join operator algorithms.
type JoinAlg int

// Join algorithms.
const (
	HashJoin JoinAlg = iota
	SortMergeJoin
	IndexNLJoin
	BlockNLJoin
)

func (a JoinAlg) String() string {
	switch a {
	case HashJoin:
		return "HashJ"
	case SortMergeJoin:
		return "SMJ"
	case IndexNLJoin:
		return "IdxNL"
	case BlockNLJoin:
		return "BNL"
	default:
		return fmt.Sprintf("JoinAlg(%d)", int(a))
	}
}

// MaxDOP is the maximal degree of parallelism per operator ("up to 4 cores
// can be used per operation").
const MaxDOP = 4

// SampleRates are the available sampling-scan rates ("scans between 1% and
// 5% of a base table").
var SampleRates = []float64{0.01, 0.02, 0.03, 0.04, 0.05}

// Node is an immutable query plan node: either a scan of one relation or a
// join of two sub-plans. Plans are shared bottom-up by the dynamic program,
// so a stored plan needs O(1) space beyond its sub-plans, matching the
// paper's space accounting (proof of Theorem 1).
type Node struct {
	// Tables is the set of relations the plan produces.
	Tables query.TableSet

	// Scan fields (Left == nil).
	Scan       ScanAlg
	Relation   int     // relation index within the query
	SampleRate float64 // only for SampleScan

	// Join fields (Left != nil).
	Join        JoinAlg
	Left, Right *Node
	DOP         int // degree of parallelism; 1 for sequential operators

	// Cost is the plan's multi-dimensional cost vector.
	Cost objective.Vector
}

// IsScan reports whether the node is a leaf scan.
func (n *Node) IsScan() bool { return n.Left == nil }

// OperatorLabel renders the node's operator with its parameters, e.g.
// "HashJ(dop=2)" or "SampleScan(3%)".
func (n *Node) OperatorLabel() string {
	if n.IsScan() {
		if n.Scan == SampleScan {
			return fmt.Sprintf("%s(%.0f%%)", n.Scan, n.SampleRate*100)
		}
		return n.Scan.String()
	}
	if n.DOP > 1 {
		return fmt.Sprintf("%s(dop=%d)", n.Join, n.DOP)
	}
	return n.Join.String()
}

// NumOperators returns the number of operator nodes in the plan tree.
func (n *Node) NumOperators() int {
	if n.IsScan() {
		return 1
	}
	return 1 + n.Left.NumOperators() + n.Right.NumOperators()
}

// Depth returns the height of the plan tree (a single scan has depth 1).
func (n *Node) Depth() int {
	if n.IsScan() {
		return 1
	}
	l, r := n.Left.Depth(), n.Right.Depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

// LeftDeep reports whether the plan is left-deep: every right join operand
// is a base-table scan.
func (n *Node) LeftDeep() bool {
	if n.IsScan() {
		return true
	}
	return n.Right.IsScan() && n.Left.LeftDeep()
}

// Scans returns the scan leaves of the plan in left-to-right order.
func (n *Node) Scans() []*Node {
	if n.IsScan() {
		return []*Node{n}
	}
	return append(n.Left.Scans(), n.Right.Scans()...)
}

// Validate checks structural invariants against the query: partitioned
// table sets, relation indexes in range, sample rates in the legal range,
// DOP within limits, and non-negative finite costs.
func (n *Node) Validate(q *query.Query) error {
	if !n.Cost.Valid() {
		return fmt.Errorf("plan %v: invalid cost vector", n.Tables)
	}
	if n.IsScan() {
		if n.Relation < 0 || n.Relation >= q.NumRelations() {
			return fmt.Errorf("scan of unknown relation %d", n.Relation)
		}
		if n.Tables != query.Singleton(n.Relation) {
			return fmt.Errorf("scan table set %v does not match relation %d", n.Tables, n.Relation)
		}
		if n.Scan == SampleScan && (n.SampleRate < SampleRates[0] || n.SampleRate > SampleRates[len(SampleRates)-1]) {
			return fmt.Errorf("sample rate %v out of range", n.SampleRate)
		}
		return nil
	}
	if n.Right == nil {
		return fmt.Errorf("join node with single child")
	}
	if !n.Left.Tables.Disjoint(n.Right.Tables) {
		return fmt.Errorf("join operands overlap: %v and %v", n.Left.Tables, n.Right.Tables)
	}
	if n.Left.Tables.Union(n.Right.Tables) != n.Tables {
		return fmt.Errorf("join table set %v is not the union of its operands", n.Tables)
	}
	if n.DOP < 1 || n.DOP > MaxDOP {
		return fmt.Errorf("join DOP %d out of range", n.DOP)
	}
	if n.Join == IndexNLJoin && n.DOP != 1 {
		return fmt.Errorf("index-nested-loop join must be sequential")
	}
	if err := n.Left.Validate(q); err != nil {
		return err
	}
	return n.Right.Validate(q)
}

// Format renders the plan as an indented operator tree with relation
// aliases, the representation used by the Figure 3 experiment.
func (n *Node) Format(q *query.Query) string {
	var b strings.Builder
	n.format(q, &b, 0)
	return b.String()
}

func (n *Node) format(q *query.Query, b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if n.IsScan() {
		fmt.Fprintf(b, "%s %s\n", n.OperatorLabel(), q.Relations[n.Relation].Alias)
		return
	}
	fmt.Fprintf(b, "%s\n", n.OperatorLabel())
	n.Left.format(q, b, depth+1)
	n.Right.format(q, b, depth+1)
}

// Signature renders the plan structure compactly on one line, e.g.
// "HashJ(SeqScan c, IdxNL(SeqScan o, IdxScan l))". Useful for comparing
// plans in tests.
func (n *Node) Signature(q *query.Query) string {
	if n.IsScan() {
		return n.OperatorLabel() + " " + q.Relations[n.Relation].Alias
	}
	return n.OperatorLabel() + "(" + n.Left.Signature(q) + ", " + n.Right.Signature(q) + ")"
}
