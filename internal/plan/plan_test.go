package plan

import (
	"strings"
	"testing"

	"moqo/internal/catalog"
	"moqo/internal/objective"
	"moqo/internal/query"
)

func testQuery(t testing.TB) *query.Query {
	t.Helper()
	cat := catalog.TPCH(1)
	q := query.New("plan_test", cat)
	c := q.AddRelation(catalog.Customer, "c", 1)
	o := q.AddRelation(catalog.Orders, "o", 1)
	l := q.AddRelation(catalog.Lineitem, "l", 1)
	q.AddFKJoin(o, "o_custkey", c, "c_custkey")
	q.AddFKJoin(l, "l_orderkey", o, "o_orderkey")
	return q
}

func scan(rel int, alg ScanAlg) *Node {
	return &Node{Tables: query.Singleton(rel), Scan: alg, Relation: rel}
}

func join(alg JoinAlg, dop int, l, r *Node) *Node {
	return &Node{
		Tables: l.Tables.Union(r.Tables),
		Join:   alg, Left: l, Right: r, DOP: dop,
	}
}

func TestOperatorLabels(t *testing.T) {
	cases := []struct {
		n    *Node
		want string
	}{
		{scan(0, SeqScan), "SeqScan"},
		{scan(0, IndexScan), "IdxScan"},
		{&Node{Tables: query.Singleton(0), Scan: SampleScan, SampleRate: 0.03}, "SampleScan(3%)"},
		{join(HashJoin, 1, scan(0, SeqScan), scan(1, SeqScan)), "HashJ"},
		{join(HashJoin, 2, scan(0, SeqScan), scan(1, SeqScan)), "HashJ(dop=2)"},
		{join(SortMergeJoin, 4, scan(0, SeqScan), scan(1, SeqScan)), "SMJ(dop=4)"},
		{join(IndexNLJoin, 1, scan(0, SeqScan), scan(1, IndexScan)), "IdxNL"},
		{join(BlockNLJoin, 1, scan(0, SeqScan), scan(1, SeqScan)), "BNL"},
	}
	for _, c := range cases {
		if got := c.n.OperatorLabel(); got != c.want {
			t.Errorf("OperatorLabel = %q, want %q", got, c.want)
		}
	}
}

func TestAlgStringsUnknown(t *testing.T) {
	if ScanAlg(99).String() != "ScanAlg(99)" {
		t.Error("unknown scan alg String")
	}
	if JoinAlg(99).String() != "JoinAlg(99)" {
		t.Error("unknown join alg String")
	}
}

func TestTreeShapeAccessors(t *testing.T) {
	c, o, l := scan(0, SeqScan), scan(1, SeqScan), scan(2, IndexScan)
	co := join(HashJoin, 1, c, o)
	full := join(HashJoin, 1, co, l)

	if !c.IsScan() || full.IsScan() {
		t.Error("IsScan wrong")
	}
	if got := full.NumOperators(); got != 5 {
		t.Errorf("NumOperators = %d, want 5", got)
	}
	if got := full.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	if !full.LeftDeep() {
		t.Error("left-deep plan not recognized")
	}
	bushy := join(HashJoin, 1, c, join(HashJoin, 1, o, l))
	if bushy.LeftDeep() {
		t.Error("bushy plan misreported left-deep")
	}
	scans := full.Scans()
	if len(scans) != 3 || scans[0] != c || scans[1] != o || scans[2] != l {
		t.Errorf("Scans order wrong: %v", scans)
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	q := testQuery(t)
	p := join(HashJoin, 2, join(SortMergeJoin, 1, scan(0, SeqScan), scan(1, SeqScan)), scan(2, IndexScan))
	if err := p.Validate(q); err != nil {
		t.Errorf("well-formed plan rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	q := testQuery(t)
	cases := map[string]*Node{
		"overlapping operands": {
			Tables: query.NewTableSet(0, 1),
			Join:   HashJoin, DOP: 1,
			Left:  scan(0, SeqScan),
			Right: scan(0, SeqScan),
		},
		"wrong union": {
			Tables: query.NewTableSet(0, 1, 2),
			Join:   HashJoin, DOP: 1,
			Left:  scan(0, SeqScan),
			Right: scan(1, SeqScan),
		},
		"dop too high": func() *Node {
			n := join(HashJoin, MaxDOP+1, scan(0, SeqScan), scan(1, SeqScan))
			return n
		}(),
		"dop zero":         join(HashJoin, 0, scan(0, SeqScan), scan(1, SeqScan)),
		"parallel idxnl":   join(IndexNLJoin, 2, scan(0, SeqScan), scan(1, IndexScan)),
		"unknown relation": scan(17, SeqScan),
		"scan set mismatch": {
			Tables: query.NewTableSet(0, 1), Scan: SeqScan, Relation: 0,
		},
		"bad sample rate": {
			Tables: query.Singleton(0), Scan: SampleScan, Relation: 0, SampleRate: 0.5,
		},
		"negative cost": func() *Node {
			n := scan(0, SeqScan)
			n.Cost = objective.Vector{}.With(objective.TotalTime, -1)
			return n
		}(),
		"join single child": {
			Tables: query.NewTableSet(0, 1), Join: HashJoin, DOP: 1,
			Left: scan(0, SeqScan),
		},
	}
	for name, p := range cases {
		if err := p.Validate(q); err == nil {
			t.Errorf("%s: Validate accepted malformed plan", name)
		}
	}
}

func TestFormatAndSignature(t *testing.T) {
	q := testQuery(t)
	p := join(HashJoin, 1, join(IndexNLJoin, 1, scan(1, SeqScan), scan(0, IndexScan)), scan(2, SeqScan))
	sig := p.Signature(q)
	want := "HashJ(IdxNL(SeqScan o, IdxScan c), SeqScan l)"
	if sig != want {
		t.Errorf("Signature = %q, want %q", sig, want)
	}
	f := p.Format(q)
	for _, frag := range []string{"HashJ\n", "  IdxNL\n", "    SeqScan o\n", "  SeqScan l\n"} {
		if !strings.Contains(f, frag) {
			t.Errorf("Format missing %q:\n%s", frag, f)
		}
	}
}

func TestSampleRates(t *testing.T) {
	if len(SampleRates) != 5 {
		t.Fatalf("want 5 sample rates (1%%..5%%), got %d", len(SampleRates))
	}
	if SampleRates[0] != 0.01 || SampleRates[4] != 0.05 {
		t.Errorf("sample rate range wrong: %v", SampleRates)
	}
	if MaxDOP != 4 {
		t.Errorf("MaxDOP = %d, want 4 (paper: up to 4 cores per operation)", MaxDOP)
	}
}
