// Package query defines the optimizer's input: a set of relations (base
// table references with filter selectivities) connected by equi-join
// predicates. This matches the paper's formal model (Section 3) — "we
// represent queries as set of tables Q that need to be joined … join
// predicates are however considered in the implementations of the
// presented algorithms".
//
// Table sets are represented as 64-bit bitsets (TableSet), the unit the
// dynamic programs of internal/core enumerate over: subset iteration,
// connectivity of the join graph, and the Cartesian-product fallback test
// all operate on these bitsets.
//
// The package also provides the cardinality estimator used by the cost
// model: textbook selectivity-based estimation over table-set bitsets,
// with memoization so every table set is estimated exactly once per query.
// Estimates depend only on the table set, never on the plan producing it —
// the premise of the paper's Observation 2, which the approximation
// guarantee relies on.
package query
