// Package query defines the optimizer's input: a set of relations (base
// table references with filter selectivities) connected by equi-join
// predicates. This matches the paper's formal model (Section 3) — "we
// represent queries as set of tables Q that need to be joined … join
// predicates are however considered in the implementations of the
// presented algorithms".
//
// Table sets are represented as 64-bit bitsets (TableSet), the unit the
// dynamic programs of internal/core enumerate over: subset iteration,
// connectivity of the join graph, and the Cartesian-product fallback test
// all operate on these bitsets.
//
// Two families of search-space enumeration are provided on top of them:
//
//   - TableSet.EachSubset — the exhaustive 2-split iteration over all
//     2^|s| - 2 subsets of a set, used by the engine's exhaustive
//     strategy and by the Cartesian fallback for disconnected graphs;
//   - the join-graph traversal primitives (traverse.go):
//     Query.EachConnectedSubset enumerates every connected subgraph of a
//     region exactly once by BFS-ordered neighborhood expansion
//     (Moerkotte & Neumann's EnumerateCsg) — the engine's graph-aware
//     strategy builds both its level materialization and its candidate
//     loop on it — and Query.EachConnectedSplit derives from it the
//     csg-cmp splits (partitions into two connected halves), serving as
//     the specification form of the split enumeration the engine
//     inlines. On sparse topologies (chains, cycles, stars, trees)
//     these touch polynomially many sets where the subset scan
//     touches 2^n.
//
// The package also provides the cardinality estimator used by the cost
// model: textbook selectivity-based estimation over table-set bitsets,
// with memoization so every table set is estimated exactly once per query.
// Estimates depend only on the table set, never on the plan producing it —
// the premise of the paper's Observation 2, which the approximation
// guarantee relies on.
package query
