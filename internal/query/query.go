package query

import (
	"fmt"

	"moqo/internal/catalog"
)

// Relation is one entry of a query's from-clause: a reference to a base
// table (possibly one of several references to the same table, as in the
// TPC-H queries that join nation twice) plus the combined selectivity of
// the query's filter predicates on that table.
type Relation struct {
	Table     catalog.TableID
	Alias     string  // unique within the query
	FilterSel float64 // in (0,1]; 1 means no filter
}

// JoinEdge is an equi-join predicate between two relations. LeftCol and
// RightCol name the join columns, which determines index applicability for
// index-nested-loop joins. Selectivity is the predicate's selectivity
// relative to the Cartesian product of the operands.
type JoinEdge struct {
	Left, Right       int // relation indexes
	LeftCol, RightCol string
	Selectivity       float64
}

// Query is a join query: relations plus join edges.
type Query struct {
	Name      string
	Relations []Relation
	Edges     []JoinEdge

	cat *catalog.Catalog

	// adjacency[i] is the bitset of relations sharing an edge with i.
	adjacency []TableSet
	// cards memoizes EstimateRows per table set.
	cards map[TableSet]float64
	// widths memoizes EstimateWidth per table set. Like cards it is
	// written only on misses, so the optimizer's enumerator pre-warms it
	// on one goroutine before the parallel phases read it.
	widths map[TableSet]int
}

// New creates an empty query against the given catalog.
func New(name string, cat *catalog.Catalog) *Query {
	return &Query{Name: name, cat: cat, cards: make(map[TableSet]float64), widths: make(map[TableSet]int)}
}

// Catalog returns the catalog the query is defined against.
func (q *Query) Catalog() *catalog.Catalog { return q.cat }

// AddRelation appends a relation and returns its index.
func (q *Query) AddRelation(table string, alias string, filterSel float64) int {
	if filterSel <= 0 || filterSel > 1 {
		panic(fmt.Sprintf("query %s: filter selectivity %v out of (0,1] for %s", q.Name, filterSel, alias))
	}
	if len(q.Relations) >= 64 {
		panic("query: too many relations (max 64)")
	}
	for _, r := range q.Relations {
		if r.Alias == alias {
			panic(fmt.Sprintf("query %s: duplicate alias %q", q.Name, alias))
		}
	}
	id := q.cat.MustLookup(table)
	q.Relations = append(q.Relations, Relation{Table: id, Alias: alias, FilterSel: filterSel})
	q.adjacency = append(q.adjacency, 0)
	q.invalidate()
	return len(q.Relations) - 1
}

// AddJoin appends an equi-join edge between relations l and r with the given
// join columns and selectivity.
func (q *Query) AddJoin(l, r int, lcol, rcol string, sel float64) {
	if l == r || l < 0 || r < 0 || l >= len(q.Relations) || r >= len(q.Relations) {
		panic(fmt.Sprintf("query %s: bad join edge %d-%d", q.Name, l, r))
	}
	if sel <= 0 || sel > 1 {
		panic(fmt.Sprintf("query %s: join selectivity %v out of (0,1]", q.Name, sel))
	}
	q.Edges = append(q.Edges, JoinEdge{Left: l, Right: r, LeftCol: lcol, RightCol: rcol, Selectivity: sel})
	q.adjacency[l] = q.adjacency[l].Add(r)
	q.adjacency[r] = q.adjacency[r].Add(l)
	q.invalidate()
}

// invalidate resets the estimate memos after a schema change.
func (q *Query) invalidate() {
	q.cards = make(map[TableSet]float64)
	q.widths = make(map[TableSet]int)
}

// AddFKJoin appends a foreign-key join edge whose selectivity is derived
// from the catalog: 1 / rows(PK side), the textbook estimate for key/
// foreign-key joins. pkRel must be the relation holding the primary key.
func (q *Query) AddFKJoin(fkRel int, fkCol string, pkRel int, pkCol string) {
	pkRows := q.cat.Table(q.Relations[pkRel].Table).Rows
	if pkRows < 1 {
		pkRows = 1
	}
	q.AddJoin(fkRel, pkRel, fkCol, pkCol, 1/pkRows)
}

// NumRelations returns the number of relations in the from-clause.
func (q *Query) NumRelations() int { return len(q.Relations) }

// AllTables returns the set of all relations of the query.
func (q *Query) AllTables() TableSet { return FullSet(len(q.Relations)) }

// Neighbors returns the relations adjacent (via some join edge) to any
// relation in s, excluding s itself. It iterates the bitset directly (no
// intermediate slice): the optimizer's split enumeration calls it per
// split via ConnectedTo, where an allocation would dominate the cost.
func (q *Query) Neighbors(s TableSet) TableSet {
	var n TableSet
	for v := s; v != 0; v &= v - 1 {
		n |= q.adjacency[v.First()]
	}
	return n.Minus(s)
}

// Connected reports whether the relations of s form a connected subgraph of
// the join graph. Singleton sets are connected; the empty set is not.
func (q *Query) Connected(s TableSet) bool {
	if s.Empty() {
		return false
	}
	frontier := Singleton(s.First())
	reached := frontier
	for !frontier.Empty() {
		next := q.Neighbors(reached).Intersect(s)
		if next.Empty() {
			break
		}
		reached = reached.Union(next)
		frontier = next
	}
	return reached == s
}

// ConnectedTo reports whether some join edge crosses between sets a and b,
// i.e. joining them is not a Cartesian product.
func (q *Query) ConnectedTo(a, b TableSet) bool {
	return !q.Neighbors(a).Intersect(b).Empty()
}

// CrossingEdges returns the join edges with one endpoint in a and the other
// in b.
func (q *Query) CrossingEdges(a, b TableSet) []JoinEdge {
	var out []JoinEdge
	for _, e := range q.Edges {
		if (a.Contains(e.Left) && b.Contains(e.Right)) ||
			(a.Contains(e.Right) && b.Contains(e.Left)) {
			out = append(out, e)
		}
	}
	return out
}

// EstimateRows estimates the result cardinality of joining (and filtering)
// the relations of s: the product of filtered base cardinalities times the
// product of the selectivities of all join edges internal to s. Estimates
// are memoized; they depend only on the table set, never on the plan — the
// premise of the paper's Observation 2.
func (q *Query) EstimateRows(s TableSet) float64 {
	if s.Empty() {
		return 0
	}
	if card, ok := q.cards[s]; ok {
		return card
	}
	card := 1.0
	for _, r := range s.Relations() {
		rel := &q.Relations[r]
		card *= q.cat.Table(rel.Table).Rows * rel.FilterSel
	}
	for _, e := range q.Edges {
		if s.Contains(e.Left) && s.Contains(e.Right) {
			card *= e.Selectivity
		}
	}
	if card < 1 {
		card = 1
	}
	q.cards[s] = card
	return card
}

// EstimateWidth estimates the average output tuple width in bytes for the
// relations of s (sum of base widths — joins concatenate tuples). Widths
// are memoized like cardinalities: the cost model reads them several times
// per candidate plan, and the per-relation catalog lookups plus a bitset
// expansion would otherwise dominate the candidate loop.
func (q *Query) EstimateWidth(s TableSet) int {
	if w, ok := q.widths[s]; ok {
		return w
	}
	w := 0
	for v := s; v != 0; v &= v - 1 {
		w += q.cat.Table(q.Relations[v.First()].Table).Width
	}
	if w <= 0 {
		w = 1
	}
	q.widths[s] = w
	return w
}

// Validate checks structural well-formedness: at least one relation, all
// edges in range, and a connected join graph (the TPC-H queries are all
// connected; disconnected queries would force Cartesian products, which the
// enumerator supports but the shipped workload never needs).
func (q *Query) Validate() error {
	if len(q.Relations) == 0 {
		return fmt.Errorf("query %s: no relations", q.Name)
	}
	if len(q.Relations) > 1 && !q.Connected(q.AllTables()) {
		return fmt.Errorf("query %s: join graph not connected", q.Name)
	}
	return nil
}

// String renders the query's structure for diagnostics.
func (q *Query) String() string {
	s := fmt.Sprintf("query %s: %d relations", q.Name, len(q.Relations))
	for i, r := range q.Relations {
		s += fmt.Sprintf("\n  [%d] %s (table=%d sel=%.3g)", i, r.Alias, r.Table, r.FilterSel)
	}
	for _, e := range q.Edges {
		s += fmt.Sprintf("\n  join %d.%s = %d.%s (sel=%.3g)", e.Left, e.LeftCol, e.Right, e.RightCol, e.Selectivity)
	}
	return s
}
