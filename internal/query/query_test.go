package query

import (
	"math"
	"testing"

	"moqo/internal/catalog"
)

// threeWay builds a customer ⋈ orders ⋈ lineitem query (the shape of
// TPC-H Q3) for use across tests.
func threeWay(t testing.TB) *Query {
	t.Helper()
	cat := catalog.TPCH(1)
	q := New("test3", cat)
	c := q.AddRelation(catalog.Customer, "c", 0.2)
	o := q.AddRelation(catalog.Orders, "o", 0.5)
	l := q.AddRelation(catalog.Lineitem, "l", 0.6)
	q.AddFKJoin(o, "o_custkey", c, "c_custkey")
	q.AddFKJoin(l, "l_orderkey", o, "o_orderkey")
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	return q
}

func TestEstimateBaseRows(t *testing.T) {
	q := threeWay(t)
	// customer: 150000 * 0.2
	if got := q.EstimateRows(Singleton(0)); got != 30000 {
		t.Errorf("customer rows = %v, want 30000", got)
	}
	// orders: 1.5e6 * 0.5
	if got := q.EstimateRows(Singleton(1)); got != 750000 {
		t.Errorf("orders rows = %v, want 750000", got)
	}
}

func TestEstimateJoinRows(t *testing.T) {
	q := threeWay(t)
	// orders ⋈ customer via FK: sel = 1/150000.
	co := NewTableSet(0, 1)
	want := 30000.0 * 750000.0 / 150000.0
	if got := q.EstimateRows(co); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("c⋈o rows = %v, want %v", got, want)
	}
	// Cartesian pair customer × lineitem (no edge internal to the set).
	cl := NewTableSet(0, 2)
	wantCL := 30000.0 * 6_000_000 * 0.6
	if got := q.EstimateRows(cl); math.Abs(got-wantCL)/wantCL > 1e-12 {
		t.Errorf("c×l rows = %v, want %v", got, wantCL)
	}
	// Full join applies both edge selectivities.
	all := q.AllTables()
	wantAll := 30000.0 * 750000.0 * 3_600_000 / 150000.0 / 1_500_000
	if got := q.EstimateRows(all); math.Abs(got-wantAll)/wantAll > 1e-12 {
		t.Errorf("full join rows = %v, want %v", got, wantAll)
	}
}

func TestEstimateRowsFloorsAtOne(t *testing.T) {
	cat := catalog.TPCH(1)
	q := New("tiny", cat)
	a := q.AddRelation(catalog.Region, "r1", 0.01)
	b := q.AddRelation(catalog.Nation, "n1", 0.01)
	q.AddJoin(a, b, "r_regionkey", "n_regionkey", 0.001)
	if got := q.EstimateRows(q.AllTables()); got != 1 {
		t.Errorf("rows = %v, want floor of 1", got)
	}
	if got := q.EstimateRows(TableSet(0)); got != 0 {
		t.Errorf("rows of empty set = %v, want 0", got)
	}
}

func TestEstimateRowsMemoized(t *testing.T) {
	q := threeWay(t)
	s := q.AllTables()
	first := q.EstimateRows(s)
	if again := q.EstimateRows(s); again != first {
		t.Errorf("memoized estimate changed: %v then %v", first, again)
	}
}

func TestEstimateWidth(t *testing.T) {
	q := threeWay(t)
	// customer (179) + orders (104)
	if got := q.EstimateWidth(NewTableSet(0, 1)); got != 283 {
		t.Errorf("width = %d, want 283", got)
	}
}

func TestConnectivity(t *testing.T) {
	q := threeWay(t)
	if !q.Connected(q.AllTables()) {
		t.Error("chain query must be connected")
	}
	if !q.Connected(Singleton(2)) {
		t.Error("singleton must be connected")
	}
	// customer and lineitem share no edge.
	if q.Connected(NewTableSet(0, 2)) {
		t.Error("{c,l} must be disconnected")
	}
	if q.Connected(TableSet(0)) {
		t.Error("empty set must not be connected")
	}
	if !q.ConnectedTo(Singleton(0), Singleton(1)) {
		t.Error("c and o are joined")
	}
	if q.ConnectedTo(Singleton(0), Singleton(2)) {
		t.Error("c and l are not joined")
	}
}

func TestNeighbors(t *testing.T) {
	q := threeWay(t)
	if got := q.Neighbors(Singleton(1)); got != NewTableSet(0, 2) {
		t.Errorf("neighbors of orders = %v", got)
	}
	if got := q.Neighbors(NewTableSet(0, 1)); got != Singleton(2) {
		t.Errorf("neighbors of {c,o} = %v", got)
	}
}

func TestCrossingEdges(t *testing.T) {
	q := threeWay(t)
	edges := q.CrossingEdges(NewTableSet(0, 1), Singleton(2))
	if len(edges) != 1 || edges[0].LeftCol != "l_orderkey" {
		t.Errorf("crossing edges = %v", edges)
	}
	if got := q.CrossingEdges(Singleton(0), Singleton(2)); len(got) != 0 {
		t.Errorf("unexpected crossing edges: %v", got)
	}
}

func TestValidate(t *testing.T) {
	cat := catalog.TPCH(1)
	empty := New("empty", cat)
	if err := empty.Validate(); err == nil {
		t.Error("empty query must not validate")
	}
	disc := New("disc", cat)
	disc.AddRelation(catalog.Region, "a", 1)
	disc.AddRelation(catalog.Nation, "b", 1)
	if err := disc.Validate(); err == nil {
		t.Error("disconnected query must not validate")
	}
	single := New("single", cat)
	single.AddRelation(catalog.Lineitem, "l", 1)
	if err := single.Validate(); err != nil {
		t.Errorf("single-relation query should validate: %v", err)
	}
}

func TestConstructionPanics(t *testing.T) {
	cat := catalog.TPCH(1)
	q := New("p", cat)
	a := q.AddRelation(catalog.Region, "a", 1)
	b := q.AddRelation(catalog.Nation, "b", 1)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad selectivity", func() { q.AddRelation(catalog.Part, "c", 0) })
	mustPanic("duplicate alias", func() { q.AddRelation(catalog.Part, "a", 1) })
	mustPanic("self join edge", func() { q.AddJoin(a, a, "x", "x", 0.5) })
	mustPanic("edge out of range", func() { q.AddJoin(a, 17, "x", "y", 0.5) })
	mustPanic("bad join selectivity", func() { q.AddJoin(a, b, "x", "y", 0) })
}

func TestString(t *testing.T) {
	q := threeWay(t)
	s := q.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	for _, want := range []string{"test3", "o_custkey", "l_orderkey"} {
		if !contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
