package query

import (
	"math/bits"
	"strconv"
	"strings"
)

// TableSet is a bitset over the relations of a query (at most 64 relations;
// TPC-H needs at most 8). The dynamic programs of the optimizer iterate over
// table sets in cardinality order and enumerate splits via bit tricks.
type TableSet uint64

// NewTableSet builds a set from relation indexes.
func NewTableSet(rels ...int) TableSet {
	var s TableSet
	for _, r := range rels {
		s |= 1 << uint(r)
	}
	return s
}

// Singleton returns the set containing only relation r.
func Singleton(r int) TableSet { return 1 << uint(r) }

// FullSet returns the set of the first n relations.
func FullSet(n int) TableSet {
	if n >= 64 {
		panic("query: table set overflow")
	}
	return TableSet(1)<<uint(n) - 1
}

// Contains reports whether relation r is in the set.
func (s TableSet) Contains(r int) bool { return s&(1<<uint(r)) != 0 }

// Add returns the set with relation r added.
func (s TableSet) Add(r int) TableSet { return s | 1<<uint(r) }

// Union returns the union of two sets.
func (s TableSet) Union(t TableSet) TableSet { return s | t }

// Intersect returns the intersection of two sets.
func (s TableSet) Intersect(t TableSet) TableSet { return s & t }

// Minus returns the set difference s \ t.
func (s TableSet) Minus(t TableSet) TableSet { return s &^ t }

// Disjoint reports whether the two sets have no relation in common.
func (s TableSet) Disjoint(t TableSet) bool { return s&t == 0 }

// SubsetOf reports whether every relation of s is in t.
func (s TableSet) SubsetOf(t TableSet) bool { return s&^t == 0 }

// Len returns the number of relations in the set.
func (s TableSet) Len() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set contains no relation.
func (s TableSet) Empty() bool { return s == 0 }

// Single reports whether the set contains exactly one relation.
func (s TableSet) Single() bool { return s != 0 && s&(s-1) == 0 }

// First returns the index of the lowest relation in the set; -1 if empty.
func (s TableSet) First() int {
	if s == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(s))
}

// Top returns the index of the highest relation in the set; -1 if empty.
func (s TableSet) Top() int {
	return 63 - bits.LeadingZeros64(uint64(s))
}

// Relations returns the relation indexes of the set in ascending order.
func (s TableSet) Relations() []int {
	out := make([]int, 0, s.Len())
	for v := s; v != 0; v &= v - 1 {
		out = append(out, bits.TrailingZeros64(uint64(v)))
	}
	return out
}

// EachSubset calls fn for every non-empty proper subset of s, paired with
// its complement within s. Each unordered split {a,b} is visited twice (as
// (a,b) and (b,a)), which is what the join enumeration wants: join operators
// can be asymmetric, so both operand orders must be considered.
func (s TableSet) EachSubset(fn func(sub, rest TableSet) bool) {
	if s == 0 {
		return
	}
	for sub := (s - 1) & s; sub != 0; sub = (sub - 1) & s {
		if !fn(sub, s&^sub) {
			return
		}
	}
}

// String renders the set as {i,j,...}.
func (s TableSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, r := range s.Relations() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(r))
	}
	b.WriteByte('}')
	return b.String()
}
