package query

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTableSetBasics(t *testing.T) {
	s := NewTableSet(0, 2, 5)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, r := range []int{0, 2, 5} {
		if !s.Contains(r) {
			t.Errorf("set should contain %d", r)
		}
	}
	if s.Contains(1) {
		t.Error("set should not contain 1")
	}
	if got := s.Relations(); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 5 {
		t.Errorf("Relations = %v", got)
	}
	if s.First() != 0 {
		t.Errorf("First = %d", s.First())
	}
	if TableSet(0).First() != -1 {
		t.Error("First of empty set should be -1")
	}
	if s.String() != "{0,2,5}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestTableSetAlgebra(t *testing.T) {
	a := NewTableSet(0, 1, 2)
	b := NewTableSet(2, 3)
	if a.Union(b) != NewTableSet(0, 1, 2, 3) {
		t.Error("Union wrong")
	}
	if a.Intersect(b) != NewTableSet(2) {
		t.Error("Intersect wrong")
	}
	if a.Minus(b) != NewTableSet(0, 1) {
		t.Error("Minus wrong")
	}
	if a.Disjoint(b) {
		t.Error("a and b share relation 2")
	}
	if !NewTableSet(0).Disjoint(NewTableSet(1)) {
		t.Error("disjoint sets reported overlapping")
	}
	if !NewTableSet(1).SubsetOf(a) {
		t.Error("SubsetOf wrong")
	}
	if b.SubsetOf(a) {
		t.Error("b is not a subset of a")
	}
}

func TestSingleEmpty(t *testing.T) {
	if !Singleton(3).Single() {
		t.Error("singleton not Single")
	}
	if NewTableSet(1, 2).Single() {
		t.Error("two-element set reported Single")
	}
	if !TableSet(0).Empty() {
		t.Error("zero set not Empty")
	}
	if Singleton(0).Empty() {
		t.Error("singleton reported Empty")
	}
}

func TestFullSet(t *testing.T) {
	if FullSet(3) != NewTableSet(0, 1, 2) {
		t.Errorf("FullSet(3) = %v", FullSet(3))
	}
	if FullSet(0) != 0 {
		t.Error("FullSet(0) should be empty")
	}
	defer func() {
		if recover() == nil {
			t.Error("FullSet(64) did not panic")
		}
	}()
	FullSet(64)
}

func TestEachSubsetCoversAllSplits(t *testing.T) {
	s := NewTableSet(0, 1, 3)
	seen := map[TableSet]TableSet{}
	s.EachSubset(func(sub, rest TableSet) bool {
		if sub.Empty() || rest.Empty() {
			t.Errorf("split produced empty side: %v | %v", sub, rest)
		}
		if sub.Union(rest) != s || !sub.Disjoint(rest) {
			t.Errorf("split is not a partition: %v | %v", sub, rest)
		}
		if _, dup := seen[sub]; dup {
			t.Errorf("subset %v visited twice", sub)
		}
		seen[sub] = rest
		return true
	})
	// A k-element set has 2^k - 2 proper non-empty subsets.
	if len(seen) != 6 {
		t.Errorf("visited %d splits, want 6", len(seen))
	}
	// Both orders of each unordered split must appear.
	for sub, rest := range seen {
		if got, ok := seen[rest]; !ok || got != sub {
			t.Errorf("mirror split of %v missing", sub)
		}
	}
}

func TestEachSubsetEarlyStop(t *testing.T) {
	s := FullSet(4)
	n := 0
	s.EachSubset(func(sub, rest TableSet) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d, want 3", n)
	}
	TableSet(0).EachSubset(func(sub, rest TableSet) bool {
		t.Error("empty set must have no splits")
		return true
	})
}

func TestPropertySubsetEnumerationCount(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		n := 1 + r.Intn(10)
		s := FullSet(n)
		count := 0
		s.EachSubset(func(sub, rest TableSet) bool {
			count++
			return true
		})
		want := (1 << uint(n)) - 2
		return count == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
