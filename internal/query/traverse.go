package query

import "math/bits"

// This file provides the join-graph traversal primitives behind the
// optimizer's graph-aware enumeration strategy: connected-subgraph
// (csg) enumeration by BFS-ordered neighborhood expansion, following
// Moerkotte & Neumann's EnumerateCsg, and the derived connected-split
// (csg-cmp) enumeration the dynamic program uses instead of scanning
// all 2^|s| subsets of a table set.
//
// The primitives operate on the same TableSet/Neighbors bitset
// machinery as the rest of the package: a recursion step is a handful
// of word operations (neighborhood, intersection, subset iteration via
// (sub-1)&n), and no per-emission allocation happens — the enumeration
// cost is proportional to the sets actually emitted, not to 2^n.

// EachConnectedSubset calls fn for every non-empty subset of universe
// that induces a connected subgraph of the join graph, each exactly
// once, until fn returns false. Join edges with an endpoint outside
// universe are ignored, so the traversal can be restricted to any
// region of the query (the split enumeration passes s minus its anchor
// relation). Subsets are generated from their minimum relation outward:
// start vertices are visited in descending index order and each start v
// expands only toward relations above v, which is what makes every
// connected subset appear exactly once.
//
// For a universe whose induced subgraph is disconnected, the traversal
// simply enumerates the connected subsets of each component; no subset
// spanning two components is ever produced.
func (q *Query) EachConnectedSubset(universe TableSet, fn func(TableSet) bool) {
	for u := universe; !u.Empty(); {
		v := bits.Len64(uint64(u)) - 1 // highest remaining start vertex
		start := Singleton(v)
		u = u.Minus(start)
		if !fn(start) {
			return
		}
		// Prohibit the start and everything below it: subsets with a
		// smaller minimum are generated from that smaller start instead.
		if !q.csgRec(universe, start, start|(start-1), fn) {
			return
		}
	}
}

// csgRec emits every connected subset of universe that extends s with
// relations outside the prohibited set x (EnumerateCsgRec): the
// neighborhood of s is the BFS frontier, every non-empty sub-frontier
// yields one emission, and recursion prohibits the whole frontier so no
// extension is reachable along two different frontiers.
func (q *Query) csgRec(universe, s, x TableSet, fn func(TableSet) bool) bool {
	n := q.Neighbors(s).Intersect(universe).Minus(x)
	if n.Empty() {
		return true
	}
	for sub := n; !sub.Empty(); sub = (sub - 1) & n {
		if !fn(s.Union(sub)) {
			return false
		}
	}
	for sub := n; !sub.Empty(); sub = (sub - 1) & n {
		if !q.csgRec(universe, s.Union(sub), x.Union(n), fn) {
			return false
		}
	}
	return true
}

// Adjacent returns the bitset of relations sharing a join edge with
// relation v.
func (q *Query) Adjacent(v int) TableSet { return q.adjacency[v] }

// EdgeCount returns the number of join edges with both endpoints in s —
// the density input of the enumeration's per-set heuristic. Each edge's
// adjacency bits are counted from both endpoints, so the degree sum is
// halved.
func (q *Query) EdgeCount(s TableSet) int {
	deg := 0
	for v := s; !v.Empty(); v &= v - 1 {
		deg += q.adjacency[v.First()].Intersect(s).Len()
	}
	return deg / 2
}

// MaxDegreeVertex returns the relation of s with the most join edges into
// s, breaking ties toward the lowest index (so the choice is deterministic
// and degenerates to First() on edge-regular sets). The split enumeration
// anchors here: a high-degree anchor has a large neighborhood, and every
// complement-side subset must avoid the anchor, so fewer subsets survive —
// anchoring a star at its hub makes the enumeration linear where a leaf
// anchor leaves it exponential.
func (q *Query) MaxDegreeVertex(s TableSet) int {
	best, bestDeg := s.First(), -1
	for v := s; !v.Empty(); v &= v - 1 {
		i := v.First()
		if d := q.adjacency[i].Intersect(s).Len(); d > bestDeg {
			best, bestDeg = i, d
		}
	}
	return best
}

// EachConnectedSplit calls fn for every split of s into two non-empty
// halves (sub, rest) that each induce a connected subgraph, until fn
// returns false. Like TableSet.EachSubset it visits each unordered
// split twice — as (sub, rest) and (rest, sub) — because join operators
// are asymmetric. When s itself is connected, every emitted split is
// predicate-connected (some join edge crosses it), so the enumeration
// yields exactly the csg-cmp pairs the dynamic program combines; a
// disconnected s additionally admits splits along component boundaries,
// which are Cartesian.
//
// The implementation anchors at s's maximum-degree relation: the half not
// containing the anchor is enumerated with EachConnectedSubset over
// s minus the anchor, and the anchored complement is kept only when it
// is itself connected. Compared to the 2^|s|-2 ordered subsets the
// exhaustive scan visits, the work is proportional to the connected
// subsets avoiding the anchor — linear per split for stars anchored at
// their hub, quadratic in |s| for chains and cycles.
//
// Before the complement's BFS, a DPhyp-style pruning test rejects rests
// that swallow the anchor's entire neighborhood: the complement is then
// {anchor} ∪ (unreached vertices) with the anchor isolated, hence
// disconnected — unless rest took everything, leaving the (connected)
// singleton {anchor}. The test is two word operations and skips the BFS
// for exactly the rests whose complement strands the anchor, the dominant
// failure mode on mid-density graphs.
//
// This function is the specification form of the csg-cmp split
// enumeration: the engine's candidate loop (internal/core,
// forEachCandidateGraph) inlines the same anchored traversal but
// replaces the Connected BFS on the complement with a memo-id lookup
// ("connected" and "materialized" coincide there) and re-orders the
// emissions canonically. Changes to the anchoring or degenerate-set
// handling here must be mirrored there; the differential tests in both
// packages pin the two against the brute-force subset scan.
func (q *Query) EachConnectedSplit(s TableSet, fn func(sub, rest TableSet) bool) {
	if s.Empty() || s.Single() {
		return
	}
	anchor := Singleton(q.MaxDegreeVertex(s))
	u := s.Minus(anchor)
	nbr := q.Neighbors(anchor).Intersect(s)
	q.EachConnectedSubset(u, func(rest TableSet) bool {
		if nbr.SubsetOf(rest) && rest != u {
			return true // complement isolates the anchor: disconnected
		}
		sub := s.Minus(rest)
		if !q.Connected(sub) {
			return true
		}
		return fn(sub, rest) && fn(rest, sub)
	})
}
