package query

import "math/bits"

// This file provides the join-graph traversal primitives behind the
// optimizer's graph-aware enumeration strategy: connected-subgraph
// (csg) enumeration by BFS-ordered neighborhood expansion, following
// Moerkotte & Neumann's EnumerateCsg, and the derived connected-split
// (csg-cmp) enumeration the dynamic program uses instead of scanning
// all 2^|s| subsets of a table set.
//
// The primitives operate on the same TableSet/Neighbors bitset
// machinery as the rest of the package: a recursion step is a handful
// of word operations (neighborhood, intersection, subset iteration via
// (sub-1)&n), and no per-emission allocation happens — the enumeration
// cost is proportional to the sets actually emitted, not to 2^n.

// EachConnectedSubset calls fn for every non-empty subset of universe
// that induces a connected subgraph of the join graph, each exactly
// once, until fn returns false. Join edges with an endpoint outside
// universe are ignored, so the traversal can be restricted to any
// region of the query (the split enumeration passes s minus its anchor
// relation). Subsets are generated from their minimum relation outward:
// start vertices are visited in descending index order and each start v
// expands only toward relations above v, which is what makes every
// connected subset appear exactly once.
//
// For a universe whose induced subgraph is disconnected, the traversal
// simply enumerates the connected subsets of each component; no subset
// spanning two components is ever produced.
func (q *Query) EachConnectedSubset(universe TableSet, fn func(TableSet) bool) {
	for u := universe; !u.Empty(); {
		v := bits.Len64(uint64(u)) - 1 // highest remaining start vertex
		start := Singleton(v)
		u = u.Minus(start)
		if !fn(start) {
			return
		}
		// Prohibit the start and everything below it: subsets with a
		// smaller minimum are generated from that smaller start instead.
		if !q.csgRec(universe, start, start|(start-1), fn) {
			return
		}
	}
}

// csgRec emits every connected subset of universe that extends s with
// relations outside the prohibited set x (EnumerateCsgRec): the
// neighborhood of s is the BFS frontier, every non-empty sub-frontier
// yields one emission, and recursion prohibits the whole frontier so no
// extension is reachable along two different frontiers.
func (q *Query) csgRec(universe, s, x TableSet, fn func(TableSet) bool) bool {
	n := q.Neighbors(s).Intersect(universe).Minus(x)
	if n.Empty() {
		return true
	}
	for sub := n; !sub.Empty(); sub = (sub - 1) & n {
		if !fn(s.Union(sub)) {
			return false
		}
	}
	for sub := n; !sub.Empty(); sub = (sub - 1) & n {
		if !q.csgRec(universe, s.Union(sub), x.Union(n), fn) {
			return false
		}
	}
	return true
}

// EachConnectedSplit calls fn for every split of s into two non-empty
// halves (sub, rest) that each induce a connected subgraph, until fn
// returns false. Like TableSet.EachSubset it visits each unordered
// split twice — as (sub, rest) and (rest, sub) — because join operators
// are asymmetric. When s itself is connected, every emitted split is
// predicate-connected (some join edge crosses it), so the enumeration
// yields exactly the csg-cmp pairs the dynamic program combines; a
// disconnected s additionally admits splits along component boundaries,
// which are Cartesian.
//
// The implementation anchors at s's minimum relation: the half not
// containing the anchor is enumerated with EachConnectedSubset over
// s minus the anchor, and the anchored complement is kept only when it
// is itself connected. Compared to the 2^|s|-2 ordered subsets the
// exhaustive scan visits, the work is proportional to the connected
// subsets avoiding the anchor — linear per split for stars anchored at
// their hub, quadratic in |s| for chains and cycles.
//
// This function is the specification form of the csg-cmp split
// enumeration: the engine's candidate loop (internal/core,
// forEachCandidateGraph) inlines the same anchored traversal but
// replaces the Connected BFS on the complement with a memo-id lookup
// ("connected" and "materialized" coincide there) and re-orders the
// emissions canonically. Changes to the anchoring or degenerate-set
// handling here must be mirrored there; the differential tests in both
// packages pin the two against the brute-force subset scan.
func (q *Query) EachConnectedSplit(s TableSet, fn func(sub, rest TableSet) bool) {
	if s.Empty() || s.Single() {
		return
	}
	anchor := Singleton(s.First())
	q.EachConnectedSubset(s.Minus(anchor), func(rest TableSet) bool {
		sub := s.Minus(rest)
		if !q.Connected(sub) {
			return true
		}
		return fn(sub, rest) && fn(rest, sub)
	})
}
