package query

import (
	"math/rand"
	"testing"

	"moqo/internal/catalog"
)

// graphQuery builds an n-relation query with the given undirected join
// edges, on a throwaway catalog.
func graphQuery(t testing.TB, n int, edges [][2]int) *Query {
	t.Helper()
	cat := catalog.New()
	q := New("graph", cat)
	for i := 0; i < n; i++ {
		name := "t" + string(rune('a'+i))
		cat.AddTable(name, 1000, 32, "pk")
		q.AddRelation(name, name, 1)
	}
	for _, e := range edges {
		q.AddJoin(e[0], e[1], "pk", "pk", 0.01)
	}
	return q
}

// randomConnectedGraph draws a random spanning tree plus a few extra
// edges, so the traversal is exercised on trees, near-trees and denser
// graphs alike.
func randomConnectedGraph(t testing.TB, r *rand.Rand, n int) *Query {
	t.Helper()
	seen := map[[2]int]bool{}
	var edges [][2]int
	add := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		if a == b || seen[[2]int{a, b}] {
			return
		}
		seen[[2]int{a, b}] = true
		edges = append(edges, [2]int{a, b})
	}
	for i := 1; i < n; i++ {
		add(i, r.Intn(i))
	}
	for extra := r.Intn(n); extra > 0; extra-- {
		add(r.Intn(n), r.Intn(n))
	}
	return graphQuery(t, n, edges)
}

// bruteConnectedSubsets scans all 2^n subsets of universe and keeps the
// connected ones — the oracle the traversal must match.
func bruteConnectedSubsets(q *Query, universe TableSet) map[TableSet]bool {
	want := map[TableSet]bool{}
	for bits := TableSet(1); bits < 1<<uint(len(q.Relations)); bits++ {
		if bits.SubsetOf(universe) && q.Connected(bits) {
			want[bits] = true
		}
	}
	return want
}

func TestEachConnectedSubsetMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(9)
		q := randomConnectedGraph(t, r, n)
		universe := q.AllTables()
		if trial%3 == 0 && n > 2 {
			// Restricting the universe may disconnect it — the traversal
			// must then enumerate per component without crossing the gap.
			universe = universe.Minus(Singleton(r.Intn(n)))
		}
		want := bruteConnectedSubsets(q, universe)
		got := map[TableSet]bool{}
		q.EachConnectedSubset(universe, func(s TableSet) bool {
			if got[s] {
				t.Fatalf("trial %d: subset %v emitted twice", trial, s)
			}
			if !s.SubsetOf(universe) || !q.Connected(s) {
				t.Fatalf("trial %d: emitted %v is not a connected subset of %v", trial, s, universe)
			}
			got[s] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d (n=%d): enumerated %d connected subsets, brute force found %d",
				trial, n, len(got), len(want))
		}
	}
}

// TestEachConnectedSubsetChainCount: a chain of n relations has exactly
// n(n+1)/2 connected subsets (its contiguous subpaths) — the count that
// makes the graph-aware enumeration polynomial where the subset scan is
// exponential.
func TestEachConnectedSubsetChainCount(t *testing.T) {
	for n := 1; n <= 12; n++ {
		var edges [][2]int
		for i := 1; i < n; i++ {
			edges = append(edges, [2]int{i - 1, i})
		}
		q := graphQuery(t, n, edges)
		count := 0
		q.EachConnectedSubset(q.AllTables(), func(TableSet) bool { count++; return true })
		if want := n * (n + 1) / 2; count != want {
			t.Errorf("chain n=%d: %d connected subsets, want %d", n, count, want)
		}
	}
}

func TestEachConnectedSubsetEarlyStop(t *testing.T) {
	q := graphQuery(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	calls := 0
	q.EachConnectedSubset(q.AllTables(), func(TableSet) bool {
		calls++
		return calls < 4
	})
	if calls != 4 {
		t.Errorf("early stop after %d calls, want 4", calls)
	}
	q.EachConnectedSubset(TableSet(0), func(TableSet) bool {
		t.Error("empty universe must enumerate nothing")
		return true
	})
}

// bruteConnectedSplits is the oracle for EachConnectedSplit: every
// ordered split of s with two connected halves, via the exhaustive
// subset scan.
func bruteConnectedSplits(q *Query, s TableSet) map[TableSet]TableSet {
	want := map[TableSet]TableSet{}
	s.EachSubset(func(sub, rest TableSet) bool {
		if q.Connected(sub) && q.Connected(rest) {
			want[sub] = rest
		}
		return true
	})
	return want
}

func TestEachConnectedSplitMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(7)
		q := randomConnectedGraph(t, r, n)
		// Check the split enumeration on every connected subset, not just
		// the full set: the dynamic program calls it per table set.
		q.EachConnectedSubset(q.AllTables(), func(s TableSet) bool {
			if s.Single() {
				return true
			}
			want := bruteConnectedSplits(q, s)
			got := map[TableSet]TableSet{}
			q.EachConnectedSplit(s, func(sub, rest TableSet) bool {
				if sub.Union(rest) != s || !sub.Disjoint(rest) || sub.Empty() || rest.Empty() {
					t.Fatalf("split of %v is not a partition: %v | %v", s, sub, rest)
				}
				if _, dup := got[sub]; dup {
					t.Fatalf("split side %v of %v visited twice", sub, s)
				}
				got[sub] = rest
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("trial %d, set %v: %d ordered splits, brute force found %d",
					trial, s, len(got), len(want))
			}
			for sub := range want {
				if _, ok := got[sub]; !ok {
					t.Fatalf("trial %d, set %v: split %v missing", trial, s, sub)
				}
			}
			return true
		})
	}
}

// TestEachConnectedSplitFullCycle pins complement enumeration at the
// full set of a cycle: both halves of every split are contiguous arcs,
// and cutting a cycle needs two edge removals, so the full n-cycle has
// exactly n(n-1) ordered splits.
func TestEachConnectedSplitFullCycle(t *testing.T) {
	n := 7
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{i - 1, i})
	}
	edges = append(edges, [2]int{n - 1, 0})
	q := graphQuery(t, n, edges)
	count := 0
	q.EachConnectedSplit(q.AllTables(), func(sub, rest TableSet) bool {
		count++
		if !q.Connected(sub) || !q.Connected(rest) {
			t.Fatalf("cycle split %v | %v has a disconnected half", sub, rest)
		}
		return true
	})
	if want := n * (n - 1); count != want {
		t.Errorf("full %d-cycle: %d ordered splits, want %d", n, count, want)
	}
}

// TestEachConnectedSplitBridge: a bridge edge between two triangles —
// the split along the bridge must appear, with each component whole.
func TestEachConnectedSplitBridge(t *testing.T) {
	// Triangles {0,1,2} and {3,4,5} joined by the bridge 2-3.
	q := graphQuery(t, 6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}})
	left, right := NewTableSet(0, 1, 2), NewTableSet(3, 4, 5)
	found := false
	q.EachConnectedSplit(q.AllTables(), func(sub, rest TableSet) bool {
		if sub == left && rest == right {
			found = true
		}
		return true
	})
	if !found {
		t.Error("bridge split not enumerated")
	}
}

func TestEachConnectedSplitDegenerate(t *testing.T) {
	q := graphQuery(t, 1, nil)
	q.EachConnectedSplit(q.AllTables(), func(sub, rest TableSet) bool {
		t.Error("single-relation query has no splits")
		return true
	})
	q.EachConnectedSplit(TableSet(0), func(sub, rest TableSet) bool {
		t.Error("empty set has no splits")
		return true
	})
}

// TestConnectedNeighborsEdgeCases pins the contracts the traversal
// relies on: Connected on empty/singleton sets and Neighbors at the
// boundaries (empty set, full set, universe complement).
func TestConnectedNeighborsEdgeCases(t *testing.T) {
	q := graphQuery(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if q.Connected(TableSet(0)) {
		t.Error("empty set must not be connected")
	}
	if !q.Connected(Singleton(2)) {
		t.Error("singleton must be connected")
	}
	if !q.Connected(q.AllTables()) {
		t.Error("chain must be connected")
	}
	if q.Connected(NewTableSet(0, 2)) {
		t.Error("non-adjacent pair must be disconnected")
	}
	if got := q.Neighbors(TableSet(0)); !got.Empty() {
		t.Errorf("Neighbors of empty set = %v, want empty", got)
	}
	if got := q.Neighbors(q.AllTables()); !got.Empty() {
		t.Errorf("Neighbors of the full set = %v, want empty (nothing outside)", got)
	}
	if got := q.Neighbors(NewTableSet(1, 2)); got != NewTableSet(0, 3) {
		t.Errorf("Neighbors of the chain middle = %v, want {0,3}", got)
	}

	single := graphQuery(t, 1, nil)
	if !single.Connected(single.AllTables()) {
		t.Error("single-relation query must be connected")
	}
	if got := single.Neighbors(single.AllTables()); !got.Empty() {
		t.Errorf("single-relation Neighbors = %v, want empty", got)
	}
}
