package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// requestPathAllocBudget bounds the allocations of one frontier-served
// /optimize request: JSON decode of the request, cache-key hashing, the
// SelectBest scan over the cached snapshot (allocation-free), materializing
// the one selected plan, and the JSON response encode. Every term is O(1)
// in the size of the dynamic program — a cold DP allocates five to six
// orders of magnitude more — so the budget is a fixed count with headroom,
// not a function of the workload.
const requestPathAllocBudget = 600

// TestRequestPathAllocs is the serving-path companion of the archive's
// TestArchiveInsertZeroAlloc CI gate: once a query shape's frontier is
// cached, a request for the same shape under new weights (request parse →
// exact-tier miss → frontier-tier hit → SelectBest → response encode) must
// allocate O(1), independent of the plan-space size. Weights rotate every
// iteration so the exact tier always misses and the frontier tier always
// serves; the reweightServed counter proves the measured path is the fast
// path and not a silent cold optimization.
func TestRequestPathAllocs(t *testing.T) {
	srv := New(Options{})
	h := srv.Handler()
	do := func(weight float64) {
		req := httptest.NewRequest(http.MethodPost, "/optimize", strings.NewReader(reweightRequest(weight)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	do(1) // cold run: populates the frontier tier
	if served := srv.reweightServed.Load(); served != 0 {
		t.Fatalf("cold request already served from frontier (%d)", served)
	}

	const runs = 50
	weight := 1.0
	avg := testing.AllocsPerRun(runs, func() {
		weight += 0.25 // distinct weights: exact tier misses, frontier tier hits
		do(weight)
	})
	if served := srv.reweightServed.Load(); served < runs {
		t.Fatalf("only %d of %d measured requests took the frontier fast path", served, runs)
	}
	t.Logf("frontier-served request: %.0f allocs (budget %d)", avg, requestPathAllocBudget)
	if avg > requestPathAllocBudget {
		t.Errorf("frontier-served request allocates %.0f objects, budget %d — the serving path regressed toward per-request DP work",
			avg, requestPathAllocBudget)
	}
}
