package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"moqo"
	"moqo/internal/cache"
	"moqo/internal/core"
)

// maxBatchMembers bounds one batch; a workload larger than this should be
// split by the client (the limit exists so one request cannot queue
// unbounded work behind one connection).
const maxBatchMembers = 1024

// maxBatchBody bounds the /optimize/batch request body — larger than the
// single-request limit because one batch carries many member specs.
const maxBatchBody = 8 << 20

// batchMember is one member's serving state: the resolved request (nil
// Query when buildErr is set), its cache key, its tenant, and the
// response slot. A failed member carries its wire error code (and, for
// rate-limited admission, a retry hint) alongside buildErr.
type batchMember struct {
	idx      int
	req      moqo.Request
	key      string
	ten      string
	frontier bool // include the frontier in this member's response
	cost     float64

	buildErr     error
	errCode      string
	retryAfterMs int64
}

// handleOptimizeBatch serves POST /optimize/batch: a workload of member
// requests optimized against one shared catalog. The catalog is resolved
// once; distinct member query specs build one query object each, so
// members of the same shape share one cardinality/selectivity warm-up;
// all members publish solved subproblems to one batch-scoped shared memo
// (moqo.SharedMemo) and are scheduled most-expensive-first
// (core.PredictCost). Every member is served through the same two cache
// tiers as /optimize — identical members coalesce to one dynamic program
// and re-weights are answered from a sibling's frontier snapshot — and
// every member's answer is bit-for-bit its standalone /optimize answer.
//
// With "stream": true the response is NDJSON — one BatchMemberResponse
// per line in completion order, flushed as members finish; otherwise one
// BatchResponse collects every member in member order.
func (s *Server) handleOptimizeBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	s.batchRequests.Add(1)
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	started := time.Now()

	// The header tenant is the default identity for every member; a
	// member's tenant field overrides it (a gateway batching many
	// tenants' traffic sets it per member). Member identities are
	// resolved, counted and admitted per member in buildBatchMembers.
	headerTen, terr := s.resolveTenant(r)
	if terr != nil {
		s.writeError(w, http.StatusBadRequest, terr)
		return
	}

	var wire BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(wire.Members) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("members: at least one required"))
		return
	}
	if len(wire.Members) > maxBatchMembers {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("members: %d exceeds the limit of %d", len(wire.Members), maxBatchMembers))
		return
	}
	s.batchMembers.Add(uint64(len(wire.Members)))

	// One catalog for the whole batch: inline, or TPC-H at scale_factor.
	var cat *moqo.Catalog
	inline := wire.Catalog != nil
	if inline {
		c, err := buildCatalog(wire.Catalog)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		cat = c
	} else {
		sf := wire.ScaleFactor
		if sf == 0 {
			sf = 1
		}
		if sf < 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("scale_factor must be positive"))
			return
		}
		cat = s.tpchCatalog(sf)
	}

	ctx := r.Context()
	// The FIFO unfairness baseline gates the whole batch in the global
	// arrival-order queue (no-op under the fair policy, where only cold
	// member DPs queue — per tenant, inside serving).
	release, gerr := s.gateRequest(ctx, headerTen)
	if gerr != nil {
		s.errors.Add(1)
		return // client gone while queued
	}
	defer release()

	members := s.buildBatchMembers(&wire, cat, inline, headerTen)

	// Emit serialized: the streaming writer and the collecting slice are
	// both single-writer under this mutex.
	var (
		emitMu  sync.Mutex
		results []BatchMemberResponse
		flusher http.Flusher
		enc     *json.Encoder
	)
	if wire.Stream {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ = w.(http.Flusher)
		enc = json.NewEncoder(w)
	} else {
		results = make([]BatchMemberResponse, len(members))
	}
	emit := func(resp BatchMemberResponse) {
		emitMu.Lock()
		defer emitMu.Unlock()
		if wire.Stream {
			_ = enc.Encode(resp) // one JSON object per line
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		results[resp.Member] = resp
	}

	// Fail invalid and quota-rejected members immediately and
	// independently; schedule the rest most-expensive-first so long
	// dynamic programs start at once and cheap overlapping members find
	// their subproblems pre-published.
	var runnable []*batchMember
	for i := range members {
		m := &members[i]
		if m.buildErr != nil {
			s.errors.Add(1)
			emit(BatchMemberResponse{
				Member:       m.idx,
				Error:        m.buildErr.Error(),
				ErrorCode:    m.errCode,
				RetryAfterMs: m.retryAfterMs,
			})
			continue
		}
		runnable = append(runnable, m)
	}
	sort.SliceStable(runnable, func(i, j int) bool { return runnable[i].cost > runnable[j].cost })

	// Members sharing a query object must not optimize concurrently (its
	// cardinality memo is written without locks; the first run warms it
	// for the rest). Serving under the lock also covers the re-weight and
	// cache-hit paths, which are microseconds.
	queryLocks := make(map[*moqo.Query]*sync.Mutex)
	for _, m := range runnable {
		if queryLocks[m.req.Query] == nil {
			queryLocks[m.req.Query] = new(sync.Mutex)
		}
	}

	parallel := wire.Parallel
	if parallel <= 0 {
		parallel = s.opts.DefaultWorkers
	}
	if max := runtime.NumCPU(); parallel > max {
		parallel = max
	}
	if parallel > len(runnable) {
		parallel = len(runnable)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < parallel; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1) - 1)
				if n >= len(runnable) {
					return
				}
				m := runnable[n]
				memberStart := time.Now()
				// Per-member deadline budget: the member's wall budget starts
				// when a worker picks it up, so scheduler queue wait inside
				// serving consumes it and the DP gets exactly the remainder.
				// A budget that dies while queued sheds that member alone.
				mctx, cancel := context.WithDeadline(ctx, memberStart.Add(m.req.Timeout))
				lock := queryLocks[m.req.Query]
				lock.Lock()
				resp, err := s.serveMember(mctx, m.req, m.key, m.ten)
				lock.Unlock()
				cancel()
				if err != nil {
					s.errors.Add(1)
					emit(BatchMemberResponse{Member: m.idx, Error: err.Error(), ErrorCode: classifyServeError(err)})
					continue
				}
				if !m.frontier {
					resp.Frontier = nil // field-level copy; cached value keeps its slice
				}
				ms := float64(time.Since(memberStart)) / float64(time.Millisecond)
				s.recordLatency(ms)
				s.tenants.RecordLatency(m.ten, ms)
				emit(BatchMemberResponse{Member: m.idx, Result: &resp})
			}
		}()
	}
	wg.Wait()

	if ctx.Err() != nil && wire.Stream {
		return // client gone mid-stream; nothing left to write
	}
	if wire.Stream {
		return
	}
	errs := 0
	for i := range results {
		if results[i].Error != "" {
			errs++
		}
	}
	hits, _, published := s.batchMemo(members).Counters()
	s.writeJSON(w, http.StatusOK, BatchResponse{
		Members: results,
		Stats: BatchStatsResponse{
			Members:           len(members),
			Errors:            errs,
			SharedSubproblems: int(published),
			SharedHits:        hits,
			DurationMs:        float64(time.Since(started)) / float64(time.Millisecond),
		},
	})
}

// buildBatchMembers resolves every member spec against the batch catalog:
// distinct query specs build one query object each (deduped, so members
// of one shape share its cardinality memo), knobs parse exactly like
// /optimize, and one fresh shared memo is attached to every valid member.
// Each member resolves its own tenant (its tenant field, falling back to
// the request header) and passes that tenant's admission checks before
// it may run. Build and admission failures are per-member (buildErr plus
// a wire error code), never batch-wide.
func (s *Server) buildBatchMembers(wire *BatchRequest, cat *moqo.Catalog, inline bool, headerTen string) []batchMember {
	shared := moqo.NewSharedMemo()
	queries := make(map[string]*moqo.Query)
	members := make([]batchMember, len(wire.Members))
	for i := range wire.Members {
		spec := &wire.Members[i]
		m := &members[i]
		m.idx = i
		m.frontier = spec.Frontier

		m.ten = headerTen
		if spec.Tenant != "" {
			ten, err := s.tenants.Resolve(spec.Tenant)
			if err != nil {
				m.buildErr = fmt.Errorf("member %d: %w", i, err)
				m.errCode = CodeValidation
				continue
			}
			m.ten = ten
		}
		s.tenants.CountRequest(m.ten)

		q, err := s.buildMemberQuery(spec, cat, inline, queries)
		if err != nil {
			m.buildErr = fmt.Errorf("member %d: %w", i, err)
			m.errCode = CodeValidation
			continue
		}
		m.req.Query = q
		view := spec.asOptimizeRequest()
		if err := s.applyKnobs(&m.req, &view); err != nil {
			m.buildErr = fmt.Errorf("member %d: %w", i, err)
			m.errCode = CodeValidation
			continue
		}
		m.req.Timeout = s.clampTimeout(spec.TimeoutMs)
		m.req.Workers = s.clampWorkers(spec.Workers)
		m.req.Shared = shared

		// The cache key doubles as the member validator, exactly as on
		// /optimize.
		key, err := m.req.CacheKey()
		if err != nil {
			m.buildErr = fmt.Errorf("member %d: %w", i, err)
			m.errCode = CodeValidation
			continue
		}
		m.key = key
		m.cost = core.PredictCost(len(q.Relations), len(m.req.Objectives), spec.Algorithm)

		// Admission runs once the member is known valid, so a rejected
		// member reports its quota problem, not a parsing one.
		if d := s.tenants.Admit(m.ten, len(q.Relations), len(m.req.Objectives), spec.Algorithm); !d.OK {
			m.buildErr = fmt.Errorf("member %d: %w", i, d.Err)
			m.errCode = CodeAdmission
			m.retryAfterMs = d.RetryAfter.Milliseconds()
			continue
		}
	}
	return members
}

// buildMemberQuery resolves one member's query against the batch catalog,
// deduping identical specs to one query object.
func (s *Server) buildMemberQuery(spec *BatchMemberRequest, cat *moqo.Catalog, inline bool, queries map[string]*moqo.Query) (*moqo.Query, error) {
	switch {
	case spec.TPCH != 0 && spec.Query != nil:
		return nil, fmt.Errorf("tpch and query are mutually exclusive")
	case spec.TPCH != 0:
		if inline {
			return nil, fmt.Errorf("tpch members require the TPC-H catalog (omit the batch catalog)")
		}
		key := fmt.Sprintf("t:%d", spec.TPCH)
		if q, ok := queries[key]; ok {
			return q, nil
		}
		q, err := moqo.TPCHQuery(spec.TPCH, cat)
		if err != nil {
			return nil, err
		}
		queries[key] = q
		return q, nil
	case spec.Query != nil:
		// Struct marshaling is deterministic, so equal specs dedupe to one
		// query object (and its warmed cardinality memo).
		raw, err := json.Marshal(spec.Query)
		if err != nil {
			return nil, err
		}
		key := "q:" + string(raw)
		if q, ok := queries[key]; ok {
			return q, nil
		}
		q, err := buildQuery(spec.Query, cat)
		if err != nil {
			return nil, err
		}
		queries[key] = q
		return q, nil
	default:
		return nil, fmt.Errorf("either tpch or query is required")
	}
}

// batchMemo recovers the batch's shared memo from any valid member (they
// all carry the same one); a batch of only invalid members gets an empty
// memo for its stats.
func (s *Server) batchMemo(members []batchMember) *moqo.SharedMemo {
	for i := range members {
		if members[i].req.Shared != nil {
			return members[i].req.Shared
		}
	}
	return moqo.NewSharedMemo()
}

// serveMember serves one batch member through the same path as a single
// /optimize request: the exact tier's single-flight (identical members
// run one dynamic program), then the frontier tier (re-weight members are
// answered by a SelectBest scan), then a cold optimization carrying the
// batch's shared memo.
func (s *Server) serveMember(ctx context.Context, req moqo.Request, key, ten string) (OptimizeResponse, error) {
	if s.cache == nil {
		resp, _, err := s.compute(ctx, req, ten)
		return resp, err
	}
	resp, src, err := s.cache.Do(ctx, key, s.cachedCompute(req, ten))
	if err != nil {
		return OptimizeResponse{}, err
	}
	resp.Cached = src != cache.Miss
	return resp, nil
}
