package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// postBatch sends a batch request and decodes the collected response.
func postBatch(t *testing.T, ts *httptest.Server, body string) (int, BatchResponse, string) {
	t.Helper()
	res, err := http.Post(ts.URL+"/optimize/batch", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	var out BatchResponse
	if res.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("decode batch response: %v\n%s", err, buf.String())
		}
	}
	return res.StatusCode, out, buf.String()
}

// tpchBatch is a mixed workload over the shared TPC-H catalog: a base
// member, an exact duplicate, a re-weight, a different query, and an
// inline query against the TPC-H tables.
const tpchBatch = `{
	"members": [
		{"tpch": 3, "alpha": 1.5,
		 "objectives": ["total_time", "buffer_footprint", "energy"],
		 "weights": {"total_time": 1, "buffer_footprint": 0.1, "energy": 0.3}},
		{"tpch": 3, "alpha": 1.5,
		 "objectives": ["total_time", "buffer_footprint", "energy"],
		 "weights": {"total_time": 1, "buffer_footprint": 0.1, "energy": 0.3}},
		{"tpch": 3, "alpha": 1.5,
		 "objectives": ["total_time", "buffer_footprint", "energy"],
		 "weights": {"total_time": 0.2, "buffer_footprint": 1, "energy": 0.5}},
		{"tpch": 5, "alpha": 1.5,
		 "objectives": ["total_time", "energy"],
		 "weights": {"total_time": 1, "energy": 0.2}},
		{"query": {
			"name": "chain",
			"relations": [
				{"table": "customer", "filter_sel": 0.2},
				{"table": "orders", "filter_sel": 0.5}
			],
			"joins": [{"left": 1, "right": 0, "left_col": "o_custkey", "right_col": "c_custkey", "selectivity": 0.0000066}]
		 },
		 "algorithm": "exa",
		 "objectives": ["total_time", "buffer_footprint"],
		 "weights": {"total_time": 1, "buffer_footprint": 0.1}}
	]
}`

// memberAsOptimize rewrites one tpchBatch member as a standalone
// /optimize body (the batch is TPC-H mode, so the member body IS a valid
// standalone request).
func memberAsOptimize(t *testing.T, i int) string {
	t.Helper()
	var wire BatchRequest
	if err := json.Unmarshal([]byte(tpchBatch), &wire); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(wire.Members[i])
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestBatchRoundTrip: a mixed batch answers every member in member order,
// and each answer is byte-identical to the member's standalone /optimize
// answer — the endpoint-level differential.
func TestBatchRoundTrip(t *testing.T) {
	ts := newTestServer(t, Options{})
	status, resp, raw := postBatch(t, ts, tpchBatch)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if resp.Stats.Members != 5 || resp.Stats.Errors != 0 {
		t.Fatalf("stats = %+v, want 5 members, 0 errors", resp.Stats)
	}
	for i, m := range resp.Members {
		if m.Member != i {
			t.Errorf("member %d reported index %d", i, m.Member)
		}
		if m.Error != "" || m.Result == nil {
			t.Fatalf("member %d failed: %s", i, m.Error)
		}
		if len(m.Result.Plan) == 0 {
			t.Errorf("member %d: no plan", i)
		}
	}

	// Differential against a fresh server with no batch sharing. The
	// inline-query member (4) has no standalone form — /optimize requires
	// an inline catalog with an inline query — so the replay covers the
	// TPC-H members; the library-level differential covers inline shapes.
	solo := newTestServer(t, Options{})
	for i := 0; i < 4; i++ {
		st, one, sraw := post(t, solo, memberAsOptimize(t, i))
		if st != http.StatusOK {
			t.Fatalf("standalone member %d: status %d: %s", i, st, sraw)
		}
		got := resp.Members[i].Result
		if !bytes.Equal(compactJSON(t, got.Plan), compactJSON(t, one.Plan)) {
			t.Errorf("member %d: batch plan differs from standalone plan", i)
		}
		for o, c := range one.Cost {
			if got.Cost[o] != c {
				t.Errorf("member %d: cost[%s] = %v, want %v", i, o, got.Cost[o], c)
			}
		}
	}
}

// compactJSON strips response indentation so plans can be compared across
// nesting depths (the encoder indents relative to the embedding document).
func compactJSON(t *testing.T, raw []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compact plan: %v\n%s", err, raw)
	}
	return buf.Bytes()
}

// TestBatchDedupeAndReuse: the duplicate member is a cache hit of the
// leader's single dynamic program, and the re-weight member is served
// from the leader's frontier snapshot.
func TestBatchDedupeAndReuse(t *testing.T) {
	ts := newTestServer(t, Options{})
	status, resp, raw := postBatch(t, ts, tpchBatch)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if !resp.Members[1].Result.Cached {
		t.Error("duplicate member not served from the exact tier")
	}
	if !resp.Members[2].Result.Stats.ReusedFrontier {
		t.Error("re-weight member not served from the frontier snapshot")
	}
	m := metrics(t, ts)
	if m.Requests.Batch != 1 || m.Requests.BatchMembers != 5 {
		t.Errorf("batch counters = %d/%d, want 1/5", m.Requests.Batch, m.Requests.BatchMembers)
	}
}

// TestBatchSharedMemoOnWire: overlapping-but-distinct members (a chain
// and its extension over one inline catalog) traffic the batch's shared
// memo, and the response surfaces the sharing in its stats.
func TestBatchSharedMemoOnWire(t *testing.T) {
	ts := newTestServer(t, Options{})
	body := `{
		"catalog": {
			"tables": [
				{"name": "a", "rows": 100000, "width": 64, "pk": "id"},
				{"name": "b", "rows": 400000, "width": 64, "pk": "id"},
				{"name": "c", "rows": 900000, "width": 64, "pk": "id"},
				{"name": "d", "rows": 50000, "width": 64, "pk": "id"}
			]
		},
		"members": [
			{"query": {
				"name": "chain3",
				"relations": [{"table": "a"}, {"table": "b"}, {"table": "c"}],
				"joins": [
					{"left": 0, "right": 1, "left_col": "id", "right_col": "a_id", "selectivity": 0.00001},
					{"left": 1, "right": 2, "left_col": "id", "right_col": "b_id", "selectivity": 0.0000025}
				]
			 },
			 "algorithm": "exa",
			 "objectives": ["total_time", "buffer_footprint"],
			 "weights": {"total_time": 1, "buffer_footprint": 0.1}},
			{"query": {
				"name": "chain4",
				"relations": [{"table": "a"}, {"table": "b"}, {"table": "c"}, {"table": "d"}],
				"joins": [
					{"left": 0, "right": 1, "left_col": "id", "right_col": "a_id", "selectivity": 0.00001},
					{"left": 1, "right": 2, "left_col": "id", "right_col": "b_id", "selectivity": 0.0000025},
					{"left": 0, "right": 3, "left_col": "d_id", "right_col": "id", "selectivity": 0.00002}
				]
			 },
			 "algorithm": "exa",
			 "objectives": ["total_time", "buffer_footprint"],
			 "weights": {"total_time": 1, "buffer_footprint": 0.1}}
		]
	}`
	status, resp, raw := postBatch(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if resp.Stats.Errors != 0 {
		t.Fatalf("member errors: %s", raw)
	}
	if resp.Stats.SharedSubproblems == 0 {
		t.Error("batch published no shared subproblems")
	}
	// The chain's every non-singleton connected prefix subset ({a,b},
	// {b,c}, {a,b,c}) is shared with the extension; whichever member ran
	// second hit them all.
	if resp.Stats.SharedHits < 3 {
		t.Errorf("shared hits = %d, want >= 3", resp.Stats.SharedHits)
	}
	if s := resp.Members[0].Result.Stats.SharedMemoHits + resp.Members[1].Result.Stats.SharedMemoHits; s < 3 {
		t.Errorf("members' shared_memo_hits sum to %d, want >= 3", s)
	}
}

// TestBatchStream: stream mode emits NDJSON — one member response per
// line, every member exactly once.
func TestBatchStream(t *testing.T) {
	ts := newTestServer(t, Options{})
	body := `{"stream": true,` + tpchBatch[1:]
	res, err := http.Post(ts.URL+"/optimize/batch", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	seen := make(map[int]int)
	sc := bufio.NewScanner(res.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var m BatchMemberResponse
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, sc.Text())
		}
		if m.Error != "" {
			t.Errorf("member %d: %s", m.Member, m.Error)
		}
		seen[m.Member]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if seen[i] != 1 {
			t.Errorf("member %d emitted %d times", i, seen[i])
		}
	}
}

// TestBatchMemberErrorsAreIndependent: an invalid member fails alone with
// its index; the valid members are answered normally.
func TestBatchMemberErrorsAreIndependent(t *testing.T) {
	ts := newTestServer(t, Options{})
	body := `{
		"members": [
			{"tpch": 3, "objectives": ["total_time"], "weights": {"total_time": 1}},
			{"tpch": 3, "objectives": ["latency"]},
			{"objectives": ["total_time"]},
			{"tpch": 5, "objectives": ["total_time"], "weights": {"total_time": 1}}
		]
	}`
	status, resp, raw := postBatch(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if resp.Stats.Errors != 2 {
		t.Fatalf("stats.errors = %d, want 2: %s", resp.Stats.Errors, raw)
	}
	for _, i := range []int{1, 2} {
		if resp.Members[i].Error == "" || resp.Members[i].Result != nil {
			t.Errorf("invalid member %d did not fail alone: %+v", i, resp.Members[i])
		}
	}
	for _, i := range []int{0, 3} {
		if resp.Members[i].Error != "" || resp.Members[i].Result == nil {
			t.Errorf("valid member %d failed: %s", i, resp.Members[i].Error)
		}
	}
}

// TestBatchEnvelopeValidation: batch-level problems are 400s.
func TestBatchEnvelopeValidation(t *testing.T) {
	ts := newTestServer(t, Options{})
	bad := map[string]string{
		"no members":       `{}`,
		"empty members":    `{"members": []}`,
		"bad catalog":      `{"catalog": {"tables": []}, "members": [{"objectives": ["total_time"]}]}`,
		"bad scale factor": `{"scale_factor": -1, "members": [{"tpch": 3, "objectives": ["total_time"]}]}`,
		"unknown field":    `{"members": [], "wat": 1}`,
		"bad json":         `{`,
	}
	for name, body := range bad {
		status, _, raw := postBatch(t, ts, body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, status, raw)
		}
	}

	// tpch members are only meaningful against the TPC-H catalog; with an
	// inline catalog the member fails (member-level, batch still 200).
	status, resp, raw := postBatch(t, ts, `{
		"catalog": {"tables": [{"name": "t", "rows": 10, "width": 8}]},
		"members": [{"tpch": 3, "objectives": ["total_time"]}]
	}`)
	if status != http.StatusOK {
		t.Fatalf("tpch-with-inline-catalog: status %d: %s", status, raw)
	}
	if resp.Members[0].Error == "" {
		t.Error("tpch member against an inline catalog did not fail")
	}

	res, err := http.Get(ts.URL + "/optimize/batch")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /optimize/batch: %d", res.StatusCode)
	}
}
