package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"moqo/internal/core"
	"moqo/internal/fault"
)

// chaos_test.go is the chaos suite: randomized disk-fault schedules,
// dead disks, contained panics, load shedding, and shutdown races. The
// governing invariant is differential — a server under injected faults
// may refuse a request, but every answer it does return is bit-identical
// to the fault-free answer. Errors are allowed; wrong answers are not.

// chaosShapes is the request mix the differential tests replay: cold
// dynamic programs (distinct selectivities are distinct FrontierKeys),
// exact repeats (cache hits), and re-weights of known shapes (frontier
// tier / store hits). Indexes into the slice give the replay order.
func chaosShapes() []string {
	var reqs []string
	for i := 0; i < 4; i++ {
		sel := 0.2 + 0.15*float64(i)
		reqs = append(reqs,
			chainBody(6, sel, "rta", map[string]float64{"total_time": 1}),
			chainBody(6, sel, "rta", map[string]float64{"total_time": 1}),                        // exact repeat
			chainBody(6, sel, "rta", map[string]float64{"total_time": 1, "buffer_footprint": 2}), // re-weight
		)
	}
	reqs = append(reqs, chainBody(8, 0.5, "exa", map[string]float64{"total_time": 1}))
	return reqs
}

// chaosAnswer is the answer-content projection compared by the
// differential: everything the optimizer determines, nothing about how
// the serving tiers happened to produce it (cached / reused_frontier /
// durations legitimately differ when a disk fault forces a recompute).
type chaosAnswer struct {
	Algorithm string
	Plan      string
	Cost      map[string]float64
	Frontier  []map[string]float64
}

func toChaosAnswer(r OptimizeResponse) chaosAnswer {
	return chaosAnswer{Algorithm: r.Algorithm, Plan: string(r.Plan), Cost: r.Cost, Frontier: r.Frontier}
}

// decodeErrResp decodes a non-2xx body.
func decodeErrResp(t *testing.T, raw string) ErrorResponse {
	t.Helper()
	var e ErrorResponse
	if err := json.Unmarshal([]byte(raw), &e); err != nil {
		t.Fatalf("decode error body %q: %v", raw, err)
	}
	return e
}

// TestChaosDifferentialDiskFaults: replay one request stream against a
// fault-free reference and against servers whose frontier store runs on
// a fault-injected filesystem (write/read/sync/open/rename errors,
// ENOSPC, short writes — a new deterministic schedule per seed). Store
// faults must never fail a request (the store is a best-effort tier
// behind two memory tiers) and every answer must match the reference
// bit for bit.
func TestChaosDifferentialDiskFaults(t *testing.T) {
	reference := make(map[string]chaosAnswer)
	ref := newTestServer(t, Options{})
	for _, body := range chaosShapes() {
		status, resp, raw := post(t, ref, body)
		if status != http.StatusOK {
			t.Fatalf("reference request failed (%d): %s", status, raw)
		}
		reference[body] = toChaosAnswer(resp)
	}

	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			inj := fault.NewInjector(nil, fault.Config{
				Seed:        seed,
				PWriteErr:   0.3,
				PReadErr:    0.3,
				PSyncErr:    0.3,
				PRenameErr:  0.5,
				PENOSPC:     0.5,
				PShortWrite: 0.3,
			})
			svc, err := NewE(Options{
				StorePath:       t.TempDir(),
				StoreFS:         inj,
				BreakerCooldown: time.Millisecond,
			})
			if err != nil {
				// Fail-stop at startup on an injected open/recovery fault
				// is correct behavior, just not an interesting run.
				if fault.IsInjected(err) {
					t.Logf("startup fail-stop under schedule (tolerated): %v", err)
					return
				}
				t.Fatalf("NewE under faults: %v", err)
			}
			ts := httptest.NewServer(svc.Handler())
			defer func() {
				ts.Close()
				if err := svc.Close(); err != nil {
					t.Logf("close under faults (tolerated): %v", err)
				}
			}()

			for i, body := range chaosShapes() {
				status, resp, raw := post(t, ts, body)
				if status != http.StatusOK {
					t.Fatalf("request %d failed under store faults (%d): %s — store faults must never fail serving", i, status, raw)
				}
				if got, want := toChaosAnswer(resp), reference[body]; !reflect.DeepEqual(got, want) {
					t.Errorf("request %d: answer under faults differs from fault-free answer:\n got %+v\nwant %+v", i, got, want)
				}
			}
			c := inj.Counters()
			var injected uint64
			for _, n := range c.Injected {
				injected += n
			}
			if injected == 0 {
				t.Errorf("chaos schedule injected no faults (ops=%v) — the test exercised nothing", c.Ops)
			}
		})
	}
}

// TestChaosDifferentialRestart: crash-shaped chaos across a restart.
// A first server absorbs the stream under write faults, is closed, and
// a second server reopens the same damaged store directory fault-free.
// Recovery may drop torn or unreachable snapshots (misses), but
// everything it serves from disk must match the reference.
func TestChaosDifferentialRestart(t *testing.T) {
	reference := make(map[string]chaosAnswer)
	ref := newTestServer(t, Options{})
	for _, body := range chaosShapes() {
		status, resp, _ := post(t, ref, body)
		if status != http.StatusOK {
			t.Fatal("reference request failed")
		}
		reference[body] = toChaosAnswer(resp)
	}

	// Find a schedule whose faults spare store creation (fail-stop at
	// startup is legal but uninteresting here — the point is damage
	// accumulated while running).
	var (
		dir string
		inj *fault.Injector
		svc *Server
	)
	for seed := uint64(40); seed < 60; seed++ {
		dir = t.TempDir()
		inj = fault.NewInjector(nil, fault.Config{
			Seed: seed, PWriteErr: 0.4, PSyncErr: 0.4, PENOSPC: 0.5, PShortWrite: 0.5,
		})
		s, err := NewE(Options{StorePath: dir, StoreFS: inj, BreakerCooldown: time.Millisecond})
		if err == nil {
			svc = s
			break
		}
		if !fault.IsInjected(err) {
			t.Fatal(err)
		}
	}
	if svc == nil {
		t.Fatal("no seed in [40,60) let the store open — schedule too hostile")
	}
	ts := httptest.NewServer(svc.Handler())
	for _, body := range chaosShapes() {
		if status, _, raw := post(t, ts, body); status != http.StatusOK {
			t.Fatalf("request failed under faults (%d): %s", status, raw)
		}
	}
	ts.Close()
	_ = svc.Close() // sync may fail under the schedule; recovery handles it

	// Restart on the damaged directory with a healthy disk.
	svc2, err := NewE(Options{StorePath: dir})
	if err != nil {
		t.Fatalf("reopen damaged store: %v", err)
	}
	ts2 := httptest.NewServer(svc2.Handler())
	defer func() {
		ts2.Close()
		if err := svc2.Close(); err != nil {
			t.Errorf("close restarted server: %v", err)
		}
	}()
	for i, body := range chaosShapes() {
		status, resp, raw := post(t, ts2, body)
		if status != http.StatusOK {
			t.Fatalf("request %d failed after restart (%d): %s", i, status, raw)
		}
		if got, want := toChaosAnswer(resp), reference[body]; !reflect.DeepEqual(got, want) {
			t.Errorf("request %d: answer after damaged-store restart differs:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestChaosDeadDiskBreaker: kill the disk entirely under a breaker and
// the server must keep answering every request from memory, report
// itself degraded (alive on /healthz, not ready on /readyz), and close
// the breaker again once the disk recovers.
func TestChaosDeadDiskBreaker(t *testing.T) {
	inj := fault.NewInjector(nil, fault.Config{Seed: 7})
	svc, err := NewE(Options{
		StorePath:        t.TempDir(),
		StoreFS:          inj,
		BreakerThreshold: 2,
		BreakerCooldown:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		if err := svc.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	// Healthy warm-up, then the disk dies.
	if status, _, raw := post(t, ts, chainBody(6, 0.3, "rta", map[string]float64{"total_time": 1})); status != http.StatusOK {
		t.Fatalf("warm-up failed (%d): %s", status, raw)
	}
	inj.SetDead(true)

	// Every request through the dead disk must still be answered: cold
	// shapes (store lookup + write-through both fail), repeats, and
	// re-weights. The failures trip the breaker.
	for i := 0; i < 6; i++ {
		sel := 0.35 + 0.05*float64(i)
		if status, _, raw := post(t, ts, chainBody(6, sel, "rta", map[string]float64{"total_time": 1})); status != http.StatusOK {
			t.Fatalf("request %d failed on dead disk (%d): %s — must serve memory-only", i, status, raw)
		}
	}
	if st := svc.breaker.State(); st != fault.Open {
		t.Fatalf("breaker state %v after dead-disk traffic, want Open", st)
	}

	// Liveness stays 200 (restarting would not fix the disk); readiness
	// flips to 503 so a balancer can prefer full-capacity replicas.
	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(res.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !h.Degraded || h.Status != "degraded" || h.Store != "degraded" {
		t.Fatalf("healthz on dead disk: status %d, body %+v; want 200 + degraded", res.StatusCode, h)
	}
	res, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz on dead disk: status %d, want 503", res.StatusCode)
	}

	// While open, the breaker keeps traffic off the device: ops stop
	// growing (modulo one half-open probe per cooldown window).
	m := metrics(t, ts)
	if m.FrontierStore.Breaker == nil || m.FrontierStore.Breaker.Trips == 0 {
		t.Fatalf("breaker stats missing from /metrics: %+v", m.FrontierStore)
	}
	if m.FrontierStore.Skipped == 0 {
		t.Error("no store operations skipped while breaker open")
	}

	// Disk recovers: after the cooldown a half-open probe succeeds and
	// the breaker closes.
	inj.SetDead(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		sel := 0.8 + 0.01*float64(time.Now().UnixNano()%100) // distinct cold shapes force store traffic
		post(t, ts, chainBody(6, sel, "rta", map[string]float64{"total_time": 1}))
		if svc.breaker.State() == fault.Closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker did not close after disk recovery: %+v", svc.breaker.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	res, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("readyz after recovery: status %d, want 200", res.StatusCode)
	}
}

// TestChaosWorkerPanicEndToEnd: a panic inside the optimizer's worker
// pool fails exactly that request with a structured 500, is never
// cached, and the next identical request succeeds — the pool and the
// process survive.
func TestChaosWorkerPanicEndToEnd(t *testing.T) {
	ts := newTestServer(t, Options{})
	body := chainBody(6, 0.5, "rta", map[string]float64{"total_time": 1})

	core.SetPanicHook(func(id int32) {
		if id == 5 {
			panic("chaos: injected worker panic")
		}
	})
	defer core.SetPanicHook(nil)

	status, _, raw := post(t, ts, body)
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d under worker panic, want 500: %s", status, raw)
	}
	e := decodeErrResp(t, raw)
	if e.Code != CodeInternal {
		t.Errorf("error code %q, want %q", e.Code, CodeInternal)
	}
	if bytes.Contains([]byte(e.Error), []byte("goroutine")) {
		t.Errorf("500 body leaks a stack trace: %s", e.Error)
	}

	// The crash was contained: same request, no hook, full answer — and
	// the failed attempt must not have poisoned the cache.
	core.SetPanicHook(nil)
	status, resp, raw := post(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("request after contained panic failed (%d): %s", status, raw)
	}
	if resp.Cached {
		t.Error("failed run was cached — panics must never populate the cache")
	}
	if m := metrics(t, ts); m.Requests.Panics == 0 {
		t.Error("panics counter not incremented")
	}
}

// TestChaosHandlerPanicRecovered: the recovery middleware turns a
// handler panic into a structured 500 and the handler chain keeps
// serving; http.ErrAbortHandler passes through untouched per the
// net/http contract.
func TestChaosHandlerPanicRecovered(t *testing.T) {
	s := New(Options{})
	calls := 0
	h := s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			panic("chaos: handler crash")
		}
		w.WriteHeader(http.StatusOK)
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d under handler panic, want 500", rec.Code)
	}
	if e := decodeErrResp(t, rec.Body.String()); e.Code != CodeInternal {
		t.Errorf("error code %q, want %q", e.Code, CodeInternal)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("handler chain dead after contained panic: status %d", rec.Code)
	}

	// ErrAbortHandler must propagate (net/http uses it to abort the
	// connection without a reply).
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Error("ErrAbortHandler swallowed by the recovery middleware")
		}
	}()
	h2 := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	h2.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/x", nil))
}

// TestChaosQueueBoundSheds: with the scheduler's slot held and its
// queue full, a new arrival is shed immediately — 503, Retry-After,
// code "overload", reason "queue_full" — instead of queuing unboundedly.
func TestChaosQueueBoundSheds(t *testing.T) {
	svc, err := NewE(Options{FIFOScheduling: true, MaxColdDPs: 1, MaxQueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Hold the single slot directly, then park one request in the queue.
	if err := svc.sched.Acquire(t.Context(), "", 1, 0); err != nil {
		t.Fatal(err)
	}
	queuedDone := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts, chainBody(5, 0.5, "rta", map[string]float64{"total_time": 1}))
		queuedDone <- status
	}()
	deadline := time.Now().Add(5 * time.Second)
	for svc.sched.Queued() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never reached the scheduler")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: the next arrival is shed without doing any work.
	res, err := http.Post(ts.URL+"/optimize", "application/json",
		bytes.NewBufferString(chainBody(5, 0.4, "rta", map[string]float64{"total_time": 1})))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d at queue bound, want 503: %s", res.StatusCode, buf.String())
	}
	if res.Header.Get("Retry-After") == "" {
		t.Error("503 shed response missing Retry-After")
	}
	if e := decodeErrResp(t, buf.String()); e.Code != CodeOverload || e.Reason != "queue_full" {
		t.Errorf("shed error = %+v, want code %q reason queue_full", e, CodeOverload)
	}

	// Release the slot: the queued request drains normally.
	svc.sched.Release("")
	if status := <-queuedDone; status != http.StatusOK {
		t.Fatalf("queued request failed after release: %d", status)
	}
	if m := metrics(t, ts); m.Requests.ShedOverload != 1 {
		t.Errorf("shed_overload = %d, want 1", m.Requests.ShedOverload)
	}
}

// TestChaosBudgetExhaustedWhileQueued: a request whose deadline budget
// dies while it is still waiting for a scheduler slot is shed with 503
// reason "budget_exhausted" — queue wait consumes the budget, and a
// request that never ran reports overload, not a timeout of work it
// never did.
func TestChaosBudgetExhaustedWhileQueued(t *testing.T) {
	svc, err := NewE(Options{FIFOScheduling: true, MaxColdDPs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	if err := svc.sched.Acquire(t.Context(), "", 1, 0); err != nil {
		t.Fatal(err)
	}
	defer svc.sched.Release("")

	body := chainBody(5, 0.5, "rta", map[string]float64{"total_time": 1})
	body = body[:len(body)-1] + `,"timeout_ms":60}`
	res, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d for budget death in queue, want 503: %s", res.StatusCode, buf.String())
	}
	if e := decodeErrResp(t, buf.String()); e.Code != CodeOverload || e.Reason != "budget_exhausted" {
		t.Errorf("shed error = %+v, want code %q reason budget_exhausted", e, CodeOverload)
	}
}

// TestChaosCloseUnderDemotionLoad: closing the server while requests
// are actively evicting snapshots into the demotion queue must neither
// panic (send on closed channel) nor deadlock; every demotion enqueued
// before shutdown is flushed or counted dropped. Run under -race this
// is the regression test for the eviction→close race.
func TestChaosCloseUnderDemotionLoad(t *testing.T) {
	svc, err := NewE(Options{
		StorePath:             t.TempDir(),
		FrontierCacheCapacity: 2, // tiny: almost every cold shape evicts one
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sel := 0.1 + 0.001*float64(g*1000+i%200)
				res, err := http.Post(ts.URL+"/optimize", "application/json",
					bytes.NewBufferString(chainBody(5, sel, "rta", map[string]float64{"total_time": 1})))
				if err != nil {
					return // server shutting down
				}
				_ = res.Body.Close()
			}
		}(g)
	}

	time.Sleep(100 * time.Millisecond) // let evictions and demotions flow
	if err := svc.Close(); err != nil {
		t.Errorf("close under demotion load: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := svc.Close(); err != nil { // idempotent
		t.Errorf("second close: %v", err)
	}
}
