package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"moqo/internal/server"
)

// Example demonstrates a cache-warm/hit round trip against the moqod
// service: the first request runs the optimizer engine, the second —
// identical — request is answered from the plan cache with the same plan
// and costs.
func Example() {
	svc := httptest.NewServer(server.New(server.Options{}).Handler())
	defer svc.Close()

	body := `{
		"tpch": 3,
		"alpha": 1.5,
		"objectives": ["total_time", "energy"],
		"weights": {"total_time": 1, "energy": 0.2}
	}`
	ask := func() server.OptimizeResponse {
		res, err := http.Post(svc.URL+"/optimize", "application/json", bytes.NewBufferString(body))
		if err != nil {
			panic(err)
		}
		defer res.Body.Close()
		var out server.OptimizeResponse
		if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
			panic(err)
		}
		return out
	}

	warm := ask() // computes: the cache is cold
	hit := ask()  // identical request: served from the plan cache

	fmt.Println("first cached: ", warm.Cached)
	fmt.Println("second cached:", hit.Cached)
	fmt.Println("same plan:    ", bytes.Equal(warm.Plan, hit.Plan))
	fmt.Println("same cost:    ", warm.Cost["total_time"] == hit.Cost["total_time"])
	// Output:
	// first cached:  false
	// second cached: true
	// same plan:     true
	// same cost:     true
}
