package server

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"moqo/internal/fault"
)

// handleMetricsPrometheus serves GET /metrics/prometheus: the same
// counters as /metrics in the Prometheus text exposition format
// (version 0.0.4), hand-rolled so the daemon scrapes without a client
// library dependency. Tenant names pass ValidName ([A-Za-z0-9_.-]), so
// label values need no escaping.
func (s *Server) handleMetricsPrometheus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	var b strings.Builder
	p := promWriter{b: &b}

	p.family("moqo_uptime_seconds", "gauge", "Seconds since the server started.")
	p.sample("moqo_uptime_seconds", nil, time.Since(s.start).Seconds())

	p.family("moqo_requests_total", "counter", "Requests received, by endpoint.")
	p.sample("moqo_requests_total", labels{{"endpoint", "optimize"}}, float64(s.requests.Load()))
	p.sample("moqo_requests_total", labels{{"endpoint", "batch"}}, float64(s.batchRequests.Load()))
	p.family("moqo_batch_members_total", "counter", "Batch members received.")
	p.sample("moqo_batch_members_total", nil, float64(s.batchMembers.Load()))
	p.family("moqo_errors_total", "counter", "Failed requests plus failed batch members.")
	p.sample("moqo_errors_total", nil, float64(s.errors.Load()))
	p.family("moqo_in_flight", "gauge", "Requests currently being served.")
	p.sample("moqo_in_flight", nil, float64(s.inFlight.Load()))
	p.family("moqo_shed_overload_total", "counter", "Requests shed with 503: queue at its bound or deadline budget exhausted while queued.")
	p.sample("moqo_shed_overload_total", nil, float64(s.shedOverload.Load()))
	p.family("moqo_panics_total", "counter", "Contained panics (worker-pool and handler); each failed one request, the process survived.")
	p.sample("moqo_panics_total", nil, float64(s.panics.Load()))
	p.family("moqo_queue_depth", "gauge", "Cold dynamic programs waiting across all admission queues.")
	p.sample("moqo_queue_depth", nil, float64(s.sched.Queued()))

	lat := s.latencySnapshot()
	p.family("moqo_latency_quantile_ms", "gauge", "Served-request latency quantiles over a sliding window.")
	p.sample("moqo_latency_quantile_ms", labels{{"quantile", "0.5"}}, lat.P50)
	p.sample("moqo_latency_quantile_ms", labels{{"quantile", "0.99"}}, lat.P99)

	p.family("moqo_cache_hits_total", "counter", "Plan-cache hits, by tier.")
	p.family("moqo_cache_misses_total", "counter", "Plan-cache misses, by tier.")
	p.family("moqo_cache_coalesced_total", "counter", "Lookups served by waiting on an in-flight identical computation, by tier.")
	p.family("moqo_cache_evictions_total", "counter", "Plan-cache LRU evictions, by tier.")
	p.family("moqo_cache_entries", "gauge", "Plan-cache entries, by tier.")
	if s.cache != nil {
		st := s.cache.Stats()
		tier := labels{{"tier", "exact"}}
		p.sample("moqo_cache_hits_total", tier, float64(st.Hits))
		p.sample("moqo_cache_misses_total", tier, float64(st.Misses))
		p.sample("moqo_cache_coalesced_total", tier, float64(st.Coalesced))
		p.sample("moqo_cache_evictions_total", tier, float64(st.Evictions))
		p.sample("moqo_cache_entries", tier, float64(st.Entries))
	}
	if s.frontier != nil {
		st := s.frontier.Stats()
		tier := labels{{"tier", "frontier"}}
		p.sample("moqo_cache_hits_total", tier, float64(st.Hits))
		p.sample("moqo_cache_misses_total", tier, float64(st.Misses))
		p.sample("moqo_cache_coalesced_total", tier, float64(st.Coalesced))
		p.sample("moqo_cache_evictions_total", tier, float64(st.Evictions))
		p.sample("moqo_cache_entries", tier, float64(st.Entries))
		p.family("moqo_reweight_served_total", "counter", "Requests answered from a cached frontier snapshot instead of a dynamic program.")
		p.sample("moqo_reweight_served_total", nil, float64(s.reweightServed.Load()))
		p.family("moqo_snapshot_bytes", "gauge", "Estimated bytes of frontier snapshots cached in memory.")
		p.sample("moqo_snapshot_bytes", nil, float64(s.snapshotBytes.Load()))
	}
	if s.store != nil {
		st := s.store.Stats()
		p.family("moqo_store_hits_total", "counter", "Disk frontier-store hits.")
		p.sample("moqo_store_hits_total", nil, float64(st.Hits))
		p.family("moqo_store_misses_total", "counter", "Disk frontier-store misses.")
		p.sample("moqo_store_misses_total", nil, float64(st.Misses))
		p.family("moqo_store_writes_total", "counter", "Disk frontier-store snapshot appends.")
		p.sample("moqo_store_writes_total", nil, float64(st.Writes))
		p.family("moqo_store_bytes", "gauge", "Live payload bytes in the disk frontier store.")
		p.sample("moqo_store_bytes", nil, float64(st.Bytes))
		p.family("moqo_store_entries", "gauge", "Entries in the disk frontier store.")
		p.sample("moqo_store_entries", nil, float64(st.Entries))
		p.family("moqo_store_io_errors_total", "counter", "Device-level I/O failures observed by the disk frontier store.")
		p.sample("moqo_store_io_errors_total", nil, float64(st.IOErrors))
		p.family("moqo_store_skipped_total", "counter", "Store operations skipped because the circuit breaker was open.")
		p.sample("moqo_store_skipped_total", nil, float64(s.storeSkipped.Load()))
		if s.breaker != nil {
			bst := s.breaker.Stats()
			p.family("moqo_store_breaker_state", "gauge", "Store circuit breaker state: 0 closed, 1 half-open, 2 open.")
			var state float64
			switch s.breaker.State() {
			case fault.HalfOpen:
				state = 1
			case fault.Open:
				state = 2
			}
			p.sample("moqo_store_breaker_state", nil, state)
			p.family("moqo_store_breaker_trips_total", "counter", "Times the store breaker tripped open.")
			p.sample("moqo_store_breaker_trips_total", nil, float64(bst.Trips))
		}
	}

	// Per-tenant series: one sample per tracked tenant, labeled by name.
	snaps := s.tenants.Snapshots()
	if len(snaps) > 0 {
		depths := s.sched.QueueDepths()
		granted := s.sched.Granted()
		p.family("moqo_tenant_requests_total", "counter", "Requests received per tenant (batch members count individually).")
		p.family("moqo_tenant_admitted_total", "counter", "Requests the tenant's quota admitted.")
		p.family("moqo_tenant_rejected_total", "counter", "Requests the tenant's quota rejected, by reason.")
		p.family("moqo_tenant_queue_depth", "gauge", "Cold dynamic programs waiting in the tenant's admission queue.")
		p.family("moqo_tenant_granted_total", "counter", "Cold-DP slots the fair scheduler granted the tenant.")
		p.family("moqo_tenant_cache_bytes", "gauge", "Shared-cache bytes attributed to entries the tenant populated.")
		p.family("moqo_tenant_cache_entries", "gauge", "Shared-cache entries attributed to the tenant.")
		p.family("moqo_tenant_cache_evictions_total", "counter", "Attributed entries lost to LRU eviction.")
		p.family("moqo_tenant_latency_quantile_ms", "gauge", "Per-tenant served-request latency quantiles.")
		for _, snap := range snaps {
			ten := labels{{"tenant", snap.Name}}
			p.sample("moqo_tenant_requests_total", ten, float64(snap.Requests))
			p.sample("moqo_tenant_admitted_total", ten, float64(snap.Admitted))
			for _, reason := range []string{"rate", "tables", "cost"} {
				if n, ok := snap.Rejected[reason]; ok {
					p.sample("moqo_tenant_rejected_total",
						labels{{"tenant", snap.Name}, {"reason", reason}}, float64(n))
				}
			}
			p.sample("moqo_tenant_queue_depth", ten, float64(depths[snap.Name]))
			p.sample("moqo_tenant_granted_total", ten, float64(granted[snap.Name]))
			p.sample("moqo_tenant_cache_bytes", ten, float64(snap.CacheBytes))
			p.sample("moqo_tenant_cache_entries", ten, float64(snap.CacheEntries))
			p.sample("moqo_tenant_cache_evictions_total", ten, float64(snap.CacheEvictions))
			p.sample("moqo_tenant_latency_quantile_ms",
				labels{{"tenant", snap.Name}, {"quantile", "0.5"}}, snap.LatencyP50Ms)
			p.sample("moqo_tenant_latency_quantile_ms",
				labels{{"tenant", snap.Name}, {"quantile", "0.99"}}, snap.LatencyP99Ms)
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, b.String())
}

// labels is an ordered label set (order is part of the exposition, so a
// map would make output nondeterministic).
type labels [][2]string

// promWriter accumulates one exposition document.
type promWriter struct{ b *strings.Builder }

// family writes a metric family's HELP and TYPE header.
func (p promWriter) family(name, typ, help string) {
	fmt.Fprintf(p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample writes one sample line. Label values are restricted to
// ValidName-safe characters by construction, so %q quoting is exact.
func (p promWriter) sample(name string, ls labels, v float64) {
	p.b.WriteString(name)
	if len(ls) > 0 {
		p.b.WriteByte('{')
		for i, kv := range ls {
			if i > 0 {
				p.b.WriteByte(',')
			}
			fmt.Fprintf(p.b, "%s=%q", kv[0], kv[1])
		}
		p.b.WriteByte('}')
	}
	p.b.WriteByte(' ')
	p.b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	p.b.WriteByte('\n')
}
