// Package server implements moqod's HTTP/JSON optimization service: the
// multi-user, repeated-invocation setting of the paper's Cloud-provider
// scenario (Trummer & Koch, SIGMOD 2014, Section 1), where one optimizer
// serves many tenants that submit recurring query shapes under varying
// weights and bounds.
//
// Four endpoints:
//
//	POST /optimize        — solve one MOQO problem (TPC-H shortcut or
//	                        inline catalog/query; per-request algorithm,
//	                        alpha, objectives, weights, bounds, workers
//	                        and deadline)
//	POST /optimize/batch  — solve a workload of problems over one shared
//	                        catalog as a batch: one catalog resolution
//	                        and per-shape cardinality warm-up, identical
//	                        members coalesced to one dynamic program,
//	                        re-weights answered from sibling frontiers,
//	                        cross-query subproblem reuse through a
//	                        batch-scoped shared memo, members scheduled
//	                        most-expensive-first; optional NDJSON
//	                        streaming of per-member results
//	GET  /metrics         — JSON snapshot of request, latency and cache
//	                        counters
//	GET  /healthz         — liveness probe
//
// Requests are served through a two-tier plan cache (internal/cache):
//
//   - An exact-result tier keyed by moqo.Request.CacheKey — a repeat of
//     the identical request (weights and bounds included) is a lookup.
//   - A frontier tier keyed by the weight/bound-free
//     moqo.Request.FrontierKey, holding compact Pareto-frontier
//     snapshots. A request that differs from a cached one only in
//     weights or bounds — the paper's Figure 3 re-weighting scenario —
//     is answered by a SelectBest scan over the snapshot in
//     microseconds instead of a new dynamic program (EXA/RTA reuse the
//     frontier outright; IRA seeds its refinement from it).
//
// Both tiers coalesce concurrent identical keys (single-flight), so a
// burst of requests for one query shape — even under distinct weights —
// runs the engine once. Cancellations propagate: a client disconnect
// aborts the in-flight dynamic program via moqo.OptimizeContext, and
// per-request deadlines degrade gracefully through the paper's timeout
// path. Timed-out (degraded) results are never stored in either tier, so
// every cached answer is a full-fidelity result.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"moqo"
	"moqo/internal/cache"
	"moqo/internal/fault"
	"moqo/internal/store"
	"moqo/internal/tenant"
)

// Options configures a Server.
type Options struct {
	// CacheCapacity bounds the exact-result tier of the plan cache
	// (entries). 0 means the default (1024); negative disables caching
	// entirely (both tiers).
	CacheCapacity int
	// CacheShards is the shard count of the plan cache (rounded up to a
	// power of two; 0 picks the cache default). Applies to both tiers.
	CacheShards int
	// FrontierCacheCapacity bounds the frontier tier: FrontierSnapshots
	// keyed by the weight/bound-free moqo.Request.FrontierKey, from which
	// weight/bound changes are answered with a SelectBest scan instead of
	// a new optimization. 0 means the default (512); negative disables
	// the tier (re-weight requests then always recompute).
	FrontierCacheCapacity int
	// DefaultTimeout applies to requests without timeout_ms (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps per-request timeouts (default 2m).
	MaxTimeout time.Duration
	// DefaultWorkers applies to requests without workers (default:
	// runtime.NumCPU()). Per-request workers are clamped to at most
	// runtime.NumCPU().
	DefaultWorkers int
	// DefaultEnumeration applies to requests without an enumeration
	// field. The zero value (moqo.EnumAuto) picks the graph-aware
	// strategy for connected join graphs — results are identical for
	// every strategy, so this only tunes enumeration work.
	DefaultEnumeration moqo.EnumerationStrategy
	// StorePath enables the disk-backed frontier store: marshaled
	// frontier snapshots persist under this directory, keyed by
	// FrontierKey, so a restarted server answers known query shapes from
	// disk instead of re-running their dynamic programs. Empty disables
	// persistence. The frontier tier must be enabled for the store to
	// see traffic.
	StorePath string
	// StoreMaxBytes bounds the store's live bytes (0 = the store default,
	// 256 MiB; negative = unbounded), mirroring the in-memory tier's LRU
	// boundedness on disk.
	StoreMaxBytes int64
	// StoreNoSync skips the fsync after each store append — faster
	// writes, and a crash may lose the most recent snapshots (recovery
	// still drops whatever was torn; nothing damaged is ever served).
	StoreNoSync bool
	// StoreFS is the filesystem seam handed to the frontier store (nil
	// means the real OS). Chaos tests and the -fig chaos harness pass a
	// fault.Injector to exercise disk failures deterministically.
	StoreFS fault.FS
	// NoStoreBreaker disables the store-tier circuit breaker — the
	// baseline for chaos measurements, where every request keeps paying
	// a failing disk's latency. The default (false) wraps every store
	// operation in a Closed/Open/HalfOpen breaker: repeated disk errors
	// trip it, serving degrades to memory-only (both cache tiers keep
	// answering), and half-open probes with exponential backoff retry
	// the disk.
	NoStoreBreaker bool
	// BreakerThreshold is the consecutive-failure count that trips the
	// store breaker (0 = the fault package default, 5).
	BreakerThreshold int
	// BreakerCooldown is the first open window before a half-open
	// probe; successive failed probes double it up to BreakerMaxCooldown
	// (0 = the defaults, 250ms and 30s).
	BreakerCooldown    time.Duration
	BreakerMaxCooldown time.Duration
	// MaxQueueDepth bounds the cold-DP scheduler's total queued
	// waiters: an arrival past the bound is shed immediately with 503 +
	// Retry-After instead of growing an unbounded latency cliff. It
	// complements the per-tenant token buckets (which cap rate, not
	// simultaneous backlog). 0 means unbounded.
	MaxQueueDepth int
	// Tenants is the tenant registry: identity resolution, per-tenant
	// quotas, cost-based admission, and per-tenant metrics. nil builds
	// an empty registry — every request is the anonymous tenant under an
	// all-unlimited quota, so an untenanted server behaves exactly as
	// before. Tenancy never affects answers: plans, costs and frontiers
	// are bit-for-bit identical with or without it (only scheduling,
	// limits and metrics change).
	Tenants *tenant.Registry
	// MaxColdDPs caps how many cold dynamic programs run concurrently
	// across all tenants — the fair scheduler's slot count. Requests
	// answered from the caches never consume a slot. 0 means
	// runtime.NumCPU().
	MaxColdDPs int
	// FIFOScheduling replaces fair weighted round-robin with one global
	// arrival-order queue over every request (cache hits included) — the
	// unfairness baseline for benchmarks and tests, not for production.
	FIFOScheduling bool
}

// withDefaults fills in the documented defaults.
func (o Options) withDefaults() Options {
	if o.CacheCapacity == 0 {
		o.CacheCapacity = 1024
	}
	if o.FrontierCacheCapacity == 0 {
		o.FrontierCacheCapacity = 512
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout == 0 {
		o.MaxTimeout = 2 * time.Minute
	}
	if o.DefaultWorkers <= 0 {
		o.DefaultWorkers = runtime.NumCPU()
	}
	if o.MaxColdDPs == 0 {
		o.MaxColdDPs = runtime.NumCPU()
	}
	return o
}

// Server is the moqod optimization service. Construct with New; it is
// safe for concurrent use.
type Server struct {
	opts  Options
	cache *cache.Cache[OptimizeResponse] // nil when caching is disabled
	// frontier is the snapshot tier, keyed by moqo.Request.FrontierKey
	// (nil when disabled). It is consulted on exact-tier misses for
	// algorithms with reusable frontiers; a hit serves the request by a
	// SelectBest scan over the cached snapshot (moqo.ReoptimizeContext).
	frontier *cache.Cache[frontierEntry]
	// store persists frontier snapshots across restarts (nil when
	// disabled): written through on DP completion, consulted on frontier
	// tier misses before a cold DP runs, refreshed on memory eviction
	// (demotion). Keys are FrontierKeys, which embed the catalog
	// fingerprint and key-format version — so a catalog or version
	// change invalidates stale disk entries by never looking them up.
	store *store.Store
	// demote carries snapshots from the frontier tier's eviction hook
	// (which runs under a shard lock and must not block) to the
	// background writer that refreshes their recency in the store. Set
	// once at construction, closed once by Close. demoteMu orders
	// senders against the close: the hook sends under RLock after
	// checking demoteClosed, Close flips the flag under Lock before
	// closing the channel — without it a send could race the close and
	// panic the evicting request's goroutine.
	demote       chan *moqo.FrontierSnapshot
	demoteMu     sync.RWMutex
	demoteClosed bool
	demoteWG     sync.WaitGroup
	closeOnce    sync.Once
	start        time.Time

	// breaker guards the store tier (nil when the store is disabled or
	// NoStoreBreaker): repeated disk errors trip it and serving
	// degrades to memory-only instead of paying the failing disk's
	// latency on every request.
	breaker *fault.Breaker

	// tenants resolves identities, enforces quotas and keeps per-tenant
	// metrics; sched queues cold dynamic programs behind per-tenant
	// admission queues. Both always exist (an untenanted server gets an
	// empty registry and anonymous-only scheduling), so handlers never
	// branch on tenancy being configured.
	tenants *tenant.Registry
	sched   *tenant.Scheduler

	catMu    sync.Mutex
	catalogs map[float64]*moqo.Catalog // TPC-H catalogs by scale factor

	requests      atomic.Uint64
	batchRequests atomic.Uint64
	batchMembers  atomic.Uint64
	errors        atomic.Uint64
	inFlight      atomic.Int64
	// reweightServed counts requests answered from a cached frontier
	// snapshot (hit or coalesced on the frontier tier) rather than a DP.
	reweightServed atomic.Uint64
	// snapshotBytes gauges the estimated bytes of snapshots currently in
	// the frontier tier (adds on store, subtracts via the eviction hook).
	snapshotBytes atomic.Int64
	// storeDecodeDropped counts disk entries that passed the store's
	// checksums but failed snapshot decoding or key verification —
	// dropped and deleted, never served. /metrics folds it into the
	// store's corrupt_dropped.
	storeDecodeDropped atomic.Uint64
	// demoteDropped counts evicted snapshots the demotion queue had no
	// room for (the store still holds their write-through copy, just
	// with stale recency).
	demoteDropped atomic.Uint64
	// storeErrors counts store operations that failed with a disk
	// error; storeSkipped counts operations not attempted because the
	// breaker was open (served memory-only instead).
	storeErrors  atomic.Uint64
	storeSkipped atomic.Uint64
	// shedOverload counts requests shed with 503 (queue bound hit, or
	// deadline budget exhausted while queued).
	shedOverload atomic.Uint64
	// panics counts contained panics — worker-pool panics surfaced as
	// ErrInternalPanic and handler panics caught by the recover
	// middleware. Each failed exactly one request.
	panics atomic.Uint64

	latMu      sync.Mutex
	latencies  []float64 // ring buffer of recent /optimize latencies (ms)
	latNext    int
	latSamples int
}

// latencyWindow is the sliding-window size of the latency metrics.
const latencyWindow = 1024

// New builds a Server, panicking if the frontier store cannot be opened
// (only possible with Options.StorePath set — use NewE to handle the
// error).
func New(opts Options) *Server {
	s, err := NewE(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// NewE builds a Server, opening the disk-backed frontier store when
// Options.StorePath is set. Callers that enable the store should Close
// the server on shutdown.
func NewE(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	s := &Server{
		opts:      opts,
		start:     time.Now(),
		catalogs:  make(map[float64]*moqo.Catalog),
		latencies: make([]float64, latencyWindow),
		tenants:   opts.Tenants,
	}
	if s.tenants == nil {
		s.tenants = tenant.NewRegistry(nil)
	}
	policy := tenant.Fair
	if opts.FIFOScheduling {
		policy = tenant.FIFO
	}
	s.sched = tenant.NewScheduler(opts.MaxColdDPs, policy)
	s.sched.SetMaxQueue(opts.MaxQueueDepth)
	if opts.CacheCapacity > 0 {
		s.cache = cache.New[OptimizeResponse](opts.CacheCapacity, opts.CacheShards)
		// Cache-partition accounting: each stored response carries the
		// tenant whose request computed it, so its departure is charged
		// back exactly (attribution only — keys and values are
		// tenant-free, tenancy never changes what a lookup returns).
		s.cache.OnEvict(func(_ string, v OptimizeResponse, reason cache.EvictReason) {
			if v.tenant != "" {
				s.tenants.CacheEvict(v.tenant, respSizeBytes(v), reason == cache.Evicted)
			}
		})
		if opts.FrontierCacheCapacity > 0 {
			s.frontier = cache.New[frontierEntry](opts.FrontierCacheCapacity, opts.CacheShards)
			if opts.StorePath != "" {
				st, err := store.Open(store.Options{
					Dir:      opts.StorePath,
					MaxBytes: opts.StoreMaxBytes,
					NoSync:   opts.StoreNoSync,
					FS:       opts.StoreFS,
				})
				if err != nil {
					return nil, err
				}
				s.store = st
				if !opts.NoStoreBreaker {
					s.breaker = fault.NewBreaker(fault.BreakerConfig{
						Threshold:   opts.BreakerThreshold,
						Cooldown:    opts.BreakerCooldown,
						MaxCooldown: opts.BreakerMaxCooldown,
					})
				}
				s.demote = make(chan *moqo.FrontierSnapshot, demoteQueueDepth)
				s.demoteWG.Add(1)
				go s.demoteLoop()
			}
			s.frontier.OnEvict(func(_ string, ent frontierEntry, reason cache.EvictReason) {
				s.snapshotBytes.Add(-int64(ent.snap.SizeBytes()))
				if s.demote != nil && reason == cache.Evicted && ent.snap != nil {
					// Demotion: a capacity eviction refreshes the snapshot's
					// recency in the disk store (its bytes were already
					// written through on DP completion; this keeps hot
					// shapes from aging out of the disk budget). Replaced
					// entries are superseded by a finer snapshot the caller
					// writes through itself. The hook runs under a shard
					// lock, so hand off without blocking and drop on a full
					// queue. The RLock pairs with Close: after shutdown
					// begins the snapshot is counted as dropped, never sent
					// on a closed channel.
					s.demoteMu.RLock()
					if s.demoteClosed {
						s.demoteDropped.Add(1)
					} else {
						select {
						case s.demote <- ent.snap:
						default:
							s.demoteDropped.Add(1)
						}
					}
					s.demoteMu.RUnlock()
				}
			})
			// Second, independent hook: per-tenant attribution for the
			// frontier tier, mirroring the exact tier's.
			s.frontier.OnEvict(func(_ string, ent frontierEntry, reason cache.EvictReason) {
				if ent.ten != "" && ent.snap != nil {
					s.tenants.CacheEvict(ent.ten, int64(ent.snap.SizeBytes()), reason == cache.Evicted)
				}
			})
		}
	}
	return s, nil
}

// demoteQueueDepth bounds the eviction→store demotion queue.
const demoteQueueDepth = 64

// demoteLoop drains the demotion queue: marshaling off the eviction
// hook's shard lock, then re-putting to refresh the store's recency.
// Writes honor the breaker — while the disk is tripped a demotion is
// counted as dropped rather than hammering the dead device (the store
// still holds the snapshot's write-through copy, just with stale
// recency).
func (s *Server) demoteLoop() {
	defer s.demoteWG.Done()
	for snap := range s.demote {
		if !s.storeAllow() {
			s.demoteDropped.Add(1)
			continue
		}
		data, err := snap.MarshalBinary()
		if err != nil {
			continue
		}
		s.storeResult(s.store.Put(snap.Key(), data))
	}
}

// storeAllow reports whether the store tier may be touched right now:
// there is a store, and the circuit breaker (when enabled) is not
// open. Skipped operations are counted — they are the "serving
// memory-only" signal on /metrics.
func (s *Server) storeAllow() bool {
	if s.store == nil {
		return false
	}
	if s.breaker != nil && !s.breaker.Allow() {
		s.storeSkipped.Add(1)
		return false
	}
	return true
}

// storeResult feeds one store operation's outcome to the breaker and
// the error counter.
func (s *Server) storeResult(err error) {
	if err != nil {
		s.storeErrors.Add(1)
		if s.breaker != nil {
			s.breaker.Failure()
		}
		return
	}
	if s.breaker != nil {
		s.breaker.Success()
	}
}

// storePut marshals a snapshot and writes it through to the disk store
// (no-op without a store or while the breaker is open).
func (s *Server) storePut(snap *moqo.FrontierSnapshot) {
	if snap == nil || !s.storeAllow() {
		return
	}
	data, err := snap.MarshalBinary()
	if err != nil {
		return
	}
	s.storeResult(s.store.Put(snap.Key(), data))
}

// storeGet consults the disk store for a frontier snapshot under fkey.
// Entries that fail decoding or key verification — version skew, or
// damage the store's checksums cannot see — are deleted and counted,
// never served. A device-level read error is a miss that feeds the
// breaker (the entry survives in the store's index for after the disk
// recovers).
func (s *Server) storeGet(fkey string) *moqo.FrontierSnapshot {
	if !s.storeAllow() {
		return nil
	}
	data, ok, err := s.store.GetE(fkey)
	if err != nil {
		s.storeResult(err)
		return nil
	}
	if !ok {
		// Index miss: the device was never touched, so this proves
		// nothing about its health — feeding it to the breaker as a
		// success would reset the failure streak (and strand a half-open
		// probe) on an operation that did no I/O.
		if s.breaker != nil {
			s.breaker.Cancel()
		}
		return nil
	}
	s.storeResult(nil)
	snap, err := moqo.UnmarshalFrontierSnapshot(data)
	if err != nil || snap.Key() != fkey {
		s.storeDecodeDropped.Add(1)
		_ = s.store.Delete(fkey)
		return nil
	}
	return snap
}

// Close shuts the server's background work down and closes the frontier
// store: the demotion channel is closed and fully drained first (every
// demotion enqueued before shutdown is flushed to disk or counted as
// dropped — never lost silently, never blocked on), then the store's
// segments are synced and closed. Call it only after the HTTP handler
// has stopped serving (http.Server.Shutdown); it is safe on a
// store-less server and more than once.
func (s *Server) Close() error {
	if s.store == nil {
		return nil
	}
	s.closeOnce.Do(func() {
		s.demoteMu.Lock()
		s.demoteClosed = true
		s.demoteMu.Unlock()
		close(s.demote)
		s.demoteWG.Wait()
	})
	return s.store.Close()
}

// Handler returns the service's HTTP handler. Every route runs inside
// the panic-recovery middleware: a handler panic answers that one
// request with a structured 500 and leaves the server serving.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/optimize", s.handleOptimize)
	mux.HandleFunc("/optimize/batch", s.handleOptimizeBatch)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics/prometheus", s.handleMetricsPrometheus)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return s.recoverPanics(mux)
}

// recoverPanics contains handler panics: the panicking request gets a
// structured 500 (best-effort — headers may already be out) and the
// process keeps serving. http.ErrAbortHandler passes through, as the
// net/http contract requires.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.panics.Add(1)
			s.errors.Add(1)
			s.writeJSON(w, http.StatusInternalServerError, ErrorResponse{
				Error: "internal: handler panic (contained)",
				Code:  CodeInternal,
			})
		}()
		next.ServeHTTP(w, r)
	})
}

// maxCachedCatalogs bounds the per-scale-factor TPC-H catalog memo; a
// client iterating over arbitrary scale factors must not grow the daemon
// without limit. Overflowing scale factors get a freshly built catalog
// per request — correctness is unaffected, since the plan cache keys on
// the catalog's content fingerprint, not its pointer.
const maxCachedCatalogs = 16

// tpchCatalog returns the (shared, immutable) TPC-H catalog for a scale
// factor, building it on first use.
func (s *Server) tpchCatalog(sf float64) *moqo.Catalog {
	s.catMu.Lock()
	defer s.catMu.Unlock()
	if cat, ok := s.catalogs[sf]; ok {
		return cat
	}
	cat := moqo.TPCHCatalog(sf)
	if len(s.catalogs) < maxCachedCatalogs {
		s.catalogs[sf] = cat
	}
	return cat
}

// handleOptimize serves POST /optimize.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	s.requests.Add(1)
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	started := time.Now()

	ten, terr := s.resolveTenant(r)
	if terr != nil {
		s.writeError(w, http.StatusBadRequest, terr)
		return
	}
	s.tenants.CountRequest(ten)

	var wire OptimizeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}

	req, err := s.toMoqoRequest(&wire)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	req.Timeout = s.clampTimeout(wire.TimeoutMs)
	req.Workers = s.clampWorkers(wire.Workers)

	// The cache key doubles as the request validator: anything it rejects
	// could never produce a result.
	key, err := req.CacheKey()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}

	// Admission: the tenant's table ceiling, predicted-cost ceiling and
	// request budget, checked before any optimization work.
	if d := s.tenants.Admit(ten, len(req.Query.Relations), len(req.Objectives), wire.Algorithm); !d.OK {
		s.writeAdmissionError(w, d)
		return
	}

	// Deadline budget: the request's wall budget starts at admission and
	// is carried by the context, so every wait downstream — the FIFO
	// gate, the cold-DP scheduler queue — consumes it. The dynamic
	// program folds the context deadline into the §5.1 degrade path, so
	// it gets exactly the remainder: queue time never silently eats
	// compute time and then some. A budget that dies while still queued
	// surfaces as DeadlineExceeded from Acquire and is shed with 503.
	ctx, cancelBudget := context.WithDeadline(r.Context(), started.Add(req.Timeout))
	defer cancelBudget()

	release, gerr := s.gateRequest(ctx, ten) // FIFO baseline only; no-op under Fair
	if gerr != nil {
		if r.Context().Err() != nil {
			s.errors.Add(1)
			return // client gone while queued
		}
		s.writeShedError(w, gerr)
		return
	}
	defer release()

	var resp OptimizeResponse
	if s.cache == nil || wire.NoCache {
		resp, _, err = s.compute(ctx, req, ten)
	} else {
		var src cache.Source
		resp, src, err = s.cache.Do(ctx, key, s.cachedCompute(req, ten))
		if err == nil {
			resp.Cached = src != cache.Miss
		}
	}
	if err != nil {
		if r.Context().Err() != nil {
			// The client is gone; there is nobody to answer. Count it and
			// drop the connection.
			s.errors.Add(1)
			return
		}
		s.writeServeError(w, err)
		return
	}

	if !wire.Frontier {
		resp.Frontier = nil // field-level copy; the cached value keeps its slice
	}
	ms := float64(time.Since(started)) / float64(time.Millisecond)
	s.recordLatency(ms)
	s.tenants.RecordLatency(ten, ms)
	s.writeJSON(w, http.StatusOK, resp)
}

// cachedCompute is the exact tier's compute closure for one request: an
// exact-tier miss consults the frontier tier before running a cold
// dynamic program (the re-weight fast path), and a storable result is
// stamped with and attributed to the computing tenant before the tier
// stores it — so the eviction hook can charge the departure back
// exactly. The stamp is an unexported field: it never serializes, and
// answers stay bit-for-bit tenant-independent.
func (s *Server) cachedCompute(req moqo.Request, ten string) func(context.Context) (OptimizeResponse, bool, error) {
	return func(cctx context.Context) (OptimizeResponse, bool, error) {
		resp, store, err := s.computeViaFrontier(cctx, req, ten)
		if err == nil && store {
			resp.tenant = ten
			s.tenants.CacheAdd(ten, respSizeBytes(resp))
		}
		return resp, store, err
	}
}

// frontierEntry is one frontier-tier record: the snapshot plus its
// response-form frontier, rendered once when the entry is stored. Every
// re-weight answered from the snapshot shares the rendered slice (it is
// weight-independent and never mutated — handlers strip the field on
// their response copy), so the fast path does not rebuild O(frontier)
// maps per request.
type frontierEntry struct {
	snap     *moqo.FrontierSnapshot
	frontier []map[string]float64
	// ten is the tenant whose request populated the entry — partition
	// accounting only, never part of the key or the answer.
	ten string
}

// computeViaFrontier serves an exact-tier miss through the frontier
// tier: if a snapshot for the request's weight/bound-free FrontierKey is
// cached (or being computed by a concurrent request for the same shape
// under different weights — the tier's single-flight coalesces them),
// the request is answered by a SelectBest scan over the snapshot in
// microseconds. Otherwise this caller runs the cold optimization, and
// its snapshot populates the tier for every later re-weight.
func (s *Server) computeViaFrontier(ctx context.Context, req moqo.Request, ten string) (OptimizeResponse, bool, error) {
	if s.frontier == nil || !req.ReusableFrontier() {
		return s.compute(ctx, req, ten)
	}
	fkey, err := req.FrontierKey()
	if err != nil {
		return OptimizeResponse{}, false, err
	}
	var lead *moqo.Result
	ent, _, err := s.frontier.Do(ctx, fkey, func(cctx context.Context) (frontierEntry, bool, error) {
		// Memory miss: consult the disk store before running a cold DP —
		// the warm-restart fast path. A disk hit repopulates the memory
		// tier and is served exactly like a memory hit below.
		if sn := s.storeGet(fkey); sn != nil {
			s.snapshotBytes.Add(int64(sn.SizeBytes()))
			s.tenants.CacheAdd(ten, int64(sn.SizeBytes()))
			return frontierEntry{snap: sn, frontier: renderSnapshotFrontier(sn), ten: ten}, true, nil
		}
		// Cold dynamic program: wait for a fair-scheduler slot. This is
		// the only place tenancy can delay work — every cache, frontier
		// and disk hit above bypasses the queue entirely.
		release, aerr := s.acquireCold(cctx, ten)
		if aerr != nil {
			return frontierEntry{}, false, aerr
		}
		res, sn, cerr := moqo.OptimizeSnapshotContext(cctx, req)
		release()
		if cerr != nil {
			return frontierEntry{}, false, cerr
		}
		lead = res
		if sn == nil {
			// Degraded runs return sn == nil and are stored in neither
			// tier nor the disk store; the store flag keeps them out of
			// this one.
			return frontierEntry{}, false, nil
		}
		s.snapshotBytes.Add(int64(sn.SizeBytes()))
		s.tenants.CacheAdd(ten, int64(sn.SizeBytes()))
		// Write through on DP completion: one appended record per cold DP,
		// so a restart replays the tier from disk instead of re-running
		// dynamic programs.
		s.storePut(sn)
		return frontierEntry{snap: sn, frontier: renderFrontier(res), ten: ten}, true, nil
	})
	if err != nil {
		return OptimizeResponse{}, false, err
	}
	if lead != nil {
		// This caller ran the cold DP (leader, or a retrier after a
		// non-shareable outcome): answer from its own full result.
		resp, rerr := toResponse(lead)
		if rerr != nil {
			return OptimizeResponse{}, false, rerr
		}
		return resp, !lead.Stats.TimedOut, nil
	}
	if ent.snap == nil {
		return s.compute(ctx, req, ten)
	}
	res, newSnap, err := moqo.ReoptimizeContext(ctx, req, ent.snap)
	if err != nil {
		return OptimizeResponse{}, false, err
	}
	s.reweightServed.Add(1)
	shared := ent.frontier
	if newSnap != nil && newSnap != ent.snap {
		// A seeded IRA refined past the cached snapshot: keep the finer
		// frontier (Put's eviction hook releases the replaced one), and
		// re-render the wire form the refined result implies. The store
		// gets the finer snapshot too, superseding its seed on disk.
		shared = renderFrontier(res)
		s.snapshotBytes.Add(int64(newSnap.SizeBytes()))
		s.tenants.CacheAdd(ten, int64(newSnap.SizeBytes()))
		s.frontier.Put(fkey, frontierEntry{snap: newSnap, frontier: shared, ten: ten})
		s.storePut(newSnap)
	}
	resp, err := toResponseWithFrontier(res, shared)
	if err != nil {
		return OptimizeResponse{}, false, err
	}
	return resp, !res.Stats.TimedOut, nil
}

// compute runs one optimization and renders it; the bool reports whether
// the response may be cached (degraded results may not). The run is a
// cold dynamic program, so it waits for a fair-scheduler slot first.
func (s *Server) compute(ctx context.Context, req moqo.Request, ten string) (OptimizeResponse, bool, error) {
	release, aerr := s.acquireCold(ctx, ten)
	if aerr != nil {
		return OptimizeResponse{}, false, aerr
	}
	defer release()
	res, err := moqo.OptimizeContext(ctx, req)
	if err != nil {
		return OptimizeResponse{}, false, err
	}
	resp, err := toResponse(res)
	if err != nil {
		return OptimizeResponse{}, false, err
	}
	return resp, !res.Stats.TimedOut, nil
}

// clampTimeout resolves a request's timeout_ms against the server limits.
func (s *Server) clampTimeout(ms int64) time.Duration {
	d := s.opts.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	return d
}

// clampWorkers resolves a request's workers knob; the cap keeps one
// request from oversubscribing the machine.
func (s *Server) clampWorkers(workers int) int {
	if workers <= 0 {
		workers = s.opts.DefaultWorkers
	}
	if max := runtime.NumCPU(); workers > max {
		workers = max
	}
	return workers
}

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	m := MetricsResponse{
		UptimeMs: float64(time.Since(s.start)) / float64(time.Millisecond),
		Requests: RequestMetrics{
			Optimize:     s.requests.Load(),
			Batch:        s.batchRequests.Load(),
			BatchMembers: s.batchMembers.Load(),
			Errors:       s.errors.Load(),
			InFlight:     s.inFlight.Load(),
			ShedOverload: s.shedOverload.Load(),
			Panics:       s.panics.Load(),
		},
		Latency: s.latencySnapshot(),
	}
	if s.cache != nil {
		st := s.cache.Stats()
		m.Cache = CacheMetrics{
			Enabled:   true,
			Hits:      st.Hits,
			Misses:    st.Misses,
			Coalesced: st.Coalesced,
			Evictions: st.Evictions,
			Entries:   st.Entries,
			Capacity:  st.Capacity,
			HitRatio:  st.HitRatio(),
		}
	}
	if s.frontier != nil {
		st := s.frontier.Stats()
		m.FrontierCache = FrontierCacheMetrics{
			Enabled:        true,
			Hits:           st.Hits,
			Misses:         st.Misses,
			Coalesced:      st.Coalesced,
			Evictions:      st.Evictions,
			Entries:        st.Entries,
			Capacity:       st.Capacity,
			HitRatio:       st.HitRatio(),
			ReweightServed: s.reweightServed.Load(),
			SnapshotBytes:  s.snapshotBytes.Load(),
		}
	}
	m.Tenants = s.tenantMetrics()
	if s.store != nil {
		st := s.store.Stats()
		m.FrontierStore = FrontierStoreMetrics{
			Enabled:        true,
			Hits:           st.Hits,
			Misses:         st.Misses,
			Writes:         st.Writes,
			Bytes:          st.Bytes,
			Evictions:      st.Evictions,
			CorruptDropped: st.CorruptDropped + s.storeDecodeDropped.Load(),
			Compactions:    st.Compactions,
			Entries:        st.Entries,
			IOErrors:       st.IOErrors,
			Skipped:        s.storeSkipped.Load(),
		}
		if s.breaker != nil {
			bst := s.breaker.Stats()
			m.FrontierStore.Breaker = &bst
		}
	}
	s.writeJSON(w, http.StatusOK, m)
}

// tenantMetrics renders the per-tenant metrics section: registry
// snapshots joined with the scheduler's queue depths and grant counts,
// sorted by tenant name.
func (s *Server) tenantMetrics() []TenantMetrics {
	snaps := s.tenants.Snapshots()
	if len(snaps) == 0 {
		return nil
	}
	depths := s.sched.QueueDepths()
	granted := s.sched.Granted()
	out := make([]TenantMetrics, len(snaps))
	for i, snap := range snaps {
		out[i] = TenantMetrics{
			Name:           snap.Name,
			Requests:       snap.Requests,
			Admitted:       snap.Admitted,
			Rejected:       snap.Rejected,
			QueueDepth:     depths[snap.Name],
			Granted:        granted[snap.Name],
			CacheBytes:     snap.CacheBytes,
			CacheEntries:   snap.CacheEntries,
			CacheEvictions: snap.CacheEvictions,
			Latency: LatencyMetrics{
				Window: snap.LatencyWindow,
				P50:    snap.LatencyP50Ms,
				P99:    snap.LatencyP99Ms,
			},
		}
	}
	return out
}

// healthSnapshot assembles the shared /healthz + /readyz body.
func (s *Server) healthSnapshot() HealthResponse {
	h := HealthResponse{
		Status:     "ok",
		Store:      "disabled",
		QueueDepth: s.sched.Queued(),
		Shed:       s.sched.Shed(),
		InFlight:   s.inFlight.Load(),
	}
	if s.store != nil {
		h.Store = "ok"
		if s.breaker != nil {
			st := s.breaker.Stats()
			h.Breaker = &st
			switch s.breaker.State() {
			case fault.Open:
				h.Store, h.Status, h.Degraded = "degraded", "degraded", true
			case fault.HalfOpen:
				h.Store, h.Status, h.Degraded = "probing", "degraded", true
			}
		}
	}
	return h
}

// handleHealthz serves GET /healthz — liveness. Always 200 while the
// process can serve requests, even degraded to memory-only; a restart
// would not help, so the orchestrator must not kill the process. The
// body carries the same detail as /readyz for operators.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.healthSnapshot())
}

// handleReadyz serves GET /readyz — readiness. 503 when the store is
// configured but the breaker has quarantined it: the server is up and
// answering from memory, but a load balancer preferring full-capacity
// replicas should route around it until the disk recovers.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.healthSnapshot()
	code := http.StatusOK
	if h.Degraded {
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, h)
}

// recordLatency folds one served request into the sliding window.
func (s *Server) recordLatency(ms float64) {
	s.latMu.Lock()
	s.latencies[s.latNext] = ms
	s.latNext = (s.latNext + 1) % len(s.latencies)
	if s.latSamples < len(s.latencies) {
		s.latSamples++
	}
	s.latMu.Unlock()
}

// latencySnapshot computes p50/p99 over the window.
func (s *Server) latencySnapshot() LatencyMetrics {
	s.latMu.Lock()
	window := make([]float64, s.latSamples)
	copy(window, s.latencies[:s.latSamples])
	s.latMu.Unlock()
	if len(window) == 0 {
		return LatencyMetrics{}
	}
	sort.Float64s(window)
	return LatencyMetrics{
		Window: len(window),
		P50:    Percentile(window, 0.50),
		P99:    Percentile(window, 0.99),
	}
}

// Percentile reads the p-quantile from an ascending-sorted sample
// (nearest-rank). Shared with the load generator of internal/bench so
// /metrics and BENCH_server.json agree on what a percentile means.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.errors.Add(1)
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		status = http.StatusRequestEntityTooLarge
	}
	s.writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
