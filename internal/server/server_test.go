package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	ts, _ := newTestServerC(t, opts)
	return ts
}

// newTestServerC additionally returns a stop function that shuts the
// HTTP server and the service (frontier store included) down — for tests
// that restart a server mid-test; both are also stopped at cleanup
// (stopping twice is safe).
func newTestServerC(t *testing.T, opts Options) (*httptest.Server, func()) {
	t.Helper()
	svc, err := NewE(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	stop := func() {
		ts.Close()
		if err := svc.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
	}
	t.Cleanup(stop)
	return ts, stop
}

// post sends an optimize request and decodes the response (status, body).
func post(t *testing.T, ts *httptest.Server, body string) (int, OptimizeResponse, string) {
	t.Helper()
	res, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	var out OptimizeResponse
	if res.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("decode response: %v\n%s", err, buf.String())
		}
	}
	return res.StatusCode, out, buf.String()
}

func metrics(t *testing.T, ts *httptest.Server) MetricsResponse {
	t.Helper()
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var m MetricsResponse
	if err := json.NewDecoder(res.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

const q3Request = `{
	"tpch": 3,
	"alpha": 1.5,
	"objectives": ["total_time", "buffer_footprint", "tuple_loss"],
	"weights": {"total_time": 1}
}`

// TestOptimizeRoundTrip: a basic request returns a plan, costs for every
// requested objective, and sane stats.
func TestOptimizeRoundTrip(t *testing.T) {
	ts := newTestServer(t, Options{})
	status, resp, raw := post(t, ts, q3Request)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if resp.Algorithm != "rta" {
		t.Errorf("algorithm = %q, want rta (the unbounded default)", resp.Algorithm)
	}
	if len(resp.Plan) == 0 {
		t.Error("no plan in response")
	}
	for _, o := range []string{"total_time", "buffer_footprint", "tuple_loss"} {
		if _, ok := resp.Cost[o]; !ok {
			t.Errorf("cost missing objective %s", o)
		}
	}
	if resp.Stats.Considered == 0 || resp.Stats.DurationMs <= 0 {
		t.Errorf("implausible stats: %+v", resp.Stats)
	}
	if resp.Cached {
		t.Error("first request reported cached")
	}
}

// TestCachedMatchesUncached: the same request served cold, from the cache,
// and with the cache bypassed must produce byte-identical plans and costs
// — cached results are real results.
func TestCachedMatchesUncached(t *testing.T) {
	ts := newTestServer(t, Options{})
	_, cold, _ := post(t, ts, q3Request)
	_, warm, _ := post(t, ts, q3Request)
	_, bypass, _ := post(t, ts, `{"no_cache": true,`+q3Request[1:])

	if !warm.Cached {
		t.Fatal("second identical request not served from cache")
	}
	if cold.Cached || bypass.Cached {
		t.Fatal("cold/bypass requests reported cached")
	}
	if !bytes.Equal(cold.Plan, warm.Plan) || !bytes.Equal(cold.Plan, bypass.Plan) {
		t.Error("plans differ between cold, cached and no_cache responses")
	}
	for o, c := range cold.Cost {
		if warm.Cost[o] != c || bypass.Cost[o] != c {
			t.Errorf("cost[%s] differs: cold=%v warm=%v bypass=%v", o, c, warm.Cost[o], bypass.Cost[o])
		}
	}
}

// TestRepeatedWorkloadHitRatio: a repeated-query workload (the paper's
// recurring multi-user scenario) must reach at least a 90% cache-hit
// ratio, with hits far faster to serve than the original optimizations.
func TestRepeatedWorkloadHitRatio(t *testing.T) {
	ts := newTestServer(t, Options{})
	// 5 distinct requests, each repeated 20 times → 5 misses, 95 hits.
	for round := 0; round < 20; round++ {
		for variant := 0; variant < 5; variant++ {
			body := fmt.Sprintf(`{
				"tpch": 3,
				"alpha": 1.5,
				"objectives": ["total_time", "buffer_footprint", "tuple_loss"],
				"weights": {"total_time": 1, "buffer_footprint": %g}
			}`, float64(variant)/1024)
			if status, _, raw := post(t, ts, body); status != http.StatusOK {
				t.Fatalf("status %d: %s", status, raw)
			}
		}
	}
	m := metrics(t, ts)
	if m.Cache.Misses != 5 {
		t.Errorf("misses = %d, want 5 (one per distinct request)", m.Cache.Misses)
	}
	if m.Cache.HitRatio < 0.9 {
		t.Errorf("hit ratio = %.3f, want >= 0.90", m.Cache.HitRatio)
	}
}

// TestConcurrentIdenticalRequests: a concurrent burst of one identical
// request must run the engine at most a handful of times (single-flight)
// and agree on the result. Run with -race.
func TestConcurrentIdenticalRequests(t *testing.T) {
	ts := newTestServer(t, Options{})
	const n = 24
	var wg sync.WaitGroup
	plans := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, resp, raw := post(t, ts, q3Request)
			if status != http.StatusOK {
				t.Errorf("status %d: %s", status, raw)
				return
			}
			plans[i] = resp.Plan
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(plans[0], plans[i]) {
			t.Fatalf("request %d got a different plan", i)
		}
	}
	m := metrics(t, ts)
	if m.Cache.Misses != 1 {
		t.Errorf("engine ran %d times for %d identical concurrent requests, want 1 (single-flight)",
			m.Cache.Misses, n)
	}
}

// TestInlineCatalogQuery: an ad-hoc schema round-trips, and rebuilding the
// identical schema hits the cache (the fingerprint is structural, not
// pointer-based).
func TestInlineCatalogQuery(t *testing.T) {
	ts := newTestServer(t, Options{})
	body := `{
		"catalog": {
			"tables": [
				{"name": "users", "rows": 100000, "width": 120, "pk": "id"},
				{"name": "events", "rows": 5000000, "width": 64, "pk": "eid"}
			],
			"indexes": [{"table": "events", "column": "user_id"}]
		},
		"query": {
			"name": "user-events",
			"relations": [
				{"table": "users", "filter_sel": 0.1},
				{"table": "events"}
			],
			"joins": [{"left": 0, "right": 1, "left_col": "id", "right_col": "user_id", "selectivity": 0.00001}]
		},
		"objectives": ["total_time", "energy"],
		"weights": {"total_time": 1, "energy": 0.5}
	}`
	status, first, raw := post(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if len(first.Plan) == 0 {
		t.Fatal("no plan")
	}
	_, second, _ := post(t, ts, body)
	if !second.Cached {
		t.Error("identical inline schema did not hit the cache")
	}
}

// TestValidation: malformed requests get 400s with a JSON error, and never
// crash the handler.
func TestValidation(t *testing.T) {
	ts := newTestServer(t, Options{})
	bad := map[string]string{
		"empty":              `{}`,
		"no objectives":      `{"tpch": 3}`,
		"unknown objective":  `{"tpch": 3, "objectives": ["latency"]}`,
		"unknown algorithm":  `{"tpch": 3, "objectives": ["total_time"], "algorithm": "magic"}`,
		"bad tpch number":    `{"tpch": 77, "objectives": ["total_time"]}`,
		"weight off-set":     `{"tpch": 3, "objectives": ["total_time"], "weights": {"energy": 1}}`,
		"bounds with rta":    `{"tpch": 3, "algorithm": "rta", "objectives": ["total_time"], "bounds": {"total_time": 1}}`,
		"tpch plus inline":   `{"tpch": 3, "catalog": {"tables": [{"name": "t", "rows": 1, "width": 8}]}, "query": {"relations": [{"table": "t"}]}, "objectives": ["total_time"]}`,
		"unknown field":      `{"tpch": 3, "objectives": ["total_time"], "wat": 1}`,
		"bad json":           `{`,
		"catalog no query":   `{"catalog": {"tables": [{"name": "t", "rows": 1, "width": 8}]}, "objectives": ["total_time"]}`,
		"unknown table":      `{"catalog": {"tables": [{"name": "t", "rows": 1, "width": 8}]}, "query": {"relations": [{"table": "nope"}]}, "objectives": ["total_time"]}`,
		"bad selectivity":    `{"catalog": {"tables": [{"name": "a", "rows": 1, "width": 8}, {"name": "b", "rows": 1, "width": 8}]}, "query": {"relations": [{"table": "a"}, {"table": "b"}], "joins": [{"left": 0, "right": 1, "left_col": "x", "right_col": "y", "selectivity": 4}]}, "objectives": ["total_time"]}`,
		"self join edge":     `{"catalog": {"tables": [{"name": "a", "rows": 1, "width": 8}]}, "query": {"relations": [{"table": "a"}], "joins": [{"left": 0, "right": 0, "left_col": "x", "right_col": "y", "selectivity": 0.5}]}, "objectives": ["total_time"]}`,
		"duplicate alias":    `{"catalog": {"tables": [{"name": "a", "rows": 1, "width": 8}]}, "query": {"relations": [{"table": "a"}, {"table": "a"}]}, "objectives": ["total_time"]}`,
		"disconnected graph": `{"catalog": {"tables": [{"name": "a", "rows": 1, "width": 8}, {"name": "b", "rows": 1, "width": 8}]}, "query": {"relations": [{"table": "a"}, {"table": "b"}]}, "objectives": ["total_time"]}`,
	}
	for name, body := range bad {
		status, _, raw := post(t, ts, body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, status, raw)
		}
		var e ErrorResponse
		if err := json.Unmarshal([]byte(raw), &e); err != nil || e.Error == "" {
			t.Errorf("%s: response is not a JSON error: %s", name, raw)
		}
	}
	if m := metrics(t, ts); m.Requests.Errors == 0 {
		t.Error("error counter not incremented")
	}
}

// TestMethodNotAllowed: GET /optimize and POST /metrics are rejected.
func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t, Options{})
	res, err := http.Get(ts.URL + "/optimize")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /optimize: %d", res.StatusCode)
	}
	res, err = http.Post(ts.URL+"/metrics", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: %d", res.StatusCode)
	}
}

// TestPerRequestTimeoutDegrades: a tiny timeout_ms on an expensive request
// degrades (stats.timed_out) instead of erroring, and the degraded result
// is NOT cached — the next request with a generous deadline gets a full
// result.
func TestPerRequestTimeoutDegrades(t *testing.T) {
	ts := newTestServer(t, Options{})
	// TPC-H q8 joins 8 relations with all nine objectives — far more than
	// 1ms of work.
	expensive := func(timeoutMs int) string {
		return fmt.Sprintf(`{
			"tpch": 8, "timeout_ms": %d, "algorithm": "exa",
			"objectives": ["total_time", "startup_time", "io_load", "cpu_load", "cores",
			               "disk_footprint", "buffer_footprint", "energy", "tuple_loss"],
			"weights": {"total_time": 1}
		}`, timeoutMs)
	}
	status, degraded, raw := post(t, ts, expensive(1))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if !degraded.Stats.TimedOut {
		t.Skip("machine too fast to observe the 1ms timeout")
	}
	// Degraded results must be rejected by BOTH cache tiers: the exact
	// result tier (no entry to hit) and the frontier tier (no snapshot —
	// a truncated frontier must never serve re-weights).
	m := metrics(t, ts)
	if m.Cache.Entries != 0 {
		t.Errorf("degraded result entered the exact-result tier (%d entries)", m.Cache.Entries)
	}
	if m.FrontierCache.Entries != 0 {
		t.Errorf("degraded frontier entered the frontier tier (%d entries)", m.FrontierCache.Entries)
	}
	if m.FrontierCache.SnapshotBytes != 0 {
		t.Errorf("degraded run left %d snapshot bytes in the gauge", m.FrontierCache.SnapshotBytes)
	}
	// A re-weighted request (same FrontierKey, different weights) must
	// not be served from a degraded frontier either.
	reweighted := strings.Replace(expensive(1), `"weights": {"total_time": 1}`, `"weights": {"total_time": 2}`, 1)
	status, re, raw := post(t, ts, reweighted)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if re.Stats.ReusedFrontier {
		t.Error("re-weight was served from a degraded frontier")
	}
	// The second run may time out too (2s); what matters is that it was
	// computed fresh rather than served the degraded cache entry.
	status, full, raw := post(t, ts, expensive(2000))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if full.Cached {
		t.Error("degraded result was cached and served to a later request")
	}
}

// TestFrontierToggle: the frontier appears only when requested, and the
// toggle does not fragment the cache.
func TestFrontierToggle(t *testing.T) {
	ts := newTestServer(t, Options{})
	_, plain, _ := post(t, ts, q3Request)
	if len(plain.Frontier) != 0 {
		t.Error("frontier present without being requested")
	}
	_, withFrontier, _ := post(t, ts, `{"frontier": true,`+q3Request[1:])
	if len(withFrontier.Frontier) == 0 {
		t.Error("frontier missing")
	}
	if !withFrontier.Cached {
		t.Error("frontier toggle caused a cache miss")
	}
}

// reweightRequest renders a q8 RTA request with the given total_time
// weight — all such requests share a FrontierKey and differ in CacheKey.
func reweightRequest(weight float64) string {
	return fmt.Sprintf(`{
		"tpch": 8, "alpha": 1.5, "algorithm": "rta",
		"objectives": ["total_time", "buffer_footprint", "energy"],
		"weights": {"total_time": %g, "energy": 0.3}
	}`, weight)
}

// TestReweightServedFromFrontier: a weight change on a cached query
// shape is answered from the frontier tier (stats.reused_frontier)
// without a new optimization, and the per-tier metrics account for it.
func TestReweightServedFromFrontier(t *testing.T) {
	ts := newTestServer(t, Options{})
	status, cold, raw := post(t, ts, reweightRequest(1))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if cold.Stats.ReusedFrontier || cold.Cached {
		t.Fatal("first request cannot be served from a cache")
	}

	status, warm, raw := post(t, ts, reweightRequest(2))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if !warm.Stats.ReusedFrontier {
		t.Fatal("re-weight was not served from the frontier tier")
	}
	if warm.Cached {
		t.Error("re-weight reported an exact-tier hit")
	}
	// The reused answer is a real answer: compare against an uncached
	// cold run at the same weights.
	status, fresh, raw := post(t, ts, `{"no_cache": true,`+reweightRequest(2)[1:])
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if !bytes.Equal(warm.Plan, fresh.Plan) {
		t.Errorf("frontier-served plan differs from a cold run:\n%s\nvs\n%s", warm.Plan, fresh.Plan)
	}
	for k, v := range fresh.Cost {
		if warm.Cost[k] != v {
			t.Errorf("frontier-served cost[%s] = %v, cold %v", k, warm.Cost[k], v)
		}
	}

	// Exact repeat of the re-weight: now the exact tier answers.
	status, again, _ := post(t, ts, reweightRequest(2))
	if status != http.StatusOK {
		t.Fatal("repeat failed")
	}
	if !again.Cached {
		t.Error("exact repeat missed the exact-result tier")
	}

	m := metrics(t, ts)
	if !m.FrontierCache.Enabled {
		t.Fatal("frontier tier not enabled by default")
	}
	if m.FrontierCache.Entries != 1 {
		t.Errorf("frontier tier entries=%d, want 1", m.FrontierCache.Entries)
	}
	if m.FrontierCache.Misses != 1 {
		t.Errorf("frontier tier misses=%d, want 1", m.FrontierCache.Misses)
	}
	if m.FrontierCache.Hits != 1 {
		t.Errorf("frontier tier hits=%d, want 1", m.FrontierCache.Hits)
	}
	if m.FrontierCache.ReweightServed != 1 {
		t.Errorf("reweight_served=%d, want 1", m.FrontierCache.ReweightServed)
	}
	if m.FrontierCache.SnapshotBytes <= 0 {
		t.Errorf("snapshot_bytes=%d, want > 0", m.FrontierCache.SnapshotBytes)
	}
}

// TestFrontierSingleFlightUnderConcurrentReweights: concurrent requests
// for one query shape under DISTINCT weights coalesce on the frontier
// tier — the optimizer runs the cold DP once, every other request is
// served by a frontier scan (or coalesces onto the in-flight DP).
func TestFrontierSingleFlightUnderConcurrentReweights(t *testing.T) {
	ts := newTestServer(t, Options{})
	const n = 8
	var wg sync.WaitGroup
	responses := make([]OptimizeResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, resp, raw := post(t, ts, reweightRequest(float64(i+1)))
			if status != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", status, raw)
				return
			}
			responses[i] = resp
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	m := metrics(t, ts)
	// Distinct weights -> distinct CacheKeys, one shared FrontierKey: the
	// cold DP must have run exactly once.
	if m.FrontierCache.Misses != 1 {
		t.Fatalf("frontier tier misses=%d, want 1 (single flight broken)", m.FrontierCache.Misses)
	}
	if got := m.FrontierCache.Hits + m.FrontierCache.Coalesced; got != n-1 {
		t.Errorf("frontier hits+coalesced=%d, want %d", got, n-1)
	}
	if m.FrontierCache.ReweightServed != n-1 {
		t.Errorf("reweight_served=%d, want %d", m.FrontierCache.ReweightServed, n-1)
	}
	reused := 0
	for _, resp := range responses {
		if resp.Stats.ReusedFrontier {
			reused++
		}
	}
	if reused != n-1 {
		t.Errorf("%d responses flagged reused_frontier, want %d", reused, n-1)
	}
}

// TestFrontierTierDisabled: a negative FrontierCacheCapacity turns the
// tier off — re-weights recompute, metrics stay disabled.
func TestFrontierTierDisabled(t *testing.T) {
	ts := newTestServer(t, Options{FrontierCacheCapacity: -1})
	post(t, ts, reweightRequest(1))
	_, warm, _ := post(t, ts, reweightRequest(2))
	if warm.Stats.ReusedFrontier {
		t.Error("re-weight served from a disabled frontier tier")
	}
	m := metrics(t, ts)
	if m.FrontierCache.Enabled {
		t.Error("frontier tier reported enabled")
	}
}

// TestHealthz: liveness.
func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Options{})
	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", res.StatusCode)
	}
}

// TestCacheDisabled: a negative capacity disables caching; everything
// still works, nothing reports cached.
func TestCacheDisabled(t *testing.T) {
	ts := newTestServer(t, Options{CacheCapacity: -1})
	for i := 0; i < 2; i++ {
		status, resp, raw := post(t, ts, q3Request)
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, raw)
		}
		if resp.Cached {
			t.Error("cached response from a cache-disabled server")
		}
	}
	if m := metrics(t, ts); m.Cache.Enabled {
		t.Error("metrics report an enabled cache")
	}
}

// TestMetricsLatency: the latency window fills and reports ordered
// percentiles.
func TestMetricsLatency(t *testing.T) {
	ts := newTestServer(t, Options{})
	for i := 0; i < 5; i++ {
		post(t, ts, q3Request)
	}
	m := metrics(t, ts)
	if m.Latency.Window != 5 {
		t.Errorf("latency window = %d, want 5", m.Latency.Window)
	}
	if m.Latency.P50 <= 0 || m.Latency.P99 < m.Latency.P50 {
		t.Errorf("implausible percentiles: %+v", m.Latency)
	}
	if m.Requests.Optimize != 5 {
		t.Errorf("optimize counter = %d, want 5", m.Requests.Optimize)
	}
	if time.Duration(m.UptimeMs*float64(time.Millisecond)) <= 0 {
		t.Error("no uptime")
	}
}

// TestOptimizeEnumerationKnob: the per-request enumeration field is
// honored (and surfaces the enumeration-work counters in stats), and an
// unknown strategy is a 400.
func TestOptimizeEnumerationKnob(t *testing.T) {
	ts := newTestServer(t, Options{CacheCapacity: -1})
	body := `{"tpch": 3, "objectives": ["total_time"], "enumeration": "%s"}`

	status, resp, _ := post(t, ts, fmt.Sprintf(body, "graph"))
	if status != 200 {
		t.Fatalf("graph enumeration: status %d", status)
	}
	if resp.Stats.EnumSets == 0 || resp.Stats.EnumSplits == 0 {
		t.Errorf("enumeration counters missing from stats: sets=%d splits=%d",
			resp.Stats.EnumSets, resp.Stats.EnumSplits)
	}

	status, exResp, _ := post(t, ts, fmt.Sprintf(body, "exhaustive"))
	if status != 200 {
		t.Fatalf("exhaustive enumeration: status %d", status)
	}
	if exResp.Stats.Considered != resp.Stats.Considered {
		t.Errorf("strategies disagree on considered candidates: %d vs %d",
			exResp.Stats.Considered, resp.Stats.Considered)
	}
	if exResp.Stats.EnumSets <= resp.Stats.EnumSets {
		t.Errorf("exhaustive scanned %d sets, graph %d — expected a reduction",
			exResp.Stats.EnumSets, resp.Stats.EnumSets)
	}

	status, _, errBody := post(t, ts, fmt.Sprintf(body, "bogus"))
	if status != 400 || !strings.Contains(errBody, "enumeration") {
		t.Errorf("bogus strategy: status %d, body %q", status, errBody)
	}
}

// storeOpts enables the disk-backed frontier store on dir. NoSync keeps
// the tests fast; crash consistency has its own tests in internal/store.
func storeOpts(dir string) Options {
	return Options{StorePath: dir, StoreNoSync: true}
}

// sameAnswer asserts two responses carry the identical plan and costs.
func sameAnswer(t *testing.T, label string, want, got OptimizeResponse) {
	t.Helper()
	if !bytes.Equal(want.Plan, got.Plan) {
		t.Errorf("%s: plans differ:\n%s\nvs\n%s", label, want.Plan, got.Plan)
	}
	if len(got.Cost) != len(want.Cost) {
		t.Errorf("%s: cost maps differ: %v vs %v", label, want.Cost, got.Cost)
	}
	for o, c := range want.Cost {
		if got.Cost[o] != c {
			t.Errorf("%s: cost[%s] = %v, want %v", label, o, got.Cost[o], c)
		}
	}
}

// TestWarmRestartServesFromStore: a server restarted on the same store
// directory answers a known query shape from disk — no dynamic program,
// bit-for-bit the original answer (plan, costs, frontier) — and further
// re-weights on the disk-loaded snapshot keep matching cold runs.
func TestWarmRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	withFrontier := `{"frontier": true,` + reweightRequest(1)[1:]

	tsA, stopA := newTestServerC(t, storeOpts(dir))
	status, cold, raw := post(t, tsA, withFrontier)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if cold.Stats.ReusedFrontier {
		t.Fatal("first request cannot reuse a frontier")
	}
	mA := metrics(t, tsA)
	if !mA.FrontierStore.Enabled {
		t.Fatal("frontier store not enabled")
	}
	if mA.FrontierStore.Writes != 1 {
		t.Errorf("store writes=%d, want 1 (write-through on DP completion)", mA.FrontierStore.Writes)
	}
	if mA.FrontierStore.Entries != 1 {
		t.Errorf("store entries=%d, want 1", mA.FrontierStore.Entries)
	}
	if mA.FrontierStore.Bytes <= 0 {
		t.Errorf("store bytes=%d, want > 0", mA.FrontierStore.Bytes)
	}
	stopA()

	// Restart: fresh process state, same directory.
	tsB, _ := newTestServerC(t, storeOpts(dir))
	status, warm, raw := post(t, tsB, withFrontier)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if !warm.Stats.ReusedFrontier {
		t.Fatal("restarted server re-ran the dynamic program instead of serving from disk")
	}
	if warm.Cached {
		t.Error("restarted server reported an exact-tier hit")
	}
	sameAnswer(t, "warm restart", cold, warm)
	if len(warm.Frontier) != len(cold.Frontier) {
		t.Fatalf("frontier sizes differ: %d vs %d", len(warm.Frontier), len(cold.Frontier))
	}
	for i := range cold.Frontier {
		for o, v := range cold.Frontier[i] {
			if warm.Frontier[i][o] != v {
				t.Errorf("frontier[%d][%s] = %v, want %v", i, o, warm.Frontier[i][o], v)
			}
		}
	}

	// A re-weight on the disk-loaded snapshot still matches a cold run.
	status, re, raw := post(t, tsB, reweightRequest(2))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if !re.Stats.ReusedFrontier {
		t.Error("re-weight after restart not served from the frontier tier")
	}
	status, fresh, raw := post(t, tsB, `{"no_cache": true,`+reweightRequest(2)[1:])
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	sameAnswer(t, "re-weight after restart", fresh, re)

	mB := metrics(t, tsB)
	if mB.FrontierStore.Hits != 1 {
		t.Errorf("store hits=%d, want 1", mB.FrontierStore.Hits)
	}
	if mB.FrontierStore.Misses != 0 {
		t.Errorf("store misses=%d, want 0", mB.FrontierStore.Misses)
	}
	if mB.FrontierStore.CorruptDropped != 0 {
		t.Errorf("store corrupt_dropped=%d, want 0", mB.FrontierStore.CorruptDropped)
	}
	if mB.FrontierCache.Misses != 1 {
		t.Errorf("frontier tier misses=%d, want 1 (the memory miss that went to disk)", mB.FrontierCache.Misses)
	}
	if mB.FrontierCache.ReweightServed != 2 {
		t.Errorf("reweight_served=%d, want 2", mB.FrontierCache.ReweightServed)
	}
}

// iraRequest renders a bounded q8 IRA request — the algorithm whose
// snapshot reuse seeds a refinement loop rather than a pure scan.
func iraRequest(weight float64) string {
	return fmt.Sprintf(`{
		"tpch": 8, "alpha": 1.5, "algorithm": "ira",
		"objectives": ["total_time", "buffer_footprint", "energy"],
		"weights": {"total_time": %g, "energy": 0.3},
		"bounds": {"buffer_footprint": 1e12}
	}`, weight)
}

// TestWarmRestartSeedsIRA: IRA's restart path goes through the seeded
// refinement (moqo.ReoptimizeContext with an IRA snapshot), which must
// still answer bit-for-bit like a cold IRA run at the same weights.
func TestWarmRestartSeedsIRA(t *testing.T) {
	dir := t.TempDir()
	tsA, stopA := newTestServerC(t, storeOpts(dir))
	status, cold, raw := post(t, tsA, iraRequest(1))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	stopA()

	tsB, _ := newTestServerC(t, storeOpts(dir))
	status, warm, raw := post(t, tsB, iraRequest(1))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if !warm.Stats.ReusedFrontier {
		t.Fatal("restarted server did not seed IRA from the disk store")
	}
	sameAnswer(t, "seeded IRA restart", cold, warm)
	// And against a fully cold, cache-bypassing run at the same weights.
	status, fresh, raw := post(t, tsB, `{"no_cache": true,`+iraRequest(1)[1:])
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	sameAnswer(t, "seeded IRA vs cold", fresh, warm)
	if m := metrics(t, tsB); m.FrontierStore.Hits != 1 {
		t.Errorf("store hits=%d, want 1", m.FrontierStore.Hits)
	}
}

// inlineStoreRequest renders an inline-catalog request; the catalog's
// tables and indexes are injected so tests can "mutate" the catalog
// between restarts the way a live one mutates via AddTable/AddIndex.
func inlineStoreRequest(tables, indexes string) string {
	return fmt.Sprintf(`{
		"catalog": {"tables": %s, "indexes": %s},
		"query": {
			"name": "user-events",
			"relations": [{"table": "users", "filter_sel": 0.1}, {"table": "events"}],
			"joins": [{"left": 0, "right": 1, "left_col": "id", "right_col": "user_id", "selectivity": 0.00001}]
		},
		"algorithm": "rta", "alpha": 1.5,
		"objectives": ["total_time", "energy"],
		"weights": {"total_time": 1, "energy": 0.5}
	}`, tables, indexes)
}

// TestCatalogChangeInvalidatesStoreEntries: the FrontierKey embeds the
// catalog's content fingerprint, so a catalog that gained a table or an
// index after the snapshot was persisted never sees the stale entry —
// the store is consulted under the new key and misses; the unchanged
// catalog still hits its entry.
func TestCatalogChangeInvalidatesStoreEntries(t *testing.T) {
	const baseTables = `[
		{"name": "users", "rows": 100000, "width": 120, "pk": "id"},
		{"name": "events", "rows": 5000000, "width": 64, "pk": "eid"}
	]`
	const baseIndexes = `[{"table": "events", "column": "user_id"}]`

	dir := t.TempDir()
	tsA, stopA := newTestServerC(t, storeOpts(dir))
	status, _, raw := post(t, tsA, inlineStoreRequest(baseTables, baseIndexes))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	stopA()

	tsB, _ := newTestServerC(t, storeOpts(dir))
	mutations := map[string]string{
		"AddIndex": inlineStoreRequest(baseTables,
			`[{"table": "events", "column": "user_id"}, {"table": "users", "column": "name"}]`),
		"AddTable": inlineStoreRequest(`[
			{"name": "users", "rows": 100000, "width": 120, "pk": "id"},
			{"name": "events", "rows": 5000000, "width": 64, "pk": "eid"},
			{"name": "audit", "rows": 1000, "width": 32, "pk": "aid"}
		]`, baseIndexes),
	}
	for name, body := range mutations {
		status, resp, raw := post(t, tsB, body)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, status, raw)
		}
		if resp.Stats.ReusedFrontier {
			t.Errorf("%s: stale snapshot served after the catalog changed", name)
		}
	}
	m := metrics(t, tsB)
	if m.FrontierStore.Hits != 0 {
		t.Errorf("store hits=%d, want 0 (mutated catalogs must never hit)", m.FrontierStore.Hits)
	}
	if m.FrontierStore.Misses != uint64(len(mutations)) {
		t.Errorf("store misses=%d, want %d", m.FrontierStore.Misses, len(mutations))
	}

	// Control: the unchanged catalog still finds its snapshot on disk.
	status, same, raw := post(t, tsB, inlineStoreRequest(baseTables, baseIndexes))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if !same.Stats.ReusedFrontier {
		t.Error("unchanged catalog no longer served from the disk store")
	}
	if m := metrics(t, tsB); m.FrontierStore.Hits != 1 {
		t.Errorf("store hits=%d, want 1 (the unchanged catalog)", m.FrontierStore.Hits)
	}
}
