package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"moqo/internal/tenant"
)

// tenantConfig parses a tenant-config document or fails the test.
func tenantConfig(t *testing.T, doc string) *tenant.Config {
	t.Helper()
	cfg, err := tenant.ParseConfig([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// postAs sends an optimize request under a tenant identity.
func postAs(t *testing.T, ts *httptest.Server, ten, body string) (int, OptimizeResponse, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/optimize", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if ten != "" {
		req.Header.Set(TenantHeader, ten)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	var out OptimizeResponse
	if res.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("decode response: %v\n%s", err, buf.String())
		}
	}
	return res.StatusCode, out, buf.String()
}

// postBatchAs sends a batch request under a tenant identity and decodes
// the collected response.
func postBatchAs(t *testing.T, ts *httptest.Server, ten, body string) (int, BatchResponse, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/optimize/batch", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if ten != "" {
		req.Header.Set(TenantHeader, ten)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	var out BatchResponse
	if res.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("decode batch response: %v\n%s", err, buf.String())
		}
	}
	return res.StatusCode, out, buf.String()
}

// chainBody renders an /optimize body for an n-table chain query over an
// inline catalog. sel varies the first relation's filter selectivity, so
// distinct sel values are distinct query shapes (distinct FrontierKeys —
// each one a genuinely cold dynamic program).
func chainBody(n int, sel float64, alg string, weights map[string]float64) string {
	spec := OptimizeRequest{
		Catalog:    chainCatalog(n),
		Query:      chainQuery(n, sel),
		Algorithm:  alg,
		Objectives: []string{"total_time", "buffer_footprint"},
		Weights:    weights,
		Workers:    1,
	}
	b, err := json.Marshal(spec)
	if err != nil {
		panic(err)
	}
	return string(b)
}

func chainCatalog(n int) *CatalogSpec {
	cat := &CatalogSpec{}
	for i := 0; i < n; i++ {
		cat.Tables = append(cat.Tables, TableSpec{
			Name:  fmt.Sprintf("t%d", i),
			Rows:  float64(1000 * (i + 1)),
			Width: 16,
			PK:    "id",
		})
	}
	return cat
}

func chainQuery(n int, sel float64) *QuerySpec {
	q := &QuerySpec{Name: "chain"}
	for i := 0; i < n; i++ {
		fs := 1.0
		if i == 0 {
			fs = sel
		}
		q.Relations = append(q.Relations, RelationSpec{Table: fmt.Sprintf("t%d", i), FilterSel: fs})
	}
	for i := 0; i+1 < n; i++ {
		q.Joins = append(q.Joins, JoinSpec{Left: i, Right: i + 1, LeftCol: "id", RightCol: "id", Selectivity: 0.01})
	}
	return q
}

// assertSameAnswer compares everything about two responses that the
// optimizer determines — the answer-invariance contract. Durations are
// wall-clock and legitimately differ.
func assertSameAnswer(t *testing.T, label string, plain, tenanted OptimizeResponse) {
	t.Helper()
	if plain.Algorithm != tenanted.Algorithm {
		t.Errorf("%s: algorithm %q vs %q", label, plain.Algorithm, tenanted.Algorithm)
	}
	if !bytes.Equal(plain.Plan, tenanted.Plan) {
		t.Errorf("%s: plans differ:\n%s\n%s", label, plain.Plan, tenanted.Plan)
	}
	if !reflect.DeepEqual(plain.Cost, tenanted.Cost) {
		t.Errorf("%s: costs differ: %v vs %v", label, plain.Cost, tenanted.Cost)
	}
	if !reflect.DeepEqual(plain.Frontier, tenanted.Frontier) {
		t.Errorf("%s: frontiers differ (%d vs %d points)", label, len(plain.Frontier), len(tenanted.Frontier))
	}
	if plain.Cached != tenanted.Cached {
		t.Errorf("%s: cached %v vs %v", label, plain.Cached, tenanted.Cached)
	}
	if plain.Stats.ReusedFrontier != tenanted.Stats.ReusedFrontier {
		t.Errorf("%s: reused_frontier %v vs %v", label, plain.Stats.ReusedFrontier, tenanted.Stats.ReusedFrontier)
	}
}

// TestTenancyDifferential: a tenanted server and an untenanted server
// answer the same request stream with bit-for-bit identical plans, costs
// and frontiers, and the same cache/frontier serving decisions — tenancy
// affects scheduling, limits and metrics, never answers.
func TestTenancyDifferential(t *testing.T) {
	plain := newTestServer(t, Options{})
	tenanted := newTestServer(t, Options{
		// Real quotas, generous enough to admit the whole stream.
		Tenants: tenant.NewRegistry(tenantConfig(t, `{
			"default": {"weight": 2},
			"tenants": {
				"acme":  {"weight": 4, "max_concurrent": 2, "max_tables": 32, "requests": 10000, "max_predicted_cost": 1e12},
				"other": {"weight": 1, "requests": 10000}
			}
		}`)),
		MaxColdDPs: 2,
	})

	// The stream mixes cold DPs, exact repeats, re-weights (frontier
	// hits), a frontier-returning request, and an inline-catalog shape.
	reweight := func(wt float64) string {
		return fmt.Sprintf(`{"tpch": 3, "alpha": 1.5,
			"objectives": ["total_time", "buffer_footprint", "tuple_loss"],
			"weights": {"total_time": 1, "buffer_footprint": %g}}`, wt)
	}
	stream := []struct {
		label string
		ten   string
		body  string
	}{
		{"cold q3", "acme", q3Request},
		{"exact repeat", "acme", q3Request},
		{"exact repeat other tenant", "other", q3Request},
		{"reweight 0.5", "acme", reweight(0.5)},
		{"reweight 2", "other", reweight(2)},
		{"with frontier", "acme", `{"frontier": true,` + q3Request[1:]},
		{"inline chain", "acme", chainBody(5, 0.5, "rta", map[string]float64{"total_time": 1})},
		{"inline chain reweight", "other", chainBody(5, 0.5, "rta", map[string]float64{"total_time": 1, "buffer_footprint": 3})},
		{"anonymous", "", q3Request},
	}
	for _, step := range stream {
		ps, presp, praw := post(t, plain, step.body)
		tss, tresp, traw := postAs(t, tenanted, step.ten, step.body)
		if ps != http.StatusOK || tss != http.StatusOK {
			t.Fatalf("%s: status %d vs %d\n%s\n%s", step.label, ps, tss, praw, traw)
		}
		assertSameAnswer(t, step.label, presp, tresp)
	}

	// The same batch against both servers: member answers must agree
	// member by member (the tenanted batch carries per-member tenants).
	plainBatch := `{"members": [
		{"tpch": 3, "objectives": ["total_time", "buffer_footprint", "tuple_loss"], "weights": {"total_time": 1}},
		{"tpch": 5, "objectives": ["total_time", "energy"]},
		{"tpch": 3, "objectives": ["total_time", "buffer_footprint", "tuple_loss"], "weights": {"total_time": 1, "tuple_loss": 2}}
	]}`
	tenantedBatch := `{"members": [
		{"tenant": "acme", "tpch": 3, "objectives": ["total_time", "buffer_footprint", "tuple_loss"], "weights": {"total_time": 1}},
		{"tenant": "other", "tpch": 5, "objectives": ["total_time", "energy"]},
		{"tpch": 3, "objectives": ["total_time", "buffer_footprint", "tuple_loss"], "weights": {"total_time": 1, "tuple_loss": 2}}
	]}`
	ps, pbatch, praw := postBatchAs(t, plain, "", plainBatch)
	tss, tbatch, traw := postBatchAs(t, tenanted, "acme", tenantedBatch)
	if ps != http.StatusOK || tss != http.StatusOK {
		t.Fatalf("batch: status %d vs %d\n%s\n%s", ps, tss, praw, traw)
	}
	if len(pbatch.Members) != len(tbatch.Members) {
		t.Fatalf("batch: %d vs %d members", len(pbatch.Members), len(tbatch.Members))
	}
	for i := range pbatch.Members {
		pm, tm := pbatch.Members[i], tbatch.Members[i]
		if pm.Error != "" || tm.Error != "" {
			t.Fatalf("batch member %d: unexpected errors %q vs %q", i, pm.Error, tm.Error)
		}
		assertSameAnswer(t, fmt.Sprintf("batch member %d", i), *pm.Result, *tm.Result)
	}
}

// TestTenantAdmissionRejections pins the admission wire contract: 429,
// the structured error body with code "admission" and the rejection
// reason, and a Retry-After hint exactly when waiting would help.
func TestTenantAdmissionRejections(t *testing.T) {
	ts := newTestServer(t, Options{
		Tenants: tenant.NewRegistry(tenantConfig(t, `{
			"tenants": {"limited": {"max_tables": 4, "max_predicted_cost": 1e4, "requests": 2, "interval_ms": 60000}}
		}`)),
	})
	decodeErr := func(raw string) ErrorResponse {
		var e ErrorResponse
		if err := json.Unmarshal([]byte(raw), &e); err != nil {
			t.Fatalf("decode error body: %v\n%s", err, raw)
		}
		return e
	}

	// Table ceiling: 6 tables past max_tables=4. Structural — no
	// Retry-After, and no token drained.
	status, _, raw := postAs(t, ts, "limited", chainBody(6, 0.5, "rta", nil))
	if status != http.StatusTooManyRequests {
		t.Fatalf("table-ceiling status %d: %s", status, raw)
	}
	if e := decodeErr(raw); e.Code != CodeAdmission || e.Reason != "tables" || e.RetryAfterMs != 0 {
		t.Errorf("table-ceiling body: %+v", e)
	}

	// Cost ceiling: a 4-table EXA with 5 objectives predicts
	// 3^4 * 2^4 * 8 = 10368 > 1e4 while staying under the table ceiling,
	// so the rejection reason must be "cost". Also structural: no hint.
	costSpec, err := json.Marshal(OptimizeRequest{
		Catalog:    chainCatalog(4),
		Query:      chainQuery(4, 0.5),
		Algorithm:  "exa",
		Objectives: []string{"total_time", "buffer_footprint", "energy", "io_load", "cpu_load"},
	})
	if err != nil {
		t.Fatal(err)
	}
	status, _, raw = postAs(t, ts, "limited", string(costSpec))
	if status != http.StatusTooManyRequests {
		t.Fatalf("cost-ceiling status %d: %s", status, raw)
	}
	if e := decodeErr(raw); e.Code != CodeAdmission || e.Reason != "cost" {
		t.Errorf("cost-ceiling body: %+v", e)
	}

	// Rate budget: two admitted requests drain the bucket, the third is
	// rejected with a retry hint on both the header and the body.
	cheap := chainBody(3, 0.5, "rta", map[string]float64{"total_time": 1})
	for i := 0; i < 2; i++ {
		if status, _, raw := postAs(t, ts, "limited", cheap); status != http.StatusOK {
			t.Fatalf("budgeted request %d: status %d: %s", i, status, raw)
		}
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/optimize", strings.NewReader(cheap))
	req.Header.Set(TenantHeader, "limited")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	_, _ = body.ReadFrom(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained-budget status %d: %s", res.StatusCode, body.String())
	}
	if ra := res.Header.Get("Retry-After"); ra == "" {
		t.Error("rate rejection missing Retry-After header")
	}
	if e := decodeErr(body.String()); e.Code != CodeAdmission || e.Reason != "rate" || e.RetryAfterMs <= 0 {
		t.Errorf("rate body: %+v", e)
	}

	// Structural rejections did not drain tokens, and every rejection is
	// on the tenant's metrics.
	m := metrics(t, ts)
	var lim *TenantMetrics
	for i := range m.Tenants {
		if m.Tenants[i].Name == "limited" {
			lim = &m.Tenants[i]
		}
	}
	if lim == nil {
		t.Fatalf("tenant missing from /metrics: %+v", m.Tenants)
	}
	if lim.Rejected["tables"] != 1 || lim.Rejected["cost"] != 1 || lim.Rejected["rate"] != 1 {
		t.Errorf("rejection counters: %+v", lim.Rejected)
	}
	if lim.Admitted != 2 {
		t.Errorf("admitted = %d, want 2", lim.Admitted)
	}

	// Other tenants are untouched by "limited"'s quota.
	if status, _, raw := postAs(t, ts, "unlimited-friend", chainBody(6, 0.5, "rta", nil)); status != http.StatusOK {
		t.Errorf("default-quota tenant rejected: %d %s", status, raw)
	}

	// A malformed tenant name is a 400, not a quota rejection.
	if status, _, raw := postAs(t, ts, "bad name", cheap); status != http.StatusBadRequest {
		t.Errorf("malformed tenant name: status %d: %s", status, raw)
	}
}

// TestBatchMemberErrorCodes pins the per-member error-code wire
// contract: validation for malformed members, admission for
// quota-rejected ones — each independent of its siblings, which still
// succeed.
func TestBatchMemberErrorCodes(t *testing.T) {
	ts := newTestServer(t, Options{
		Tenants: tenant.NewRegistry(tenantConfig(t, `{
			"tenants": {"capped": {"max_tables": 2}, "drained": {"requests": 1, "interval_ms": 3600000, "burst": 1}}
		}`)),
	})
	// Drain "drained"'s only token so its member is rate-rejected.
	if status, _, raw := postAs(t, ts, "drained", chainBody(3, 0.5, "rta", nil)); status != http.StatusOK {
		t.Fatalf("drain request: status %d: %s", status, raw)
	}

	body, err := json.Marshal(BatchRequest{
		Catalog: chainCatalog(4),
		Members: []BatchMemberRequest{
			{Query: chainQuery(3, 0.5), Objectives: []string{"total_time", "buffer_footprint"}},
			{Objectives: []string{"total_time"}}, // neither tpch nor query
			{Tenant: "capped", Query: chainQuery(3, 0.5), Objectives: []string{"total_time", "buffer_footprint"}},
			{Tenant: "not a name", Query: chainQuery(3, 0.5), Objectives: []string{"total_time"}},
			{Tenant: "drained", Query: chainQuery(2, 0.5), Objectives: []string{"total_time", "buffer_footprint"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	status, batch, raw := postBatchAs(t, ts, "", string(body))
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, raw)
	}
	want := []struct {
		code      string
		retryHint bool
	}{
		{"", false},             // valid member served
		{CodeValidation, false}, // malformed member
		{CodeAdmission, false},  // table ceiling (structural, no hint)
		{CodeValidation, false}, // malformed tenant name
		{CodeAdmission, true},   // rate budget (retryable)
	}
	for i, w := range want {
		m := batch.Members[i]
		if m.ErrorCode != w.code {
			t.Errorf("member %d: error_code %q, want %q (error: %s)", i, m.ErrorCode, w.code, m.Error)
		}
		if (m.Error == "") != (w.code == "") {
			t.Errorf("member %d: error %q inconsistent with code %q", i, m.Error, w.code)
		}
		if w.code == "" && m.Result == nil {
			t.Errorf("member %d: no result on the valid member", i)
		}
		if hinted := m.RetryAfterMs > 0; hinted != w.retryHint {
			t.Errorf("member %d: retry_after_ms=%d, want hint=%v", i, m.RetryAfterMs, w.retryHint)
		}
	}
	if batch.Stats.Errors != 4 {
		t.Errorf("batch stats errors = %d, want 4", batch.Stats.Errors)
	}
}

// TestServeErrorClassification pins the serve-time error-code mapping
// (build-time failures never reach it, so only deadline, cancellation
// and internal classes exist).
func TestServeErrorClassification(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{fmt.Errorf("wrapped: %w", context.DeadlineExceeded), CodeTimeout},
		{fmt.Errorf("wrapped: %w", context.Canceled), CodeCanceled},
		{fmt.Errorf("exploded"), CodeInternal},
	}
	for _, c := range cases {
		if got := classifyServeError(c.err); got != c.want {
			t.Errorf("classifyServeError(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestTenancyFairness: with one tenant flooding the cold-DP queue, a
// light tenant living on the frontier fast path is never queued behind
// the flood — its requests keep completing in interactive time, and the
// scheduler's claim counts prove who ran what.
func TestTenancyFairness(t *testing.T) {
	svc, err := NewE(Options{
		MaxColdDPs: 1, // one DP slot: the flood saturates it completely
		Tenants: tenant.NewRegistry(tenantConfig(t, `{
			"tenants": {"flood": {"weight": 1}, "light": {"weight": 3}}
		}`)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Warm the light tenant's shape: one cold DP, after which every
	// re-weight is a frontier hit that must bypass the scheduler.
	lightShape := func(wt float64) string {
		return chainBody(5, 0.25, "rta", map[string]float64{"total_time": 1, "buffer_footprint": wt})
	}
	if status, _, raw := postAs(t, ts, "light", lightShape(1)); status != http.StatusOK {
		t.Fatalf("warm-up: status %d: %s", status, raw)
	}

	// Flood: distinct 8-table EXA shapes (distinct filter selectivities →
	// distinct FrontierKeys → every one a cold DP) from 4 concurrent
	// clients, all contending for the single DP slot. The clients loop
	// until stopped so the slot stays contended for the whole light
	// phase — a fixed request count can drain in a couple hundred
	// milliseconds on a fast box, leaving nothing to measure against.
	const floodClients = 4
	var stopFlood atomic.Bool
	var floodServed atomic.Int64
	var wg sync.WaitGroup
	floodErr := make(chan string, 1)
	for c := 0; c < floodClients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Disjoint residues mod floodClients keep every selectivity
			// distinct across clients: no single-flight coalescing, every
			// request its own cold DP and its own scheduler grant.
			for i := c; !stopFlood.Load(); i += floodClients {
				sel := 0.3 + float64(i)*0.0001
				status, _, raw := postAs(t, ts, "flood", chainBody(8, sel, "exa", nil))
				floodServed.Add(1)
				if status != http.StatusOK {
					select {
					case floodErr <- fmt.Sprintf("status %d: %s", status, raw):
					default:
					}
				}
			}
		}()
	}

	// Wait until the flood demonstrably occupies the scheduler. Granted()
	// is monotonic, so this cannot miss a transient window the way
	// polling instantaneous queue depth can.
	deadline := time.Now().Add(30 * time.Second)
	for svc.sched.Granted()["flood"] < 2 {
		if time.Now().After(deadline) {
			t.Fatal("flood never saturated the scheduler")
		}
		time.Sleep(time.Millisecond)
	}

	// The light tenant's re-weights run while the flood is queued. Each
	// is a frontier hit; none may wait for a DP slot.
	var lightMs []float64
	for i := 0; i < 20; i++ {
		startReq := time.Now()
		status, resp, raw := postAs(t, ts, "light", lightShape(0.1+float64(i)))
		if status != http.StatusOK {
			t.Fatalf("light request %d: status %d: %s", i, status, raw)
		}
		if !resp.Stats.ReusedFrontier {
			t.Fatalf("light request %d missed the frontier fast path", i)
		}
		lightMs = append(lightMs, float64(time.Since(startReq))/float64(time.Millisecond))
	}
	sort.Float64s(lightMs)
	// Generous interactive bound: queuing behind even one 8-table EXA
	// would cost hundreds of milliseconds per request; behind the whole
	// flood, tens of seconds.
	if p99 := Percentile(lightMs, 0.99); p99 > 2000 {
		t.Errorf("light tenant p99 = %.1fms under flood; the fast path is being queued", p99)
	}

	stopFlood.Store(true)
	wg.Wait()
	select {
	case msg := <-floodErr:
		t.Errorf("flood request failed: %s", msg)
	default:
	}
	// No starvation: the flood kept completing throughout — every request
	// it managed to issue was served, not parked forever behind the light
	// tenant's higher weight.
	served := floodServed.Load()
	if served < 2 {
		t.Fatalf("flood served only %d requests", served)
	}

	// Claim-count accounting: every flood DP took a scheduler grant; the
	// light tenant took exactly one (its warm-up) — the fast path never
	// claimed a slot.
	g := svc.sched.Granted()
	if int64(g["flood"]) != served {
		t.Errorf("flood grants = %d, want %d (one per served request)", g["flood"], served)
	}
	if g["light"] != 1 {
		t.Errorf("light grants = %d, want 1 (warm-up only)", g["light"])
	}
	if svc.sched.Running() != 0 {
		t.Errorf("slots leaked: %d still running", svc.sched.Running())
	}
}

// TestTenancyHotReload: swapping the registry's config mid-flight
// changes quotas without restarting the server or losing counters — the
// SIGHUP path minus the signal.
func TestTenancyHotReload(t *testing.T) {
	reg := tenant.NewRegistry(tenantConfig(t, `{"tenants": {"acme": {"max_tables": 3}}}`))
	ts := newTestServer(t, Options{Tenants: reg})

	body := chainBody(5, 0.5, "rta", nil)
	if status, _, _ := postAs(t, ts, "acme", body); status != http.StatusTooManyRequests {
		t.Fatalf("pre-reload: 5 tables admitted past max_tables=3 (status %d)", status)
	}
	reg.Reload(tenantConfig(t, `{"tenants": {"acme": {"max_tables": 16}}}`))
	if status, _, raw := postAs(t, ts, "acme", body); status != http.StatusOK {
		t.Fatalf("post-reload: status %d: %s", status, raw)
	}
	m := metrics(t, ts)
	if len(m.Tenants) != 1 || m.Tenants[0].Rejected["tables"] != 1 || m.Tenants[0].Requests != 2 {
		t.Errorf("counters lost across reload: %+v", m.Tenants)
	}
}

// TestPrometheusExposition: the hand-rolled text endpoint carries the
// server-wide and per-tenant series in valid exposition shape.
func TestPrometheusExposition(t *testing.T) {
	ts := newTestServer(t, Options{
		Tenants: tenant.NewRegistry(tenantConfig(t, `{"tenants": {"acme": {"max_tables": 4}}}`)),
	})
	if status, _, raw := postAs(t, ts, "acme", q3Request); status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if status, _, _ := postAs(t, ts, "acme", chainBody(6, 0.5, "rta", nil)); status != http.StatusTooManyRequests {
		t.Fatalf("expected a tables rejection, got %d", status)
	}

	res, err := http.Get(ts.URL + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE moqo_requests_total counter",
		`moqo_requests_total{endpoint="optimize"} 2`,
		"# TYPE moqo_tenant_requests_total counter",
		`moqo_tenant_requests_total{tenant="acme"} 2`,
		`moqo_tenant_admitted_total{tenant="acme"} 1`,
		`moqo_tenant_rejected_total{tenant="acme",reason="tables"} 1`,
		`moqo_cache_hits_total{tier="exact"}`,
		"# TYPE moqo_tenant_latency_quantile_ms gauge",
		"moqo_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every non-comment line is "name{labels} value" with a parseable
	// float value — the format contract a scraper depends on.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
	}
}
