package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"moqo"
	"moqo/internal/tenant"
)

// TenantHeader is the HTTP header carrying the caller's tenant identity
// on /optimize and /optimize/batch (batch members may override it with
// their per-member tenant field). Absent or empty means the anonymous
// tenant.
const TenantHeader = "X-Moqo-Tenant"

// Machine-readable error codes on ErrorResponse.Code and
// BatchMemberResponse.ErrorCode, so clients dispatch on the class of a
// failure instead of parsing its message.
const (
	// CodeValidation: the request (or member) is malformed — fixing the
	// payload is the only remedy.
	CodeValidation = "validation"
	// CodeAdmission: the tenant's quota rejected the request (rate
	// budget, table ceiling, or predicted-cost ceiling). Rate rejections
	// carry retry_after_ms.
	CodeAdmission = "admission"
	// CodeTimeout: the serving deadline expired before an answer.
	CodeTimeout = "timeout"
	// CodeCanceled: the caller went away mid-flight.
	CodeCanceled = "canceled"
	// CodeInternal: an unexpected serving failure.
	CodeInternal = "internal"
	// CodeOverload: the server shed the request — the cold-DP queue is
	// at its load-shedding bound, or the request's deadline budget was
	// exhausted while it was still queued. Served as 503 + Retry-After;
	// the request did no optimization work.
	CodeOverload = "overload"
)

// resolveTenant canonicalizes the request's header identity: empty means
// the anonymous tenant, malformed names are rejected before any work.
func (s *Server) resolveTenant(r *http.Request) (string, error) {
	return s.tenants.Resolve(r.Header.Get(TenantHeader))
}

// writeAdmissionError renders a quota rejection: 429, a Retry-After hint
// when waiting would help (rate rejections), and a structured body with
// code "admission" plus the rejection reason.
func (s *Server) writeAdmissionError(w http.ResponseWriter, d tenant.Decision) {
	resp := ErrorResponse{
		Error:  d.Err.Error(),
		Code:   CodeAdmission,
		Reason: d.Reason,
	}
	if d.RetryAfter > 0 {
		resp.RetryAfterMs = d.RetryAfter.Milliseconds()
		secs := int64(d.RetryAfter.Seconds() + 0.999)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	s.errors.Add(1)
	s.writeJSON(w, http.StatusTooManyRequests, resp)
}

// acquireCold gates one cold dynamic program behind the fair scheduler:
// the tenant's admission queue is drained by smooth weighted round-robin
// at the tenant's configured weight, under its max_concurrent cap. Cache
// and frontier hits never reach this — they bypass queuing entirely, so
// tenancy adds nothing to the fast paths. In the FIFO baseline the
// request was already gated at the handler, so this is a no-op. The
// returned release must be called when the DP finishes.
func (s *Server) acquireCold(ctx context.Context, ten string) (func(), error) {
	if s.opts.FIFOScheduling {
		return func() {}, nil
	}
	q := s.tenants.Quota(ten)
	if err := s.sched.Acquire(ctx, ten, q.Weight, q.MaxConcurrent); err != nil {
		return nil, err
	}
	return func() { s.sched.Release(ten) }, nil
}

// gateRequest is the unfairness baseline's gate: under FIFOScheduling
// every request — cache hits included — waits in one global
// arrival-order queue for a slot. The fair policy gates nothing here
// (only cold DPs queue, at acquireCold). The returned release must be
// called when the request finishes.
func (s *Server) gateRequest(ctx context.Context, ten string) (func(), error) {
	if !s.opts.FIFOScheduling {
		return func() {}, nil
	}
	if err := s.sched.Acquire(ctx, ten, 1, 0); err != nil {
		return nil, err
	}
	return func() { s.sched.Release(ten) }, nil
}

// classifyServeError maps a serving failure to its wire error code: the
// member's deadline expired, the client went away, or something broke.
// Validation failures never reach this — they are rejected at build time.
func classifyServeError(err error) string {
	switch {
	case errors.Is(err, tenant.ErrQueueFull):
		return CodeOverload
	case errors.Is(err, moqo.ErrInternalPanic):
		return CodeInternal
	case errors.Is(err, context.DeadlineExceeded):
		return CodeTimeout
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	default:
		return CodeInternal
	}
}

// writeShedError renders a load-shed rejection: 503 + Retry-After with
// code "overload". Used when the scheduler queue is at its bound
// (ErrQueueFull) or a request's deadline budget died while it was
// still queued.
func (s *Server) writeShedError(w http.ResponseWriter, err error) {
	s.errors.Add(1)
	s.shedOverload.Add(1)
	retry := time.Second
	w.Header().Set("Retry-After", "1")
	reason := "queue_full"
	if errors.Is(err, context.DeadlineExceeded) {
		reason = "budget_exhausted"
	}
	s.writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
		Error:        err.Error(),
		Code:         CodeOverload,
		Reason:       reason,
		RetryAfterMs: retry.Milliseconds(),
	})
}

// writeServeError renders a post-admission serving failure with its
// structured code: contained worker panics are a 500 that fails only
// this request (the pool survives — see internal/core), shed
// conditions a 503 + Retry-After, everything else a 400 with the
// message.
func (s *Server) writeServeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, moqo.ErrInternalPanic):
		s.panics.Add(1)
		s.errors.Add(1)
		s.writeJSON(w, http.StatusInternalServerError, ErrorResponse{
			Error: "internal: optimization aborted by a contained panic",
			Code:  CodeInternal,
		})
	case errors.Is(err, tenant.ErrQueueFull), errors.Is(err, context.DeadlineExceeded):
		s.writeShedError(w, err)
	default:
		s.writeError(w, http.StatusBadRequest, err)
	}
}

// respSizeBytes estimates an exact-tier entry's memory footprint for the
// per-tenant cache-partition accounting: the plan JSON dominates, plus
// the rendered frontier points and a fixed struct overhead. The estimate
// is computed identically at attribution and eviction time, so each
// tenant's gauge balances to zero when its entries leave.
func respSizeBytes(v OptimizeResponse) int64 {
	n := int64(len(v.Plan)) + 256
	for _, point := range v.Frontier {
		n += int64(len(point)) * 32
	}
	return n
}
