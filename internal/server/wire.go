package server

import (
	"encoding/json"
	"fmt"
	"time"

	"moqo"
	"moqo/internal/fault"
)

// OptimizeRequest is the JSON body of POST /optimize. The query comes
// either as a TPC-H shortcut (tpch + scale_factor) or as an inline
// catalog + query pair; exactly one of the two forms is required.
type OptimizeRequest struct {
	// TPCH selects TPC-H query 1-22 against the scale_factor catalog.
	TPCH        int     `json:"tpch,omitempty"`
	ScaleFactor float64 `json:"scale_factor,omitempty"` // default 1

	// Catalog and Query describe an arbitrary schema and join query
	// inline (mutually exclusive with tpch).
	Catalog *CatalogSpec `json:"catalog,omitempty"`
	Query   *QuerySpec   `json:"query,omitempty"`

	// Algorithm is exa, rta, ira, selinger or weightedsum; empty picks
	// the library default (rta, or ira when bounds are present).
	Algorithm string `json:"algorithm,omitempty"`
	// Alpha is the approximation precision for rta/ira (default 1.2).
	Alpha float64 `json:"alpha,omitempty"`

	// Objectives to optimize, by name (required). Weights, Bounds and
	// Precisions are keyed by the same names.
	Objectives []string           `json:"objectives"`
	Weights    map[string]float64 `json:"weights,omitempty"`
	Bounds     map[string]float64 `json:"bounds,omitempty"`
	Precisions map[string]float64 `json:"precisions,omitempty"`

	// TimeoutMs caps this request's optimization time; 0 uses the
	// server's default, and the server's max_timeout clamps it either
	// way. On timeout the optimizer degrades (stats.timed_out is set)
	// rather than failing.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Workers shards the request's dynamic program across goroutines;
	// 0 uses the server default. Results are identical for any value.
	Workers int `json:"workers,omitempty"`
	// MaxDOP caps operator parallelism in produced plans (default 4).
	MaxDOP int `json:"max_dop,omitempty"`
	// Enumeration selects the search-space enumeration strategy: auto
	// (default — graph-aware for connected join graphs), graph, or
	// exhaustive. Results are identical for any value; only enumeration
	// work and wall-clock time change, so the plan cache ignores it.
	// Empty uses the server default.
	Enumeration string `json:"enumeration,omitempty"`

	// NoCache bypasses the plan cache for this request (it neither reads
	// nor populates it) — chiefly for measuring, or for forcing a fresh
	// optimization.
	NoCache bool `json:"no_cache,omitempty"`
	// Frontier includes the (approximate) Pareto frontier's cost vectors
	// in the response.
	Frontier bool `json:"frontier,omitempty"`
}

// BatchRequest is the JSON body of POST /optimize/batch: a workload of
// member requests optimized as one batch against one shared catalog.
// The catalog comes either inline (catalog) or as the TPC-H catalog at
// scale_factor; it is resolved once, and every member query is built
// against the same catalog object, so members share its statistics,
// fingerprint, and — per distinct query shape — one cardinality/
// selectivity estimate warm-up. Members additionally share a
// batch-scoped subproblem memo (see moqo.SharedMemo): overlapping
// queries skip each other's solved table sets, identical members run one
// dynamic program, and re-weights are answered from a sibling's Pareto
// frontier. Results are bit-for-bit what each member would get from its
// own POST /optimize.
type BatchRequest struct {
	// Catalog describes the shared schema inline; omitted, the TPC-H
	// catalog at scale_factor (default 1) is used and members select
	// their queries with tpch numbers.
	Catalog     *CatalogSpec `json:"catalog,omitempty"`
	ScaleFactor float64      `json:"scale_factor,omitempty"`

	// Members are the workload's requests (at least one).
	Members []BatchMemberRequest `json:"members"`

	// Parallel caps how many member dynamic programs run concurrently
	// (0 = the server's worker default, clamped to the CPU count).
	Parallel int `json:"parallel,omitempty"`

	// Stream switches the response to NDJSON: one BatchMemberResponse
	// object per line, emitted as each member completes (completion
	// order, not member order), instead of one collected BatchResponse.
	Stream bool `json:"stream,omitempty"`
}

// BatchMemberRequest is one member of a batch: an OptimizeRequest minus
// the catalog fields (the batch resolves the catalog once for everyone)
// and minus no_cache (members always go through the shared cache tiers,
// which is what dedupes identical members).
type BatchMemberRequest struct {
	// TPCH selects TPC-H query 1-22 against the batch catalog (TPC-H
	// mode only). Mutually exclusive with query.
	TPCH int `json:"tpch,omitempty"`
	// Query describes the member's join query against the batch catalog.
	Query *QuerySpec `json:"query,omitempty"`

	// Tenant is the member's tenant identity, overriding the batch
	// request's X-Moqo-Tenant header for this member (a gateway batching
	// many tenants' traffic sets it per member). Empty falls back to the
	// header, then to the anonymous tenant.
	Tenant string `json:"tenant,omitempty"`

	Algorithm   string             `json:"algorithm,omitempty"`
	Alpha       float64            `json:"alpha,omitempty"`
	Objectives  []string           `json:"objectives"`
	Weights     map[string]float64 `json:"weights,omitempty"`
	Bounds      map[string]float64 `json:"bounds,omitempty"`
	Precisions  map[string]float64 `json:"precisions,omitempty"`
	TimeoutMs   int64              `json:"timeout_ms,omitempty"`
	Workers     int                `json:"workers,omitempty"`
	MaxDOP      int                `json:"max_dop,omitempty"`
	Enumeration string             `json:"enumeration,omitempty"`
	Frontier    bool               `json:"frontier,omitempty"`
}

// BatchMemberResponse is one member's outcome. Exactly one of Result and
// Error is set.
type BatchMemberResponse struct {
	// Member is the index into the request's members array (streamed
	// responses arrive in completion order, so the index is the join key).
	Member int               `json:"member"`
	Result *OptimizeResponse `json:"result,omitempty"`
	Error  string            `json:"error,omitempty"`
	// ErrorCode classifies a member failure: validation (malformed
	// member), admission (the member tenant's quota rejected it), timeout,
	// canceled, or internal. Empty when Result is set.
	ErrorCode string `json:"error_code,omitempty"`
	// RetryAfterMs accompanies rate-limited admission rejections.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// BatchResponse is the JSON body of a successful non-streaming POST
// /optimize/batch.
type BatchResponse struct {
	// Members holds one response per member, in member order.
	Members []BatchMemberResponse `json:"members"`
	Stats   BatchStatsResponse    `json:"stats"`
}

// BatchStatsResponse summarizes what the batch shared.
type BatchStatsResponse struct {
	Members int `json:"members"`
	Errors  int `json:"errors"`
	// SharedSubproblems counts the solved subproblems the batch published
	// to its shared memo; SharedHits counts member lookups served from
	// them (cross-query subexpression reuse).
	SharedSubproblems int     `json:"shared_subproblems"`
	SharedHits        int64   `json:"shared_hits"`
	DurationMs        float64 `json:"duration_ms"`
}

// CatalogSpec describes a schema's statistics inline.
type CatalogSpec struct {
	Tables  []TableSpec `json:"tables"`
	Indexes []IndexSpec `json:"indexes,omitempty"`
}

// TableSpec is one base table's statistics.
type TableSpec struct {
	Name  string  `json:"name"`
	Rows  float64 `json:"rows"`
	Width int     `json:"width"`
	// PK names the primary-key column; it is indexed automatically.
	PK string `json:"pk,omitempty"`
}

// IndexSpec is one secondary index.
type IndexSpec struct {
	Table  string `json:"table"`
	Column string `json:"column"`
	Unique bool   `json:"unique,omitempty"`
}

// QuerySpec describes a join query inline.
type QuerySpec struct {
	Name      string         `json:"name,omitempty"`
	Relations []RelationSpec `json:"relations"`
	Joins     []JoinSpec     `json:"joins,omitempty"`
}

// RelationSpec is one from-clause entry.
type RelationSpec struct {
	Table string `json:"table"`
	// Alias must be unique within the query; defaults to the table name.
	Alias string `json:"alias,omitempty"`
	// FilterSel is the combined selectivity of filters on this relation,
	// in (0,1]; 0 means "no filter" (1).
	FilterSel float64 `json:"filter_sel,omitempty"`
}

// JoinSpec is one equi-join predicate between relations (by index into
// relations).
type JoinSpec struct {
	Left        int     `json:"left"`
	Right       int     `json:"right"`
	LeftCol     string  `json:"left_col"`
	RightCol    string  `json:"right_col"`
	Selectivity float64 `json:"selectivity"`
}

// OptimizeResponse is the JSON body of a successful POST /optimize.
type OptimizeResponse struct {
	// Algorithm that actually ran (the requested one, or the resolved
	// default).
	Algorithm string `json:"algorithm"`
	// Plan is the selected plan as an operator tree (operators,
	// parameters, estimated rows, per-node costs).
	Plan json.RawMessage `json:"plan"`
	// Cost maps each active objective to the selected plan's cost.
	Cost map[string]float64 `json:"cost"`
	// Frontier holds the cost vectors of the (approximate) Pareto
	// frontier; present only when the request asked for it.
	Frontier []map[string]float64 `json:"frontier,omitempty"`
	// Stats describes the optimization run that produced the plan. For a
	// cache hit these are the stats of the original computation.
	Stats StatsResponse `json:"stats"`
	// Cached reports whether the response was served from the plan cache
	// (or coalesced onto a concurrent identical computation).
	Cached bool `json:"cached"`

	// tenant is the identity of the request that computed a stored entry,
	// read back by the exact tier's eviction hook for per-tenant cache
	// accounting. Unexported: it never serializes, so answers stay
	// bit-for-bit identical with and without tenancy.
	tenant string
}

// StatsResponse mirrors moqo.Stats on the wire.
type StatsResponse struct {
	DurationMs  float64 `json:"duration_ms"`
	Considered  int     `json:"considered"`
	Stored      int     `json:"stored"`
	MemoryBytes int64   `json:"memory_bytes"`
	ParetoLast  int     `json:"pareto_last"`
	// EnumSets and EnumSplits report the enumeration work of the run
	// (table sets scanned, ordered split pairs visited) — the metrics
	// the enumeration strategy changes.
	EnumSets   int  `json:"enum_sets"`
	EnumSplits int  `json:"enum_splits"`
	TimedOut   bool `json:"timed_out"`
	Iterations int  `json:"iterations"`
	// ReusedFrontier reports that the response was served from a cached
	// frontier snapshot (a SelectBest scan, or an IRA refinement seeded
	// from one) instead of a cold dynamic program — the frontier tier's
	// re-weight fast path. The effort counters above then describe the
	// originating run; duration_ms is the serve time of the reuse path.
	ReusedFrontier bool `json:"reused_frontier"`
	// SharedMemoHits counts subproblems this run served from a batch's
	// shared memo instead of solving them itself (POST /optimize/batch;
	// always 0 for standalone /optimize runs).
	SharedMemoHits int `json:"shared_memo_hits,omitempty"`
}

// ErrorResponse is the JSON body of a non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is the machine-readable failure class (CodeValidation,
	// CodeAdmission, ...); empty on legacy paths that predate codes.
	Code string `json:"code,omitempty"`
	// Reason refines an admission rejection (rate, tables, cost).
	Reason string `json:"reason,omitempty"`
	// RetryAfterMs hints when a rate-rejected tenant will have budget
	// again (mirrors the Retry-After header, at millisecond precision).
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// MetricsResponse is the JSON body of GET /metrics: a point-in-time
// snapshot of the service and cache counters.
type MetricsResponse struct {
	UptimeMs float64        `json:"uptime_ms"`
	Requests RequestMetrics `json:"requests"`
	Cache    CacheMetrics   `json:"cache"`
	// FrontierCache snapshots the frontier tier (all-zero when disabled):
	// cached Pareto-frontier snapshots keyed by the weight/bound-free
	// request prefix, from which re-weight traffic is served without
	// re-optimizing.
	FrontierCache FrontierCacheMetrics `json:"frontier_cache"`
	// FrontierStore snapshots the disk-backed frontier store (all-zero
	// when persistence is disabled): snapshots written through on DP
	// completion and consulted on frontier-tier misses, so a restarted
	// server answers known query shapes from disk.
	FrontierStore FrontierStoreMetrics `json:"frontier_store"`
	Latency       LatencyMetrics       `json:"latency_ms"`
	// Tenants holds one entry per tracked tenant (sorted by name; omitted
	// before the first tenant-attributed request).
	Tenants []TenantMetrics `json:"tenants,omitempty"`
}

// TenantMetrics is one tenant's serving metrics: admission outcomes,
// fair-scheduler state, cache-partition accounting, and latency. The
// cache numbers attribute shared-cache residency to the tenant whose
// request populated each entry — accounting only; the cache itself is
// shared and its keys are tenant-free.
type TenantMetrics struct {
	Name     string            `json:"name"`
	Requests uint64            `json:"requests"`
	Admitted uint64            `json:"admitted"`
	Rejected map[string]uint64 `json:"rejected,omitempty"`
	// QueueDepth is the tenant's current cold-DP admission-queue length;
	// Granted counts slots the scheduler has granted it since start.
	QueueDepth int    `json:"queue_depth"`
	Granted    uint64 `json:"granted"`

	CacheBytes     int64  `json:"cache_bytes"`
	CacheEntries   int64  `json:"cache_entries"`
	CacheEvictions uint64 `json:"cache_evictions"`

	Latency LatencyMetrics `json:"latency_ms"`
}

// RequestMetrics counts /optimize and /optimize/batch traffic. Errors
// counts failed requests plus failed batch members; InFlight counts
// whole requests of either kind.
type RequestMetrics struct {
	Optimize     uint64 `json:"optimize"`
	Batch        uint64 `json:"batch"`
	BatchMembers uint64 `json:"batch_members"`
	Errors       uint64 `json:"errors"`
	InFlight     int64  `json:"in_flight"`
	// ShedOverload counts requests rejected with 503 at the
	// load-shedding bound: the cold-DP queue was full, or the request's
	// deadline budget died while it was still queued.
	ShedOverload uint64 `json:"shed_overload"`
	// Panics counts contained panics — worker-pool panics surfaced as a
	// structured 500 and handler panics caught by the recovery
	// middleware. The process survived every one of them.
	Panics uint64 `json:"panics"`
}

// CacheMetrics snapshots the plan cache (all-zero when the cache is
// disabled).
type CacheMetrics struct {
	Enabled   bool    `json:"enabled"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Coalesced uint64  `json:"coalesced"`
	Evictions uint64  `json:"evictions"`
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	HitRatio  float64 `json:"hit_ratio"`
}

// FrontierCacheMetrics snapshots the frontier tier of the plan cache
// (all-zero when the tier is disabled). Hits/Misses/Coalesced/Evictions
// count tier lookups like CacheMetrics does for the exact-result tier;
// the tier is only consulted on exact-tier misses for algorithms with
// reusable frontiers (exa, rta, ira).
type FrontierCacheMetrics struct {
	Enabled   bool    `json:"enabled"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Coalesced uint64  `json:"coalesced"`
	Evictions uint64  `json:"evictions"`
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	HitRatio  float64 `json:"hit_ratio"`
	// ReweightServed counts requests answered from a cached snapshot —
	// a SelectBest scan (or seeded IRA) instead of a cold optimization.
	ReweightServed uint64 `json:"reweight_served"`
	// SnapshotBytes gauges the estimated memory of the snapshots
	// currently cached in the tier.
	SnapshotBytes int64 `json:"snapshot_bytes"`
}

// FrontierStoreMetrics snapshots the disk-backed frontier store
// (all-zero when the store is disabled).
type FrontierStoreMetrics struct {
	Enabled bool `json:"enabled"`
	// Hits and Misses count disk lookups; the store is only consulted on
	// frontier-tier (memory) misses, so a hit is a warm restart or a
	// re-promotion after memory eviction.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Writes counts snapshot appends: DP-completion write-throughs,
	// seeded-IRA refinements, and eviction demotions.
	Writes uint64 `json:"writes"`
	// Bytes is the store's live payload footprint on disk; Evictions
	// counts entries dropped to keep it under the configured budget.
	Bytes     int64  `json:"bytes"`
	Evictions uint64 `json:"evictions"`
	// CorruptDropped counts entries dropped instead of served: torn or
	// checksum-failed records at open or read time, plus entries that
	// passed the store's checksums but failed snapshot decoding.
	CorruptDropped uint64 `json:"corrupt_dropped"`
	// Compactions counts completed segment-log compactions.
	Compactions uint64 `json:"compactions"`
	Entries     int    `json:"entries"`
	// IOErrors counts device-level I/O failures (failed writes, fsyncs,
	// reads) observed by the store — distinct from CorruptDropped, which
	// is data damage.
	IOErrors uint64 `json:"io_errors"`
	// Skipped counts store operations not attempted because the circuit
	// breaker was open — serving degraded to memory-only for those.
	Skipped uint64 `json:"skipped"`
	// Breaker is the store circuit breaker's state (absent when the
	// breaker is disabled): "closed" (healthy), "open" (disk quarantined,
	// serving memory-only), or "half-open" (probing recovery).
	Breaker *fault.BreakerStats `json:"breaker,omitempty"`
}

// HealthResponse is the JSON body of GET /healthz (liveness, always
// 200 while the process serves) and GET /readyz (readiness, 503 when
// Degraded). The two endpoints share a body so operators see the same
// facts either way.
type HealthResponse struct {
	// Status is "ok", or "degraded" when the store breaker is open and
	// the server is answering from memory only.
	Status string `json:"status"`
	// Degraded is true when persistence is configured but quarantined by
	// the breaker: the server still answers, but warm-restart durability
	// and demotion are suspended.
	Degraded bool `json:"degraded"`
	// Store reports the persistence tier: "disabled", "ok", "degraded"
	// (breaker open), or "probing" (half-open).
	Store string `json:"store"`
	// Breaker mirrors the store breaker's stats (absent when disabled).
	Breaker *fault.BreakerStats `json:"breaker,omitempty"`
	// QueueDepth is the total cold-DP admission queue depth; Shed counts
	// requests rejected at the load-shedding bound since start.
	QueueDepth int    `json:"queue_depth"`
	Shed       uint64 `json:"shed"`
	InFlight   int64  `json:"in_flight"`
}

// LatencyMetrics summarizes served /optimize latencies over a sliding
// window of recent requests.
type LatencyMetrics struct {
	Window int     `json:"window"`
	P50    float64 `json:"p50"`
	P99    float64 `json:"p99"`
}

// parseObjectives resolves objective names.
func parseObjectives(names []string) ([]moqo.Objective, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("objectives: at least one required")
	}
	out := make([]moqo.Objective, 0, len(names))
	for _, name := range names {
		o, err := parseObjective(name)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

func parseObjective(name string) (moqo.Objective, error) {
	for _, o := range moqo.AllObjectives() {
		if o.String() == name {
			return o, nil
		}
	}
	return 0, fmt.Errorf("unknown objective %q", name)
}

func parseObjectiveMap(field string, m map[string]float64) (map[moqo.Objective]float64, error) {
	if len(m) == 0 {
		return nil, nil
	}
	out := make(map[moqo.Objective]float64, len(m))
	for name, x := range m {
		o, err := parseObjective(name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", field, err)
		}
		out[o] = x
	}
	return out, nil
}

// buildCatalog validates a CatalogSpec and constructs the catalog.
func buildCatalog(spec *CatalogSpec) (*moqo.Catalog, error) {
	if len(spec.Tables) == 0 {
		return nil, fmt.Errorf("catalog: no tables")
	}
	names := make(map[string]bool, len(spec.Tables))
	for _, t := range spec.Tables {
		if t.Name == "" {
			return nil, fmt.Errorf("catalog: table with empty name")
		}
		if names[t.Name] {
			return nil, fmt.Errorf("catalog: duplicate table %q", t.Name)
		}
		names[t.Name] = true
		if t.Rows < 0 {
			return nil, fmt.Errorf("catalog: table %q: negative rows", t.Name)
		}
		if t.Width <= 0 {
			return nil, fmt.Errorf("catalog: table %q: width must be positive", t.Name)
		}
	}
	for _, ix := range spec.Indexes {
		if !names[ix.Table] {
			return nil, fmt.Errorf("catalog: index on unknown table %q", ix.Table)
		}
		if ix.Column == "" {
			return nil, fmt.Errorf("catalog: index on table %q with empty column", ix.Table)
		}
	}
	cat := moqo.NewCatalog()
	for _, t := range spec.Tables {
		cat.AddTable(t.Name, t.Rows, t.Width, t.PK)
	}
	for _, ix := range spec.Indexes {
		id, _ := cat.Lookup(ix.Table)
		cat.AddIndex(id, ix.Column, ix.Unique)
	}
	return cat, nil
}

// buildQuery validates a QuerySpec against its catalog and constructs the
// query.
func buildQuery(spec *QuerySpec, cat *moqo.Catalog) (*moqo.Query, error) {
	if len(spec.Relations) == 0 {
		return nil, fmt.Errorf("query: no relations")
	}
	if len(spec.Relations) > 64 {
		return nil, fmt.Errorf("query: too many relations (max 64)")
	}
	name := spec.Name
	if name == "" {
		name = "adhoc"
	}
	aliases := make(map[string]bool, len(spec.Relations))
	for _, r := range spec.Relations {
		if _, ok := cat.Lookup(r.Table); !ok {
			return nil, fmt.Errorf("query: unknown table %q", r.Table)
		}
		alias := r.Alias
		if alias == "" {
			alias = r.Table
		}
		if aliases[alias] {
			return nil, fmt.Errorf("query: duplicate alias %q (set an explicit alias)", alias)
		}
		aliases[alias] = true
		if r.FilterSel < 0 || r.FilterSel > 1 {
			return nil, fmt.Errorf("query: relation %q: filter_sel %v out of (0,1]", alias, r.FilterSel)
		}
	}
	for _, j := range spec.Joins {
		if j.Left < 0 || j.Right < 0 || j.Left >= len(spec.Relations) || j.Right >= len(spec.Relations) || j.Left == j.Right {
			return nil, fmt.Errorf("query: bad join edge %d-%d", j.Left, j.Right)
		}
		if j.Selectivity <= 0 || j.Selectivity > 1 {
			return nil, fmt.Errorf("query: join %d-%d: selectivity %v out of (0,1]", j.Left, j.Right, j.Selectivity)
		}
	}

	q := moqo.NewQuery(name, cat)
	for _, r := range spec.Relations {
		alias := r.Alias
		if alias == "" {
			alias = r.Table
		}
		sel := r.FilterSel
		if sel == 0 {
			sel = 1
		}
		q.AddRelation(r.Table, alias, sel)
	}
	for _, j := range spec.Joins {
		q.AddJoin(j.Left, j.Right, j.LeftCol, j.RightCol, j.Selectivity)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// toMoqoRequest turns a validated wire request into a moqo.Request. The
// timeout and workers knobs are resolved by the caller (they depend on
// server options).
func (s *Server) toMoqoRequest(wire *OptimizeRequest) (moqo.Request, error) {
	var req moqo.Request

	switch {
	case wire.TPCH != 0 && (wire.Catalog != nil || wire.Query != nil):
		return req, fmt.Errorf("tpch and inline catalog/query are mutually exclusive")
	case wire.TPCH != 0:
		sf := wire.ScaleFactor
		if sf == 0 {
			sf = 1
		}
		if sf < 0 {
			return req, fmt.Errorf("scale_factor must be positive")
		}
		cat := s.tpchCatalog(sf)
		q, err := moqo.TPCHQuery(wire.TPCH, cat)
		if err != nil {
			return req, err
		}
		req.Query = q
	case wire.Catalog != nil && wire.Query != nil:
		cat, err := buildCatalog(wire.Catalog)
		if err != nil {
			return req, err
		}
		q, err := buildQuery(wire.Query, cat)
		if err != nil {
			return req, err
		}
		req.Query = q
	default:
		return req, fmt.Errorf("either tpch or both catalog and query are required")
	}

	if err := s.applyKnobs(&req, wire); err != nil {
		return req, err
	}
	return req, nil
}

// applyKnobs resolves the wire request's algorithm/objective knobs onto a
// moqo.Request whose query is already set — shared between /optimize
// requests and /optimize/batch members (which carry the same fields minus
// the catalog).
func (s *Server) applyKnobs(req *moqo.Request, wire *OptimizeRequest) error {
	if wire.Algorithm != "" {
		alg, err := moqo.ParseAlgorithm(wire.Algorithm)
		if err != nil {
			return err
		}
		req.Algorithm = alg
	}
	req.Enumeration = s.opts.DefaultEnumeration
	if wire.Enumeration != "" {
		enum, err := moqo.ParseEnumerationStrategy(wire.Enumeration)
		if err != nil {
			return err
		}
		req.Enumeration = enum
	}
	req.Alpha = wire.Alpha
	req.MaxDOP = wire.MaxDOP

	objectives, err := parseObjectives(wire.Objectives)
	if err != nil {
		return err
	}
	req.Objectives = objectives
	if req.Weights, err = parseObjectiveMap("weights", wire.Weights); err != nil {
		return err
	}
	if req.Bounds, err = parseObjectiveMap("bounds", wire.Bounds); err != nil {
		return err
	}
	if req.Precisions, err = parseObjectiveMap("precisions", wire.Precisions); err != nil {
		return err
	}
	return nil
}

// asOptimizeRequest views a batch member as the equivalent standalone
// wire request (catalog fields unset) so applyKnobs treats members and
// /optimize requests identically.
func (m *BatchMemberRequest) asOptimizeRequest() OptimizeRequest {
	return OptimizeRequest{
		Algorithm:   m.Algorithm,
		Alpha:       m.Alpha,
		Objectives:  m.Objectives,
		Weights:     m.Weights,
		Bounds:      m.Bounds,
		Precisions:  m.Precisions,
		TimeoutMs:   m.TimeoutMs,
		Workers:     m.Workers,
		MaxDOP:      m.MaxDOP,
		Enumeration: m.Enumeration,
		Frontier:    m.Frontier,
	}
}

// renderFrontier renders a result's frontier points on the wire. The
// rendered slice depends only on the frontier (not on the request's
// weights or bounds), so the frontier tier renders it once per snapshot
// and shares it across every re-weight response.
func renderFrontier(res *moqo.Result) []map[string]float64 {
	frontier := make([]map[string]float64, len(res.Frontier))
	for i, v := range res.FrontierVectors() {
		point := make(map[string]float64, len(res.Objectives()))
		for _, o := range res.Objectives() {
			point[o.String()] = v.Get(o)
		}
		frontier[i] = point
	}
	return frontier
}

// renderSnapshotFrontier renders a snapshot's frontier points on the
// wire — the same rendering renderFrontier produces for the run the
// snapshot came from (same canonical order, same vectors), used when the
// entry is repopulated from the disk store and no Result exists yet.
func renderSnapshotFrontier(snap *moqo.FrontierSnapshot) []map[string]float64 {
	objs := snap.Objectives()
	vecs := snap.FrontierVectors()
	frontier := make([]map[string]float64, len(vecs))
	for i, v := range vecs {
		point := make(map[string]float64, len(objs))
		for _, o := range objs {
			point[o.String()] = v.Get(o)
		}
		frontier[i] = point
	}
	return frontier
}

// toResponse renders an optimization result on the wire. The frontier is
// always rendered; the handler strips it when the request did not ask for
// it, so cached entries can serve both shapes.
func toResponse(res *moqo.Result) (OptimizeResponse, error) {
	return toResponseWithFrontier(res, renderFrontier(res))
}

// toResponseWithFrontier renders a result around an already rendered
// (possibly shared, read-only) frontier — the re-weight fast path, where
// only the selected plan and the stats differ per request.
func toResponseWithFrontier(res *moqo.Result, frontier []map[string]float64) (OptimizeResponse, error) {
	planJSON, err := res.PlanJSON()
	if err != nil {
		return OptimizeResponse{}, err
	}
	cost := make(map[string]float64, len(res.Objectives()))
	for _, o := range res.Objectives() {
		cost[o.String()] = res.Cost(o)
	}
	return OptimizeResponse{
		Algorithm: res.Algorithm.String(),
		Plan:      planJSON,
		Cost:      cost,
		Frontier:  frontier,
		Stats: StatsResponse{
			DurationMs:     float64(res.Stats.Duration) / float64(time.Millisecond),
			Considered:     res.Stats.Considered,
			Stored:         res.Stats.Stored,
			MemoryBytes:    res.Stats.MemoryBytes,
			ParetoLast:     res.Stats.ParetoLast,
			EnumSets:       res.Stats.EnumSets,
			EnumSplits:     res.Stats.EnumSplits,
			TimedOut:       res.Stats.TimedOut,
			Iterations:     res.Stats.Iterations,
			ReusedFrontier: res.Stats.ReusedFrontier,
			SharedMemoHits: res.Stats.SharedMemoHits,
		},
	}, nil
}
