// Package store implements moqod's disk-backed frontier store: a
// crash-consistent, append-oriented key/value log that persists marshaled
// FrontierSnapshots (moqo.FrontierSnapshot.MarshalBinary) across process
// restarts, so a restarted service begins warm — the first slice of the
// ROADMAP's distributed-fleet direction. The expensive artifact of the
// paper's approximation schemes (Trummer & Koch, SIGMOD 2014) is the
// one-time dynamic program that builds a Pareto frontier; the in-memory
// frontier tier (internal/cache) makes re-serving it nearly free until
// the process dies. This package makes it survive the death.
//
// # On-disk layout
//
// A store directory holds numbered segment files (seg-1.log, seg-2.log,
// …), each a short header (magic + format version) followed by
// appended records. One record frames one put or delete:
//
//	u8  type      1 = put, 2 = tombstone (delete)
//	u32 keyLen
//	u32 valLen    0 for tombstones
//	u32 headCRC   CRC-32C over the 9 header bytes above
//	    key
//	    value
//	u32 bodyCRC   CRC-32C over key ∥ value
//
// Records are append-only and fsync'd (unless Options.NoSync); a key
// written twice is superseded by its later record, and the newest record
// for a key — across all segments, segments ordered by sequence number —
// always wins. Compaction rewrites the live records into a fresh
// highest-numbered segment via write-temp-then-rename, then removes the
// superseded segments, so a crash at any instant leaves either the old
// segments, or the old segments plus a complete new one — never a
// half-visible state.
//
// # Recovery
//
// Open replays every segment in sequence order, verifying both checksums
// of every record. Damage is dropped, never served, and counted in
// Stats.CorruptDropped:
//
//   - a torn tail record (the crash-mid-append case) fails its header or
//     body checksum, or runs past the end of the file: the segment is
//     truncated back to the last intact record;
//   - a record whose header is intact but whose body checksum fails (bit
//     rot) is skipped individually — its framing is trusted, so the
//     records after it still load;
//   - a record whose header checksum fails poisons the rest of its
//     segment (the framing itself is untrustworthy): the segment is
//     truncated at that point;
//   - orphaned compaction temporaries (*.tmp — a crash between writing
//     and renaming) are deleted.
//
// Get re-verifies the body checksum on every read, so bit rot after open
// is also detected, dropped and counted rather than served.
//
// # Budget and compaction
//
// The store mirrors the in-memory frontier tier's boundedness: a live-byte
// budget (Options.MaxBytes) evicts least-recently-used entries by
// tombstone when exceeded, and background compaction reclaims the space
// of superseded, deleted and evicted records once they outweigh
// Options.CompactFraction of the log.
//
// The store knows nothing of snapshots — keys are moqo FrontierKeys and
// values are opaque bytes. Invalidation on catalog change needs no
// machinery here: the FrontierKey embeds catalog.Fingerprint and the
// cache-key format version, so a changed catalog simply never looks a
// stale entry up again, and the budget/compaction cycle eventually
// reclaims it.
package store
